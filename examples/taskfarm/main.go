// Task farm: the irregular workload. A master deals independent tasks to
// whichever worker returns first (MPI_ANY_SOURCE), so the communication
// schedule only exists at run time. PEVPM models it with the static
// round-robin schedule the dynamic farm converges to, and its hot-spot
// report identifies the master as the scaling bottleneck.
//
// Run with: go run ./examples/taskfarm
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
	"repro/internal/workloads"
)

func main() {
	cfg := cluster.Perseus()
	tf := workloads.TaskFarm{
		Tasks:       240,
		TaskSeconds: 15e-3,
		TaskBytes:   512,
		ResultBytes: 2048,
	}
	fmt.Printf("bag of %d tasks, %.0f ms each, %dB out / %dB back\n",
		tf.Tasks, tf.TaskSeconds*1e3, tf.TaskBytes, tf.ResultBytes)

	var benchPls []cluster.Placement
	for _, n := range []int{2, 8, 32} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		benchPls = append(benchPls, pl)
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op:          mpibench.OpSend,
		Sizes:       []int{0, 512, 2048},
		Repetitions: 100,
		Seed:        31,
	}, benchPls)
	if err != nil {
		log.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		log.Fatal(err)
	}

	serial := tf.SerialTime()
	fmt.Printf("\n%-8s%12s%12s%10s%12s\n", "config", "measured", "predicted", "error", "efficiency")
	for _, n := range []int{2, 4, 8, 16, 32} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		actual, err := workloads.Execute(cfg, pl, uint64(40+n), tf.Run)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := pevpm.EvaluateN(tf.Model(n), pevpm.Options{
			Procs: n, DB: db, Seed: uint64(50 + n), NodeOf: pl.NodeOf,
		}, 5)
		if err != nil {
			log.Fatal(err)
		}
		got := actual.Makespan.Seconds()
		workers := float64(n - 1)
		fmt.Printf("%-8s%11.4fs%11.4fs%9.1f%%%11.1f%%\n",
			pl, got, sum.Mean, 100*(sum.Mean-got)/got,
			100*serial/(got*workers))
	}

	// Where does the farm lose time at scale? Ask the model.
	rep, err := pevpm.Evaluate(tf.Model(32), pevpm.Options{Procs: 32, DB: db, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop waiting directives at 32 processes (the master deals and")
	fmt.Println("collects serially, so workers queue on rank 0):")
	for i, h := range rep.HotSpots {
		if i >= 3 {
			break
		}
		fmt.Printf("  %8.4fs  %s\n", h.Wait, h.Directive)
	}
}
