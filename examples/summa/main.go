// Summa: a collective-driven workload demonstrating the Collective
// directive extension. Instead of decomposing every broadcast's binomial
// tree into Message directives, the PEVPM model prices whole collectives
// from distributions MPIBench measured — including the per-instance
// slowest-rank distribution that only a benchmark timing every rank on a
// global clock can record.
//
// Run with: go run ./examples/summa
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
	"repro/internal/workloads"
)

func main() {
	cfg := cluster.Perseus()
	s := workloads.Summa{
		PanelBytes:   8192,
		ReduceBytes:  64,
		Iterations:   60,
		FlopsSeconds: 2e-3,
	}
	fmt.Println("The model, in directive syntax (note the Collective directives):")
	fmt.Println(s.PVM())

	var pls []cluster.Placement
	for _, n := range []int{4, 8, 16, 32} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		pls = append(pls, pl)
	}
	fmt.Println("benchmarking MPI_Bcast and MPI_Allreduce with MPIBench...")
	set := &mpibench.Set{Cluster: cfg.Name}
	for _, op := range []mpibench.Op{mpibench.OpBcast, mpibench.OpAllreduce} {
		part, err := mpibench.RunSweep(cfg, mpibench.Spec{
			Op:          op,
			Sizes:       []int{64, 1024, 8192},
			Repetitions: 100,
			Seed:        11,
		}, pls)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range part.Results {
			set.Add(r)
		}
	}
	db, err := pevpm.NewCollectiveDB(pevpm.LogGPStyleDB(200e-6, 10e6, 16384), set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collectives in the database: %v\n\n", db.CollectiveOps())

	fmt.Printf("%-8s%12s%12s%10s\n", "config", "measured", "predicted", "error")
	for _, pl := range pls {
		actual, err := workloads.Execute(cfg, pl, uint64(600+pl.NodeCount), s.Run)
		if err != nil {
			log.Fatal(err)
		}
		sum, err := pevpm.EvaluateN(s.Model(), pevpm.Options{
			Procs: pl.NumProcs(), DB: db, Seed: uint64(700 + pl.NodeCount), NodeOf: pl.NodeOf,
		}, 8)
		if err != nil {
			log.Fatal(err)
		}
		got := actual.Makespan.Seconds()
		fmt.Printf("%-8s%11.4fs%11.4fs%9.1f%%\n", pl, got, sum.Mean, 100*(sum.Mean-got)/got)
	}
	fmt.Println("\nThe predictions run a few percent high: PEVPM releases the whole job")
	fmt.Println("at each collective's slowest-rank completion, a safe upper bound when")
	fmt.Println("successive collectives' critical paths run through different ranks.")
}
