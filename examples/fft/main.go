// FFT: the regular-global workload. Each stage exchanges whole local
// blocks with progressively distant partners, exercising the rendezvous
// protocol and global bandwidth rather than neighbour latency.
//
// The example executes the transform on the simulated cluster for
// several machine sizes, predicts the same runs with PEVPM, and shows
// where the time goes as communication starts to dominate.
//
// Run with: go run ./examples/fft
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
	"repro/internal/workloads"
)

func main() {
	cfg := cluster.Perseus()
	f := workloads.DefaultFFT()
	fmt.Printf("FFT: %d points/proc, %d B blocks per stage, %d rounds\n",
		f.PointsPerProc, f.BlockBytes(), f.Rounds)

	// One benchmark database serves every prediction.
	var benchPls []cluster.Placement
	for _, n := range []int{2, 4, 8, 16, 32} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		benchPls = append(benchPls, pl)
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op:          mpibench.OpSend,
		Sizes:       []int{1024, 4096, 8192, 16384},
		Repetitions: 100,
		Seed:        21,
	}, benchPls)
	if err != nil {
		log.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s%12s%12s%10s%14s%14s\n",
		"config", "measured", "predicted", "error", "compute/proc", "commwait/proc")
	for _, n := range []int{2, 4, 8, 16, 32} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		actual, err := workloads.Execute(cfg, pl, uint64(n), f.Run)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pevpm.Evaluate(f.Model(n), pevpm.Options{
			Procs: n, DB: db, Seed: uint64(n) + 5, NodeOf: pl.NodeOf,
		})
		if err != nil {
			log.Fatal(err)
		}
		var compute, wait float64
		for _, b := range rep.Breakdowns {
			compute += b.Compute
			wait += b.RecvWait
		}
		procs := float64(n)
		got := actual.Makespan.Seconds()
		fmt.Printf("%-8s%11.4fs%11.4fs%9.1f%%%13.4fs%13.4fs\n",
			pl, got, rep.Makespan, 100*(rep.Makespan-got)/got,
			compute/procs, wait/procs)
	}
	fmt.Println("\nAs machines grow, per-stage blocks cross more of the backplane and")
	fmt.Println("the receive-wait column, not the compute column, sets the run time.")
}
