// Quickstart: a five-minute tour of the library.
//
//  1. Simulate the Perseus cluster and run an MPI program on it.
//  2. Benchmark MPI_Isend with MPIBench and look at the distribution —
//     not just the average.
//  3. Fit a parametric model to the measured histogram.
//  4. Predict a program's run time with PEVPM and compare it against
//     actually executing the program.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/mpibench"
	"repro/internal/netsim"
	"repro/internal/pevpm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	cfg := cluster.Perseus()

	// --- 1. Run an MPI program on the simulated cluster. ---------------
	pl, err := cluster.NewPlacement(&cfg, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := workloads.Execute(cfg, pl, 1, func(c *mpi.Comm) {
		// A ring: each rank passes a 1 KB token to the right.
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		for i := 0; i < 10; i++ {
			c.Sendrecv(next, 0, 1024, prev, 0)
		}
		c.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. ring program on %s finished at t=%v (%.0f wire bytes moved)\n",
		pl, res.Makespan, float64(res.Net.WireBytes))

	// --- 2. Benchmark a communication operation. ------------------------
	bench, err := mpibench.Run(cfg, mpibench.Spec{
		Op:        mpibench.OpIsend,
		Sizes:     []int{1024},
		Placement: pl,
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	pt, _ := bench.PointFor(1024)
	fmt.Printf("2. MPI_Isend(1KB) on %s: min %.0fµs, mean %.0fµs, p99 %.0fµs — a distribution, not a number\n",
		pl, pt.Min()*1e6, pt.Avg()*1e6, pt.Hist.Quantile(0.99)*1e6)

	// --- 3. Fit parametric models to the histogram. ---------------------
	fits := stats.FitBest(pt.Hist)
	if len(fits) > 0 {
		fmt.Printf("3. best parametric fit: %s (KS distance %.3f)\n", fits[0].Name, fits[0].KS)
	}

	// --- 4. Predict with PEVPM, then verify by execution. ---------------
	j := workloads.Jacobi{XSize: 256, Iterations: 50, SweepSeconds: cluster.JacobiSweepSeconds}
	prog, err := j.Model()
	if err != nil {
		log.Fatal(err)
	}
	set := &mpibench.Set{Cluster: cfg.Name}
	set.Add(bench)
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpIsend, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := pevpm.EvaluateN(prog, pevpm.Options{Procs: 4, DB: db, Seed: 3, NodeOf: pl.NodeOf}, 10)
	if err != nil {
		log.Fatal(err)
	}
	actual, err := workloads.Execute(cfg, pl, 4, j.Run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. Jacobi on %s: PEVPM predicts %.4fs, actual execution %.4fs (%.1f%% apart)\n",
		pl, sum.Mean, actual.Makespan.Seconds(),
		100*abs(sum.Mean-actual.Makespan.Seconds())/actual.Makespan.Seconds())

	// --- 5. Trace an execution to see its time-structure. ---------------
	e := sim.NewEngine(5)
	netw := netsim.New(e, cfg)
	w := mpi.NewWorld(e, netw, pl)
	tl := trace.NewLog(0)
	w.SetTrace(tl)
	tiny := workloads.Jacobi{XSize: 256, Iterations: 3, SweepSeconds: cluster.JacobiSweepSeconds}
	w.Launch(tiny.Run)
	if _, err := w.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("5. three traced Jacobi iterations (C compute, r receive-wait, s send):")
	fmt.Print(tl.Gantt(70))
	for _, s := range tl.Summaries() {
		fmt.Printf("   rank%-2d: %2d sends, %2d recvs, compute %8v, recv-wait %8v\n",
			s.Rank, s.Sends, s.Recvs, s.Compute, s.RecvWait)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
