// Jacobi: the paper's §6 case study at reduced scale — predict the
// speedup of a 1-D decomposed Jacobi Iteration on the simulated Perseus
// cluster with PEVPM, using all four prediction modes of Figure 6, and
// compare against actually executing it.
//
// Run with: go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
	"repro/internal/workloads"
)

func main() {
	cfg := cluster.Perseus()
	j := workloads.Jacobi{
		XSize:        256,
		Iterations:   300,
		SweepSeconds: cluster.JacobiSweepSeconds,
	}
	fmt.Println("The PEVPM model (generated from the paper's Figure 5 directives):")
	fmt.Println(j.PVM())

	prog, err := j.Model()
	if err != nil {
		log.Fatal(err)
	}

	// Benchmark the machine once: MPI_Send distributions across the
	// configurations the predictions will interpolate between, plus the
	// single-node placement for the intra-node (loopback) path.
	var benchPls []cluster.Placement
	for _, spec := range [][2]int{{1, 2}, {2, 1}, {4, 1}, {8, 1}, {16, 1}, {32, 1}} {
		pl, err := cluster.NewPlacement(&cfg, spec[0], spec[1])
		if err != nil {
			log.Fatal(err)
		}
		benchPls = append(benchPls, pl)
	}
	fmt.Println("benchmarking MPI_Send with MPIBench (this is the expensive, once-per-machine step)...")
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op:          mpibench.OpSend,
		Sizes:       []int{0, 256, 1024, 4096},
		Repetitions: 120,
		Seed:        7,
	}, benchPls)
	if err != nil {
		log.Fatal(err)
	}
	distDB, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		log.Fatal(err)
	}
	modes := []struct {
		name string
		db   pevpm.PerfDB
	}{
		{"distributions", distDB},
		{"avg nxp", pevpm.Collapse(distDB, pevpm.ModeMean)},
		{"avg 2x1", pevpm.Collapse(pevpm.FixContention(distDB, 2), pevpm.ModeMean)},
		{"min 2x1", pevpm.Collapse(pevpm.FixContention(distDB, 2), pevpm.ModeMin)},
	}

	serial := j.SerialTime()
	fmt.Printf("\n%-8s%12s", "config", "measured")
	for _, m := range modes {
		fmt.Printf("%16s", m.name)
	}
	fmt.Println("\n        (speedups; the distribution mode should track the measured column)")

	for _, n := range []int{2, 4, 8, 16, 32} {
		pl, err := cluster.NewPlacement(&cfg, n, 1)
		if err != nil {
			log.Fatal(err)
		}
		actual, err := workloads.Execute(cfg, pl, uint64(100+n), j.Run)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s%12.2f", pl, serial/actual.Makespan.Seconds())
		for _, m := range modes {
			runs := 1
			if m.name == "distributions" {
				runs = 8
			}
			sum, err := pevpm.EvaluateN(prog, pevpm.Options{
				Procs: pl.NumProcs(), DB: m.db, Seed: uint64(200 + n), NodeOf: pl.NodeOf,
			}, runs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%16.2f", serial/sum.Mean)
		}
		fmt.Println()
	}
	fmt.Println("\nNote how the 2x1 (ping-pong) modes overestimate the speedup more and")
	fmt.Println("more as processors are added — the paper's central observation.")
}
