// Command detlint runs the determinism and zero-alloc analyzers over
// the repository (see internal/detlint and docs/DETLINT.md).
//
// Usage:
//
//	detlint [flags] [packages]
//	detlint ./...
//	detlint -json -analyzers wallclock,rng ./internal/...
//
// Packages default to ./... relative to the module root, which is
// discovered by walking up from the current directory. Exit status is 0
// when no error-severity findings were reported (warnings alone do not
// fail the run unless -werror is set), 1 when any error was found, and
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/detlint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	werror := fs.Bool("werror", false, "treat warnings as errors")
	analyzersArg := fs.String("analyzers", "",
		"comma-separated analyzer subset to run (default: all of "+analyzerNames()+")")
	detAll := fs.Bool("det-all", false,
		"treat every package as deterministic instead of the configured set")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: detlint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*analyzersArg)
	if err != nil {
		fmt.Fprintf(stderr, "detlint: %v\n", err)
		return 2
	}

	root, err := detlint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "detlint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := detlint.LoadPackages(root, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "detlint: %v\n", err)
		return 2
	}

	findings := detlint.RunPackages(pkgs, detlint.Config{
		Analyzers:          analyzers,
		ForceDeterministic: *detAll,
	})

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []detlint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "detlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
			if f.Fix != nil {
				fmt.Fprintf(stdout, "\tfix: %s\n", f.Fix.Description)
			}
		}
	}

	errors := detlint.Count(findings, detlint.SeverityError)
	warnings := detlint.Count(findings, detlint.SeverityWarning)
	if !*asJSON && len(findings) > 0 {
		fmt.Fprintf(stdout, "%d error(s), %d warning(s)\n", errors, warnings)
	}
	if errors > 0 || (*werror && warnings > 0) {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -analyzers flag against the registered
// families; empty means all.
func selectAnalyzers(arg string) ([]*detlint.Analyzer, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil
	}
	byName := make(map[string]*detlint.Analyzer)
	for _, a := range detlint.All() {
		byName[a.Name] = a
	}
	var out []*detlint.Analyzer
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", name, analyzerNames())
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -analyzers list")
	}
	return out, nil
}

func analyzerNames() string {
	var names []string
	for _, a := range detlint.All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ",")
}
