package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/detlint"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden JSON fixtures")

const (
	rngFixture  = "internal/detlint/testdata/src/rng"
	warnFixture = "internal/detlint/testdata/src/warnonly"
)

func runCLI(t *testing.T, argv ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(argv, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestRepoClean is the gate the Makefile target relies on: the
// repository's own packages carry no findings, warnings included.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	code, stdout, stderr := runCLI(t, "-werror", "./...")
	if code != 0 {
		t.Fatalf("detlint -werror ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

func TestExitCodeErrorFindings(t *testing.T) {
	code, stdout, _ := runCLI(t, "-det-all", "-analyzers", "rng", rngFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "[rng/math-rand-import]") {
		t.Errorf("missing math-rand-import finding:\n%s", stdout)
	}
	if !strings.Contains(stdout, "error(s)") {
		t.Errorf("missing summary line:\n%s", stdout)
	}
}

func TestExitCodeWarningsPassWithoutWerror(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-det-all", "-analyzers", "rng", warnFixture)
	if code != 0 {
		t.Fatalf("warnings-only run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "0 error(s), 1 warning(s)") {
		t.Errorf("expected a 0-error 1-warning summary:\n%s", stdout)
	}
}

func TestExitCodeWerrorPromotesWarnings(t *testing.T) {
	code, _, _ := runCLI(t, "-det-all", "-werror", "-analyzers", "rng", warnFixture)
	if code != 1 {
		t.Fatalf("warnings-only run under -werror = %d, want 1", code)
	}
}

func TestExitCodeUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-analyzers", "nosuch", rngFixture}, // unknown analyzer
		{"internal/detlint/no/such/dir"},     // unloadable package pattern
		{"-badflag"},                         // flag parse error
	}
	for _, argv := range cases {
		if code, _, _ := runCLI(t, argv...); code != 2 {
			t.Errorf("detlint %v = %d, want 2", argv, code)
		}
	}
}

// TestGoldenJSON pins the -json schema: field names, severity strings,
// module-relative paths and ordering. Regenerate deliberately with
// go test ./cmd/detlint -run TestGoldenJSON -update-golden.
func TestGoldenJSON(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-json", "-det-all", "-analyzers", "rng", rngFixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	golden := filepath.Join("testdata", "golden_rng.json")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(want) {
		t.Errorf("-json output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, stdout, want)
	}
	// The golden bytes must stay parseable as the public Finding schema.
	var back []detlint.Finding
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden does not parse as []detlint.Finding: %v", err)
	}
	if len(back) == 0 {
		t.Fatal("golden fixture is empty; it must pin at least one finding")
	}
	for _, f := range back {
		if f.Analyzer == "" || f.Rule == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("golden finding missing required fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("golden finding leaks an absolute path: %s", f.File)
		}
	}
}

func TestJSONEmptyArrayOnCleanRun(t *testing.T) {
	code, stdout, _ := runCLI(t, "-json", "-det-all", "-analyzers", "maprange", warnFixture)
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json run must print an empty array, got %q", stdout)
	}
}
