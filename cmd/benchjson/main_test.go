package main

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// cell builds an interval cell around a mean with symmetric half-width.
func cell(mean, half float64) Cell {
	return Cell{N: 3, Mean: mean, Lo: mean - half, Hi: mean + half, Min: mean - half, Max: mean + half}
}

func bench(metrics map[string]Cell) *File {
	return &File{Schema: Schema, Reps: 3, Calibration: 1.0, Metrics: metrics}
}

func TestCompareOverlappingIntervalsPass(t *testing.T) {
	base := bench(map[string]Cell{
		"fig1_wall_s": cell(2.0, 0.2),
		"fig1_ratio":  cell(1.70, 0.05),
	})
	cur := bench(map[string]Cell{
		"fig1_wall_s": cell(2.1, 0.2),   // overlaps [1.8, 2.2]
		"fig1_ratio":  cell(1.74, 0.02), // overlaps [1.65, 1.75]
	})
	if got, _ := compare(cur, base); got != 0 {
		t.Errorf("overlapping intervals: compare = %d, want 0", got)
	}
}

func TestCompareDisjointRegressionFails(t *testing.T) {
	base := bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.1)})
	cur := bench(map[string]Cell{"fig1_wall_s": cell(2.5, 0.1)}) // [2.4, 2.6] vs [1.9, 2.1]
	if got, _ := compare(cur, base); got != 1 {
		t.Errorf("disjoint wall regression: compare = %d, want 1", got)
	}
}

func TestCompareWallSpeedupPasses(t *testing.T) {
	// Disjoint in the IMPROVEMENT direction: current entirely below
	// baseline. Wall metrics only gate regressions.
	base := bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.1)})
	cur := bench(map[string]Cell{"fig1_wall_s": cell(0.5, 0.1)})
	if got, _ := compare(cur, base); got != 0 {
		t.Errorf("speedup: compare = %d, want 0", got)
	}
}

func TestCompareCalibrationNormalisesWall(t *testing.T) {
	// Machine half as fast: calibration doubles, wall doubles, the
	// normalised intervals coincide and the check passes.
	base := bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.2)})
	cur := bench(map[string]Cell{"fig1_wall_s": cell(4.0, 0.4)})
	cur.Calibration = 2.0
	if got, _ := compare(cur, base); got != 0 {
		t.Errorf("calibration-scaled wall: compare = %d, want 0", got)
	}
	// Same wall cells but the calibration says the machine is the same
	// speed: a genuine 2x simulator slowdown, disjoint, fails.
	cur.Calibration = 1.0
	if got, _ := compare(cur, base); got != 1 {
		t.Errorf("genuine wall regression: compare = %d, want 1", got)
	}
}

func TestCompareFigureDriftFailsBothDirections(t *testing.T) {
	base := bench(map[string]Cell{"fig1_ratio": cell(1.70, 0.02)})
	for _, mean := range []float64{1.90, 1.50} {
		cur := bench(map[string]Cell{"fig1_ratio": cell(mean, 0.02)})
		if got, _ := compare(cur, base); got != 1 {
			t.Errorf("disjoint figure drift to %v: compare = %d, want 1", mean, got)
		}
	}
}

func TestCompareMissingAndNewMetricsFail(t *testing.T) {
	base := bench(map[string]Cell{"gone": cell(3.0, 0.1)})
	cur := bench(map[string]Cell{"brand_new": cell(3.0, 0.1)})
	if got, _ := compare(cur, base); got != 1 {
		t.Errorf("metric set mismatch: compare = %d, want 1", got)
	}
}

func TestCompareBadCalibrationIsUsageError(t *testing.T) {
	// Zero, denormal-tiny, negative, NaN and Inf calibrations would all
	// poison every normalised wall ratio; each must abort the check.
	for name, cal := range map[string]float64{
		"zero":     0,
		"denormal": 5e-324,
		"tiny":     1e-12,
		"negative": -1.0,
		"nan":      math.NaN(),
		"inf":      math.Inf(1),
	} {
		base := bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.1)})
		cur := bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.1)})
		cur.Calibration = cal
		if got, _ := compare(cur, base); got != 2 {
			t.Errorf("%s calibration: compare = %d, want 2", name, got)
		}
		// The same applies when the baseline is the poisoned file.
		if got, _ := compare(base, cur); got != 2 {
			t.Errorf("%s baseline calibration: compare = %d, want 2", name, got)
		}
	}
}

func TestCompareNaNCellFailsLoudly(t *testing.T) {
	// NaN compares false against every threshold, so without an explicit
	// guard a NaN cell passes both gates silently.
	nan := Cell{N: 3, Mean: math.NaN(), Lo: math.NaN(), Hi: math.NaN()}
	base := bench(map[string]Cell{"fig1_ratio": cell(1.70, 0.02)})
	cur := bench(map[string]Cell{"fig1_ratio": nan})
	if got, _ := compare(cur, base); got != 1 {
		t.Errorf("NaN figure cell: compare = %d, want 1", got)
	}
	base = bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.1)})
	cur = bench(map[string]Cell{"fig1_wall_s": nan})
	if got, _ := compare(cur, base); got != 1 {
		t.Errorf("NaN wall cell: compare = %d, want 1", got)
	}
	// A NaN hiding in one bound only must fail too.
	half := cell(2.0, 0.1)
	half.Hi = math.Inf(1)
	cur = bench(map[string]Cell{"fig1_wall_s": half})
	if got, _ := compare(cur, base); got != 1 {
		t.Errorf("Inf bound: compare = %d, want 1", got)
	}
	// And in the baseline, not just the current run.
	cur = bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.1)})
	base = bench(map[string]Cell{"fig1_wall_s": nan})
	if got, _ := compare(cur, base); got != 1 {
		t.Errorf("NaN baseline cell: compare = %d, want 1", got)
	}
}

func TestCompareTouchingIntervalsPass(t *testing.T) {
	// Sharing exactly one point is overlap: the gate fails only on
	// strictly disjoint intervals.
	base := bench(map[string]Cell{"fig1_ratio": cell(1.0, 0.1)}) // [0.9, 1.1]
	cur := bench(map[string]Cell{"fig1_ratio": cell(1.2, 0.1)})  // [1.1, 1.3]
	if got, _ := compare(cur, base); got != 0 {
		t.Errorf("touching intervals: compare = %d, want 0", got)
	}
}

func TestLegacyBandsStillWork(t *testing.T) {
	base := bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.0), "fig1_ratio": cell(1.70, 0)})
	cur := bench(map[string]Cell{"fig1_wall_s": cell(2.1, 0.0), "fig1_ratio": cell(1.72, 0)})
	if got, _ := compareLegacy(cur, base, 0.15, 0.05); got != 0 {
		t.Errorf("within legacy bands: compare = %d, want 0", got)
	}
	cur = bench(map[string]Cell{"fig1_wall_s": cell(2.5, 0.0), "fig1_ratio": cell(1.72, 0)})
	if got, _ := compareLegacy(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("25%% wall regression: legacy compare = %d, want 1", got)
	}
	cur = bench(map[string]Cell{"fig1_wall_s": cell(2.0, 0.0), "fig1_ratio": cell(1.90, 0)})
	if got, _ := compareLegacy(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("12%% figure drift: legacy compare = %d, want 1", got)
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadFileRejectsSchemaMismatch(t *testing.T) {
	// A v1 ledger (bare float metrics) must be refused loudly, not
	// silently reinterpreted as empty intervals.
	v1 := writeTemp(t, "v1.json", `{"schema":1,"go":"go1.x","metrics":{"fig1_ratio":1.7}}`)
	if _, err := readFile(v1); err == nil || !strings.Contains(err.Error(), "schema 1") {
		t.Errorf("v1 file: err = %v, want schema mismatch", err)
	}
	v3 := writeTemp(t, "v3.json", `{"schema":3,"metrics":{}}`)
	if _, err := readFile(v3); err == nil || !strings.Contains(err.Error(), "schema 3") {
		t.Errorf("v3 file: err = %v, want schema mismatch", err)
	}
}

func TestRunCheckSchemaMismatchExitsTwo(t *testing.T) {
	v1 := writeTemp(t, "old.json", `{"schema":1,"metrics":{"fig1_ratio":1.7}}`)
	v2 := writeTemp(t, "new.json",
		`{"schema":2,"reps":3,"calibration_wall_s":1,"metrics":{"fig1_ratio":{"n":3,"mean":1.7,"lo":1.6,"hi":1.8,"min":1.6,"max":1.8}}}`)
	if got := runCheck(v2, v1, false, 0.15, 0.05); got != 2 {
		t.Errorf("v1 baseline: runCheck = %d, want 2", got)
	}
	if got := runCheck(v1, v2, false, 0.15, 0.05); got != 2 {
		t.Errorf("v1 current: runCheck = %d, want 2", got)
	}
}

func TestStepSummaryTable(t *testing.T) {
	summary := filepath.Join(t.TempDir(), "summary.md")
	t.Setenv("GITHUB_STEP_SUMMARY", summary)

	base := bench(map[string]Cell{"fig1_ratio": cell(1.70, 0.02), "fig1_wall_s": cell(2.0, 0.1)})
	cur := bench(map[string]Cell{"fig1_ratio": cell(1.90, 0.02), "fig1_wall_s": cell(2.05, 0.1)})
	code, rows := compare(cur, base)
	if code != 1 {
		t.Fatalf("compare = %d, want 1", code)
	}
	if err := writeStepSummary(rows, code); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(summary)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{
		"Benchmark gate: FAIL",
		"| metric | baseline (95% CI) | current (95% CI) | verdict |",
		"`fig1_ratio`",
		"`fig1_wall_s`",
		"intervals disjoint",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("step summary missing %q:\n%s", want, out)
		}
	}
}

func TestStepSummaryUnsetIsNoop(t *testing.T) {
	t.Setenv("GITHUB_STEP_SUMMARY", "")
	if err := writeStepSummary([]verdictRow{{name: "x"}}, 0); err != nil {
		t.Errorf("unset summary path: %v", err)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed (compare reports through fmt.Printf).
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCompareNewMetricLinesSorted pins a determinism property of the
// report: FAIL lines for metrics missing from the baseline must print
// in sorted order, not map order. Several iterations make a relapse
// into map order overwhelmingly likely to trip the sorted check.
func TestCompareNewMetricLinesSorted(t *testing.T) {
	base := bench(map[string]Cell{})
	base.Metrics["anchor"] = cell(1, 0)
	cur := bench(map[string]Cell{
		"anchor": cell(1, 0),
		"new_e":  cell(1, 0), "new_b": cell(2, 0), "new_d": cell(3, 0),
		"new_a": cell(4, 0), "new_c": cell(5, 0),
	})
	for i := 0; i < 16; i++ {
		out := captureStdout(t, func() {
			if got, _ := compare(cur, base); got != 1 {
				t.Errorf("compare = %d, want 1", got)
			}
		})
		var names []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "FAIL new_") {
				names = append(names, strings.Fields(line)[1])
			}
		}
		if len(names) != 5 {
			t.Fatalf("iteration %d: got %d new-metric FAIL lines, want 5:\n%s", i, len(names), out)
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("iteration %d: new-metric FAIL lines out of order: %v", i, names)
		}
	}
}

// TestFirstNonFiniteStable pins the companion fix in measure: when
// several metrics are non-finite, the one named in the error is the
// alphabetically first, not whichever map order surfaced.
func TestFirstNonFiniteStable(t *testing.T) {
	m := map[string]float64{
		"a_fine": 1.0,
		"b_bad":  math.NaN(),
		"m_bad":  math.Inf(1),
		"z_bad":  math.NaN(),
	}
	for i := 0; i < 32; i++ {
		name, v, bad := firstNonFinite(m)
		if !bad || name != "b_bad" || !math.IsNaN(v) {
			t.Fatalf("iteration %d: firstNonFinite = (%q, %v, %v), want (b_bad, NaN, true)", i, name, v, bad)
		}
	}
	if _, _, bad := firstNonFinite(map[string]float64{"ok": 1}); bad {
		t.Error("all-finite map reported a bad metric")
	}
}

func TestIsWall(t *testing.T) {
	for name, want := range map[string]bool{
		"fig1_wall_s":        true,
		"collectives_wall_s": true,
		"fig1_ratio":         false,
		"_wall_s":            false, // bare suffix is not a metric name
	} {
		if got := isWall(name); got != want {
			t.Errorf("isWall(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestMeasurePatternBandwidth(t *testing.T) {
	a, err := measurePatternBandwidth(1)
	if err != nil {
		t.Fatal(err)
	}
	if a <= 0 {
		t.Fatalf("bandwidth = %v, want > 0", a)
	}
	// The metric is a figure metric: deterministic given the seed.
	b, err := measurePatternBandwidth(1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("pattern_dense_bw not deterministic: %v vs %v", a, b)
	}
}
