package main

import (
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"testing"
)

func bench(metrics map[string]float64) *File {
	return &File{Schema: 1, Metrics: metrics}
}

func TestCompareWithinBounds(t *testing.T) {
	base := bench(map[string]float64{
		"calibration_wall_s": 1.0,
		"fig1_wall_s":        2.0,
		"fig1_ratio":         1.70,
	})
	cur := bench(map[string]float64{
		"calibration_wall_s": 2.0, // machine half as fast...
		"fig1_wall_s":        4.1, // ...wall scales with it (+2.5% normalised)
		"fig1_ratio":         1.72,
	})
	if got := compare(cur, base, 0.15, 0.05); got != 0 {
		t.Errorf("compare = %d, want 0", got)
	}
}

func TestCompareWallRegressionFails(t *testing.T) {
	base := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": 2.0})
	cur := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": 2.5})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("25%% wall regression: compare = %d, want 1", got)
	}
}

func TestCompareSpeedupPasses(t *testing.T) {
	base := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": 2.0})
	cur := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": 0.5})
	if got := compare(cur, base, 0.15, 0.05); got != 0 {
		t.Errorf("speedup: compare = %d, want 0", got)
	}
}

func TestCompareMetricDriftFails(t *testing.T) {
	base := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_ratio": 1.70})
	cur := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_ratio": 1.90})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("12%% drift: compare = %d, want 1", got)
	}
}

func TestCompareMissingAndNewMetricsFail(t *testing.T) {
	base := bench(map[string]float64{"calibration_wall_s": 1.0, "gone": 3.0})
	cur := bench(map[string]float64{"calibration_wall_s": 1.0, "brand_new": 3.0})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("schema mismatch: compare = %d, want 1", got)
	}
}

func TestCompareMissingCalibrationIsUsageError(t *testing.T) {
	base := bench(map[string]float64{"fig1_ratio": 1.70})
	cur := bench(map[string]float64{"fig1_ratio": 1.70})
	if got := compare(cur, base, 0.15, 0.05); got != 2 {
		t.Errorf("no calibration: compare = %d, want 2", got)
	}
}

func TestCompareBadCalibrationIsUsageError(t *testing.T) {
	// Zero, denormal-tiny, negative, NaN and Inf calibrations would all
	// poison every normalised wall ratio; each must abort the check.
	for name, cal := range map[string]float64{
		"zero":     0,
		"denormal": 5e-324,
		"tiny":     1e-12,
		"negative": -1.0,
		"nan":      math.NaN(),
		"inf":      math.Inf(1),
	} {
		base := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": 2.0})
		cur := bench(map[string]float64{"calibration_wall_s": cal, "fig1_wall_s": 2.0})
		if got := compare(cur, base, 0.15, 0.05); got != 2 {
			t.Errorf("%s calibration: compare = %d, want 2", name, got)
		}
		// The same applies when the baseline is the poisoned file.
		if got := compare(base, cur, 0.15, 0.05); got != 2 {
			t.Errorf("%s baseline calibration: compare = %d, want 2", name, got)
		}
	}
}

func TestCompareNaNMetricFailsLoudly(t *testing.T) {
	// NaN compares false against every threshold, so without an explicit
	// guard a NaN metric passes both gates silently.
	base := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_ratio": 1.70})
	cur := bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_ratio": math.NaN()})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("NaN figure metric: compare = %d, want 1", got)
	}
	base = bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": 2.0})
	cur = bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": math.NaN()})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("NaN wall metric: compare = %d, want 1", got)
	}
	cur = bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": math.Inf(1)})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("Inf wall metric: compare = %d, want 1", got)
	}
	// A NaN in the *baseline* must fail too, not just in the current run.
	cur = bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": 2.0})
	base = bench(map[string]float64{"calibration_wall_s": 1.0, "fig1_wall_s": math.NaN()})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("NaN baseline metric: compare = %d, want 1", got)
	}
}

func TestCompareZeroBaselineMetric(t *testing.T) {
	// Equal zeros agree exactly (drift 0); a zero baseline against a
	// different current value must fail rather than divide to Inf/NaN.
	base := bench(map[string]float64{"calibration_wall_s": 1.0, "fig_zero": 0.0})
	cur := bench(map[string]float64{"calibration_wall_s": 1.0, "fig_zero": 0.0})
	if got := compare(cur, base, 0.15, 0.05); got != 0 {
		t.Errorf("equal zeros: compare = %d, want 0", got)
	}
	cur = bench(map[string]float64{"calibration_wall_s": 1.0, "fig_zero": 0.1})
	if got := compare(cur, base, 0.15, 0.05); got != 1 {
		t.Errorf("zero baseline, nonzero current: compare = %d, want 1", got)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// what it printed (compare reports through fmt.Printf).
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestCompareNewMetricLinesSorted pins the fix for a nondeterministic
// report: FAIL lines for metrics missing from the baseline used to be
// printed straight out of a map range, so two runs over the same pair
// of files ordered them differently. Several iterations make a relapse
// into map order overwhelmingly likely to trip the sorted check.
func TestCompareNewMetricLinesSorted(t *testing.T) {
	base := bench(map[string]float64{"calibration_wall_s": 1.0})
	cur := bench(map[string]float64{
		"calibration_wall_s": 1.0,
		"new_e":              1, "new_b": 2, "new_d": 3, "new_a": 4, "new_c": 5,
	})
	for i := 0; i < 16; i++ {
		out := captureStdout(t, func() {
			if got := compare(cur, base, 0.15, 0.05); got != 1 {
				t.Errorf("compare = %d, want 1", got)
			}
		})
		var names []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "FAIL new_") {
				names = append(names, strings.Fields(line)[1])
			}
		}
		if len(names) != 5 {
			t.Fatalf("iteration %d: got %d new-metric FAIL lines, want 5:\n%s", i, len(names), out)
		}
		if !sort.StringsAreSorted(names) {
			t.Fatalf("iteration %d: new-metric FAIL lines out of order: %v", i, names)
		}
	}
}

// TestFirstNonFiniteStable pins the companion fix in measure: when
// several metrics are non-finite, the one named in the error is the
// alphabetically first, not whichever map order surfaced.
func TestFirstNonFiniteStable(t *testing.T) {
	m := map[string]float64{
		"a_fine": 1.0,
		"b_bad":  math.NaN(),
		"m_bad":  math.Inf(1),
		"z_bad":  math.NaN(),
	}
	for i := 0; i < 32; i++ {
		name, v, bad := firstNonFinite(m)
		if !bad || name != "b_bad" || !math.IsNaN(v) {
			t.Fatalf("iteration %d: firstNonFinite = (%q, %v, %v), want (b_bad, NaN, true)", i, name, v, bad)
		}
	}
	if _, _, bad := firstNonFinite(map[string]float64{"ok": 1}); bad {
		t.Error("all-finite map reported a bad metric")
	}
}

func TestIsWall(t *testing.T) {
	for name, want := range map[string]bool{
		"fig1_wall_s":        true,
		"collectives_wall_s": true,
		"fig1_ratio":         false,
		"_wall_s":            false, // bare suffix is not a metric name
	} {
		if got := isWall(name); got != want {
			t.Errorf("isWall(%q) = %v, want %v", name, got, want)
		}
	}
}
