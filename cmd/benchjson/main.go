// Command benchjson runs a reduced-density version of every figure
// experiment — replicated across independent seeds — and writes
// per-metric interval summaries to a JSON file, the repository's
// benchmark ledger. A second mode compares two such files with a
// confidence-interval overlap test and fails on regression, which is
// the `make bench-check` CI gate.
//
// Usage:
//
//	benchjson -out BENCH.json [-seed S] [-reps 3] [-parallel W]
//	benchjson -check -current BENCH.json -baseline BENCH_baseline.json
//	benchjson -check -legacy-tol [-tol 0.15] [-dtol 0.05] ...   (deprecated)
//
// Schema 2 stores each metric as a cell: the mean across -reps
// replications (each a full figure run on its own sub-seeded RNG
// universe), a 95% Student-t confidence interval, and the observed
// min/max. Two metric classes live in the file:
//
//   - Figure metrics (everything not ending in _wall_s) are
//     seed-deterministic model outputs — the quantities EXPERIMENTS.md
//     compares against the paper. Replication across seeds turns their
//     seed sensitivity into an honest interval; -check fails only when
//     the current and baseline intervals are disjoint, i.e. the change
//     is larger than both measurements' noise.
//   - Wall-clock metrics (*_wall_s) measure how long each figure took.
//     Before comparing, -check divides them by the run's own
//     calibration_wall_s — a fixed pure-arithmetic spin measured in the
//     same process — so a slower CI machine cancels out. They fail only
//     in the regression direction: the current interval lying entirely
//     above the baseline's. Speedups never fail.
//
// When GITHUB_STEP_SUMMARY is set, -check appends a markdown verdict
// table (metric, baseline interval, current interval, verdict) to it.
//
// The -legacy-tol flag restores the old fixed percentage bands
// (-tol/-dtol) on cell means. It exists as an escape hatch while
// baselines migrate and will be removed; it warns on stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/mpibench"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Schema is the ledger layout version this benchjson reads and writes.
// Version 1 stored bare float64 metrics; version 2 stores interval
// cells. -check refuses mismatched files rather than guessing.
const Schema = 2

// ciLevel is the confidence level of every stored interval.
const ciLevel = 0.95

// Cell is one metric's interval summary across the replications.
type Cell struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Lo   float64 `json:"lo"` // 95% Student-t bounds on the mean
	Hi   float64 `json:"hi"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// interval adapts a cell (optionally normalised by cal) to the stats
// interval the overlap test runs on.
func (c Cell) interval(cal float64) stats.Interval {
	return stats.Interval{
		Point: c.Mean / cal, Lo: c.Lo / cal, Hi: c.Hi / cal,
		Level: ciLevel, N: uint64(c.N),
	}
}

func (c Cell) finite() bool {
	return finite(c.Mean) && finite(c.Lo) && finite(c.Hi) && finite(c.Min) && finite(c.Max)
}

// File is the on-disk schema of BENCH.json.
type File struct {
	Schema int    `json:"schema"`
	Go     string `json:"go"`
	Seed   uint64 `json:"seed"`
	Reps   int    `json:"reps"`

	// Calibration is the wall time of a fixed pure-arithmetic spin
	// measured once per file; wall cells are compared as multiples of
	// it so machine speed divides out of the regression check.
	Calibration float64 `json:"calibration_wall_s"`

	Metrics map[string]Cell `json:"metrics"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH.json", "file to write metrics to")
	seed := fs.Uint64("seed", 1, "root simulation seed (replications sub-seed from it)")
	reps := fs.Int("reps", 3, "independent replications per metric (min 2)")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	check := fs.Bool("check", false, "compare -current against -baseline instead of running")
	current := fs.String("current", "BENCH.json", "current metrics file for -check")
	baseline := fs.String("baseline", "BENCH_baseline.json", "baseline metrics file for -check")
	legacy := fs.Bool("legacy-tol", false, "DEPRECATED: use fixed -tol/-dtol bands on means instead of CI overlap")
	tol := fs.Float64("tol", 0.15, "allowed relative wall-clock regression (only with -legacy-tol)")
	dtol := fs.Float64("dtol", 0.05, "allowed relative drift of figure metrics (only with -legacy-tol)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *check {
		return runCheck(*current, *baseline, *legacy, *tol, *dtol)
	}
	f, err := measure(*seed, *reps, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := writeFile(*out, f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Printf("benchjson: wrote %d metrics (%d replications each) to %s\n",
		len(f.Metrics), f.Reps, *out)
	return 0
}

// benchParams mirrors the density bench_test.go uses: fast enough for
// every CI run while preserving each figure's headline feature.
func benchParams(seed uint64, workers int) experiments.Params {
	p := experiments.Quick()
	p.Repetitions = 60
	p.Iterations = 200
	p.EvalRuns = 3
	p.Seed = seed
	p.Workers = workers
	return p
}

// calibrate measures a fixed amount of pure arithmetic. Wall metrics are
// compared as multiples of this, so machine speed divides out of the
// regression check while simulator slowdowns do not.
func calibrate() float64 {
	//detlint:allow wallclock -- the *_wall_s ledger metrics are wall timings by design; they are calibration-normalised, never diffed byte-for-byte
	start := time.Now()
	x := uint64(0x9e3779b97f4a7c15)
	var sink uint64
	for i := 0; i < 200_000_000; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		sink ^= z ^ (z >> 31)
	}
	if sink == 42 { // defeat dead-code elimination
		fmt.Fprintln(os.Stderr, "")
	}
	//detlint:allow wallclock -- see calibrate: wall metrics are the ledger's measurement, not simulation output
	return time.Since(start).Seconds()
}

// measure runs the full metric suite reps times, each replication on an
// independent sub-seeded RNG universe, and folds the results into
// interval cells.
func measure(seed uint64, reps, workers int) (*File, error) {
	if reps < 2 {
		reps = 2 // one observation has no interval
	}
	series := map[string][]float64{}
	for rep := 0; rep < reps; rep++ {
		repSeed := sim.SubSeed(seed, fmt.Sprintf("bench:rep%d", rep))
		m, err := measureOnce(repSeed, workers)
		if err != nil {
			return nil, fmt.Errorf("replication %d: %w", rep, err)
		}
		if name, v, bad := firstNonFinite(m); bad {
			return nil, fmt.Errorf("replication %d: metric %s is %v", rep, name, v)
		}
		var names []string
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			series[name] = append(series[name], m[name])
		}
	}

	f := &File{
		Schema:      Schema,
		Go:          runtime.Version(),
		Seed:        seed,
		Reps:        reps,
		Calibration: calibrate(),
		Metrics:     make(map[string]Cell, len(series)),
	}
	var names []string
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		xs := series[name]
		if len(xs) != reps {
			return nil, fmt.Errorf("metric %s present in %d of %d replications", name, len(xs), reps)
		}
		var sum stats.Summary
		for _, x := range xs {
			sum.Add(x)
		}
		iv := stats.StudentCI(sum, ciLevel)
		f.Metrics[name] = Cell{
			N: reps, Mean: sum.Mean, Lo: iv.Lo, Hi: iv.Hi, Min: sum.Min, Max: sum.Max,
		}
	}
	return f, nil
}

// measureOnce runs every figure experiment once and returns the flat
// metric map for this replication (figure metrics plus wall timings).
func measureOnce(seed uint64, workers int) (map[string]float64, error) {
	cfg := cluster.Perseus()
	p := benchParams(seed, workers)
	m := map[string]float64{}

	timed := func(name string, f func() error) error {
		//detlint:allow wallclock -- *_wall_s metrics are deliberate wall timings, normalised by calibrate() before comparison
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		//detlint:allow wallclock -- see above: ledger wall metric, not simulation output
		m[name+"_wall_s"] = time.Since(start).Seconds()
		return nil
	}

	curveAt := func(curves []experiments.Curve, label string, size int) float64 {
		for _, c := range curves {
			if c.Label != label {
				continue
			}
			for i, s := range c.Sizes {
				if s == size {
					return c.Micros[i]
				}
			}
		}
		return math.NaN()
	}

	if err := timed("fig1", func() error {
		curves, err := experiments.Figure1(cfg, p)
		if err != nil {
			return err
		}
		m["fig1_contention_ratio_1KB"] = curveAt(curves, "64x1", 1024) / curveAt(curves, "2x1", 1024)
		m["fig1_us_per_op_2x1_1KB"] = curveAt(curves, "2x1", 1024)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig2", func() error {
		curves, err := experiments.Figure2(cfg, p)
		if err != nil {
			return err
		}
		t2 := curveAt(curves, "2x1", 16384)
		m["fig2_goodput_2x1_16KB_mbit"] = 16384 * 8 / (t2 / 1e6) / 1e6
		m["fig2_saturation_ratio_64x1_16KB"] = curveAt(curves, "64x1", 16384) / curveAt(curves, "8x1", 16384)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig3", func() error {
		pdfs, err := experiments.Figure3(cfg, p)
		if err != nil {
			return err
		}
		for _, pdf := range pdfs {
			if pdf.Size == 1024 {
				m["fig3_rel_spread_64x2_1KB"] = (pdf.Mean - pdf.Min) / pdf.Mean
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig4", func() error {
		pdfs, err := experiments.Figure4(cfg, p)
		if err != nil {
			return err
		}
		for _, pdf := range pdfs {
			if pdf.Size == 16384 {
				m["fig4_tail_ratio_64x1_16KB"] = pdf.Max / pdf.Mean
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig6", func() error {
		p6 := p
		p6.MaxNodes = 32
		res, err := experiments.Figure6(cfg, p6, nil)
		if err != nil {
			return err
		}
		measured, _ := res.SeriesByLabel("measured")
		dist, _ := res.SeriesByLabel("pevpm distributions")
		worst := 0.0
		for i := range measured.Procs {
			if e := math.Abs(dist.Speedups[i]-measured.Speedups[i]) / measured.Speedups[i]; e > worst {
				worst = e
			}
		}
		m["fig6_worst_dist_error_pct"] = worst * 100
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("shardrun", func() error {
		// The sharded large-cluster run: 256 nodes over a fat tree,
		// partitioned one LP per leaf. The makespan is a figure metric
		// (seed-deterministic, worker-independent); the wall metric
		// watches the sharded engine's execution cost.
		rep, err := experiments.LargeRun(experiments.LargeRunSpec{
			Topo: "fattree:256x32x8", Rounds: 1, Window: 2, Size: 8192,
			Seed: seed, Workers: workers,
		})
		if err != nil {
			return err
		}
		m["shardrun_makespan_s"] = rep.Makespan.Seconds()
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("pattern", func() error {
		bw, err := measurePatternBandwidth(seed)
		if err != nil {
			return err
		}
		m["pattern_dense_bw"] = bw
		return nil
	}); err != nil {
		return nil, err
	}

	if err := measureService(m, timed, seed, workers); err != nil {
		return nil, err
	}

	if err := timed("collectives", func() error {
		pc := p
		pc.MaxNodes = 16
		rows, err := experiments.CollectiveTable(cfg, pc, 1024)
		if err != nil {
			return err
		}
		var b4, b16 float64
		for _, r := range rows {
			if r.Op == mpibench.OpBcast && r.Procs == 4 {
				b4 = r.MeanUs
			}
			if r.Op == mpibench.OpBcast && r.Procs == 16 {
				b16 = r.MeanUs
			}
		}
		m["collective_bcast_4to16_growth"] = b16 / b4
		return nil
	}); err != nil {
		return nil, err
	}

	return m, nil
}

// measureService drives the prediction service in-process: one cold
// request (lint → database fit → Monte-Carlo prediction → encode) and
// one identical cached request that must replay from the response cache
// without re-running prediction. service_predict_wall_s and
// service_cached_wall_s land under the CI-overlap wall gate, and the
// cached path is additionally asserted strictly faster than the cold
// path in-process — the cache serving slower than computing would be a
// correctness bug, not noise. The predicted mean makespan is the
// figure metric: seed-deterministic and worker-independent.
func measureService(m map[string]float64, timed func(string, func() error) error, seed uint64, workers int) error {
	svc := service.New(service.Config{Workers: workers})
	defer svc.Close()

	req, err := json.Marshal(service.Request{
		Model: "PEVPM Param bytes = 1024\n" +
			"PEVPM Loop iterations = 2\n" +
			"PEVPM {\n" +
			"PEVPM   Serial time = 0.001\n" +
			"PEVPM   Message type = MPI_Isend\n" +
			"PEVPM   &       size = bytes\n" +
			"PEVPM   &       from = procnum\n" +
			"PEVPM   &       to = (procnum + 1) % numprocs\n" +
			"PEVPM   Message type = MPI_Recv\n" +
			"PEVPM   &       size = bytes\n" +
			"PEVPM   &       from = (procnum + numprocs - 1) % numprocs\n" +
			"PEVPM   &       to = procnum\n" +
			"PEVPM }\n",
		Procs: 8,
		Seed:  seed,
		Runs:  8,
		Bench: service.BenchSpec{
			Sizes:       []int{0, 1024},
			Placements:  []string{"2x1", "8x1"},
			Repetitions: 10,
			WarmUp:      4,
			SyncProbes:  4,
			Seed:        1,
		},
	})
	if err != nil {
		return err
	}

	if err := timed("service_predict", func() error {
		res := svc.HandleRequest(context.Background(), req)
		if res.Status != 200 {
			return fmt.Errorf("service: status %d: %s", res.Status, res.Body)
		}
		if res.Cache != "miss" {
			return fmt.Errorf("service: cold request reported cache %q", res.Cache)
		}
		var resp service.Response
		if err := json.Unmarshal(res.Body, &resp); err != nil {
			return err
		}
		m["service_predict_mean_s"] = resp.Prediction.Mean
		return nil
	}); err != nil {
		return err
	}

	if err := timed("service_cached", func() error {
		res := svc.HandleRequest(context.Background(), req)
		if res.Status != 200 {
			return fmt.Errorf("service: cached status %d", res.Status)
		}
		if res.Cache != "hit" {
			return fmt.Errorf("service: repeat request reported cache %q, want hit", res.Cache)
		}
		return nil
	}); err != nil {
		return err
	}

	st := svc.Stats()
	if st.Caches["response"].Hits < 1 {
		return fmt.Errorf("service: response cache reported %d hits after a cached request", st.Caches["response"].Hits)
	}
	if st.Predictions != 1 {
		return fmt.Errorf("service: %d predictions executed for 2 identical requests, want 1", st.Predictions)
	}
	if m["service_cached_wall_s"] >= m["service_predict_wall_s"] {
		return fmt.Errorf("service: cached wall %.6fs not strictly below uncached %.6fs — the response cache is not serving",
			m["service_cached_wall_s"], m["service_predict_wall_s"])
	}
	return nil
}

// measurePatternBandwidth runs the Dense group-to-group pattern on a
// fat tree (docs/PATTERNS.md) and returns the achieved bandwidth — a
// figure metric, seed-deterministic and worker-independent; the wall
// metric around it watches the pattern engine's execution cost.
func measurePatternBandwidth(seed uint64) (float64, error) {
	topo, nodes, err := cluster.ParseTopology("fattree:128x32x4")
	if err != nil {
		return 0, err
	}
	pcfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		return 0, err
	}
	pl, err := cluster.NewPlacement(&pcfg, 128, 1)
	if err != nil {
		return 0, err
	}
	res, err := mpibench.RunPattern(pcfg, mpibench.PatternSpec{
		Pattern: mpibench.PatternDense, P: 32, G: 4, K: 2,
		Direction: mpibench.Unidirectional, Window: 2,
		Placement: pl, Sizes: []int{16384},
		Rounds: 8, WarmUp: 2, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	return res.Points[0].Bandwidth, nil
}

// firstNonFinite scans in sorted order so the metric named in the
// error is stable when several are non-finite (map order would pick
// one at random).
func firstNonFinite(m map[string]float64) (string, float64, bool) {
	checked := make([]string, 0, len(m))
	for name := range m {
		checked = append(checked, name)
	}
	sort.Strings(checked)
	for _, name := range checked {
		if v := m[name]; !finite(v) {
			return name, v, true
		}
	}
	return "", 0, false
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readFile loads a ledger and refuses any schema other than the one
// this binary writes. A v1 file (bare float metrics) or a future v3
// must be regenerated, not reinterpreted: the gate's semantics live in
// the schema.
func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if probe.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %d, but this benchjson speaks schema %d — regenerate the file (make bench-baseline for the baseline)",
			path, probe.Schema, Schema)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Metrics) == 0 {
		return nil, fmt.Errorf("%s: no metrics", path)
	}
	return &f, nil
}

func isWall(name string) bool {
	const suffix = "_wall_s"
	return len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix
}

// finite reports whether v is an ordinary number (not NaN or ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// usableCalibration rejects calibrations that would poison every
// normalised wall ratio: NaN/Inf, non-positive, and denormal-tiny values
// from a glitched or too-coarse clock. The genuine spin takes whole
// seconds, so anything under a microsecond is a measurement failure.
func usableCalibration(v float64) bool { return finite(v) && v >= 1e-6 }

// verdictRow is one line of the comparison report and of the CI
// step-summary table.
type verdictRow struct {
	name     string
	baseline string // formatted baseline interval
	current  string // formatted current interval
	verdict  string // "ok" or a failure description
	failed   bool
}

func runCheck(currentPath, baselinePath string, legacy bool, tol, dtol float64) int {
	cur, err := readFile(currentPath)
	if err == nil {
		var base *File
		base, err = readFile(baselinePath)
		if err == nil {
			var code int
			var rows []verdictRow
			if legacy {
				fmt.Fprintln(os.Stderr, "benchjson: -legacy-tol is deprecated; the CI-overlap test is the supported gate and this flag will be removed")
				code, rows = compareLegacy(cur, base, tol, dtol)
			} else {
				code, rows = compare(cur, base)
			}
			if err := writeStepSummary(rows, code); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: step summary: %v\n", err)
			}
			return code
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	return 2
}

// metricNames returns the union-ordered comparison plan: baseline names
// sorted, then current-only names sorted — so reports and verdict
// tables are deterministic.
func metricNames(cur, base *File) (names []string, newOnly []string) {
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for name := range cur.Metrics {
		if _, ok := base.Metrics[name]; !ok {
			newOnly = append(newOnly, name)
		}
	}
	sort.Strings(newOnly)
	return names, newOnly
}

func fmtInterval(c Cell, cal float64) string {
	iv := c.interval(cal)
	return fmt.Sprintf("%.4g [%.4g, %.4g]", iv.Point, iv.Lo, iv.Hi)
}

// compare is the CI-overlap gate. Figure metrics fail when the current
// and baseline intervals are disjoint in either direction; wall metrics
// (calibration-normalised) fail only when the current interval lies
// entirely above the baseline's — a slowdown bigger than both runs'
// noise. Fixed percentage bands appear nowhere: the measurements
// themselves say how much noise is normal.
func compare(cur, base *File) (int, []verdictRow) {
	if !usableCalibration(cur.Calibration) || !usableCalibration(base.Calibration) {
		fmt.Fprintf(os.Stderr, "benchjson: unusable calibration_wall_s (current %v, baseline %v); refresh both files\n",
			cur.Calibration, base.Calibration)
		return 2, nil
	}

	names, newOnly := metricNames(cur, base)
	var rows []verdictRow
	failures := 0
	for _, name := range names {
		b := base.Metrics[name]
		c, ok := cur.Metrics[name]
		row := verdictRow{name: name}
		switch {
		case !ok:
			row.baseline = fmtInterval(b, 1)
			row.current = "—"
			row.verdict, row.failed = "missing from current run (refresh the baseline?)", true
		case !c.finite() || !b.finite():
			// NaN/Inf would sail through every comparison below (NaN
			// compares false against everything) and pass silently.
			row.baseline = fmtInterval(b, 1)
			row.current = fmtInterval(c, 1)
			row.verdict, row.failed = "non-finite value", true
		case isWall(name):
			// Normalise by each run's own calibration so only simulator
			// slowdowns — not slower CI hardware — count as regressions.
			bi, ci := b.interval(base.Calibration), c.interval(cur.Calibration)
			row.baseline = fmtInterval(b, base.Calibration) + "× cal"
			row.current = fmtInterval(c, cur.Calibration) + "× cal"
			if ci.Lo > bi.Hi {
				row.verdict, row.failed = "slower: intervals disjoint in the regression direction", true
			} else {
				row.verdict = "ok"
			}
		default:
			bi, ci := b.interval(1), c.interval(1)
			row.baseline = fmtInterval(b, 1)
			row.current = fmtInterval(c, 1)
			if !stats.Overlap(bi, ci) {
				row.verdict, row.failed = "drift: intervals disjoint", true
			} else {
				row.verdict = "ok"
			}
		}
		rows = append(rows, row)
	}
	for _, name := range newOnly {
		rows = append(rows, verdictRow{
			name:     name,
			baseline: "—",
			current:  fmtInterval(cur.Metrics[name], 1),
			verdict:  "new metric not in baseline (refresh BENCH_baseline.json)",
			failed:   true,
		})
	}

	for _, row := range rows {
		status := "ok  "
		if row.failed {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-34s %28s vs %28s  %s\n", status, row.name, row.current, row.baseline, row.verdict)
	}
	if failures > 0 {
		fmt.Printf("benchjson: %d metric(s) outside CI overlap — see docs/BENCHMARKING.md for how to read this and docs/CI.md for how to refresh the baseline\n", failures)
		return 1, rows
	}
	fmt.Printf("benchjson: all %d metrics within CI overlap\n", len(names))
	return 0, rows
}

// compareLegacy is the deprecated fixed-band gate, kept behind
// -legacy-tol for baseline migration: wall means within 1+tol of the
// baseline (calibration-normalised), figure means within dtol drift.
func compareLegacy(cur, base *File, tol, dtol float64) (int, []verdictRow) {
	if !usableCalibration(cur.Calibration) || !usableCalibration(base.Calibration) {
		fmt.Fprintf(os.Stderr, "benchjson: unusable calibration_wall_s (current %v, baseline %v); refresh both files\n",
			cur.Calibration, base.Calibration)
		return 2, nil
	}
	names, newOnly := metricNames(cur, base)
	var rows []verdictRow
	failures := 0
	for _, name := range names {
		b := base.Metrics[name]
		c, ok := cur.Metrics[name]
		row := verdictRow{name: name, baseline: fmt.Sprintf("%.4g", b.Mean)}
		switch {
		case !ok:
			row.current = "—"
			row.verdict, row.failed = "missing from current run", true
		case !finite(c.Mean) || !finite(b.Mean):
			row.current = fmt.Sprintf("%v", c.Mean)
			row.verdict, row.failed = "non-finite value", true
		case isWall(name):
			cn, bn := c.Mean/cur.Calibration, b.Mean/base.Calibration
			ratio := cn / bn
			row.baseline = fmt.Sprintf("%.3fx cal", bn)
			row.current = fmt.Sprintf("%.3fx cal", cn)
			if !finite(ratio) || ratio > 1+tol {
				row.verdict, row.failed = fmt.Sprintf("%+.1f%% over limit +%.0f%%", (ratio-1)*100, tol*100), true
			} else {
				row.verdict = "ok"
			}
		default:
			drift := 0.0
			if c.Mean != b.Mean {
				drift = math.Abs(c.Mean-b.Mean) / math.Abs(b.Mean)
			}
			row.current = fmt.Sprintf("%.4g", c.Mean)
			if !finite(drift) || drift > dtol {
				row.verdict, row.failed = fmt.Sprintf("drift %.2f%% over limit %.0f%%", drift*100, dtol*100), true
			} else {
				row.verdict = "ok"
			}
		}
		rows = append(rows, row)
	}
	for _, name := range newOnly {
		rows = append(rows, verdictRow{
			name: name, baseline: "—", current: fmt.Sprintf("%.4g", cur.Metrics[name].Mean),
			verdict: "new metric not in baseline", failed: true,
		})
	}
	for _, row := range rows {
		status := "ok  "
		if row.failed {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-34s %20s vs %20s  %s\n", status, row.name, row.current, row.baseline, row.verdict)
	}
	if failures > 0 {
		fmt.Printf("benchjson: %d metric(s) regressed or drifted (legacy bands)\n", failures)
		return 1, rows
	}
	fmt.Printf("benchjson: all %d metrics within legacy bands\n", len(names))
	return 0, rows
}

// writeStepSummary appends the verdict table to the file named by
// GITHUB_STEP_SUMMARY, when set — the markdown GitHub renders on the
// workflow run page. A no-op outside Actions.
func writeStepSummary(rows []verdictRow, code int) error {
	//detlint:allow wallclock -- CI reporting plumbing: the step-summary path comes from the Actions runner, never from simulation code
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" || rows == nil {
		return nil
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	head := "### Benchmark gate: PASS ✅\n\n"
	if code != 0 {
		head = "### Benchmark gate: FAIL ❌\n\n"
	}
	fmt.Fprint(f, head)
	fmt.Fprint(f, "| metric | baseline (95% CI) | current (95% CI) | verdict |\n")
	fmt.Fprint(f, "|---|---|---|---|\n")
	for _, row := range rows {
		verdict := "✅ " + row.verdict
		if row.failed {
			verdict = "❌ " + row.verdict
		}
		fmt.Fprintf(f, "| `%s` | %s | %s | %s |\n", row.name, row.baseline, row.current, verdict)
	}
	fmt.Fprint(f, "\nWall metrics are calibration-normalised and fail only in the regression direction; figure metrics fail when intervals are disjoint either way. See docs/BENCHMARKING.md.\n")
	return f.Close()
}
