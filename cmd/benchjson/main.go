// Command benchjson runs a reduced-density version of every figure
// experiment and writes the headline metrics to a JSON file — the
// repository's benchmark ledger. A second mode compares two such files
// and fails on regression, which is the `make bench-check` CI gate.
//
// Usage:
//
//	benchjson -out BENCH.json [-seed S] [-parallel W]
//	benchjson -check -current BENCH.json -baseline BENCH_baseline.json [-tol 0.15] [-dtol 0.05]
//
// Two metric classes live in the file:
//
//   - Figure metrics (everything not ending in _wall_s) are
//     seed-deterministic model outputs — the quantities EXPERIMENTS.md
//     compares against the paper. They drift only when the simulation
//     itself changes, so -check holds them to the tight -dtol bound.
//   - Wall-clock metrics (*_wall_s) measure how long each figure took.
//     Before comparing, -check divides them by the run's own
//     calibration_wall_s — a fixed pure-arithmetic spin measured in the
//     same process — so a slower CI machine cancels out and only a
//     slowdown of the simulator itself trips the -tol (default 15%)
//     regression bound. Speedups never fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/mpibench"
)

// File is the on-disk schema of BENCH.json.
type File struct {
	Schema  int                `json:"schema"`
	Go      string             `json:"go"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("out", "BENCH.json", "file to write metrics to")
	seed := fs.Uint64("seed", 1, "simulation seed")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	check := fs.Bool("check", false, "compare -current against -baseline instead of running")
	current := fs.String("current", "BENCH.json", "current metrics file for -check")
	baseline := fs.String("baseline", "BENCH_baseline.json", "baseline metrics file for -check")
	tol := fs.Float64("tol", 0.15, "allowed relative wall-clock regression")
	dtol := fs.Float64("dtol", 0.05, "allowed relative drift of deterministic figure metrics")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *check {
		return runCheck(*current, *baseline, *tol, *dtol)
	}
	f, err := measure(*seed, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := writeFile(*out, f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Printf("benchjson: wrote %d metrics to %s\n", len(f.Metrics), *out)
	return 0
}

// benchParams mirrors the density bench_test.go uses: fast enough for
// every CI run while preserving each figure's headline feature.
func benchParams(seed uint64, workers int) experiments.Params {
	p := experiments.Quick()
	p.Repetitions = 60
	p.Iterations = 200
	p.EvalRuns = 3
	p.Seed = seed
	p.Workers = workers
	return p
}

// calibrate measures a fixed amount of pure arithmetic. Wall metrics are
// compared as multiples of this, so machine speed divides out of the
// regression check while simulator slowdowns do not.
func calibrate() float64 {
	//detlint:allow wallclock -- the *_wall_s ledger metrics are wall timings by design; they are calibration-normalised, never diffed byte-for-byte
	start := time.Now()
	x := uint64(0x9e3779b97f4a7c15)
	var sink uint64
	for i := 0; i < 200_000_000; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		sink ^= z ^ (z >> 31)
	}
	if sink == 42 { // defeat dead-code elimination
		fmt.Fprintln(os.Stderr, "")
	}
	//detlint:allow wallclock -- see calibrate: wall metrics are the ledger's measurement, not simulation output
	return time.Since(start).Seconds()
}

func measure(seed uint64, workers int) (*File, error) {
	cfg := cluster.Perseus()
	p := benchParams(seed, workers)
	m := map[string]float64{"calibration_wall_s": calibrate()}

	timed := func(name string, f func() error) error {
		//detlint:allow wallclock -- *_wall_s metrics are deliberate wall timings, normalised by calibrate() before comparison
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		//detlint:allow wallclock -- see above: ledger wall metric, not simulation output
		m[name+"_wall_s"] = time.Since(start).Seconds()
		return nil
	}

	curveAt := func(curves []experiments.Curve, label string, size int) float64 {
		for _, c := range curves {
			if c.Label != label {
				continue
			}
			for i, s := range c.Sizes {
				if s == size {
					return c.Micros[i]
				}
			}
		}
		return math.NaN()
	}

	if err := timed("fig1", func() error {
		curves, err := experiments.Figure1(cfg, p)
		if err != nil {
			return err
		}
		m["fig1_contention_ratio_1KB"] = curveAt(curves, "64x1", 1024) / curveAt(curves, "2x1", 1024)
		m["fig1_us_per_op_2x1_1KB"] = curveAt(curves, "2x1", 1024)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig2", func() error {
		curves, err := experiments.Figure2(cfg, p)
		if err != nil {
			return err
		}
		t2 := curveAt(curves, "2x1", 16384)
		m["fig2_goodput_2x1_16KB_mbit"] = 16384 * 8 / (t2 / 1e6) / 1e6
		m["fig2_saturation_ratio_64x1_16KB"] = curveAt(curves, "64x1", 16384) / curveAt(curves, "8x1", 16384)
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig3", func() error {
		pdfs, err := experiments.Figure3(cfg, p)
		if err != nil {
			return err
		}
		for _, pdf := range pdfs {
			if pdf.Size == 1024 {
				m["fig3_rel_spread_64x2_1KB"] = (pdf.Mean - pdf.Min) / pdf.Mean
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig4", func() error {
		pdfs, err := experiments.Figure4(cfg, p)
		if err != nil {
			return err
		}
		for _, pdf := range pdfs {
			if pdf.Size == 16384 {
				m["fig4_tail_ratio_64x1_16KB"] = pdf.Max / pdf.Mean
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("fig6", func() error {
		p6 := p
		p6.MaxNodes = 32
		res, err := experiments.Figure6(cfg, p6, nil)
		if err != nil {
			return err
		}
		measured, _ := res.SeriesByLabel("measured")
		dist, _ := res.SeriesByLabel("pevpm distributions")
		worst := 0.0
		for i := range measured.Procs {
			if e := math.Abs(dist.Speedups[i]-measured.Speedups[i]) / measured.Speedups[i]; e > worst {
				worst = e
			}
		}
		m["fig6_worst_dist_error_pct"] = worst * 100
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("collectives", func() error {
		pc := p
		pc.MaxNodes = 16
		rows, err := experiments.CollectiveTable(cfg, pc, 1024)
		if err != nil {
			return err
		}
		var b4, b16 float64
		for _, r := range rows {
			if r.Op == mpibench.OpBcast && r.Procs == 4 {
				b4 = r.MeanUs
			}
			if r.Op == mpibench.OpBcast && r.Procs == 16 {
				b16 = r.MeanUs
			}
		}
		m["collective_bcast_4to16_growth"] = b16 / b4
		return nil
	}); err != nil {
		return nil, err
	}

	if name, v, bad := firstNonFinite(m); bad {
		return nil, fmt.Errorf("metric %s is %v", name, v)
	}
	return &File{Schema: 1, Go: runtime.Version(), Metrics: m}, nil
}

// firstNonFinite scans in sorted order so the metric named in the
// error is stable when several are non-finite (map order would pick
// one at random).
func firstNonFinite(m map[string]float64) (string, float64, bool) {
	checked := make([]string, 0, len(m))
	for name := range m {
		checked = append(checked, name)
	}
	sort.Strings(checked)
	for _, name := range checked {
		if v := m[name]; !finite(v) {
			return name, v, true
		}
	}
	return "", 0, false
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Metrics) == 0 {
		return nil, fmt.Errorf("%s: no metrics", path)
	}
	return &f, nil
}

func isWall(name string) bool {
	const suffix = "_wall_s"
	return len(name) > len(suffix) && name[len(name)-len(suffix):] == suffix
}

// finite reports whether v is an ordinary number (not NaN or ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// usableCalibration rejects calibrations that would poison every
// normalised wall ratio: NaN/Inf, non-positive, and denormal-tiny values
// from a glitched or too-coarse clock. The genuine spin takes whole
// seconds, so anything under a microsecond is a measurement failure.
func usableCalibration(v float64) bool { return finite(v) && v >= 1e-6 }

func runCheck(currentPath, baselinePath string, tol, dtol float64) int {
	cur, err := readFile(currentPath)
	if err == nil {
		var base *File
		base, err = readFile(baselinePath)
		if err == nil {
			return compare(cur, base, tol, dtol)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	return 2
}

func compare(cur, base *File, tol, dtol float64) int {
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)

	curCal, baseCal := cur.Metrics["calibration_wall_s"], base.Metrics["calibration_wall_s"]
	if !usableCalibration(curCal) || !usableCalibration(baseCal) {
		fmt.Fprintf(os.Stderr, "benchjson: unusable calibration_wall_s (current %v, baseline %v); refresh both files\n",
			curCal, baseCal)
		return 2
	}

	failures := 0
	for _, name := range names {
		b := base.Metrics[name]
		c, ok := cur.Metrics[name]
		if !ok {
			fmt.Printf("FAIL %-34s missing from current run (refresh the baseline?)\n", name)
			failures++
			continue
		}
		switch {
		case name == "calibration_wall_s":
			fmt.Printf("ok   %-34s %10.3f vs %10.3f (machine-speed reference)\n", name, c, b)
		case !finite(c) || !finite(b):
			// NaN/Inf would sail through every `>` comparison below
			// (NaN compares false against everything) and pass silently.
			fmt.Printf("FAIL %-34s non-finite value (current %v, baseline %v)\n", name, c, b)
			failures++
		case isWall(name):
			// Normalise by each run's own calibration so only simulator
			// slowdowns — not slower CI hardware — count as regressions.
			cn, bn := c/curCal, b/baseCal
			ratio := cn / bn
			status := "ok  "
			if !finite(ratio) || ratio > 1+tol {
				status = "FAIL"
				failures++
			}
			fmt.Printf("%s %-34s %10.3fx calibration vs %10.3fx (%+.1f%%, limit +%.0f%%)\n",
				status, name, cn, bn, (ratio-1)*100, tol*100)
		default:
			drift := 0.0
			if c != b {
				drift = math.Abs(c-b) / math.Abs(b)
			}
			status := "ok  "
			if !finite(drift) || drift > dtol {
				status = "FAIL"
				failures++
			}
			fmt.Printf("%s %-34s %10.4f vs %10.4f (drift %.2f%%, limit %.0f%%)\n",
				status, name, c, b, drift*100, dtol*100)
		}
	}
	// Collect-then-sort: printing inside the map range made the FAIL
	// line order nondeterministic whenever two or more metrics were new.
	var missing []string
	for name := range cur.Metrics {
		if _, ok := base.Metrics[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("FAIL %-34s new metric not in baseline (refresh BENCH_baseline.json)\n", name)
		failures++
	}
	if failures > 0 {
		fmt.Printf("benchjson: %d metric(s) regressed or drifted — see docs/CI.md for how to refresh the baseline\n", failures)
		return 1
	}
	fmt.Printf("benchjson: all %d metrics within bounds\n", len(names))
	return 0
}
