// Command repro regenerates every figure of the paper on the simulated
// Perseus cluster and prints the series as aligned tables.
//
// Usage:
//
//	repro [-fig N] [-full] [-seed S] [-parallel W] [-faults SCENARIO]
//
// With no -fig flag every figure (1, 2, 3, 4, 6) is produced. -full runs
// at the paper's sampling density (slower); the default "quick"
// parameters preserve every qualitative feature.
//
// -parallel spreads the independent simulation cells of each figure over
// W worker goroutines (default 0 = GOMAXPROCS). Output is bit-identical
// for every worker count — -parallel=1 is the serial escape hatch CI
// diffs the default against. -timing=false suppresses the wall-clock
// cost line of Figure 6, leaving only seed-deterministic output.
//
// -faults runs the perturbed sweep instead of the figures: benchmarks
// and the Figure-6 Jacobi comparison re-measured under a fault-scenario
// preset ("all" reports every preset; see docs/FAULTS.md).
//
// -metrics and -metrics-prom export the merged instrument snapshot of
// everything the invocation simulated (sim kernel, network, MPI layer,
// PEVPM, sweep pool) as JSON and Prometheus text. The snapshot derives
// only from simulation state, so the files are byte-identical for every
// -parallel value; see docs/OBSERVABILITY.md.
//
// This command always runs the serial flat-Perseus model; the committed
// golden transcripts `make determinism` diffs it against are unchanged
// by the sharded execution engine, which has its own gate in the same
// target (a 2048-node fat tree via `cmd/run -app largerun`, diffed at
// 1 vs 4 shards — see docs/TOPOLOGY.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1,2,3,4,6); 0 = all")
	full := flag.Bool("full", false, "run at the paper's sampling density")
	seed := flag.Uint64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for sweep cells (0 = GOMAXPROCS, 1 = serial)")
	timing := flag.Bool("timing", true, "print the Figure 6 wall-clock cost line (disable for byte-stable output)")
	collectives := flag.Bool("collectives", false, "also print the collective-operation scaling table (thesis companion data)")
	faultsFlag := flag.String("faults", "", "run the perturbed sweep under a fault scenario preset (\"all\" = every preset)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (see make profile)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	metricsOut := flag.String("metrics", "", "write the merged instrument snapshot as JSON to this file (conventionally METRICS.json)")
	metricsProm := flag.String("metrics-prom", "", "write the merged instrument snapshot as Prometheus text to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "repro: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: memprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			runtime.GC() // settle accounting so the profile reflects live + cumulative allocs
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "repro: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	params := experiments.Quick()
	if *full {
		params = experiments.Full()
	}
	params.Seed = *seed
	params.Workers = *parallel
	cfg := cluster.Perseus()

	var agg *metrics.Aggregate
	if *metricsOut != "" || *metricsProm != "" {
		agg = metrics.NewAggregate()
		params.Metrics = agg
	}
	saveMetrics := func() {
		if agg == nil {
			return
		}
		snap := agg.Snapshot()
		if *metricsOut != "" {
			if err := snap.SaveJSON(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "repro: metrics: %v\n", err)
				os.Exit(1)
			}
		}
		if *metricsProm != "" {
			if err := snap.SavePrometheus(*metricsProm); err != nil {
				fmt.Fprintf(os.Stderr, "repro: metrics-prom: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *faultsFlag != "" {
		if err := printPerturbed(cfg, params, *faultsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "repro: faults: %v\n", err)
			os.Exit(1)
		}
		saveMetrics()
		return
	}

	run := func(n int, f func() error) {
		if *fig != 0 && *fig != n {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "repro: figure %d: %v\n", n, err)
			os.Exit(1)
		}
	}
	run(1, func() error {
		return printCurves(1, "Average MPI_Isend times, small messages", cfg, params, experiments.Figure1)
	})
	run(2, func() error {
		return printCurves(2, "Average MPI_Isend times, large messages", cfg, params, experiments.Figure2)
	})
	run(3, func() error {
		return printPDFs(3, "MPI_Isend distributions, 64x2, small messages", cfg, params, experiments.Figure3)
	})
	run(4, func() error {
		return printPDFs(4, "MPI_Isend distributions, 64x1, saturation", cfg, params, experiments.Figure4)
	})
	run(6, func() error { return printFigure6(cfg, params, *timing) })
	if *collectives {
		if err := printCollectives(cfg, params); err != nil {
			fmt.Fprintf(os.Stderr, "repro: collectives: %v\n", err)
			os.Exit(1)
		}
	}
	saveMetrics()
}

// printPerturbed runs the perturbed sweep and prints the report for one
// scenario preset, or for every preset when name is "all". The output
// contains no wall-clock-dependent lines, so CI can diff serial against
// parallel runs byte for byte.
func printPerturbed(cfg cluster.Config, p experiments.Params, name string) error {
	if name != "all" {
		names := cluster.ScenarioNames()
		known := false
		for _, n := range names {
			if n == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown scenario %q (have %v, or \"all\")", name, names)
		}
	}
	res, err := experiments.PerturbedSweep(cfg, p)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Perturbed sweep: measured vs PEVPM-predicted under fault scenarios ==\n")
	fmt.Printf("fault windows drawn over [0, %.3fs); healthy baseline: measured %.6fs predicted %.6fs error %.1f%%\n",
		res.Span, res.HealthyMeasured, res.HealthyPredicted, res.HealthyModelError)
	for _, sc := range res.Scenarios {
		if name != "all" && sc.Scenario != name {
			continue
		}
		fmt.Printf("\n-- %s --\n", sc.Scenario)
		for _, r := range sc.Rules {
			fmt.Printf("   rule: %s\n", r)
		}
		fmt.Printf("%-10s%-8s%14s%14s%12s%12s%9s%8s\n",
			"op", "bytes", "healthy-mean", "fault-mean", "healthy-max", "fault-max", "retries", "drops")
		for _, row := range sc.Bench {
			fmt.Printf("%-10s%-8d%13.1fµ%13.1fµ%11.1fµ%11.1fµ%9d%8d\n",
				row.Op, row.Size, row.HealthyMeanUs, row.FaultMeanUs,
				row.HealthyMaxUs, row.FaultMaxUs, row.Retries, row.FaultDrops)
		}
		fmt.Printf("jacobi: measured %.6fs predicted %.6fs model error %.1f%%\n",
			sc.MeasuredMakespan, sc.PredictedMakespan, sc.ModelErrorPct)
	}
	return nil
}

func printCollectives(cfg cluster.Config, p experiments.Params) error {
	const size = 1024
	rows, err := experiments.CollectiveTable(cfg, p, size)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Collective scaling (per-rank completion, %d-byte payloads, µs) ==\n", size)
	fmt.Printf("%-14s%-8s%12s%12s%12s\n", "op", "config", "min", "mean", "p99")
	for _, r := range rows {
		fmt.Printf("%-14s%-8s%12.1f%12.1f%12.1f\n", r.Op, r.Placement, r.MinUs, r.MeanUs, r.P99Us)
	}
	return nil
}

func printCurves(n int, title string, cfg cluster.Config, p experiments.Params,
	f func(cluster.Config, experiments.Params) ([]experiments.Curve, error)) error {
	curves, err := f(cfg, p)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Figure %d: %s (time per op, µs) ==\n", n, title)
	fmt.Printf("%-8s", "bytes")
	for _, c := range curves {
		fmt.Printf("%12s", c.Label)
	}
	fmt.Println()
	for i, size := range curves[0].Sizes {
		fmt.Printf("%-8d", size)
		for _, c := range curves {
			fmt.Printf("%12.1f", c.Micros[i])
		}
		fmt.Println()
	}
	return nil
}

func printPDFs(n int, title string, cfg cluster.Config, p experiments.Params,
	f func(cluster.Config, experiments.Params) ([]experiments.PDF, error)) error {
	pdfs, err := f(cfg, p)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Figure %d: %s ==\n", n, title)
	for _, pdf := range pdfs {
		fmt.Printf("\n-- %s: min %.1fµs mean %.1fµs max %.1fµs --\n",
			pdf.Label, pdf.Min*1e6, pdf.Mean*1e6, pdf.Max*1e6)
		// A terminal histogram: probability mass per bin.
		total := uint64(0)
		for _, b := range pdf.Bins {
			total += b.Count
		}
		shown := 0
		for _, b := range pdf.Bins {
			frac := float64(b.Count) / float64(total)
			if frac < 0.005 && shown > 24 {
				continue // keep sparse far tails out of the terminal plot
			}
			bar := int(frac*200 + 0.5)
			if bar > 60 {
				bar = 60
			}
			fmt.Printf("%10.1fµs %6.2f%% %s\n", b.Lo*1e6, frac*100, bars(bar))
			shown++
		}
	}
	return nil
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func printFigure6(cfg cluster.Config, p experiments.Params, timing bool) error {
	//detlint:allow wallclock -- -timing output is opt-in and excluded from the determinism diffs (ci runs -timing=false)
	start := time.Now()
	//detlint:allow wallclock -- same: wall seconds only ever reach the opt-in -timing lines
	elapsed := func() float64 { return time.Since(start).Seconds() }
	if !timing {
		elapsed = nil // keep the output free of wall-clock-dependent lines
	}
	res, err := experiments.Figure6(cfg, p, elapsed)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Figure 6: Jacobi speedups, measured vs PEVPM predictions ==\n")
	fmt.Printf("%-8s%-7s", "config", "procs")
	for _, s := range res.Series {
		fmt.Printf("%22s", s.Label)
	}
	fmt.Println()
	measured := res.Series[0]
	for i := range measured.Procs {
		fmt.Printf("%-8s%-7d", measured.Configs[i], measured.Procs[i])
		for _, s := range res.Series {
			fmt.Printf("%22.2f", s.Speedups[i])
		}
		fmt.Println()
	}

	// Error bars: the replicated series (measured executions and the
	// Monte-Carlo distribution mode) carry 95% confidence bounds; the
	// deterministic point-value modes have nothing to report.
	var barred []experiments.SpeedupSeries
	for _, s := range res.Series {
		if s.HasErrorBars() {
			barred = append(barred, s)
		}
	}
	if len(barred) > 0 {
		fmt.Printf("\n95%% speedup intervals from replicated runs:\n")
		fmt.Printf("%-8s%-7s", "config", "procs")
		for _, s := range barred {
			fmt.Printf("%30s", s.Label)
		}
		fmt.Println()
		for i := range measured.Procs {
			fmt.Printf("%-8s%-7d", measured.Configs[i], measured.Procs[i])
			for _, s := range barred {
				fmt.Printf("%30s", fmt.Sprintf("%.2f [%.2f, %.2f]", s.Speedups[i], s.Los[i], s.His[i]))
			}
			fmt.Println()
		}
	}
	if timing {
		fmt.Printf("\nmodelled processor time: %.1f s; PEVPM evaluation wall time: %.1f s (%.1fx faster)\n",
			res.ProcessorSeconds, res.EvalSeconds, res.ProcessorSeconds/res.EvalSeconds)
		fmt.Println("(the paper reports PEVPM simulating 11h15m of processor time in under 10 minutes, 67.5x)")
	}
	return nil
}
