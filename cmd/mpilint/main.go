// Command mpilint statically checks PEVPM models (.pvm files) for
// communication-correctness bugs: ranks addressed outside the job,
// sends without receives, deadlock cycles among blocking operations,
// unbound parameters, dead Runon branches and more.
//
// Usage:
//
//	mpilint [flags] model.pvm [model2.pvm ...]
//	mpilint -procs 2,8,64 -json examples/jacobi/jacobi.pvm
//
// Each model is analyzed once per requested world size. Exit status is
// 0 when no errors were found (warnings alone do not fail the run
// unless -werror is set), 1 when any error-severity finding was
// reported, and 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/mpilint"
	"repro/internal/pevpm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	procsArg := fs.String("procs", "8", "comma-separated world sizes to analyze at")
	eager := fs.Int("eager", mpilint.DefaultEagerLimit,
		"eager/rendezvous protocol switch in bytes")
	unroll := fs.Int("unroll", 2, "loop iterations the deadlock search unrolls")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	werror := fs.Bool("werror", false, "treat warnings as errors")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mpilint [flags] model.pvm [model2.pvm ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	procs, err := parseProcs(*procsArg)
	if err != nil {
		fmt.Fprintf(stderr, "mpilint: %v\n", err)
		return 2
	}

	var all []mpilint.Finding
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "mpilint: %v\n", err)
			return 2
		}
		prog, err := pevpm.ParseFile(path, string(src))
		if err != nil {
			fmt.Fprintf(stderr, "mpilint: %v\n", err)
			return 2
		}
		for _, p := range procs {
			found, err := mpilint.Analyze(prog, mpilint.Options{
				Procs:      p,
				EagerLimit: *eager,
				MaxUnroll:  *unroll,
			})
			if err != nil {
				fmt.Fprintf(stderr, "mpilint: %s: %v\n", path, err)
				return 2
			}
			all = append(all, found...)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []mpilint.Finding{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(stderr, "mpilint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range all {
			fmt.Fprintln(stdout, f.String())
		}
	}

	errors := mpilint.Count(all, mpilint.SeverityError)
	warnings := mpilint.Count(all, mpilint.SeverityWarning)
	if !*asJSON && len(all) > 0 {
		fmt.Fprintf(stdout, "%d error(s), %d warning(s)\n", errors, warnings)
	}
	if errors > 0 || (*werror && warnings > 0) {
		return 1
	}
	return 0
}

// parseProcs parses the -procs list ("8" or "2,8,64").
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -procs value %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -procs list")
	}
	return out, nil
}
