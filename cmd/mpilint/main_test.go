package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mpilint"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden JSON fixtures")

const fixtures = "../../internal/mpilint/testdata/"

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLICleanModelExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "../../examples/jacobi/jacobi.pvm")
	if code != 0 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean model produced output: %q", out)
	}
}

func TestCLIDeadlockExitsOne(t *testing.T) {
	code, out, _ := runCLI(t, "-procs", "4", fixtures+"deadlock_ring.pvm")
	if code != 1 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "deadlock-cycle") || !strings.Contains(out, "circular wait") {
		t.Errorf("output missing deadlock diagnosis:\n%s", out)
	}
	if !strings.Contains(out, "deadlock_ring.pvm:6") {
		t.Errorf("output does not cite file:line:\n%s", out)
	}
}

func TestCLIJSONOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-procs", "2", "-json", fixtures+"unmatched_send.pvm")
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	var fs []mpilint.Finding
	if err := json.Unmarshal([]byte(out), &fs); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(fs) != 1 || fs[0].Rule != mpilint.RuleUnmatchedSend {
		t.Errorf("findings = %+v", fs)
	}
}

// TestCLIJSONGolden pins the -json schema byte-for-byte: field names,
// severity strings, position format and finding order. Downstream
// tooling parses this output, so drift must be deliberate — regenerate
// with go test ./cmd/mpilint -run TestCLIJSONGolden -update-golden.
func TestCLIJSONGolden(t *testing.T) {
	code, out, stderr := runCLI(t, "-procs", "4", "-json", fixtures+"deadlock_ring.pvm")
	if code != 1 {
		t.Fatalf("exit = %d\nstderr:\n%s", code, stderr)
	}
	golden := filepath.Join("testdata", "golden_deadlock_ring.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("-json output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, out, want)
	}
	var fs []mpilint.Finding
	if err := json.Unmarshal(want, &fs); err != nil {
		t.Fatalf("golden does not parse as []mpilint.Finding: %v", err)
	}
	if len(fs) == 0 {
		t.Fatal("golden fixture is empty; it must pin at least one finding")
	}
	for _, f := range fs {
		if f.Rule == "" || f.Pos == "" || f.Message == "" {
			t.Errorf("golden finding missing required fields: %+v", f)
		}
	}
}

func TestCLIParseErrorExitsTwo(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "broken.pvm")
	if err := os.WriteFile(bad, []byte("PEVPM Message type =\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, bad)
	if code != 2 || stderr == "" {
		t.Errorf("parse error: exit = %d, stderr = %q, want 2 with a message", code, stderr)
	}
}

func TestCLIJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "../../examples/jacobi/jacobi.pvm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

func TestCLIWerrorPromotesWarnings(t *testing.T) {
	// self_send.pvm produces only warnings: exit 0 normally, 1 with -werror.
	if code, out, _ := runCLI(t, "-procs", "2", fixtures+"self_send.pvm"); code != 0 {
		t.Fatalf("warnings-only exit = %d, output:\n%s", code, out)
	}
	if code, _, _ := runCLI(t, "-procs", "2", "-werror", fixtures+"self_send.pvm"); code != 1 {
		t.Fatalf("-werror did not promote warnings")
	}
}

func TestCLIMultipleProcs(t *testing.T) {
	// The head-on eager exchange is clean at the default limit but its
	// Runon only covers ranks 0 and 1, so larger worlds stay clean too
	// (extra ranks are idle).
	code, _, _ := runCLI(t, "-procs", "2,4", fixtures+"clean_headon_eager.pvm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// Dropping the eager limit makes every analyzed size deadlock.
	code, out, _ := runCLI(t, "-procs", "2", "-eager", "512", fixtures+"clean_headon_eager.pvm")
	if code != 1 || !strings.Contains(out, "deadlock-cycle") {
		t.Fatalf("eager override: exit = %d, output:\n%s", code, out)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no arguments should exit 2")
	}
	if code, _, _ := runCLI(t, "-procs", "zero", fixtures+"clean_ring.pvm"); code != 2 {
		t.Error("bad -procs should exit 2")
	}
	if code, _, errb := runCLI(t, "no-such-file.pvm"); code != 2 || errb == "" {
		t.Error("missing file should exit 2 with a message")
	}
}
