package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/mpilint"
)

const fixtures = "../../internal/mpilint/testdata/"

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLICleanModelExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "../../examples/jacobi/jacobi.pvm")
	if code != 0 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean model produced output: %q", out)
	}
}

func TestCLIDeadlockExitsOne(t *testing.T) {
	code, out, _ := runCLI(t, "-procs", "4", fixtures+"deadlock_ring.pvm")
	if code != 1 {
		t.Fatalf("exit = %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "deadlock-cycle") || !strings.Contains(out, "circular wait") {
		t.Errorf("output missing deadlock diagnosis:\n%s", out)
	}
	if !strings.Contains(out, "deadlock_ring.pvm:5") {
		t.Errorf("output does not cite file:line:\n%s", out)
	}
}

func TestCLIJSONOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-procs", "2", "-json", fixtures+"unmatched_send.pvm")
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	var fs []mpilint.Finding
	if err := json.Unmarshal([]byte(out), &fs); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if len(fs) != 1 || fs[0].Rule != mpilint.RuleUnmatchedSend {
		t.Errorf("findings = %+v", fs)
	}
}

func TestCLIJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "../../examples/jacobi/jacobi.pvm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want []", out)
	}
}

func TestCLIWerrorPromotesWarnings(t *testing.T) {
	// self_send.pvm produces only warnings: exit 0 normally, 1 with -werror.
	if code, out, _ := runCLI(t, "-procs", "2", fixtures+"self_send.pvm"); code != 0 {
		t.Fatalf("warnings-only exit = %d, output:\n%s", code, out)
	}
	if code, _, _ := runCLI(t, "-procs", "2", "-werror", fixtures+"self_send.pvm"); code != 1 {
		t.Fatalf("-werror did not promote warnings")
	}
}

func TestCLIMultipleProcs(t *testing.T) {
	// The head-on eager exchange is clean at the default limit but its
	// Runon only covers ranks 0 and 1, so larger worlds stay clean too
	// (extra ranks are idle).
	code, _, _ := runCLI(t, "-procs", "2,4", fixtures+"clean_headon_eager.pvm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// Dropping the eager limit makes every analyzed size deadlock.
	code, out, _ := runCLI(t, "-procs", "2", "-eager", "512", fixtures+"clean_headon_eager.pvm")
	if code != 1 || !strings.Contains(out, "deadlock-cycle") {
		t.Fatalf("eager override: exit = %d, output:\n%s", code, out)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no arguments should exit 2")
	}
	if code, _, _ := runCLI(t, "-procs", "zero", fixtures+"clean_ring.pvm"); code != 2 {
		t.Error("bad -procs should exit 2")
	}
	if code, _, errb := runCLI(t, "no-such-file.pvm"); code != 2 || errb == "" {
		t.Error("missing file should exit 2 with a message")
	}
}
