// Command mpibench runs the MPIBench communication benchmark on the
// simulated cluster and writes the measured distributions.
//
// Usage:
//
//	mpibench -op MPI_Isend -config 64x2 -sizes 0,1024,16384 \
//	         -reps 300 -out results.json
//
// Multiple -config values (comma-separated) produce a result set that
// cmd/pevpm can use as its performance database. With -summary the
// per-size statistics print to stdout as well.
//
// -topo retargets the simulated machine onto a hierarchical topology
// (cluster.ParseTopology grammar, docs/TOPOLOGY.md), e.g.
// "fattree:2048x32x8" or "dragonfly:8x4x8+2rail"; placements then fill
// leaf switches first and the manifest's cluster hash covers the full
// topology.
//
// -pattern switches to the group-to-group pattern engine
// (docs/PATTERNS.md): Rail/Fan/Dense matrices parameterised by -pgk
// and -direction, driven in windowed rounds of -window in-flight
// messages per pair. Comma-separated -pattern, -pgk and -window values
// sweep their cross product:
//
//	mpibench -pattern dense -topo fattree:2048x32x8 -pgk 32x4x2 \
//	         -direction omni -window 2,4 -sizes 4096,65536
//
// -estimates attaches confidence intervals and robust estimators to
// every size; -adapt-relwidth enables adaptive stopping (batches of
// repetitions until the CI on the chosen quantile is narrower than the
// target relative width — see docs/BENCHMARKING.md). -parallel spreads
// the placements (or pattern cells) over worker goroutines; results
// are bit-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mpibench"
)

func main() {
	op := flag.String("op", "MPI_Isend", "operation to benchmark")
	configs := flag.String("config", "2x1", "comma-separated nxp placements, e.g. 2x1,64x2")
	topoFlag := flag.String("topo", "", "hierarchical topology spec, e.g. fattree:2048x32x8 (empty = flat machine)")
	sizesArg := flag.String("sizes", "0,64,256,1024,4096,16384,65536", "comma-separated message sizes (bytes)")
	reps := flag.Int("reps", 300, "measured repetitions (pattern mode: rounds) per size")
	warm := flag.Int("warmup", 20, "warm-up repetitions")
	binWidth := flag.Float64("binwidth", 5e-6, "histogram bin width (seconds)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("out", "", "write the result set as JSON to this file")
	summary := flag.Bool("summary", true, "print per-size summaries")
	perfect := flag.Bool("perfect-clocks", false, "disable clock drift (ablation)")
	metricsOut := flag.String("metrics", "", "write the merged instrument snapshot as JSON to this file")
	metricsProm := flag.String("metrics-prom", "", "write the merged instrument snapshot as Prometheus text to this file")
	parallel := flag.Int("parallel", 0, "worker goroutines for multi-config sweeps (0 or 1 = serial)")
	estimates := flag.Bool("estimates", false, "attach confidence intervals and robust estimators per size")
	pattern := flag.String("pattern", "", "group-to-group pattern mode: rail, fan, dense (comma-separated sweeps)")
	pgk := flag.String("pgk", "32x4x2", "pattern shape(s) pxgxk, comma-separated")
	direction := flag.String("direction", "uni", "pattern direction: uni, bi or omni")
	windowArg := flag.String("window", "4", "pattern window depth(s), comma-separated")
	adaptRelWidth := flag.Float64("adapt-relwidth", 0, "adaptive stopping: target relative CI half-width (0 = fixed repetitions)")
	adaptQuantile := flag.Float64("adapt-quantile", 0, "adaptive stopping: quantile the CI bounds (default median)")
	adaptLevel := flag.Float64("adapt-level", 0, "adaptive stopping: confidence level (default 0.95)")
	adaptBatch := flag.Int("adapt-batch", 0, "adaptive stopping: repetitions per batch (default -reps)")
	adaptMaxBatches := flag.Int("adapt-max-batches", 0, "adaptive stopping: batch cap (default 8)")
	flag.Parse()

	cfg := cluster.Perseus()
	if *topoFlag != "" {
		topo, nodes, err := cluster.ParseTopology(*topoFlag)
		if err != nil {
			fatal(err)
		}
		if cfg, err = cfg.WithTopology(topo, nodes); err != nil {
			fatal(err)
		}
	}
	sizes, err := parseInts(*sizesArg)
	if err != nil {
		fatal(err)
	}
	var agg *metrics.Aggregate
	if *metricsOut != "" || *metricsProm != "" {
		agg = metrics.NewAggregate()
	}

	if *pattern != "" {
		runPatterns(cfg, patternArgs{
			patterns:  *pattern,
			pgk:       *pgk,
			direction: *direction,
			windows:   *windowArg,
			config:    *configs,
			configSet: flagProvided("config"),
			sizes:     sizes,
			rounds:    *reps,
			warm:      *warm,
			binWidth:  *binWidth,
			seed:      *seed,
			perfect:   *perfect,
			workers:   *parallel,
			estimates: *estimates,
			out:       *out,
			summary:   *summary,
		}, agg)
		writeMetrics(agg, *metricsOut, *metricsProm)
		return
	}

	var placements []cluster.Placement
	for _, s := range strings.Split(*configs, ",") {
		pl, err := cluster.ParsePlacement(&cfg, strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		placements = append(placements, pl)
	}

	spec := mpibench.Spec{
		Op:            mpibench.Op(*op),
		Sizes:         sizes,
		Repetitions:   *reps,
		WarmUp:        *warm,
		BinWidth:      *binWidth,
		Seed:          *seed,
		PerfectClocks: *perfect,
		Workers:       *parallel,
		Estimates:     *estimates,
	}
	if *adaptRelWidth > 0 {
		spec.Target = &mpibench.Target{
			RelWidth:   *adaptRelWidth,
			Quantile:   *adaptQuantile,
			Level:      *adaptLevel,
			Batch:      *adaptBatch,
			MaxBatches: *adaptMaxBatches,
		}
	}
	set, err := mpibench.RunSweepObserved(cfg, spec, placements, agg)
	if err != nil {
		fatal(err)
	}

	if *summary {
		for _, res := range set.Results {
			fmt.Printf("\n%s %s on %s (%d samples/size, sync residual %.1fµs)\n",
				res.Op, res.Placement, res.Cluster, res.Samples, res.SyncResidual*1e6)
			if m := res.Manifest; m.StopReason != "" {
				fmt.Printf("adaptive: %d batch(es), stop reason %s (target %.1f%% rel width on q%.2f)\n",
					m.Batches, m.StopReason, m.Adaptive.RelWidth*100, m.Adaptive.Quantile)
			}
			fmt.Printf("%10s %12s %12s %12s %12s %12s\n",
				"bytes", "min µs", "mean µs", "median µs", "p99 µs", "max µs")
			for _, pt := range res.Points {
				fmt.Printf("%10d %12.1f %12.1f %12.1f %12.1f %12.1f\n",
					pt.Size, pt.Min()*1e6, pt.Avg()*1e6,
					pt.Hist.Quantile(0.5)*1e6, pt.Hist.Quantile(0.99)*1e6,
					pt.Hist.Max()*1e6)
				if pt.Est != nil {
					fmt.Printf("%10s mean %.1f [%.1f, %.1f]µs  q%.2f %.1f [%.1f, %.1f]µs  trimmed %.1fµs  MAD %.2fµs\n",
						"", pt.Est.Mean.Point*1e6, pt.Est.Mean.Lo*1e6, pt.Est.Mean.Hi*1e6,
						pt.Est.Quantile, pt.Est.QuantileCI.Point*1e6,
						pt.Est.QuantileCI.Lo*1e6, pt.Est.QuantileCI.Hi*1e6,
						pt.Est.TrimmedMean*1e6, pt.Est.MAD*1e6)
				}
			}
			if res.DriftFlagged {
				fmt.Printf("WARNING: warmup drift statistic %.1f exceeds threshold — measured series is not stationary; increase -warmup\n",
					res.WarmupDrift)
			}
		}
	}
	if *out != "" {
		if err := set.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	writeMetrics(agg, *metricsOut, *metricsProm)
}

// patternArgs carries the pattern-mode flag values.
type patternArgs struct {
	patterns, pgk, direction, windows string
	config                            string
	configSet                         bool
	sizes                             []int
	rounds, warm                      int
	binWidth                          float64
	seed                              uint64
	perfect                           bool
	workers                           int
	estimates                         bool
	out                               string
	summary                           bool
}

// runPatterns executes the pattern sweep: the cross product of
// -pattern × -pgk × -window cells on one placement.
func runPatterns(cfg cluster.Config, a patternArgs, agg *metrics.Aggregate) {
	dir, err := mpibench.ParseDirection(a.direction)
	if err != nil {
		fatal(err)
	}
	windows, err := parseInts(a.windows)
	if err != nil {
		fatal(err)
	}
	var cells []mpibench.PatternCell
	maxRanks := 0
	for _, name := range strings.Split(a.patterns, ",") {
		name = strings.TrimSpace(name)
		for _, shape := range strings.Split(a.pgk, ",") {
			p, g, k, err := parsePGK(strings.TrimSpace(shape))
			if err != nil {
				fatal(err)
			}
			if p*g > maxRanks {
				maxRanks = p * g
			}
			for _, w := range windows {
				cells = append(cells, mpibench.PatternCell{
					Pattern: name, P: p, G: g, K: k, Window: w, Direction: dir,
				})
			}
		}
	}
	// The placement defaults to exactly the pattern's ranks, one per
	// node; an explicit -config overrides it.
	var pl cluster.Placement
	if a.configSet {
		first := strings.TrimSpace(strings.Split(a.config, ",")[0])
		if pl, err = cluster.ParsePlacement(&cfg, first); err != nil {
			fatal(err)
		}
	} else if pl, err = cluster.NewPlacement(&cfg, maxRanks, 1); err != nil {
		fatal(err)
	}
	base := mpibench.PatternSpec{
		Placement:     pl,
		Sizes:         a.sizes,
		Rounds:        a.rounds,
		WarmUp:        a.warm,
		BinWidth:      a.binWidth,
		Seed:          a.seed,
		PerfectClocks: a.perfect,
		Workers:       a.workers,
		Estimates:     a.estimates,
	}
	set, err := mpibench.RunPatternSweepObserved(cfg, base, cells, agg)
	if err != nil {
		fatal(err)
	}
	if a.summary {
		for _, res := range set.Results {
			fmt.Printf("\n%s on %s %s (%d pairs, %d samples/size)\n",
				res.Key(), res.Cluster, res.Placement, res.Pairs, res.Samples)
			fmt.Printf("%10s %12s %12s %12s %12s\n",
				"bytes", "round µs", "p99 µs", "slowest µs", "MB/s")
			for _, pt := range res.Points {
				fmt.Printf("%10d %12.1f %12.1f %12.1f %12.1f\n",
					pt.Size, pt.MaxHist.Mean()*1e6, pt.MaxHist.Quantile(0.99)*1e6,
					pt.MaxHist.Max()*1e6, pt.Bandwidth/1e6)
				if pt.Est != nil {
					fmt.Printf("%10s per-rank mean %.1f [%.1f, %.1f]µs  median %.1fµs  MAD %.2fµs\n",
						"", pt.Est.Mean.Point*1e6, pt.Est.Mean.Lo*1e6, pt.Est.Mean.Hi*1e6,
						pt.Est.Median*1e6, pt.Est.MAD*1e6)
				}
			}
		}
	}
	if a.out != "" {
		if err := set.SaveFile(a.out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", a.out)
	}
}

// flagProvided reports whether a flag was set on the command line.
func flagProvided(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func writeMetrics(agg *metrics.Aggregate, metricsOut, metricsProm string) {
	if agg == nil {
		return
	}
	snap := agg.Snapshot()
	if metricsOut != "" {
		if err := snap.SaveJSON(metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsOut)
	}
	if metricsProm != "" {
		if err := snap.SavePrometheus(metricsProm); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsProm)
	}
}

// parsePGK parses a pattern shape "pxgxk", e.g. "32x4x2".
func parsePGK(s string) (p, g, k int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad pattern shape %q (want pxgxk, e.g. 32x4x2)", s)
	}
	dims := make([]int, 3)
	for i, part := range parts {
		if dims[i], err = strconv.Atoi(strings.TrimSpace(part)); err != nil {
			return 0, 0, 0, fmt.Errorf("bad pattern shape %q: %v", s, err)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpibench:", err)
	os.Exit(1)
}
