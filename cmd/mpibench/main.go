// Command mpibench runs the MPIBench communication benchmark on the
// simulated cluster and writes the measured distributions.
//
// Usage:
//
//	mpibench -op MPI_Isend -config 64x2 -sizes 0,1024,16384 \
//	         -reps 300 -out results.json
//
// Multiple -config values (comma-separated) produce a result set that
// cmd/pevpm can use as its performance database. With -summary the
// per-size statistics print to stdout as well.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mpibench"
)

func main() {
	op := flag.String("op", "MPI_Isend", "operation to benchmark")
	configs := flag.String("config", "2x1", "comma-separated nxp placements, e.g. 2x1,64x2")
	sizesArg := flag.String("sizes", "0,64,256,1024,4096,16384,65536", "comma-separated message sizes (bytes)")
	reps := flag.Int("reps", 300, "measured repetitions per size")
	warm := flag.Int("warmup", 20, "warm-up repetitions")
	binWidth := flag.Float64("binwidth", 5e-6, "histogram bin width (seconds)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("out", "", "write the result set as JSON to this file")
	summary := flag.Bool("summary", true, "print per-size summaries")
	perfect := flag.Bool("perfect-clocks", false, "disable clock drift (ablation)")
	metricsOut := flag.String("metrics", "", "write the merged instrument snapshot as JSON to this file")
	metricsProm := flag.String("metrics-prom", "", "write the merged instrument snapshot as Prometheus text to this file")
	flag.Parse()

	cfg := cluster.Perseus()
	sizes, err := parseInts(*sizesArg)
	if err != nil {
		fatal(err)
	}
	var placements []cluster.Placement
	for _, s := range strings.Split(*configs, ",") {
		pl, err := cluster.ParsePlacement(&cfg, strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		placements = append(placements, pl)
	}

	spec := mpibench.Spec{
		Op:            mpibench.Op(*op),
		Sizes:         sizes,
		Repetitions:   *reps,
		WarmUp:        *warm,
		BinWidth:      *binWidth,
		Seed:          *seed,
		PerfectClocks: *perfect,
	}
	var agg *metrics.Aggregate
	if *metricsOut != "" || *metricsProm != "" {
		agg = metrics.NewAggregate()
	}
	set, err := mpibench.RunSweepObserved(cfg, spec, placements, agg)
	if err != nil {
		fatal(err)
	}

	if *summary {
		for _, res := range set.Results {
			fmt.Printf("\n%s %s on %s (%d samples/size, sync residual %.1fµs)\n",
				res.Op, res.Placement, res.Cluster, res.Samples, res.SyncResidual*1e6)
			fmt.Printf("%10s %12s %12s %12s %12s %12s\n",
				"bytes", "min µs", "mean µs", "median µs", "p99 µs", "max µs")
			for _, pt := range res.Points {
				fmt.Printf("%10d %12.1f %12.1f %12.1f %12.1f %12.1f\n",
					pt.Size, pt.Min()*1e6, pt.Avg()*1e6,
					pt.Hist.Quantile(0.5)*1e6, pt.Hist.Quantile(0.99)*1e6,
					pt.Hist.Max()*1e6)
			}
		}
	}
	if *out != "" {
		if err := set.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	if agg != nil {
		snap := agg.Snapshot()
		if *metricsOut != "" {
			if err := snap.SaveJSON(*metricsOut); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
		if *metricsProm != "" {
			if err := snap.SavePrometheus(*metricsProm); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsProm)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpibench:", err)
	os.Exit(1)
}
