// Command mpibench runs the MPIBench communication benchmark on the
// simulated cluster and writes the measured distributions.
//
// Usage:
//
//	mpibench -op MPI_Isend -config 64x2 -sizes 0,1024,16384 \
//	         -reps 300 -out results.json
//
// Multiple -config values (comma-separated) produce a result set that
// cmd/pevpm can use as its performance database. With -summary the
// per-size statistics print to stdout as well.
//
// -estimates attaches confidence intervals and robust estimators to
// every size; -adapt-relwidth enables adaptive stopping (batches of
// repetitions until the CI on the chosen quantile is narrower than the
// target relative width — see docs/BENCHMARKING.md). -parallel spreads
// the placements over worker goroutines; results are bit-identical at
// any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mpibench"
)

func main() {
	op := flag.String("op", "MPI_Isend", "operation to benchmark")
	configs := flag.String("config", "2x1", "comma-separated nxp placements, e.g. 2x1,64x2")
	sizesArg := flag.String("sizes", "0,64,256,1024,4096,16384,65536", "comma-separated message sizes (bytes)")
	reps := flag.Int("reps", 300, "measured repetitions per size")
	warm := flag.Int("warmup", 20, "warm-up repetitions")
	binWidth := flag.Float64("binwidth", 5e-6, "histogram bin width (seconds)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("out", "", "write the result set as JSON to this file")
	summary := flag.Bool("summary", true, "print per-size summaries")
	perfect := flag.Bool("perfect-clocks", false, "disable clock drift (ablation)")
	metricsOut := flag.String("metrics", "", "write the merged instrument snapshot as JSON to this file")
	metricsProm := flag.String("metrics-prom", "", "write the merged instrument snapshot as Prometheus text to this file")
	parallel := flag.Int("parallel", 0, "worker goroutines for multi-config sweeps (0 or 1 = serial)")
	estimates := flag.Bool("estimates", false, "attach confidence intervals and robust estimators per size")
	adaptRelWidth := flag.Float64("adapt-relwidth", 0, "adaptive stopping: target relative CI half-width (0 = fixed repetitions)")
	adaptQuantile := flag.Float64("adapt-quantile", 0, "adaptive stopping: quantile the CI bounds (default median)")
	adaptLevel := flag.Float64("adapt-level", 0, "adaptive stopping: confidence level (default 0.95)")
	adaptBatch := flag.Int("adapt-batch", 0, "adaptive stopping: repetitions per batch (default -reps)")
	adaptMaxBatches := flag.Int("adapt-max-batches", 0, "adaptive stopping: batch cap (default 8)")
	flag.Parse()

	cfg := cluster.Perseus()
	sizes, err := parseInts(*sizesArg)
	if err != nil {
		fatal(err)
	}
	var placements []cluster.Placement
	for _, s := range strings.Split(*configs, ",") {
		pl, err := cluster.ParsePlacement(&cfg, strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		placements = append(placements, pl)
	}

	spec := mpibench.Spec{
		Op:            mpibench.Op(*op),
		Sizes:         sizes,
		Repetitions:   *reps,
		WarmUp:        *warm,
		BinWidth:      *binWidth,
		Seed:          *seed,
		PerfectClocks: *perfect,
		Workers:       *parallel,
		Estimates:     *estimates,
	}
	if *adaptRelWidth > 0 {
		spec.Target = &mpibench.Target{
			RelWidth:   *adaptRelWidth,
			Quantile:   *adaptQuantile,
			Level:      *adaptLevel,
			Batch:      *adaptBatch,
			MaxBatches: *adaptMaxBatches,
		}
	}
	var agg *metrics.Aggregate
	if *metricsOut != "" || *metricsProm != "" {
		agg = metrics.NewAggregate()
	}
	set, err := mpibench.RunSweepObserved(cfg, spec, placements, agg)
	if err != nil {
		fatal(err)
	}

	if *summary {
		for _, res := range set.Results {
			fmt.Printf("\n%s %s on %s (%d samples/size, sync residual %.1fµs)\n",
				res.Op, res.Placement, res.Cluster, res.Samples, res.SyncResidual*1e6)
			if m := res.Manifest; m.StopReason != "" {
				fmt.Printf("adaptive: %d batch(es), stop reason %s (target %.1f%% rel width on q%.2f)\n",
					m.Batches, m.StopReason, m.Adaptive.RelWidth*100, m.Adaptive.Quantile)
			}
			fmt.Printf("%10s %12s %12s %12s %12s %12s\n",
				"bytes", "min µs", "mean µs", "median µs", "p99 µs", "max µs")
			for _, pt := range res.Points {
				fmt.Printf("%10d %12.1f %12.1f %12.1f %12.1f %12.1f\n",
					pt.Size, pt.Min()*1e6, pt.Avg()*1e6,
					pt.Hist.Quantile(0.5)*1e6, pt.Hist.Quantile(0.99)*1e6,
					pt.Hist.Max()*1e6)
				if pt.Est != nil {
					fmt.Printf("%10s mean %.1f [%.1f, %.1f]µs  q%.2f %.1f [%.1f, %.1f]µs  trimmed %.1fµs  MAD %.2fµs\n",
						"", pt.Est.Mean.Point*1e6, pt.Est.Mean.Lo*1e6, pt.Est.Mean.Hi*1e6,
						pt.Est.Quantile, pt.Est.QuantileCI.Point*1e6,
						pt.Est.QuantileCI.Lo*1e6, pt.Est.QuantileCI.Hi*1e6,
						pt.Est.TrimmedMean*1e6, pt.Est.MAD*1e6)
				}
			}
			if res.DriftFlagged {
				fmt.Printf("WARNING: warmup drift statistic %.1f exceeds threshold — measured series is not stationary; increase -warmup\n",
					res.WarmupDrift)
			}
		}
	}
	if *out != "" {
		if err := set.SaveFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
	if agg != nil {
		snap := agg.Snapshot()
		if *metricsOut != "" {
			if err := snap.SaveJSON(*metricsOut); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
		if *metricsProm != "" {
			if err := snap.SavePrometheus(*metricsProm); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsProm)
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpibench:", err)
	os.Exit(1)
}
