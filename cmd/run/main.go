// Command run executes one of the bundled workloads on the simulated
// cluster and reports what happened — optionally with a per-rank
// timeline (ASCII Gantt) and a Chrome trace-event file for
// chrome://tracing / Perfetto.
//
// Usage:
//
//	run -app jacobi -config 8x1 -gantt
//	run -app taskfarm -config 16x1 -chrome-trace farm.json
//	run -app fft -machine myrinet -config 16x1
//	run -app jacobi -config 4x1 -faults flaky-nic -chrome-trace j.json
//
// -faults injects a scenario preset (docs/FAULTS.md) retargeted onto
// the job's physical nodes; the Chrome export then shows the fault
// windows on their own track above the rank timelines.
//
// -app largerun switches to the sharded large-cluster mode: a windowed
// ring over a hierarchical topology (-topo, docs/TOPOLOGY.md),
// partitioned one logical process per leaf switch and executed by
// -shards worker threads. Everything printed or written is
// byte-identical at every -shards value:
//
//	run -app largerun -topo fattree:2048x32x8 -shards 4
//	run -app largerun -topo dragonfly:8x4x8 -shards 2 -faults congested-backplane
//
// -app patternrun drives a group-to-group pattern (docs/PATTERNS.md)
// through the same sharded executor — Rail/Fan/Dense between -pgk
// groups, windowed acked rounds, byte-identical at every -shards
// value. -app patternstudy runs the predicted-vs-simulated makespan
// study: calibrate a PEVPM pattern database on each topology, predict
// the validation makespan, and check the intervals overlap:
//
//	run -app patternrun -topo fattree:2048x32x8 -pattern dense -pgk 32x4x2
//	run -app patternstudy -seed 42 -shards 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/mpibench"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	app := flag.String("app", "jacobi", "workload: jacobi, fft, taskfarm, summa, largerun, patternrun, patternstudy")
	topoSpec := flag.String("topo", "fattree:2048x32x8", "largerun: hierarchical topology spec (docs/TOPOLOGY.md)")
	shards := flag.Int("shards", 0, "largerun: worker threads executing the sharded run (0 = all cores; never changes output)")
	rounds := flag.Int("rounds", 2, "largerun: send windows per rank")
	window := flag.Int("window", 4, "largerun: messages per window")
	msgSize := flag.Int("msg-size", 16384, "largerun: data message payload bytes")
	manifestOut := flag.String("manifest", "", "largerun: write the reproducibility manifest JSON to this file")
	machine := flag.String("machine", "perseus", "cluster: perseus, myrinet")
	config := flag.String("config", "8x1", "placement in nxp notation")
	seed := flag.Uint64("seed", 1, "simulation seed")
	iterations := flag.Int("iterations", 50, "jacobi iterations / fft rounds / farm tasks scale")
	gantt := flag.Bool("gantt", false, "print an ASCII utilisation timeline")
	chromeOut := flag.String("chrome-trace", "", "write a Chrome trace-event JSON file")
	block := flag.Bool("block-placement", false, "use physically contiguous nodes instead of scheduler scatter")
	faultsFlag := flag.String("faults", "", "inject a fault-scenario preset onto the job's nodes (see docs/FAULTS.md)")
	faultsSpan := flag.Float64("faults-span", 0.5, "seconds the fault windows are drawn over")
	metricsOut := flag.String("metrics", "", "write the run's instrument snapshot as JSON to this file")
	metricsProm := flag.String("metrics-prom", "", "write the run's instrument snapshot as Prometheus text to this file")
	pattern := flag.String("pattern", "dense", "patternrun: group-to-group pattern (rail, fan, dense)")
	pgk := flag.String("pgk", "32x4x2", "patternrun: pattern shape pxgxk")
	direction := flag.String("direction", "uni", "patternrun: direction (uni, bi, omni)")
	calRounds := flag.Int("cal-rounds", 0, "patternstudy: calibration rounds (0 = default)")
	valRounds := flag.Int("val-rounds", 0, "patternstudy: validation rounds (0 = default)")
	predictReps := flag.Int("predict-reps", 0, "patternstudy: Monte-Carlo replications (0 = default)")
	flag.Parse()

	if *app == "largerun" {
		runLarge(*topoSpec, *shards, *rounds, *window, *msgSize, *seed,
			*faultsFlag, *faultsSpan, *manifestOut, *metricsOut, *metricsProm)
		return
	}
	if *app == "patternrun" {
		runPattern(*topoSpec, *pattern, *pgk, *direction, *shards, *rounds, *window,
			*msgSize, *seed, *faultsFlag, *faultsSpan, *manifestOut, *metricsOut, *metricsProm)
		return
	}
	if *app == "patternstudy" {
		runPatternStudy(*calRounds, *valRounds, *predictReps, *seed, *shards)
		return
	}

	var cfg cluster.Config
	switch *machine {
	case "perseus":
		cfg = cluster.Perseus()
	case "myrinet":
		cfg = cluster.Myrinet()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machine))
	}
	want, err := cluster.ParsePlacement(&cfg, *config)
	if err != nil {
		fatal(err)
	}
	pl := want
	if *block {
		if pl, err = cluster.NewBlockPlacement(&cfg, want.NodeCount, want.PerNode); err != nil {
			fatal(err)
		}
	}

	var program func(c *mpi.Comm)
	switch *app {
	case "jacobi":
		j := workloads.DefaultJacobi()
		j.Iterations = *iterations
		program = j.Run
	case "fft":
		f := workloads.DefaultFFT()
		f.Rounds = *iterations
		program = f.Run
	case "taskfarm":
		tf := workloads.DefaultTaskFarm()
		tf.Tasks = *iterations * 4
		program = tf.Run
	case "summa":
		s := workloads.DefaultSumma()
		s.Iterations = *iterations
		program = s.Run
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	var sched *faults.Schedule
	if *faultsFlag != "" {
		s, err := cluster.Scenario(*faultsFlag, *seed, cluster.ScenarioEnv{
			Nodes: pl.NodeCount, Segments: cfg.NumSegments(), Span: *faultsSpan,
		})
		if err != nil {
			fatal(err)
		}
		retargetNodes(s, pl)
		sched = s
	}

	e := sim.NewEngine(*seed)
	net := netsim.New(e, cfg)
	w := mpi.NewWorld(e, net, pl)
	tl := trace.NewLog(2_000_000)
	w.SetTrace(tl)
	if sched != nil {
		w.SetFaults(sched)
		fmt.Printf("fault scenario %s over [0, %.2fs):\n", sched.Name, *faultsSpan)
		for _, r := range sched.Rules {
			fmt.Printf("  %s\n", r.String())
		}
	}
	w.Launch(program)
	end, err := w.Wait()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s %s finished at t=%v\n", *app, cfg.Name, pl, end)
	st := net.Stats()
	fmt.Printf("network: %d transfers (%d intra-node, %d cross-switch), %d retransmissions, %.1f MB on the wire\n",
		st.Transfers, st.IntraNode, st.CrossSwitch, st.Retries, float64(st.WireBytes)/1e6)
	if sched != nil {
		to := w.Timeouts()
		fmt.Printf("faults: %d fault-attributed drops; %d messages hit a timeout (worst stretch %v)\n",
			st.FaultDrops, to.Messages, to.Worst)
	}
	u := net.UtilizationSince(0)
	fmt.Printf("busiest: NIC %.0f%%, fabric %.0f%%, backplane segment %.0f%%\n",
		u.BusiestNICTx*100, u.BusiestFabric*100, u.BusiestSegment*100)

	if *gantt {
		fmt.Println()
		fmt.Print(tl.Gantt(100))
		fmt.Println("(C compute, r receive-wait, s send, . idle)")
	}
	for _, s := range tl.Summaries() {
		if s.Rank < 4 || s.Rank == pl.NumProcs()-1 {
			fmt.Printf("rank%-4d %4d sends %4d recvs  compute %10v  recv-wait %10v\n",
				s.Rank, s.Sends, s.Recvs, s.Compute, s.RecvWait)
		}
	}
	if *chromeOut != "" {
		f, err := os.Create(*chromeOut)
		if err != nil {
			fatal(err)
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (load in chrome://tracing or Perfetto)\n", *chromeOut)
	}
	if *metricsOut != "" || *metricsProm != "" {
		snap := e.Metrics().Snapshot()
		if *metricsOut != "" {
			if err := snap.SaveJSON(*metricsOut); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
		if *metricsProm != "" {
			if err := snap.SavePrometheus(*metricsProm); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *metricsProm)
		}
	}
}

// retargetNodes maps node-targeted rules from the logical node indices
// cluster.Scenario draws onto the physical nodes the placement actually
// occupies, so scenarios hit scattered jobs too. Backplane rules target
// stacking segments, not nodes, and AllTargets stays universal.
func retargetNodes(s *faults.Schedule, pl cluster.Placement) {
	for i := range s.Rules {
		r := &s.Rules[i]
		if r.Kind == faults.BackplaneDegrade || r.Target == faults.AllTargets {
			continue
		}
		r.Target = pl.NodeOf(r.Target * pl.PerNode)
	}
}

// runLarge executes the sharded large-cluster mode. Everything it
// prints or writes is part of the determinism contract: the Makefile's
// sharded-vs-serial gate diffs this output across -shards values.
func runLarge(topoSpec string, shards, rounds, window, msgSize int, seed uint64,
	faultsName string, faultsSpan float64, manifestOut, metricsOut, metricsProm string) {
	spec := experiments.LargeRunSpec{
		Topo:    topoSpec,
		Rounds:  rounds,
		Window:  window,
		Size:    msgSize,
		Seed:    seed,
		Workers: shards,
	}
	if faultsName != "" {
		topo, nodes, err := cluster.ParseTopology(topoSpec)
		if err != nil {
			fatal(err)
		}
		s, err := cluster.Scenario(faultsName, seed, cluster.ScenarioEnv{
			Nodes: nodes, Segments: topo.NumSegments(), Span: faultsSpan,
		})
		if err != nil {
			fatal(err)
		}
		spec.Faults = s
		fmt.Printf("fault scenario %s over [0, %.2fs):\n", s.Name, faultsSpan)
		for _, r := range s.Rules {
			fmt.Printf("  %s\n", r.String())
		}
	}
	rep, err := experiments.LargeRun(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Transcript)
	if manifestOut != "" {
		data, err := json.MarshalIndent(rep.Manifest, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(manifestOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", manifestOut)
	}
	if metricsOut != "" {
		if err := rep.Metrics.SaveJSON(metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsOut)
	}
	if metricsProm != "" {
		if err := rep.Metrics.SavePrometheus(metricsProm); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsProm)
	}
}

// runPattern executes one group-to-group pattern through the sharded
// executor. Like runLarge, everything printed is part of the
// determinism contract across -shards values.
func runPattern(topoSpec, pattern, pgk, direction string, shards, rounds, window, msgSize int,
	seed uint64, faultsName string, faultsSpan float64, manifestOut, metricsOut, metricsProm string) {
	p, g, k, err := parsePGK(pgk)
	if err != nil {
		fatal(err)
	}
	dir, err := mpibench.ParseDirection(direction)
	if err != nil {
		fatal(err)
	}
	spec := experiments.PatternRunSpec{
		Topo:      topoSpec,
		Pattern:   pattern,
		P:         p,
		G:         g,
		K:         k,
		Direction: dir,
		Rounds:    rounds,
		Window:    window,
		Size:      msgSize,
		Seed:      seed,
		Workers:   shards,
	}
	if faultsName != "" {
		topo, nodes, err := cluster.ParseTopology(topoSpec)
		if err != nil {
			fatal(err)
		}
		s, err := cluster.Scenario(faultsName, seed, cluster.ScenarioEnv{
			Nodes: nodes, Segments: topo.NumSegments(), Span: faultsSpan,
		})
		if err != nil {
			fatal(err)
		}
		spec.Faults = s
		fmt.Printf("fault scenario %s over [0, %.2fs):\n", s.Name, faultsSpan)
		for _, r := range s.Rules {
			fmt.Printf("  %s\n", r.String())
		}
	}
	rep, err := experiments.PatternRun(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Transcript)
	if manifestOut != "" {
		data, err := json.MarshalIndent(rep.Manifest, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(manifestOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", manifestOut)
	}
	if metricsOut != "" {
		if err := rep.Metrics.SaveJSON(metricsOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsOut)
	}
	if metricsProm != "" {
		if err := rep.Metrics.SavePrometheus(metricsProm); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", metricsProm)
	}
}

// runPatternStudy runs the predicted-vs-simulated pattern makespan
// study over the default cells (Rail/Fan/Dense on a fat tree and a
// dragonfly) and prints one row per cell.
func runPatternStudy(calRounds, valRounds, predictReps int, seed uint64, workers int) {
	rows, err := experiments.PatternStudy(experiments.PatternStudyParams{
		CalRounds: calRounds,
		ValRounds: valRounds,
		Reps:      predictReps,
		Seed:      seed,
		Workers:   workers,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-18s %9s %26s %26s %7s\n",
		"topology", "pattern", "MB/s", "predicted ms", "simulated ms", "agree")
	agreeAll := true
	for _, row := range rows {
		fmt.Printf("%-22s %-18s %9.1f %8.2f [%7.2f, %7.2f] %8.2f [%7.2f, %7.2f] %7v\n",
			row.Topo, fmt.Sprintf("%s:p%dg%dk%d", row.Pattern, row.P, row.G, row.K),
			row.Bandwidth/1e6,
			row.Predicted.Point*1e3, row.Predicted.Lo*1e3, row.Predicted.Hi*1e3,
			row.Simulated.Point*1e3, row.Simulated.Lo*1e3, row.Simulated.Hi*1e3,
			row.Agree)
		agreeAll = agreeAll && row.Agree
	}
	if !agreeAll {
		fatal(fmt.Errorf("pattern study: predicted and simulated makespans disagree"))
	}
	fmt.Printf("all %d cells: predicted and simulated makespan intervals overlap\n", len(rows))
}

// parsePGK parses a pattern shape "pxgxk", e.g. "32x4x2".
func parsePGK(s string) (p, g, k int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad pattern shape %q (want pxgxk, e.g. 32x4x2)", s)
	}
	dims := make([]int, 3)
	for i, part := range parts {
		if dims[i], err = strconv.Atoi(strings.TrimSpace(part)); err != nil {
			return 0, 0, 0, fmt.Errorf("bad pattern shape %q: %v", s, err)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "run:", err)
	os.Exit(1)
}
