// Command pevpm evaluates a PEVPM model (a .pvm file of performance
// directives) against a performance database produced by cmd/mpibench,
// predicting the modelled program's execution time.
//
// Usage:
//
//	pevpm -model jacobi.pvm -db bench.json -procs 64 -runs 20
//
// The -mode flag selects between the paper's prediction variants:
// "dist" (sample full distributions — the accurate mode), "avg-nxp",
// "avg-2x1" and "min-2x1" (the simplistic modes Figure 6 shows to be
// misleading).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
	"repro/internal/trace"
)

func main() {
	modelPath := flag.String("model", "", "path to the .pvm model file")
	dbPath := flag.String("db", "", "path to an mpibench result-set JSON")
	op := flag.String("op", "MPI_Send", "benchmark operation backing the database")
	procs := flag.Int("procs", 4, "number of processes to model")
	perNode := flag.Int("pernode", 1, "processes per node (for intra-node message pricing)")
	runs := flag.Int("runs", 20, "Monte-Carlo evaluations")
	seed := flag.Uint64("seed", 1, "evaluation seed")
	mode := flag.String("mode", "dist", "prediction mode: dist, avg-nxp, avg-2x1, min-2x1")
	fitted := flag.Bool("fitted", false, "replace measured histograms with parametric fits (§2's 'parametrised functions')")
	hotspots := flag.Int("hotspots", 5, "show the top-N waiting directives")
	gantt := flag.Bool("gantt", false, "print the predicted per-process timeline")
	flag.Parse()

	if *modelPath == "" || *dbPath == "" {
		fmt.Fprintln(os.Stderr, "pevpm: -model and -db are required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	prog, err := pevpm.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	set, err := mpibench.LoadFile(*dbPath)
	if err != nil {
		fatal(err)
	}
	cfg := cluster.Perseus()
	empirical, err := pevpm.NewEmpiricalDB(set, mpibench.Op(*op), cfg)
	if err != nil {
		fatal(err)
	}
	var base pevpm.PerfDB = empirical
	if *fitted {
		fdb, err := pevpm.NewFittedDBFrom(empirical)
		if err != nil {
			fatal(err)
		}
		for _, p := range fdb.Report() {
			fmt.Printf("fit: %-18s size %-8d %-20s KS %.3f\n", p.Placement, p.Size, p.Family, p.KS)
		}
		base = fdb
	}
	var db pevpm.PerfDB
	switch *mode {
	case "dist":
		db = base
	case "avg-nxp":
		db = pevpm.Collapse(base, pevpm.ModeMean)
	case "avg-2x1":
		db = pevpm.Collapse(pevpm.FixContention(base, 2), pevpm.ModeMean)
	case "min-2x1":
		db = pevpm.Collapse(pevpm.FixContention(base, 2), pevpm.ModeMin)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	nodes := (*procs + *perNode - 1) / *perNode
	pl, err := cluster.NewPlacement(&cfg, nodes, *perNode)
	if err != nil {
		fatal(err)
	}
	opts := pevpm.Options{Procs: *procs, DB: db, Seed: *seed, NodeOf: pl.NodeOf}

	// One detailed evaluation for the breakdown, then the Monte-Carlo set.
	var tl *trace.Log
	if *gantt {
		tl = trace.NewLog(2_000_000)
		opts.Trace = tl
	}
	rep, err := pevpm.Evaluate(prog, opts)
	if err != nil {
		fatal(err)
	}
	opts.Trace = nil // Monte-Carlo runs stay untraced
	sum, err := pevpm.EvaluateN(prog, opts, *runs)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model:    %s (%d processes as %s, mode %s)\n", *modelPath, *procs, pl, *mode)
	fmt.Printf("predicted: %.6f s  (±%.6f over %d runs, min %.6f max %.6f)\n",
		sum.Mean, sum.Std(), sum.N, sum.Min, sum.Max)
	fmt.Printf("sweeps:   %d, messages: %d\n", rep.Sweeps, rep.MessagesSent)

	var compute, send, wait float64
	for _, b := range rep.Breakdowns {
		compute += b.Compute
		send += b.SendBusy
		wait += b.RecvWait
	}
	n := float64(len(rep.Breakdowns))
	fmt.Printf("per-process averages: compute %.6fs, send %.6fs, receive-wait %.6fs\n",
		compute/n, send/n, wait/n)
	if *hotspots > 0 && len(rep.HotSpots) > 0 {
		fmt.Println("\ntop waiting directives:")
		for i, h := range rep.HotSpots {
			if i >= *hotspots {
				break
			}
			fmt.Printf("  %8.4fs  %s\n", h.Wait, h.Directive)
		}
	}
	if tl != nil {
		fmt.Println("\npredicted timeline (C compute, r receive-wait, s send):")
		fmt.Print(tl.Gantt(100))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pevpm:", err)
	os.Exit(1)
}
