// Command pevpmd serves the PEVPM prediction pipeline over HTTP and
// doubles as its own CI client.
//
// Server:
//
//	pevpmd -addr 127.0.0.1:8080 -workers 8
//
// POST /v1/predict takes a JSON request (a .pvm model, cluster and
// benchmark spec, seed and options) and returns the predicted makespan
// distribution with confidence intervals, lint findings, a metrics
// snapshot and optionally a Chrome trace. Response bodies are
// deterministic: same request + seed → same bytes, which the client
// modes exploit.
//
// Client modes (against a running server):
//
//	pevpmd -target http://127.0.0.1:8080 -replay cmd/pevpmd/testdata
//	pevpmd -target http://127.0.0.1:8080 -replay cmd/pevpmd/testdata -smoke 32
//
// -replay is the CI service-gate: every testdata/req_<status>_<name>.json
// is POSTed twice sequentially (the second must be a byte-identical
// cache hit) and twice concurrently (byte-identical again), then
// byte-diffed against the committed golden_<status>_<name>.json.
// -update-golden rewrites the goldens instead of diffing. -smoke N
// fires N concurrent mixed requests, asserts duplicates dedupe to
// identical bytes, and writes a cache-hit-rate and per-stage latency
// table to stdout and GITHUB_STEP_SUMMARY.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 with -addr-file for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 0, "engine-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request deadline")
	maxBody := flag.Int64("max-body", 1<<20, "request size limit in bytes")
	dbCache := flag.Int("db-cache", 16, "performance-database LRU capacity")
	respCache := flag.Int("resp-cache", 256, "response LRU capacity")

	target := flag.String("target", "", "server URL for the client modes")
	replay := flag.String("replay", "", "client mode: replay golden requests from this directory")
	updateGolden := flag.Bool("update-golden", false, "rewrite golden replies instead of diffing")
	smoke := flag.Int("smoke", 0, "client mode: fire N concurrent mixed requests from the -replay directory")
	flag.Parse()

	if *replay != "" || *smoke > 0 {
		if *target == "" {
			fatal(fmt.Errorf("client modes need -target http://host:port"))
		}
		if *replay == "" {
			fatal(fmt.Errorf("-smoke needs -replay <dir> for its request corpus"))
		}
		if err := waitReady(*target); err != nil {
			fatal(err)
		}
		if *smoke > 0 {
			if err := runSmoke(*target, *replay, *smoke); err != nil {
				fatal(err)
			}
			return
		}
		if err := runReplay(*target, *replay, *updateGolden); err != nil {
			fatal(err)
		}
		return
	}

	serve(*addr, *addrFile, service.Config{
		Workers:       *workers,
		Timeout:       *timeout,
		MaxBodyBytes:  *maxBody,
		DBCacheSize:   *dbCache,
		RespCacheSize: *respCache,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pevpmd:", err)
	os.Exit(1)
}

// serve runs the HTTP server until SIGINT/SIGTERM, then shuts down
// gracefully: stop accepting, drain handlers, stop the engine pool.
func serve(addr, addrFile string, cfg service.Config) {
	svc := service.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "pevpmd: listening on %s (workers=%d)\n", ln.Addr(), svc.Config().Workers)

	srv := &http.Server{Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	//detlint:allow wallclock -- shutdown-signal vs server-error race is inherently wall-clock; operational plumbing, not simulation output
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "pevpmd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "pevpmd: shutdown:", err)
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}
	svc.Close()
}

// waitReady polls the server's liveness endpoint until it answers.
func waitReady(target string) error {
	var lastErr error
	for i := 0; i < 100; i++ {
		resp, err := http.Get(target + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return nil
			}
			lastErr = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			lastErr = err
		}
		//detlint:allow wallclock -- client-mode startup poll against a real server; nothing here feeds simulation output
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became ready: %w", target, lastErr)
}

// requestFiles lists the replay corpus: req_<status>_<name>.json sorted
// by name for a stable replay order.
func requestFiles(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "req_*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no req_*.json files in %s", dir)
	}
	sort.Strings(files)
	return files, nil
}

// expectedStatus parses the status a request file encodes in its name.
func expectedStatus(reqPath string) (int, error) {
	base := strings.TrimSuffix(filepath.Base(reqPath), ".json")
	parts := strings.SplitN(base, "_", 3)
	if len(parts) < 3 {
		return 0, fmt.Errorf("%s: want req_<status>_<name>.json", reqPath)
	}
	return strconv.Atoi(parts[1])
}

func post(target string, body []byte) (int, string, []byte, error) {
	resp, err := http.Post(target+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), data, nil
}

// runReplay is the service-gate: deterministic bytes for repeated and
// concurrent identical requests, pinned against committed goldens.
func runReplay(target, dir string, update bool) error {
	files, err := requestFiles(dir)
	if err != nil {
		return err
	}
	for _, reqPath := range files {
		wantStatus, err := expectedStatus(reqPath)
		if err != nil {
			return err
		}
		reqBody, err := os.ReadFile(reqPath)
		if err != nil {
			return err
		}
		name := filepath.Base(reqPath)

		// 1. Cold request.
		status, _, first, err := post(target, reqBody)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if status != wantStatus {
			return fmt.Errorf("%s: status %d, want %d; body:\n%s", name, status, wantStatus, first)
		}

		// 2. Same request again: must replay from the response cache,
		// byte-identical.
		status2, cache2, second, err := post(target, reqBody)
		if err != nil {
			return fmt.Errorf("%s (repeat): %w", name, err)
		}
		if status2 != status || !bytes.Equal(first, second) {
			return fmt.Errorf("%s: repeated request returned different bytes (status %d vs %d)", name, status, status2)
		}
		if cache2 != "hit" {
			return fmt.Errorf("%s: repeated request was not served from cache (X-Cache=%q)", name, cache2)
		}

		// 3. Two concurrent clients: identical bytes regardless of
		// interleaving.
		type out struct {
			body []byte
			err  error
		}
		results := make(chan out, 2)
		for i := 0; i < 2; i++ {
			go func() {
				_, _, body, err := post(target, reqBody)
				results <- out{body, err}
			}()
		}
		for i := 0; i < 2; i++ {
			r := <-results
			if r.err != nil {
				return fmt.Errorf("%s (concurrent): %w", name, r.err)
			}
			if !bytes.Equal(first, r.body) {
				return fmt.Errorf("%s: concurrent client got different bytes", name)
			}
		}

		// 4. Golden diff (or rewrite).
		goldenPath := filepath.Join(dir, strings.Replace(name, "req_", "golden_", 1))
		if update {
			if err := os.WriteFile(goldenPath, first, 0o644); err != nil {
				return err
			}
			fmt.Printf("replay: %-28s status %d — golden updated (%d bytes)\n", name, status, len(first))
			continue
		}
		golden, err := os.ReadFile(goldenPath)
		if err != nil {
			return fmt.Errorf("%s: no golden reply (run with -update-golden): %w", name, err)
		}
		if !bytes.Equal(first, golden) {
			return fmt.Errorf("%s: response diverged from %s\n%s", name, goldenPath, firstDiff(golden, first))
		}
		fmt.Printf("replay: %-28s status %d — deterministic, cached, matches golden (%d bytes)\n",
			name, status, len(first))
	}

	// The cache-hit counter must prove cached requests skipped
	// prediction.
	st, err := fetchStats(target)
	if err != nil {
		return err
	}
	if st.Caches["response"].Hits == 0 {
		return fmt.Errorf("service reported zero response-cache hits after replay")
	}
	fmt.Printf("replay: %d request(s) verified; response cache: %d hits / %d misses; predictions run: %d\n",
		len(files), st.Caches["response"].Hits, st.Caches["response"].Misses, st.Predictions)
	return nil
}

// firstDiff renders the first byte divergence with context.
func firstDiff(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) string {
		hi := i + 80
		if hi > len(b) {
			hi = len(b)
		}
		if lo >= len(b) {
			return ""
		}
		return string(b[lo:hi])
	}
	return fmt.Sprintf("first divergence at byte %d:\n  golden: …%s…\n  got:    …%s…", i, clip(want), clip(got))
}

type statsReply struct {
	Requests    uint64 `json:"requests"`
	Predictions uint64 `json:"predictions"`
	DBBuilds    uint64 `json:"db_builds"`
	Coalesced   uint64 `json:"coalesced"`
	Caches      map[string]struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	} `json:"caches"`
	Stages map[string]struct {
		Count  uint64  `json:"count"`
		MeanUS float64 `json:"mean_us"`
	} `json:"stages"`
}

func fetchStats(target string) (*statsReply, error) {
	resp, err := http.Get(target + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var st statsReply
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	return &st, nil
}

// runSmoke fires n concurrent requests cycling through the corpus, so
// duplicates are guaranteed, then verifies every duplicate got the
// bytes of its first answer and reports cache behaviour as a markdown
// table.
func runSmoke(target, dir string, n int) error {
	files, err := requestFiles(dir)
	if err != nil {
		return err
	}
	bodies := make([][]byte, len(files))
	for i, f := range files {
		if bodies[i], err = os.ReadFile(f); err != nil {
			return err
		}
	}

	type result struct {
		file int
		body []byte
		err  error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			file := i % len(files)
			_, _, body, err := post(target, bodies[file])
			results[i] = result{file, body, err}
		}()
	}
	wg.Wait()

	first := make([][]byte, len(files))
	dupes := 0
	for _, r := range results {
		if r.err != nil {
			return fmt.Errorf("smoke request failed: %w", r.err)
		}
		if first[r.file] == nil {
			first[r.file] = r.body
			continue
		}
		dupes++
		if !bytes.Equal(first[r.file], r.body) {
			return fmt.Errorf("smoke: duplicate request for %s got different bytes", filepath.Base(files[r.file]))
		}
	}

	st, err := fetchStats(target)
	if err != nil {
		return err
	}
	table := renderSmokeTable(n, len(files), dupes, st)
	fmt.Print(table)

	//detlint:allow wallclock -- CI reporting plumbing: the step-summary path comes from the Actions runner, never from simulation code
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(table); err != nil {
			return err
		}
	}
	return nil
}

// renderSmokeTable builds the GITHUB_STEP_SUMMARY markdown: dedupe
// verdict, cache hit rates, per-stage latency.
func renderSmokeTable(n, unique, dupes int, st *statsReply) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## pevpmd load smoke\n\n")
	fmt.Fprintf(&b, "%d concurrent requests over %d unique bodies — %d duplicates, all byte-identical ✓\n\n",
		n, unique, dupes)
	fmt.Fprintf(&b, "| cache | entries | hits | misses | hit rate |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, name := range []string{"response", "db"} {
		c := st.Caches[name]
		total := c.Hits + c.Misses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(c.Hits) / float64(total)
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.1f%% |\n", name, c.Entries, c.Hits, c.Misses, rate)
	}
	fmt.Fprintf(&b, "\n| stage | observations | mean latency |\n")
	fmt.Fprintf(&b, "|---|---|---|\n")
	stages := make([]string, 0, len(st.Stages))
	for s := range st.Stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		fmt.Fprintf(&b, "| %s | %d | %.0f µs |\n", s, st.Stages[s].Count, st.Stages[s].MeanUS)
	}
	fmt.Fprintf(&b, "\npredictions executed: %d · coalesced: %d · db builds: %d\n",
		st.Predictions, st.Coalesced, st.DBBuilds)
	return b.String()
}
