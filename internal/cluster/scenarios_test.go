package cluster

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

func TestScenarioPresetsValidAndDeterministic(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 5 {
		t.Fatalf("want >= 5 presets, have %v", names)
	}
	for _, name := range names {
		a, err := Scenario(name, 7, 16, 2.0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Empty() {
			t.Errorf("%s: empty schedule", name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		b, err := Scenario(name, 7, 16, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different schedule:\n%v\n%v", name, a.Rules, b.Rules)
		}
		c, err := Scenario(name, 8, 16, 2.0)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Rules, c.Rules) {
			t.Errorf("%s: different seeds produced identical rules", name)
		}
		for _, r := range a.Rules {
			if r.Target >= 16 {
				t.Errorf("%s: target %d out of range for 16 nodes", name, r.Target)
			}
		}
	}
}

func TestScenarioUnknownName(t *testing.T) {
	if _, err := Scenario("no-such-thing", 1, 4, 1.0); err == nil {
		t.Fatal("want error for unknown scenario")
	}
	if _, err := Scenario("noisy-node", 1, 0, 1.0); err == nil {
		t.Fatal("want error for zero nodes")
	}
	if _, err := Scenario("noisy-node", 1, 4, 0); err == nil {
		t.Fatal("want error for zero span")
	}
}

func TestScenarioKindsCovered(t *testing.T) {
	// Between them the presets must exercise every fault kind.
	seen := map[faults.Kind]bool{}
	for _, name := range ScenarioNames() {
		s, err := Scenario(name, 3, 8, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Rules {
			seen[r.Kind] = true
		}
	}
	for _, k := range []faults.Kind{
		faults.LinkDegrade, faults.DropBoost, faults.NodeSlow,
		faults.NICOutage, faults.BackplaneDegrade,
	} {
		if !seen[k] {
			t.Errorf("no preset exercises %v", k)
		}
	}
}
