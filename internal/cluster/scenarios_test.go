package cluster

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

func TestScenarioPresetsValidAndDeterministic(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 5 {
		t.Fatalf("want >= 5 presets, have %v", names)
	}
	env := ScenarioEnv{Nodes: 16, Segments: 4, Span: 2.0}
	for _, name := range names {
		a, err := Scenario(name, 7, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Empty() {
			t.Errorf("%s: empty schedule", name)
		}
		if err := a.ValidateFor(env.Nodes, env.Segments); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		b, err := Scenario(name, 7, env)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed, different schedule:\n%v\n%v", name, a.Rules, b.Rules)
		}
		c, err := Scenario(name, 8, env)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Rules, c.Rules) {
			t.Errorf("%s: different seeds produced identical rules", name)
		}
		for _, r := range a.Rules {
			limit := env.Nodes
			if r.Kind == faults.BackplaneDegrade {
				limit = env.Segments
			}
			if r.Target >= limit {
				t.Errorf("%s: target %d out of range (%d)", name, r.Target, limit)
			}
		}
	}
}

func TestScenarioUnknownName(t *testing.T) {
	if _, err := Scenario("no-such-thing", 1, ScenarioEnv{Nodes: 4, Segments: 1, Span: 1.0}); err == nil {
		t.Fatal("want error for unknown scenario")
	}
	if _, err := Scenario("noisy-node", 1, ScenarioEnv{Nodes: 0, Segments: 1, Span: 1.0}); err == nil {
		t.Fatal("want error for zero nodes")
	}
	if _, err := Scenario("noisy-node", 1, ScenarioEnv{Nodes: 4, Segments: 1, Span: 0}); err == nil {
		t.Fatal("want error for zero span")
	}
	if _, err := Scenario("noisy-node", 1, ScenarioEnv{Nodes: 4, Segments: -1, Span: 1.0}); err == nil {
		t.Fatal("want error for negative segments")
	}
}

func TestScenarioKindsCovered(t *testing.T) {
	// Between them the presets must exercise every fault kind.
	seen := map[faults.Kind]bool{}
	for _, name := range ScenarioNames() {
		s, err := Scenario(name, 3, ScenarioEnv{Nodes: 8, Segments: 2, Span: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Rules {
			seen[r.Kind] = true
		}
	}
	for _, k := range []faults.Kind{
		faults.LinkDegrade, faults.DropBoost, faults.NodeSlow,
		faults.NICOutage, faults.BackplaneDegrade,
	} {
		if !seen[k] {
			t.Errorf("no preset exercises %v", k)
		}
	}
}

func TestScenarioSegmentRetargeting(t *testing.T) {
	// On a machine with many segments the congested-backplane preset
	// must be able to land beyond flat segment 0, and every draw must
	// stay in range. Before segment retargeting the preset hardcoded
	// segment 0 regardless of the machine's shape.
	seenNonZero := false
	for seed := uint64(0); seed < 64; seed++ {
		s, err := Scenario("congested-backplane", seed, ScenarioEnv{Nodes: 64, Segments: 48, Span: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range s.Rules {
			if r.Target < 0 || r.Target >= 48 {
				t.Fatalf("seed %d: segment %d out of range [0,48)", seed, r.Target)
			}
			if r.Target != 0 {
				seenNonZero = true
			}
		}
	}
	if !seenNonZero {
		t.Error("64 seeds never targeted a segment other than 0; preset is not retargeting")
	}

	// A rule that binds no segment must be rejected, not silently
	// ignored: congested-backplane on a single-switch machine (zero
	// inter-switch segments) has nothing to degrade.
	if _, err := Scenario("congested-backplane", 1, ScenarioEnv{Nodes: 8, Segments: 0, Span: 1.0}); err == nil {
		t.Fatal("want error for a backplane scenario on a machine with no segments")
	}
}
