package cluster

import (
	"strings"
	"testing"
)

// Satellite regression: before MaxSwitches, a Perseus config with more
// nodes than the machine's five switches can physically port would pass
// validation — NumSwitches silently derived a sixth (and seventh, ...)
// switch from the node count. The physical machine has 5×24 = 120 node
// ports; anything beyond must be rejected loudly.
func TestOversubscribedFlatConfigRejected(t *testing.T) {
	cfg := Perseus()
	cfg.Nodes = 120 // exactly full: fine
	if err := cfg.Validate(); err != nil {
		t.Fatalf("120 nodes on 5x24 ports should validate: %v", err)
	}
	cfg.Nodes = 121
	err := cfg.Validate()
	if err == nil {
		t.Fatal("121 nodes on a 5-switch, 24-port machine passed validation")
	}
	if !strings.Contains(err.Error(), "oversubscribe") {
		t.Errorf("error should name the oversubscription, got: %v", err)
	}
	// A machine without a declared chassis count keeps the old derived
	// behaviour.
	cfg.MaxSwitches = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("unbounded machine should derive switches freely: %v", err)
	}
	if cfg.NumSwitches() != 6 {
		t.Errorf("121 nodes / 24 ports = %d switches, want 6", cfg.NumSwitches())
	}
}

func TestFatTreeGenerator(t *testing.T) {
	topo, err := FatTree(2048, 32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Leaves != 64 || topo.Switches != 64+8 {
		t.Fatalf("2048x32x8: leaves=%d switches=%d", topo.Leaves, topo.Switches)
	}
	if topo.NumSegments() != 64*8 {
		t.Errorf("want one link per (leaf, spine) pair, got %d", topo.NumSegments())
	}
	if topo.Capacity() != 2048 {
		t.Errorf("capacity = %d", topo.Capacity())
	}
	// Same-leaf traffic crosses only the leaf fabric.
	if p := topo.PathHops(3, 3); len(p) != 1 || p[0] != FabricHop(3) {
		t.Errorf("intra-leaf path = %v", p)
	}
	// Cross-leaf traffic: leaf fabric, uplink, spine fabric, downlink,
	// leaf fabric — and the spine is the deterministic (a+b) mod s.
	p := topo.PathHops(3, 10)
	if len(p) != 5 {
		t.Fatalf("cross-leaf path = %v", p)
	}
	spine, ok := IsFabricHop(p[2])
	if !ok || spine != 64+(3+10)%8 {
		t.Errorf("spine hop = %v, want fabric of spine %d", p[2], (3+10)%8)
	}
	// Both directions ride the same spine (symmetric choice), so a
	// degraded link hurts the pair both ways.
	q := topo.PathHops(10, 3)
	if rs, _ := IsFabricHop(q[2]); rs != spine {
		t.Errorf("reverse path uses spine %d, forward %d", rs, spine)
	}
	if err := topo.Validate(); err != nil {
		t.Error(err)
	}
	// Node attachment.
	if topo.LeafOf(0) != 0 || topo.LeafOf(31) != 0 || topo.LeafOf(32) != 1 || topo.LeafOf(2047) != 63 {
		t.Error("LeafOf broken")
	}
}

func TestDragonflyGenerator(t *testing.T) {
	topo, err := Dragonfly(4, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Leaves != 16 || topo.Switches != 16 || topo.Capacity() != 128 {
		t.Fatalf("4x4x8: leaves=%d switches=%d cap=%d", topo.Leaves, topo.Switches, topo.Capacity())
	}
	// 4 groups × C(4,2)=6 local links + C(4,2)=6 global links.
	if topo.NumSegments() != 4*6+6 {
		t.Errorf("links = %d, want 30", topo.NumSegments())
	}
	// Same router: fabric only. Same group: one local link.
	if p := topo.PathHops(5, 5); len(p) != 1 {
		t.Errorf("same-router path = %v", p)
	}
	if p := topo.PathHops(4, 6); len(p) != 3 {
		t.Errorf("intra-group path = %v", p)
	}
	// Cross-group minimal route: src fabric, [local to gateway], global,
	// [local from gateway], dst fabric. Longest form is 7 hops.
	p := topo.PathHops(0, 4) // group 0 router 0 -> group 1 router 0
	// gateway(0,1) = router 1 of group 0; gateway(1,0) = router 0 of
	// group 1 = leaf 4, which IS the destination.
	if len(p) != 5 {
		t.Errorf("cross-group path 0->4 = %v, want 5 hops (local, global, no dst-side local)", p)
	}
	if err := topo.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTreeGenerator(t *testing.T) {
	topo, err := Tree(4, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 4×2 = 8 leaves, 2 mid switches, 1 root.
	if topo.Leaves != 8 || topo.Switches != 11 {
		t.Fatalf("tree 4x2: leaves=%d switches=%d", topo.Leaves, topo.Switches)
	}
	if topo.NumSegments() != 8+2 {
		t.Errorf("links = %d, want 10 (8 leaf uplinks + 2 mid uplinks)", topo.NumSegments())
	}
	// Siblings meet at their shared mid switch: 5 hops.
	if p := topo.PathHops(0, 1); len(p) != 5 {
		t.Errorf("sibling path = %v", p)
	}
	// Opposite halves climb to the root: 9 hops.
	p := topo.PathHops(0, 7)
	if len(p) != 9 {
		t.Fatalf("cross-root path = %v", p)
	}
	if sw, ok := IsFabricHop(p[4]); !ok || sw != 10 {
		t.Errorf("middle of cross-root path should be the root fabric, got %v", p[4])
	}
	if err := topo.Validate(); err != nil {
		t.Error(err)
	}
}

func TestParseTopology(t *testing.T) {
	topo, nodes, err := ParseTopology("fattree:2048x32x8")
	if err != nil || nodes != 2048 || topo.Leaves != 64 {
		t.Fatalf("fattree spec: %v nodes=%d", err, nodes)
	}
	if topo.Rails != 1 {
		t.Errorf("default rails = %d", topo.Rails)
	}
	topo, nodes, err = ParseTopology("dragonfly:4x4x8+2rail")
	if err != nil || nodes != 128 || topo.Rails != 2 {
		t.Fatalf("dragonfly spec: %v nodes=%d rails=%d", err, nodes, topo.Rails)
	}
	if _, nodes, err = ParseTopology("tree:4x4x2"); err != nil || nodes != 32 {
		t.Fatalf("tree spec: %v nodes=%d", err, nodes)
	}
	for _, bad := range []string{
		"", "fattree", "fattree:2048", "mesh:4x4", "fattree:ax32x8",
		"fattree:2048x32x8+0rail", "fattree:2048x32x8+xrail", "fattree:2048x32x8+2lanes",
		"fattree:2048x32x8+-2rail", "dragonfly:4x4x8+0rail", "tree:4x4+0rail",
		"fattree:0x32x8", "dragonfly:4x4", "tree:4",
	} {
		if _, _, err := ParseTopology(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

// Satellite regression: the generators used to silently normalise
// rails == 0 to 1, so a caller who reached FatTree/Dragonfly/Tree
// directly with a non-positive rail count got a single-rail fabric
// instead of an error. Non-positive rail counts must be rejected at
// the generator layer, not papered over.
func TestGeneratorsRejectNonPositiveRails(t *testing.T) {
	for _, rails := range []int{0, -2} {
		if _, err := FatTree(64, 8, 4, rails); err == nil {
			t.Errorf("FatTree with rails=%d should fail", rails)
		}
		if _, err := Dragonfly(4, 4, 8, rails); err == nil {
			t.Errorf("Dragonfly with rails=%d should fail", rails)
		}
		if _, err := Tree(4, rails, 4, 2); err == nil {
			t.Errorf("Tree with rails=%d should fail", rails)
		}
	}
	// rails == 1 stays valid (no default needed).
	if _, err := FatTree(64, 8, 4, 1); err != nil {
		t.Errorf("FatTree with rails=1: %v", err)
	}
}

func TestWithTopology(t *testing.T) {
	topo, nodes, err := ParseTopology("fattree:128x32x4")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Perseus().WithTopology(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 128 || cfg.PortsPerSwitch != 32 || cfg.Topo == nil {
		t.Fatalf("WithTopology: nodes=%d ports=%d topo=%v", cfg.Nodes, cfg.PortsPerSwitch, cfg.Topo)
	}
	if cfg.NumSwitches() != topo.Switches || cfg.NumSegments() != topo.NumSegments() {
		t.Error("switch/segment counts should come from the topology")
	}
	if cfg.SwitchOf(33) != 1 {
		t.Errorf("SwitchOf(33) = %d, want leaf 1", cfg.SwitchOf(33))
	}
	if cfg.Rails() != 1 {
		t.Errorf("Rails = %d", cfg.Rails())
	}

	// Oversubscribing the topology's leaf ports is rejected (the
	// hierarchical twin of the flat MaxSwitches check).
	if _, err := Perseus().WithTopology(topo, 129); err == nil {
		t.Fatal("129 nodes on a 128-port fat-tree passed validation")
	}
	// As is a config whose PortsPerSwitch disagrees with the topology.
	bad := cfg
	bad.PortsPerSwitch = 24
	if err := bad.Validate(); err == nil {
		t.Fatal("PortsPerSwitch mismatch passed validation")
	}

	// Multi-rail propagates through Config.Rails.
	topo2, nodes2, err := ParseTopology("fattree:128x32x4+2rail")
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := Perseus().WithTopology(topo2, nodes2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Rails() != 2 {
		t.Errorf("Rails = %d, want 2", cfg2.Rails())
	}
}

// Satellite regression: round-robin scatter on a hierarchical topology
// used to land every pair of adjacent logical nodes on different
// leaves, sending all neighbour traffic across the bisection. Under a
// topology, placement must fill leaf switches first.
func TestTopologyPlacementLocality(t *testing.T) {
	topo, nodes, err := ParseTopology("fattree:64x16x4")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := Perseus().WithTopology(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlacement(&cfg, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameLeaf := 0
	leaves := map[int]bool{}
	for rank := 0; rank < 63; rank++ {
		a := cfg.SwitchOf(pl.NodeOf(rank))
		b := cfg.SwitchOf(pl.NodeOf(rank + 1))
		if a == b {
			sameLeaf++
		}
		leaves[a] = true
	}
	// Leaf-first fill: only the 3 leaf boundaries cross the bisection.
	if sameLeaf != 60 {
		t.Errorf("%d of 63 adjacent pairs share a leaf, want 60", sameLeaf)
	}
	if len(leaves) != 4 {
		t.Errorf("full job should still use all 4 leaves, used %d", len(leaves))
	}

	// For contrast: the flat round-robin scatter (node i on switch i%4)
	// puts every adjacent pair on different leaves. With 4 leaves the
	// old formula gives 0 same-leaf pairs out of 63 — all neighbour
	// traffic over the bisection.
	scatterSame := 0
	for rank := 0; rank < 63; rank++ {
		if rank%4 == (rank+1)%4 {
			scatterSame++
		}
	}
	if scatterSame != 0 {
		t.Fatalf("test premise wrong: scatter gives %d same-leaf pairs", scatterSame)
	}
}
