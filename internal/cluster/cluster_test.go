package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPerseusValid(t *testing.T) {
	cfg := Perseus()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 116 || cfg.CPUsPerNode != 2 {
		t.Error("Perseus should have 116 dual-CPU nodes")
	}
	if cfg.NumSwitches() != 5 {
		t.Errorf("Perseus should span 5 switches, got %d", cfg.NumSwitches())
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	base := Perseus()
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CPUsPerNode = -1 },
		func(c *Config) { c.PortsPerSwitch = 0 },
		func(c *Config) { c.LinkRate = 0 },
		func(c *Config) { c.StackRate = -5 },
		func(c *Config) { c.MTU = 0 },
		func(c *Config) { c.MinFrame = 0 },
		func(c *Config) { c.CtrlBytes = 0 },
		func(c *Config) { c.RTO = 0 },
		func(c *Config) { c.RTOBackoff = 0.5 },
		func(c *Config) { c.MaxDropProb = 1.5 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config passed validation", i)
		}
	}
}

func TestSwitchOf(t *testing.T) {
	cfg := Perseus()
	if cfg.SwitchOf(0) != 0 || cfg.SwitchOf(23) != 0 {
		t.Error("first 24 nodes should be on switch 0")
	}
	if cfg.SwitchOf(24) != 1 || cfg.SwitchOf(63) != 2 {
		t.Error("switch assignment broken")
	}
	// The paper's 64×1 case spans three switches (24+24+16).
	seen := map[int]int{}
	for node := 0; node < 64; node++ {
		seen[cfg.SwitchOf(node)]++
	}
	if len(seen) != 3 || seen[0] != 24 || seen[1] != 24 || seen[2] != 16 {
		t.Errorf("64 nodes span %v, want 24/24/16", seen)
	}
}

func TestWireBytes(t *testing.T) {
	cfg := Perseus()
	if got := cfg.WireBytes(0); got != cfg.MinFrame {
		t.Errorf("WireBytes(0) = %d", got)
	}
	if got := cfg.WireBytes(100); got != 178 {
		t.Errorf("WireBytes(100) = %d, want 178", got)
	}
	// Exactly one MTU: one frame of overhead.
	if got := cfg.WireBytes(1460); got != 1538 {
		t.Errorf("WireBytes(1460) = %d, want 1538", got)
	}
	// One byte more: two frames.
	if got := cfg.WireBytes(1461); got != 1461+2*78 {
		t.Errorf("WireBytes(1461) = %d", got)
	}
	// Framing overhead at 16 KB should be ~4%, the paper's 3.25/81.
	ratio := float64(cfg.WireBytes(16384))/16384 - 1
	if ratio < 0.03 || ratio > 0.07 {
		t.Errorf("framing overhead at 16KB = %.1f%%", ratio*100)
	}
}

func TestWireBytesMonotoneProperty(t *testing.T) {
	cfg := Perseus()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return cfg.WireBytes(x) <= cfg.WireBytes(y) && cfg.WireBytes(x) >= x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransmitAndFrameTime(t *testing.T) {
	cfg := Perseus()
	// 16 KB on the 100 Mbit/s link.
	tt := cfg.TransmitTime(16384, cfg.LinkRate)
	want := float64(cfg.WireBytes(16384)) * 8 / 100e6
	if math.Abs(tt-want) > 1e-12 {
		t.Errorf("TransmitTime = %v, want %v", tt, want)
	}
	// FrameTime caps at one MTU.
	if cfg.FrameTime(1_000_000) != cfg.FrameTime(cfg.MTU) {
		t.Error("FrameTime should cap at one MTU")
	}
	if cfg.FrameTime(100) >= cfg.FrameTime(1400) {
		t.Error("FrameTime should grow with payload below the MTU")
	}
}

func TestDropProb(t *testing.T) {
	cfg := Perseus()
	th := cfg.NICBufferDelay()
	if cfg.DropProb(th/2, th) != 0 {
		t.Error("below threshold should never drop")
	}
	if cfg.DropProb(th, th) != 0 {
		t.Error("at threshold should not drop yet")
	}
	p1 := cfg.DropProb(th*1.5, th)
	p2 := cfg.DropProb(th*2.5, th)
	if !(p1 > 0 && p2 > p1) {
		t.Errorf("drop prob not increasing: %v, %v", p1, p2)
	}
	if p := cfg.DropProb(th*100, th); p != cfg.MaxDropProb {
		t.Errorf("drop prob should cap at %v, got %v", cfg.MaxDropProb, p)
	}
}

func TestBlockPlacement(t *testing.T) {
	cfg := Perseus()
	pl, err := NewBlockPlacement(&cfg, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumProcs() != 128 {
		t.Errorf("NumProcs = %d", pl.NumProcs())
	}
	if pl.NodeOf(0) != 0 || pl.NodeOf(1) != 0 || pl.NodeOf(2) != 1 {
		t.Error("block placement broken")
	}
	if pl.SlotOf(0) != 0 || pl.SlotOf(1) != 1 || pl.SlotOf(3) != 1 {
		t.Error("slot assignment broken")
	}
	if !pl.SameNode(0, 1) || pl.SameNode(1, 2) {
		t.Error("SameNode broken")
	}
	if pl.String() != "64x2" {
		t.Errorf("String = %q", pl.String())
	}
	// MPIBench pairing (i, i+P/2) must always cross nodes for n >= 2.
	half := pl.NumProcs() / 2
	for i := 0; i < half; i++ {
		if pl.SameNode(i, i+half) {
			t.Fatalf("pair (%d,%d) landed on one node", i, i+half)
		}
	}
}

func TestScatteredPlacement(t *testing.T) {
	cfg := Perseus()
	pl, err := NewPlacement(&cfg, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Both ranks of a logical node still share one physical node.
	if pl.NodeOf(0) != pl.NodeOf(1) || pl.NodeOf(2) == pl.NodeOf(1) {
		t.Error("rank-to-node grouping broken under scatter")
	}
	if pl.LogicalNode(0) != 0 || pl.LogicalNode(2) != 1 || pl.LogicalNode(127) != 63 {
		t.Error("logical node indexing broken")
	}
	// The job's physical nodes are distinct and within the machine.
	seen := map[int]bool{}
	switches := map[int]int{}
	for logical := 0; logical < 64; logical++ {
		phys := pl.NodeOf(logical * 2)
		if phys < 0 || phys >= cfg.Nodes {
			t.Fatalf("physical node %d out of range", phys)
		}
		if seen[phys] {
			t.Fatalf("physical node %d assigned twice", phys)
		}
		seen[phys] = true
		switches[cfg.SwitchOf(phys)]++
	}
	// Scattering spreads the job over every switch of the machine.
	if len(switches) != cfg.NumSwitches() {
		t.Errorf("scattered job uses %d switches, want %d", len(switches), cfg.NumSwitches())
	}
	// Logically adjacent nodes land on different switches.
	sameSwitch := 0
	for logical := 0; logical < 63; logical++ {
		a := cfg.SwitchOf(pl.NodeOf(logical * 2))
		b := cfg.SwitchOf(pl.NodeOf((logical + 1) * 2))
		if a == b {
			sameSwitch++
		}
	}
	if sameSwitch > 8 {
		t.Errorf("%d of 63 adjacent logical nodes share a switch; scatter not spreading", sameSwitch)
	}
}

func TestPlacementValidation(t *testing.T) {
	cfg := Perseus()
	if _, err := NewPlacement(&cfg, 0, 1); err == nil {
		t.Error("0 nodes should fail")
	}
	if _, err := NewPlacement(&cfg, 200, 1); err == nil {
		t.Error("more nodes than machine should fail")
	}
	if _, err := NewPlacement(&cfg, 2, 3); err == nil {
		t.Error("oversubscribed CPUs should fail")
	}
}

func TestParsePlacement(t *testing.T) {
	cfg := Perseus()
	pl, err := ParsePlacement(&cfg, "16x2")
	if err != nil || pl.NodeCount != 16 || pl.PerNode != 2 {
		t.Errorf("ParsePlacement: %v %v", pl, err)
	}
	if _, err := ParsePlacement(&cfg, "16"); err == nil {
		t.Error("missing x should fail")
	}
	if _, err := ParsePlacement(&cfg, "axb"); err == nil {
		t.Error("non-numeric should fail")
	}
}

func TestStandardSweep(t *testing.T) {
	cfg := Perseus()
	sweep := StandardSweep(&cfg)
	if len(sweep) != 12 { // {2..64}×{1,2}
		t.Errorf("sweep has %d entries: %v", len(sweep), sweep)
	}
	for _, pl := range sweep {
		if _, err := NewPlacement(&cfg, pl.NodeCount, pl.PerNode); err != nil {
			t.Errorf("sweep produced invalid placement %v: %v", pl, err)
		}
	}
}

type fixedRand struct{ f, n float64 }

func (r fixedRand) Float64() float64     { return r.f }
func (r fixedRand) NormFloat64() float64 { return r.n }

func TestComputeModel(t *testing.T) {
	m := DefaultComputeModel()
	// With zero noise sources, Duration is the nominal value.
	quiet := ComputeModel{}
	if got := quiet.Duration(1.5, fixedRand{}); got != 1.5 {
		t.Errorf("quiet Duration = %v", got)
	}
	// Jitter shifts the value but stays near nominal.
	got := m.Duration(1.0, fixedRand{f: 0.9, n: 1})
	if math.Abs(got-1.0) > 0.05 {
		t.Errorf("jittered Duration = %v, want ~1.0", got)
	}
	// A spike (Float64 below SpikeProb) adds time.
	spiky := ComputeModel{SpikeProb: 0.5, SpikeSeconds: 1}
	if got := spiky.Duration(1.0, fixedRand{f: 0.1}); got <= 1.0 {
		t.Errorf("spike did not add time: %v", got)
	}
}
