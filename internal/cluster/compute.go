package cluster

import (
	"fmt"

	"repro/internal/stats"
)

// ComputeModel gives the execution time of serial code segments on one
// CPU of the cluster. The paper abstracts serial segments to an
// empirically measured constant (3.24 s for one full sweep of the 256×256
// Jacobi grid on Perseus, divided by numprocs for the parallel shares);
// we add the small run-to-run jitter a real CPU shows.
type ComputeModel struct {
	// JitterSigma is the lognormal sigma of multiplicative noise applied
	// to every compute interval (OS ticks, cache state).
	JitterSigma float64
	// SpikeProb and SpikeSeconds model occasional daemon interference.
	SpikeProb    float64
	SpikeSeconds float64
}

// DefaultComputeModel returns the jitter observed on a dedicated
// (single-user) Perseus node: tight, with rare daemon spikes.
func DefaultComputeModel() ComputeModel {
	return ComputeModel{
		JitterSigma:  0.004,
		SpikeProb:    0.0005,
		SpikeSeconds: 0.002,
	}
}

// Duration draws the actual time a nominal interval takes.
func (m ComputeModel) Duration(nominal float64, r stats.Rand) float64 {
	if nominal < 0 {
		panic(fmt.Sprintf("cluster: negative compute time %v", nominal))
	}
	d := nominal
	if m.JitterSigma > 0 {
		d *= 1 + m.JitterSigma*r.NormFloat64()
		if d < 0 {
			d = 0
		}
	}
	if m.SpikeProb > 0 && r.Float64() < m.SpikeProb {
		d += m.SpikeSeconds * (0.5 + r.Float64())
	}
	return d
}

// JacobiSweepSeconds is the measured time of one full-grid Jacobi sweep
// on one Perseus CPU for the paper's 256×256 problem. The Figure 5
// annotation reads "time = 3.24/numprocs"; we interpret the constant as
// 3.24 ms because (a) a 256×256 five-point sweep is ~0.33 MFLOP, which a
// 500 MHz Pentium III completes in milliseconds, not seconds; (b) with
// the listing's 100 000 iterations, milliseconds per sweep reproduce the
// paper's "11 hours and 15 minutes of processor time" across the Figure
// 6 configurations; and (c) the paper says the problem size made neither
// computation nor communication unimportant, which only holds at the
// millisecond scale.
const JacobiSweepSeconds = 3.24e-3

// JacobiIterations is the iteration count in the paper's Figure 5
// listing ("int iterations = 100000"). Because PEVPM sampling and the
// speedup ratios are per-iteration quantities, shorter runs give the
// same curves with slightly larger Monte-Carlo error; experiments
// default to a reduced count and note it.
const JacobiIterations = 100000
