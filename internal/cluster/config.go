// Package cluster describes the machines that the simulated MPI library,
// MPIBench and PEVPM run against: node/switch topology, link and
// backplane capacities, protocol constants and compute-cost models.
//
// The stock configuration, Perseus, reproduces the cluster the paper
// measured: 116 dual-CPU nodes on switched 100 Mbit/s Fast Ethernet,
// five 24-port switches joined by stacking matrix cards with 2.1 Gbit/s
// of backplane bandwidth, running MPICH 1.2.0 over TCP.
package cluster

import (
	"fmt"
	"math"
)

// Config describes one cluster. All rates are bits per second, times are
// seconds and sizes are bytes; the network simulator converts to virtual
// nanoseconds internally.
type Config struct {
	Name string

	// Topology.
	Nodes          int // number of compute nodes
	CPUsPerNode    int // processes a node can host without oversubscription
	PortsPerSwitch int // nodes attached to each switch

	// MaxSwitches caps how many switches the flat (daisy-chained)
	// machine physically has; 0 means the chassis count is unknown and
	// switches are derived from the node count. Perseus has five
	// switches, so its port capacity is 5×24 = 120 nodes: node counts
	// beyond that used to silently conjure extra switches.
	MaxSwitches int `json:",omitempty"`

	// Topo, when non-nil, replaces the flat switch list with a
	// hierarchical fabric (fat-tree, dragonfly, arbitrary switch tree).
	// PortsPerSwitch must equal Topo.LeafPorts and Nodes must fit the
	// topology's leaf capacity.
	Topo *Topology `json:",omitempty"`

	// Link layer.
	LinkRate      float64 // node NIC rate, full duplex (bits/s)
	MTU           int     // TCP payload bytes per Ethernet frame
	FrameOverhead int     // extra on-wire bytes per frame (eth+IP+TCP+preamble+IFG)
	MinFrame      int     // smallest on-wire frame (bytes)

	// Switch fabric.
	SwitchLatency  float64 // per-hop forwarding latency (s)
	StackRate      float64 // switch fabric / stacking backplane rate (bits/s)
	FabricPerFrame float64 // shared forwarding-engine time per frame (s)
	// FabricJitter is the coefficient of variation of a fabric/backplane
	// stage's service time (lookup and buffer-management variance). It
	// is what turns high utilisation into real queueing: deterministic
	// servers pipeline perfectly, real ones do not.
	FabricJitter float64

	// Host software stack (MPICH/TCP era constants).
	SendOverhead float64 // CPU time to initiate a send (s)
	RecvOverhead float64 // CPU time to complete a receive (s)
	PerByteCPU   float64 // copy cost per byte on each host (s/byte)
	JitterSigma  float64 // lognormal sigma applied to host overheads
	SpikeProb    float64 // probability of an OS scheduling spike per op
	SpikeMin     float64 // spike duration bounds (s)
	SpikeMax     float64

	// Intra-node transport. MPICH 1.2.0's ch_p4 device moved intra-node
	// messages over TCP loopback unless built for shared memory, so this
	// path is far cheaper than the wire but not memcpy-fast.
	MemLatency float64 // fixed cost of an intra-node message (s)
	MemRate    float64 // intra-node stream bandwidth (bits/s)

	// Loss and retransmission (TCP behaviour under congestion).
	NICBufferBytes   int     // per-port buffering before drops begin
	StackBufferBytes int     // backplane buffering before drops begin
	MaxDropProb      float64 // ceiling on per-message drop probability
	RTO              float64 // initial TCP retransmission timeout (s)
	RTOBackoff       float64 // multiplier per successive retransmission
	MaxRetries       int     // give-up bound (a sim failsafe; TCP retries longer)

	// MPI protocol.
	EagerLimit int // messages at or below this use the eager protocol (bytes)
	CtrlBytes  int // size of RTS/CTS control messages (bytes)
}

// Perseus returns the configuration of the cluster measured in the paper,
// calibrated so the simulated network reproduces the paper's observations
// (§5 of DESIGN.md): ~90 µs contention-free latency, ~81 Mbit/s goodput
// between two processes at 16 KB, the MPICH eager/rendezvous knee at
// 16 KB, and backplane saturation near 2.1 Gbit/s of offered load.
func Perseus() Config {
	return Config{
		Name:           "perseus",
		Nodes:          116,
		CPUsPerNode:    2,
		PortsPerSwitch: 24,

		LinkRate:      100e6,
		MTU:           1460,
		FrameOverhead: 78, // 40 TCP/IP + 18 eth + 20 preamble/IFG
		MinFrame:      84,

		SwitchLatency:  10e-6,
		StackRate:      2.1e9,
		FabricPerFrame: 6e-6, // ~160k frames/s forwarding engine
		FabricJitter:   0.5,

		SendOverhead: 28e-6,
		RecvOverhead: 28e-6,
		PerByteCPU:   2.2e-9, // ~450 MB/s host copy
		JitterSigma:  0.06,
		SpikeProb:    0.0015,
		SpikeMin:     150e-6,
		SpikeMax:     1500e-6,

		MemLatency: 45e-6, // TCP loopback round through the kernel
		MemRate:    800e6, // ~100 MB/s loopback stream on a 500 MHz P3

		NICBufferBytes:   262144,
		StackBufferBytes: 524288, // ≈2 ms of fabric backlog before drops begin
		MaxDropProb:      0.9,
		RTO:              0.2,
		RTOBackoff:       2,
		MaxRetries:       12,

		EagerLimit: 16384,
		CtrlBytes:  64,

		MaxSwitches: 5,
	}
}

// Validate reports the first inconsistency in the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %q: Nodes = %d", c.Name, c.Nodes)
	case c.CPUsPerNode <= 0:
		return fmt.Errorf("cluster %q: CPUsPerNode = %d", c.Name, c.CPUsPerNode)
	case c.PortsPerSwitch <= 0:
		return fmt.Errorf("cluster %q: PortsPerSwitch = %d", c.Name, c.PortsPerSwitch)
	case c.LinkRate <= 0 || c.StackRate <= 0 || c.MemRate <= 0:
		return fmt.Errorf("cluster %q: non-positive rate", c.Name)
	case c.FabricPerFrame < 0:
		return fmt.Errorf("cluster %q: FabricPerFrame = %v", c.Name, c.FabricPerFrame)
	case c.FabricJitter < 0:
		return fmt.Errorf("cluster %q: FabricJitter = %v", c.Name, c.FabricJitter)
	case c.MTU <= 0 || c.FrameOverhead < 0 || c.MinFrame <= 0:
		return fmt.Errorf("cluster %q: bad framing constants", c.Name)
	case c.EagerLimit < 0 || c.CtrlBytes <= 0:
		return fmt.Errorf("cluster %q: bad protocol constants", c.Name)
	case c.RTO <= 0 || c.RTOBackoff < 1 || c.MaxRetries <= 0:
		return fmt.Errorf("cluster %q: bad retransmission constants", c.Name)
	case c.MaxDropProb < 0 || c.MaxDropProb > 1:
		return fmt.Errorf("cluster %q: MaxDropProb = %v", c.Name, c.MaxDropProb)
	}
	if c.Topo != nil {
		if err := c.Topo.Validate(); err != nil {
			return fmt.Errorf("cluster %q: %w", c.Name, err)
		}
		if c.PortsPerSwitch != c.Topo.LeafPorts {
			return fmt.Errorf("cluster %q: PortsPerSwitch = %d but topology leaves have %d ports",
				c.Name, c.PortsPerSwitch, c.Topo.LeafPorts)
		}
		if ports := c.Topo.Capacity(); c.Nodes > ports {
			return fmt.Errorf("cluster %q: %d nodes oversubscribe topology %q (%d leaves × %d ports = %d node ports)",
				c.Name, c.Nodes, c.Topo.Name, c.Topo.Leaves, c.Topo.LeafPorts, ports)
		}
		return nil
	}
	if c.MaxSwitches > 0 {
		if ports := c.MaxSwitches * c.PortsPerSwitch; c.Nodes > ports {
			return fmt.Errorf("cluster %q: %d nodes oversubscribe the machine (%d switches × %d ports = %d node ports)",
				c.Name, c.Nodes, c.MaxSwitches, c.PortsPerSwitch, ports)
		}
	}
	return nil
}

// NumSwitches returns how many switches the machine has: every switch
// of the hierarchical topology when one is set, otherwise as many flat
// switches as the node count requires.
func (c *Config) NumSwitches() int {
	if c.Topo != nil {
		return c.Topo.Switches
	}
	return (c.Nodes + c.PortsPerSwitch - 1) / c.PortsPerSwitch
}

// SwitchOf returns the switch a node's port belongs to (its leaf switch
// under a hierarchical topology; leaf IDs coincide with flat switch
// IDs).
func (c *Config) SwitchOf(node int) int {
	if node < 0 || node >= c.Nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, c.Nodes))
	}
	return node / c.PortsPerSwitch
}

// NumSegments returns how many inter-switch channels the machine has:
// the topology's links, or the flat daisy-chain's switch-to-switch
// stacking segments. Fault rules of kind BackplaneDegrade target these
// by index.
func (c *Config) NumSegments() int {
	if c.Topo != nil {
		return c.Topo.NumSegments()
	}
	return c.NumSwitches() - 1
}

// Rails returns how many parallel NIC rails each node drives (1 unless
// a multi-rail topology is configured).
func (c *Config) Rails() int {
	if c.Topo != nil && c.Topo.Rails > 1 {
		return c.Topo.Rails
	}
	return 1
}

// WireBytes returns the bytes actually put on the wire for a TCP payload
// of the given size, accounting for per-frame framing overhead. This is
// the "3.25 Mbit/s of Ethernet framing overhead" the paper adds on top of
// 81 Mbit/s of goodput.
func (c *Config) WireBytes(payload int) int {
	if payload <= 0 {
		return c.MinFrame
	}
	frames := (payload + c.MTU - 1) / c.MTU
	return payload + frames*c.FrameOverhead
}

// FrameTime returns the seconds one on-the-wire frame of the given
// payload occupies a link, used for store-and-forward offsets.
func (c *Config) FrameTime(payload int) float64 {
	if payload > c.MTU {
		payload = c.MTU
	}
	return float64(c.WireBytes(payload)) * 8 / c.LinkRate
}

// TransmitTime returns the seconds a payload of the given size occupies a
// link of the given rate, including framing overhead.
func (c *Config) TransmitTime(payload int, rate float64) float64 {
	return float64(c.WireBytes(payload)) * 8 / rate
}

// Frames returns how many Ethernet frames carry a payload.
func (c *Config) Frames(payload int) int {
	if payload <= 0 {
		return 1
	}
	return (payload + c.MTU - 1) / c.MTU
}

// FabricService returns the time a message occupies a backplane-speed
// stage: its bits at the stack rate plus the forwarding engine's
// per-frame processing. The per-frame term is what makes synchronized
// bursts of small messages queue up, the paper's Figure 1 effect.
func (c *Config) FabricService(payload int) float64 {
	return float64(c.WireBytes(payload))*8/c.StackRate + float64(c.Frames(payload))*c.FabricPerFrame
}

// NICBufferDelay returns the backlog (in seconds of link time) at which a
// NIC port's buffers overflow and drops begin.
func (c *Config) NICBufferDelay() float64 {
	return float64(c.NICBufferBytes) * 8 / c.LinkRate
}

// StackBufferDelay is the analogous threshold for the backplane.
func (c *Config) StackBufferDelay() float64 {
	return float64(c.StackBufferBytes) * 8 / c.StackRate
}

// DropProb maps a resource backlog (seconds) and its overflow threshold
// to a per-message drop probability: zero below the threshold, then
// rising linearly to MaxDropProb at three times the threshold.
func (c *Config) DropProb(backlog, threshold float64) float64 {
	if backlog <= threshold {
		return 0
	}
	p := (backlog - threshold) / (2 * threshold)
	return math.Min(p, c.MaxDropProb)
}
