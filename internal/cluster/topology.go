package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Topology describes a hierarchical switch fabric: leaf switches that
// host compute nodes, optional upper switching levels (spines, group
// routers), the links joining them, and the number of parallel NIC
// rails each node drives. A Config with a nil Topo keeps the flat
// daisy-chained shape of the paper's Perseus cluster; a non-nil Topo
// replaces the stacking-backplane chain with an arbitrary switch graph
// whose edges are independently serialised channels.
//
// Switch numbering: leaves are switches 0..Leaves-1 (node n attaches to
// leaf n/LeafPorts); upper-level switches follow. Every link is an
// entry in Links and doubles as a fault-injection target: a
// faults.BackplaneDegrade rule's segment index is an index into Links.
//
// Routing is static and deterministic: the hop sequence for every
// ordered leaf pair is precomputed by the generator, so the same
// (topology, src, dst) triple always takes the same path and simulated
// results never depend on evaluation order.
type Topology struct {
	Name      string `json:"name"`
	Leaves    int    `json:"leaves"`     // leaf switches (nodes attach here)
	LeafPorts int    `json:"leaf_ports"` // node ports per leaf switch
	Switches  int    `json:"switches"`   // total switches, leaves included
	Rails     int    `json:"rails"`      // parallel NIC rails per node (>= 1)
	Links     []Link `json:"links"`

	// paths holds the encoded hop sequence for every ordered leaf pair
	// (index src*Leaves+dst): entries >= 0 are link indices, entries
	// < 0 are switch fabrics encoded as ^switchID. Paths start with the
	// ingress leaf fabric and end with the egress leaf fabric (a
	// same-leaf path is just the one fabric hop).
	paths [][]int32
}

// Link is one inter-switch channel. Rate 0 means the cluster's
// StackRate applies.
type Link struct {
	A    int     `json:"a"`
	B    int     `json:"b"`
	Rate float64 `json:"rate,omitempty"`
}

// FabricHop encodes switch s as a negative path entry.
func FabricHop(s int) int32 { return int32(^s) }

// IsFabricHop reports whether an encoded hop is a switch fabric, and
// which one.
func IsFabricHop(h int32) (sw int, ok bool) {
	if h < 0 {
		return int(^h), true
	}
	return 0, false
}

// NumSegments returns how many inter-switch links the topology has.
func (t *Topology) NumSegments() int { return len(t.Links) }

// Capacity returns the number of node ports the leaves provide.
func (t *Topology) Capacity() int { return t.Leaves * t.LeafPorts }

// LeafOf returns the leaf switch a node attaches to.
func (t *Topology) LeafOf(node int) int { return node / t.LeafPorts }

// PathHops returns the encoded hop sequence between two leaves. The
// returned slice is shared and must not be modified.
func (t *Topology) PathHops(srcLeaf, dstLeaf int) []int32 {
	return t.paths[srcLeaf*t.Leaves+dstLeaf]
}

// Validate reports the first inconsistency in the topology.
func (t *Topology) Validate() error {
	switch {
	case t.Leaves <= 0:
		return fmt.Errorf("topology %q: Leaves = %d", t.Name, t.Leaves)
	case t.LeafPorts <= 0:
		return fmt.Errorf("topology %q: LeafPorts = %d", t.Name, t.LeafPorts)
	case t.Switches < t.Leaves:
		return fmt.Errorf("topology %q: Switches = %d < Leaves = %d", t.Name, t.Switches, t.Leaves)
	case t.Rails < 1:
		return fmt.Errorf("topology %q: Rails = %d", t.Name, t.Rails)
	}
	for i, l := range t.Links {
		if l.A < 0 || l.A >= t.Switches || l.B < 0 || l.B >= t.Switches || l.A == l.B {
			return fmt.Errorf("topology %q: link %d joins switches %d and %d (have %d switches)",
				t.Name, i, l.A, l.B, t.Switches)
		}
		if l.Rate < 0 {
			return fmt.Errorf("topology %q: link %d rate %v", t.Name, i, l.Rate)
		}
	}
	if len(t.paths) != t.Leaves*t.Leaves {
		return fmt.Errorf("topology %q: %d precomputed paths for %d leaf pairs",
			t.Name, len(t.paths), t.Leaves*t.Leaves)
	}
	for src := 0; src < t.Leaves; src++ {
		for dst := 0; dst < t.Leaves; dst++ {
			p := t.paths[src*t.Leaves+dst]
			if len(p) == 0 {
				return fmt.Errorf("topology %q: no path from leaf %d to leaf %d", t.Name, src, dst)
			}
			if p[0] != FabricHop(src) || p[len(p)-1] != FabricHop(dst) {
				return fmt.Errorf("topology %q: path %d->%d does not start/end at its leaf fabrics",
					t.Name, src, dst)
			}
			for _, h := range p {
				if h >= 0 && int(h) >= len(t.Links) {
					return fmt.Errorf("topology %q: path %d->%d uses link %d of %d",
						t.Name, src, dst, h, len(t.Links))
				}
				if sw, ok := IsFabricHop(h); ok && sw >= t.Switches {
					return fmt.Errorf("topology %q: path %d->%d crosses switch %d of %d",
						t.Name, src, dst, sw, t.Switches)
				}
			}
		}
	}
	return nil
}

// FatTree builds a two-level folded-Clos ("leaf/spine") fabric for the
// given node count: ceil(nodes/leafPorts) leaf switches, each wired to
// every one of the spines by its own link. Routing is deterministic
// D-mod: the spine for an ordered leaf pair (a, b) is (a+b) mod spines,
// which spreads distinct flows across spines while keeping every
// (src, dst) pair on a fixed path.
func FatTree(nodes, leafPorts, spines, rails int) (*Topology, error) {
	if nodes <= 0 || leafPorts <= 0 || spines <= 0 {
		return nil, fmt.Errorf("cluster: fat-tree %dx%dx%d invalid", nodes, leafPorts, spines)
	}
	if rails < 1 {
		return nil, fmt.Errorf("cluster: fat-tree rail count %d (want >= 1)", rails)
	}
	leaves := (nodes + leafPorts - 1) / leafPorts
	t := &Topology{
		Name:      fmt.Sprintf("fattree-%dx%dx%d", nodes, leafPorts, spines),
		Leaves:    leaves,
		LeafPorts: leafPorts,
		Switches:  leaves + spines,
		Rails:     rails,
	}
	// Link l*spines+s joins leaf l and spine s.
	t.Links = make([]Link, 0, leaves*spines)
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			t.Links = append(t.Links, Link{A: l, B: leaves + s})
		}
	}
	t.paths = make([][]int32, leaves*leaves)
	for a := 0; a < leaves; a++ {
		for b := 0; b < leaves; b++ {
			if a == b {
				t.paths[a*leaves+b] = []int32{FabricHop(a)}
				continue
			}
			s := (a + b) % spines
			t.paths[a*leaves+b] = []int32{
				FabricHop(a),
				int32(a*spines + s),
				FabricHop(leaves + s),
				int32(b*spines + s),
				FabricHop(b),
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Dragonfly builds a dragonfly fabric: groups of routersPerGroup leaf
// routers with nodesPerRouter node ports each, an all-to-all of local
// links inside every group, and one global link between every pair of
// groups. The global link between groups g < h leaves from router
// h mod R of group g and lands on router g mod R of group h (the
// classic palm-tree assignment), and routing is minimal: local hop to
// the gateway, global hop, local hop to the destination router.
func Dragonfly(groups, routersPerGroup, nodesPerRouter, rails int) (*Topology, error) {
	if groups <= 0 || routersPerGroup <= 0 || nodesPerRouter <= 0 {
		return nil, fmt.Errorf("cluster: dragonfly %dx%dx%d invalid", groups, routersPerGroup, nodesPerRouter)
	}
	if rails < 1 {
		return nil, fmt.Errorf("cluster: dragonfly rail count %d (want >= 1)", rails)
	}
	leaves := groups * routersPerGroup
	t := &Topology{
		Name:      fmt.Sprintf("dragonfly-%dx%dx%d", groups, routersPerGroup, nodesPerRouter),
		Leaves:    leaves,
		LeafPorts: nodesPerRouter,
		Switches:  leaves,
		Rails:     rails,
	}
	// Local links first: inside group g, routers i < j get one link.
	local := make(map[[2]int]int32) // (routerA, routerB) sorted -> link index
	for g := 0; g < groups; g++ {
		for i := 0; i < routersPerGroup; i++ {
			for j := i + 1; j < routersPerGroup; j++ {
				a, b := g*routersPerGroup+i, g*routersPerGroup+j
				local[[2]int{a, b}] = int32(len(t.Links))
				t.Links = append(t.Links, Link{A: a, B: b})
			}
		}
	}
	// Global links: one per group pair.
	global := make(map[[2]int]int32) // (groupA, groupB) sorted -> link index
	gateway := func(g, h int) int {  // router in g owning the link to h
		return g*routersPerGroup + h%routersPerGroup
	}
	for g := 0; g < groups; g++ {
		for h := g + 1; h < groups; h++ {
			global[[2]int{g, h}] = int32(len(t.Links))
			t.Links = append(t.Links, Link{A: gateway(g, h), B: gateway(h, g)})
		}
	}
	localLink := func(a, b int) int32 {
		if a > b {
			a, b = b, a
		}
		return local[[2]int{a, b}]
	}
	t.paths = make([][]int32, leaves*leaves)
	for a := 0; a < leaves; a++ {
		for b := 0; b < leaves; b++ {
			idx := a*leaves + b
			if a == b {
				t.paths[idx] = []int32{FabricHop(a)}
				continue
			}
			ga, gb := a/routersPerGroup, b/routersPerGroup
			if ga == gb {
				t.paths[idx] = []int32{FabricHop(a), localLink(a, b), FabricHop(b)}
				continue
			}
			lo, hi := ga, gb
			if lo > hi {
				lo, hi = hi, lo
			}
			gwA, gwB := gateway(ga, gb), gateway(gb, ga)
			p := make([]int32, 0, 7)
			p = append(p, FabricHop(a))
			if a != gwA {
				p = append(p, localLink(a, gwA), FabricHop(gwA))
			}
			p = append(p, global[[2]int{lo, hi}])
			if b != gwB {
				p = append(p, FabricHop(gwB), localLink(gwB, b))
			}
			p = append(p, FabricHop(b))
			t.paths[idx] = p
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Tree builds an arbitrary switch tree: degrees[i] is the fan-out at
// level i counting up from the leaves, so Tree(p, r, 4, 2) is two root
// switches each feeding four leaves of p node ports. Messages climb to
// the lowest common ancestor and descend, traversing the fabric of
// every switch on the way.
func Tree(leafPorts, rails int, degrees ...int) (*Topology, error) {
	if leafPorts <= 0 || len(degrees) == 0 {
		return nil, fmt.Errorf("cluster: tree needs leaf ports and at least one level")
	}
	if rails < 1 {
		return nil, fmt.Errorf("cluster: tree rail count %d (want >= 1)", rails)
	}
	// Level widths, leaves first: width[0] = prod(degrees), each level
	// above divides by its fan-out.
	widths := make([]int, len(degrees)+1)
	widths[len(degrees)] = 1
	for i := len(degrees) - 1; i >= 0; i-- {
		if degrees[i] <= 0 {
			return nil, fmt.Errorf("cluster: tree degree %d invalid", degrees[i])
		}
		widths[i] = widths[i+1] * degrees[i]
	}
	leaves := widths[0]
	total := 0
	offset := make([]int, len(widths)) // switch id of the first switch at each level
	for i, w := range widths {
		offset[i] = total
		total += w
	}
	name := make([]string, 0, len(degrees))
	for _, d := range degrees {
		name = append(name, strconv.Itoa(d))
	}
	t := &Topology{
		Name:      "tree-" + strconv.Itoa(leafPorts) + "x" + strings.Join(name, "x"),
		Leaves:    leaves,
		LeafPorts: leafPorts,
		Switches:  total,
		Rails:     rails,
	}
	// uplink[s] is the link from switch s to its parent.
	uplink := make([]int32, total)
	parent := make([]int, total)
	for lvl := 0; lvl < len(degrees); lvl++ {
		for i := 0; i < widths[lvl]; i++ {
			child := offset[lvl] + i
			parent[child] = offset[lvl+1] + i/degrees[lvl]
			uplink[child] = int32(len(t.Links))
			t.Links = append(t.Links, Link{A: child, B: parent[child]})
		}
	}
	t.paths = make([][]int32, leaves*leaves)
	for a := 0; a < leaves; a++ {
		for b := 0; b < leaves; b++ {
			idx := a*leaves + b
			if a == b {
				t.paths[idx] = []int32{FabricHop(a)}
				continue
			}
			// Climb both sides to the common ancestor.
			var up, down []int32
			x, y := a, b
			for x != y {
				up = append(up, FabricHop(x), uplink[x])
				down = append(down, FabricHop(y), uplink[y])
				x, y = parent[x], parent[y]
			}
			// down holds (fabric, link) pairs walking up from b; the
			// descent needs (link, fabric) pairs in reverse, ending at
			// b's fabric.
			p := make([]int32, 0, len(up)+len(down)+1)
			p = append(p, up...)
			p = append(p, FabricHop(x))
			for i := len(down) - 2; i >= 0; i -= 2 {
				p = append(p, down[i+1], down[i])
			}
			t.paths[idx] = p
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTopology parses a topology spec string:
//
//	fattree:<nodes>x<leafPorts>x<spines>
//	dragonfly:<groups>x<routersPerGroup>x<nodesPerRouter>
//	tree:<leafPorts>x<degree>[x<degree>...]
//
// An optional "+<rails>rail" suffix sets the NIC rail count, e.g.
// "fattree:2048x32x8+2rail". It returns the topology and the node
// count the spec implies.
func ParseTopology(spec string) (*Topology, int, error) {
	rails := 1
	if i := strings.Index(spec, "+"); i >= 0 {
		suffix := spec[i+1:]
		spec = spec[:i]
		n, ok := strings.CutSuffix(suffix, "rail")
		if !ok {
			return nil, 0, fmt.Errorf("cluster: topology suffix %q is not of the form <n>rail", suffix)
		}
		r, err := strconv.Atoi(n)
		if err != nil || r < 1 {
			return nil, 0, fmt.Errorf("cluster: bad rail count %q", n)
		}
		rails = r
	}
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, 0, fmt.Errorf("cluster: topology %q is not of the form kind:dims", spec)
	}
	var dims []int
	for _, part := range strings.Split(rest, "x") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: topology %q: %v", spec, err)
		}
		dims = append(dims, v)
	}
	switch kind {
	case "fattree":
		if len(dims) != 3 {
			return nil, 0, fmt.Errorf("cluster: fattree wants <nodes>x<leafPorts>x<spines>, got %q", rest)
		}
		t, err := FatTree(dims[0], dims[1], dims[2], rails)
		if err != nil {
			return nil, 0, err
		}
		return t, dims[0], nil
	case "dragonfly":
		if len(dims) != 3 {
			return nil, 0, fmt.Errorf("cluster: dragonfly wants <groups>x<routers>x<nodes>, got %q", rest)
		}
		t, err := Dragonfly(dims[0], dims[1], dims[2], rails)
		if err != nil {
			return nil, 0, err
		}
		return t, t.Capacity(), nil
	case "tree":
		if len(dims) < 2 {
			return nil, 0, fmt.Errorf("cluster: tree wants <leafPorts>x<degree>..., got %q", rest)
		}
		t, err := Tree(dims[0], rails, dims[1:]...)
		if err != nil {
			return nil, 0, err
		}
		return t, t.Capacity(), nil
	default:
		return nil, 0, fmt.Errorf("cluster: unknown topology kind %q (want fattree, dragonfly or tree)", kind)
	}
}

// WithTopology returns a copy of the configuration retargeted onto a
// hierarchical topology: the node count, per-leaf port count and Topo
// field are replaced, everything else (link rates, protocol constants,
// host costs) carries over. The node count must fit the topology's
// leaf ports.
func (c Config) WithTopology(t *Topology, nodes int) (Config, error) {
	c.Topo = t
	c.Nodes = nodes
	c.PortsPerSwitch = t.LeafPorts
	c.MaxSwitches = 0
	c.Name = c.Name + "+" + t.Name
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}
