package cluster

// Myrinet returns a cluster with a Myrinet-2000-class interconnect, the
// kind of low-latency system-area network the paper contrasts commodity
// Ethernet against (Grove's thesis validates PEVPM on such machines
// too). Differences that matter to the model:
//
//   - 1.28 Gbit/s links with ~9 µs port-to-port latency and OS-bypass
//     (GM-style) host overheads of a few microseconds;
//   - a full-crossbar fabric: per-switch capacity far above the sum of
//     its ports, with sub-microsecond per-packet routing, so the
//     switch-fabric contention that dominates Fast Ethernet vanishes;
//   - source-routed cut-through with link-level flow control: no packet
//     loss, hence no retransmission timeouts (the RTO path is disabled
//     by making buffers effectively unbounded).
//
// The result, which TestFastNetworkContentionMinor asserts, is the
// paper's motivating contrast: on such a network, contention moves
// communication times by percents, not the 70%+ commodity Ethernet
// shows, and simple average-based models mispredict far less.
func Myrinet() Config {
	return Config{
		Name:           "myrinet",
		Nodes:          64,
		CPUsPerNode:    2,
		PortsPerSwitch: 16,

		LinkRate:      1.28e9,
		MTU:           4096, // Myrinet packets are not Ethernet frames
		FrameOverhead: 16,
		MinFrame:      24,

		SwitchLatency: 0.55e-6,
		// A crossbar switches all ports concurrently; in this model's
		// shared-serializer terms that is the aggregate rate, 16 ports
		// × 1.28 Gbit/s × full duplex.
		StackRate:      40.96e9,
		FabricPerFrame: 0.05e-6,
		FabricJitter:   0.3,

		SendOverhead: 3e-6, // OS-bypass: user-level send
		RecvOverhead: 3e-6,
		PerByteCPU:   0.55e-9, // ~1.8 GB/s host copy path
		JitterSigma:  0.05,
		SpikeProb:    0.0005,
		SpikeMin:     50e-6,
		SpikeMax:     500e-6,

		MemLatency: 8e-6,
		MemRate:    4e9,

		// Link-level flow control: no drops, no TCP timeouts. Buffers
		// are set high enough that the drop path never fires.
		NICBufferBytes:   1 << 30,
		StackBufferBytes: 1 << 30,
		MaxDropProb:      0,
		RTO:              0.01,
		RTOBackoff:       2,
		MaxRetries:       12,

		EagerLimit: 16384,
		CtrlBytes:  32,
	}
}
