package cluster

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Scenario presets: named fault schedules for the simulated cluster.
// Each preset samples its windows from a sim.SubSeed substream keyed by
// the scenario name, so the same (seed, name, env) triple always yields
// the same schedule — perturbed sweeps stay bit-reproducible regardless
// of worker count or evaluation order.

// ScenarioEnv is the cluster shape a scenario's random targets are
// drawn against: how many nodes the job uses, how many inter-switch
// segments the machine has (the flat daisy-chain's stacking segments,
// or a hierarchical topology's links), and the simulated span in
// seconds the windows should cover.
type ScenarioEnv struct {
	Nodes    int
	Segments int
	Span     float64
}

// scenarioBuilders maps preset names to their constructors. Node and
// segment targets are drawn from the same substream as the windows, so
// a preset is a single deterministic function of (seed, env).
var scenarioBuilders = map[string]func(rng *sim.RNG, env ScenarioEnv) []faults.Rule{
	// degraded-uplink: one node's NIC renegotiates to a fraction of its
	// nominal rate for most of the run — the classic half-duplex or
	// failing-transceiver uplink.
	"degraded-uplink": func(rng *sim.RNG, env ScenarioEnv) []faults.Rule {
		node := rng.Intn(env.Nodes)
		w := faults.Windows(rng, 1, env.Span, 0.6*env.Span, 0.9*env.Span)
		return []faults.Rule{{
			Kind: faults.LinkDegrade, Start: w[0][0], End: w[0][1],
			Target: node, Severity: 0.1,
		}}
	},
	// noisy-node: OS-noise bursts triple one node's host CPU costs in
	// several short windows (daemon wakeups, page-cache flushes).
	"noisy-node": func(rng *sim.RNG, env ScenarioEnv) []faults.Rule {
		node := rng.Intn(env.Nodes)
		var rules []faults.Rule
		for _, w := range faults.Windows(rng, 4, env.Span, 0.05*env.Span, 0.15*env.Span) {
			rules = append(rules, faults.Rule{
				Kind: faults.NodeSlow, Start: w[0], End: w[1],
				Target: node, Severity: 3,
			})
		}
		return rules
	},
	// flaky-nic: one node's NIC goes dark in short outage windows; every
	// transfer touching it rides the TCP retransmission path.
	"flaky-nic": func(rng *sim.RNG, env ScenarioEnv) []faults.Rule {
		node := rng.Intn(env.Nodes)
		var rules []faults.Rule
		for _, w := range faults.Windows(rng, 3, env.Span, 0.02*env.Span, 0.08*env.Span) {
			rules = append(rules, faults.Rule{
				Kind: faults.NICOutage, Start: w[0], End: w[1], Target: node,
			})
		}
		return rules
	},
	// lossy-links: a cluster-wide elevated drop probability window — the
	// shape of a congested or misconfigured switch dropping frames.
	"lossy-links": func(rng *sim.RNG, env ScenarioEnv) []faults.Rule {
		w := faults.Windows(rng, 1, env.Span, 0.3*env.Span, 0.6*env.Span)
		return []faults.Rule{{
			Kind: faults.DropBoost, Start: w[0][0], End: w[0][1],
			Target: faults.AllTargets, Severity: 0.02,
		}}
	},
	// congested-backplane: one inter-switch segment loses most of its
	// capacity (failed matrix-card lane on the flat stack, a degraded
	// uplink or global link on a hierarchical fabric), squeezing
	// cross-switch traffic. The segment is drawn from the machine's
	// actual segment list, so the preset lands on a real target on any
	// topology instead of always hitting flat segment 0.
	"congested-backplane": func(rng *sim.RNG, env ScenarioEnv) []faults.Rule {
		seg := 0
		if env.Segments > 0 {
			seg = rng.Intn(env.Segments)
		}
		w := faults.Windows(rng, 1, env.Span, 0.5*env.Span, 0.8*env.Span)
		return []faults.Rule{{
			Kind: faults.BackplaneDegrade, Start: w[0][0], End: w[0][1],
			Target: seg, Severity: 0.25,
		}}
	},
}

// ScenarioNames lists the available fault-scenario presets in sorted
// order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarioBuilders))
	for n := range scenarioBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scenario builds the named preset's fault schedule for the given
// cluster shape, sampling windows and targets from the substream
// sim.SubSeed(seed, "faults/"+name) over a run of env.Span simulated
// seconds. Unknown names return an error listing the presets, and the
// schedule is checked with ValidateFor against the shape, so a preset
// can never hand back a rule that binds nothing.
func Scenario(name string, seed uint64, env ScenarioEnv) (*faults.Schedule, error) {
	build, ok := scenarioBuilders[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown fault scenario %q (have %v)", name, ScenarioNames())
	}
	if env.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: scenario %q needs nodes > 0, got %d", name, env.Nodes)
	}
	if env.Segments < 0 {
		return nil, fmt.Errorf("cluster: scenario %q needs segments >= 0, got %d", name, env.Segments)
	}
	if env.Span <= 0 {
		return nil, fmt.Errorf("cluster: scenario %q needs span > 0, got %v", name, env.Span)
	}
	rng := sim.NewCellRNG(seed, "faults/"+name)
	s := &faults.Schedule{Name: name, Rules: build(rng, env)}
	if err := s.ValidateFor(env.Nodes, env.Segments); err != nil {
		return nil, fmt.Errorf("cluster: scenario %q: %w", name, err)
	}
	return s, nil
}
