package cluster

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Scenario presets: named fault schedules for the simulated cluster.
// Each preset samples its windows from a sim.SubSeed substream keyed by
// the scenario name, so the same (seed, name, span) triple always yields
// the same schedule — perturbed sweeps stay bit-reproducible regardless
// of worker count or evaluation order.

// scenarioBuilders maps preset names to their constructors. Node and
// segment targets are drawn from the same substream as the windows, so
// a preset is a single deterministic function of (seed, span).
var scenarioBuilders = map[string]func(rng *sim.RNG, nodes int, span float64) []faults.Rule{
	// degraded-uplink: one node's NIC renegotiates to a fraction of its
	// nominal rate for most of the run — the classic half-duplex or
	// failing-transceiver uplink.
	"degraded-uplink": func(rng *sim.RNG, nodes int, span float64) []faults.Rule {
		node := rng.Intn(nodes)
		w := faults.Windows(rng, 1, span, 0.6*span, 0.9*span)
		return []faults.Rule{{
			Kind: faults.LinkDegrade, Start: w[0][0], End: w[0][1],
			Target: node, Severity: 0.1,
		}}
	},
	// noisy-node: OS-noise bursts triple one node's host CPU costs in
	// several short windows (daemon wakeups, page-cache flushes).
	"noisy-node": func(rng *sim.RNG, nodes int, span float64) []faults.Rule {
		node := rng.Intn(nodes)
		var rules []faults.Rule
		for _, w := range faults.Windows(rng, 4, span, 0.05*span, 0.15*span) {
			rules = append(rules, faults.Rule{
				Kind: faults.NodeSlow, Start: w[0], End: w[1],
				Target: node, Severity: 3,
			})
		}
		return rules
	},
	// flaky-nic: one node's NIC goes dark in short outage windows; every
	// transfer touching it rides the TCP retransmission path.
	"flaky-nic": func(rng *sim.RNG, nodes int, span float64) []faults.Rule {
		node := rng.Intn(nodes)
		var rules []faults.Rule
		for _, w := range faults.Windows(rng, 3, span, 0.02*span, 0.08*span) {
			rules = append(rules, faults.Rule{
				Kind: faults.NICOutage, Start: w[0], End: w[1], Target: node,
			})
		}
		return rules
	},
	// lossy-links: a cluster-wide elevated drop probability window — the
	// shape of a congested or misconfigured switch dropping frames.
	"lossy-links": func(rng *sim.RNG, nodes int, span float64) []faults.Rule {
		w := faults.Windows(rng, 1, span, 0.3*span, 0.6*span)
		return []faults.Rule{{
			Kind: faults.DropBoost, Start: w[0][0], End: w[0][1],
			Target: faults.AllTargets, Severity: 0.02,
		}}
	},
	// congested-backplane: the first stacking segment loses most of its
	// capacity (failed matrix-card lane), squeezing cross-switch traffic.
	"congested-backplane": func(rng *sim.RNG, nodes int, span float64) []faults.Rule {
		w := faults.Windows(rng, 1, span, 0.5*span, 0.8*span)
		return []faults.Rule{{
			Kind: faults.BackplaneDegrade, Start: w[0][0], End: w[0][1],
			Target: 0, Severity: 0.25,
		}}
	},
}

// ScenarioNames lists the available fault-scenario presets in sorted
// order.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarioBuilders))
	for n := range scenarioBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scenario builds the named preset's fault schedule for a cluster with
// the given node count, sampling windows and targets from the substream
// sim.SubSeed(seed, "faults/"+name) over a run of span simulated
// seconds. Unknown names return an error listing the presets.
func Scenario(name string, seed uint64, nodes int, span float64) (*faults.Schedule, error) {
	build, ok := scenarioBuilders[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown fault scenario %q (have %v)", name, ScenarioNames())
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: scenario %q needs nodes > 0, got %d", name, nodes)
	}
	if span <= 0 {
		return nil, fmt.Errorf("cluster: scenario %q needs span > 0, got %v", name, span)
	}
	rng := sim.NewCellRNG(seed, "faults/"+name)
	s := &faults.Schedule{Name: name, Rules: build(rng, nodes, span)}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: scenario %q: %w", name, err)
	}
	return s, nil
}
