package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Placement maps MPI ranks onto cluster nodes using the paper's n×p
// notation: n nodes with p processes each. Ranks fill nodes in blocks
// (ranks 0..p-1 on the first node, and so on), as MPICH's machinefile
// assigns consecutive slots.
//
// Which physical nodes a job receives is a separate question. On a
// shared cluster like Perseus the batch scheduler hands out whatever
// nodes are free, so a job's nodes are scattered across switches —
// logically adjacent ranks are not physically adjacent. NewPlacement
// therefore spreads the job round-robin over the switches (the canonical
// layout, and the one under which benchmark distributions transfer to
// applications); NewBlockPlacement packs nodes in physical order for
// ablation studies of placement locality.
type Placement struct {
	NodeCount int // n — number of nodes used
	PerNode   int // p — processes per node

	// nodes maps the job's logical node index to a physical node. When
	// nil (a Placement built by literal), the identity/block mapping is
	// used.
	nodes []int
}

// NewPlacement builds an n×p placement, validating against the config.
//
// On a flat machine the job's nodes are scattered round-robin across
// the switches, modelling a shared batch queue. On a hierarchical
// topology that heuristic is a trap: dealing node i to switch i%s puts
// every pair of adjacent ranks on different leaves, driving all traffic
// across the bisection. There the placement fills leaf switches first
// (consecutive logical nodes share a leaf), the layout schedulers with
// topology awareness produce and the one locality studies assume.
func NewPlacement(cfg *Config, nodes, perNode int) (Placement, error) {
	pl, err := NewBlockPlacement(cfg, nodes, perNode)
	if err != nil {
		return pl, err
	}
	if cfg.Topo != nil {
		// Physical node n already attaches to leaf n/LeafPorts, so the
		// identity mapping is exactly leaf-first fill.
		return pl, nil
	}
	s := cfg.NumSwitches()
	pl.nodes = make([]int, nodes)
	for i := range pl.nodes {
		phys := (i%s)*cfg.PortsPerSwitch + i/s
		if phys >= cfg.Nodes {
			// A machine with a partially filled last switch: fall back
			// to dealing the remainder in block order.
			phys = i
		}
		pl.nodes[i] = phys
	}
	return pl, nil
}

// NewBlockPlacement builds an n×p placement on physically consecutive
// nodes (logical node i = physical node i).
func NewBlockPlacement(cfg *Config, nodes, perNode int) (Placement, error) {
	pl := Placement{NodeCount: nodes, PerNode: perNode}
	if nodes <= 0 || perNode <= 0 {
		return pl, fmt.Errorf("cluster: invalid placement %dx%d", nodes, perNode)
	}
	if nodes > cfg.Nodes {
		return pl, fmt.Errorf("cluster %q: placement needs %d nodes, machine has %d",
			cfg.Name, nodes, cfg.Nodes)
	}
	if perNode > cfg.CPUsPerNode {
		return pl, fmt.Errorf("cluster %q: placement puts %d processes per node, node has %d CPUs",
			cfg.Name, perNode, cfg.CPUsPerNode)
	}
	return pl, nil
}

// ParsePlacement parses the paper's "NxP" notation (e.g. "64x2").
func ParsePlacement(cfg *Config, s string) (Placement, error) {
	lo := strings.ToLower(s)
	parts := strings.Split(lo, "x")
	if len(parts) != 2 {
		return Placement{}, fmt.Errorf("cluster: placement %q is not of the form NxP", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return Placement{}, fmt.Errorf("cluster: placement %q: %v", s, err)
	}
	p, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return Placement{}, fmt.Errorf("cluster: placement %q: %v", s, err)
	}
	return NewPlacement(cfg, n, p)
}

// String renders the placement in n×p notation.
func (p Placement) String() string { return fmt.Sprintf("%dx%d", p.NodeCount, p.PerNode) }

// NumProcs returns the total process count n·p.
func (p Placement) NumProcs() int { return p.NodeCount * p.PerNode }

// NodeOf returns the physical node hosting the given rank.
func (p Placement) NodeOf(rank int) int {
	if rank < 0 || rank >= p.NumProcs() {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, p.NumProcs()))
	}
	logical := rank / p.PerNode
	if p.nodes == nil {
		return logical
	}
	return p.nodes[logical]
}

// LogicalNode returns the rank's job-local node index (0..NodeCount-1),
// independent of which physical node it landed on. Per-node state that
// a job allocates (clocks, counters) indexes by logical node.
func (p Placement) LogicalNode(rank int) int {
	if rank < 0 || rank >= p.NumProcs() {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, p.NumProcs()))
	}
	return rank / p.PerNode
}

// SlotOf returns the CPU slot of the rank within its node.
func (p Placement) SlotOf(rank int) int {
	if rank < 0 || rank >= p.NumProcs() {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", rank, p.NumProcs()))
	}
	return rank % p.PerNode
}

// SameNode reports whether two ranks share a node (and hence a NIC).
func (p Placement) SameNode(a, b int) bool { return p.NodeOf(a) == p.NodeOf(b) }

// StandardSweep returns the paper's benchmark configurations: n×p for
// n ∈ {2,4,8,16,32,64} (capped at the machine) and p ∈ {1..CPUsPerNode}.
func StandardSweep(cfg *Config) []Placement {
	var out []Placement
	for p := 1; p <= cfg.CPUsPerNode; p++ {
		for n := 2; n <= 64 && n <= cfg.Nodes; n *= 2 {
			out = append(out, Placement{NodeCount: n, PerNode: p})
		}
	}
	return out
}
