package experiments

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/experiments/sweep"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// The perturbed sweep reruns figure-style measurements under every fault
// scenario preset and asks the paper's question in degraded conditions:
// does a PEVPM model built from benchmarks taken under a fault still
// track a real execution under the same fault? Each scenario's schedule
// is deterministic data derived from (Seed, scenario name), and every
// simulation below is an independent sweep cell with its own engine and
// SubSeed substream, so the whole report is bit-identical at any worker
// count.

// perturbedSpanSeconds is the window span fault scenarios are drawn
// over. It must be on the order of the simulated runtimes below (tens
// of milliseconds for the benchmark measurement phases, ~0.1 s for the
// Jacobi execution) — windows drawn over a much longer span would all
// open after the simulations finish and the "perturbed" runs would be
// healthy runs.
const perturbedSpanSeconds = 0.05

// perturbedFaultNodes is how many (block-placed) physical nodes the
// scenarios may target — the nodes every sub-experiment below actually
// occupies, so a drawn fault always lands on hardware in use.
const perturbedFaultNodes = 4

// PerturbedBenchRow compares one (op, size) distribution between the
// healthy cluster and one fault scenario.
type PerturbedBenchRow struct {
	Op            mpibench.Op `json:"op"`
	Size          int         `json:"size"`
	HealthyMeanUs float64     `json:"healthy_mean_us"`
	HealthyMaxUs  float64     `json:"healthy_max_us"`
	FaultMeanUs   float64     `json:"fault_mean_us"`
	FaultMaxUs    float64     `json:"fault_max_us"`
	Retries       uint64      `json:"retries"`     // perturbed run's retransmissions
	FaultDrops    uint64      `json:"fault_drops"` // drops attributed to the schedule
}

// ScenarioReport is the perturbed sweep's output for one scenario.
type ScenarioReport struct {
	Scenario string   `json:"scenario"`
	Rules    []string `json:"rules"`

	Bench []PerturbedBenchRow `json:"bench"`

	// Model tracking: a Jacobi execution under the scenario versus a
	// PEVPM prediction whose database was benchmarked under the same
	// scenario.
	MeasuredMakespan  float64 `json:"measured_makespan_s"`
	PredictedMakespan float64 `json:"predicted_makespan_s"`
	ModelErrorPct     float64 `json:"model_error_pct"`
}

// PerturbedResult is the full perturbed-sweep report.
type PerturbedResult struct {
	Span              float64          `json:"span_s"`
	HealthyMeasured   float64          `json:"healthy_measured_s"`
	HealthyPredicted  float64          `json:"healthy_predicted_s"`
	HealthyModelError float64          `json:"healthy_model_error_pct"`
	Scenarios         []ScenarioReport `json:"scenarios"`
}

// perturbedBenchSpecs are the figure-style measurements rerun per
// scenario: small- and large-message point-to-point (Figure 1/2 sizes,
// straddling the eager/rendezvous switch) and one collective.
func perturbedBenchSpecs(p Params) []mpibench.Spec {
	base := mpibench.Spec{
		Repetitions: p.Repetitions,
		WarmUp:      p.WarmUp,
		SyncProbes:  p.SyncProbes,
		Seed:        p.Seed,
	}
	isend := base
	isend.Op = mpibench.OpIsend
	isend.Sizes = []int{1024, 16384}
	bcast := base
	bcast.Op = mpibench.OpBcast
	bcast.Sizes = []int{1024}
	return []mpibench.Spec{isend, bcast}
}

// PerturbedSweep runs every fault-scenario preset (plus the healthy
// baseline) through the benchmark set and the Jacobi
// measured-vs-predicted comparison. Scenario order follows
// cluster.ScenarioNames(); all randomness derives from p.Seed.
func PerturbedSweep(cfg cluster.Config, p Params) (*PerturbedResult, error) {
	names := cluster.ScenarioNames()
	// Scenario index 0 is the healthy baseline (nil schedule).
	scheds := make([]*faults.Schedule, 1, len(names)+1)
	for _, name := range names {
		s, err := cluster.Scenario(name, p.Seed, cluster.ScenarioEnv{
			Nodes: perturbedFaultNodes, Segments: cfg.NumSegments(), Span: perturbedSpanSeconds,
		})
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, s)
	}

	benchPl, err := cluster.NewBlockPlacement(&cfg, 8, 1)
	if err != nil {
		return nil, err
	}
	jacobiPl, err := cluster.NewBlockPlacement(&cfg, perturbedFaultNodes, 1)
	if err != nil {
		return nil, err
	}
	j := workloads.Jacobi{
		XSize:        256,
		Iterations:   p.Iterations,
		SweepSeconds: cluster.JacobiSweepSeconds,
	}
	prog, err := j.Model()
	if err != nil {
		return nil, err
	}
	specs := perturbedBenchSpecs(p)

	// Phase 1: every simulation that does not depend on another cell —
	// per scenario, the benchmark runs, the measured Jacobi execution,
	// and the OpSend benchmark that becomes the prediction database.
	nScen := len(scheds)
	perScen := len(specs) + 2 // benches + measured jacobi + DB bench
	benchRes := make([][]*mpibench.Result, nScen)
	execRes := make([]workloads.ExecResult, nScen)
	dbRes := make([]*mpibench.Result, nScen)
	for i := range benchRes {
		benchRes[i] = make([]*mpibench.Result, len(specs))
	}
	scenName := func(si int) string {
		if si == 0 {
			return "healthy"
		}
		return names[si-1]
	}
	var obs *sweep.Observer
	if p.Metrics != nil {
		obs = sweep.NewObserver()
	}
	err = sweep.RunObserved(p.workers(), nScen*perScen, obs, func(i int) error {
		si, kind := i/perScen, i%perScen
		sched := scheds[si]
		switch {
		case kind < len(specs):
			s := specs[kind]
			s.Placement = benchPl
			s.Faults = sched
			s.Seed = sim.SubSeed(p.Seed, fmt.Sprintf("perturbed:%s:bench%d", scenName(si), kind))
			r, err := mpibench.Run(cfg, s)
			if err != nil {
				return fmt.Errorf("experiments: perturbed %s %s: %w", scenName(si), s.Op, err)
			}
			benchRes[si][kind] = r
		case kind == len(specs):
			r, err := workloads.ExecuteFaults(cfg, jacobiPl,
				sim.SubSeed(p.Seed, "perturbed:"+scenName(si)+":measured"), sched, j.Run)
			if err != nil {
				return fmt.Errorf("experiments: perturbed %s jacobi: %w", scenName(si), err)
			}
			execRes[si] = r
		default:
			s := mpibench.Spec{
				Op:          mpibench.OpSend,
				Sizes:       []int{0, 256, 1024, 4096},
				Placement:   jacobiPl,
				Repetitions: p.Repetitions,
				WarmUp:      p.WarmUp,
				SyncProbes:  p.SyncProbes,
				Faults:      sched,
				Seed:        sim.SubSeed(p.Seed, "perturbed:"+scenName(si)+":db"),
			}
			r, err := mpibench.Run(cfg, s)
			if err != nil {
				return fmt.Errorf("experiments: perturbed %s db: %w", scenName(si), err)
			}
			dbRes[si] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if p.Metrics != nil {
		// Fold phase 1 in cell-index order: the same walk the sweep
		// enumerated, independent of which worker ran what.
		for i := 0; i < nScen*perScen; i++ {
			si, kind := i/perScen, i%perScen
			switch {
			case kind < len(specs):
				p.Metrics.Merge(benchRes[si][kind].Metrics)
			case kind == len(specs):
				p.Metrics.Merge(execRes[si].Metrics)
			default:
				p.Metrics.Merge(dbRes[si].Metrics)
			}
		}
		p.Metrics.Merge(obs.Snapshot())
	}

	// Phase 2: PEVPM predictions need phase 1's database. Each scenario's
	// DB is built once, serially — NewEmpiricalDB freezes the shared
	// histograms, after which the DB is read-only and safe to share
	// across the concurrent evaluation cells below.
	dbs := make([]*pevpm.EmpiricalDB, nScen)
	for si := range dbs {
		set := &mpibench.Set{Cluster: cfg.Name}
		set.Add(dbRes[si])
		db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: perturbed %s db: %w", scenName(si), err)
		}
		dbs[si] = db
	}

	// EvalRuns Monte-Carlo replications per scenario form the second
	// sweep.
	runs := p.EvalRuns
	if runs < 1 {
		runs = 1
	}
	makespans := make([]float64, nScen*runs)
	evalSnaps := make([]metrics.Snapshot, nScen*runs)
	var obs2 *sweep.Observer
	if p.Metrics != nil {
		obs2 = sweep.NewObserver()
	}
	err = sweep.RunObserved(p.workers(), nScen*runs, obs2, func(i int) error {
		si, rep := i/runs, i%runs
		r, err := pevpm.Evaluate(prog, pevpm.Options{
			Procs: jacobiPl.NumProcs(), DB: dbs[si],
			Seed:   sim.SubSeed(p.Seed, fmt.Sprintf("perturbed:%s:eval%d", scenName(si), rep)),
			NodeOf: jacobiPl.NodeOf,
		})
		if err != nil {
			return fmt.Errorf("experiments: perturbed %s prediction: %w", scenName(si), err)
		}
		makespans[i] = r.Makespan
		evalSnaps[i] = r.Metrics
		return nil
	})
	if err != nil {
		return nil, err
	}
	if p.Metrics != nil {
		for _, s := range evalSnaps {
			p.Metrics.Merge(s)
		}
		p.Metrics.Merge(obs2.Snapshot())
	}
	predicted := func(si int) float64 {
		var sum stats.Summary
		for rep := 0; rep < runs; rep++ {
			sum.Add(makespans[si*runs+rep])
		}
		return sum.Mean
	}
	errorPct := func(measured, pred float64) float64 {
		if measured <= 0 {
			return math.NaN()
		}
		return math.Abs(pred-measured) / measured * 100
	}

	out := &PerturbedResult{
		Span:             perturbedSpanSeconds,
		HealthyMeasured:  execRes[0].Makespan.Seconds(),
		HealthyPredicted: predicted(0),
	}
	out.HealthyModelError = errorPct(out.HealthyMeasured, out.HealthyPredicted)
	for si := 1; si < nScen; si++ {
		rep := ScenarioReport{Scenario: names[si-1]}
		for _, r := range scheds[si].Rules {
			rep.Rules = append(rep.Rules, r.String())
		}
		for ki, spec := range specs {
			healthy, fault := benchRes[0][ki], benchRes[si][ki]
			for _, size := range spec.Sizes {
				hp, ok := healthy.PointFor(size)
				if !ok {
					return nil, fmt.Errorf("experiments: missing healthy %s %dB", spec.Op, size)
				}
				fp, ok := fault.PointFor(size)
				if !ok {
					return nil, fmt.Errorf("experiments: missing %s %s %dB", rep.Scenario, spec.Op, size)
				}
				rep.Bench = append(rep.Bench, PerturbedBenchRow{
					Op:            spec.Op,
					Size:          size,
					HealthyMeanUs: hp.Avg() * 1e6,
					HealthyMaxUs:  hp.Hist.Max() * 1e6,
					FaultMeanUs:   fp.Avg() * 1e6,
					FaultMaxUs:    fp.Hist.Max() * 1e6,
					Retries:       fault.Retries,
					FaultDrops:    fault.FaultDrops,
				})
			}
		}
		rep.MeasuredMakespan = execRes[si].Makespan.Seconds()
		rep.PredictedMakespan = predicted(si)
		rep.ModelErrorPct = errorPct(rep.MeasuredMakespan, rep.PredictedMakespan)
		out.Scenarios = append(out.Scenarios, rep)
	}
	return out, nil
}
