// Package experiments regenerates every figure of the paper on the
// simulated Perseus cluster. Each FigureN function returns the series
// the corresponding figure plots; cmd/repro prints them and
// EXPERIMENTS.md records how they compare with the paper.
package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/experiments/sweep"
	"repro/internal/metrics"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Params scales experiment cost. Quick keeps unit tests and benches
// fast; Full approaches the paper's sampling density.
type Params struct {
	Repetitions int // measured ops per size per config
	WarmUp      int
	SyncProbes  int
	EvalRuns    int // PEVPM Monte-Carlo evaluations per prediction
	Iterations  int // Jacobi iterations (paper: 100000; reduced here)
	MaxNodes    int // largest n in the n×p sweeps (paper: 64)
	Seed        uint64

	// MeasuredReps replicates Figure 6's measured Jacobi executions so
	// the measured side of the comparison carries an error bar too
	// (Student-t CI across replications). Zero means one execution —
	// the point estimate alone, with a degenerate interval. Replication
	// 0 keeps the original RNG substream, so point estimates are
	// unchanged by turning replication on.
	MeasuredReps int

	// Workers bounds how many simulation cells run concurrently. Zero
	// means GOMAXPROCS; one is the serial escape hatch. Every cell owns
	// its engine and derives its RNG substream from (Seed, cell key),
	// and results merge in canonical cell order, so figures are
	// bit-identical for every worker count.
	Workers int

	// Metrics, when non-nil, accumulates the instrument snapshot of
	// every simulation cell an experiment runs (sim kernel, netsim, mpi,
	// pevpm) plus the worker pool's own counters. Snapshots merge in
	// canonical cell order on the calling goroutine, so the folded
	// aggregate is byte-identical at any worker count. Nil skips all
	// collection; figure output is identical either way.
	Metrics *metrics.Aggregate
}

// workers resolves the configured worker count.
func (p Params) workers() int { return sweep.Workers(p.Workers) }

// measuredReps resolves the measured-execution replication count.
func (p Params) measuredReps() int {
	if p.MeasuredReps < 1 {
		return 1
	}
	return p.MeasuredReps
}

// Quick returns parameters for fast runs (tests, benches).
func Quick() Params {
	return Params{
		Repetitions:  80,
		WarmUp:       10,
		SyncProbes:   20,
		EvalRuns:     5,
		Iterations:   400,
		MaxNodes:     64,
		Seed:         1,
		MeasuredReps: 3,
	}
}

// Full returns parameters at the paper's fidelity.
func Full() Params {
	return Params{
		Repetitions: 300,
		WarmUp:      20,
		SyncProbes:  40,
		EvalRuns:    20,
		Iterations:  4000, // per-iteration behaviour is what Figure 6 plots;
		// the paper's 100000 iterations only narrow the statistical error
		MaxNodes:     64,
		Seed:         1,
		MeasuredReps: 5,
	}
}

// nodeSweep returns the paper's node counts 2,4,...,MaxNodes.
func (p Params) nodeSweep() []int {
	var out []int
	for n := 2; n <= p.MaxNodes; n *= 2 {
		out = append(out, n)
	}
	return out
}

// placements returns the benchmark configurations n×p for the given
// processes-per-node values, using the scheduler's scattered layout.
func (p Params) placements(cfg *cluster.Config, perNode ...int) ([]cluster.Placement, error) {
	return p.layoutPlacements(cfg, cluster.NewPlacement, perNode...)
}

// blockPlacements is the physically-contiguous variant, used by the
// network-characterisation figures: the paper's analysis of them depends
// on knowing exactly which switches a configuration spans (64×1 =
// 24+24+16 ports).
func (p Params) blockPlacements(cfg *cluster.Config, perNode ...int) ([]cluster.Placement, error) {
	return p.layoutPlacements(cfg, cluster.NewBlockPlacement, perNode...)
}

func (p Params) layoutPlacements(cfg *cluster.Config,
	build func(*cluster.Config, int, int) (cluster.Placement, error),
	perNode ...int) ([]cluster.Placement, error) {
	var out []cluster.Placement
	for _, pn := range perNode {
		for _, n := range p.nodeSweep() {
			pl, err := build(cfg, n, pn)
			if err != nil {
				return nil, err
			}
			out = append(out, pl)
		}
	}
	return out, nil
}

// Curve is one line of Figures 1 and 2: average (or minimum) time
// versus message size for one process configuration.
type Curve struct {
	Label  string    `json:"label"`
	Sizes  []int     `json:"sizes"`
	Micros []float64 `json:"micros"` // time per operation, microseconds
}

// isendCurves measures MPI_Isend across sizes and placements and returns
// one average curve per placement plus the contention-free "min" curve
// (the smallest individual time observed anywhere, per size — the paper's
// min line comes from one pair of communicating processes).
func isendCurves(cfg cluster.Config, p Params, sizes []int, placements []cluster.Placement) ([]Curve, error) {
	spec := mpibench.Spec{
		Op:          mpibench.OpIsend,
		Sizes:       sizes,
		Repetitions: p.Repetitions,
		WarmUp:      p.WarmUp,
		SyncProbes:  p.SyncProbes,
		Seed:        p.Seed,
		Workers:     p.workers(),
	}
	set, err := mpibench.RunSweepObserved(cfg, spec, placements, p.Metrics)
	if err != nil {
		return nil, err
	}
	var curves []Curve
	min := Curve{Label: "min", Sizes: sizes, Micros: make([]float64, len(sizes))}
	for i := range min.Micros {
		min.Micros[i] = -1
	}
	for _, pl := range placements {
		res, ok := set.Find(mpibench.OpIsend, pl.String())
		if !ok {
			return nil, fmt.Errorf("experiments: missing result for %v", pl)
		}
		c := Curve{Label: pl.String(), Sizes: sizes}
		for i, size := range sizes {
			pt, ok := res.PointFor(size)
			if !ok {
				return nil, fmt.Errorf("experiments: missing size %d for %v", size, pl)
			}
			c.Micros = append(c.Micros, pt.Avg()*1e6)
			if m := pt.Min() * 1e6; min.Micros[i] < 0 || m < min.Micros[i] {
				min.Micros[i] = m
			}
		}
		curves = append(curves, c)
	}
	return append(curves, min), nil
}

// Figure1Sizes are the paper's small message sizes (0 bytes – 1 KB).
func Figure1Sizes() []int { return []int{0, 64, 128, 256, 512, 768, 1024} }

// Figure2Sizes are the paper's large message sizes (1 KB – 256 KB).
func Figure2Sizes() []int {
	return []int{1024, 4096, 8192, 16384, 32768, 65536, 131072, 262144}
}

// Figure1 reproduces "Average times for MPI_Isend using small message
// sizes with various numbers of communicating processes". The
// characterisation figures use block placement: the paper's analysis of
// them reasons about exactly which switches each configuration occupies.
func Figure1(cfg cluster.Config, p Params) ([]Curve, error) {
	pls, err := p.blockPlacements(&cfg, 1, 2)
	if err != nil {
		return nil, err
	}
	return isendCurves(cfg, p, Figure1Sizes(), pls)
}

// Figure2 reproduces the large-message companion plot, whose features
// are the 16 KB protocol knee and the 64×1 saturation cliff.
func Figure2(cfg cluster.Config, p Params) ([]Curve, error) {
	pls, err := p.blockPlacements(&cfg, 1, 2)
	if err != nil {
		return nil, err
	}
	return isendCurves(cfg, p, Figure2Sizes(), pls)
}

// PDF is one distribution of Figures 3 and 4.
type PDF struct {
	Label string      `json:"label"`
	Size  int         `json:"size"`
	Bins  []stats.Bin `json:"bins"`
	Mean  float64     `json:"mean"`
	Min   float64     `json:"min"`
	Max   float64     `json:"max"`
}

// pdfsFor measures MPI_Isend distributions for one placement.
func pdfsFor(cfg cluster.Config, p Params, pl cluster.Placement, sizes []int, binWidth float64) ([]PDF, error) {
	res, err := mpibench.Run(cfg, mpibench.Spec{
		Op:          mpibench.OpIsend,
		Sizes:       sizes,
		Placement:   pl,
		Repetitions: p.Repetitions,
		WarmUp:      p.WarmUp,
		SyncProbes:  p.SyncProbes,
		BinWidth:    binWidth,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}
	if p.Metrics != nil {
		p.Metrics.Merge(res.Metrics)
	}
	var out []PDF
	for _, pt := range res.Points {
		out = append(out, PDF{
			Label: fmt.Sprintf("%s %dB", pl, pt.Size),
			Size:  pt.Size,
			Bins:  pt.Hist.Bins(),
			Mean:  pt.Avg(),
			Min:   pt.Min(),
			Max:   pt.Hist.Max(),
		})
	}
	return out, nil
}

// Figure3 reproduces the sampled performance profiles for small messages
// under high contention (64×2 processes, 0–1024 bytes).
func Figure3(cfg cluster.Config, p Params) ([]PDF, error) {
	pl, err := cluster.NewBlockPlacement(&cfg, p.MaxNodes, 2)
	if err != nil {
		return nil, err
	}
	return pdfsFor(cfg, p, pl, []int{0, 256, 512, 1024}, 10e-6)
}

// Figure4 reproduces the large-message profiles under network
// saturation (64×1 processes, ≥16 KB), whose long tails come from
// TCP retransmission timeouts.
func Figure4(cfg cluster.Config, p Params) ([]PDF, error) {
	pl, err := cluster.NewBlockPlacement(&cfg, p.MaxNodes, 1)
	if err != nil {
		return nil, err
	}
	return pdfsFor(cfg, p, pl, []int{16384, 32768, 65536}, 250e-6)
}

// SpeedupSeries is one line of Figure 6. Points are identified both by
// total process count and by the n×p configuration (the ×1 and ×2
// sub-sweeps appear in one series, as in the paper's single plot).
type SpeedupSeries struct {
	Label    string    `json:"label"`
	Configs  []string  `json:"configs"`
	Procs    []int     `json:"procs"`
	Speedups []float64 `json:"speedups"`

	// Los and His are the 95% confidence bounds on each speedup — the
	// figure's error bars. The measured series gets them from
	// Params.MeasuredReps replicated executions, the distribution-mode
	// prediction from its EvalRuns Monte-Carlo replications; the
	// deterministic point-value modes carry degenerate intervals
	// (Lo == Speedup == Hi).
	Los []float64 `json:"los"`
	His []float64 `json:"his"`
}

// HasErrorBars reports whether any point carries a non-degenerate
// interval — false for the deterministic point-value prediction modes
// and for unreplicated runs.
func (s SpeedupSeries) HasErrorBars() bool {
	for i := range s.Speedups {
		if s.Los[i] != s.Speedups[i] || s.His[i] != s.Speedups[i] {
			return true
		}
	}
	return false
}

// Figure6Result carries the speedup series plus the evaluation-cost
// accounting behind the paper's "67.5 times its actual execution speed"
// observation.
type Figure6Result struct {
	Series []SpeedupSeries `json:"series"`

	// ProcessorSeconds is the total simulated processor time of the
	// real executions (the paper's 11h15m); EvalSeconds is the wall
	// time PEVPM needed for all distribution-mode predictions.
	ProcessorSeconds float64 `json:"processor_seconds"`
	EvalSeconds      float64 `json:"eval_seconds"`
}

// Figure6Modes are the prediction variants the paper plots.
var Figure6Modes = []string{
	"measured",
	"pevpm distributions",
	"pevpm avg nxp",
	"pevpm avg 2x1",
	"pevpm min 2x1",
}

// Figure6 reproduces the Jacobi speedup comparison: measured execution
// versus PEVPM predictions using full distributions and the three
// simplistic variants. elapsed is a callback returning wall-clock
// seconds, injected so tests stay deterministic (pass nil to skip cost
// accounting).
func Figure6(cfg cluster.Config, p Params, elapsed func() float64) (*Figure6Result, error) {
	j := workloads.Jacobi{
		XSize:        256,
		Iterations:   p.Iterations,
		SweepSeconds: cluster.JacobiSweepSeconds,
	}
	prog, err := j.Model()
	if err != nil {
		return nil, err
	}

	// The benchmark database: MPI_Send distributions across the same
	// n×p configurations the predictions will be made for, plus the 1×2
	// single-node placement that characterises the intra-node path.
	pls, err := p.placements(&cfg, 1, 2)
	if err != nil {
		return nil, err
	}
	dbPls := pls
	if cfg.CPUsPerNode >= 2 {
		intra, err := cluster.NewPlacement(&cfg, 1, 2)
		if err != nil {
			return nil, err
		}
		dbPls = append([]cluster.Placement{intra}, pls...)
	}
	set, err := mpibench.RunSweepObserved(cfg, mpibench.Spec{
		Op:          mpibench.OpSend,
		Sizes:       []int{0, 256, 1024, 4096},
		Repetitions: p.Repetitions,
		WarmUp:      p.WarmUp,
		SyncProbes:  p.SyncProbes,
		Seed:        p.Seed + 77,
		Workers:     p.workers(),
	}, dbPls, p.Metrics)
	if err != nil {
		return nil, err
	}
	distDB, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		return nil, err
	}
	modes := map[string]pevpm.PerfDB{
		"pevpm distributions": distDB,
		"pevpm avg nxp":       pevpm.Collapse(distDB, pevpm.ModeMean),
		"pevpm avg 2x1":       pevpm.Collapse(pevpm.FixContention(distDB, 2), pevpm.ModeMean),
		"pevpm min 2x1":       pevpm.Collapse(pevpm.FixContention(distDB, 2), pevpm.ModeMin),
	}

	serial := j.SerialTime()
	series := map[string]*SpeedupSeries{}
	for _, label := range Figure6Modes {
		series[label] = &SpeedupSeries{Label: label}
	}
	markStart := 0.0
	if elapsed != nil {
		markStart = elapsed()
	}

	// Enumerate every independent cell of the figure: MeasuredReps
	// measured executions per placement plus one virtual-machine
	// replication per (placement, prediction mode, Monte-Carlo rep).
	// Each cell builds its own engine and derives its RNG substream
	// from (Seed, cell key), so the sweep below can run them on any
	// number of workers; the merge walks cells in canonical order,
	// keeping the figure bit-identical to a serial run.
	predLabels := Figure6Modes[1:]
	type cell struct {
		pi    int
		label string // "" for the measured execution
		rep   int
	}
	var cells []cell
	for pi := range pls {
		for rep := 0; rep < p.measuredReps(); rep++ {
			cells = append(cells, cell{pi: pi, rep: rep})
		}
		for _, label := range predLabels {
			runs := p.EvalRuns
			if label != "pevpm distributions" {
				runs = 1 // point-value modes are deterministic
			}
			for rep := 0; rep < runs; rep++ {
				cells = append(cells, cell{pi: pi, label: label, rep: rep})
			}
		}
	}

	var obs *sweep.Observer
	if p.Metrics != nil {
		obs = sweep.NewObserver()
	}
	makespans := make([]float64, len(cells))
	cellMetrics := make([]metrics.Snapshot, len(cells))
	err = sweep.RunObserved(p.workers(), len(cells), obs, func(i int) error {
		c := cells[i]
		pl := pls[c.pi]
		if c.label == "" {
			// Replication 0 keeps the substream key from before measured
			// replication existed, so recorded point estimates survive.
			key := "fig6:measured:" + pl.String()
			if c.rep > 0 {
				key = fmt.Sprintf("fig6:measured:%s:rep%d", pl, c.rep)
			}
			res, err := workloads.Execute(cfg, pl, sim.SubSeed(p.Seed, key), j.Run)
			if err != nil {
				return fmt.Errorf("experiments: executing jacobi on %v: %w", pl, err)
			}
			makespans[i] = res.Makespan.Seconds()
			cellMetrics[i] = res.Metrics
			return nil
		}
		rep, err := pevpm.Evaluate(prog, pevpm.Options{
			Procs: pl.NumProcs(), DB: modes[c.label],
			Seed:   sim.SubSeed(p.Seed, fmt.Sprintf("fig6:%s:%s:rep%d", c.label, pl, c.rep)),
			NodeOf: pl.NodeOf,
		})
		if err != nil {
			return fmt.Errorf("experiments: predicting %v with %s: %w", pl, c.label, err)
		}
		makespans[i] = rep.Makespan
		cellMetrics[i] = rep.Metrics
		return nil
	})
	if err != nil {
		return nil, err
	}
	if p.Metrics != nil {
		for i := range cells {
			p.Metrics.Merge(cellMetrics[i])
		}
		p.Metrics.Merge(obs.Snapshot())
	}

	var processorSeconds float64
	for i := 0; i < len(cells); {
		c := cells[i]
		pl := pls[c.pi]
		procs := pl.NumProcs()
		first := i
		var sum stats.Summary
		for ; i < len(cells) && cells[i].pi == c.pi && cells[i].label == c.label; i++ {
			sum.Add(makespans[i])
		}
		label := c.label
		var point float64
		if label == "" {
			label = "measured"
			// The point estimate is replication 0 alone — the exact run
			// the figure plotted before replication existed; the extra
			// replications only feed the error bar. Processor time stays
			// the single-execution accounting for the same reason.
			point = serial / makespans[first]
			processorSeconds += makespans[first] * float64(procs)
		} else {
			point = serial / sum.Mean
		}
		lo, hi := speedupBounds(serial, point, sum)
		appendPoint(series[label], pl.String(), procs, point, lo, hi)
	}

	out := &Figure6Result{ProcessorSeconds: processorSeconds}
	if elapsed != nil {
		out.EvalSeconds = elapsed() - markStart
	}
	for _, label := range Figure6Modes {
		out.Series = append(out.Series, *series[label])
	}
	return out, nil
}

// speedupBounds maps a 95% Student-t interval on the replicated
// makespans into speedup space (speedup = serial/makespan, so the
// bounds swap). A small-n interval whose lower makespan bound crosses
// zero is clamped to the fastest observed run, and the bar is widened
// to include the plotted point — error bars that exclude their own
// point read as a bug, not as honesty about replication-0 plotting.
func speedupBounds(serial, point float64, sum stats.Summary) (lo, hi float64) {
	iv := stats.StudentCI(sum, 0.95)
	mlo := iv.Lo
	if mlo <= 0 {
		mlo = sum.Min
	}
	lo, hi = serial/iv.Hi, serial/mlo
	if point < lo {
		lo = point
	}
	if point > hi {
		hi = point
	}
	return lo, hi
}

func appendPoint(s *SpeedupSeries, config string, procs int, speedup, lo, hi float64) {
	s.Configs = append(s.Configs, config)
	s.Procs = append(s.Procs, procs)
	s.Speedups = append(s.Speedups, speedup)
	s.Los = append(s.Los, lo)
	s.His = append(s.His, hi)
}

// SeriesByLabel returns the series with the given label.
func (r *Figure6Result) SeriesByLabel(label string) (SpeedupSeries, bool) {
	for _, s := range r.Series {
		if s.Label == label {
			return s, true
		}
	}
	return SpeedupSeries{}, false
}
