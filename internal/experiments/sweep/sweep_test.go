package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapKeepsIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunExecutesEveryCellOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		counts := make([]int32, 257)
		if err := Run(workers, len(counts), func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunFirstErrorWins checks the reported error is the lowest-indexed
// cell's, independent of scheduling, and that later cells still run.
func TestRunFirstErrorWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int32
		err := Run(workers, 20, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 7 || i == 13 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 7's", workers, err)
		}
		if ran != 20 {
			t.Fatalf("workers=%d: only %d cells ran", workers, ran)
		}
	}
}

func TestMapReturnsNilOnError(t *testing.T) {
	sentinel := errors.New("boom")
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

// TestRunBoundsConcurrency verifies no more than the requested worker
// count executes cells at once.
func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int32
	if err := Run(workers, 64, func(i int) error {
		n := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // widen the overlap window
			_ = j
		}
		atomic.AddInt32(&active, -1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent cells, worker cap is %d", peak, workers)
	}
}
