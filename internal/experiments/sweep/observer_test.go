package sweep

import (
	"reflect"
	"testing"
)

// TestObserverDeterministicAcrossWorkers runs the same sweep at several
// worker counts and requires byte-identical deterministic snapshots:
// the queue-depth multiset is {0..n-1} no matter who picks what.
func TestObserverDeterministicAcrossWorkers(t *testing.T) {
	const n = 37
	var want any
	for _, workers := range []int{1, 2, 4, 8} {
		obs := NewObserver()
		if err := RunObserved(workers, n, obs, func(i int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		s := obs.Snapshot()
		if v, _ := s.Counter("sweep", "cells_total"); v != n {
			t.Errorf("workers=%d: cells_total = %d, want %d", workers, v, n)
		}
		if v, _ := s.Counter("sweep", "sweeps_total"); v != 1 {
			t.Errorf("workers=%d: sweeps_total = %d, want 1", workers, v)
		}
		h, ok := s.Histogram("sweep", "queue_depth")
		if !ok || h.Count != n {
			t.Fatalf("workers=%d: queue_depth count = %d, want %d", workers, h.Count, n)
		}
		if h.Sum != int64(n*(n-1)/2) { // sum of 0..n-1
			t.Errorf("workers=%d: queue_depth sum = %d, want %d", workers, h.Sum, n*(n-1)/2)
		}
		if want == nil {
			want = s
		} else if !reflect.DeepEqual(want, s) {
			t.Errorf("workers=%d: snapshot differs from serial baseline", workers)
		}
	}
}

// TestObserverVolatileExcluded checks worker_cells_max stays out of the
// deterministic snapshot but is visible to humans via SnapshotAll.
func TestObserverVolatileExcluded(t *testing.T) {
	obs := NewObserver()
	if err := RunObserved(4, 16, obs, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := obs.Snapshot().Gauge("sweep", "worker_cells_max"); ok {
		t.Error("volatile worker_cells_max leaked into the deterministic snapshot")
	}
	v, ok := obs.SnapshotAll().Gauge("sweep", "worker_cells_max")
	if !ok || v < 1 {
		t.Errorf("worker_cells_max = %d (ok=%v), want >= 1 in SnapshotAll", v, ok)
	}
}

// TestRunObservedNilObserver checks the nil observer path (what Run
// uses) still executes every cell.
func TestRunObservedNilObserver(t *testing.T) {
	hits := make([]bool, 23)
	if err := RunObserved(3, len(hits), nil, func(i int) error { hits[i] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if !h {
			t.Errorf("cell %d never ran", i)
		}
	}
}
