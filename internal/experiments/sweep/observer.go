package sweep

import (
	"sync"

	"repro/internal/metrics"
)

// Observer instruments the worker pool. Its deterministic series are
// scheduling-independent by construction: cells_total and sweeps_total
// count work, not workers, and queue_depth observes the depth of the
// remaining-cell queue at each pickup — the pickups pop a shared
// counter, so the multiset of observed depths is exactly {0..n-1} for
// every worker count. Only worker_cells_max (how unevenly cells landed
// on goroutines) genuinely depends on scheduling; it is registered
// volatile, so it never reaches deterministic snapshots or exports.
type Observer struct {
	reg     *metrics.Registry
	mSweeps *metrics.Counter
	mCells  *metrics.Counter
	mDepth  *metrics.Histogram
	mWorker *metrics.Gauge
}

// NewObserver returns an observer with its own registry (the pool runs
// on the caller's goroutines; there is no engine to attach to).
func NewObserver() *Observer {
	reg := metrics.NewRegistry()
	return &Observer{
		reg:     reg,
		mSweeps: reg.Counter("sweep", "sweeps_total"),
		mCells:  reg.Counter("sweep", "cells_total"),
		mDepth:  reg.Histogram("sweep", "queue_depth", []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}),
		mWorker: reg.VolatileGauge("sweep", "worker_cells_max"),
	}
}

// Snapshot returns the deterministic instruments.
func (o *Observer) Snapshot() metrics.Snapshot { return o.reg.Snapshot() }

// SnapshotAll includes the volatile worker-skew gauge, for humans.
func (o *Observer) SnapshotAll() metrics.Snapshot { return o.reg.SnapshotAll() }

// begin records the start of one sweep of n cells.
func (o *Observer) begin(n int) {
	if o == nil {
		return
	}
	o.mSweeps.Inc()
	o.mCells.Add(uint64(n))
}

// pickup records one cell leaving the queue with depth cells behind it.
// Callers serialise it (the pool calls it under the queue mutex).
func (o *Observer) pickup(depth int) {
	if o == nil {
		return
	}
	o.mDepth.Observe(int64(depth))
}

// workerDone records how many cells one worker goroutine executed.
func (o *Observer) workerDone(cells int) {
	if o == nil {
		return
	}
	o.mWorker.SetMax(int64(cells))
}

// RunObserved is Run with pool instrumentation; obs may be nil.
func RunObserved(workers, n int, obs *Observer, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	obs.begin(n)
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			obs.pickup(n - 1 - i)
			if err := cell(i); err != nil && first == nil {
				first = err
			}
		}
		obs.workerDone(n)
		return first
	}

	errs := make([]error, n)
	counts := make([]int, workers) // cells executed per worker goroutine
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				if i < n {
					// Observed under the queue mutex: depth is a pure
					// function of the pop index, so the multiset of
					// observations is worker-count independent.
					obs.pickup(n - 1 - i)
				}
				mu.Unlock()
				if i >= n {
					return
				}
				counts[w]++
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, c := range counts {
		obs.workerDone(c)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapObserved is Map with pool instrumentation; obs may be nil.
func MapObserved[T any](workers, n int, obs *Observer, cell func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunObserved(workers, n, obs, func(i int) error {
		v, err := cell(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
