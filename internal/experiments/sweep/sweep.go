// Package sweep is the deterministic parallel execution layer under the
// experiment pipeline. A sweep enumerates independent simulation cells —
// one (placement, op) benchmark, one collective row, one PEVPM
// Monte-Carlo replication — as indexed tasks, executes them across a
// fixed-size worker pool, and surfaces results in canonical cell order.
//
// Determinism is structural, not scheduled: every cell builds its own
// simulation engine seeded from (root seed, cell key) via sim.SubSeed,
// writes only to its own result slot, and the merge happens in index
// order on the caller's goroutine. The outcome is therefore bit-identical
// for any worker count, including 1 — the serial escape hatch CI diffs
// against.
package sweep

import (
	"runtime"
)

// Workers resolves a requested worker count: n > 0 is taken as-is,
// anything else (the "default" zero value) becomes GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes cells 0..n-1 on up to workers goroutines and waits for
// all of them. Every cell runs exactly once regardless of other cells'
// failures; the returned error is the lowest-indexed cell's error, so
// the reported failure does not depend on scheduling. workers <= 1 (or
// n <= 1) degenerates to an in-order loop on the calling goroutine.
func Run(workers, n int, cell func(i int) error) error {
	return RunObserved(workers, n, nil, cell)
}

// Map executes cells 0..n-1 across the pool and returns their results in
// index order. Like Run, the first (lowest-index) error wins and the
// result slice is only valid when the error is nil.
func Map[T any](workers, n int, cell func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(i int) error {
		v, err := cell(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
