package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/experiments/sweep"
	"repro/internal/metrics"
	"repro/internal/mpibench"
	"repro/internal/sim"
)

// The paper measures MPI_Isend in detail and notes that "detailed
// results from MPIBench for other MPI operations are presented in
// Grove's thesis". CollectiveTable is that companion measurement: the
// scaling of the main collective operations with machine size, measured
// the same way (individual per-rank completion times on the global
// clock).

// CollectiveRow is one (operation, configuration) measurement.
type CollectiveRow struct {
	Op        mpibench.Op `json:"op"`
	Placement string      `json:"placement"`
	Procs     int         `json:"procs"`
	Size      int         `json:"size"`
	MinUs     float64     `json:"min_us"`
	MeanUs    float64     `json:"mean_us"`
	P99Us     float64     `json:"p99_us"`
}

// CollectiveOps are the operations the table covers.
var CollectiveOps = []mpibench.Op{
	mpibench.OpBarrier,
	mpibench.OpBcast,
	mpibench.OpReduce,
	mpibench.OpAllreduce,
	mpibench.OpAllgather,
	mpibench.OpAlltoall,
}

// CollectiveTable measures every collective across the node sweep at one
// payload size (Barrier ignores the size). Every (op, node count) row is
// an independent sweep cell — its own cluster, engine and RNG substream
// keyed by the row — executed across Params.Workers goroutines and
// returned in canonical (op-major, node-minor) order.
func CollectiveTable(cfg cluster.Config, p Params, size int) ([]CollectiveRow, error) {
	nodes := p.nodeSweep()
	type cell struct {
		op mpibench.Op
		n  int
	}
	var cells []cell
	for _, op := range CollectiveOps {
		for _, n := range nodes {
			cells = append(cells, cell{op, n})
		}
	}
	var obs *sweep.Observer
	if p.Metrics != nil {
		obs = sweep.NewObserver()
	}
	// Each cell writes only its own snapshot slot; the fold below walks
	// them in cell order on this goroutine.
	snaps := make([]metrics.Snapshot, len(cells))
	rows, err := sweep.MapObserved(p.workers(), len(cells), obs, func(i int) (CollectiveRow, error) {
		op, n := cells[i].op, cells[i].n
		pl, err := cluster.NewBlockPlacement(&cfg, n, 1)
		if err != nil {
			return CollectiveRow{}, err
		}
		res, err := mpibench.Run(cfg, mpibench.Spec{
			Op:          op,
			Sizes:       []int{size},
			Placement:   pl,
			Repetitions: p.Repetitions,
			WarmUp:      p.WarmUp,
			SyncProbes:  p.SyncProbes,
			Seed:        sim.SubSeed(p.Seed, fmt.Sprintf("collective:%s:%d", op, n)),
		})
		if err != nil {
			return CollectiveRow{}, fmt.Errorf("experiments: %s on %v: %w", op, pl, err)
		}
		snaps[i] = res.Metrics
		pt := res.Points[0]
		return CollectiveRow{
			Op:        op,
			Placement: pl.String(),
			Procs:     pl.NumProcs(),
			Size:      pt.Size,
			MinUs:     pt.Min() * 1e6,
			MeanUs:    pt.Avg() * 1e6,
			P99Us:     pt.Hist.Quantile(0.99) * 1e6,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if p.Metrics != nil {
		for _, s := range snaps {
			p.Metrics.Merge(s)
		}
		p.Metrics.Merge(obs.Snapshot())
	}
	return rows, nil
}
