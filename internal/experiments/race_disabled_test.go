//go:build !race

package experiments

// raceEnabled reports whether the race detector instruments this build.
// Wall-clock assertions (the paper's "PEVPM evaluates far faster than
// the program it models" claim) only hold without the ~10x slowdown the
// detector adds.
const raceEnabled = false
