package experiments

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
)

// small trims Params so shape tests run in seconds.
func small() Params {
	p := Quick()
	p.Repetitions = 60
	p.Iterations = 40
	p.EvalRuns = 4
	return p
}

func curveByLabel(t *testing.T, curves []Curve, label string) Curve {
	t.Helper()
	for _, c := range curves {
		if c.Label == label {
			return c
		}
	}
	t.Fatalf("no curve %q", label)
	return Curve{}
}

func at(t *testing.T, c Curve, size int) float64 {
	t.Helper()
	for i, s := range c.Sizes {
		if s == size {
			return c.Micros[i]
		}
	}
	t.Fatalf("curve %q has no size %d", c.Label, size)
	return 0
}

// TestFigure1Claims checks the §3 statements about small messages:
// averages rise with the number of communicating processes (the paper
// quotes 70% for 1 KB at 64×1 vs 2×1), the min curve bounds everything
// below, and more processes per node means more contention.
func TestFigure1Claims(t *testing.T) {
	p := small()
	curves, err := Figure1(cluster.Perseus(), p)
	if err != nil {
		t.Fatal(err)
	}
	c2x1 := curveByLabel(t, curves, "2x1")
	c64x1 := curveByLabel(t, curves, "64x1")
	c64x2 := curveByLabel(t, curves, "64x2")
	min := curveByLabel(t, curves, "min")

	ratio := at(t, c64x1, 1024) / at(t, c2x1, 1024)
	if ratio < 1.4 || ratio > 2.2 {
		t.Errorf("64x1/2x1 at 1KB = %.2f, paper reports ~1.7", ratio)
	}
	if at(t, c64x2, 1024) <= at(t, c64x1, 1024) {
		t.Error("two processes per node should add NIC contention at 64 nodes")
	}
	// Ordering by contention at 1 KB.
	prev := 0.0
	for _, label := range []string{"2x1", "8x1", "32x1", "64x1"} {
		v := at(t, curveByLabel(t, curves, label), 1024)
		if v < prev*0.95 { // allow small non-monotonic noise
			t.Errorf("contention ordering broken at %s: %.1f after %.1f", label, v, prev)
		}
		prev = v
	}
	// The min curve bounds every average from below at every size.
	for _, c := range curves {
		if c.Label == "min" {
			continue
		}
		for i, s := range c.Sizes {
			if c.Micros[i] < min.Micros[i]*0.999 {
				t.Errorf("%s at %dB: average %.1fµs below min %.1fµs", c.Label, s, c.Micros[i], min.Micros[i])
			}
		}
	}
	// The 2x1 average hugs the min curve ("extremely small timing
	// variations that occur when network congestion is eliminated").
	if r := at(t, c2x1, 1024) / at(t, min, 1024); r > 1.15 {
		t.Errorf("2x1 average is %.2fx the min; should be close", r)
	}
}

// TestFigure2Claims checks the large-message statements: T = l + b/W
// fits the uncontended curve, ~81 Mbit/s at 16 KB between two processes,
// and 64×1 saturates at and beyond 16 KB while 8×1 does not.
func TestFigure2Claims(t *testing.T) {
	p := small()
	curves, err := Figure2(cluster.Perseus(), p)
	if err != nil {
		t.Fatal(err)
	}
	c2x1 := curveByLabel(t, curves, "2x1")
	c8x1 := curveByLabel(t, curves, "8x1")
	c64x1 := curveByLabel(t, curves, "64x1")

	// Goodput between two processes at 16 KB (paper: 81 Mbit/s).
	goodput := 16384 * 8 / (at(t, c2x1, 16384) / 1e6) / 1e6
	if goodput < 70 || goodput > 90 {
		t.Errorf("2x1 goodput at 16KB = %.1f Mbit/s, paper reports 81", goodput)
	}

	// Saturation: the 64×1 curve departs dramatically from 8×1 at 16 KB+.
	for _, size := range []int{16384, 32768} {
		r := at(t, c64x1, size) / at(t, c8x1, size)
		if r < 3 {
			t.Errorf("64x1/8x1 at %d = %.1f; saturation missing", size, r)
		}
	}
	// No such cliff below the onset.
	if r := at(t, c64x1, 4096) / at(t, c8x1, 4096); r > 3 {
		t.Errorf("64x1 already saturated at 4KB (ratio %.1f), onset should be ~16KB", r)
	}

	// T = l + b/W linearity for the uncontended pair above the knee.
	d1 := at(t, c2x1, 65536) - at(t, c2x1, 32768)
	d2 := at(t, c2x1, 131072) - at(t, c2x1, 65536)
	if math.Abs(d2-2*d1)/d2 > 0.15 {
		t.Errorf("2x1 curve not linear above knee: deltas %.1f, %.1f", d1, d2)
	}
}

// TestFigure3Claims checks the PDF shape statements for small messages
// under high contention: a bounded minimum with a smooth rise, the peak
// near the average, and a quickly-decaying tail.
func TestFigure3Claims(t *testing.T) {
	p := small()
	pdfs, err := Figure3(cluster.Perseus(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pdfs) != 4 {
		t.Fatalf("%d pdfs", len(pdfs))
	}
	for _, pdf := range pdfs {
		if pdf.Min <= 0 {
			t.Errorf("%s: min %.6f not positive", pdf.Label, pdf.Min)
		}
		if len(pdf.Bins) < 3 {
			t.Errorf("%s: distribution has only %d bins (no dispersion)", pdf.Label, len(pdf.Bins))
		}
		// Tail decays quickly: the max is within a few times the mean
		// (no RTO outliers for small messages in this regime).
		if pdf.Max > pdf.Mean*20 {
			t.Errorf("%s: max %.2gms vs mean %.2gms — unexpected outliers", pdf.Label, pdf.Max*1e3, pdf.Mean*1e3)
		}
	}
}

// TestFigure4Claims checks the saturation PDFs: long tails, with
// retransmission-timeout outliers far beyond the mean.
func TestFigure4Claims(t *testing.T) {
	p := small()
	pdfs, err := Figure4(cluster.Perseus(), p)
	if err != nil {
		t.Fatal(err)
	}
	sawRTOTail := false
	for _, pdf := range pdfs {
		if pdf.Max > 0.1 { // a 200 ms-class retransmission outlier
			sawRTOTail = true
		}
	}
	if !sawRTOTail {
		t.Error("no retransmission-timeout outliers in any saturated distribution")
	}
}

// TestFigure6Claims is the paper's headline: distribution-based PEVPM
// predictions track measured speedups closely at every machine size,
// while ping-pong-based predictions always overestimate and the error
// grows with the processor count.
func TestFigure6Claims(t *testing.T) {
	p := small()
	p.MaxNodes = 32 // keep the test quick; the bench runs the full sweep
	start := time.Now()
	res, err := Figure6(cluster.Perseus(), p, func() float64 { return time.Since(start).Seconds() })
	if err != nil {
		t.Fatal(err)
	}
	measured, _ := res.SeriesByLabel("measured")
	dist, _ := res.SeriesByLabel("pevpm distributions")
	avg21, _ := res.SeriesByLabel("pevpm avg 2x1")
	min21, _ := res.SeriesByLabel("pevpm min 2x1")
	avgNP, _ := res.SeriesByLabel("pevpm avg nxp")

	if len(measured.Procs) == 0 || len(measured.Procs) != len(dist.Procs) {
		t.Fatal("series misaligned")
	}
	var worstDist float64
	for i := range measured.Procs {
		m, d := measured.Speedups[i], dist.Speedups[i]
		rel := math.Abs(d-m) / m
		if rel > worstDist {
			worstDist = rel
		}
		t.Logf("%-6s measured %6.2f dist %6.2f (%.2f%%) avg2x1 %6.2f min2x1 %6.2f avgnxp %6.2f",
			measured.Configs[i], m, d, rel*100,
			avg21.Speedups[i], min21.Speedups[i], avgNP.Speedups[i])
	}
	// The paper reports 5% worst / 1% typical at full sampling density;
	// at this reduced density (400 iterations, 60 reps) the worst case
	// runs to ~10%, dominated by Monte-Carlo noise and by MPIBench's
	// distant-pair load pattern overstating backplane contention
	// relative to Jacobi's neighbour-local traffic (see EXPERIMENTS.md).
	if worstDist > 0.10 {
		t.Errorf("distribution-mode prediction error %.1f%% exceeds 10%%", worstDist*100)
	}

	// Ping-pong (2×1) based predictions must overestimate the speedup of
	// the large configurations.
	last := len(measured.Procs) - 1
	if min21.Speedups[last] <= measured.Speedups[last] {
		t.Error("min 2x1 prediction should overestimate speedup at the largest size")
	}
	if avg21.Speedups[last] <= measured.Speedups[last] {
		t.Error("avg 2x1 prediction should overestimate speedup at the largest size")
	}

	// Their error grows with processor count.
	first := 0
	errAt := func(s SpeedupSeries, i int) float64 {
		return math.Abs(s.Speedups[i]-measured.Speedups[i]) / measured.Speedups[i]
	}
	if errAt(min21, last) <= errAt(min21, first) {
		t.Error("min 2x1 error should grow with processors")
	}

	// avg n×p sits between the distribution mode and the 2×1 modes at
	// the largest configuration ("results of intermediate quality").
	if !(errAt(avgNP, last) >= errAt(dist, last)*0.5) {
		t.Logf("note: avg nxp error %.2f%% vs dist %.2f%%", errAt(avgNP, last)*100, errAt(dist, last)*100)
	}

	// Evaluation cost: the virtual machine is far faster than the
	// executions it predicts (the paper reports 67.5×).
	if res.EvalSeconds <= 0 {
		t.Fatal("no evaluation cost recorded")
	}
	if ratio := res.ProcessorSeconds / res.EvalSeconds; ratio < 10 {
		if raceEnabled {
			// Race instrumentation slows evaluation ~10x; the speed claim
			// is informational under -race rather than a failure.
			t.Logf("PEVPM %.1fx faster than the modelled processor time (race build)", ratio)
		} else {
			t.Errorf("PEVPM only %.1fx faster than the modelled processor time", ratio)
		}
	}
}

// TestFigure6ErrorBars checks the interval plumbing: the replicated
// series carry non-degenerate 95% bars that bracket their own points,
// the deterministic point-value modes carry degenerate ones, and the
// measured point estimate comes from replication 0 alone (so bars are
// an addition, never a perturbation, to the recorded figure).
func TestFigure6ErrorBars(t *testing.T) {
	p := small()
	p.MaxNodes = 8
	res, err := Figure6(cluster.Perseus(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Los) != len(s.Speedups) || len(s.His) != len(s.Speedups) {
			t.Fatalf("%s: bounds misaligned with speedups", s.Label)
		}
		for i := range s.Speedups {
			if s.Los[i] > s.Speedups[i] || s.His[i] < s.Speedups[i] {
				t.Errorf("%s[%s]: bar [%v, %v] excludes point %v",
					s.Label, s.Configs[i], s.Los[i], s.His[i], s.Speedups[i])
			}
		}
	}
	measured, _ := res.SeriesByLabel("measured")
	dist, _ := res.SeriesByLabel("pevpm distributions")
	if !measured.HasErrorBars() {
		t.Error("measured series has no error bars despite MeasuredReps > 1")
	}
	if !dist.HasErrorBars() {
		t.Error("distribution mode has no error bars despite EvalRuns > 1")
	}
	for _, label := range []string{"pevpm avg nxp", "pevpm avg 2x1", "pevpm min 2x1"} {
		s, _ := res.SeriesByLabel(label)
		if s.HasErrorBars() {
			t.Errorf("deterministic mode %s grew error bars", label)
		}
	}

	// Replication off: points must match the replicated run's points
	// exactly — replication only adds information.
	p.MeasuredReps = 1
	single, err := Figure6(cluster.Perseus(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := single.SeriesByLabel("measured")
	for i := range measured.Speedups {
		if m1.Speedups[i] != measured.Speedups[i] {
			t.Errorf("%s: replication moved the measured point %v -> %v",
				measured.Configs[i], m1.Speedups[i], measured.Speedups[i])
		}
		if m1.Los[i] != m1.Speedups[i] || m1.His[i] != m1.Speedups[i] {
			t.Errorf("%s: unreplicated run has non-degenerate bar", m1.Configs[i])
		}
	}
}
