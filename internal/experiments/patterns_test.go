package experiments

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpibench"
)

// Satellite: the sharded Dense (p=32, g=4, k=2) run must be
// byte-identical at 1 vs 4 shards, healthy and under the
// congested-backplane scenario.
func TestPatternRunShardDeterminism(t *testing.T) {
	base := PatternRunSpec{
		Topo:    "fattree:2048x32x8",
		Pattern: mpibench.PatternDense,
		P:       32, G: 4, K: 2,
		Direction: mpibench.Omnidirectional,
		Rounds:    2,
		Window:    2,
		Size:      8192,
		Seed:      9,
	}
	topo, nodes, err := cluster.ParseTopology(base.Topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, scenario := range []string{"", "congested-backplane"} {
		spec := base
		if scenario != "" {
			sched, err := cluster.Scenario(scenario, 13, cluster.ScenarioEnv{
				Nodes: nodes, Segments: topo.NumSegments(), Span: 1.0,
			})
			if err != nil {
				t.Fatal(err)
			}
			spec.Faults = sched
		}
		var reports []*LargeRunReport
		for _, shards := range []int{1, 4} {
			spec.Workers = shards
			rep, err := PatternRun(spec)
			if err != nil {
				t.Fatalf("scenario %q shards %d: %v", scenario, shards, err)
			}
			reports = append(reports, rep)
		}
		a, b := reports[0], reports[1]
		if a.Transcript != b.Transcript {
			t.Errorf("scenario %q: transcripts differ between 1 and 4 shards", scenario)
		}
		if a.Makespan != b.Makespan || a.Windows != b.Windows || a.Counters != b.Counters {
			t.Errorf("scenario %q: makespan/windows/counters differ: %v/%d/%+v vs %v/%d/%+v",
				scenario, a.Makespan, a.Windows, a.Counters, b.Makespan, b.Windows, b.Counters)
		}
		if a.Manifest != b.Manifest {
			t.Errorf("scenario %q: manifests differ", scenario)
		}
	}
}

func TestPatternRunValidation(t *testing.T) {
	spec := PatternRunSpec{
		Topo:    "fattree:64x8x4",
		Pattern: mpibench.PatternDense,
		P:       32, G: 4, K: 2, // 128 ranks on a 64-node machine
		Direction: mpibench.Unidirectional,
		Rounds:    1, Window: 1, Size: 4096, Seed: 1,
	}
	if _, err := PatternRun(spec); err == nil {
		t.Error("oversized pattern should fail")
	}
	spec.P = 8
	spec.Size = 0
	if _, err := PatternRun(spec); err == nil {
		t.Error("zero size should fail")
	}
}

// Acceptance: Rail, Fan and Dense over a fat tree and a dragonfly, with
// the PEVPM-predicted makespan interval overlapping the simulated one
// on every cell. Reduced round counts keep the test quick; the shipped
// defaults run through cmd/run -app patternstudy and ci.sh.
func TestPatternStudyPredictionsAgree(t *testing.T) {
	rows, err := PatternStudy(PatternStudyParams{
		CalRounds: 16,
		ValRounds: 30,
		Reps:      30,
		Seed:      42,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	topos := map[string]bool{}
	for _, row := range rows {
		topos[row.Topo] = true
		if row.Predicted.Hi <= 0 || row.Simulated.Hi <= 0 {
			t.Errorf("%s/%s: degenerate intervals %+v %+v", row.Topo, row.Pattern, row.Predicted, row.Simulated)
		}
		if !row.Agree {
			t.Errorf("%s/%s: predicted %v does not overlap simulated %v",
				row.Topo, row.Pattern, row.Predicted, row.Simulated)
		}
		if row.Bandwidth <= 0 {
			t.Errorf("%s/%s: bandwidth %v", row.Topo, row.Pattern, row.Bandwidth)
		}
	}
	if len(topos) != 2 {
		t.Errorf("study should span both topologies, got %v", topos)
	}
}

// The study itself is a sweep: worker count must not move a byte.
func TestPatternStudyWorkerDeterminism(t *testing.T) {
	params := PatternStudyParams{
		Cells: []PatternStudyCell{
			{Topo: "fattree:256x32x8", Pattern: mpibench.PatternDense,
				P: 32, G: 4, K: 2, Window: 2, Size: 16384,
				Direction: mpibench.Unidirectional},
			{Topo: "dragonfly:8x4x8", Pattern: mpibench.PatternRail,
				P: 32, G: 4, K: 2, Window: 2, Size: 16384,
				Direction: mpibench.Unidirectional},
		},
		CalRounds: 8, ValRounds: 10, Reps: 10, Seed: 5,
	}
	params.Workers = 1
	serial, err := PatternStudy(params)
	if err != nil {
		t.Fatal(err)
	}
	params.Workers = 8
	parallel, err := PatternStudy(params)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}
