package experiments

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cluster"
)

// equalityParams is deliberately denser than the bare minimum so the
// sweep has enough cells to shuffle across workers, but trimmed so the
// whole serial+parallel double run stays quick.
func equalityParams(workers int) Params {
	p := small()
	p.MaxNodes = 16
	p.Workers = workers
	return p
}

// TestSerialParallelEquality is the tentpole guarantee: every figure is
// bit-identical between the serial escape hatch (Workers=1) and a
// many-worker run, because each cell owns its engine and RNG substream
// and results merge in canonical cell order.
func TestSerialParallelEquality(t *testing.T) {
	cfg := cluster.Perseus()

	type variant struct {
		name string
		run  func(p Params) (any, error)
	}
	variants := []variant{
		{"Figure1", func(p Params) (any, error) { return Figure1(cfg, p) }},
		{"Figure2", func(p Params) (any, error) { return Figure2(cfg, p) }},
		{"Figure3", func(p Params) (any, error) { return Figure3(cfg, p) }},
		{"Figure4", func(p Params) (any, error) { return Figure4(cfg, p) }},
		{"Figure6", func(p Params) (any, error) { return Figure6(cfg, p, nil) }},
		{"CollectiveTable", func(p Params) (any, error) { return CollectiveTable(cfg, p, 1024) }},
	}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			serial, err := v.run(equalityParams(1))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			parallel, err := v.run(equalityParams(8))
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("Workers=1 and Workers=8 results differ\nserial:   %+v\nparallel: %+v",
					serial, parallel)
			}
		})
	}
}

// TestParallelSweepSpeedup measures the wall-clock win from the worker
// pool on a uniform sweep (the collective table, whose cells are
// well-balanced). The ≥2x assertion only arms on a machine with enough
// cores and without the race detector's serialization; elsewhere the
// measured ratio is logged so CI output still shows it.
func TestParallelSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := cluster.Perseus()
	p := small()
	p.MaxNodes = 32

	timeRun := func(workers int) time.Duration {
		p := p
		p.Workers = workers
		start := time.Now()
		if _, err := CollectiveTable(cfg, p, 1024); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	serial := timeRun(1)
	parallel := timeRun(0) // GOMAXPROCS workers
	ratio := serial.Seconds() / parallel.Seconds()
	t.Logf("serial %v, parallel %v (%d procs): %.2fx", serial, parallel,
		runtime.GOMAXPROCS(0), ratio)

	if runtime.GOMAXPROCS(0) >= 4 && !raceEnabled {
		if ratio < 2 {
			t.Errorf("parallel sweep only %.2fx faster than serial, want >=2x on %d procs",
				ratio, runtime.GOMAXPROCS(0))
		}
	}
}
