package experiments

import (
	"encoding/json"
	"testing"

	"repro/internal/cluster"
)

// perturbedParams keeps the perturbed sweep fast enough for unit tests
// while still running every scenario end to end.
func perturbedParams(workers int) Params {
	p := Quick()
	p.Repetitions = 20
	p.WarmUp = 4
	p.SyncProbes = 8
	p.EvalRuns = 2
	p.Iterations = 60
	p.Workers = workers
	return p
}

func TestPerturbedSweepCoversEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario sweep is slow")
	}
	cfg := cluster.Perseus()
	res, err := PerturbedSweep(cfg, perturbedParams(0))
	if err != nil {
		t.Fatal(err)
	}
	names := cluster.ScenarioNames()
	if len(res.Scenarios) != len(names) {
		t.Fatalf("report covers %d scenarios, want %d", len(res.Scenarios), len(names))
	}
	if res.HealthyMeasured <= 0 || res.HealthyPredicted <= 0 {
		t.Fatalf("healthy baseline empty: %+v", res)
	}
	sawFaultDrops := false
	for i, sc := range res.Scenarios {
		if sc.Scenario != names[i] {
			t.Errorf("scenario %d = %q, want %q (canonical order)", i, sc.Scenario, names[i])
		}
		if len(sc.Rules) == 0 {
			t.Errorf("%s: no rules in report", sc.Scenario)
		}
		if len(sc.Bench) != 3 {
			t.Errorf("%s: %d bench rows, want 3", sc.Scenario, len(sc.Bench))
		}
		for _, row := range sc.Bench {
			if row.HealthyMeanUs <= 0 || row.FaultMeanUs <= 0 {
				t.Errorf("%s %s %dB: empty distribution %+v", sc.Scenario, row.Op, row.Size, row)
			}
			if row.FaultDrops > 0 {
				sawFaultDrops = true
			}
		}
		if sc.MeasuredMakespan <= 0 || sc.PredictedMakespan <= 0 {
			t.Errorf("%s: makespans %+v", sc.Scenario, sc)
		}
	}
	if !sawFaultDrops {
		t.Error("no scenario produced fault-attributed drops — injection not reaching the benches")
	}
}

// TestPerturbedSweepDeterministicAcrossWorkers is the acceptance bar:
// the same seed must produce a byte-identical report serially and under
// a worker pool.
func TestPerturbedSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	cfg := cluster.Perseus()
	encode := func(workers int) []byte {
		res, err := PerturbedSweep(cfg, perturbedParams(workers))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := encode(1)
	parallel := encode(4)
	if string(serial) != string(parallel) {
		t.Fatalf("perturbed sweep differs between workers=1 and workers=4:\n%s\nvs\n%s", serial, parallel)
	}
}
