package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// metricsParams is equalityParams with a metrics aggregate attached.
func metricsParams(workers int) (Params, *metrics.Aggregate) {
	p := equalityParams(workers)
	agg := metrics.NewAggregate()
	p.Metrics = agg
	return p, agg
}

// TestMetricsDeterministicAcrossWorkers is the observability tentpole
// guarantee: the folded instrument snapshot of every experiment is
// byte-identical between the serial escape hatch and a many-worker run.
// Equality is checked on the serialized JSON, the same bytes `make
// determinism` diffs for cmd/repro -metrics.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	cfg := cluster.Perseus()

	type variant struct {
		name string
		run  func(p Params) (any, error)
	}
	variants := []variant{
		{"Figure1", func(p Params) (any, error) { return Figure1(cfg, p) }},
		{"Figure2", func(p Params) (any, error) { return Figure2(cfg, p) }},
		{"Figure3", func(p Params) (any, error) { return Figure3(cfg, p) }},
		{"Figure4", func(p Params) (any, error) { return Figure4(cfg, p) }},
		{"Figure6", func(p Params) (any, error) { return Figure6(cfg, p, nil) }},
		{"CollectiveTable", func(p Params) (any, error) { return CollectiveTable(cfg, p, 1024) }},
		{"PerturbedSweep", func(p Params) (any, error) { return PerturbedSweep(cfg, p) }},
	}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			var want []byte
			for _, workers := range []int{1, 8} {
				p, agg := metricsParams(workers)
				if _, err := v.run(p); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				snap := agg.Snapshot()
				if len(snap.Counters) == 0 {
					t.Fatalf("workers=%d: aggregate collected no counters", workers)
				}
				var buf bytes.Buffer
				if err := snap.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = buf.Bytes()
				} else if !bytes.Equal(want, buf.Bytes()) {
					t.Errorf("workers=%d: metrics JSON differs from serial baseline", workers)
				}
			}
		})
	}
}

// TestMetricsCollectionIsPassive checks that attaching an aggregate
// changes nothing about the figure itself: instruments never consume
// RNG draws or schedule events, so the observed and unobserved runs
// are the same simulation.
func TestMetricsCollectionIsPassive(t *testing.T) {
	cfg := cluster.Perseus()
	bare, err := Figure1(cfg, equalityParams(0))
	if err != nil {
		t.Fatal(err)
	}
	p, agg := metricsParams(0)
	observed, err := Figure1(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Error("attaching Params.Metrics changed Figure1's output")
	}
	if v, ok := agg.Snapshot().Counter("sweep", "sweeps_total"); !ok || v == 0 {
		t.Errorf("sweeps_total = %d (ok=%v), want > 0", v, ok)
	}
}

// TestMetricsCoverAllLayers checks the merged snapshot really spans the
// whole stack: one Figure6 run must surface kernel, network, MPI,
// PEVPM and pool instruments in a single aggregate.
func TestMetricsCoverAllLayers(t *testing.T) {
	cfg := cluster.Perseus()
	p, agg := metricsParams(0)
	if _, err := Figure6(cfg, p, nil); err != nil {
		t.Fatal(err)
	}
	snap := agg.Snapshot()
	for _, probe := range []struct{ pkg, name string }{
		{"sim", "events_scheduled_total"},
		{"net", "transfers_total"},
		{"mpi", "sends_eager_total"},
		{"pevpm", "replications_total"},
		{"sweep", "cells_total"},
	} {
		v, ok := snap.Counter(probe.pkg, probe.name)
		if !ok || v == 0 {
			t.Errorf("%s/%s = %d (ok=%v), want > 0", probe.pkg, probe.name, v, ok)
		}
	}
}
