package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// serializeLargeRun flattens everything a report promises to keep
// byte-identical across worker counts.
func serializeLargeRun(t *testing.T, rep *LargeRunReport) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(rep.Transcript)
	fmt.Fprintf(&b, "makespan=%v windows=%d counters=%+v\n", rep.Makespan, rep.Windows, rep.Counters)
	man, err := json.Marshal(rep.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(man)
	b.WriteByte('\n')
	if err := rep.Metrics.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func largeRunAt(t *testing.T, spec LargeRunSpec, workers int) string {
	t.Helper()
	spec.Workers = workers
	rep, err := LargeRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	return serializeLargeRun(t, rep)
}

func TestLargeRunByteIdenticalAcrossWorkers(t *testing.T) {
	// The run-level determinism gate: transcript, manifest, counters
	// and merged metrics of a sharded run must not change a byte
	// between worker counts 1, 2 and 4 — healthy and degraded.
	degraded := &faults.Schedule{Name: "test-degraded", Rules: []faults.Rule{
		{Kind: faults.DropBoost, Target: 3, Severity: 1, Start: 0, End: sim.TimeFromSeconds(0.01)},
		{Kind: faults.BackplaneDegrade, Target: 0, Severity: 0.3, Start: 0, End: sim.TimeFromSeconds(0.05)},
	}}
	for _, tc := range []struct {
		name string
		spec LargeRunSpec
	}{
		{"fattree", LargeRunSpec{Topo: "fattree:64x16x4", Rounds: 2, Window: 2, Size: 4096, Seed: 9}},
		{"fattree-faults", LargeRunSpec{Topo: "fattree:64x16x4", Rounds: 2, Window: 2, Size: 4096, Seed: 9, Faults: degraded}},
		{"dragonfly-2rail", LargeRunSpec{Topo: "dragonfly:4x2x4+2rail", Rounds: 2, Window: 1, Size: 2048, Seed: 9}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := largeRunAt(t, tc.spec, 1)
			if !strings.Contains(serial, "leaf0 data=") {
				t.Fatalf("transcript has no per-leaf lines:\n%s", serial)
			}
			for _, workers := range []int{2, 4} {
				if got := largeRunAt(t, tc.spec, workers); got != serial {
					t.Errorf("workers=%d output differs from serial\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, serial, workers, got)
				}
			}
			if other := largeRunAt(t, withSeed(tc.spec, 10), 1); other == serial {
				t.Error("different seeds produced identical reports")
			}
		})
	}
}

func withSeed(s LargeRunSpec, seed uint64) LargeRunSpec {
	s.Seed = seed
	return s
}

func TestLargeRunReportContents(t *testing.T) {
	spec := LargeRunSpec{Topo: "fattree:64x16x4", Rounds: 2, Window: 2, Size: 4096, Seed: 1}
	rep, err := LargeRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Manifest
	if m.Pattern != "windowed-ring" || m.Topology != "fattree-64x16x4" || m.Nodes != 64 || m.LPs != 5 {
		t.Errorf("manifest = %+v", m)
	}
	if m.ClusterHash == "" || m.GoVersion == "" {
		t.Error("manifest missing hash or toolchain")
	}
	// Every rank sends Rounds*Window data messages and Rounds acks.
	wantData := uint64(64 * 2 * 2)
	wantAcks := uint64(64 * 2)
	if rep.Counters.Transfers != wantData+wantAcks {
		t.Errorf("Transfers = %d, want %d", rep.Counters.Transfers, wantData+wantAcks)
	}
	if rep.Counters.CrossSwitch == 0 {
		t.Error("ring across 4 leaves crossed no leaf boundary")
	}
	if rep.Windows == 0 || rep.Makespan == 0 {
		t.Errorf("degenerate run: windows=%d makespan=%v", rep.Windows, rep.Makespan)
	}
	if v, ok := rep.Metrics.Counter("net", "transfers_total"); !ok || v != wantData+wantAcks {
		t.Errorf("merged transfers_total = %d (ok=%v), want %d", v, ok, wantData+wantAcks)
	}
	// The manifest must not record the worker count anywhere: it is not
	// part of the experiment's identity.
	if strings.Contains(strings.ToLower(mustJSON(t, m)), "worker") {
		t.Error("manifest leaks the worker count")
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestLargeRunValidation(t *testing.T) {
	base := LargeRunSpec{Topo: "fattree:64x16x4", Rounds: 1, Window: 1, Size: 4096, Seed: 1}
	bad := []LargeRunSpec{
		{Topo: "nonsense", Rounds: 1, Window: 1, Size: 4096},
		func(s LargeRunSpec) LargeRunSpec { s.Rounds = 0; return s }(base),
		func(s LargeRunSpec) LargeRunSpec { s.Window = 0; return s }(base),
		func(s LargeRunSpec) LargeRunSpec { s.Size = 0; return s }(base),
		func(s LargeRunSpec) LargeRunSpec { s.Size = 64; return s }(base), // CtrlBytes collision
		func(s LargeRunSpec) LargeRunSpec {
			s.Faults = &faults.Schedule{Rules: []faults.Rule{
				{Kind: faults.BackplaneDegrade, Target: 9999, Severity: 0.5, Start: 0, End: sim.TimeFromSeconds(1)},
			}}
			return s
		}(base),
	}
	for i, spec := range bad {
		if _, err := LargeRun(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
	if _, err := LargeRun(base); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
