package experiments

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpibench"
)

// TestFastNetworkContentionMinor checks the paper's framing claim: the
// tools are "particularly useful on clusters with commodity Ethernet
// networks" because that is where contention and its variability bite.
// On a Myrinet-class network the same 64×1 1 KB experiment shows only a
// small contention penalty, versus ~1.7× on the simulated Fast Ethernet.
func TestFastNetworkContentionMinor(t *testing.T) {
	run := func(cfg cluster.Config, n int) float64 {
		t.Helper()
		pl, err := cluster.NewBlockPlacement(&cfg, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Self-paced repetitions: on the fast network a barrier's own
		// exit skew exceeds the message time, so aligned repetitions
		// would measure the barrier, not the network.
		res, err := mpibench.Run(cfg, mpibench.Spec{
			Op: mpibench.OpIsend, Sizes: []int{1024}, Placement: pl,
			Repetitions: 80, WarmUp: 10, SyncProbes: 20, Seed: 3,
			BarrierEvery: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		pt, _ := res.PointFor(1024)
		return pt.Avg()
	}

	myri := cluster.Myrinet()
	fast2 := run(myri, 2)
	fast64 := run(myri, 64)
	fastRatio := fast64 / fast2

	eth := cluster.Perseus()
	eth2 := run(eth, 2)
	eth64 := run(eth, 64)
	ethRatio := eth64 / eth2

	t.Logf("1KB 64x1/2x1 contention: myrinet %.2fx (2x1=%.1fµs), ethernet %.2fx (2x1=%.1fµs)",
		fastRatio, fast2*1e6, ethRatio, eth2*1e6)

	// The fast network is an order of magnitude quicker per message...
	if fast2 > eth2/3 {
		t.Errorf("myrinet 1KB time %.1fµs not clearly faster than ethernet %.1fµs", fast2*1e6, eth2*1e6)
	}
	// ...and nearly contention-free at this scale, while Ethernet's
	// times rise substantially.
	if fastRatio > 1.25 {
		t.Errorf("myrinet contention ratio %.2f; should be minor", fastRatio)
	}
	if ethRatio < 1.4 {
		t.Errorf("ethernet contention ratio %.2f; should be large", ethRatio)
	}
	if fastRatio > ethRatio*0.75 {
		t.Errorf("contention contrast too weak: myrinet %.2f vs ethernet %.2f", fastRatio, ethRatio)
	}
}

// TestFastNetworkNoRetransmissions: link-level flow control means no
// drops even under load that devastates the Ethernet configuration.
func TestFastNetworkNoRetransmissions(t *testing.T) {
	cfg := cluster.Myrinet()
	pl, err := cluster.NewBlockPlacement(&cfg, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpibench.Run(cfg, mpibench.Spec{
		Op: mpibench.OpIsend, Sizes: []int{65536}, Placement: pl,
		Repetitions: 60, WarmUp: 5, SyncProbes: 20, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := res.PointFor(65536)
	// Without RTOs the max cannot be orders of magnitude past the mean.
	if pt.Hist.Max() > pt.Avg()*10 {
		t.Errorf("flow-controlled network shows loss-like outliers: mean %.2fms max %.2fms",
			pt.Avg()*1e3, pt.Hist.Max()*1e3)
	}
}
