package experiments

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpibench"
)

func rowFor(t *testing.T, rows []CollectiveRow, op mpibench.Op, procs int) CollectiveRow {
	t.Helper()
	for _, r := range rows {
		if r.Op == op && r.Procs == procs {
			return r
		}
	}
	t.Fatalf("no row for %s at %d procs", op, procs)
	return CollectiveRow{}
}

func TestCollectiveTableScaling(t *testing.T) {
	p := small()
	p.MaxNodes = 16
	p.Repetitions = 40
	rows, err := CollectiveTable(cluster.Perseus(), p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(CollectiveOps)*4 { // nodes 2,4,8,16
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MinUs <= 0 || r.MeanUs < r.MinUs {
			t.Errorf("%s %s: implausible stats %+v", r.Op, r.Placement, r)
		}
	}

	// Every collective gets slower as machines grow.
	for _, op := range CollectiveOps {
		t2 := rowFor(t, rows, op, 2).MeanUs
		t16 := rowFor(t, rows, op, 16).MeanUs
		if t16 <= t2 {
			t.Errorf("%s: 16 procs (%v µs) not slower than 2 (%v µs)", op, t16, t2)
		}
	}

	// Binomial broadcast grows logarithmically: going 4→16 procs (2
	// extra tree levels) must cost far less than 4× the 4-proc time.
	b4 := rowFor(t, rows, mpibench.OpBcast, 4).MeanUs
	b16 := rowFor(t, rows, mpibench.OpBcast, 16).MeanUs
	if ratio := b16 / b4; ratio > 3.2 {
		t.Errorf("Bcast 4->16 procs ratio %.2f; binomial tree should be ~2", ratio)
	}

	// Alltoall moves P× the data of Bcast and must dominate it.
	if a := rowFor(t, rows, mpibench.OpAlltoall, 16); a.MeanUs <= b16 {
		t.Errorf("Alltoall (%v µs) not slower than Bcast (%v µs) at 16 procs", a.MeanUs, b16)
	}

	// Reduce's per-rank mean sits BELOW Bcast's: a reduce leaf finishes
	// after one send, while every bcast rank waits for its subtree of
	// the root's data. (This asymmetry is exactly why measuring each
	// rank, not just rank 0, matters — MPIBench's design point.)
	red := rowFor(t, rows, mpibench.OpReduce, 16).MeanUs
	if red >= b16 {
		t.Errorf("Reduce mean %v µs not below Bcast mean %v µs", red, b16)
	}

	// Allreduce (reduce + bcast in MPICH 1.2) costs more than either
	// phase alone but less than a few times their sum.
	all := rowFor(t, rows, mpibench.OpAllreduce, 16).MeanUs
	if all < b16 || all > (red+b16)*4 {
		t.Errorf("Allreduce %v µs vs Reduce %v + Bcast %v", all, red, b16)
	}
	_ = math.Abs
}
