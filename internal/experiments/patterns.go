package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/cluster"
	"repro/internal/experiments/sweep"
	"repro/internal/faults"
	"repro/internal/mpibench"
	"repro/internal/netsim"
	"repro/internal/pevpm"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file holds the two pattern experiments the group-to-group
// engine feeds:
//
//   - PatternRun: a CommBench-style pattern driven directly through the
//     sharded network (one LP per leaf), scaling to thousand-node
//     fabrics with the same shard-count determinism contract as
//     LargeRun.
//   - PatternStudy: the figure-style validation — calibrate a pattern
//     on a short run, feed the measured round distributions into
//     pevpm.PatternDB, predict the makespan of a longer run, then
//     actually simulate that run and check the confidence intervals
//     agree.

// PatternRunSpec configures one sharded pattern run: a Rail/Fan/Dense
// matrix over a hierarchical topology, each pair streaming windowed
// rounds with per-window acknowledgements (the LargeRun protocol, with
// the ring replaced by an arbitrary sparse matrix).
type PatternRunSpec struct {
	// Topo is a cluster.ParseTopology spec, e.g. "fattree:2048x32x8".
	Topo string
	// Pattern, P, G, K and Direction select the matrix
	// (mpibench.BuildPattern); ranks map one-to-one onto nodes.
	Pattern   string
	P, G, K   int
	Direction mpibench.Direction
	// Rounds is how many send windows every pair completes; Window is
	// the number of data messages per window.
	Rounds int
	Window int
	// Size is the data payload in bytes; acknowledgements use the
	// cluster's CtrlBytes, so the two must differ.
	Size int
	Seed uint64
	// Workers is the worker-thread count (0 = GOMAXPROCS); every field
	// of the report is byte-identical at any value.
	Workers int
	Faults  *faults.Schedule
}

// prPair is one matrix pair's live state. The sender-side fields
// (rounds) are only touched on the source's LP, the receiver-side
// fields (recv) only on the destination's LP — race-free by ownership,
// like LargeRun's per-rank state.
type prPair struct {
	src, dst int
	msgs     int // data messages per window (count × window)
	rounds   int // completed windows (sender side)
	recv     int // data messages of the current window seen (receiver side)
}

// PatternRun executes the spec over netsim.NewSharded and reports with
// the LargeRun report schema (the manifest's Pattern field carries the
// pattern key). The worker count never changes a byte of the report.
func PatternRun(spec PatternRunSpec) (*LargeRunReport, error) {
	topo, nodes, err := cluster.ParseTopology(spec.Topo)
	if err != nil {
		return nil, err
	}
	cfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		return nil, err
	}
	matrix, err := mpibench.BuildPattern(spec.Pattern, spec.P, spec.G, spec.K, spec.Direction)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s:p%dg%dk%d:w%d:%s", spec.Pattern, spec.P, spec.G, spec.K, spec.Window, spec.Direction)
	switch {
	case spec.P*spec.G > nodes:
		return nil, fmt.Errorf("patternrun: pattern %s needs %d nodes, topology %q has %d",
			key, spec.P*spec.G, spec.Topo, nodes)
	case spec.Rounds <= 0 || spec.Window <= 0:
		return nil, fmt.Errorf("patternrun: rounds and window must be positive, got %d and %d", spec.Rounds, spec.Window)
	case spec.Size <= 0:
		return nil, fmt.Errorf("patternrun: size must be positive, got %d", spec.Size)
	case spec.Size == cfg.CtrlBytes:
		return nil, fmt.Errorf("patternrun: size %d collides with the %d-byte acknowledgements", spec.Size, cfg.CtrlBytes)
	}
	if fs := matrix.Findings(nodes); len(fs) > 0 {
		return nil, fmt.Errorf("patternrun: matrix rejected: %s", fs[0])
	}
	if spec.Faults != nil {
		if err := spec.Faults.ValidateFor(cfg.Nodes, topo.NumSegments()); err != nil {
			return nil, err
		}
	}
	net, err := netsim.NewSharded(spec.Seed, cfg, spec.Workers)
	if err != nil {
		return nil, err
	}
	if spec.Faults != nil {
		net.SetFaults(spec.Faults)
	}

	pairs := make([]prPair, len(matrix.Pairs))
	index := make(map[[2]int]int, len(pairs)) // (src, dst) -> pair; lookups only
	for i, pr := range matrix.Pairs {
		pairs[i] = prPair{src: pr.Src, dst: pr.Dst, msgs: pr.Count * spec.Window}
		index[[2]int{pr.Src, pr.Dst}] = i
	}
	// state[r] carries the per-rank transcript counters, owned by r's
	// leaf LP exactly as in LargeRun.
	state := make([]lrNode, nodes)
	sendWindow := func(i int) {
		p := &pairs[i]
		for m := 0; m < p.msgs; m++ {
			net.Send(p.src, p.dst, spec.Size)
		}
	}
	net.SetDeliver(func(src, dst, payload int, st netsim.TransferStats) {
		s := &state[dst]
		s.last = st.Delivered
		s.bytes += uint64(payload)
		if payload == cfg.CtrlBytes { // ack for pair dst->src, delivered at the sender
			s.ackSeen++
			i := index[[2]int{dst, src}]
			p := &pairs[i]
			p.rounds++
			if p.rounds < spec.Rounds {
				sendWindow(i)
			}
			return
		}
		s.dataSeen++
		s.latency += st.Delivered.Sub(st.Sent)
		i := index[[2]int{src, dst}]
		p := &pairs[i]
		p.recv++
		if p.recv == p.msgs {
			p.recv = 0
			net.Send(dst, src, cfg.CtrlBytes)
		}
	})
	// Kick-off: each pair's first window opens from its sender's LP,
	// staggered by the sender's position within its leaf.
	for i := range pairs {
		pair := i
		src := pairs[i].src
		at := sim.Time(src%topo.LeafPorts+1) * sim.Time(sim.Microsecond)
		net.Engine(net.OwnerLP(src)).At(at, func() { sendWindow(pair) })
	}
	makespan, err := net.Run()
	if err != nil {
		return nil, err
	}
	for i := range pairs {
		if got := pairs[i].rounds; got != spec.Rounds {
			return nil, fmt.Errorf("patternrun: pair %d->%d finished %d of %d rounds",
				pairs[i].src, pairs[i].dst, got, spec.Rounds)
		}
	}

	rep := &LargeRunReport{
		Manifest: LargeRunManifest{
			Schema:      1,
			Pattern:     key,
			Topology:    topo.Name,
			Nodes:       nodes,
			LPs:         net.NumLPs(),
			Rounds:      spec.Rounds,
			Window:      spec.Window,
			Size:        spec.Size,
			Seed:        spec.Seed,
			Cluster:     cfg.Name,
			ClusterHash: mpibench.ClusterHash(&cfg),
			GoVersion:   runtime.Version(),
		},
		Makespan: makespan,
		Windows:  net.Windows(),
		Counters: net.Counters(),
		Metrics:  net.MetricsSnapshot(),
	}
	if spec.Faults != nil {
		rep.Manifest.Scenario = spec.Faults.Name
	}

	var b strings.Builder
	fmt.Fprintf(&b, "patternrun topo=%s pattern=%s nodes=%d rounds=%d window=%d size=%d seed=%d\n",
		topo.Name, key, nodes, spec.Rounds, spec.Window, spec.Size, spec.Seed)
	for leaf := 0; leaf < topo.Leaves; leaf++ {
		lo := leaf * topo.LeafPorts
		hi := lo + topo.LeafPorts
		if hi > nodes {
			hi = nodes
		}
		var data, acks, bytes uint64
		var latency sim.Duration
		var last sim.Time
		active := false
		for r := lo; r < hi; r++ {
			s := &state[r]
			data += s.dataSeen
			acks += s.ackSeen
			bytes += s.bytes
			latency += s.latency
			if s.last > last {
				last = s.last
			}
			if s.dataSeen+s.ackSeen > 0 {
				active = true
			}
		}
		if !active {
			continue // patterns touch a sparse subset of a big fabric
		}
		fmt.Fprintf(&b, "leaf%d data=%d acks=%d bytes=%d latency=%v last=%v\n",
			leaf, data, acks, bytes, latency, last)
	}
	fmt.Fprintf(&b, "makespan=%v windows=%d counters=%+v\n", makespan, net.Windows(), rep.Counters)
	rep.Transcript = b.String()
	return rep, nil
}

// PatternStudyCell is one topology × pattern × shape cell of the study.
type PatternStudyCell struct {
	Topo      string
	Pattern   string
	P, G, K   int
	Window    int
	Size      int
	Direction mpibench.Direction
}

func (c PatternStudyCell) key() string {
	return fmt.Sprintf("%s:%s:p%dg%dk%d:w%d:%s:s%d",
		c.Topo, c.Pattern, c.P, c.G, c.K, c.Window, c.Direction, c.Size)
}

// DefaultPatternStudyCells is the shipped study grid: Rail, Fan and
// Dense over the 2048-node fat tree (groups = 32-port leaves, so the
// pattern crosses leaf boundaries) and over a dragonfly (groups = the
// dragonfly's 32-node groups, so the pattern crosses global links).
func DefaultPatternStudyCells() []PatternStudyCell {
	var cells []PatternStudyCell
	for _, topo := range []string{"fattree:2048x32x8", "dragonfly:8x4x8"} {
		for _, pattern := range []string{mpibench.PatternRail, mpibench.PatternFan, mpibench.PatternDense} {
			cells = append(cells, PatternStudyCell{
				Topo: topo, Pattern: pattern,
				P: 32, G: 4, K: 2, Window: 2, Size: 16384,
				Direction: mpibench.Unidirectional,
			})
		}
	}
	return cells
}

// PatternStudyParams configures the study.
type PatternStudyParams struct {
	Cells []PatternStudyCell // nil: DefaultPatternStudyCells
	// CalRounds is the calibration run length (rounds fed into the
	// PatternDB); ValRounds the independent validation run whose
	// makespan is predicted; Reps the Monte-Carlo replication count.
	CalRounds int
	ValRounds int
	Reps      int
	Level     float64 // confidence level (default 0.95)
	Seed      uint64
	Workers   int
}

func (p PatternStudyParams) defaults() PatternStudyParams {
	if p.Cells == nil {
		p.Cells = DefaultPatternStudyCells()
	}
	if p.CalRounds == 0 {
		p.CalRounds = 30
	}
	if p.ValRounds == 0 {
		p.ValRounds = 60
	}
	if p.Reps == 0 {
		p.Reps = 40
	}
	if p.Level == 0 {
		p.Level = 0.95
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	return p
}

// PatternStudyRow is one cell's verdict: the PEVPM-predicted makespan
// interval of the validation run against the simulated one.
type PatternStudyRow struct {
	Topo      string             `json:"topo"`
	Pattern   string             `json:"pattern"`
	P         int                `json:"p"`
	G         int                `json:"g"`
	K         int                `json:"k"`
	Window    int                `json:"window"`
	Size      int                `json:"size"`
	Direction mpibench.Direction `json:"direction"`
	Rounds    int                `json:"rounds"`
	Bandwidth float64            `json:"bandwidth_bps"`
	Predicted stats.Interval     `json:"predicted"`
	Simulated stats.Interval     `json:"simulated"`
	Agree     bool               `json:"agree"`
}

// PatternStudy runs every cell: a calibration pattern benchmark builds
// a pevpm.PatternDB, PredictMakespan predicts the makespan of ValRounds
// further rounds, and an independent (different sub-seed) simulation of
// those rounds provides the measured interval. The predicted interval
// combines the Monte-Carlo spread with the calibration run's own mean
// uncertainty scaled to the full makespan; the simulated interval is
// the validation run's Student-t mean-round CI scaled the same way.
// Agreement is stats.Overlap of the two — the PR 7 criterion. Cells run
// on the sweep pool and are bit-identical at any worker count.
func PatternStudy(params PatternStudyParams) ([]PatternStudyRow, error) {
	params = params.defaults()
	rows, err := sweep.Map(params.Workers, len(params.Cells), func(i int) (PatternStudyRow, error) {
		return patternStudyCell(params, params.Cells[i])
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func patternStudyCell(params PatternStudyParams, cell PatternStudyCell) (PatternStudyRow, error) {
	row := PatternStudyRow{
		Topo: cell.Topo, Pattern: cell.Pattern,
		P: cell.P, G: cell.G, K: cell.K, Window: cell.Window,
		Size: cell.Size, Direction: cell.Direction, Rounds: params.ValRounds,
	}
	topo, nodes, err := cluster.ParseTopology(cell.Topo)
	if err != nil {
		return row, err
	}
	cfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		return row, err
	}
	// The placement covers exactly the pattern's ranks: one per node,
	// leaf-first, so group boundaries are fabric boundaries.
	pl, err := cluster.NewPlacement(&cfg, cell.P*cell.G, 1)
	if err != nil {
		return row, err
	}
	base := mpibench.PatternSpec{
		Pattern: cell.Pattern, P: cell.P, G: cell.G, K: cell.K,
		Direction: cell.Direction, Window: cell.Window,
		Placement: pl, Sizes: []int{cell.Size}, WarmUp: 4,
	}

	cal := base
	cal.Rounds = params.CalRounds
	cal.Seed = sim.SubSeed(params.Seed, "pattern-study:cal:"+cell.key())
	calRes, err := mpibench.RunPattern(cfg, cal)
	if err != nil {
		return row, fmt.Errorf("pattern study %s: calibration: %w", cell.key(), err)
	}
	set := &mpibench.PatternSet{Cluster: cfg.Name}
	set.Add(calRes)
	db, err := pevpm.NewPatternDB(set)
	if err != nil {
		return row, err
	}
	rng := sim.NewCellRNG(params.Seed, "pattern-study:predict:"+cell.key())
	pred, err := db.PredictMakespan(rng, pevpm.KeyOf(calRes), cell.Size, params.ValRounds, params.Reps, params.Level)
	if err != nil {
		return row, err
	}
	// Widen by the calibration uncertainty: the Monte-Carlo interval
	// only carries round-to-round spread, but the database itself was
	// estimated from CalRounds rounds, and that mean error scales with
	// the full makespan.
	calPt, _ := calRes.PointFor(cell.Size)
	calCI := stats.StudentCI(calPt.MaxHist.SummaryStats(), params.Level)
	calHW := calCI.HalfWidth() * float64(params.ValRounds)
	pred.Lo -= calHW
	pred.Hi += calHW
	row.Predicted = pred

	val := base
	val.Rounds = params.ValRounds
	val.Seed = sim.SubSeed(params.Seed, "pattern-study:val:"+cell.key())
	valRes, err := mpibench.RunPattern(cfg, val)
	if err != nil {
		return row, fmt.Errorf("pattern study %s: validation: %w", cell.key(), err)
	}
	valPt, _ := valRes.PointFor(cell.Size)
	simCI := stats.StudentCI(valPt.MaxHist.SummaryStats(), params.Level)
	row.Simulated = stats.Interval{
		Point: simCI.Point * float64(params.ValRounds),
		Lo:    simCI.Lo * float64(params.ValRounds),
		Hi:    simCI.Hi * float64(params.ValRounds),
		Level: simCI.Level,
	}
	row.Bandwidth = valPt.Bandwidth
	row.Agree = stats.Overlap(row.Predicted, row.Simulated)
	return row, nil
}
