package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/mpibench"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// LargeRunSpec configures one sharded large-cluster run: a windowed
// ring workload (every rank streams fixed-size messages to its right
// neighbour, the neighbour acknowledges each window) over a
// hierarchical topology. The pattern crosses every leaf boundary of
// the machine, which makes it the simplest workload that exercises the
// whole conservative-window machinery — and the one the scale
// acceptance (thousands of nodes, byte-identical at any worker count)
// is measured on.
type LargeRunSpec struct {
	// Topo is a topology spec in cluster.ParseTopology's grammar,
	// e.g. "fattree:2048x32x8" or "dragonfly:8x4x8+2rail".
	Topo string
	// Rounds is how many send windows each rank completes.
	Rounds int
	// Window is how many data messages a rank sends before waiting for
	// the neighbour's acknowledgement.
	Window int
	// Size is the data-message payload in bytes. It must differ from
	// the cluster's CtrlBytes, which the acknowledgements use — the
	// payload length is what tells the two apart at delivery.
	Size int
	Seed uint64
	// Workers is the worker-thread count (0 = GOMAXPROCS). It is an
	// execution detail: every field of the report is byte-identical at
	// any value.
	Workers int
	// Faults optionally degrades the machine for the run.
	Faults *faults.Schedule
}

// LargeRunManifest is the reproducibility record of a large run. Like
// mpibench's manifest it captures everything that determines the
// output — and deliberately not the worker count, which must not.
type LargeRunManifest struct {
	Schema      int    `json:"schema"`
	Pattern     string `json:"pattern"`
	Topology    string `json:"topology"`
	Nodes       int    `json:"nodes"`
	LPs         int    `json:"lps"`
	Rounds      int    `json:"rounds"`
	Window      int    `json:"window"`
	Size        int    `json:"size"`
	Seed        uint64 `json:"seed"`
	Cluster     string `json:"cluster"`
	ClusterHash string `json:"cluster_hash"`
	GoVersion   string `json:"go_version"`
	Scenario    string `json:"scenario,omitempty"`
}

// LargeRunReport is everything a large run produced. Transcript,
// Counters, Metrics and Makespan are all part of the determinism
// contract: byte-identical at every worker count.
type LargeRunReport struct {
	Manifest LargeRunManifest
	// Makespan is the virtual time the last event executed at.
	Makespan sim.Time
	// Windows is how many conservative synchronisation windows the run
	// took (a sharding diagnostic; worker-independent).
	Windows uint64
	// Transcript summarises per-leaf delivery activity in LP order —
	// the value `make determinism` diffs across worker counts.
	Transcript string
	Counters   netsim.Counters
	Metrics    metrics.Snapshot
}

// lrNode is one rank's workload state, owned by (and only touched on)
// the rank's leaf LP.
type lrNode struct {
	rounds   int // completed send windows
	recvData int // data messages of the current window received
	dataSeen uint64
	ackSeen  uint64
	bytes    uint64
	latency  sim.Duration // summed data-message delivery latency
	last     sim.Time     // latest delivery observed at this rank
}

// LargeRun executes the spec and reports. The worker count never
// changes a byte of the report; everything else in the spec does.
func LargeRun(spec LargeRunSpec) (*LargeRunReport, error) {
	topo, nodes, err := cluster.ParseTopology(spec.Topo)
	if err != nil {
		return nil, err
	}
	cfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		return nil, err
	}
	switch {
	case nodes < 2:
		return nil, fmt.Errorf("largerun: ring needs at least 2 nodes, topology %q has %d", spec.Topo, nodes)
	case spec.Rounds <= 0 || spec.Window <= 0:
		return nil, fmt.Errorf("largerun: rounds and window must be positive, got %d and %d", spec.Rounds, spec.Window)
	case spec.Size <= 0:
		return nil, fmt.Errorf("largerun: size must be positive, got %d", spec.Size)
	case spec.Size == cfg.CtrlBytes:
		return nil, fmt.Errorf("largerun: size %d collides with the %d-byte acknowledgements", spec.Size, cfg.CtrlBytes)
	}
	if spec.Faults != nil {
		if err := spec.Faults.ValidateFor(cfg.Nodes, topo.NumSegments()); err != nil {
			return nil, err
		}
	}
	net, err := netsim.NewSharded(spec.Seed, cfg, spec.Workers)
	if err != nil {
		return nil, err
	}
	if spec.Faults != nil {
		net.SetFaults(spec.Faults)
	}

	// state[r] is only touched by r's owner LP: the delivery handler
	// runs on the destination's LP and every send a rank reacts with
	// originates from itself. Distinct LPs therefore write distinct
	// index ranges — no locking, race-free by ownership.
	state := make([]lrNode, nodes)
	next := func(r int) int { return (r + 1) % nodes }
	prev := func(r int) int { return (r + nodes - 1) % nodes }
	sendWindow := func(r int) {
		for i := 0; i < spec.Window; i++ {
			net.Send(r, next(r), spec.Size)
		}
	}
	net.SetDeliver(func(src, dst, payload int, st netsim.TransferStats) {
		s := &state[dst]
		s.last = st.Delivered
		s.bytes += uint64(payload)
		if payload == cfg.CtrlBytes { // window acknowledged: next round
			s.ackSeen++
			s.rounds++
			if s.rounds < spec.Rounds {
				sendWindow(dst)
			}
			return
		}
		s.dataSeen++
		s.latency += st.Delivered.Sub(st.Sent)
		s.recvData++
		if s.recvData == spec.Window {
			s.recvData = 0
			net.Send(dst, prev(dst), cfg.CtrlBytes)
		}
	})
	// Kick-off: each rank opens its first window from its own LP, at a
	// start time staggered by its position within the leaf so a
	// 32-port leaf does not fire 32 simultaneous events.
	for r := 0; r < nodes; r++ {
		rank := r
		at := sim.Time(r%topo.LeafPorts+1) * sim.Time(sim.Microsecond)
		net.Engine(net.OwnerLP(rank)).At(at, func() { sendWindow(rank) })
	}
	makespan, err := net.Run()
	if err != nil {
		return nil, err
	}
	for r := range state {
		if got := state[r].rounds; got != spec.Rounds {
			return nil, fmt.Errorf("largerun: rank %d finished %d of %d rounds", r, got, spec.Rounds)
		}
	}

	rep := &LargeRunReport{
		Manifest: LargeRunManifest{
			Schema:      1,
			Pattern:     "windowed-ring",
			Topology:    topo.Name,
			Nodes:       nodes,
			LPs:         net.NumLPs(),
			Rounds:      spec.Rounds,
			Window:      spec.Window,
			Size:        spec.Size,
			Seed:        spec.Seed,
			Cluster:     cfg.Name,
			ClusterHash: mpibench.ClusterHash(&cfg),
			GoVersion:   runtime.Version(),
		},
		Makespan: makespan,
		Windows:  net.Windows(),
		Counters: net.Counters(),
		Metrics:  net.MetricsSnapshot(),
	}
	if spec.Faults != nil {
		rep.Manifest.Scenario = spec.Faults.Name
	}

	// Per-leaf aggregation in LP order: compact at 2048 nodes, still
	// sensitive to any divergence in any rank's deliveries.
	var b strings.Builder
	fmt.Fprintf(&b, "largerun topo=%s nodes=%d rounds=%d window=%d size=%d seed=%d\n",
		topo.Name, nodes, spec.Rounds, spec.Window, spec.Size, spec.Seed)
	for leaf := 0; leaf < topo.Leaves; leaf++ {
		lo := leaf * topo.LeafPorts
		hi := lo + topo.LeafPorts
		if hi > nodes {
			hi = nodes
		}
		var data, acks, bytes uint64
		var latency sim.Duration
		var last sim.Time
		for r := lo; r < hi; r++ {
			s := &state[r]
			data += s.dataSeen
			acks += s.ackSeen
			bytes += s.bytes
			latency += s.latency
			if s.last > last {
				last = s.last
			}
		}
		fmt.Fprintf(&b, "leaf%d data=%d acks=%d bytes=%d latency=%v last=%v\n",
			leaf, data, acks, bytes, latency, last)
	}
	fmt.Fprintf(&b, "makespan=%v windows=%d counters=%+v\n", makespan, net.Windows(), rep.Counters)
	rep.Transcript = b.String()
	return rep, nil
}
