package mpibench

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cluster"
)

func place(t *testing.T, cfg *cluster.Config, n, p int) cluster.Placement {
	t.Helper()
	pl, err := cluster.NewPlacement(cfg, n, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// blockPlace builds a physically contiguous placement — the layout the
// paper's network-characterisation experiments reason about.
func blockPlace(t *testing.T, cfg *cluster.Config, n, p int) cluster.Placement {
	t.Helper()
	pl, err := cluster.NewBlockPlacement(cfg, n, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func quickSpec(pl cluster.Placement, op Op, sizes ...int) Spec {
	return Spec{
		Op:          op,
		Sizes:       sizes,
		Placement:   pl,
		Repetitions: 80,
		WarmUp:      10,
		SyncProbes:  20,
		BinWidth:    5e-6,
		Seed:        1,
	}
}

func TestIsendTwoByOne(t *testing.T) {
	cfg := cluster.Perseus()
	res, err := Run(cfg, quickSpec(place(t, &cfg, 2, 1), OpIsend, 1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != OpIsend || res.Placement != "2x1" || res.Procs != 2 {
		t.Errorf("result header: %+v", res)
	}
	p, ok := res.PointFor(1024)
	if !ok {
		t.Fatal("no point for size 1024")
	}
	// Both ranks record 80 measured one-way times.
	if p.Hist.Count() < 150 {
		t.Errorf("samples = %d, want ~160", p.Hist.Count())
	}
	// One-way 1 KB time on uncontended simulated Perseus: 150–450 µs.
	if m := p.Avg(); m < 150e-6 || m > 450e-6 {
		t.Errorf("mean one-way time %.1f µs out of plausible range", m*1e6)
	}
	// The minimum must be below the mean but the distribution narrow.
	if p.Min() >= p.Avg() {
		t.Error("min >= mean")
	}
	if spread := p.Avg() - p.Min(); spread > 200e-6 {
		t.Errorf("2x1 spread %.1f µs too wide for an uncontended link", spread*1e6)
	}
}

func TestClockSyncAccuracy(t *testing.T) {
	// The clocks start seconds apart with ±50 ppm drift. If the global
	// clock correction failed, one-way times would be off by
	// milliseconds or negative; a tight positive distribution proves
	// synchronisation works.
	cfg := cluster.Perseus()
	res, err := Run(cfg, quickSpec(place(t, &cfg, 4, 1), OpIsend, 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncResidual > 30e-6 {
		t.Errorf("sync residual %.1f µs, want microsecond-scale", res.SyncResidual*1e6)
	}
	p, _ := res.PointFor(256)
	if p.Min() < 20e-6 || p.Avg() > 2e-3 {
		t.Errorf("one-way times [min %.1f µs, mean %.1f µs] implausible: clock sync broken?",
			p.Min()*1e6, p.Avg()*1e6)
	}
}

func TestContentionRaisesAverages(t *testing.T) {
	// The paper's headline Figure 1 observation: a 1 KB transfer takes
	// substantially longer on average with 64×1 communicating processes
	// than with 2×1, while the minimum stays near the contention-free bound.
	cfg := cluster.Perseus()
	small, err := Run(cfg, quickSpec(blockPlace(t, &cfg, 2, 1), OpIsend, 1024))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(cfg, quickSpec(blockPlace(t, &cfg, 64, 1), OpIsend, 1024))
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := small.PointFor(1024)
	p64, _ := big.PointFor(1024)
	ratio := p64.Avg() / p2.Avg()
	if ratio < 1.25 {
		t.Errorf("64x1 mean only %.2fx the 2x1 mean; contention missing", ratio)
	}
	if p64.Min() > p2.Avg()*1.5 {
		t.Errorf("64x1 minimum %.1f µs should stay near the contention-free time",
			p64.Min()*1e6)
	}
	// Dispersion grows with contention.
	if p64.Hist.Std() <= p2.Hist.Std() {
		t.Error("contention should widen the distribution")
	}
}

func TestSMPContention(t *testing.T) {
	// Two processes per node share one NIC: 8×2 must be slower on
	// average than 8×1 for the same message size.
	cfg := cluster.Perseus()
	one, err := Run(cfg, quickSpec(place(t, &cfg, 8, 1), OpIsend, 1024))
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(cfg, quickSpec(place(t, &cfg, 8, 2), OpIsend, 1024))
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := one.PointFor(1024)
	p2, _ := two.PointFor(1024)
	if p2.Avg() <= p1.Avg() {
		t.Errorf("8x2 mean %.1f µs not above 8x1 mean %.1f µs", p2.Avg()*1e6, p1.Avg()*1e6)
	}
}

func TestCollectiveBcast(t *testing.T) {
	cfg := cluster.Perseus()
	res, err := Run(cfg, quickSpec(place(t, &cfg, 8, 1), OpBcast, 4096))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res.PointFor(4096)
	if !ok || p.Hist.Count() == 0 {
		t.Fatal("no Bcast samples")
	}
	if p.Min() <= 0 {
		t.Error("Bcast time must be positive")
	}
	// Broadcast across 8 ranks takes at least one message time.
	if p.Avg() < 100e-6 {
		t.Errorf("Bcast mean %.1f µs implausibly fast", p.Avg()*1e6)
	}
}

func TestBarrierIgnoresSizes(t *testing.T) {
	cfg := cluster.Perseus()
	spec := quickSpec(place(t, &cfg, 4, 1), OpBarrier, 1024, 4096)
	res, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Size != 0 {
		t.Errorf("Barrier points = %+v, want single size-0 entry", res.Points)
	}
}

func TestRunSweepAndSetRoundTrip(t *testing.T) {
	cfg := cluster.Perseus()
	pls := []cluster.Placement{place(t, &cfg, 2, 1), place(t, &cfg, 4, 1)}
	spec := quickSpec(cluster.Placement{}, OpIsend, 512)
	set, err := RunSweep(cfg, spec, pls)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Results) != 2 {
		t.Fatalf("results = %d", len(set.Results))
	}
	if got := set.Placements(OpIsend); len(got) != 2 || got[0] != "2x1" || got[1] != "4x1" {
		t.Errorf("Placements = %v", got)
	}
	if _, ok := set.Find(OpIsend, "4x1"); !ok {
		t.Error("Find failed")
	}
	if _, ok := set.Find(OpBcast, "4x1"); ok {
		t.Error("Find matched wrong op")
	}

	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := set.Find(OpIsend, "2x1")
	loaded, ok := back.Find(OpIsend, "2x1")
	if !ok {
		t.Fatal("loaded set missing result")
	}
	po, _ := orig.PointFor(512)
	pb, _ := loaded.PointFor(512)
	if math.Abs(po.Avg()-pb.Avg()) > 1e-12 || po.Hist.Count() != pb.Hist.Count() {
		t.Error("JSON round trip changed the data")
	}
}

func TestSetAddReplaces(t *testing.T) {
	set := &Set{}
	set.Add(&Result{Op: OpIsend, Placement: "2x1", Procs: 2})
	set.Add(&Result{Op: OpIsend, Placement: "2x1", Procs: 2, Samples: 99})
	if len(set.Results) != 1 {
		t.Fatalf("Add should replace, got %d results", len(set.Results))
	}
	if set.Results[0].Samples != 99 {
		t.Error("replacement kept the old result")
	}
}

func TestSpecValidation(t *testing.T) {
	cfg := cluster.Perseus()
	good := place(t, &cfg, 2, 1)
	cases := map[string]Spec{
		"bad op":       {Op: "MPI_Bogus", Placement: good},
		"odd procs":    {Op: OpIsend, Placement: cluster.Placement{NodeCount: 3, PerNode: 1}},
		"neg size":     {Op: OpIsend, Placement: good, Sizes: []int{-1}},
		"no placement": {Op: OpIsend},
	}
	for name, s := range cases {
		s = s.Defaults()
		if err := s.Validate(&cfg); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	s := quickSpec(good, OpIsend, 100).Defaults()
	if err := s.Validate(&cfg); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := cluster.Perseus()
	spec := quickSpec(place(t, &cfg, 4, 1), OpIsend, 1024)
	a, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.PointFor(1024)
	pb, _ := b.PointFor(1024)
	if pa.Avg() != pb.Avg() || pa.Hist.Count() != pb.Hist.Count() {
		t.Error("same seed produced different results")
	}
}
