package mpibench

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
)

// TestRunSweepWorkersEquality checks that the worker pool changes only
// wall-clock: the same spec and seed produce byte-identical sweep sets
// at every worker count, because each placement cell runs on its own
// engine with a per-cell seed and the set is merged in placement order.
func TestRunSweepWorkersEquality(t *testing.T) {
	cfg := cluster.Perseus()
	pls := []cluster.Placement{
		place(t, &cfg, 2, 1), place(t, &cfg, 4, 1),
		place(t, &cfg, 8, 1), place(t, &cfg, 4, 2),
	}

	encode := func(workers int) []byte {
		spec := quickSpec(cluster.Placement{}, OpIsend, 64, 1024)
		spec.Workers = workers
		set, err := RunSweep(cfg, spec, pls)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := encode(1)
	for _, workers := range []int{0, 2, 8} {
		if got := encode(workers); !bytes.Equal(got, serial) {
			t.Errorf("Workers=%d sweep set differs from serial", workers)
		}
	}
}
