package mpibench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/experiments/sweep"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// PatternPoint is the measured distribution of one message size:
// per-rank round durations plus the per-round slowest participant
// (the pattern's completion, the quantity PEVPM predicts).
type PatternPoint struct {
	Size int              `json:"size"`
	Hist *stats.Histogram `json:"hist"`

	// MaxHist is the distribution of the per-round slowest participant —
	// the windowed round as a whole, which is what gates the next round
	// of a real group-to-group exchange.
	MaxHist *stats.Histogram `json:"max_hist"`

	// BytesPerRound is the total payload injected per round
	// (sum of pair counts × window × size); Bandwidth divides it by the
	// mean round completion time.
	BytesPerRound int     `json:"bytes_per_round"`
	Bandwidth     float64 `json:"bandwidth_bps"`

	Est *Estimates `json:"est,omitempty"`
}

// PatternResult is the output of one pattern benchmark run.
type PatternResult struct {
	Cluster   string    `json:"cluster"`
	Pattern   string    `json:"pattern"`
	Direction Direction `json:"direction"`
	P         int       `json:"p"`
	G         int       `json:"g"`
	K         int       `json:"k"`
	Window    int       `json:"window"`
	Placement string    `json:"placement"`
	Procs     int       `json:"procs"`
	Pairs     int       `json:"pairs"`
	BinWidth  float64   `json:"bin_width"`

	Points []PatternPoint `json:"points"`

	// Samples is the number of per-rank round timings per size.
	Samples uint64 `json:"samples"`

	Scenario   string `json:"scenario,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
	FaultDrops uint64 `json:"fault_drops,omitempty"`

	Manifest PatternManifest `json:"manifest"`

	// Metrics is the run's instrument snapshot, excluded from saved JSON
	// like Result.Metrics.
	Metrics metrics.Snapshot `json:"-"`
}

// Key identifies the pattern cell this result measured.
func (r *PatternResult) Key() string {
	return patternKey(r.Pattern, r.P, r.G, r.K, r.Window, r.Direction)
}

// PointFor returns the distribution for an exact message size.
func (r *PatternResult) PointFor(size int) (PatternPoint, bool) {
	for _, p := range r.Points {
		if p.Size == size {
			return p, true
		}
	}
	return PatternPoint{}, false
}

// PatternManifest is the reproducibility record of a pattern run — the
// same contract as Manifest, keyed by pattern parameters instead of an
// op. ClusterHash covers the full cluster configuration including the
// topology's link list, so the same pattern on a different fabric can
// never masquerade as the same experiment.
type PatternManifest struct {
	Schema        int       `json:"schema"`
	Pattern       string    `json:"pattern"`
	Direction     Direction `json:"direction"`
	P             int       `json:"p"`
	G             int       `json:"g"`
	K             int       `json:"k"`
	Window        int       `json:"window"`
	Pairs         int       `json:"pairs"`
	Placement     string    `json:"placement"`
	Sizes         []int     `json:"sizes"`
	Rounds        int       `json:"rounds"`
	WarmUp        int       `json:"warmup"`
	BinWidth      float64   `json:"bin_width"`
	PerfectClocks bool      `json:"perfect_clocks,omitempty"`
	Seed          uint64    `json:"seed"`

	Cluster     string `json:"cluster"`
	ClusterHash string `json:"cluster_hash"`
	Topology    string `json:"topology,omitempty"`
	GoVersion   string `json:"go_version"`
	Scenario    string `json:"scenario,omitempty"`
}

func newPatternManifest(cfg *cluster.Config, spec PatternSpec) PatternManifest {
	m := PatternManifest{
		Schema:        ManifestSchema,
		Pattern:       spec.Pattern,
		Direction:     spec.Direction,
		P:             spec.P,
		G:             spec.G,
		K:             spec.K,
		Window:        spec.Window,
		Pairs:         len(spec.Matrix.Pairs),
		Placement:     spec.Placement.String(),
		Sizes:         spec.Sizes,
		Rounds:        spec.Rounds,
		WarmUp:        spec.WarmUp,
		BinWidth:      spec.BinWidth,
		PerfectClocks: spec.PerfectClocks,
		Seed:          spec.Seed,
		Cluster:       cfg.Name,
		ClusterHash:   ClusterHash(cfg),
		GoVersion:     runtime.Version(),
	}
	if cfg.Topo != nil {
		m.Topology = cfg.Topo.Name
	}
	if spec.Faults != nil {
		m.Scenario = spec.Faults.Name
	}
	return m
}

// RunPattern executes one group-to-group pattern benchmark on a freshly
// simulated cluster. Every round is an aligned burst: the participants
// barrier, post window×count receives and sends per matrix pair, and
// Waitall; the round duration is read start-to-finish on each rank's
// own local clock, so clock offsets cancel without a sync phase and
// only skew (<= 50 ppm) and read granularity contribute noise.
func RunPattern(cfg cluster.Config, spec PatternSpec) (*PatternResult, error) {
	spec = spec.Defaults()
	if spec.Matrix.Empty() && spec.Pattern != PatternCustom {
		m, err := BuildPattern(spec.Pattern, spec.P, spec.G, spec.K, spec.Direction)
		if err != nil {
			return nil, err
		}
		spec.Matrix = m
	}
	if err := spec.Validate(&cfg); err != nil {
		return nil, err
	}

	e := sim.NewEngine(spec.Seed)
	net := netsim.New(e, cfg)
	w := mpi.NewWorld(e, net, spec.Placement)
	w.SetComputeModel(cluster.ComputeModel{}) // benchmarks do no compute
	if spec.Faults != nil {
		w.SetFaults(spec.Faults)
	}

	pl := spec.Placement
	procs := pl.NumProcs()
	maxOffset, maxSkew, jitter := clockMaxOffset, clockMaxSkew, clockJitter
	if spec.PerfectClocks {
		maxOffset, maxSkew, jitter = 0, 0, 0
	}
	clocks := vclock.NewClockSet(e, pl.NodeCount, maxOffset, maxSkew, jitter)

	// Per-rank pair lists in matrix order; ranks outside every pair just
	// ride the barriers.
	outs := make([][]Pair, procs)
	ins := make([][]Pair, procs)
	participant := make([]bool, procs)
	for _, pr := range spec.Matrix.Pairs {
		outs[pr.Src] = append(outs[pr.Src], pr)
		ins[pr.Dst] = append(ins[pr.Dst], pr)
		participant[pr.Src] = true
		participant[pr.Dst] = true
	}

	total := spec.WarmUp + spec.Rounds
	nSizes := len(spec.Sizes)
	durs := make([][][]float64, procs)
	for r := range durs {
		durs[r] = make([][]float64, nSizes)
		for s := range durs[r] {
			durs[r][s] = make([]float64, total)
		}
	}

	w.Launch(func(c *mpi.Comm) {
		rank := c.Rank()
		read := func() float64 {
			return clocks[pl.LogicalNode(rank)].Read(c.Now())
		}
		for si, size := range spec.Sizes {
			for rep := 0; rep < total; rep++ {
				c.Barrier()
				if !participant[rank] {
					continue
				}
				start := read()
				var reqs []*mpi.Request
				for _, pr := range ins[rank] {
					for m := 0; m < pr.Count*spec.Window; m++ {
						reqs = append(reqs, c.Irecv(pr.Src, tagMeasure))
					}
				}
				for _, pr := range outs[rank] {
					for m := 0; m < pr.Count*spec.Window; m++ {
						reqs = append(reqs, c.Isend(pr.Dst, tagMeasure, size))
					}
				}
				c.Waitall(reqs...)
				durs[rank][si][rep] = read() - start
			}
		}
	})
	defer w.Shutdown()
	if _, err := w.Wait(); err != nil {
		return nil, fmt.Errorf("mpibench: pattern %s on %s: %w", spec.Key(), pl, err)
	}

	res := &PatternResult{
		Cluster:   cfg.Name,
		Pattern:   spec.Pattern,
		Direction: spec.Direction,
		P:         spec.P,
		G:         spec.G,
		K:         spec.K,
		Window:    spec.Window,
		Placement: pl.String(),
		Procs:     procs,
		Pairs:     len(spec.Matrix.Pairs),
		BinWidth:  spec.BinWidth,
		Manifest:  newPatternManifest(&cfg, spec),
	}
	nc := net.Stats()
	res.Retries = nc.Retries
	res.FaultDrops = nc.FaultDrops
	res.Metrics = e.Metrics().Snapshot()
	if spec.Faults != nil {
		res.Scenario = spec.Faults.Name
	}

	bytesPerRound := spec.Matrix.MessagesPerWindow() * spec.Window
	samples := make([][]float64, nSizes)
	for si, size := range spec.Sizes {
		h := stats.NewHistogram(spec.BinWidth)
		maxH := stats.NewHistogram(spec.BinWidth)
		samples[si] = make([]float64, 0, spec.Rounds*procs)
		for rep := spec.WarmUp; rep < total; rep++ {
			slowest := 0.0
			for rank := 0; rank < procs; rank++ {
				if !participant[rank] {
					continue
				}
				if d := durs[rank][si][rep]; d > 0 {
					h.Add(d)
					samples[si] = append(samples[si], d)
					if d > slowest {
						slowest = d
					}
				}
			}
			if slowest > 0 {
				maxH.Add(slowest)
			}
		}
		pt := PatternPoint{
			Size:          size,
			Hist:          h,
			MaxHist:       maxH,
			BytesPerRound: bytesPerRound * size,
		}
		if mean := maxH.Mean(); mean > 0 {
			pt.Bandwidth = float64(pt.BytesPerRound) / mean
		}
		res.Points = append(res.Points, pt)
		res.Samples = h.Count()
	}
	if spec.Estimates {
		c := estConfig{quantile: 0.5, level: 0.95, resamples: 200}
		boot := stats.NewBootstrap(c.resamples)
		for si := range res.Points {
			res.Points[si].Est = estimateSamples(samples[si], spec.Seed,
				fmt.Sprintf("est:size%d", si), c, boot)
		}
	}
	return res, nil
}

// PatternSet is a collection of pattern results — the per-pattern
// performance database pevpm.NewPatternDB consumes.
type PatternSet struct {
	Cluster string           `json:"cluster"`
	Results []*PatternResult `json:"results"`
}

// Add appends a result, replacing any previous result for the same key.
func (s *PatternSet) Add(r *PatternResult) {
	for i, old := range s.Results {
		if old.Key() == r.Key() {
			s.Results[i] = r
			return
		}
	}
	s.Results = append(s.Results, r)
}

// Find returns the result for a pattern key.
func (s *PatternSet) Find(key string) (*PatternResult, bool) {
	for _, r := range s.Results {
		if r.Key() == key {
			return r, true
		}
	}
	return nil, false
}

// WriteJSON serialises the set.
func (s *PatternSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// SaveFile writes the set to a file.
func (s *PatternSet) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadPatternJSON deserialises a set written by WriteJSON.
func ReadPatternJSON(r io.Reader) (*PatternSet, error) {
	var s PatternSet
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("mpibench: decoding pattern set: %w", err)
	}
	return &s, nil
}

// LoadPatternFile reads a set from a file.
func LoadPatternFile(path string) (*PatternSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPatternJSON(f)
}

// PatternCell selects one cell of a pattern sweep: the pattern name,
// its (p, g, k) shape, the window depth and the direction. Zero Window
// and empty Direction inherit the base spec's values.
type PatternCell struct {
	Pattern   string    `json:"pattern"`
	P         int       `json:"p"`
	G         int       `json:"g"`
	K         int       `json:"k"`
	Window    int       `json:"window,omitempty"`
	Direction Direction `json:"direction,omitempty"`
}

// RunPatternSweep benchmarks every cell of the (p, g, k) × window ×
// direction space on the sweep worker pool. Each cell is an
// independent simulation whose seed is the "pattern:<key>" substream
// of the base seed, and results merge in cell order, so the sweep is
// bit-identical at any worker count.
func RunPatternSweep(cfg cluster.Config, base PatternSpec, cells []PatternCell) (*PatternSet, error) {
	return RunPatternSweepObserved(cfg, base, cells, nil)
}

// RunPatternSweepObserved is RunPatternSweep that additionally folds
// every cell's instrument snapshot — plus the worker pool's own
// counters — into agg, in cell order on the calling goroutine.
func RunPatternSweepObserved(cfg cluster.Config, base PatternSpec, cells []PatternCell, agg *metrics.Aggregate) (*PatternSet, error) {
	base = base.Defaults() // resolve window/direction before keys are derived
	var obs *sweep.Observer
	if agg != nil {
		obs = sweep.NewObserver()
	}
	results, err := sweep.MapObserved(base.sweepWorkers(), len(cells), obs, func(i int) (*PatternResult, error) {
		s := base
		c := cells[i]
		s.Pattern, s.P, s.G, s.K = c.Pattern, c.P, c.G, c.K
		if c.Window > 0 {
			s.Window = c.Window
		}
		if c.Direction != "" {
			s.Direction = c.Direction
		}
		s.Matrix = Matrix{}
		s.Seed = sim.SubSeed(base.Seed, "pattern:"+s.Key())
		return RunPattern(cfg, s)
	})
	if err != nil {
		return nil, err
	}
	set := &PatternSet{Cluster: cfg.Name}
	for _, r := range results {
		set.Add(r)
		if agg != nil {
			agg.Merge(r.Metrics)
		}
	}
	if agg != nil {
		agg.Merge(obs.Snapshot())
	}
	return set, nil
}
