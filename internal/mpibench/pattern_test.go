package mpibench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

func TestBuildPatternShapes(t *testing.T) {
	// Rail uni: k pairs per group pair, g-1 group pairs.
	m, err := BuildPattern(PatternRail, 4, 3, 2, Unidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pairs) != 2*2 {
		t.Fatalf("rail uni pairs = %d, want 4", len(m.Pairs))
	}
	// Rail keeps participants on their own NIC: pair i -> peer i.
	if m.Pairs[0] != (Pair{Src: 0, Dst: 4, Count: 1}) || m.Pairs[1] != (Pair{Src: 1, Dst: 5, Count: 1}) {
		t.Fatalf("rail edges wrong: %+v", m.Pairs[:2])
	}

	// Fan uni: one sender per group pair, k receivers.
	m, err = BuildPattern(PatternFan, 4, 2, 3, Unidirectional)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Pairs {
		if p.Src != 0 {
			t.Fatalf("fan sender should be the group lead, got %+v", p)
		}
	}
	if len(m.Pairs) != 3 {
		t.Fatalf("fan uni pairs = %d, want 3", len(m.Pairs))
	}

	// Dense omni: k*k pairs per ordered group pair.
	m, err = BuildPattern(PatternDense, 8, 3, 2, Omnidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2 * 2 * 2; len(m.Pairs) != want {
		t.Fatalf("dense omni pairs = %d, want %d", len(m.Pairs), want)
	}

	// Bidirectional doubles the unidirectional edge set.
	uni, _ := BuildPattern(PatternDense, 8, 3, 2, Unidirectional)
	bi, _ := BuildPattern(PatternDense, 8, 3, 2, Bidirectional)
	if len(bi.Pairs) != 2*len(uni.Pairs) {
		t.Fatalf("dense bi pairs = %d, want %d", len(bi.Pairs), 2*len(uni.Pairs))
	}

	// Bad shapes are rejected.
	if _, err := BuildPattern(PatternRail, 4, 1, 2, Unidirectional); err == nil {
		t.Error("g=1 should fail")
	}
	if _, err := BuildPattern(PatternRail, 4, 2, 5, Unidirectional); err == nil {
		t.Error("k>p should fail")
	}
	if _, err := BuildPattern("mesh", 4, 2, 2, Unidirectional); err == nil {
		t.Error("unknown pattern should fail")
	}
	if _, err := BuildPattern(PatternRail, 4, 2, 2, "diag"); err == nil {
		t.Error("unknown direction should fail")
	}
}

func TestMatrixAddMergesDuplicates(t *testing.T) {
	var m Matrix
	m.Add(0, 1, 1)
	m.Add(0, 1, 2)
	m.Add(1, 0, 1)
	if len(m.Pairs) != 2 || m.Pairs[0].Count != 3 {
		t.Fatalf("merge failed: %+v", m.Pairs)
	}
	if m.MessagesPerWindow() != 4 {
		t.Fatalf("MessagesPerWindow = %d", m.MessagesPerWindow())
	}
}

// Satellite regression: a matrix naming a rank outside the placement
// (or a self-pair) used to be discoverable only as a peer-range panic
// deep inside internal/mpi once the engine was already running. It must
// be rejected by validation, as mpilint-style findings, before any
// engine spins up.
func TestPatternValidateRejectsBadMatrix(t *testing.T) {
	cfg := cluster.Perseus()
	pl, err := cluster.NewPlacement(&cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		m    Matrix
		want string
	}{
		{"out-of-range receiver", Matrix{Pairs: []Pair{{Src: 0, Dst: 99, Count: 1}}}, "outside"},
		{"out-of-range sender", Matrix{Pairs: []Pair{{Src: -1, Dst: 1, Count: 1}}}, "outside"},
		{"self-pair", Matrix{Pairs: []Pair{{Src: 2, Dst: 2, Count: 1}}}, "self-pair"},
		{"zero count", Matrix{Pairs: []Pair{{Src: 0, Dst: 1, Count: 0}}}, "count"},
	}
	for _, tc := range bad {
		fs := tc.m.Findings(pl.NumProcs())
		if len(fs) != 1 || fs[0].Rule != mpi.RulePatternMatrix || fs[0].Severity != mpi.SeverityError {
			t.Errorf("%s: findings = %+v", tc.name, fs)
		}
		spec := PatternSpec{Pattern: PatternCustom, Matrix: tc.m, Placement: pl, Seed: 1}
		if _, err := RunPattern(cfg, spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: RunPattern error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	// A pattern bigger than its placement is caught before the matrix.
	spec := PatternSpec{Pattern: PatternDense, P: 4, G: 4, K: 2, Placement: pl, Seed: 1}
	if _, err := RunPattern(cfg, spec); err == nil {
		t.Error("16-rank pattern on a 4-rank placement should fail")
	}
}

// patternTestCluster builds the fat-tree world the determinism tests
// run on: 128 nodes of 32-port leaves, one rank per node, so pattern
// group size p = 32 aligns groups with leaf switches.
func patternTestCluster(t *testing.T, spec string) (cluster.Config, cluster.Placement) {
	t.Helper()
	topo, nodes, err := cluster.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := cluster.NewPlacement(&cfg, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, pl
}

// Satellite: the Dense (p=32, g=4, k=2) sweep must be byte-identical at
// 1 vs 8 workers, healthy and under congested-backplane.
func TestPatternSweepDeterminism(t *testing.T) {
	cfg, pl := patternTestCluster(t, "fattree:128x32x4")
	cells := []PatternCell{
		{Pattern: PatternRail, P: 32, G: 4, K: 2},
		{Pattern: PatternFan, P: 32, G: 4, K: 2},
		{Pattern: PatternDense, P: 32, G: 4, K: 2},
	}
	base := PatternSpec{
		Placement: pl,
		Sizes:     []int{4096},
		Rounds:    6,
		WarmUp:    2,
		Window:    2,
		Estimates: true,
		Seed:      7,
	}
	for _, scenario := range []string{"", "congested-backplane"} {
		s := base
		if scenario != "" {
			sched, err := cluster.Scenario(scenario, 11, cluster.ScenarioEnv{
				Nodes: cfg.Nodes, Segments: cfg.NumSegments(), Span: 1.0,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Faults = sched
		}
		var blobs [][]byte
		for _, workers := range []int{1, 8} {
			s.Workers = workers
			set, err := RunPatternSweep(cfg, s, cells)
			if err != nil {
				t.Fatalf("scenario %q workers %d: %v", scenario, workers, err)
			}
			var buf bytes.Buffer
			if err := set.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, buf.Bytes())
		}
		if !bytes.Equal(blobs[0], blobs[1]) {
			t.Errorf("scenario %q: sweep output differs between 1 and 8 workers", scenario)
		}
	}
}

func TestPatternRunMeasures(t *testing.T) {
	cfg, pl := patternTestCluster(t, "dragonfly:4x2x4")
	spec := PatternSpec{
		Pattern:   PatternDense,
		P:         8, // routersPerGroup × nodesPerRouter: groups = dragonfly groups
		G:         4,
		K:         2,
		Direction: Omnidirectional,
		Window:    2,
		Placement: pl,
		Sizes:     []int{1024, 65536},
		Rounds:    8,
		WarmUp:    2,
		Estimates: true,
		Seed:      3,
	}
	res, err := RunPattern(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 4*3*2*2 {
		t.Errorf("pairs = %d, want 48", res.Pairs)
	}
	small, _ := res.PointFor(1024)
	large, _ := res.PointFor(65536)
	if small.Hist.Count() == 0 || large.Hist.Count() == 0 {
		t.Fatal("empty distributions")
	}
	if small.MaxHist.Mean() >= large.MaxHist.Mean() {
		t.Errorf("64KB rounds (%v) should be slower than 1KB rounds (%v)",
			large.MaxHist.Mean(), small.MaxHist.Mean())
	}
	if small.Bandwidth <= 0 || large.Bandwidth <= 0 {
		t.Error("bandwidth not computed")
	}
	// The slowest participant bounds the average one.
	if large.MaxHist.Mean() < large.Hist.Mean() {
		t.Error("round completion cannot beat the per-rank mean")
	}
	if small.Est == nil || small.Est.Mean.Hi <= small.Est.Mean.Lo {
		t.Errorf("estimates missing or degenerate: %+v", small.Est)
	}
	if res.Manifest.Topology != "dragonfly-4x2x4" {
		t.Errorf("manifest topology = %q", res.Manifest.Topology)
	}
}

func TestParseDirection(t *testing.T) {
	for s, want := range map[string]Direction{
		"uni": Unidirectional, "bi": Bidirectional, "omni": Omnidirectional,
	} {
		got, err := ParseDirection(s)
		if err != nil || got != want {
			t.Errorf("ParseDirection(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDirection("diag"); err == nil {
		t.Error("unknown direction should fail")
	}
}

func TestMatrixMaxRank(t *testing.T) {
	var m Matrix
	if m.MaxRank() != -1 {
		t.Errorf("empty matrix MaxRank = %d, want -1", m.MaxRank())
	}
	m.Add(3, 7, 1)
	m.Add(9, 2, 1)
	if m.MaxRank() != 9 {
		t.Errorf("MaxRank = %d, want 9", m.MaxRank())
	}
}

// PatternSet round-trip: Add replaces same-key results, Find retrieves
// by key, and SaveFile/LoadPatternFile reproduce the set byte for byte.
func TestPatternSetRoundTrip(t *testing.T) {
	cfg := cluster.Perseus()
	pl, err := cluster.NewPlacement(&cfg, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := PatternSpec{
		Pattern: PatternRail, P: 4, G: 2, K: 2,
		Placement: pl, Sizes: []int{1024},
		Rounds: 3, WarmUp: 1, Seed: 2,
	}
	res, err := RunPattern(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	set := &PatternSet{Cluster: cfg.Name}
	set.Add(res)
	set.Add(res) // same key replaces, not appends
	if len(set.Results) != 1 {
		t.Fatalf("Add should replace same-key results, got %d", len(set.Results))
	}
	if _, ok := set.Find(res.Key()); !ok {
		t.Fatalf("Find(%q) missed", res.Key())
	}
	if _, ok := set.Find("dense:p9g9k9:w1:uni"); ok {
		t.Error("Find on an absent key should miss")
	}
	if _, ok := res.PointFor(4096); ok {
		t.Error("PointFor on an unmeasured size should miss")
	}

	path := t.TempDir() + "/patterns.json"
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPatternFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := set.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("set does not survive a save/load round trip")
	}
	if _, err := LoadPatternFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("loading a missing file should fail")
	}
}

// Satellite regression: the manifest's cluster hash must cover the
// topology spec — the same pattern on a different fabric (or rail
// count) is a different experiment.
func TestPatternManifestHashCoversTopology(t *testing.T) {
	flat := cluster.Perseus()
	hashes := map[string]string{"flat": ClusterHash(&flat)}
	for _, spec := range []string{"fattree:128x32x4", "fattree:128x32x4+2rail", "dragonfly:4x2x4"} {
		topo, nodes, err := cluster.ParseTopology(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := cluster.Perseus().WithTopology(topo, nodes)
		if err != nil {
			t.Fatal(err)
		}
		hashes[spec] = ClusterHash(&cfg)
	}
	seen := map[string]string{}
	for name, h := range hashes {
		if prev, dup := seen[h]; dup {
			t.Errorf("cluster hash of %q and %q collide: %s", name, prev, h)
		}
		seen[h] = name
	}
}
