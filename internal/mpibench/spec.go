// Package mpibench reimplements the paper's MPIBench tool on the
// simulated cluster. Like the original, it measures the time of every
// individual MPI operation — not averages over repetitions — by reading
// each node's drifting local clock and mapping the readings onto a
// common timebase with the ping-pong/linear-regression synchronisation
// from internal/vclock. Its output is a probability distribution
// (histogram) of operation times per message size and per n×p process
// configuration, which PEVPM samples from.
package mpibench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
)

// Op is a benchmarkable MPI operation.
type Op string

// The operations MPIBench measures. Point-to-point ops pair rank i with
// rank i+P/2 and exchange simultaneously, which is how MPIBench loads
// the network to expose contention; collectives run on all ranks.
const (
	OpIsend     Op = "MPI_Isend"
	OpSend      Op = "MPI_Send"
	OpSendrecv  Op = "MPI_Sendrecv"
	OpBarrier   Op = "MPI_Barrier"
	OpBcast     Op = "MPI_Bcast"
	OpReduce    Op = "MPI_Reduce"
	OpAllreduce Op = "MPI_Allreduce"
	OpGather    Op = "MPI_Gather"
	OpScatter   Op = "MPI_Scatter"
	OpAllgather Op = "MPI_Allgather"
	OpAlltoall  Op = "MPI_Alltoall"
)

// PointToPoint reports whether the operation is measured pairwise.
func (op Op) PointToPoint() bool {
	switch op {
	case OpIsend, OpSend, OpSendrecv:
		return true
	}
	return false
}

// Valid reports whether the operation is known.
func (op Op) Valid() bool {
	switch op {
	case OpIsend, OpSend, OpSendrecv, OpBarrier, OpBcast, OpReduce,
		OpAllreduce, OpGather, OpScatter, OpAllgather, OpAlltoall:
		return true
	}
	return false
}

// Spec describes one benchmark run.
type Spec struct {
	Op        Op
	Sizes     []int // message sizes in bytes (one histogram per size)
	Placement cluster.Placement

	// Repetitions is the number of measured operations per size;
	// WarmUp repetitions run first and are discarded.
	Repetitions int
	WarmUp      int

	// BinWidth is the histogram bin width in seconds. The paper notes
	// PEVPM's residual error comes from this granularity.
	BinWidth float64

	// SyncProbes is the number of clock-sync exchanges per node with the
	// reference node, run both before and after the measurements.
	SyncProbes int

	// BarrierEvery realigns the point-to-point pairs with a barrier
	// every N repetitions (default 4). Alignment recreates the
	// synchronized bursts data-parallel programs produce; on networks
	// whose message time is smaller than the barrier's own exit skew,
	// raise it so steady-state behaviour dominates the measurement.
	BarrierEvery int

	// PerfectClocks replaces the drifting node clocks with ideal ones
	// (zero offset, skew and read jitter). The sync protocol still runs;
	// this isolates how much of a measured distribution's width is
	// genuine versus clock-synchronisation error.
	PerfectClocks bool

	// Faults, when non-nil, perturbs the simulated cluster with the given
	// schedule for the whole run (including warm-up and clock sync). The
	// schedule is plain data: benchmarking under faults stays exactly as
	// reproducible as the healthy run.
	Faults *faults.Schedule

	// Seed drives all simulation randomness.
	Seed uint64

	// Workers is the number of goroutines RunSweep spreads its
	// placement cells over. Zero or one runs serially; any count
	// produces bit-identical results because each cell owns its engine
	// and seed and the merge is in placement order.
	Workers int
}

// sweepWorkers resolves Workers for RunSweep: the zero value stays
// serial so existing single-threaded callers are unaffected.
func (s Spec) sweepWorkers() int {
	if s.Workers <= 0 {
		return 1
	}
	return s.Workers
}

// Defaults fills unset fields with sensible values.
func (s Spec) Defaults() Spec {
	if s.Repetitions == 0 {
		s.Repetitions = 300
	}
	if s.WarmUp == 0 {
		s.WarmUp = 20
	}
	if s.BinWidth == 0 {
		s.BinWidth = 5e-6
	}
	if s.SyncProbes == 0 {
		s.SyncProbes = 40
	}
	if s.BarrierEvery == 0 {
		s.BarrierEvery = 4
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{0, 64, 256, 1024, 4096, 16384, 65536}
	}
	return s
}

// Validate reports the first problem with the spec.
func (s Spec) Validate(cfg *cluster.Config) error {
	if !s.Op.Valid() {
		return fmt.Errorf("mpibench: unknown op %q", s.Op)
	}
	if _, err := cluster.NewPlacement(cfg, s.Placement.NodeCount, s.Placement.PerNode); err != nil {
		return err
	}
	if s.Op.PointToPoint() && s.Placement.NumProcs()%2 != 0 {
		return fmt.Errorf("mpibench: point-to-point op %s needs an even process count, got %d",
			s.Op, s.Placement.NumProcs())
	}
	if s.Op.PointToPoint() && s.Placement.NumProcs() < 2 {
		return fmt.Errorf("mpibench: point-to-point op %s needs at least 2 processes", s.Op)
	}
	if s.Repetitions <= 0 || s.WarmUp < 0 {
		return fmt.Errorf("mpibench: repetitions %d / warmup %d invalid", s.Repetitions, s.WarmUp)
	}
	if s.BinWidth <= 0 {
		return fmt.Errorf("mpibench: bin width %v invalid", s.BinWidth)
	}
	if s.SyncProbes < 4 {
		return fmt.Errorf("mpibench: need at least 4 sync probes, got %d", s.SyncProbes)
	}
	if s.BarrierEvery < 1 {
		return fmt.Errorf("mpibench: BarrierEvery %d invalid", s.BarrierEvery)
	}
	for _, size := range s.Sizes {
		if size < 0 {
			return fmt.Errorf("mpibench: negative message size %d", size)
		}
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("mpibench: no message sizes")
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("mpibench: %w", err)
	}
	return nil
}
