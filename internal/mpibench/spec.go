// Package mpibench reimplements the paper's MPIBench tool on the
// simulated cluster. Like the original, it measures the time of every
// individual MPI operation — not averages over repetitions — by reading
// each node's drifting local clock and mapping the readings onto a
// common timebase with the ping-pong/linear-regression synchronisation
// from internal/vclock. Its output is a probability distribution
// (histogram) of operation times per message size and per n×p process
// configuration, which PEVPM samples from.
package mpibench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
)

// Op is a benchmarkable MPI operation.
type Op string

// The operations MPIBench measures. Point-to-point ops pair rank i with
// rank i+P/2 and exchange simultaneously, which is how MPIBench loads
// the network to expose contention; collectives run on all ranks.
const (
	OpIsend     Op = "MPI_Isend"
	OpSend      Op = "MPI_Send"
	OpSendrecv  Op = "MPI_Sendrecv"
	OpBarrier   Op = "MPI_Barrier"
	OpBcast     Op = "MPI_Bcast"
	OpReduce    Op = "MPI_Reduce"
	OpAllreduce Op = "MPI_Allreduce"
	OpGather    Op = "MPI_Gather"
	OpScatter   Op = "MPI_Scatter"
	OpAllgather Op = "MPI_Allgather"
	OpAlltoall  Op = "MPI_Alltoall"
)

// PointToPoint reports whether the operation is measured pairwise.
func (op Op) PointToPoint() bool {
	switch op {
	case OpIsend, OpSend, OpSendrecv:
		return true
	}
	return false
}

// Valid reports whether the operation is known.
func (op Op) Valid() bool {
	switch op {
	case OpIsend, OpSend, OpSendrecv, OpBarrier, OpBcast, OpReduce,
		OpAllreduce, OpGather, OpScatter, OpAllgather, OpAlltoall:
		return true
	}
	return false
}

// Spec describes one benchmark run.
type Spec struct {
	Op        Op
	Sizes     []int // message sizes in bytes (one histogram per size)
	Placement cluster.Placement

	// Repetitions is the number of measured operations per size;
	// WarmUp repetitions run first and are discarded.
	Repetitions int
	WarmUp      int

	// BinWidth is the histogram bin width in seconds. The paper notes
	// PEVPM's residual error comes from this granularity.
	BinWidth float64

	// SyncProbes is the number of clock-sync exchanges per node with the
	// reference node, run both before and after the measurements.
	SyncProbes int

	// BarrierEvery realigns the point-to-point pairs with a barrier
	// every N repetitions (default 4). Alignment recreates the
	// synchronized bursts data-parallel programs produce; on networks
	// whose message time is smaller than the barrier's own exit skew,
	// raise it so steady-state behaviour dominates the measurement.
	BarrierEvery int

	// PerfectClocks replaces the drifting node clocks with ideal ones
	// (zero offset, skew and read jitter). The sync protocol still runs;
	// this isolates how much of a measured distribution's width is
	// genuine versus clock-synchronisation error.
	PerfectClocks bool

	// Faults, when non-nil, perturbs the simulated cluster with the given
	// schedule for the whole run (including warm-up and clock sync). The
	// schedule is plain data: benchmarking under faults stays exactly as
	// reproducible as the healthy run.
	Faults *faults.Schedule

	// Estimates, when true, attaches robust estimators and confidence
	// intervals to every Point (Point.Est): a Student-t CI on the mean,
	// a percentile-bootstrap CI on the chosen quantile, and the
	// median/trimmed-mean/MAD trio. The bootstrap draws from an RNG
	// substream derived via sim.SubSeed from the spec itself, so
	// interval output is bit-identical at any sweep worker count.
	// Adaptive runs (Target != nil) always compute estimates.
	Estimates bool

	// Target, when non-nil, enables adaptive stopping: Run executes
	// batches of repetitions (each batch an independent simulation with
	// a sub-seeded engine) until the confidence interval on the chosen
	// quantile is narrower than the target relative width on every
	// message size, or the batch cap is hit. See docs/BENCHMARKING.md.
	Target *Target

	// Seed drives all simulation randomness.
	Seed uint64

	// Workers is the number of goroutines RunSweep spreads its
	// placement cells over. Zero or one runs serially; any count
	// produces bit-identical results because each cell owns its engine
	// and seed and the merge is in placement order.
	Workers int
}

// Target is the experimental-design stopping rule for adaptive runs:
// keep measuring until the chosen quantile is known to the requested
// relative precision. "MPI Benchmarking Revisited" (Hunold &
// Carpen-Amarie) shows fixed arbitrary repetition counts either waste
// time or under-sample; the rule here replaces them with an explicit
// precision contract plus a hard cap.
type Target struct {
	// Quantile is the quantile whose CI drives stopping (0 defaults to
	// 0.5, the median — robust against retransmission-timeout tails).
	Quantile float64 `json:"quantile"`

	// RelWidth is the stopping threshold: stop once the CI half-width
	// divided by the point estimate is at or below this on every
	// message size. Required (no default).
	RelWidth float64 `json:"rel_width"`

	// Level is the confidence level of the interval (default 0.95).
	Level float64 `json:"level"`

	// Batch is the number of measured repetitions per batch (default
	// Spec.Repetitions). Each batch is an independent simulation seeded
	// from sim.SubSeed(Spec.Seed, "adaptive:batch<i>"), so an adaptive
	// run is exactly as reproducible as a fixed-count one.
	Batch int `json:"batch"`

	// MaxBatches caps the run (default 8): a distribution too wide to
	// pin down stops here and reports StopReason "max-batches".
	MaxBatches int `json:"max_batches"`

	// Resamples is the bootstrap resample count per CI (default 200).
	Resamples int `json:"resamples"`

	// DriftThreshold flags warmup non-stationarity: if the Welch drift
	// statistic (stats.DriftStat) of the first batch's per-repetition
	// series exceeds it, the Result is marked DriftFlagged — the warmup
	// was too short and early measurements still carry transient state.
	// Default 4.
	DriftThreshold float64 `json:"drift_threshold"`
}

// withDefaults resolves the zero values against the spec.
func (t Target) withDefaults(s Spec) Target {
	if t.Quantile == 0 {
		t.Quantile = 0.5
	}
	if t.Level == 0 {
		t.Level = 0.95
	}
	if t.Batch == 0 {
		t.Batch = s.Repetitions
	}
	if t.MaxBatches == 0 {
		t.MaxBatches = 8
	}
	if t.Resamples == 0 {
		t.Resamples = 200
	}
	if t.DriftThreshold == 0 {
		t.DriftThreshold = 4
	}
	return t
}

// sweepWorkers resolves Workers for RunSweep: the zero value stays
// serial so existing single-threaded callers are unaffected.
func (s Spec) sweepWorkers() int {
	if s.Workers <= 0 {
		return 1
	}
	return s.Workers
}

// Defaults fills unset fields with sensible values.
func (s Spec) Defaults() Spec {
	if s.Repetitions == 0 {
		s.Repetitions = 300
	}
	if s.WarmUp == 0 && s.Target == nil {
		// Adaptive runs get no implicit warmup: the stopping rule's
		// drift check interprets the warmup length, so the caller must
		// choose it consciously (Validate rejects zero).
		s.WarmUp = 20
	}
	if s.BinWidth == 0 {
		s.BinWidth = 5e-6
	}
	if s.SyncProbes == 0 {
		s.SyncProbes = 40
	}
	if s.BarrierEvery == 0 {
		s.BarrierEvery = 4
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{0, 64, 256, 1024, 4096, 16384, 65536}
	}
	return s
}

// Validate reports the first problem with the spec.
func (s Spec) Validate(cfg *cluster.Config) error {
	if !s.Op.Valid() {
		return fmt.Errorf("mpibench: unknown op %q", s.Op)
	}
	if _, err := cluster.NewPlacement(cfg, s.Placement.NodeCount, s.Placement.PerNode); err != nil {
		return err
	}
	if s.Op.PointToPoint() && s.Placement.NumProcs()%2 != 0 {
		return fmt.Errorf("mpibench: point-to-point op %s needs an even process count, got %d",
			s.Op, s.Placement.NumProcs())
	}
	if s.Op.PointToPoint() && s.Placement.NumProcs() < 2 {
		return fmt.Errorf("mpibench: point-to-point op %s needs at least 2 processes", s.Op)
	}
	if s.Repetitions <= 0 || s.WarmUp < 0 {
		return fmt.Errorf("mpibench: repetitions %d / warmup %d invalid", s.Repetitions, s.WarmUp)
	}
	if s.BinWidth <= 0 {
		return fmt.Errorf("mpibench: bin width %v invalid", s.BinWidth)
	}
	if s.SyncProbes < 4 {
		return fmt.Errorf("mpibench: need at least 4 sync probes, got %d", s.SyncProbes)
	}
	if s.BarrierEvery < 1 {
		return fmt.Errorf("mpibench: BarrierEvery %d invalid", s.BarrierEvery)
	}
	for _, size := range s.Sizes {
		if size < 0 {
			return fmt.Errorf("mpibench: negative message size %d", size)
		}
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("mpibench: no message sizes")
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("mpibench: %w", err)
	}
	if s.Target != nil {
		if s.WarmUp == 0 {
			return fmt.Errorf("mpibench: adaptive stopping requires WarmUp > 0 — " +
				"the warmup-drift check compares the halves of the measured series, " +
				"which is only meaningful after an explicit warmup phase")
		}
		t := *s.Target
		if t.RelWidth <= 0 {
			return fmt.Errorf("mpibench: adaptive target needs RelWidth > 0, got %v", t.RelWidth)
		}
		if t.Quantile < 0 || t.Quantile >= 1 {
			return fmt.Errorf("mpibench: adaptive target quantile %v outside [0, 1)", t.Quantile)
		}
		if t.Level < 0 || t.Level >= 1 {
			return fmt.Errorf("mpibench: adaptive target level %v outside [0, 1)", t.Level)
		}
		if t.Batch < 0 || t.MaxBatches < 0 || t.Resamples < 0 || t.DriftThreshold < 0 {
			return fmt.Errorf("mpibench: adaptive target has negative knobs: %+v", t)
		}
	}
	return nil
}
