package mpibench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/experiments/sweep"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Clock-sync message tags (user context, far above benchmark tags).
const (
	tagSyncGo    = 1 << 20
	tagSyncProbe = tagSyncGo + 1
	tagSyncReply = tagSyncGo + 2
	tagMeasure   = 5
)

// Realistic clock error parameters: offsets up to ±2 s, drift up to
// ±50 ppm, 1 µs read granularity — the situation MPIBench's global
// clock synchronisation has to overcome.
const (
	clockMaxOffset = 2.0
	clockMaxSkew   = 50e-6
	clockJitter    = 1e-6
)

// Run executes one benchmark on a freshly simulated cluster and returns
// the measured distributions. With Spec.Target set it runs adaptively:
// batches of repetitions until the CI width target is met (see
// runAdaptive); otherwise a single fixed-count batch.
func Run(cfg cluster.Config, spec Spec) (*Result, error) {
	spec = spec.Defaults()
	if spec.Op == OpBarrier {
		spec.Sizes = []int{0} // Barrier has no message size; measure once
	}
	if err := spec.Validate(&cfg); err != nil {
		return nil, err
	}
	if spec.Target != nil {
		return runAdaptive(cfg, spec)
	}
	res, raw, err := runBatch(cfg, spec)
	if err != nil {
		return nil, err
	}
	res.Manifest = newManifest(&cfg, spec)
	if spec.Estimates {
		attachEstimates(res, raw.samples, spec, estDefaults(spec))
		markDrift(res, raw.perRep, defaultDriftThreshold)
	}
	return res, nil
}

// rawRun carries a batch's raw measured durations before they are
// folded into histograms: per size, every positive per-rank duration in
// recording order, plus the per-repetition mean series the
// warmup-stationarity drift check runs on.
type rawRun struct {
	samples [][]float64 // [size][observation] seconds
	perRep  [][]float64 // [size][measured repetition] mean across ranks
}

// runBatch executes one simulated benchmark (the fixed-count core Run
// has always had) and additionally returns the raw samples. The spec
// must already have defaults applied and be validated.
func runBatch(cfg cluster.Config, spec Spec) (*Result, *rawRun, error) {
	e := sim.NewEngine(spec.Seed)
	net := netsim.New(e, cfg)
	w := mpi.NewWorld(e, net, spec.Placement)
	w.SetComputeModel(cluster.ComputeModel{}) // benchmarks do no compute
	if spec.Faults != nil {
		w.SetFaults(spec.Faults)
	}

	pl := spec.Placement
	procs := pl.NumProcs()
	maxOffset, maxSkew, jitter := clockMaxOffset, clockMaxSkew, clockJitter
	if spec.PerfectClocks {
		maxOffset, maxSkew, jitter = 0, 0, 0
	}
	clocks := vclock.NewClockSet(e, pl.NodeCount, maxOffset, maxSkew, jitter)

	total := spec.WarmUp + spec.Repetitions
	nSizes := len(spec.Sizes)

	// Raw local-clock readings, converted to global time after the run.
	sendStarts := make([][][]float64, procs)
	recvEnds := make([][][]float64, procs)
	for r := range sendStarts {
		sendStarts[r] = make([][]float64, nSizes)
		recvEnds[r] = make([][]float64, nSizes)
		for s := range sendStarts[r] {
			sendStarts[r][s] = make([]float64, total)
			recvEnds[r][s] = make([]float64, total)
		}
	}
	probes := make([][]vclock.Probe, pl.NodeCount)

	run := newRunner(w, clocks, spec, sendStarts, recvEnds, probes)
	w.Launch(run.program)
	// Unwind rank goroutines even when the run aborts (deadlock, lint
	// panic): sweeps execute many engines concurrently and must not
	// accumulate parked goroutines. After a clean Wait this is a no-op.
	defer w.Shutdown()
	if _, err := w.Wait(); err != nil {
		return nil, nil, fmt.Errorf("mpibench: %s on %s: %w", spec.Op, pl, err)
	}

	// Fit one clock correction per node; node 0 holds the reference.
	corr := make([]vclock.Correction, pl.NodeCount)
	worstResidual := 0.0
	for node := 1; node < pl.NodeCount; node++ {
		c, err := vclock.Estimate(probes[node])
		if err != nil {
			return nil, nil, fmt.Errorf("mpibench: syncing node %d: %w", node, err)
		}
		corr[node] = c
		if c.Residual > worstResidual {
			worstResidual = c.Residual
		}
	}

	// Build one histogram per size from the per-operation global times.
	res := &Result{
		Cluster:      cfg.Name,
		Op:           spec.Op,
		Placement:    pl.String(),
		Procs:        procs,
		BinWidth:     spec.BinWidth,
		SyncResidual: worstResidual,
	}
	nc := net.Stats()
	res.Retries = nc.Retries
	res.FaultDrops = nc.FaultDrops
	res.Metrics = e.Metrics().Snapshot()
	if spec.Faults != nil {
		res.Scenario = spec.Faults.Name
	}
	raw := &rawRun{
		samples: make([][]float64, nSizes),
		perRep:  make([][]float64, nSizes),
	}
	half := procs / 2
	for si, size := range spec.Sizes {
		h := stats.NewHistogram(spec.BinWidth)
		var maxH *stats.Histogram
		if !spec.Op.PointToPoint() {
			// Collectives also record the per-repetition slowest rank —
			// the completion of the operation as a whole, measurable
			// only because every rank is timed individually.
			maxH = stats.NewHistogram(spec.BinWidth)
		}
		raw.samples[si] = make([]float64, 0, spec.Repetitions*procs)
		raw.perRep[si] = make([]float64, 0, spec.Repetitions)
		for rep := spec.WarmUp; rep < total; rep++ {
			slowest := 0.0
			repSum, repN := 0.0, 0
			for rank := 0; rank < procs; rank++ {
				myNode := pl.LogicalNode(rank)
				end := corr[myNode].Global(recvEnds[rank][si][rep])
				var begin float64
				if spec.Op.PointToPoint() {
					partner := (rank + half) % procs
					begin = corr[pl.LogicalNode(partner)].Global(sendStarts[partner][si][rep])
				} else {
					begin = corr[myNode].Global(sendStarts[rank][si][rep])
				}
				if d := end - begin; d > 0 {
					h.Add(d)
					raw.samples[si] = append(raw.samples[si], d)
					repSum += d
					repN++
					if d > slowest {
						slowest = d
					}
				}
			}
			if maxH != nil && slowest > 0 {
				maxH.Add(slowest)
			}
			if repN > 0 {
				raw.perRep[si] = append(raw.perRep[si], repSum/float64(repN))
			}
		}
		res.Points = append(res.Points, Point{Size: size, Hist: h, MaxHist: maxH})
		res.Samples = h.Count()
	}
	return res, raw, nil
}

// runner carries the state the per-rank benchmark program needs.
type runner struct {
	w      *mpi.World
	clocks []*vclock.LocalClock
	spec   Spec

	sendStarts, recvEnds [][][]float64
	probes               [][]vclock.Probe
}

func newRunner(w *mpi.World, clocks []*vclock.LocalClock, spec Spec,
	sendStarts, recvEnds [][][]float64, probes [][]vclock.Probe) *runner {
	return &runner{
		w: w, clocks: clocks, spec: spec,
		sendStarts: sendStarts, recvEnds: recvEnds, probes: probes,
	}
}

// read returns the local clock reading of the calling rank's node.
func (run *runner) read(c *mpi.Comm) float64 {
	return run.clocks[run.w.Placement().LogicalNode(c.Rank())].Read(c.Now())
}

// program is what every rank executes: sync, measure, sync again.
func (run *runner) program(c *mpi.Comm) {
	run.syncPhase(c)
	c.Barrier()
	run.measure(c)
	c.Barrier()
	run.syncPhase(c)
}

// syncPhase runs the MPIBench clock synchronisation: the first rank of
// every node exchanges timestamped probes with rank 0 (the reference
// node); pre- and post-run probes combine into one drift-corrected fit.
func (run *runner) syncPhase(c *mpi.Comm) {
	pl := run.w.Placement()
	if c.Rank() == 0 {
		// Serve every probing node, one probe at a time, round-robin.
		// The "go" token keeps the network quiet during each exchange:
		// a client only probes once the server is dedicated to it, so
		// probe paths are symmetric — the property the midpoint offset
		// estimate depends on.
		for round := 0; round < run.spec.SyncProbes; round++ {
			for node := 1; node < pl.NodeCount; node++ {
				client := node * pl.PerNode // first rank on that node
				c.Send(client, tagSyncGo, 1)
				c.Recv(client, tagSyncProbe)
				c.SendData(client, tagSyncReply, 8, run.read(c))
			}
		}
		return
	}
	if pl.SlotOf(c.Rank()) != 0 {
		return // only one rank per node probes; others idle until the barrier
	}
	node := pl.LogicalNode(c.Rank())
	for round := 0; round < run.spec.SyncProbes; round++ {
		c.Recv(0, tagSyncGo)
		t0 := run.read(c)
		c.Send(0, tagSyncProbe, 8)
		st := c.Recv(0, tagSyncReply)
		t1 := run.read(c)
		run.probes[node] = append(run.probes[node], vclock.Probe{
			LocalSend: t0,
			Remote:    st.Data.(float64),
			LocalRecv: t1,
		})
	}
}

// measure runs the benchmark loop for every message size.
func (run *runner) measure(c *mpi.Comm) {
	total := run.spec.WarmUp + run.spec.Repetitions
	for si, size := range run.spec.Sizes {
		c.Barrier()
		for rep := 0; rep < total; rep++ {
			if run.spec.Op.PointToPoint() {
				run.pointToPoint(c, si, size, rep)
			} else {
				run.collective(c, si, size, rep)
			}
		}
	}
}

// pointToPoint measures one pairwise exchange: every rank records when
// it starts its send and when its receive completes; the one-way time of
// each message is reconstructed afterwards on the global clock. The
// pairs realign on a barrier every Spec.BarrierEvery repetitions: the
// mix of aligned bursts (what a data-parallel program produces at
// iteration boundaries) and free-running repetitions (what a pipelined
// program produces) is what makes one set of distributions transfer to
// both kinds of application.
func (run *runner) pointToPoint(c *mpi.Comm, si, size, rep int) {
	if rep%run.spec.BarrierEvery == 0 {
		c.Barrier()
	}
	partner := (c.Rank() + c.Size()/2) % c.Size()
	rr := c.Irecv(partner, tagMeasure)
	run.sendStarts[c.Rank()][si][rep] = run.read(c)
	switch run.spec.Op {
	case OpIsend:
		sr := c.Isend(partner, tagMeasure, size)
		c.Waitall(sr, rr)
	case OpSend:
		c.Send(partner, tagMeasure, size)
		c.Wait(rr)
	case OpSendrecv:
		sr := c.Isend(partner, tagMeasure, size)
		c.Waitall(rr, sr)
	}
	run.recvEnds[c.Rank()][si][rep] = run.read(c)
}

// collective measures one collective operation from entry to per-rank
// completion, with a barrier separating repetitions so entries align.
func (run *runner) collective(c *mpi.Comm, si, size, rep int) {
	c.Barrier()
	run.sendStarts[c.Rank()][si][rep] = run.read(c)
	switch run.spec.Op {
	case OpBarrier:
		c.Barrier()
	case OpBcast:
		c.Bcast(0, size)
	case OpReduce:
		c.Reduce(0, size)
	case OpAllreduce:
		c.Allreduce(size)
	case OpGather:
		c.Gather(0, size)
	case OpScatter:
		c.Scatter(0, size)
	case OpAllgather:
		c.Allgather(size)
	case OpAlltoall:
		c.Alltoall(size)
	}
	run.recvEnds[c.Rank()][si][rep] = run.read(c)
}

// RunSweep benchmarks one op across several placements, returning a Set
// (the performance database for PEVPM). Each placement is an independent
// sweep cell: it builds its own cluster and engine with a seed derived
// from (spec.Seed, cell index), and cells execute across spec.Workers
// goroutines. Results merge into the Set in placement order, so the Set
// is bit-identical for every worker count. (The additive per-cell seed
// derivation predates sim.SubSeed and is kept so recorded figure data
// stays reproducible.)
func RunSweep(cfg cluster.Config, spec Spec, placements []cluster.Placement) (*Set, error) {
	return RunSweepObserved(cfg, spec, placements, nil)
}

// RunSweepObserved is RunSweep that additionally folds every cell's
// instrument snapshot — plus the worker pool's own counters — into agg,
// in placement order on the calling goroutine. Pass nil to skip
// metrics; the benchmark results are identical either way.
func RunSweepObserved(cfg cluster.Config, spec Spec, placements []cluster.Placement, agg *metrics.Aggregate) (*Set, error) {
	var obs *sweep.Observer
	if agg != nil {
		obs = sweep.NewObserver()
	}
	results, err := sweep.MapObserved(spec.sweepWorkers(), len(placements), obs, func(i int) (*Result, error) {
		s := spec
		s.Placement = placements[i]
		s.Seed = spec.Seed + uint64(i)*1000003
		return Run(cfg, s)
	})
	if err != nil {
		return nil, err
	}
	set := &Set{Cluster: cfg.Name}
	for _, r := range results {
		set.Add(r)
		if agg != nil {
			agg.Merge(r.Metrics)
		}
	}
	if agg != nil {
		agg.Merge(obs.Snapshot())
	}
	return set, nil
}
