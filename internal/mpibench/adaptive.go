package mpibench

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// defaultDriftThreshold flags warmup non-stationarity for non-adaptive
// runs with Estimates on; adaptive runs take it from Target.
const defaultDriftThreshold = 4.0

// estConfig is the resolved set of estimate knobs attachEstimates uses:
// which quantile to interval, at what confidence level, with how many
// bootstrap resamples.
type estConfig struct {
	quantile  float64
	level     float64
	resamples int
}

// estDefaults resolves the estimate knobs for a spec: adaptive runs
// inherit them from the stopping rule, plain Estimates runs get the
// median at 95% with 200 resamples.
func estDefaults(spec Spec) estConfig {
	c := estConfig{quantile: 0.5, level: 0.95, resamples: 200}
	if spec.Target != nil {
		t := spec.Target.withDefaults(spec)
		c.quantile = t.Quantile
		c.level = t.Level
		c.resamples = t.Resamples
	}
	return c
}

// runAdaptive executes batches of repetitions until the bootstrap CI on
// the target quantile is narrower than Target.RelWidth on every message
// size, or Target.MaxBatches is hit. Every batch is an independent
// simulation with a sub-seeded engine, and every random draw — batch
// seeds, CI bootstraps, final estimates — comes from a named substream
// of Spec.Seed, so an adaptive run is exactly as reproducible as a
// fixed-count one and bit-identical at any sweep worker count. The spec
// arrives with defaults applied and validated.
func runAdaptive(cfg cluster.Config, spec Spec) (*Result, error) {
	t := spec.Target.withDefaults(spec)
	boot := stats.NewBootstrap(t.Resamples)
	agg := metrics.NewAggregate()

	var (
		merged      *Result
		samples     [][]float64 // accumulated across batches, per size
		firstPerRep [][]float64 // first batch's series for the drift check
		batches     int
		stopReason  = StopMaxBatches
	)
	for b := 0; b < t.MaxBatches; b++ {
		bs := spec
		bs.Target = nil
		bs.Estimates = false
		bs.Repetitions = t.Batch
		bs.Seed = sim.SubSeed(spec.Seed, fmt.Sprintf("adaptive:batch%d", b))
		res, raw, err := runBatch(cfg, bs)
		if err != nil {
			return nil, fmt.Errorf("mpibench: adaptive batch %d: %w", b, err)
		}
		batches = b + 1
		agg.Merge(res.Metrics)
		if merged == nil {
			merged = res
			samples = raw.samples
			firstPerRep = raw.perRep
		} else {
			mergeResults(merged, res)
			for si := range samples {
				samples[si] = append(samples[si], raw.samples[si]...)
			}
		}
		if targetMet(samples, t, spec.Seed, b, boot) {
			stopReason = StopTargetMet
			break
		}
	}

	merged.Metrics = agg.Snapshot()
	m := newManifest(&cfg, spec)
	m.Adaptive = &t
	m.Batches = batches
	m.StopReason = stopReason
	merged.Manifest = m

	attachEstimates(merged, samples, spec, estConfig{
		quantile: t.Quantile, level: t.Level, resamples: t.Resamples,
	})
	markDrift(merged, firstPerRep, t.DriftThreshold)
	return merged, nil
}

// targetMet checks the stopping rule after batch b: every size's
// bootstrap CI on the target quantile must have relative half-width at
// or below Target.RelWidth. The bootstrap RNG is keyed on (batch, size)
// so the decision sequence is part of the reproducible record.
func targetMet(samples [][]float64, t Target, seed uint64, b int, boot *stats.Bootstrap) bool {
	for si, xs := range samples {
		if len(xs) < 2 {
			return false // cannot certify precision from nothing
		}
		rng := sim.NewCellRNG(seed, fmt.Sprintf("ci:batch%d:size%d", b, si))
		iv := boot.QuantileCI(xs, t.Quantile, t.Level, rng)
		if iv.RelHalfWidth() > t.RelWidth {
			return false
		}
	}
	return true
}

// mergeResults folds a later batch's result into the accumulated one.
// Distributions merge bin-exactly (equal BinWidth by construction),
// residuals take the worst case, counters add.
func mergeResults(dst, src *Result) {
	for i := range dst.Points {
		dst.Points[i].Hist.Merge(src.Points[i].Hist)
		if dst.Points[i].MaxHist != nil && src.Points[i].MaxHist != nil {
			dst.Points[i].MaxHist.Merge(src.Points[i].MaxHist)
		}
	}
	if len(dst.Points) > 0 {
		dst.Samples = dst.Points[len(dst.Points)-1].Hist.Count()
	}
	if src.SyncResidual > dst.SyncResidual {
		dst.SyncResidual = src.SyncResidual
	}
	dst.Retries += src.Retries
	dst.FaultDrops += src.FaultDrops
}

// attachEstimates computes each Point's Estimates from the raw samples:
// a Student-t CI on the mean, a percentile-bootstrap CI on the chosen
// quantile, and the median/trimmed-mean/MAD robust trio. The bootstrap
// RNG is a named substream of the spec seed, independent of worker
// count and of everything the simulation itself drew.
func attachEstimates(res *Result, samples [][]float64, spec Spec, c estConfig) {
	boot := stats.NewBootstrap(c.resamples)
	for si := range res.Points {
		res.Points[si].Est = estimateSamples(samples[si], spec.Seed,
			fmt.Sprintf("est:size%d", si), c, boot)
	}
}

// estimateSamples computes one Estimates block from a raw sample slice.
// The bootstrap RNG is the named substream of the run seed, so the
// block is bit-identical at any sweep worker count. Shared between the
// op benchmarks (attachEstimates) and the pattern engine.
func estimateSamples(xs []float64, seed uint64, key string, c estConfig, boot *stats.Bootstrap) *Estimates {
	if len(xs) == 0 {
		return nil
	}
	var sum stats.Summary
	for _, x := range xs {
		sum.Add(x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	scratch := make([]float64, 0, len(sorted))
	rng := sim.NewCellRNG(seed, key)
	return &Estimates{
		Mean:        stats.StudentCI(sum, c.level),
		Quantile:    c.quantile,
		QuantileCI:  boot.QuantileCI(xs, c.quantile, c.level, rng),
		Median:      stats.Median(sorted),
		TrimmedMean: stats.TrimmedMean(sorted, 0.1),
		MAD:         stats.MAD(sorted, scratch),
	}
}

// markDrift records the worst per-size warmup-drift statistic on the
// result and flags it when it exceeds the threshold — the signal that
// the warmup phase was too short and the measured series is still
// settling. See stats.DriftStat for the statistic itself.
func markDrift(res *Result, perRep [][]float64, threshold float64) {
	worst := 0.0
	for _, series := range perRep {
		if d := stats.DriftStat(series); d > worst {
			worst = d
		}
	}
	res.WarmupDrift = worst
	res.DriftFlagged = worst > threshold
}
