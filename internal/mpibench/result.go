package mpibench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Point is the measured distribution for one message size.
type Point struct {
	Size int              `json:"size"`
	Hist *stats.Histogram `json:"hist"`

	// MaxHist, present for collective operations, is the distribution of
	// the per-repetition slowest rank — the completion of the collective
	// as a whole, which is what gates the next step of an iterative
	// program. Only a benchmark that times every rank individually (the
	// paper's globally-synchronised-clock design) can measure it.
	MaxHist *stats.Histogram `json:"max_hist,omitempty"`

	// Est carries the robust estimators and confidence intervals for
	// this size, present when the spec asked for them (Spec.Estimates
	// or adaptive stopping).
	Est *Estimates `json:"est,omitempty"`
}

// Estimates summarises one size's sample with interval estimates and
// outlier-robust statistics. The mean CI is normal-theory (Student-t);
// the quantile CI is a percentile bootstrap — quantiles of arbitrary
// benchmark distributions have no usable closed-form interval.
type Estimates struct {
	Mean       stats.Interval `json:"mean"`
	Quantile   float64        `json:"quantile"` // which quantile QuantileCI bounds
	QuantileCI stats.Interval `json:"quantile_ci"`

	// Robust location and scale: a handful of retransmission-timeout
	// outliers moves the mean and std, not these.
	Median      float64 `json:"median"`
	TrimmedMean float64 `json:"trimmed_mean"` // 10% cut from each tail
	MAD         float64 `json:"mad"`          // ×1.4826 ≈ robust σ
}

// Min returns the fastest individual operation observed — the paper's
// contention-free bound.
func (p Point) Min() float64 { return p.Hist.Min() }

// Avg returns the mean individual operation time.
func (p Point) Avg() float64 { return p.Hist.Mean() }

// Result is the output of one benchmark run: per-size distributions of
// individual operation times across all processes.
type Result struct {
	Cluster   string  `json:"cluster"`
	Op        Op      `json:"op"`
	Placement string  `json:"placement"` // n×p notation, e.g. "64x2"
	Procs     int     `json:"procs"`
	BinWidth  float64 `json:"bin_width"`
	Points    []Point `json:"points"`

	// SyncResidual is the worst clock-fit RMS residual across nodes —
	// the measurement noise floor.
	SyncResidual float64 `json:"sync_residual"`
	// Samples is the number of individual timings per size.
	Samples uint64 `json:"samples"`

	// Scenario names the fault schedule the run executed under (empty
	// for the healthy cluster); Retries and FaultDrops carry the
	// network's retransmission and fault-attributed drop counters so
	// perturbed results explain their own tails.
	Scenario   string `json:"scenario,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
	FaultDrops uint64 `json:"fault_drops,omitempty"`

	// Manifest is the reproducibility record: full spec, seed, cluster
	// fingerprint, toolchain and scenario. See manifest.go.
	Manifest Manifest `json:"manifest"`

	// WarmupDrift is the Welch drift statistic of the measured
	// per-repetition series (worst size), computed when estimates are
	// on; DriftFlagged marks it exceeding the configured threshold —
	// the warmup was too short and the measurement is not stationary.
	WarmupDrift  float64 `json:"warmup_drift,omitempty"`
	DriftFlagged bool    `json:"drift_flagged,omitempty"`

	// Metrics is the run's full instrument snapshot (sim kernel, netsim,
	// mpi). Excluded from the saved Set JSON: observability files are
	// exported separately so recorded figure databases stay stable.
	Metrics metrics.Snapshot `json:"-"`
}

// PointFor returns the distribution for an exact message size.
func (r *Result) PointFor(size int) (Point, bool) {
	for _, p := range r.Points {
		if p.Size == size {
			return p, true
		}
	}
	return Point{}, false
}

// Set is a collection of results across operations and placements — the
// "performance database" PEVPM draws from.
type Set struct {
	Cluster string    `json:"cluster"`
	Results []*Result `json:"results"`
}

// Add appends a result, replacing any previous result for the same
// (op, placement) pair.
func (s *Set) Add(r *Result) {
	for i, old := range s.Results {
		if old.Op == r.Op && old.Placement == r.Placement {
			s.Results[i] = r
			return
		}
	}
	s.Results = append(s.Results, r)
}

// Find returns the result for an (op, placement) pair.
func (s *Set) Find(op Op, placement string) (*Result, bool) {
	for _, r := range s.Results {
		if r.Op == op && r.Placement == placement {
			return r, true
		}
	}
	return nil, false
}

// Placements lists the distinct placements present for an op, sorted by
// total process count.
func (s *Set) Placements(op Op) []string {
	var out []string
	procs := map[string]int{}
	for _, r := range s.Results {
		if r.Op == op {
			out = append(out, r.Placement)
			procs[r.Placement] = r.Procs
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if procs[out[i]] != procs[out[j]] {
			return procs[out[i]] < procs[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// WriteJSON serialises the set.
func (s *Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadJSON deserialises a set written by WriteJSON.
func ReadJSON(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("mpibench: decoding result set: %w", err)
	}
	return &s, nil
}

// SaveFile writes the set to a file.
func (s *Set) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a set from a file.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
