package mpibench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/mpi"
)

// This file is the group-to-group pattern vocabulary (CommBench's
// Rail/Fan/Dense): arbitrary sparse point-to-point matrices plus the
// (p, g, k) builders that generate them. The flat point-to-point and
// collective suite in spec.go measures a whole machine at once; the
// patterns here instead load a *structured* subset of the network —
// the inter-leaf and inter-group links a hierarchical topology
// actually bottlenecks on — so aggregate behaviour becomes
// attributable to specific fabric levels.

// Pattern names understood by BuildPattern and PatternSpec.
const (
	PatternRail   = "rail"   // rank i of group a -> rank i of group b, i < k
	PatternFan    = "fan"    // group a's lead rank -> first k ranks of group b
	PatternDense  = "dense"  // first k ranks of a -> first k ranks of b, all pairs
	PatternCustom = "custom" // caller-supplied Matrix, no builder
)

// Direction selects which ordered group pairs a builder connects.
type Direction string

const (
	// Unidirectional: group 0 sends to every other group.
	Unidirectional Direction = "uni"
	// Bidirectional: group 0 exchanges with every other group, both ways.
	Bidirectional Direction = "bi"
	// Omnidirectional: every ordered pair of distinct groups.
	Omnidirectional Direction = "omni"
)

// Valid reports whether the direction is known.
func (d Direction) Valid() bool {
	switch d {
	case Unidirectional, Bidirectional, Omnidirectional:
		return true
	}
	return false
}

// ParseDirection parses a direction flag value.
func ParseDirection(s string) (Direction, error) {
	d := Direction(s)
	if !d.Valid() {
		return "", fmt.Errorf("mpibench: unknown direction %q (want uni, bi or omni)", s)
	}
	return d, nil
}

// Pair is one directed sender/receiver edge of a pattern matrix: Count
// messages flow Src -> Dst per window slot of every round.
type Pair struct {
	Src   int `json:"src"`
	Dst   int `json:"dst"`
	Count int `json:"count"`
}

// Matrix is a sparse point-to-point communication matrix: the exact
// set of (sender, receiver, message count) edges one pattern round
// exercises. Pairs stay in insertion order, so a matrix built by the
// deterministic builders is itself deterministic.
type Matrix struct {
	Pairs []Pair `json:"pairs"`
}

// Add registers count messages per window slot from src to dst,
// merging with an existing pair for the same edge.
func (m *Matrix) Add(src, dst, count int) {
	for i := range m.Pairs {
		if m.Pairs[i].Src == src && m.Pairs[i].Dst == dst {
			m.Pairs[i].Count += count
			return
		}
	}
	m.Pairs = append(m.Pairs, Pair{Src: src, Dst: dst, Count: count})
}

// Empty reports whether the matrix has no edges.
func (m Matrix) Empty() bool { return len(m.Pairs) == 0 }

// MessagesPerWindow is the total message count of one window slot.
func (m Matrix) MessagesPerWindow() int {
	n := 0
	for _, p := range m.Pairs {
		n += p.Count
	}
	return n
}

// MaxRank returns the highest rank the matrix names, -1 when empty.
func (m Matrix) MaxRank() int {
	max := -1
	for _, p := range m.Pairs {
		if p.Src > max {
			max = p.Src
		}
		if p.Dst > max {
			max = p.Dst
		}
	}
	return max
}

// Findings validates the matrix against a placement of procs ranks and
// reports every impossible edge as an mpilint-style finding
// (mpi.RulePatternMatrix): ranks outside the placement, self-pairs,
// non-positive counts. An empty slice means the matrix can execute.
func (m Matrix) Findings(procs int) []mpi.Finding {
	var out []mpi.Finding
	add := func(rank int, format string, args ...any) {
		out = append(out, mpi.Finding{
			Severity: mpi.SeverityError,
			Rule:     mpi.RulePatternMatrix,
			Rank:     rank,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for i, p := range m.Pairs {
		if p.Src < 0 || p.Src >= procs {
			add(p.Src, "pair %d (%d->%d) names sender outside the %d-rank placement", i, p.Src, p.Dst, procs)
			continue
		}
		if p.Dst < 0 || p.Dst >= procs {
			add(p.Src, "pair %d (%d->%d) names receiver outside the %d-rank placement", i, p.Src, p.Dst, procs)
			continue
		}
		if p.Src == p.Dst {
			add(p.Src, "pair %d is a self-pair (rank %d)", i, p.Src)
			continue
		}
		if p.Count < 1 {
			add(p.Src, "pair %d (%d->%d) has message count %d", i, p.Src, p.Dst, p.Count)
		}
	}
	return out
}

// BuildPattern assembles the matrix for a named pattern over g groups
// of p consecutive ranks with k participants per group (ranks
// [m*p, m*p+k) of group m). Group pairs come from the direction:
// unidirectional is group 0 -> every other group, bidirectional adds
// the reverse edges, omnidirectional connects every ordered pair.
func BuildPattern(name string, p, g, k int, dir Direction) (Matrix, error) {
	var m Matrix
	if p < 1 || g < 2 || k < 1 || k > p {
		return m, fmt.Errorf("mpibench: pattern %s wants p >= 1, g >= 2, 1 <= k <= p, got p=%d g=%d k=%d",
			name, p, g, k)
	}
	if !dir.Valid() {
		return m, fmt.Errorf("mpibench: pattern %s: unknown direction %q", name, dir)
	}
	between := func(a, b int) error {
		switch name {
		case PatternRail:
			// k parallel rails: participant i of a talks only to its
			// peer i of b, so rails contend on the fabric, never on a NIC.
			for i := 0; i < k; i++ {
				m.Add(a*p+i, b*p+i, 1)
			}
		case PatternFan:
			// Group a's lead fans out to the first k ranks of b: one NIC
			// drives k flows (an incast in the bi/omni variants).
			for i := 0; i < k; i++ {
				m.Add(a*p, b*p+i, 1)
			}
		case PatternDense:
			// All k*k participant pairs: the densest group-to-group load,
			// the pattern whose makespan PEVPM must predict.
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					m.Add(a*p+i, b*p+j, 1)
				}
			}
		default:
			return fmt.Errorf("mpibench: unknown pattern %q (want rail, fan or dense)", name)
		}
		return nil
	}
	switch dir {
	case Unidirectional:
		for b := 1; b < g; b++ {
			if err := between(0, b); err != nil {
				return Matrix{}, err
			}
		}
	case Bidirectional:
		for b := 1; b < g; b++ {
			if err := between(0, b); err != nil {
				return Matrix{}, err
			}
			if err := between(b, 0); err != nil {
				return Matrix{}, err
			}
		}
	case Omnidirectional:
		for a := 0; a < g; a++ {
			for b := 0; b < g; b++ {
				if a == b {
					continue
				}
				if err := between(a, b); err != nil {
					return Matrix{}, err
				}
			}
		}
	}
	return m, nil
}

// PatternSpec describes one group-to-group pattern benchmark: which
// matrix to drive, how many windowed rounds to measure, and the usual
// clock/fault/estimate knobs shared with Spec.
type PatternSpec struct {
	// Pattern is rail, fan, dense or custom. For the named patterns the
	// matrix is generated from (P, G, K, Direction); PatternCustom runs
	// the caller-supplied Matrix as-is.
	Pattern   string
	P, G, K   int
	Direction Direction

	// Window is the number of in-flight messages per pair before the
	// round's completion sync (Waitall): window 1 is a synchronous
	// ping per pair, larger windows pipeline the fabric.
	Window int

	// Matrix is the sparse communication matrix. Left empty for named
	// patterns (built on demand); required for PatternCustom.
	Matrix Matrix

	Sizes []int // message sizes in bytes (one distribution per size)

	// Rounds is the number of measured windowed rounds per size; WarmUp
	// rounds run first and are discarded.
	Rounds int
	WarmUp int

	// BinWidth is the histogram bin width in seconds.
	BinWidth float64

	Placement cluster.Placement

	// PerfectClocks replaces the drifting per-node clocks with ideal
	// ones. Pattern rounds are timed start-to-finish on each rank's own
	// clock, so offsets cancel by construction and only skew (<= 50 ppm)
	// and read granularity remain; PerfectClocks removes even those.
	PerfectClocks bool

	// Faults, when non-nil, perturbs the simulated cluster for the whole
	// run — pattern benchmarking under faults is exactly as reproducible
	// as the healthy run.
	Faults *faults.Schedule

	// Estimates attaches the PR 7 estimator block (Student-t mean CI,
	// bootstrap quantile CI, robust trio) to every point.
	Estimates bool

	// Seed drives all simulation randomness.
	Seed uint64

	// Workers spreads RunPatternSweep cells over goroutines; results are
	// bit-identical at any count (per-cell sim.SubSeed streams, merge in
	// cell order).
	Workers int
}

// Defaults fills unset scalar fields with sensible values. The matrix
// of a named pattern is materialised by RunPattern, not here, so
// builder errors surface as errors rather than panics.
func (s PatternSpec) Defaults() PatternSpec {
	if s.Pattern == "" {
		s.Pattern = PatternDense
	}
	if s.Direction == "" {
		s.Direction = Unidirectional
	}
	if s.Window == 0 {
		s.Window = 4
	}
	if s.Rounds == 0 {
		s.Rounds = 60
	}
	if s.WarmUp == 0 {
		s.WarmUp = 5
	}
	if s.BinWidth == 0 {
		s.BinWidth = 5e-6
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{1024, 16384, 65536}
	}
	return s
}

// Key identifies the pattern cell: name, (p, g, k), window, direction.
func (s PatternSpec) Key() string {
	return patternKey(s.Pattern, s.P, s.G, s.K, s.Window, s.Direction)
}

func patternKey(pattern string, p, g, k, window int, dir Direction) string {
	return fmt.Sprintf("%s:p%dg%dk%d:w%d:%s", pattern, p, g, k, window, dir)
}

// Validate reports the first problem with the spec. The matrix must
// already be materialised (RunPattern does this); every matrix problem
// is also reported through MatrixFindings so tooling can surface the
// full mpilint-style list.
func (s PatternSpec) Validate(cfg *cluster.Config) error {
	switch s.Pattern {
	case PatternRail, PatternFan, PatternDense:
		if s.P < 1 || s.G < 2 || s.K < 1 || s.K > s.P {
			return fmt.Errorf("mpibench: pattern %s wants p >= 1, g >= 2, 1 <= k <= p, got p=%d g=%d k=%d",
				s.Pattern, s.P, s.G, s.K)
		}
	case PatternCustom:
	default:
		return fmt.Errorf("mpibench: unknown pattern %q (want rail, fan, dense or custom)", s.Pattern)
	}
	if !s.Direction.Valid() {
		return fmt.Errorf("mpibench: unknown direction %q", s.Direction)
	}
	if _, err := cluster.NewPlacement(cfg, s.Placement.NodeCount, s.Placement.PerNode); err != nil {
		return err
	}
	procs := s.Placement.NumProcs()
	if s.Pattern != PatternCustom && s.P*s.G > procs {
		return fmt.Errorf("mpibench: pattern %s needs p*g = %d ranks, placement %s has %d",
			s.Pattern, s.P*s.G, s.Placement, procs)
	}
	if s.Matrix.Empty() {
		return fmt.Errorf("mpibench: pattern %s has an empty matrix", s.Pattern)
	}
	if fs := s.Matrix.Findings(procs); len(fs) > 0 {
		return fmt.Errorf("mpibench: pattern %s matrix rejected: %s (%d findings)",
			s.Pattern, fs[0], len(fs))
	}
	if s.Window < 1 {
		return fmt.Errorf("mpibench: window %d invalid", s.Window)
	}
	if s.Rounds <= 0 || s.WarmUp < 0 {
		return fmt.Errorf("mpibench: rounds %d / warmup %d invalid", s.Rounds, s.WarmUp)
	}
	if s.BinWidth <= 0 {
		return fmt.Errorf("mpibench: bin width %v invalid", s.BinWidth)
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("mpibench: no message sizes")
	}
	for _, size := range s.Sizes {
		if size < 0 {
			return fmt.Errorf("mpibench: negative message size %d", size)
		}
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("mpibench: %w", err)
	}
	return nil
}

// sweepWorkers resolves Workers for RunPatternSweep.
func (s PatternSpec) sweepWorkers() int {
	if s.Workers <= 0 {
		return 1
	}
	return s.Workers
}
