package mpibench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func adaptiveSpec(pl cluster.Placement) Spec {
	s := quickSpec(pl, OpIsend, 64, 1024)
	s.Repetitions = 40
	s.Target = &Target{RelWidth: 0.05, Batch: 40, MaxBatches: 4, Resamples: 100}
	return s
}

func TestAdaptiveRun(t *testing.T) {
	cfg := cluster.Perseus()
	res, err := Run(cfg, adaptiveSpec(place(t, &cfg, 2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Manifest
	if m.Adaptive == nil {
		t.Fatal("manifest missing adaptive stopping rule")
	}
	if m.Batches < 1 || m.Batches > 4 {
		t.Errorf("batches = %d, want 1..4", m.Batches)
	}
	if m.StopReason != StopTargetMet && m.StopReason != StopMaxBatches {
		t.Errorf("stop reason %q", m.StopReason)
	}
	// Resolved defaults must be recorded, not the zero knobs.
	if m.Adaptive.Quantile != 0.5 || m.Adaptive.Level != 0.95 {
		t.Errorf("adaptive knobs not defaulted: %+v", m.Adaptive)
	}
	for _, p := range res.Points {
		if p.Est == nil {
			t.Fatalf("size %d: adaptive run has no estimates", p.Size)
		}
		// The merged histogram and the raw-sample estimates must agree:
		// same total sample count, and the CI brackets its own point.
		if p.Est.Mean.N != p.Hist.Count() {
			t.Errorf("size %d: est over %d samples, hist holds %d",
				p.Size, p.Est.Mean.N, p.Hist.Count())
		}
		if !p.Est.QuantileCI.Contains(p.Est.QuantileCI.Point) {
			t.Errorf("size %d: quantile CI excludes its point", p.Size)
		}
		if p.Est.Median <= 0 || p.Est.TrimmedMean <= 0 {
			t.Errorf("size %d: non-positive robust estimates: %+v", p.Size, p.Est)
		}
	}
	if m.StopReason == StopTargetMet {
		// The contract: every size met the relative-width target.
		for _, p := range res.Points {
			if rw := p.Est.QuantileCI.RelHalfWidth(); rw > m.Adaptive.RelWidth {
				t.Errorf("size %d: stopped at target but rel width %.3f > %.3f",
					p.Size, rw, m.Adaptive.RelWidth)
			}
		}
	}
	// Batches accumulate: total samples exceed one batch's worth.
	if res.Samples < 40 {
		t.Errorf("samples = %d, want at least one batch", res.Samples)
	}
}

func TestAdaptiveStopsEarlyWhenPrecise(t *testing.T) {
	// A loose target must be met after the first batch; an unmeetable
	// one must run to the cap. Same spec, same seed — only the contract
	// differs, so the batch count difference is the stopping rule.
	cfg := cluster.Perseus()
	pl := place(t, &cfg, 2, 1)

	loose := adaptiveSpec(pl)
	loose.Target.RelWidth = 0.9
	res, err := Run(cfg, loose)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Batches != 1 || res.Manifest.StopReason != StopTargetMet {
		t.Errorf("loose target: batches=%d reason=%q, want 1 batch target-met",
			res.Manifest.Batches, res.Manifest.StopReason)
	}

	tight := adaptiveSpec(pl)
	tight.Target.RelWidth = 1e-9
	res, err = Run(cfg, tight)
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Batches != 4 || res.Manifest.StopReason != StopMaxBatches {
		t.Errorf("unmeetable target: batches=%d reason=%q, want 4 batches max-batches",
			res.Manifest.Batches, res.Manifest.StopReason)
	}
}

func TestAdaptiveRejectsZeroWarmup(t *testing.T) {
	cfg := cluster.Perseus()
	s := adaptiveSpec(place(t, &cfg, 2, 1))
	s.WarmUp = 0
	_, err := Run(cfg, s)
	if err == nil || !strings.Contains(err.Error(), "WarmUp") {
		t.Errorf("adaptive run with zero warmup: err = %v, want WarmUp rejection", err)
	}
}

func TestAdaptiveDeterminism(t *testing.T) {
	cfg := cluster.Perseus()
	run := func() []byte {
		res, err := Run(cfg, adaptiveSpec(place(t, &cfg, 2, 1)))
		if err != nil {
			t.Fatal(err)
		}
		set := &Set{Cluster: cfg.Name}
		set.Add(res)
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Error("two adaptive runs with the same seed differ")
	}
}

// TestAdaptiveSweepWorkersEquality is the adaptive-stopping version of
// TestRunSweepWorkersEquality: estimates, stopping decisions and
// manifests must be byte-identical at any worker count because every
// random draw comes from a named substream of the per-cell seed.
func TestAdaptiveSweepWorkersEquality(t *testing.T) {
	cfg := cluster.Perseus()
	pls := []cluster.Placement{
		place(t, &cfg, 2, 1), place(t, &cfg, 4, 1), place(t, &cfg, 4, 2),
	}

	encode := func(workers int) []byte {
		spec := adaptiveSpec(cluster.Placement{})
		spec.Workers = workers
		set, err := RunSweep(cfg, spec, pls)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := encode(1)
	for _, workers := range []int{2, 8} {
		if got := encode(workers); !bytes.Equal(got, serial) {
			t.Errorf("Workers=%d adaptive sweep differs from serial", workers)
		}
	}
}

func TestEstimatesOnFixedRun(t *testing.T) {
	cfg := cluster.Perseus()
	s := quickSpec(place(t, &cfg, 2, 1), OpIsend, 1024)
	s.Estimates = true
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res.PointFor(1024)
	if !ok || p.Est == nil {
		t.Fatal("fixed run with Estimates has no estimates")
	}
	if p.Est.Mean.Lo >= p.Est.Mean.Hi {
		t.Errorf("degenerate mean CI: %v", p.Est.Mean)
	}
	if !p.Est.Mean.Contains(p.Avg()) {
		t.Errorf("mean CI %v excludes histogram mean %v", p.Est.Mean, p.Avg())
	}
	// Median and trimmed mean sit inside the observed range.
	if p.Est.Median < p.Min() || p.Est.Median > p.Hist.Max() {
		t.Errorf("median %v outside [min, max]", p.Est.Median)
	}
	if p.Est.MAD < 0 {
		t.Errorf("negative MAD %v", p.Est.MAD)
	}
	// Drift on a well-warmed-up stationary benchmark stays modest.
	if res.DriftFlagged {
		t.Errorf("stationary run flagged for drift (stat %.2f)", res.WarmupDrift)
	}
}

func TestEstimatesOffByDefault(t *testing.T) {
	cfg := cluster.Perseus()
	res, err := Run(cfg, quickSpec(place(t, &cfg, 2, 1), OpIsend, 1024))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Est != nil {
			t.Error("estimates attached without Spec.Estimates")
		}
	}
	// The manifest is attached unconditionally.
	if res.Manifest.Schema != ManifestSchema || res.Manifest.ClusterHash == "" {
		t.Errorf("manifest incomplete: %+v", res.Manifest)
	}
	if res.Manifest.GoVersion == "" {
		t.Error("manifest missing Go version")
	}
}

func TestManifestClusterHashSensitivity(t *testing.T) {
	a := cluster.Perseus()
	b := cluster.Perseus()
	b.LinkRate *= 1.01
	ha, hb := ClusterHash(&a), ClusterHash(&b)
	if ha == hb {
		t.Error("cluster hash blind to a bandwidth change")
	}
	if len(ha) != 16 {
		t.Errorf("hash %q not 16 hex chars", ha)
	}
}

// TestMarkDriftFlagsDriftingSeries is the regression test for the
// warmup-drift check: a deliberately drifting synthetic series (a ramp
// dwarfing its noise) must be flagged, a stationary one must not.
func TestMarkDriftFlagsDriftingSeries(t *testing.T) {
	drifting := make([]float64, 64)
	stationary := make([]float64, 64)
	for i := range drifting {
		wob := 1e-7 * math.Sin(float64(3*i))
		drifting[i] = 100e-6 + float64(i)*2e-6 + wob
		stationary[i] = 100e-6 + wob
	}

	var res Result
	markDrift(&res, [][]float64{stationary, drifting}, defaultDriftThreshold)
	if !res.DriftFlagged {
		t.Errorf("ramp series not flagged (stat %.2f)", res.WarmupDrift)
	}

	res = Result{}
	markDrift(&res, [][]float64{stationary}, defaultDriftThreshold)
	if res.DriftFlagged {
		t.Errorf("stationary series flagged (stat %.2f)", res.WarmupDrift)
	}
}
