package mpibench

import (
	"encoding/json"
	"fmt"
	"runtime"

	"repro/internal/cluster"
)

// ManifestSchema versions the manifest layout; bump it when fields
// change meaning so downstream consumers can refuse mismatched files.
const ManifestSchema = 1

// Manifest is the reproducibility record every Result carries: the
// complete spec, the seed, a hash of the cluster configuration, the Go
// toolchain, and the fault scenario. Two results with equal manifests
// came from bit-identical experiments; a result without one is an
// anecdote. ("MPI Benchmarking Revisited" lists unreported experiment
// parameters among the main reasons published MPI measurements cannot
// be reproduced.)
type Manifest struct {
	Schema        int     `json:"schema"`
	Op            Op      `json:"op"`
	Placement     string  `json:"placement"`
	Sizes         []int   `json:"sizes"`
	Repetitions   int     `json:"repetitions"`
	WarmUp        int     `json:"warmup"`
	BinWidth      float64 `json:"bin_width"`
	SyncProbes    int     `json:"sync_probes"`
	BarrierEvery  int     `json:"barrier_every"`
	PerfectClocks bool    `json:"perfect_clocks,omitempty"`
	Seed          uint64  `json:"seed"`

	// Cluster names the simulated machine; ClusterHash fingerprints its
	// full parameter set (an FNV-1a over the canonical JSON encoding),
	// so a recalibrated network model can never masquerade as the same
	// experiment.
	Cluster     string `json:"cluster"`
	ClusterHash string `json:"cluster_hash"`

	// Topology names the hierarchical switch topology, empty for the
	// flat daisy-chained machine. The hash above already covers the
	// topology's full link list; the name is for humans.
	Topology string `json:"topology,omitempty"`

	// GoVersion is the toolchain that produced the result. Floating
	// point in Go is specified, but library-level changes (math, sort)
	// can still move bits between releases.
	GoVersion string `json:"go_version"`

	// Scenario names the fault schedule, empty for a healthy cluster.
	Scenario string `json:"scenario,omitempty"`

	// Adaptive, Batches and StopReason describe the experimental
	// design when adaptive stopping ran: the resolved stopping rule,
	// how many batches executed, and why the run ended
	// (StopTargetMet or StopMaxBatches).
	Adaptive   *Target `json:"adaptive,omitempty"`
	Batches    int     `json:"batches,omitempty"`
	StopReason string  `json:"stop_reason,omitempty"`
}

// Stop reasons recorded in Manifest.StopReason.
const (
	StopTargetMet  = "target-met"  // every size reached the CI width target
	StopMaxBatches = "max-batches" // the batch cap fired first
)

// newManifest builds the manifest for a (possibly adaptive) run. The
// spec must already have defaults applied.
func newManifest(cfg *cluster.Config, spec Spec) Manifest {
	m := Manifest{
		Schema:        ManifestSchema,
		Op:            spec.Op,
		Placement:     spec.Placement.String(),
		Sizes:         spec.Sizes,
		Repetitions:   spec.Repetitions,
		WarmUp:        spec.WarmUp,
		BinWidth:      spec.BinWidth,
		SyncProbes:    spec.SyncProbes,
		BarrierEvery:  spec.BarrierEvery,
		PerfectClocks: spec.PerfectClocks,
		Seed:          spec.Seed,
		Cluster:       cfg.Name,
		ClusterHash:   ClusterHash(cfg),
		GoVersion:     runtime.Version(),
	}
	if cfg.Topo != nil {
		m.Topology = cfg.Topo.Name
	}
	if spec.Faults != nil {
		m.Scenario = spec.Faults.Name
	}
	return m
}

// ClusterHash fingerprints a cluster configuration: FNV-1a over its
// canonical JSON encoding, hex-encoded. Any parameter change — a link
// rate, a buffer size, a jitter sigma — changes the hash.
func ClusterHash(cfg *cluster.Config) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain struct of scalars; Marshal cannot fail on
		// it today. Keep the manifest usable if that ever changes.
		return "unhashable"
	}
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}
