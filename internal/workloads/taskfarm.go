package workloads

import (
	"repro/internal/mpi"
	"repro/internal/pevpm"
)

// TaskFarm is the irregular workload: a master (rank 0) hands Tasks
// independent work units to whichever worker returns a result first
// (MPI_ANY_SOURCE), so the communication schedule is decided at run
// time. The PEVPM model approximates the dynamic schedule with the
// round-robin one, which for near-homogeneous task times is what the
// dynamic farm converges to.
type TaskFarm struct {
	Tasks       int     // total work units
	TaskSeconds float64 // nominal compute time per task
	TaskBytes   int     // master→worker task description size
	ResultBytes int     // worker→master result size
}

// DefaultTaskFarm returns a farm whose tasks take a few communication
// times each, so both farm-out cost and compute matter.
func DefaultTaskFarm() TaskFarm {
	return TaskFarm{
		Tasks:       256,
		TaskSeconds: 20e-3,
		TaskBytes:   512,
		ResultBytes: 2048,
	}
}

// SerialTime is the one-processor baseline.
func (tf TaskFarm) SerialTime() float64 {
	return float64(tf.Tasks) * tf.TaskSeconds
}

// Task and control tags.
const (
	tagTask = iota + 3
	tagResult
	tagStop
)

// Run executes the farm on one rank. Rank 0 is the master and performs
// no computation; ranks 1..P-1 are workers.
func (tf TaskFarm) Run(c *mpi.Comm) {
	if c.Size() < 2 {
		// Degenerate single-process case: just compute everything.
		for i := 0; i < tf.Tasks; i++ {
			c.Compute(tf.TaskSeconds)
		}
		return
	}
	if c.Rank() == 0 {
		tf.master(c)
	} else {
		tf.worker(c)
	}
}

func (tf TaskFarm) master(c *mpi.Comm) {
	workers := c.Size() - 1
	next := 0
	// Initial wave: one task per worker (or an immediate stop).
	for w := 1; w <= workers; w++ {
		if next < tf.Tasks {
			c.Send(w, tagTask, tf.TaskBytes)
			next++
		} else {
			c.Send(w, tagStop, 0)
		}
	}
	// Steady state: hand the next task to whoever finishes first; when
	// the bag is empty, each returning worker is stopped.
	for done := 0; done < tf.Tasks; done++ {
		st := c.Recv(mpi.AnySource, tagResult)
		if next < tf.Tasks {
			c.Send(st.Source, tagTask, tf.TaskBytes)
			next++
		} else {
			c.Send(st.Source, tagStop, 0)
		}
	}
}

func (tf TaskFarm) worker(c *mpi.Comm) {
	for {
		st := c.Recv(0, mpi.AnyTag)
		if st.Tag == tagStop {
			return
		}
		c.Compute(tf.TaskSeconds)
		c.Send(0, tagResult, tf.ResultBytes)
	}
}

// Model builds the PEVPM model for a farm of the given total size: the
// static round-robin unrolling of the dynamic schedule. Worker w handles
// tasks w-1, w-1+W, w-1+2W, …; the master receives results in the same
// rotation it dealt tasks.
func (tf TaskFarm) Model(procs int) *pevpm.Program {
	prog := pevpm.NewProgram()
	if procs < 2 {
		prog.Body = pevpm.Block{&pevpm.Loop{
			Count: pevpm.Num(float64(tf.Tasks)),
			Body:  pevpm.Block{&pevpm.Serial{Time: pevpm.Num(tf.TaskSeconds)}},
		}}
		return prog
	}
	workers := procs - 1
	workerOf := func(task int) int { return task%workers + 1 }

	var master pevpm.Block
	send := func(w, bytes int) pevpm.Node {
		return &pevpm.Msg{Kind: pevpm.MsgSend, Size: pevpm.Num(float64(bytes)),
			From: pevpm.Num(0), To: pevpm.Num(float64(w))}
	}
	recv := func(w int) pevpm.Node {
		return &pevpm.Msg{Kind: pevpm.MsgRecv, Size: pevpm.Num(float64(tf.ResultBytes)),
			From: pevpm.Num(float64(w)), To: pevpm.Num(0)}
	}
	// Initial wave.
	for w := 1; w <= workers; w++ {
		if w-1 < tf.Tasks {
			master = append(master, send(w, tf.TaskBytes))
		} else {
			master = append(master, send(w, 0)) // stop
		}
	}
	// Steady state: one recv + refill per remaining task, then drain.
	for task := 0; task < tf.Tasks; task++ {
		master = append(master, recv(workerOf(task)))
		if refill := task + workers; refill < tf.Tasks {
			master = append(master, send(workerOf(refill), tf.TaskBytes))
		} else {
			master = append(master, send(workerOf(task), 0)) // stop
		}
	}

	// Worker bodies: each worker's personal task count.
	conds := []pevpm.Expr{pevpm.MustExpr("procnum == 0")}
	bodies := []pevpm.Block{master}
	for w := 1; w <= workers; w++ {
		count := 0
		for task := 0; task < tf.Tasks; task++ {
			if workerOf(task) == w {
				count++
			}
		}
		var body pevpm.Block
		body = append(body, &pevpm.Loop{
			Count: pevpm.Num(float64(count)),
			Body: pevpm.Block{
				&pevpm.Msg{Kind: pevpm.MsgRecv, Size: pevpm.Num(float64(tf.TaskBytes)),
					From: pevpm.Num(0), To: pevpm.Var("procnum")},
				&pevpm.Serial{Time: pevpm.Num(tf.TaskSeconds)},
				&pevpm.Msg{Kind: pevpm.MsgSend, Size: pevpm.Num(float64(tf.ResultBytes)),
					From: pevpm.Var("procnum"), To: pevpm.Num(0)},
			},
		})
		// Final stop message.
		body = append(body, &pevpm.Msg{Kind: pevpm.MsgRecv, Size: pevpm.Num(0),
			From: pevpm.Num(0), To: pevpm.Var("procnum")})
		conds = append(conds, pevpm.MustExpr("procnum == "+itoa(w)))
		bodies = append(bodies, body)
	}
	prog.Body = pevpm.Block{&pevpm.Runon{Conds: conds, Bodies: bodies}}
	return prog
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
