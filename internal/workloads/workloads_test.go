package workloads

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
)

func placement(t *testing.T, cfg *cluster.Config, n, p int) cluster.Placement {
	t.Helper()
	pl, err := cluster.NewPlacement(cfg, n, p)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestJacobiExecutes(t *testing.T) {
	cfg := cluster.Perseus()
	j := Jacobi{XSize: 256, Iterations: 20, SweepSeconds: 0.1}
	for _, n := range []int{2, 4, 8} {
		res, err := Execute(cfg, placement(t, &cfg, n, 1), 1, j.Run)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Compute floor: iterations × sweep/numprocs.
		floor := 20 * 0.1 / float64(n)
		got := res.Makespan.Seconds()
		if got < floor {
			t.Errorf("n=%d: makespan %v below compute floor %v", n, got, floor)
		}
		if got > floor*1.5 {
			t.Errorf("n=%d: makespan %v too far above floor %v", n, got, floor)
		}
	}
}

func TestJacobiSpeedupGrows(t *testing.T) {
	cfg := cluster.Perseus()
	j := Jacobi{XSize: 256, Iterations: 20, SweepSeconds: 0.2}
	t2, err := Execute(cfg, placement(t, &cfg, 2, 1), 1, j.Run)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := Execute(cfg, placement(t, &cfg, 16, 1), 1, j.Run)
	if err != nil {
		t.Fatal(err)
	}
	s2 := j.SerialTime() / t2.Makespan.Seconds() * 0.2 / j.SweepSeconds // normalise sweep
	_ = s2
	if t16.Makespan >= t2.Makespan {
		t.Errorf("16 nodes (%v) not faster than 2 (%v)", t16.Makespan, t2.Makespan)
	}
}

func TestJacobiModelParses(t *testing.T) {
	j := DefaultJacobi()
	prog, err := j.Model()
	if err != nil {
		t.Fatal(err)
	}
	if prog.Params["xsize"] != 256 || prog.Params["iterations"] != float64(cluster.JacobiIterations) {
		t.Errorf("params = %v", prog.Params)
	}
	if prog.Params["sweep"] != cluster.JacobiSweepSeconds {
		t.Errorf("sweep param = %v", prog.Params["sweep"])
	}
}

// TestJacobiClosedLoop is the core validation of the whole reproduction:
// PEVPM predictions fed by MPIBench distributions must match actual
// executions of the Jacobi program on the simulated cluster.
func TestJacobiClosedLoop(t *testing.T) {
	cfg := cluster.Perseus()
	j := Jacobi{XSize: 256, Iterations: 60, SweepSeconds: cluster.JacobiSweepSeconds}

	var pls []cluster.Placement
	for _, n := range []int{2, 4, 8, 16} {
		pls = append(pls, placement(t, &cfg, n, 1))
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op:          mpibench.OpSend,
		Sizes:       []int{0, 256, 1024, 4096},
		Repetitions: 120,
		WarmUp:      10,
		SyncProbes:  20,
		Seed:        5,
	}, pls)
	if err != nil {
		t.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := j.Model()
	if err != nil {
		t.Fatal(err)
	}

	for _, pl := range pls {
		measured, err := Execute(cfg, pl, 42, j.Run)
		if err != nil {
			t.Fatalf("%v: %v", pl, err)
		}
		sum, err := pevpm.EvaluateN(prog, pevpm.Options{
			Procs: pl.NumProcs(), DB: db, Seed: 42,
		}, 5)
		if err != nil {
			t.Fatalf("%v: %v", pl, err)
		}
		got := measured.Makespan.Seconds()
		rel := math.Abs(sum.Mean-got) / got
		t.Logf("%v: measured %.4fs predicted %.4fs (%.2f%% error)",
			pl, got, sum.Mean, rel*100)
		if rel > 0.08 {
			t.Errorf("%v: prediction error %.1f%% exceeds 8%%", pl, rel*100)
		}
	}
}

func TestFFTExecutesAndModelAgrees(t *testing.T) {
	cfg := cluster.Perseus()
	f := FFT{PointsPerProc: 2048, BytesPerPoint: 8, StageSeconds: 100e-9, Rounds: 5}
	pl := placement(t, &cfg, 8, 1)

	res, err := Execute(cfg, pl, 3, f.Run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("FFT did not run")
	}

	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op:          mpibench.OpSend,
		Sizes:       []int{1024, 16384, 32768},
		Repetitions: 80,
		WarmUp:      10,
		SyncProbes:  20,
		Seed:        6,
	}, []cluster.Placement{placement(t, &cfg, 2, 1), placement(t, &cfg, 8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pevpm.EvaluateN(f.Model(8), pevpm.Options{Procs: 8, DB: db, Seed: 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Makespan.Seconds()
	rel := math.Abs(sum.Mean-got) / got
	t.Logf("fft 8x1: measured %.4fs predicted %.4fs (%.1f%% error)", got, sum.Mean, rel*100)
	if rel > 0.30 {
		t.Errorf("FFT prediction error %.1f%% exceeds 30%%", rel*100)
	}
}

func TestFFTSerialTime(t *testing.T) {
	f := FFT{PointsPerProc: 1024, BytesPerPoint: 8, StageSeconds: 1e-6, Rounds: 2}
	// 4 procs → stages 1,2 → 2 stages; total points 4096.
	want := 2.0 * 2 * 4096 * 1e-6
	if got := f.SerialTime(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("SerialTime = %v, want %v", got, want)
	}
}

func TestTaskFarmExecutes(t *testing.T) {
	cfg := cluster.Perseus()
	tf := TaskFarm{Tasks: 40, TaskSeconds: 5e-3, TaskBytes: 256, ResultBytes: 1024}
	for _, n := range []int{2, 5, 9} {
		res, err := Execute(cfg, placement(t, &cfg, n, 1), 7, tf.Run)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Work conservation: total compute = 40 tasks × 5 ms over n-1 workers.
		floor := 40 * 5e-3 / float64(n-1)
		if got := res.Makespan.Seconds(); got < floor {
			t.Errorf("n=%d: makespan %v below work floor %v", n, got, floor)
		}
	}
}

func TestTaskFarmFewerTasksThanWorkers(t *testing.T) {
	cfg := cluster.Perseus()
	tf := TaskFarm{Tasks: 3, TaskSeconds: 1e-3, TaskBytes: 64, ResultBytes: 64}
	res, err := Execute(cfg, placement(t, &cfg, 8, 1), 1, tf.Run)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("farm with idle workers did not finish")
	}
}

func TestTaskFarmClosedLoop(t *testing.T) {
	cfg := cluster.Perseus()
	tf := TaskFarm{Tasks: 48, TaskSeconds: 10e-3, TaskBytes: 512, ResultBytes: 2048}
	pl := placement(t, &cfg, 7, 1)

	measured, err := Execute(cfg, pl, 11, tf.Run)
	if err != nil {
		t.Fatal(err)
	}
	set, err := mpibench.RunSweep(cfg, mpibench.Spec{
		Op:          mpibench.OpSend,
		Sizes:       []int{0, 512, 2048},
		Repetitions: 80,
		WarmUp:      10,
		SyncProbes:  20,
		Seed:        12,
	}, []cluster.Placement{placement(t, &cfg, 2, 1), placement(t, &cfg, 8, 1)})
	if err != nil {
		t.Fatal(err)
	}
	db, err := pevpm.NewEmpiricalDB(set, mpibench.OpSend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := pevpm.EvaluateN(tf.Model(7), pevpm.Options{Procs: 7, DB: db, Seed: 13}, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := measured.Makespan.Seconds()
	rel := math.Abs(sum.Mean-got) / got
	t.Logf("taskfarm 7x1: measured %.4fs predicted %.4fs (%.1f%% error)", got, sum.Mean, rel*100)
	if rel > 0.15 {
		t.Errorf("task farm prediction error %.1f%% exceeds 15%%", rel*100)
	}
}

func TestTaskFarmModelMatchesStructure(t *testing.T) {
	tf := TaskFarm{Tasks: 10, TaskSeconds: 1e-3, TaskBytes: 64, ResultBytes: 128}
	prog := tf.Model(4)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// Evaluate with a constant DB: no deadlock, sensible makespan.
	db := pevpm.LogGPStyleDB(100e-6, 10e6, 16384)
	rep, err := pevpm.Evaluate(prog, pevpm.Options{Procs: 4, DB: db, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 10 tasks over 3 workers: at least ceil(10/3)=4 task times long.
	if rep.Makespan < 4e-3 {
		t.Errorf("farm model makespan %v too small", rep.Makespan)
	}
	if rep.MessagesSent == 0 {
		t.Error("farm model sent no messages")
	}
}

func TestExecuteReportsDeadlock(t *testing.T) {
	cfg := cluster.Perseus()
	pl := placement(t, &cfg, 2, 1)
	_, err := Execute(cfg, pl, 1, func(c *mpi.Comm) {
		c.Recv(1-c.Rank(), 99) // mutual receive: deadlock
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}
