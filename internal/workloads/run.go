// Package workloads provides the parallel applications the paper
// evaluates PEVPM with, each in two forms that must agree:
//
//   - an executable version that really runs on the simulated cluster
//     through internal/mpi (the paper's "measured" lines), and
//   - a PEVPM model built from performance directives (the paper's
//     "predicted" lines).
//
// Jacobi Iteration is the paper's §6 case study (regular-local
// communication); the FFT-style butterfly exchange and the bag-of-tasks
// farm are the other two communication classes the paper names
// (regular-global and irregular).
package workloads

import (
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ExecResult is the outcome of executing a workload on the simulated
// cluster.
type ExecResult struct {
	Makespan    sim.Time   // time the last rank finished
	FinishTimes []sim.Time // per-rank completion
	Net         netsim.Counters
	Metrics     metrics.Snapshot // full instrument snapshot of the run
}

// Execute runs program on a fresh simulated cluster with the given
// placement and returns the measured execution times. This is the
// "actually executing the code on Perseus" side of Figure 6.
func Execute(cfg cluster.Config, pl cluster.Placement, seed uint64, program func(c *mpi.Comm)) (ExecResult, error) {
	return ExecuteFaults(cfg, pl, seed, nil, program)
}

// ExecuteFaults is Execute on a perturbed cluster: the fault schedule
// applies for the whole run (nil means healthy). This is how Figure-6
// style measured-vs-predicted comparisons rerun under degraded
// scenarios.
func ExecuteFaults(cfg cluster.Config, pl cluster.Placement, seed uint64,
	sched *faults.Schedule, program func(c *mpi.Comm)) (ExecResult, error) {
	e := sim.NewEngine(seed)
	net := netsim.New(e, cfg)
	w := mpi.NewWorld(e, net, pl)
	if sched != nil {
		w.SetFaults(sched)
	}
	w.Launch(program)
	// Always unwind rank goroutines: concurrent sweep cells must not
	// leak parked processes. A no-op after a clean run.
	defer w.Shutdown()
	end, err := w.Wait()
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{
		Makespan:    end,
		FinishTimes: w.FinishTimes(),
		Net:         net.Stats(),
		Metrics:     e.Metrics().Snapshot(),
	}, nil
}
