package workloads

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/mpi"
	"repro/internal/pevpm"
)

// Jacobi is the paper's §6 case study: a 1-D decomposed Jacobi Iteration
// over an XSize×XSize grid. Each iteration exchanges grid edges
// (XSize·sizeof(float) bytes) with both neighbours in the even/odd phase
// order of Figure 5, then computes the stencil sweep.
type Jacobi struct {
	XSize        int     // grid edge length (the paper uses 256)
	Iterations   int     // iteration count (the paper uses 1000)
	SweepSeconds float64 // full-grid sweep time on one CPU (paper: 3.24 s)
}

// DefaultJacobi returns the paper's exact configuration.
func DefaultJacobi() Jacobi {
	return Jacobi{
		XSize:        256,
		Iterations:   cluster.JacobiIterations,
		SweepSeconds: cluster.JacobiSweepSeconds,
	}
}

// EdgeBytes is the size of one edge-exchange message.
func (j Jacobi) EdgeBytes() int { return j.XSize * 4 }

// SerialTime returns the one-processor execution time (the speedup
// baseline): communication-free iteration sweeps.
func (j Jacobi) SerialTime() float64 {
	return float64(j.Iterations) * j.SweepSeconds
}

const tagJacobi = 1

// Run executes the Jacobi program on one rank, mirroring the Figure 5
// skeleton: even ranks send before receiving, odd ranks receive before
// sending, then everyone computes its share of the sweep.
func (j Jacobi) Run(c *mpi.Comm) {
	rank, procs := c.Rank(), c.Size()
	edge := j.EdgeBytes()
	for i := 0; i < j.Iterations; i++ {
		if rank%2 == 0 {
			if rank != 0 {
				c.Send(rank-1, tagJacobi, edge)
			}
			if rank != procs-1 {
				c.Send(rank+1, tagJacobi, edge)
				c.Recv(rank+1, tagJacobi)
			}
			if rank != 0 {
				c.Recv(rank-1, tagJacobi)
			}
		} else {
			if rank != procs-1 {
				c.Recv(rank+1, tagJacobi)
			}
			c.Recv(rank-1, tagJacobi)
			c.Send(rank-1, tagJacobi, edge)
			if rank != procs-1 {
				c.Send(rank+1, tagJacobi, edge)
			}
		}
		c.Compute(j.SweepSeconds / float64(procs))
	}
}

// PVM renders the PEVPM directive model for this configuration — the
// paper's Figure 5 annotations in standalone form. (One deviation: the
// even branch's downward exchange is guarded by procnum != numprocs-1 so
// the model is also valid for odd process counts; with the paper's even
// process counts the guard is always true.)
func (j Jacobi) PVM() string {
	return fmt.Sprintf(`# Jacobi Iteration — the paper's Figure 5 model.
PEVPM Param xsize = %d
PEVPM Param iterations = %d
PEVPM Param sweep = %g

PEVPM Loop iterations = iterations
PEVPM {
PEVPM   Runon c1 = procnum%%2 == 0
PEVPM   &     c2 = procnum%%2 != 0
PEVPM   {
PEVPM     Runon c1 = procnum != 0
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum-1
PEVPM     }
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum+1
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum+1
PEVPM       &       to = procnum
PEVPM     }
PEVPM     Runon c1 = procnum != 0
PEVPM     {
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum-1
PEVPM       &       to = procnum
PEVPM     }
PEVPM   }
PEVPM   {
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum+1
PEVPM       &       to = procnum
PEVPM     }
PEVPM     Message type = MPI_Recv
PEVPM     &       size = xsize*sizeof(float)
PEVPM     &       from = procnum-1
PEVPM     &       to = procnum
PEVPM     Message type = MPI_Send
PEVPM     &       size = xsize*sizeof(float)
PEVPM     &       from = procnum
PEVPM     &       to = procnum-1
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum+1
PEVPM     }
PEVPM   }
PEVPM   Serial on perseus time = sweep/numprocs
PEVPM }
`, j.XSize, j.Iterations, j.SweepSeconds)
}

// Model parses the directive model.
func (j Jacobi) Model() (*pevpm.Program, error) {
	return pevpm.Parse(j.PVM())
}
