package workloads

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/pevpm"
)

func TestSummaExecutes(t *testing.T) {
	cfg := cluster.Perseus()
	s := Summa{PanelBytes: 4096, ReduceBytes: 64, Iterations: 20, FlopsSeconds: 1e-3}
	for _, n := range []int{2, 4, 8} {
		res, err := Execute(cfg, placement(t, &cfg, n, 1), uint64(n), s.Run)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Makespan.Seconds() < 20*1e-3 {
			t.Errorf("n=%d: makespan %v below compute floor", n, res.Makespan)
		}
	}
}

func TestSummaPVMShowsCollectives(t *testing.T) {
	s := DefaultSumma()
	text := s.PVM()
	for _, want := range []string{"Collective type = MPI_Bcast", "Collective type = MPI_Allreduce"} {
		if !strings.Contains(text, want) {
			t.Errorf("PVM missing %q:\n%s", want, text)
		}
	}
	if _, err := pevpm.Parse(text); err != nil {
		t.Errorf("PVM text does not parse: %v", err)
	}
}

// TestSummaClosedLoop validates the Collective directive extension end
// to end: benchmark Bcast and Allreduce with MPIBench, build a
// collective-capable database, and predict an application built from
// those collectives against its actual execution.
func TestSummaClosedLoop(t *testing.T) {
	cfg := cluster.Perseus()
	s := Summa{PanelBytes: 4096, ReduceBytes: 64, Iterations: 40, FlopsSeconds: 2e-3}

	var pls []cluster.Placement
	for _, n := range []int{4, 8, 16} {
		pls = append(pls, placement(t, &cfg, n, 1))
	}
	spec := mpibench.Spec{
		Sizes:       []int{64, 1024, 4096},
		Repetitions: 100,
		WarmUp:      10,
		SyncProbes:  20,
		Seed:        91,
	}
	set := &mpibench.Set{Cluster: cfg.Name}
	for _, op := range []mpibench.Op{mpibench.OpBcast, mpibench.OpAllreduce} {
		sp := spec
		sp.Op = op
		part, err := mpibench.RunSweep(cfg, sp, pls)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range part.Results {
			set.Add(r)
		}
	}
	db, err := pevpm.NewCollectiveDB(
		pevpm.LogGPStyleDB(200e-6, 10e6, 16384), // p2p base unused by this model
		set,
	)
	if err != nil {
		t.Fatal(err)
	}

	for _, pl := range pls {
		measured, err := Execute(cfg, pl, uint64(300+pl.NodeCount), s.Run)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := pevpm.EvaluateN(s.Model(), pevpm.Options{
			Procs: pl.NumProcs(), DB: db, Seed: uint64(400 + pl.NodeCount), NodeOf: pl.NodeOf,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		got := measured.Makespan.Seconds()
		rel := math.Abs(sum.Mean-got) / got
		t.Logf("summa %v: measured %.4fs predicted %.4fs (%.1f%% error)", pl, got, sum.Mean, rel*100)
		if rel > 0.15 {
			t.Errorf("summa %v: prediction error %.1f%% exceeds 15%%", pl, rel*100)
		}
	}
}
