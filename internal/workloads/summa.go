package workloads

import (
	"repro/internal/mpi"
	"repro/internal/pevpm"
)

// Summa is a collective-driven workload in the style of blocked parallel
// matrix multiplication: every iteration broadcasts a panel from the
// owner, computes the local update, and ends with a small allreduce (a
// convergence/validation scalar). It exercises the Collective directive
// extension: PEVPM prices whole collectives from MPIBench's measured
// distributions instead of composing them from point-to-point messages.
type Summa struct {
	PanelBytes   int // broadcast payload per iteration
	ReduceBytes  int // allreduce payload per iteration
	Iterations   int
	FlopsSeconds float64 // local compute per iteration per process
}

// DefaultSumma returns a balanced configuration: panel broadcasts of a
// few KB against milliseconds of compute.
func DefaultSumma() Summa {
	return Summa{
		PanelBytes:   8192,
		ReduceBytes:  64,
		Iterations:   100,
		FlopsSeconds: 2e-3,
	}
}

// SerialTime is the one-processor baseline.
func (s Summa) SerialTime(procs int) float64 {
	return float64(s.Iterations) * s.FlopsSeconds * float64(procs)
}

// Run executes the workload on one rank.
func (s Summa) Run(c *mpi.Comm) {
	procs := c.Size()
	for i := 0; i < s.Iterations; i++ {
		c.Bcast(i%procs, s.PanelBytes)
		c.Compute(s.FlopsSeconds)
		c.Allreduce(s.ReduceBytes)
	}
}

// Model builds the PEVPM model using Collective directives. Note how
// much smaller it is than a point-to-point decomposition of the binomial
// trees would be — the benefit of measuring collectives directly.
func (s Summa) Model() *pevpm.Program {
	prog := pevpm.NewProgram()
	prog.Params["iterations"] = float64(s.Iterations)
	prog.Body = pevpm.Block{&pevpm.Loop{
		Count: pevpm.Var("iterations"),
		Body: pevpm.Block{
			&pevpm.Coll{Op: "MPI_Bcast", Size: pevpm.Num(float64(s.PanelBytes))},
			&pevpm.Serial{Time: pevpm.Num(s.FlopsSeconds)},
			&pevpm.Coll{Op: "MPI_Allreduce", Size: pevpm.Num(float64(s.ReduceBytes))},
		},
	}}
	return prog
}

// PVM renders the model in directive syntax (demonstrating the
// Collective directive extension in the text format).
func (s Summa) PVM() string {
	return pevpm.Format(s.Model())
}
