package workloads

import (
	"repro/internal/mpi"
	"repro/internal/pevpm"
)

// FFT is the regular-global workload: a transform whose butterfly-style
// exchange pattern touches progressively distant partners — in stage k
// every rank sends its whole local block to the rank 2^k away on a ring
// and receives the block from 2^k behind, then recombines locally. With
// blocks of tens of kilobytes it exercises the rendezvous protocol and
// global bandwidth, the opposite regime from Jacobi's local 1 KB edges.
type FFT struct {
	PointsPerProc int     // complex points held per process
	BytesPerPoint int     // wire bytes per point (8 = single-precision complex)
	StageSeconds  float64 // local recombination time per stage per point
	Rounds        int     // whole transforms to run back to back
}

// DefaultFFT returns a configuration with 8 KB blocks — large enough
// that bandwidth matters, small enough that synchronized benchmark
// bursts of them do not saturate the backplane (predicting applications
// from saturated distributions overstates their communication time,
// because a self-paced application staggers its transfers; see
// EXPERIMENTS.md).
func DefaultFFT() FFT {
	return FFT{
		PointsPerProc: 1024,
		BytesPerPoint: 8,
		StageSeconds:  120e-9,
		Rounds:        20,
	}
}

// BlockBytes is the per-stage message size.
func (f FFT) BlockBytes() int { return f.PointsPerProc * f.BytesPerPoint }

// stages returns the exchange distances for a job of the given size:
// 1, 2, 4, ... < procs.
func stages(procs int) []int {
	var out []int
	for d := 1; d < procs; d <<= 1 {
		out = append(out, d)
	}
	return out
}

// SerialTime is the one-processor baseline: all stage recombinations,
// no communication. A P-process run performs log2(P) stages over
// PointsPerProc×P total points.
func (f FFT) SerialTime(procs int) float64 {
	totalPoints := float64(f.PointsPerProc * procs)
	return float64(f.Rounds) * float64(len(stages(procs))) * totalPoints * f.StageSeconds
}

const tagFFT = 2

// Run executes the FFT program on one rank.
func (f FFT) Run(c *mpi.Comm) {
	rank, procs := c.Rank(), c.Size()
	for round := 0; round < f.Rounds; round++ {
		for _, d := range stages(procs) {
			dst := (rank + d) % procs
			src := (rank - d + procs) % procs
			c.Sendrecv(dst, tagFFT, f.BlockBytes(), src, tagFFT)
			c.Compute(float64(f.PointsPerProc) * f.StageSeconds)
		}
	}
}

// Model builds the PEVPM model for a job of the given size. The stage
// distances depend on the machine size, so the model is generated per
// configuration — the paper likewise re-evaluates its models "with
// different machine size parameters".
func (f FFT) Model(procs int) *pevpm.Program {
	prog := pevpm.NewProgram()
	var body pevpm.Block
	for _, d := range stages(procs) {
		dist := pevpm.Num(float64(d))
		// Every rank sends to (procnum+d)%numprocs and receives from
		// (procnum-d+numprocs)%numprocs. Sends are eager-or-rendezvous
		// exactly as the executable's Sendrecv posts them.
		body = append(body,
			&pevpm.Msg{
				Kind: pevpm.MsgSend,
				Size: pevpm.Num(float64(f.BlockBytes())),
				From: pevpm.Var("procnum"),
				To:   addMod(dist),
			},
			&pevpm.Msg{
				Kind: pevpm.MsgRecv,
				Size: pevpm.Num(float64(f.BlockBytes())),
				From: subMod(dist),
				To:   pevpm.Var("procnum"),
			},
			&pevpm.Serial{Time: pevpm.Num(float64(f.PointsPerProc) * f.StageSeconds)},
		)
	}
	prog.Body = pevpm.Block{&pevpm.Loop{
		Count: pevpm.Num(float64(f.Rounds)),
		Body:  body,
	}}
	return prog
}

// addMod builds (procnum + d) % numprocs.
func addMod(d pevpm.Expr) pevpm.Expr {
	return pevpm.MustExpr("(procnum + " + d.String() + ") % numprocs")
}

// subMod builds (procnum - d + numprocs) % numprocs.
func subMod(d pevpm.Expr) pevpm.Expr {
	return pevpm.MustExpr("(procnum - " + d.String() + " + numprocs) % numprocs")
}
