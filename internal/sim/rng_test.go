package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	e := NewEngine(7)
	a, b := e.RNG("nic0"), e.RNG("nic1")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d identical draws across named streams", same)
	}
	if e.RNG("nic0") != a {
		t.Error("RNG(name) should return the same stream on reuse")
	}
}

func TestEngineSeedReproducibility(t *testing.T) {
	draw := func(seed uint64) []float64 {
		e := NewEngine(seed)
		r := e.RNG("x")
		out := make([]float64, 100)
		for i := range out {
			out[i] = r.Float64()
		}
		return out
	}
	a, b := draw(123), draw(123)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same engine seed diverged at %d", i)
		}
	}
	c := draw(124)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := NewRNG(2)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sq += f * f
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		f := r.NormFloat64()
		sum += f
		sq += f * f
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw %v < 0", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(5)
	n := 100001
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = r.LogNormal(math.Log(250e-6), 0.3)
	}
	// Median of a lognormal is exp(mu).
	count := 0
	for _, d := range draws {
		if d < 250e-6 {
			count++
		}
	}
	frac := float64(count) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(6)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamSeedDistinct(t *testing.T) {
	names := []string{"a", "b", "ab", "ba", "nic0", "nic1", "", "x"}
	seen := map[uint64]string{}
	for _, n := range names {
		s := streamSeed(99, n)
		if prev, ok := seen[s]; ok {
			t.Errorf("streamSeed collision: %q and %q", prev, n)
		}
		seen[s] = n
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(8)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate = %v", frac)
	}
}
