package sim

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
)

// Shards runs one simulation as a set of logical processes (LPs), each
// a full Engine with its own event queue and RNG streams, synchronised
// by conservative time windows. It is the substrate for sharding one
// large run across cores.
//
// The synchronisation protocol is classic conservative lookahead: if
// every cross-LP interaction takes at least `lookahead` of virtual time
// to land (for a network model, the inter-switch link latency), then
// all LPs can execute the window [start, start+lookahead] concurrently
// without ever receiving a message in their past. Cross-LP messages are
// buffered in per-source outboxes during the window and exchanged at
// the barrier.
//
// Determinism contract: the partition into LPs is fixed by the model
// (one LP per leaf switch, say) — the worker count only decides how
// many OS threads execute the LP set. Each LP's engine consumes only
// its own state, its own RNG streams (seeded SubSeed(seed, "shard/lp<i>"))
// and barrier-merged messages in a canonical order (timestamp, then
// source LP, then per-source posting order), so the simulation's output
// is byte-identical at any worker count, 1 included.
type Shards struct {
	lookahead Duration
	workers   int
	lps       []*Engine

	// outbox[src] collects the messages LP src posted this window. Only
	// the worker running LP src appends to it, so no locking is needed
	// during a window; the barrier drains all outboxes single-threaded.
	outbox [][]crossPost
	merged []crossPost

	// windows counts synchronisation windows executed (for reporting;
	// fewer, longer windows mean the lookahead is doing its job).
	windows uint64
}

// crossPost is one buffered cross-LP message.
type crossPost struct {
	at  Time
	src int32
	dst int32
	fn  func()
}

// NewShards builds a coordinator for nLPs logical processes seeded from
// seed, with the given conservative lookahead and worker count. A
// lookahead of zero or less is rejected: it would mean two LPs can
// affect each other in zero virtual time (a zero-latency cross-shard
// link), which makes conservative windows degenerate — such state must
// live inside one LP instead. workers <= 0 means GOMAXPROCS.
func NewShards(seed uint64, nLPs int, lookahead Duration, workers int) (*Shards, error) {
	if nLPs < 1 {
		return nil, fmt.Errorf("sim: shards need at least one LP, got %d", nLPs)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: lookahead %v must be positive: a zero-latency cross-shard link cannot be simulated conservatively (merge the endpoints into one LP)", lookahead)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nLPs {
		workers = nLPs
	}
	s := &Shards{
		lookahead: lookahead,
		workers:   workers,
		lps:       make([]*Engine, nLPs),
		outbox:    make([][]crossPost, nLPs),
	}
	for i := range s.lps {
		s.lps[i] = NewEngine(SubSeed(seed, "shard/lp"+strconv.Itoa(i)))
	}
	return s, nil
}

// LP returns the engine of logical process i. Model state owned by LP i
// must schedule exclusively on this engine.
func (s *Shards) LP(i int) *Engine { return s.lps[i] }

// NumLPs returns the number of logical processes.
func (s *Shards) NumLPs() int { return len(s.lps) }

// Workers returns the worker-thread count the coordinator executes
// windows with.
func (s *Shards) Workers() int { return s.workers }

// Lookahead returns the conservative lookahead bound.
func (s *Shards) Lookahead() Duration { return s.lookahead }

// Windows returns how many synchronisation windows Run executed.
func (s *Shards) Windows() uint64 { return s.windows }

// Post sends a cross-LP message: fn will run on LP dst's engine at
// virtual time at. It must be called from within LP src's execution
// (an event callback on s.LP(src)), and at must respect the lookahead:
// at >= src's current time + Lookahead. Violating the bound panics —
// it means the model promised a cross-shard latency it did not keep,
// which would silently break the determinism contract.
//
//detlint:hotpath
func (s *Shards) Post(src, dst int, at Time, fn func()) {
	if horizon := s.lps[src].Now().Add(s.lookahead); at < horizon {
		panic(fmt.Sprintf("sim: cross-shard post from LP %d to LP %d at %v violates the lookahead horizon %v",
			src, dst, at, horizon))
	}
	s.outbox[src] = append(s.outbox[src], crossPost{at: at, src: int32(src), dst: int32(dst), fn: fn})
}

// Run executes the sharded simulation to completion: windows of
// lookahead width, all LPs in parallel within a window, cross-LP
// messages exchanged at each barrier. It returns the largest LP clock
// (the makespan across shards). An error from any LP (deadlocked
// processes) aborts the run; the first error in LP order is returned so
// failures are as deterministic as successes.
func (s *Shards) Run() (Time, error) {
	errs := make([]error, len(s.lps))
	for {
		// The next window starts at the earliest pending event anywhere
		// (jumping idle gaps, e.g. a cluster-wide RTO sleep) and spans
		// one lookahead.
		start := Forever
		for _, lp := range s.lps {
			if t := lp.NextEventTime(); t < start {
				start = t
			}
		}
		if start == Forever {
			break // all queues drained; outboxes are empty at every barrier exit
		}
		end := start.Add(s.lookahead)
		s.windows++
		s.runWindow(end, errs)
		for _, err := range errs {
			if err != nil {
				return s.maxNow(), err
			}
		}
		s.exchange()
	}
	return s.maxNow(), nil
}

// runWindow advances every LP to end, on one goroutine per worker.
func (s *Shards) runWindow(end Time, errs []error) {
	if s.workers == 1 {
		for i, lp := range s.lps {
			_, errs[i] = lp.Run(end)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(s.workers)
	for w := 0; w < s.workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(s.lps); i += s.workers {
				_, errs[i] = s.lps[i].Run(end)
			}
		}(w)
	}
	wg.Wait()
}

// exchange drains every outbox into the destination engines in the
// canonical order: timestamp, then source LP, then per-source posting
// order (the stable sort preserves it). Delivery order into an engine
// decides its tie-breaking seq numbers, so this order is part of the
// determinism contract.
func (s *Shards) exchange() {
	s.merged = s.merged[:0]
	for src := range s.outbox {
		s.merged = append(s.merged, s.outbox[src]...)
		s.outbox[src] = s.outbox[src][:0]
	}
	if len(s.merged) == 0 {
		return
	}
	sort.SliceStable(s.merged, func(i, j int) bool {
		a, b := s.merged[i], s.merged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		return a.src < b.src
	})
	for i := range s.merged {
		m := &s.merged[i]
		s.lps[m.dst].At(m.at, m.fn)
		m.fn = nil // release the closure once handed over
	}
}

// maxNow returns the latest LP clock.
func (s *Shards) maxNow() Time {
	var max Time
	for _, lp := range s.lps {
		if t := lp.Now(); t > max {
			max = t
		}
	}
	return max
}
