package sim

import "testing"

// TestScheduleZeroAllocSteadyState is the tentpole's allocation guarantee:
// once the event pool and heap are warm, a schedule→pop cycle performs no
// heap allocations at all.
func TestScheduleZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm the pool and the heap's backing array past anything the
	// measured loop will need.
	for i := 0; i < 4*eventChunk; i++ {
		e.Schedule(Millisecond, fn)
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(Millisecond, fn)
		if _, err := e.Run(Forever); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule→pop allocates %v objects/op, want 0", allocs)
	}
}

// TestCancelZeroAllocSteadyState: cancelling recycles the struct without
// allocating either.
func TestCancelZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 4*eventChunk; i++ {
		e.Schedule(Millisecond, fn)
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.Schedule(Millisecond, fn)
		if !h.Cancel() {
			t.Fatal("Cancel failed")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule→cancel allocates %v objects/op, want 0", allocs)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 4*eventChunk; i++ {
		e.Schedule(Millisecond, fn)
	}
	if _, err := e.Run(Forever); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Millisecond, fn)
		if i%64 == 63 {
			if _, err := e.Run(Forever); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := e.Run(Forever); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := e.Schedule(Millisecond, fn)
		h.Cancel()
	}
}

// BenchmarkHeapChurn stresses the four-ary heap with a deep queue: many
// pending timers with interleaved pushes and pops, the shape of a netsim
// retransmission storm.
func BenchmarkHeapChurn(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.Schedule(Duration(i)*Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(depth+i)*Microsecond, fn)
		if len(e.events) > 0 {
			ev := e.heapPop()
			e.now = ev.at
			e.recycle(ev)
		}
	}
}
