package sim

import "math"

// RNG is a deterministic random stream (xoshiro256** seeded via
// splitmix64). Each stochastic component of a simulation should own a
// named stream (Engine.RNG) so adding a component never perturbs the
// draws seen by others.
type RNG struct {
	s [4]uint64

	haveGauss bool
	gauss     float64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// streamSeed derives a sub-seed for a named stream from the engine seed.
func streamSeed(seed uint64, name string) uint64 {
	// FNV-1a over the name, mixed with the seed through splitmix64.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	x := seed ^ h
	return splitmix64(&x)
}

// SubSeed derives the seed of an independent substream from a root seed
// and a cell key — the splittable scheme parallel experiment sweeps use.
// Every independent simulation cell (one placement, one Monte-Carlo
// replication, one collective row) seeds its own engine with
// SubSeed(root, key), so the draws a cell sees depend only on (root,
// key), never on which worker ran it or in what order. Distinct keys
// yield statistically independent streams; the same (root, key) pair is
// always the same stream.
func SubSeed(seed uint64, key string) uint64 {
	// FNV-1a over the key for dispersion across key strings, then two
	// splitmix64 rounds interleaving the root seed so that near-equal
	// seeds (1, 2, 3, ...) and near-equal keys ("cell0", "cell1", ...)
	// both avalanche into unrelated states.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := seed
	s := splitmix64(&x)
	x = s ^ h
	s = splitmix64(&x)
	return splitmix64(&x) ^ s>>32
}

// NewCellRNG returns the substream for one sweep cell: shorthand for
// NewRNG(SubSeed(seed, key)).
func NewCellRNG(seed uint64, key string) *RNG {
	return NewRNG(SubSeed(seed, key))
}

// NewRNG returns a stream seeded from seed. Equal seeds give equal streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n)) // bias negligible for n << 2^64
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the given swap func.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// NormFloat64 returns a standard normal draw (polar Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.haveGauss = true
		return u * f
	}
}

// ExpFloat64 returns an exponential draw with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns a draw whose logarithm is normal with the given
// location mu and scale sigma (both in log space).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
