package sim

import "testing"

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Second)
			times = append(times, p.Now())
		}
	})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	for i, tt := range times {
		want := TimeFromSeconds(float64(i + 1))
		if tt != want {
			t.Errorf("wake %d at %v, want %v", i, tt, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				p.Sleep(Second)
			}
		})
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcBlockUnblockHandshake(t *testing.T) {
	e := NewEngine(1)
	ready := false
	var consumer *Proc
	consumer = e.Spawn("consumer", func(p *Proc) {
		for !ready {
			p.Block("waiting for producer")
		}
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(2 * Second)
		ready = true
		consumer.Unblock()
	})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if !consumer.Done() {
		t.Error("consumer did not finish")
	}
}

func TestUnblockIsNoOpWhenNotBlocked(t *testing.T) {
	e := NewEngine(1)
	p := e.Spawn("p", func(p *Proc) { p.Sleep(Second) })
	// Unblock while the process is sleeping must not wake it early.
	e.Schedule(Millisecond, func() { p.Unblock() })
	var woke Time
	e.Spawn("obs", func(q *Proc) {
		for !p.Done() {
			q.Sleep(Millisecond)
		}
		woke = q.Now()
	})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if woke < TimeFromSeconds(1) {
		t.Errorf("process finished at %v, should not wake before 1s", woke)
	}
}

func TestYieldRunsPeersFirst(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("first", func(p *Proc) {
		order = append(order, "first-before")
		p.Yield()
		order = append(order, "first-after")
	})
	e.Spawn("second", func(p *Proc) {
		order = append(order, "second")
	})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []string{"first-before", "second", "first-after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("blocked", func(p *Proc) { p.Block("forever") })
	e.Spawn("sleeping", func(p *Proc) { p.Sleep(100 * Second) })
	if _, err := e.Run(TimeFromSeconds(1)); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if len(e.procs) != 0 {
		t.Errorf("procs remaining after Shutdown: %d", len(e.procs))
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("boom", func(p *Proc) { panic("model bug") })
	defer func() {
		if recover() == nil {
			t.Error("expected model panic to propagate")
		}
	}()
	e.Run(Forever)
}

func TestDeadlockReportNamesReason(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("rank3", func(p *Proc) { p.Block("Recv(src=5, tag=9)") })
	_, err := e.Run(Forever)
	if err == nil {
		t.Fatal("expected deadlock")
	}
	msg := err.Error()
	for _, frag := range []string{"rank3", "Recv(src=5, tag=9)"} {
		if !contains(msg, frag) {
			t.Errorf("deadlock message %q missing %q", msg, frag)
		}
	}
	e.Shutdown()
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
