// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock by executing events in timestamp
// order. Model code can be written either as plain event callbacks
// (Engine.Schedule) or as imperative processes (Engine.Spawn) that run in
// their own goroutines but are strictly interleaved by the engine, so
// simulations are fully deterministic for a given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute point in virtual time, in nanoseconds since the
// start of the simulation. Using integer nanoseconds (rather than float
// seconds) makes event ordering exact and simulations reproducible.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is distinct from
// time.Duration only to keep virtual and wall-clock quantities from being
// mixed accidentally; use FromReal/Real to convert deliberately.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a Time later than any event a simulation will produce.
const Forever Time = 1<<63 - 1

// FromReal converts a wall-clock duration into a virtual duration.
func FromReal(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Real converts a virtual duration into a wall-clock duration, which is
// handy for printing with time.Duration's formatter.
func (d Duration) Real() time.Duration { return time.Duration(d) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros reports the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// DurationFromSeconds converts float seconds to a Duration, rounding to
// the nearest nanosecond.
func DurationFromSeconds(s float64) Duration {
	if s <= 0 {
		return 0
	}
	return Duration(s*1e9 + 0.5)
}

// String formats the duration like time.Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// Add returns the time offset by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the time as floating-point seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the time as seconds with nanosecond precision.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	return fmt.Sprintf("%.9fs", t.Seconds())
}

// TimeFromSeconds converts float seconds since simulation start to a Time.
func TimeFromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	return Time(s*1e9 + 0.5)
}
