package sim

import "fmt"

type procState int

const (
	procReady    procState = iota // running or scheduled to run
	procSleeping                  // parked with a pending wakeup event
	procBlocked                   // parked until someone calls Unblock
	procDone                      // body returned
)

type procSignal int

const (
	sigRun procSignal = iota
	sigKill
)

// errKilled is panicked inside a process goroutine when the engine shuts
// down, unwinding the body so the goroutine can exit.
type errKilled struct{}

// Proc is an imperative simulation process. Its body runs in a dedicated
// goroutine, but the engine interleaves processes strictly one at a time:
// a process only executes between a resume and the next park, so model
// state needs no locking.
type Proc struct {
	e      *Engine
	name   string
	state  procState
	reason string // what the process is blocked on, for deadlock reports
	// reasonOn, when non-nil, describes the blocked operation lazily via
	// BlockReason — the hot path stores one interface word instead of
	// formatting a string nobody reads unless the simulation deadlocks.
	reasonOn BlockReasoner

	// wakeFn is the wake method bound once at Spawn so that Sleep and
	// Unblock schedule it without allocating a method value per call.
	wakeFn func()

	resume chan procSignal
	// yield transfers control back to the engine; a non-nil value is a
	// panic from the process body, re-raised in engine context.
	yield chan any
}

// BlockReasoner describes a blocked operation on demand. BlockOn stores
// the value and only calls BlockReason if a deadlock report or diagnostic
// needs the text, keeping string formatting off the simulation hot path.
type BlockReasoner interface {
	BlockReason() string
}

// Spawn creates a process and schedules its body to start at the current
// virtual time. The name appears in traces and deadlock reports.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		e:      e,
		name:   name,
		resume: make(chan procSignal),
		yield:  make(chan any),
	}
	p.wakeFn = p.wake
	e.procs[p] = struct{}{}
	e.mProcsTotal.Inc()
	e.mProcsPeak.SetMax(int64(len(e.procs)))
	go func() {
		if sig := <-p.resume; sig == sigKill {
			p.yield <- nil
			return
		}
		defer func() {
			var bad any
			if r := recover(); r != nil {
				if _, ok := r.(errKilled); !ok {
					bad = r // real panic from model code: re-raise in engine context
				}
			}
			p.state = procDone
			delete(e.procs, p)
			p.yield <- bad
		}()
		body(p)
	}()
	e.Schedule(0, p.wakeFn)
	e.Tracef("spawn %s", name)
	return p
}

// wake transfers control into the process until it parks or finishes.
// It runs in event context.
func (p *Proc) wake() {
	if p.state == procDone {
		return
	}
	p.state = procReady
	prev := p.e.current
	p.e.current = p
	p.resume <- sigRun
	bad := <-p.yield
	p.e.current = prev
	if bad != nil {
		panic(bad)
	}
}

// park gives control back to the engine and waits to be resumed.
func (p *Proc) park() {
	p.yield <- nil
	if sig := <-p.resume; sig == sigKill {
		panic(errKilled{})
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.e.now }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	p.checkCurrent("Sleep")
	p.state = procSleeping
	p.e.Schedule(d, p.wakeFn)
	p.park()
}

// Yield lets every other event and process scheduled at the current time
// run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Block parks the process until another process or event calls Unblock.
// The reason string is reported if the simulation deadlocks. Callers that
// wait for a condition should loop: for !cond { p.Block("...") }.
func (p *Proc) Block(reason string) {
	p.checkCurrent("Block")
	p.state = procBlocked
	p.reason = reason
	p.park()
	p.reason = ""
}

// BlockOn parks the process like Block, but the reason is produced
// on demand from r only if a deadlock report or BlockedOn query needs it.
// Hot paths that would otherwise format a fresh string per wait (MPI's
// Wait/Waitall) pass their request object instead.
func (p *Proc) BlockOn(r BlockReasoner) {
	p.checkCurrent("Block")
	p.state = procBlocked
	p.reasonOn = r
	p.park()
	p.reasonOn = nil
}

// Unblock makes a blocked process runnable at the current virtual time.
// It is a no-op unless the process is currently blocked, so it is always
// safe to call; waiters must re-check their condition after waking.
func (p *Proc) Unblock() {
	if p.state != procBlocked {
		return
	}
	p.state = procReady
	p.e.Schedule(0, p.wakeFn)
}

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == procDone }

// Blocked reports whether the process is parked waiting for Unblock.
func (p *Proc) Blocked() bool { return p.state == procBlocked }

// BlockedOn returns the reason the process is currently blocked on (as
// passed to Block), or "" when it is not blocked. Diagnostic tooling
// uses it to name a stuck process's pending operation.
func (p *Proc) BlockedOn() string {
	if p.state != procBlocked {
		return ""
	}
	if p.reasonOn != nil {
		return p.reasonOn.BlockReason()
	}
	return p.reason
}

func (p *Proc) describeBlocked() string {
	reason := p.reason
	if p.reasonOn != nil {
		reason = p.reasonOn.BlockReason()
	}
	if reason == "" {
		return p.name
	}
	return p.name + " (" + reason + ")"
}

func (p *Proc) checkCurrent(op string) {
	if p.e.current != p {
		panic(fmt.Sprintf("sim: %s.%s called from outside the process", p.name, op))
	}
}

// Shutdown unwinds every parked process goroutine. Call it when
// abandoning a simulation early (e.g. after RunUntil a cutoff) so
// goroutines do not outlive the engine — sweeps that run many engines
// concurrently rely on this to keep the goroutine count bounded. It is
// safe to call after a completed run (a no-op then) but must not be
// called while Run is executing, and the engine must not be Run again.
func (e *Engine) Shutdown() {
	//detlint:ordered -- teardown after the run: every non-done proc is killed and the engine is never run again, so kill order is unobservable
	for p := range e.procs {
		// Every non-done process is parked on <-p.resume: sleeping and
		// blocked ones between park/wake, ready ones either at their
		// initial resume (spawned, never woken) or waiting on a wake
		// event that will now never fire. All of them accept sigKill.
		if p.state != procDone {
			p.resume <- sigKill
			<-p.yield
		}
		delete(e.procs, p)
	}
}
