package sim

import "testing"

func TestSerializerFIFO(t *testing.T) {
	e := NewEngine(1)
	s := NewSerializer(e, "link")
	var starts, ends []Time
	for i := 0; i < 3; i++ {
		s.Enqueue(10*Millisecond, func(start, end Time) {
			starts = append(starts, start)
			ends = append(ends, end)
		})
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		wantStart := Time(Duration(i) * 10 * Millisecond)
		if starts[i] != wantStart {
			t.Errorf("request %d started at %v, want %v", i, starts[i], wantStart)
		}
		if ends[i] != wantStart.Add(10*Millisecond) {
			t.Errorf("request %d ended at %v", i, ends[i])
		}
	}
}

func TestSerializerIdleGap(t *testing.T) {
	e := NewEngine(1)
	s := NewSerializer(e, "link")
	var secondStart Time
	s.Enqueue(Millisecond, nil)
	e.Schedule(10*Millisecond, func() {
		s.Enqueue(Millisecond, func(start, _ Time) { secondStart = start })
	})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	// The server was idle, so the second request starts immediately.
	if secondStart != TimeFromSeconds(0.010) {
		t.Errorf("second start = %v, want 10ms", secondStart)
	}
}

func TestSerializerReturnValueMatchesCallback(t *testing.T) {
	e := NewEngine(1)
	s := NewSerializer(e, "link")
	var cbEnd Time
	predicted := s.Enqueue(7*Millisecond, func(_, end Time) { cbEnd = end })
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if predicted != cbEnd {
		t.Errorf("predicted end %v != callback end %v", predicted, cbEnd)
	}
}

func TestSerializerBacklog(t *testing.T) {
	e := NewEngine(1)
	s := NewSerializer(e, "link")
	if s.Backlog() != 0 {
		t.Error("idle server should have zero backlog")
	}
	s.Enqueue(5*Millisecond, nil)
	s.Enqueue(5*Millisecond, nil)
	if s.Backlog() != 10*Millisecond {
		t.Errorf("backlog = %v, want 10ms", s.Backlog())
	}
	if s.InFlight() != 2 {
		t.Errorf("in flight = %d, want 2", s.InFlight())
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if s.Backlog() != 0 || s.InFlight() != 0 {
		t.Error("server should drain completely")
	}
	if s.Served() != 2 {
		t.Errorf("served = %d, want 2", s.Served())
	}
	if s.BusyTime() != 10*Millisecond {
		t.Errorf("busy time = %v, want 10ms", s.BusyTime())
	}
}

func TestSerializerNegativeServicePanics(t *testing.T) {
	e := NewEngine(1)
	s := NewSerializer(e, "link")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative service time")
		}
	}()
	s.Enqueue(-1, nil)
}
