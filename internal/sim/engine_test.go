package sim

import (
	"errors"
	"testing"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*Microsecond, func() { got = append(got, 3) })
	e.Schedule(10*Microsecond, func() { got = append(got, 1) })
	e.Schedule(20*Microsecond, func() { got = append(got, 2) })
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, func() { got = append(got, i) })
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	e := NewEngine(1)
	var at1, at2 Time
	e.Schedule(Millisecond, func() {
		at1 = e.Now()
		e.Schedule(Second, func() { at2 = e.Now() })
	})
	end, err := e.Run(Forever)
	if err != nil {
		t.Fatal(err)
	}
	if at1 != Time(Millisecond) {
		t.Errorf("at1 = %v, want 1ms", at1)
	}
	if at2 != Time(Millisecond+Second) {
		t.Errorf("at2 = %v, want 1.001s", at2)
	}
	if end != at2 {
		t.Errorf("end = %v, want %v", end, at2)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(2*Second, func() { fired = true })
	end, err := e.Run(TimeFromSeconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if end != TimeFromSeconds(1) {
		t.Errorf("end = %v, want 1s", end)
	}
	// Resuming runs the event.
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event did not fire after resume")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.Schedule(Millisecond, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	if !h.Cancel() {
		t.Fatal("Cancel should succeed on pending event")
	}
	// Eager removal: the cancelled event leaves the queue immediately
	// instead of lingering as a tombstone until its timestamp.
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Cancel, want 0", e.Pending())
	}
	if h.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if h.Pending() {
		t.Fatal("handle still pending after Cancel")
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

// TestCancelDoesNotDragClock pins the eager-removal behaviour: a
// cancelled far-future timer no longer forces Run to sweep virtual time
// forward to its timestamp before noticing the queue is empty.
func TestCancelDoesNotDragClock(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(3600*Second, func() { t.Error("cancelled event fired") })
	h.Cancel()
	end, err := e.Run(Forever)
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("Run ended at %v, want 0 (no live events)", end)
	}
}

// TestStaleHandleCannotTouchRecycledEvent pins the generation counter:
// once an event fires its struct is recycled, and a handle from the
// previous life must neither report Pending nor Cancel the new occupant.
func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	stale := e.Schedule(Millisecond, func() {})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if stale.Pending() {
		t.Fatal("handle pending after its event fired")
	}
	// The free list is LIFO, so this reuses the struct stale points at.
	fired := false
	fresh := e.Schedule(Millisecond, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Fatal("test setup: second event did not recycle the first struct")
	}
	if stale.Pending() {
		t.Fatal("stale handle observes the recycled event")
	}
	if stale.Cancel() {
		t.Fatal("stale handle cancelled the recycled event")
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("recycled event was suppressed by a stale handle")
	}
}

// TestCancelMiddleOfHeap exercises heapRemove at interior positions: the
// surviving events must still run in timestamp order.
func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var got []int
	var handles []EventHandle
	for i := 0; i < 32; i++ {
		i := i
		handles = append(handles, e.Schedule(Duration(i+1)*Millisecond, func() { got = append(got, i) }))
	}
	for i := 0; i < 32; i += 3 {
		if !handles[i].Cancel() {
			t.Fatalf("Cancel(%d) failed", i)
		}
	}
	if want := 32 - 11; e.Pending() != want {
		t.Fatalf("Pending() = %d, want %d", e.Pending(), want)
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, i := range got {
		if i%3 == 0 {
			t.Errorf("cancelled event %d fired", i)
		}
		if i <= prev {
			t.Errorf("events out of order: %v", got)
			break
		}
		prev = i
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			e.Stop()
		}
		e.Schedule(Millisecond, tick)
	}
	e.Schedule(Millisecond, tick)
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		e.At(0, func() {})
	})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("waiter", func(p *Proc) {
		p.Block("message that never comes")
	})
	_, err := e.Run(Forever)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	e.Shutdown()
}

func TestNoDeadlockWhenUnblocked(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	p := e.Spawn("waiter", func(p *Proc) {
		p.Block("signal")
		woke = p.Now()
	})
	e.Schedule(3*Second, func() { p.Unblock() })
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if woke != TimeFromSeconds(3) {
		t.Errorf("woke at %v, want 3s", woke)
	}
}

func TestTimeConversions(t *testing.T) {
	if d := DurationFromSeconds(1.5); d != 1500*Millisecond {
		t.Errorf("DurationFromSeconds(1.5) = %v", d)
	}
	if s := (250 * Microsecond).Seconds(); s != 0.00025 {
		t.Errorf("Seconds = %v", s)
	}
	if u := (250 * Microsecond).Micros(); u != 250 {
		t.Errorf("Micros = %v", u)
	}
	if ts := TimeFromSeconds(2).Add(500 * Millisecond); ts != TimeFromSeconds(2.5) {
		t.Errorf("Add = %v", ts)
	}
	if d := TimeFromSeconds(2.5).Sub(TimeFromSeconds(1)); d != 1500*Millisecond {
		t.Errorf("Sub = %v", d)
	}
	if DurationFromSeconds(-1) != 0 {
		t.Error("negative seconds should clamp to 0")
	}
}
