package sim

import (
	"errors"
	"testing"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*Microsecond, func() { got = append(got, 3) })
	e.Schedule(10*Microsecond, func() { got = append(got, 1) })
	e.Schedule(20*Microsecond, func() { got = append(got, 2) })
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Millisecond, func() { got = append(got, i) })
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	e := NewEngine(1)
	var at1, at2 Time
	e.Schedule(Millisecond, func() {
		at1 = e.Now()
		e.Schedule(Second, func() { at2 = e.Now() })
	})
	end, err := e.Run(Forever)
	if err != nil {
		t.Fatal(err)
	}
	if at1 != Time(Millisecond) {
		t.Errorf("at1 = %v, want 1ms", at1)
	}
	if at2 != Time(Millisecond+Second) {
		t.Errorf("at2 = %v, want 1.001s", at2)
	}
	if end != at2 {
		t.Errorf("end = %v, want %v", end, at2)
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(2*Second, func() { fired = true })
	end, err := e.Run(TimeFromSeconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if end != TimeFromSeconds(1) {
		t.Errorf("end = %v, want 1s", end)
	}
	// Resuming runs the event.
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event did not fire after resume")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.Schedule(Millisecond, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle should be pending")
	}
	if !h.Cancel() {
		t.Fatal("Cancel should succeed on pending event")
	}
	if h.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			e.Stop()
		}
		e.Schedule(Millisecond, tick)
	}
	e.Schedule(Millisecond, tick)
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		e.At(0, func() {})
	})
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("waiter", func(p *Proc) {
		p.Block("message that never comes")
	})
	_, err := e.Run(Forever)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	e.Shutdown()
}

func TestNoDeadlockWhenUnblocked(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	p := e.Spawn("waiter", func(p *Proc) {
		p.Block("signal")
		woke = p.Now()
	})
	e.Schedule(3*Second, func() { p.Unblock() })
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if woke != TimeFromSeconds(3) {
		t.Errorf("woke at %v, want 3s", woke)
	}
}

func TestTimeConversions(t *testing.T) {
	if d := DurationFromSeconds(1.5); d != 1500*Millisecond {
		t.Errorf("DurationFromSeconds(1.5) = %v", d)
	}
	if s := (250 * Microsecond).Seconds(); s != 0.00025 {
		t.Errorf("Seconds = %v", s)
	}
	if u := (250 * Microsecond).Micros(); u != 250 {
		t.Errorf("Micros = %v", u)
	}
	if ts := TimeFromSeconds(2).Add(500 * Millisecond); ts != TimeFromSeconds(2.5) {
		t.Errorf("Add = %v", ts)
	}
	if d := TimeFromSeconds(2.5).Sub(TimeFromSeconds(1)); d != 1500*Millisecond {
		t.Errorf("Sub = %v", d)
	}
	if DurationFromSeconds(-1) != 0 {
		t.Error("negative seconds should clamp to 0")
	}
}
