package sim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentEngines runs many independent engines at once — the
// shape the sweep worker pool produces — and checks (a) under -race that
// no engine state is shared, (b) same-seed engines agree with a serial
// reference run, and (c) Shutdown reclaims every parked proc goroutine.
func TestConcurrentEngines(t *testing.T) {
	const engines = 12

	// Each engine simulates a tiny ping-pong workload plus procs that
	// are still parked when the horizon ends: a sleeper far beyond the
	// horizon and a proc blocked forever.
	runOne := func(seed uint64) Time {
		e := NewEngine(seed)
		defer e.Shutdown()
		var finish Time
		var pong *Proc
		pong = e.Spawn("pong", func(p *Proc) {
			p.Block("await ping")
			p.Sleep(Duration(e.RNG("pong").Intn(1000)+1) * Microsecond)
			finish = p.Now()
		})
		e.Spawn("ping", func(p *Proc) {
			p.Sleep(Duration(e.RNG("ping").Intn(1000)+1) * Microsecond)
			pong.Unblock()
		})
		e.Spawn("late-sleeper", func(p *Proc) { p.Sleep(1000 * Second) })
		e.Spawn("stuck", func(p *Proc) { p.Block("never woken") })
		if _, err := e.Run(TimeFromSeconds(1)); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		return finish
	}

	before := runtime.NumGoroutine()

	// Serial reference results, one per seed.
	want := make([]Time, engines)
	for i := range want {
		want[i] = runOne(uint64(i + 1))
	}

	// The same seeds concurrently must reproduce them exactly.
	got := make([]Time, engines)
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = runOne(uint64(i + 1))
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("seed %d: concurrent run finished at %v, serial at %v", i+1, got[i], want[i])
		}
	}

	// Parked-proc goroutines (late-sleeper, stuck) must have been
	// reclaimed by Shutdown. Give the runtime a moment to retire them.
	for deadline := time.Now().Add(5 * time.Second); ; {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentEnginesWithCellSeeds mirrors the sweep engine's seeding:
// every cell derives its stream from (root seed, cell key). Concurrent
// cells must land on the same trajectories as serial ones.
func TestConcurrentEnginesWithCellSeeds(t *testing.T) {
	const cells = 8
	trajectory := func(seed uint64) [4]float64 {
		e := NewEngine(seed)
		defer e.Shutdown()
		var out [4]float64
		e.Spawn("walker", func(p *Proc) {
			for i := range out {
				p.Sleep(Millisecond)
				out[i] = e.RNG("walk").Float64()
			}
		})
		if _, err := e.Run(Forever); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		return out
	}

	want := make([][4]float64, cells)
	for i := range want {
		want[i] = trajectory(SubSeed(42, fmt.Sprintf("cell%d", i)))
	}
	got := make([][4]float64, cells)
	var wg sync.WaitGroup
	for i := 0; i < cells; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = trajectory(SubSeed(42, fmt.Sprintf("cell%d", i)))
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: concurrent trajectory %v, serial %v", i, got[i], want[i])
		}
	}
}
