package sim

// Serializer models a work-conserving FIFO server — a network link, a NIC
// transmit engine, a disk — that serves requests one at a time. Instead of
// holding per-request events while waiting, it tracks the time the server
// becomes free, so enqueueing is O(1) and a request's completion is the
// only event scheduled. This "fluid FIFO" is the workhorse of the network
// model: it is orders of magnitude cheaper than modelling every frame yet
// preserves exact FIFO queueing delays.
type Serializer struct {
	e         *Engine
	name      string
	busyUntil Time

	// completeFn is the completion callback shared by every Enqueue with
	// no done function, built once so those enqueues allocate nothing.
	completeFn func()

	// accounting
	inFlight  int
	served    uint64
	busyAccum Duration
}

// NewSerializer returns an idle FIFO server attached to the engine.
func NewSerializer(e *Engine, name string) *Serializer {
	s := &Serializer{e: e, name: name}
	s.completeFn = func() {
		s.inFlight--
		s.served++
	}
	return s
}

// Enqueue appends a request needing the given service time and returns
// the time the request will complete. If done is non-nil it is invoked at
// completion with the service start and end times. FIFO order is exact:
// the request starts when every previously enqueued request has finished.
func (s *Serializer) Enqueue(service Duration, done func(start, end Time)) Time {
	if service < 0 {
		panic("sim: negative service time")
	}
	start := s.e.now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start.Add(service)
	s.busyUntil = end
	s.inFlight++
	s.busyAccum += service
	if done == nil {
		s.e.At(end, s.completeFn)
		return end
	}
	s.e.At(end, func() {
		s.inFlight--
		s.served++
		done(start, end)
	})
	return end
}

// Backlog returns how far in the future the server is already committed:
// the delay a zero-length request enqueued now would wait before starting.
func (s *Serializer) Backlog() Duration {
	if s.busyUntil <= s.e.now {
		return 0
	}
	return s.busyUntil.Sub(s.e.now)
}

// InFlight returns the number of accepted but not yet completed requests.
func (s *Serializer) InFlight() int { return s.inFlight }

// Served returns the number of completed requests.
func (s *Serializer) Served() uint64 { return s.served }

// BusyTime returns cumulative service time accepted so far; divided by
// elapsed virtual time it gives the offered utilisation.
func (s *Serializer) BusyTime() Duration { return s.busyAccum }

// Name returns the identifier given at construction.
func (s *Serializer) Name() string { return s.name }
