package sim

import (
	"testing"

	"repro/internal/metrics"
)

// TestKernelMetrics checks that the engine's built-in instruments track
// the event lifecycle exactly: every scheduled event is either fired or
// cancelled, and both paths recycle the struct.
func TestKernelMetrics(t *testing.T) {
	e := NewEngine(1)
	var handles []EventHandle
	for i := 0; i < 10; i++ {
		handles = append(handles, e.Schedule(Duration(i+1), func() {}))
	}
	// Cancel three before running; double-cancel must not double-count.
	for i := 0; i < 3; i++ {
		if !handles[i].Cancel() {
			t.Fatalf("cancel %d failed", i)
		}
		handles[i].Cancel()
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}

	s := e.Metrics().Snapshot()
	check := func(name string, want uint64) {
		t.Helper()
		got, ok := s.Counter("sim", name)
		if !ok {
			t.Fatalf("counter sim/%s missing", name)
		}
		if got != want {
			t.Errorf("sim/%s = %d, want %d", name, got, want)
		}
	}
	check("events_scheduled_total", 10)
	check("events_cancelled_total", 3)
	check("events_recycled_total", 10) // 3 cancelled + 7 fired
	check("event_pool_slabs_total", 1) // 10 events fit one 64-slab

	depth, ok := s.Gauge("sim", "event_heap_depth_max")
	if !ok || depth != 10 {
		t.Errorf("event_heap_depth_max = %d (ok=%v), want 10", depth, ok)
	}
}

// TestProcMetrics checks the process census instruments.
func TestProcMetrics(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 4; i++ {
		e.Spawn("worker", func(p *Proc) { p.Sleep(5) })
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	s := e.Metrics().Snapshot()
	if got, _ := s.Counter("sim", "procs_spawned_total"); got != 4 {
		t.Errorf("procs_spawned_total = %d, want 4", got)
	}
	if got, _ := s.Gauge("sim", "procs_alive_max"); got != 4 {
		t.Errorf("procs_alive_max = %d, want 4", got)
	}
}

// TestMetricsDoNotPerturbSimulation reruns the same workload on an
// engine and asserts the metrics registry had no effect on event
// ordering: both runs end at the same virtual time with identical
// snapshots. (The real end-to-end guarantee is the golden-trace and
// figure determinism suites; this is the kernel-level canary.)
func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	run := func() (Time, metrics.Snapshot) {
		e := NewEngine(99)
		rng := e.RNG("load")
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth == 0 {
				return
			}
			e.Schedule(Duration(rng.Intn(100)+1), func() {
				spawn(depth - 1)
				spawn(depth - 1)
			})
		}
		spawn(6)
		end, err := e.Run(Forever)
		if err != nil {
			t.Fatal(err)
		}
		return end, e.Metrics().Snapshot()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Errorf("end times differ: %v vs %v", t1, t2)
	}
	if v1, _ := s1.Counter("sim", "events_scheduled_total"); v1 == 0 {
		t.Error("no events recorded")
	}
	for i, p := range s1.Counters {
		if q := s2.Counters[i]; q.Key() != p.Key() || q.Value != p.Value {
			t.Errorf("counter %s differs between identical runs", p.Key())
		}
	}
}
