package sim

import (
	"fmt"
	"testing"
)

func TestSubSeedDeterministic(t *testing.T) {
	if SubSeed(1, "cell:a") != SubSeed(1, "cell:a") {
		t.Fatal("SubSeed is not a pure function")
	}
	if SubSeed(1, "cell:a") == SubSeed(2, "cell:a") {
		t.Error("different root seeds should give different sub-seeds")
	}
	if SubSeed(1, "cell:a") == SubSeed(1, "cell:b") {
		t.Error("different keys should give different sub-seeds")
	}
}

// TestSubSeedAvalanche checks that the adjacent roots and keys a sweep
// naturally produces (seed 1,2,3..., "rep0","rep1",...) land on
// unrelated seeds: across a large block of (root, key) cells every
// derived seed is distinct.
func TestSubSeedAvalanche(t *testing.T) {
	seen := make(map[uint64]string)
	for root := uint64(0); root < 64; root++ {
		for cell := 0; cell < 64; cell++ {
			key := fmt.Sprintf("fig:%d:rep%d", cell/8, cell%8)
			s := SubSeed(root, key)
			id := fmt.Sprintf("root %d key %q", root, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between %s and %s", prev, id)
			}
			seen[s] = id
		}
	}
}

// TestCellStreamIndependence is the sweep-engine guarantee: the RNG
// substreams of distinct cells never overlap. 64 cell streams each draw
// 4096 values; any shared state between two streams would replay the
// same xoshiro orbit and collide somewhere in the union. (With random
// 64-bit values the chance of any collision among 2^18 draws is ~2^-28,
// so a collision means structure, not bad luck.)
func TestCellStreamIndependence(t *testing.T) {
	const streams = 64
	const draws = 4096
	seen := make(map[uint64]int, streams*draws)
	for c := 0; c < streams; c++ {
		r := NewCellRNG(1, fmt.Sprintf("cell%d", c))
		for d := 0; d < draws; d++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup && prev != c {
				t.Fatalf("streams %d and %d both produced %#x", prev, c, v)
			}
			seen[v] = c
		}
	}
}

// TestCellStreamUniformity sanity-checks that substreams look uniform:
// per-stream mean of Float64 stays near 1/2 even for related keys.
func TestCellStreamUniformity(t *testing.T) {
	for c := 0; c < 16; c++ {
		r := NewCellRNG(7, fmt.Sprintf("rep%d", c))
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Float64()
		}
		if mean := sum / n; mean < 0.48 || mean > 0.52 {
			t.Errorf("stream rep%d: mean %.4f", c, mean)
		}
	}
}
