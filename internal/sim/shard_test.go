package sim

import (
	"fmt"
	"strings"
	"testing"
)

func TestShardsValidation(t *testing.T) {
	// Zero-latency cross-shard links cannot be simulated conservatively:
	// the lookahead must be strictly positive.
	if _, err := NewShards(1, 2, 0, 1); err == nil {
		t.Fatal("zero lookahead accepted")
	} else if !strings.Contains(err.Error(), "zero-latency") {
		t.Errorf("error should explain the zero-latency rejection: %v", err)
	}
	if _, err := NewShards(1, 2, -Duration(Microsecond), 1); err == nil {
		t.Fatal("negative lookahead accepted")
	}
	if _, err := NewShards(1, 0, Duration(Microsecond), 1); err == nil {
		t.Fatal("zero LPs accepted")
	}
	s, err := NewShards(1, 4, Duration(Microsecond), 99)
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 4 {
		t.Errorf("workers should cap at the LP count, got %d", s.Workers())
	}
	if s.NumLPs() != 4 || s.Lookahead() != Duration(Microsecond) {
		t.Error("accessors broken")
	}
}

func TestShardsCrossPostAtExactHorizon(t *testing.T) {
	// A message posted at exactly now+lookahead is legal and must land
	// at exactly that virtual time on the destination LP.
	const L = Duration(10 * Microsecond)
	s, err := NewShards(7, 2, L, 1)
	if err != nil {
		t.Fatal(err)
	}
	var arrived Time
	start := TimeFromSeconds(0.001)
	s.LP(0).At(start, func() {
		s.Post(0, 1, s.LP(0).Now().Add(L), func() {
			arrived = s.LP(1).Now()
		})
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := start.Add(L); arrived != want {
		t.Fatalf("horizon message arrived at %v, want %v", arrived, want)
	}
	if s.Windows() == 0 {
		t.Error("run should have executed at least one window")
	}
}

func TestShardsPostBelowHorizonPanics(t *testing.T) {
	const L = Duration(10 * Microsecond)
	s, err := NewShards(7, 2, L, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.LP(0).At(TimeFromSeconds(0.001), func() {
		defer func() {
			if recover() == nil {
				t.Error("post one tick below the lookahead horizon did not panic")
			}
		}()
		s.Post(0, 1, s.LP(0).Now().Add(L)-1, func() {})
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// shardRingRun drives a small stochastic model over the Shards
// coordinator and serialises everything observable about it: per-LP
// event logs, RNG-drawn payloads, final clocks and metrics counters.
// Two runs are byte-identical iff the simulation is deterministic.
func shardRingRun(t *testing.T, seed uint64, lps, workers int) string {
	t.Helper()
	const L = Duration(5 * Microsecond)
	s, err := NewShards(seed, lps, L, workers)
	if err != nil {
		t.Fatal(err)
	}
	logs := make([][]string, lps)
	var hop func(lp, hops int, token uint64)
	hop = func(lp, hops int, token uint64) {
		e := s.LP(lp)
		logs[lp] = append(logs[lp], fmt.Sprintf("t=%v token=%d hops=%d", e.Now(), token, hops))
		if hops == 0 {
			return
		}
		// Mix in LP-local randomness both for the routing delay and the
		// token, so any cross-worker interleaving of RNG streams would
		// change the transcript.
		rng := e.RNG("hop")
		delay := L + Duration(rng.Intn(int(L)))
		next := (lp + 1 + rng.Intn(lps-1)) % lps
		tok := token ^ rng.Uint64()
		s.Post(lp, next, e.Now().Add(delay), func() { hop(next, hops-1, tok) })
	}
	for i := 0; i < lps; i++ {
		lp := i
		s.LP(lp).At(Time(lp+1)*Time(Microsecond), func() { hop(lp, 12, uint64(lp)*977) })
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "end=%v windows=%d\n", end, s.Windows())
	for i, lines := range logs {
		fmt.Fprintf(&b, "lp%d now=%v\n", i, s.LP(i).Now())
		for _, l := range lines {
			fmt.Fprintf(&b, "  %s\n", l)
		}
		snap := s.LP(i).Metrics().Snapshot()
		sched, _ := snap.Counter("sim", "events_scheduled_total")
		fmt.Fprintf(&b, "  scheduled=%d\n", sched)
	}
	return b.String()
}

func TestShardsByteIdenticalAcrossWorkerCounts(t *testing.T) {
	// The determinism contract: worker count is an execution detail.
	// Run the same seeded model serially and at several parallelism
	// levels (the -race build makes this a concurrency test too) and
	// require byte-identical transcripts.
	serial := shardRingRun(t, 42, 6, 1)
	if !strings.Contains(serial, "token=") {
		t.Fatal("model produced no transcript")
	}
	for _, workers := range []int{2, 3, 6} {
		got := shardRingRun(t, 42, 6, workers)
		if got != serial {
			t.Fatalf("workers=%d transcript differs from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
	// And a different seed must give a different transcript — the equality
	// above is not vacuous.
	if other := shardRingRun(t, 43, 6, 1); other == serial {
		t.Error("different seeds produced identical transcripts")
	}
}

func TestEventPoolSlabGrowthUnderLoad(t *testing.T) {
	// The pooled event core must absorb very deep queues (a 2048-node
	// run holds hundreds of thousands of pending events) by growing
	// slab by slab, then recycle every struct.
	e := NewEngine(1)
	const n = 120_000
	fired := 0
	for i := 0; i < n; i++ {
		e.At(Time(i+1), func() { fired++ })
	}
	if e.Pending() != n {
		t.Fatalf("Pending = %d, want %d", e.Pending(), n)
	}
	snap := e.Metrics().Snapshot()
	slabs, _ := snap.Counter("sim", "event_pool_slabs_total")
	if want := uint64((n + eventChunk - 1) / eventChunk); slabs != want {
		t.Errorf("slabs = %d, want %d for %d pending events", slabs, want, n)
	}
	if depth, _ := snap.Gauge("sim", "event_heap_depth_max"); depth < n {
		t.Errorf("heap depth max = %d, want >= %d", depth, n)
	}
	if _, err := e.Run(Forever); err != nil {
		t.Fatal(err)
	}
	if fired != n {
		t.Fatalf("fired %d of %d", fired, n)
	}
	snap = e.Metrics().Snapshot()
	recycled, _ := snap.Counter("sim", "events_recycled_total")
	if recycled != n {
		t.Errorf("recycled = %d, want %d", recycled, n)
	}
	// The pool now holds every struct; scheduling again must not grow it.
	for i := 0; i < 1000; i++ {
		e.At(e.Now().Add(Duration(i+1)), func() {})
	}
	snap = e.Metrics().Snapshot()
	if after, _ := snap.Counter("sim", "event_pool_slabs_total"); after != slabs {
		t.Errorf("pool grew (%d -> %d slabs) despite %d free structs", slabs, after, n)
	}
}
