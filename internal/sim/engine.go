package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// An event is a callback scheduled at a point in virtual time. Events with
// equal timestamps execute in scheduling order (seq breaks ties), which
// keeps simulations deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 once popped or cancelled
	canceled bool
}

// EventHandle allows a scheduled event to be cancelled before it fires.
type EventHandle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op. Returns true if the event
// was still pending.
func (h *EventHandle) Cancel() bool {
	if h == nil || h.ev == nil || h.ev.canceled || h.ev.index < 0 {
		return false
	}
	h.ev.canceled = true
	return true
}

// Pending reports whether the event is still waiting to fire.
func (h *EventHandle) Pending() bool {
	return h != nil && h.ev != nil && !h.ev.canceled && h.ev.index >= 0
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// ErrDeadlock is returned (wrapped) by Run when the event queue drains
// while spawned processes are still blocked: no event can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock")

// Engine is the discrete-event simulation core. It is not safe for
// concurrent use; all model code runs on the engine's schedule, either as
// event callbacks or as processes interleaved one at a time.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64

	seed uint64
	rngs map[string]*RNG

	procs   map[*Proc]struct{}
	current *Proc // process currently holding control, nil in event context

	// Tracer, when non-nil, receives a line for significant kernel
	// happenings (process start/stop, deadlock diagnosis). Model code can
	// also log through Engine.Tracef.
	Tracer func(t Time, line string)

	stopped bool
}

// NewEngine returns an engine whose random streams derive from seed.
// The same seed always yields the same simulation.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		seed:  seed,
		rngs:  make(map[string]*RNG),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// RNG returns the named deterministic random stream, creating it on first
// use. Distinct names yield independent streams; the same (seed, name)
// pair always yields the same sequence.
func (e *Engine) RNG(name string) *RNG {
	r, ok := e.rngs[name]
	if !ok {
		r = NewRNG(streamSeed(e.seed, name))
		e.rngs[name] = r
	}
	return r
}

// Schedule runs fn after delay (>= 0) of virtual time.
func (e *Engine) Schedule(delay Duration, fn func()) *EventHandle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) *EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at %v, now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &EventHandle{ev: ev}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Tracef emits a formatted line to the engine's Tracer, if any.
func (e *Engine) Tracef(format string, args ...any) {
	if e.Tracer != nil {
		e.Tracer(e.now, fmt.Sprintf(format, args...))
	}
}

// Run executes events until the queue drains, Stop is called, or the
// virtual clock would pass until. Pass Forever to run to completion.
// It returns the final virtual time. If the queue drains while spawned
// processes remain blocked, Run returns an error wrapping ErrDeadlock
// that names the stuck processes.
func (e *Engine) Run(until Time) (Time, error) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			e.now = until
			return e.now, nil
		}
		heap.Pop(&e.events)
		if next.canceled {
			continue
		}
		e.now = next.at
		next.fn()
	}
	if blocked := e.blockedProcs(); len(blocked) > 0 && !e.stopped {
		return e.now, fmt.Errorf("%w: %d process(es) blocked forever: %s",
			ErrDeadlock, len(blocked), strings.Join(blocked, ", "))
	}
	return e.now, nil
}

// blockedProcs lists the names of spawned processes that are parked with
// no pending wakeup, sorted for stable error messages.
func (e *Engine) blockedProcs() []string {
	var names []string
	for p := range e.procs {
		if p.state == procBlocked {
			names = append(names, p.describeBlocked())
		}
	}
	sort.Strings(names)
	return names
}

// Pending reports how many events are waiting in the queue (including
// cancelled ones not yet popped); it is intended for tests.
func (e *Engine) Pending() int { return len(e.events) }
