package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// An event is a callback scheduled at a point in virtual time. Events with
// equal timestamps execute in scheduling order (seq breaks ties), which
// keeps simulations deterministic.
//
// Events are pooled: the engine recycles the struct on a free list the
// moment the event fires or is cancelled, so steady-state scheduling
// performs no heap allocations. The generation counter distinguishes the
// lives of a recycled struct — a handle from a previous life can neither
// cancel nor observe the event now occupying the struct.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	gen   uint64
	index int32 // position in the heap, -1 when popped, cancelled or free
}

// EventHandle allows a scheduled event to be cancelled before it fires.
// It is a small value; copying it is cheap and all copies refer to the
// same scheduled event.
type EventHandle struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing and removes it from the queue
// immediately, so cancelled events neither linger in the heap nor delay
// deadlock detection. Cancelling an event that already fired (or was
// already cancelled) is a no-op. Returns true if the event was still
// pending.
func (h EventHandle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.index < 0 {
		return false
	}
	h.e.mCancelled.Inc()
	h.e.heapRemove(int(ev.index))
	h.e.recycle(ev)
	return true
}

// Pending reports whether the event is still waiting to fire.
func (h EventHandle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && h.ev.index >= 0
}

// ErrDeadlock is returned (wrapped) by Run when the event queue drains
// while spawned processes are still blocked: no event can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock")

// Engine is the discrete-event simulation core. It is not safe for
// concurrent use; all model code runs on the engine's schedule, either as
// event callbacks or as processes interleaved one at a time.
type Engine struct {
	now Time
	// events is a four-ary indexed min-heap ordered by (at, seq). Four-ary
	// halves the tree depth of the binary heap and keeps children of a
	// node in one cache line, which measurably speeds the pop-heavy hot
	// loop; the index stored in each event makes Cancel an O(log n)
	// removal instead of a deferred tombstone.
	events []*event
	free   []*event // recycled event structs, reused by At
	seq    uint64

	seed uint64
	rngs map[string]*RNG

	procs   map[*Proc]struct{}
	current *Proc // process currently holding control, nil in event context

	// Tracer, when non-nil, receives a line for significant kernel
	// happenings (process start/stop, deadlock diagnosis). Model code can
	// also log through Engine.Tracef.
	Tracer func(t Time, line string)

	stopped bool

	// reg is the engine's metrics registry. Model layers built on the
	// engine (netsim, mpi) register their instruments here, so one
	// snapshot at the end of a run captures the whole stack of one
	// simulation cell. The kernel counters below live on dedicated
	// fields because they sit on the allocation-free scheduling hot
	// path.
	reg         *metrics.Registry
	mScheduled  *metrics.Counter // events handed to At/Schedule
	mCancelled  *metrics.Counter // events removed by Cancel before firing
	mRecycled   *metrics.Counter // event structs returned to the pool
	mSlabs      *metrics.Counter // eventChunk slabs the pool grew by
	mHeapDepth  *metrics.Gauge   // deepest simultaneous event queue
	mProcsTotal *metrics.Counter // processes spawned
	mProcsPeak  *metrics.Gauge   // most processes alive at once
}

// NewEngine returns an engine whose random streams derive from seed.
// The same seed always yields the same simulation.
func NewEngine(seed uint64) *Engine {
	e := &Engine{
		seed:  seed,
		rngs:  make(map[string]*RNG),
		procs: make(map[*Proc]struct{}),
		reg:   metrics.NewRegistry(),
	}
	e.mScheduled = e.reg.Counter("sim", "events_scheduled_total")
	e.mCancelled = e.reg.Counter("sim", "events_cancelled_total")
	e.mRecycled = e.reg.Counter("sim", "events_recycled_total")
	e.mSlabs = e.reg.Counter("sim", "event_pool_slabs_total")
	e.mHeapDepth = e.reg.Gauge("sim", "event_heap_depth_max")
	e.mProcsTotal = e.reg.Counter("sim", "procs_spawned_total")
	e.mProcsPeak = e.reg.Gauge("sim", "procs_alive_max")
	return e
}

// Metrics returns the engine's registry. Layers built on the engine
// register their instruments here; one Snapshot captures the cell.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() uint64 { return e.seed }

// RNG returns the named deterministic random stream, creating it on first
// use. Distinct names yield independent streams; the same (seed, name)
// pair always yields the same sequence.
func (e *Engine) RNG(name string) *RNG {
	r, ok := e.rngs[name]
	if !ok {
		r = NewRNG(streamSeed(e.seed, name))
		e.rngs[name] = r
	}
	return r
}

// eventChunk is how many event structs one pool refill allocates. Batching
// keeps warm-up allocation count low without holding more than a few KiB
// per idle engine.
const eventChunk = 64

// alloc returns an event struct, reusing a recycled one when available.
//
//detlint:hotpath
func (e *Engine) alloc() *event {
	if n := len(e.free) - 1; n >= 0 {
		ev := e.free[n]
		e.free[n] = nil
		e.free = e.free[:n]
		return ev
	}
	e.mSlabs.Inc()
	chunk := make([]event, eventChunk)
	for i := range chunk[1:] {
		chunk[1+i].index = -1
		e.free = append(e.free, &chunk[1+i])
	}
	chunk[0].index = -1
	return &chunk[0]
}

// recycle retires an event struct to the free list. Bumping the
// generation invalidates every handle to the life that just ended, and
// dropping fn releases the callback's closure to the collector.
//
//detlint:hotpath
func (e *Engine) recycle(ev *event) {
	e.mRecycled.Inc()
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Schedule runs fn after delay (>= 0) of virtual time.
//
//detlint:hotpath
func (e *Engine) Schedule(delay Duration, fn func()) EventHandle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// At runs fn at absolute virtual time t, which must not be in the past.
//
//detlint:hotpath
func (e *Engine) At(t Time, fn func()) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at %v, now %v", t, e.now))
	}
	e.seq++
	e.mScheduled.Inc()
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.heapPush(ev)
	e.mHeapDepth.SetMax(int64(len(e.events)))
	return EventHandle{e: e, ev: ev, gen: ev.gen}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Tracef emits a formatted line to the engine's Tracer, if any.
func (e *Engine) Tracef(format string, args ...any) {
	if e.Tracer != nil {
		e.Tracer(e.now, fmt.Sprintf(format, args...))
	}
}

// Run executes events until the queue drains, Stop is called, or the
// virtual clock would pass until. Pass Forever to run to completion.
// It returns the final virtual time. If the queue drains while spawned
// processes remain blocked, Run returns an error wrapping ErrDeadlock
// that names the stuck processes.
func (e *Engine) Run(until Time) (Time, error) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		next := e.events[0]
		if next.at > until {
			e.now = until
			return e.now, nil
		}
		e.heapPop()
		e.now = next.at
		fn := next.fn
		e.recycle(next)
		fn()
	}
	if blocked := e.blockedProcs(); len(blocked) > 0 && !e.stopped {
		return e.now, fmt.Errorf("%w: %d process(es) blocked forever: %s",
			ErrDeadlock, len(blocked), strings.Join(blocked, ", "))
	}
	return e.now, nil
}

// blockedProcs lists the names of spawned processes that are parked with
// no pending wakeup, sorted for stable error messages.
func (e *Engine) blockedProcs() []string {
	var names []string
	for p := range e.procs {
		if p.state == procBlocked {
			names = append(names, p.describeBlocked())
		}
	}
	sort.Strings(names)
	return names
}

// Pending reports how many events are waiting in the queue. Cancelled
// events are removed eagerly, so the count is exact.
func (e *Engine) Pending() int { return len(e.events) }

// NextEventTime returns the timestamp of the earliest pending event, or
// Forever when the queue is empty. Shards uses it to pick conservative
// window boundaries without disturbing the queue.
//
//detlint:hotpath
func (e *Engine) NextEventTime() Time {
	if len(e.events) == 0 {
		return Forever
	}
	return e.events[0].at
}

// eventLess orders the heap by timestamp, breaking ties by scheduling
// order so simultaneous events run FIFO.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush inserts ev into the four-ary heap.
//
//detlint:hotpath
func (e *Engine) heapPush(ev *event) {
	ev.index = int32(len(e.events))
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

// heapPop removes and returns the earliest event.
//
//detlint:hotpath
func (e *Engine) heapPop() *event {
	h := e.events
	ev := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		e.events[0] = last
		last.index = 0
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// heapRemove deletes the event at heap position i (Cancel's eager
// removal path).
//
//detlint:hotpath
func (e *Engine) heapRemove(i int) {
	h := e.events
	ev := h[i]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if i < n {
		e.events[i] = last
		last.index = int32(i)
		e.siftDown(i)
		if e.events[i] == last {
			e.siftUp(i)
		}
	}
	ev.index = -1
}

//detlint:hotpath
func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !eventLess(ev, p) {
			break
		}
		h[i] = p
		p.index = int32(i)
		i = parent
	}
	h[i] = ev
	ev.index = int32(i)
}

//detlint:hotpath
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[min]) {
				min = c
			}
		}
		if !eventLess(h[min], ev) {
			break
		}
		h[i] = h[min]
		h[i].index = int32(i)
		i = min
	}
	h[i] = ev
	ev.index = int32(i)
}
