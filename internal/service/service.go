// Package service turns the repro pipeline into a long-running
// prediction server: clients POST a PEVPM model plus a cluster
// description, a seed and prediction options, and get back the
// predicted makespan distribution with confidence intervals, mpilint
// findings, a deterministic metrics snapshot and (optionally) a Chrome
// trace of the predicted timeline.
//
// Production concerns are the feature, and every one of them is built
// on the repository's determinism contract: the response body for a
// given request is a pure function of the request. Same request + seed
// → same bytes, at any engine-pool worker count, whether the fitted
// performance database came from the cache or was built fresh, and
// whether the response itself was computed or replayed from the
// response cache. That is what makes the service cacheable at every
// layer (Hunold & Carpen-Amarie's reproducibility argument, applied to
// serving):
//
//   - fitted performance databases are expensive (each is a full
//     MPIBench sweep over the simulated cluster) and are therefore kept
//     in an LRU keyed by (cluster-config hash, benchmark spec,
//     benchmark version); Histogram.Freeze makes the histograms inside
//     shareable read-only across concurrent requests
//   - whole responses are kept in a second LRU keyed by the hash of the
//     canonicalised request, so a repeated request serves without
//     re-running prediction at all
//   - identical requests in flight at the same time coalesce onto one
//     computation (single-flight), so a thundering herd builds each
//     database and each response exactly once
//   - Monte-Carlo replications from all concurrent requests are batched
//     onto one shared engine pool; each replication derives its RNG
//     stream from the request seed via sim.SubSeed, so scheduling can
//     never change a prediction
//
// The service instruments itself with the internal/metrics registry
// (requests, cache hits/misses, queue depth, per-stage latency) and
// exposes the snapshot in Prometheus format; those instruments are
// deliberately volatile (wall-clock latencies, cache state) and are
// never part of a response body. See docs/SERVICE.md.
package service

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mpibench"
	"repro/internal/mpilint"
)

// Schema versions the request and response layout; bump it when fields
// change meaning so clients and golden replies can refuse mismatches.
const Schema = 1

// BenchVersion fingerprints the benchmark semantics baked into fitted
// performance databases. It is part of every database cache key: bump
// it whenever internal/mpibench changes what a measurement means, so a
// stale cached database can never masquerade as current.
const BenchVersion = 1

// Config sizes the service. The zero value of every field selects the
// default noted on it.
type Config struct {
	// Workers is the engine-pool size: how many Monte-Carlo virtual
	// machines run concurrently across all requests (0 = GOMAXPROCS).
	Workers int

	// DBCacheSize caps the fitted-performance-database LRU (default 16
	// databases; each holds the frozen histograms of one benchmark
	// sweep).
	DBCacheSize int

	// RespCacheSize caps the whole-response LRU (default 256 bodies).
	RespCacheSize int

	// MaxBodyBytes is the request size limit (default 1 MiB). Requests
	// beyond it are rejected with HTTP 413.
	MaxBodyBytes int64

	// Timeout bounds one request end to end (default 120 s). A request
	// that exceeds it gets HTTP 504; the computation still completes in
	// the background and populates the caches.
	Timeout time.Duration

	// MaxRuns caps Monte-Carlo replications per request (default 512);
	// MaxProcs caps the modelled world size (default 4096). Both keep a
	// single request from monopolising the pool.
	MaxRuns  int
	MaxProcs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DBCacheSize <= 0 {
		c.DBCacheSize = 16
	}
	if c.RespCacheSize <= 0 {
		c.RespCacheSize = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 512
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = 4096
	}
	return c
}

// ClusterSpec selects and optionally reshapes the simulated machine.
type ClusterSpec struct {
	// Name picks the base configuration: "perseus" (default) or
	// "myrinet".
	Name string `json:"name,omitempty"`

	// Topology, when non-empty, replaces the flat switch list with a
	// hierarchical fabric via cluster.ParseTopology (e.g.
	// "fattree:128x32x4", "dragonfly:8x4x8+2rail").
	Topology string `json:"topology,omitempty"`
}

// BenchSpec describes the MPIBench sweep that fits the performance
// database backing a prediction. It is part of the database cache key:
// two requests agreeing on cluster and bench spec share one database.
type BenchSpec struct {
	// Op is the benchmarked operation (default MPI_Send).
	Op string `json:"op,omitempty"`

	// Sizes are the measured message sizes (default 0, 256, 1024, 4096
	// bytes).
	Sizes []int `json:"sizes,omitempty"`

	// Placements are the benchmarked n×p configurations, each one
	// contention level of the database (default "1x2", "2x1", "4x1",
	// clamped to the cluster, plus the modelled world's own size).
	Placements []string `json:"placements,omitempty"`

	// Repetitions / WarmUp / SyncProbes mirror mpibench.Spec (defaults
	// 40 / 10 / 8).
	Repetitions int `json:"repetitions,omitempty"`
	WarmUp      int `json:"warmup,omitempty"`
	SyncProbes  int `json:"sync_probes,omitempty"`

	// Seed drives the benchmark simulation (default 1). Distinct from
	// the request seed: many predictions share one measured database.
	Seed uint64 `json:"seed,omitempty"`
}

// Request is the POST /v1/predict body. Unknown fields are rejected.
type Request struct {
	// Model is the PEVPM model source (.pvm directive syntax).
	Model string `json:"model"`

	// Procs is the modelled world size; PerNode how many processes
	// share one SMP node (default 1), which prices intra-node messages
	// from the intra-node distributions.
	Procs   int `json:"procs"`
	PerNode int `json:"per_node,omitempty"`

	// Seed drives all Monte-Carlo randomness. Same request + seed →
	// same response bytes.
	Seed uint64 `json:"seed"`

	// Runs is the number of Monte-Carlo replications (default 20).
	Runs int `json:"runs,omitempty"`

	// Mode selects the paper's prediction variants: "dist" (default,
	// full distributions), "avg-nxp", "avg-2x1", "min-2x1".
	Mode string `json:"mode,omitempty"`

	// Fitted replaces measured histograms with parametric fits (§2's
	// "parametrised functions") before prediction.
	Fitted bool `json:"fitted,omitempty"`

	// Quantile is the quantile whose bootstrap CI the response carries
	// (default 0.5, the median).
	Quantile float64 `json:"quantile,omitempty"`

	// Trace asks for the predicted timeline as an embedded Chrome
	// trace.
	Trace bool `json:"trace,omitempty"`

	Cluster ClusterSpec `json:"cluster,omitempty"`
	Bench   BenchSpec   `json:"bench,omitempty"`
}

// Interval mirrors stats.Interval with stable JSON field names.
type Interval struct {
	Point float64 `json:"point"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
	N     uint64  `json:"n"`
}

// Breakdown is the per-process average attribution of predicted time.
type Breakdown struct {
	Compute  float64 `json:"compute_s"`
	SendBusy float64 `json:"send_busy_s"`
	RecvWait float64 `json:"recv_wait_s"`
}

// HotSpot is one directive's aggregated predicted waiting time.
type HotSpot struct {
	Directive string  `json:"directive"`
	Wait      float64 `json:"wait_s"`
}

// Prediction is the Monte-Carlo makespan distribution summary.
type Prediction struct {
	Runs       int      `json:"runs"`
	Mean       float64  `json:"mean_s"`
	Std        float64  `json:"std_s"`
	Min        float64  `json:"min_s"`
	Max        float64  `json:"max_s"`
	MeanCI     Interval `json:"mean_ci"`
	Quantile   float64  `json:"quantile"`
	QuantileCI Interval `json:"quantile_ci"`

	// Sweeps and Messages come from the detail evaluation (substream
	// "service:detail"), as do Breakdown and HotSpots.
	Sweeps    int       `json:"sweeps"`
	Messages  uint64    `json:"messages"`
	Breakdown Breakdown `json:"breakdown"`
	HotSpots  []HotSpot `json:"hot_spots,omitempty"`

	// metricsSnapshot is the replication-order fold of the per-rep
	// instrument snapshots, rendered into Response.Metrics by encode.
	metricsSnapshot metrics.Snapshot
}

// DBInfo identifies the fitted performance database a prediction drew
// from. Identical whether the database was cached or built for this
// request — cache state never leaks into response bytes.
type DBInfo struct {
	Key          string   `json:"key"`
	BenchVersion int      `json:"bench_version"`
	Op           string   `json:"op"`
	Placements   []string `json:"placements"`
	Sizes        []int    `json:"sizes"`
	Fitted       bool     `json:"fitted"`
}

// LintInfo carries the model's static-analysis verdict.
type LintInfo struct {
	Findings []mpilint.Finding `json:"findings,omitempty"`
	Errors   int               `json:"errors"`
	Warnings int               `json:"warnings"`
}

// Response is the successful prediction reply. Field order is the wire
// order; the body is canonical JSON and byte-stable per request.
type Response struct {
	Schema      int    `json:"schema"`
	RequestHash string `json:"request_hash"`
	Cluster     string `json:"cluster"`
	ClusterHash string `json:"cluster_hash"`
	Topology    string `json:"topology,omitempty"`
	Procs       int    `json:"procs"`
	PerNode     int    `json:"per_node"`
	Mode        string `json:"mode"`
	Seed        uint64 `json:"seed"`

	DB         DBInfo      `json:"db"`
	Lint       LintInfo    `json:"lint"`
	Prediction *Prediction `json:"prediction"`

	// Metrics is the deterministic instrument snapshot of the
	// prediction itself (pevpm draws/sweeps/messages folded in
	// replication order) — not the service's own volatile counters,
	// which live on /metrics.
	Metrics json.RawMessage `json:"metrics,omitempty"`

	// Trace is the detail evaluation's predicted timeline in Chrome
	// trace format, present when the request asked for it.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ErrorResponse is every non-200 JSON body. Deterministic for
// deterministic failures (lint errors, model deadlocks), so error
// replies cache and byte-diff exactly like successes.
type ErrorResponse struct {
	Schema      int               `json:"schema"`
	RequestHash string            `json:"request_hash,omitempty"`
	Error       string            `json:"error"`
	Findings    []mpilint.Finding `json:"findings,omitempty"`
}

// resolve applies defaults in place and validates the request against
// the service limits. The resolved request is what gets canonicalised
// and hashed, so an explicit default and an omitted field key the same
// cache entry.
func (s *Service) resolve(req *Request) error {
	if strings.TrimSpace(req.Model) == "" {
		return fmt.Errorf("model: empty")
	}
	if req.Procs <= 0 {
		return fmt.Errorf("procs: %d (must be positive)", req.Procs)
	}
	if req.Procs > s.cfg.MaxProcs {
		return fmt.Errorf("procs: %d exceeds the service limit %d", req.Procs, s.cfg.MaxProcs)
	}
	if req.PerNode == 0 {
		req.PerNode = 1
	}
	if req.PerNode < 0 {
		return fmt.Errorf("per_node: %d (must be positive)", req.PerNode)
	}
	if req.Runs == 0 {
		req.Runs = 20
	}
	if req.Runs < 0 || req.Runs > s.cfg.MaxRuns {
		return fmt.Errorf("runs: %d outside 1..%d", req.Runs, s.cfg.MaxRuns)
	}
	if req.Mode == "" {
		req.Mode = "dist"
	}
	switch req.Mode {
	case "dist", "avg-nxp", "avg-2x1", "min-2x1":
	default:
		return fmt.Errorf("mode: %q (want dist, avg-nxp, avg-2x1 or min-2x1)", req.Mode)
	}
	if req.Quantile == 0 {
		req.Quantile = 0.5
	}
	if req.Quantile < 0 || req.Quantile >= 1 {
		return fmt.Errorf("quantile: %v outside [0, 1)", req.Quantile)
	}
	if req.Cluster.Name == "" {
		req.Cluster.Name = "perseus"
	}
	switch req.Cluster.Name {
	case "perseus", "myrinet":
	default:
		return fmt.Errorf("cluster.name: %q (want perseus or myrinet)", req.Cluster.Name)
	}
	b := &req.Bench
	if b.Op == "" {
		b.Op = string(mpibench.OpSend)
	}
	if !mpibench.Op(b.Op).Valid() {
		return fmt.Errorf("bench.op: unknown operation %q", b.Op)
	}
	if len(b.Sizes) == 0 {
		b.Sizes = []int{0, 256, 1024, 4096}
	}
	for _, size := range b.Sizes {
		if size < 0 {
			return fmt.Errorf("bench.sizes: negative size %d", size)
		}
	}
	if b.Repetitions == 0 {
		b.Repetitions = 40
	}
	if b.Repetitions < 0 {
		return fmt.Errorf("bench.repetitions: %d", b.Repetitions)
	}
	if b.WarmUp == 0 {
		b.WarmUp = 10
	}
	if b.WarmUp < 0 {
		return fmt.Errorf("bench.warmup: %d", b.WarmUp)
	}
	if b.SyncProbes == 0 {
		b.SyncProbes = 8
	}
	if b.SyncProbes < 4 {
		return fmt.Errorf("bench.sync_probes: %d (need at least 4)", b.SyncProbes)
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return nil
}

// buildCluster materialises the request's cluster configuration.
func buildCluster(spec ClusterSpec) (cluster.Config, error) {
	var cfg cluster.Config
	switch spec.Name {
	case "perseus":
		cfg = cluster.Perseus()
	case "myrinet":
		cfg = cluster.Myrinet()
	default:
		return cfg, fmt.Errorf("cluster.name: %q", spec.Name)
	}
	if spec.Topology != "" {
		topo, nodes, err := cluster.ParseTopology(spec.Topology)
		if err != nil {
			return cfg, fmt.Errorf("cluster.topology: %w", err)
		}
		cfg, err = cfg.WithTopology(topo, nodes)
		if err != nil {
			return cfg, fmt.Errorf("cluster.topology: %w", err)
		}
	}
	return cfg, nil
}

// defaultPlacements derives the benchmark placements when the request
// does not name them: the intra-node pair (when the nodes are SMP), the
// standard low-contention ladder, and the modelled world's own
// configuration so the database covers the contention level the
// prediction will actually query.
func defaultPlacements(cfg *cluster.Config, procs, perNode int) []string {
	var out []string
	if cfg.CPUsPerNode >= 2 {
		out = append(out, "1x2")
	}
	for _, nodes := range []int{2, 4} {
		if nodes <= cfg.Nodes {
			out = append(out, fmt.Sprintf("%dx1", nodes))
		}
	}
	nodes := (procs + perNode - 1) / perNode
	if nodes*perNode <= cfg.Nodes*cfg.CPUsPerNode && nodes <= cfg.Nodes {
		pl := fmt.Sprintf("%dx%d", nodes, perNode)
		for _, have := range out {
			if have == pl {
				return out
			}
		}
		out = append(out, pl)
	}
	return out
}

// canonical returns the resolved request's canonical encoding — the
// bytes the request hash and the response cache key. Two requests that
// differ only in JSON formatting, key order, or explicitly-written
// default values canonicalise identically.
func canonical(req *Request) []byte {
	data, err := json.Marshal(req)
	if err != nil {
		// Request is a plain struct of scalars and slices; Marshal
		// cannot fail on it today.
		return []byte("unmarshalable")
	}
	return data
}

// fnvHex is FNV-1a over data, hex-encoded — the same fingerprint scheme
// mpibench.ClusterHash uses.
func fnvHex(data []byte) string {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// dbKey builds the database cache key: cluster fingerprint, resolved
// bench spec, fitted flag, and the benchmark semantics version.
func dbKey(clusterHash string, b BenchSpec, placements []string, fitted bool) string {
	spec, _ := json.Marshal(struct {
		B          BenchSpec `json:"b"`
		Placements []string  `json:"p"`
		Fitted     bool      `json:"f"`
		Version    int       `json:"v"`
	}{b, placements, fitted, BenchVersion})
	return clusterHash + "-" + fnvHex(spec)
}

// sortedFindingsCounts fills a LintInfo from analyzer findings.
func lintInfo(findings []mpilint.Finding) LintInfo {
	info := LintInfo{
		Errors:   mpilint.Count(findings, mpilint.SeverityError),
		Warnings: mpilint.Count(findings, mpilint.SeverityWarning),
	}
	if len(findings) > 0 {
		info.Findings = findings
	}
	return info
}
