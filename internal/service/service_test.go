package service

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/cluster"
)

// ringModel passes lint at any world size: a nonblocking ring with a
// little serial compute per iteration.
const ringModel = `PEVPM Param bytes = 1024
PEVPM Loop iterations = 2
PEVPM {
PEVPM   Serial time = 0.001
PEVPM   Message type = MPI_Isend
PEVPM   &       size = bytes
PEVPM   &       from = procnum
PEVPM   &       to = (procnum + 1) % numprocs
PEVPM   Message type = MPI_Recv
PEVPM   &       size = bytes
PEVPM   &       from = (procnum + numprocs - 1) % numprocs
PEVPM   &       to = procnum
PEVPM }
`

// oobModel fails lint: "to = numprocs" is one past the last rank.
const oobModel = `PEVPM Message type = MPI_Isend
PEVPM &       size = 1024
PEVPM &       from = procnum
PEVPM &       to = numprocs
`

// testBench keeps database fitting fast: few repetitions, few sizes,
// the minimum sync probes.
func testBench() BenchSpec {
	return BenchSpec{
		Sizes:       []int{0, 1024},
		Placements:  []string{"2x1", "4x1"},
		Repetitions: 6,
		WarmUp:      2,
		SyncProbes:  4,
		Seed:        1,
	}
}

func testRequest() Request {
	return Request{
		Model: ringModel,
		Procs: 4,
		Seed:  7,
		Runs:  5,
		Bench: testBench(),
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestService(t *testing.T, workers int) *Service {
	t.Helper()
	s := New(Config{Workers: workers})
	t.Cleanup(s.Close)
	return s
}

func TestPredictSuccess(t *testing.T) {
	s := newTestService(t, 2)
	res := s.HandleRequest(context.Background(), mustJSON(t, testRequest()))
	if res.Status != 200 {
		t.Fatalf("status = %d, body: %s", res.Status, res.Body)
	}
	if res.Cache != "miss" {
		t.Fatalf("cache = %q, want miss", res.Cache)
	}
	var resp Response
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		t.Fatalf("response does not parse: %v", err)
	}
	if resp.Schema != Schema || resp.RequestHash != res.Hash {
		t.Fatalf("schema/hash mismatch: %+v vs hash %s", resp, res.Hash)
	}
	p := resp.Prediction
	if p == nil || p.Runs != 5 {
		t.Fatalf("prediction missing or wrong runs: %+v", p)
	}
	if !(p.Mean > 0) || !(p.Min > 0) || p.Min > p.Max {
		t.Fatalf("implausible makespan summary: %+v", p)
	}
	if p.MeanCI.Lo > p.Mean || p.MeanCI.Hi < p.Mean {
		t.Fatalf("mean outside its own CI: %+v", p.MeanCI)
	}
	if p.QuantileCI.N != 5 || p.Quantile != 0.5 {
		t.Fatalf("quantile interval wrong: %+v", p.QuantileCI)
	}
	// The ring communicates, so the detail evaluation must have counted
	// messages and the serial directives compute time.
	if p.Messages == 0 || p.Breakdown.Compute <= 0 {
		t.Fatalf("breakdown/messages empty: %+v", p)
	}
	if len(resp.Metrics) == 0 {
		t.Fatal("response carries no metrics snapshot")
	}
	if resp.DB.Key == "" || resp.DB.BenchVersion != BenchVersion {
		t.Fatalf("db info incomplete: %+v", resp.DB)
	}
}

func TestResponseBytesIdenticalAcrossWorkerCounts(t *testing.T) {
	req := mustJSON(t, testRequest())
	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		s := newTestService(t, workers)
		res := s.HandleRequest(context.Background(), req)
		if res.Status != 200 {
			t.Fatalf("workers=%d: status %d: %s", workers, res.Status, res.Body)
		}
		bodies = append(bodies, res.Body)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("response bytes differ between 1-worker and 8-worker engine pools")
	}
}

func TestResponseCacheHitServesIdenticalBytes(t *testing.T) {
	s := newTestService(t, 2)
	req := mustJSON(t, testRequest())
	first := s.HandleRequest(context.Background(), req)
	if first.Status != 200 || first.Cache != "miss" {
		t.Fatalf("first: %d %q", first.Status, first.Cache)
	}
	second := s.HandleRequest(context.Background(), req)
	if second.Cache != "hit" {
		t.Fatalf("second request not a cache hit: %q", second.Cache)
	}
	if !bytes.Equal(first.Body, second.Body) {
		t.Fatal("cached body differs from computed body")
	}
	if got := s.met.counterValue("predictions_total"); got != 1 {
		t.Fatalf("predictions_total = %d, want 1 (cached request must not re-predict)", got)
	}
}

func TestCanonicalizationSharesCacheEntry(t *testing.T) {
	s := newTestService(t, 2)
	// Spell the same request three ways: defaults omitted, defaults
	// explicit, and keys reordered with noise whitespace.
	implicit := mustJSON(t, testRequest())
	explicit := []byte(`{
		"runs": 5, "mode": "dist", "per_node": 1, "quantile": 0.5,
		"cluster": {"name": "perseus"},
		"procs": 4, "seed": 7,
		"model": ` + string(mustJSON(t, ringModel)) + `,
		"bench": {"op": "MPI_Send", "sizes": [0, 1024], "placements": ["2x1", "4x1"],
			"repetitions": 6, "warmup": 2, "sync_probes": 4, "seed": 1}
	}`)
	a := s.HandleRequest(context.Background(), implicit)
	b := s.HandleRequest(context.Background(), explicit)
	if a.Status != 200 {
		t.Fatalf("implicit: %d %s", a.Status, a.Body)
	}
	if a.Hash != b.Hash {
		t.Fatalf("hashes differ: %s vs %s — canonicalisation broken", a.Hash, b.Hash)
	}
	if b.Cache != "hit" {
		t.Fatalf("explicit spelling missed the cache: %q", b.Cache)
	}
	if !bytes.Equal(a.Body, b.Body) {
		t.Fatal("bodies differ for canonically-equal requests")
	}
}

func TestLintErrorIsDeterministic400(t *testing.T) {
	s := newTestService(t, 1)
	req := testRequest()
	req.Model = oobModel
	raw := mustJSON(t, req)
	first := s.HandleRequest(context.Background(), raw)
	if first.Status != 400 {
		t.Fatalf("status = %d, want 400; body: %s", first.Status, first.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(first.Body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Findings) == 0 {
		t.Fatal("400 body carries no lint findings")
	}
	found := false
	for _, f := range er.Findings {
		if f.Rule == "rank-bounds" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a rank-bounds finding, got %+v", er.Findings)
	}
	// Deterministic failures cache like successes.
	second := s.HandleRequest(context.Background(), raw)
	if second.Cache != "hit" || !bytes.Equal(first.Body, second.Body) {
		t.Fatalf("lint failure did not replay from cache: %q", second.Cache)
	}
}

func TestParseErrorCarriesFinding(t *testing.T) {
	s := newTestService(t, 1)
	req := testRequest()
	req.Model = "PEVPM Message type = MPI_Isend\nPEVPM & size = \n"
	res := s.HandleRequest(context.Background(), mustJSON(t, req))
	if res.Status != 400 {
		t.Fatalf("status = %d", res.Status)
	}
	var er ErrorResponse
	if err := json.Unmarshal(res.Body, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.Findings) != 1 || er.Findings[0].Rule != "parse-error" {
		t.Fatalf("want one parse-error finding, got %+v", er.Findings)
	}
}

func TestResolveRejectsBadRequests(t *testing.T) {
	s := newTestService(t, 1)
	base := testRequest()
	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"no model", func(r *Request) { r.Model = "" }},
		{"zero procs", func(r *Request) { r.Procs = 0 }},
		{"huge procs", func(r *Request) { r.Procs = 1 << 20 }},
		{"bad mode", func(r *Request) { r.Mode = "median" }},
		{"bad quantile", func(r *Request) { r.Quantile = 1.5 }},
		{"bad cluster", func(r *Request) { r.Cluster.Name = "bluegene" }},
		{"bad op", func(r *Request) { r.Bench.Op = "MPI_Sendmsg" }},
		{"few probes", func(r *Request) { r.Bench.SyncProbes = 2 }},
		{"negative size", func(r *Request) { r.Bench.Sizes = []int{-1} }},
		{"too many runs", func(r *Request) { r.Runs = 100000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base
			tc.mutate(&req)
			res := s.HandleRequest(context.Background(), mustJSON(t, req))
			if res.Status != 400 {
				t.Fatalf("status = %d, want 400; body: %s", res.Status, res.Body)
			}
		})
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	s := newTestService(t, 1)
	res := s.HandleRequest(context.Background(),
		[]byte(`{"model": "x", "procs": 4, "seed": 1, "turbo": true}`))
	if res.Status != 400 {
		t.Fatalf("status = %d, want 400 for unknown field", res.Status)
	}
}

func TestDBCacheSharedAcrossSeeds(t *testing.T) {
	s := newTestService(t, 2)
	for seed := uint64(1); seed <= 3; seed++ {
		req := testRequest()
		req.Seed = seed
		res := s.HandleRequest(context.Background(), mustJSON(t, req))
		if res.Status != 200 {
			t.Fatalf("seed %d: %d %s", seed, res.Status, res.Body)
		}
	}
	if got := s.met.counterValue("db_builds_total"); got != 1 {
		t.Fatalf("db_builds_total = %d, want 1 (same bench spec must share one database)", got)
	}
	if got := s.met.counterValue("predictions_total"); got != 3 {
		t.Fatalf("predictions_total = %d, want 3", got)
	}
}

func TestTraceRequested(t *testing.T) {
	s := newTestService(t, 2)
	req := testRequest()
	req.Trace = true
	res := s.HandleRequest(context.Background(), mustJSON(t, req))
	if res.Status != 200 {
		t.Fatalf("status %d: %s", res.Status, res.Body)
	}
	var resp Response
	if err := json.Unmarshal(res.Body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("trace requested but absent")
	}
	var events []json.RawMessage
	if err := json.Unmarshal(resp.Trace, &events); err != nil {
		t.Fatalf("trace is not Chrome-trace JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace has no events")
	}
}

func TestTimeoutReturns504(t *testing.T) {
	s := newTestService(t, 1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	res := s.HandleRequest(ctx, mustJSON(t, testRequest()))
	if res.Status != 504 {
		t.Fatalf("status = %d, want 504", res.Status)
	}
}

func TestModeVariantsDiffer(t *testing.T) {
	s := newTestService(t, 2)
	means := map[string]float64{}
	for _, mode := range []string{"dist", "avg-nxp", "min-2x1"} {
		req := testRequest()
		req.Mode = mode
		res := s.HandleRequest(context.Background(), mustJSON(t, req))
		if res.Status != 200 {
			t.Fatalf("mode %s: %d %s", mode, res.Status, res.Body)
		}
		var resp Response
		if err := json.Unmarshal(res.Body, &resp); err != nil {
			t.Fatal(err)
		}
		means[mode] = resp.Prediction.Mean
	}
	// min-2x1 samples distribution minima, so it must undercut dist.
	if !(means["min-2x1"] < means["dist"]) {
		t.Fatalf("min-2x1 (%v) not below dist (%v)", means["min-2x1"], means["dist"])
	}
}

func TestStatsView(t *testing.T) {
	s := newTestService(t, 2)
	req := mustJSON(t, testRequest())
	s.HandleRequest(context.Background(), req)
	s.HandleRequest(context.Background(), req)
	st := s.Stats()
	if st.Predictions != 1 {
		t.Fatalf("predictions = %d, want 1", st.Predictions)
	}
	if st.Caches["response"].Hits != 1 || st.Caches["response"].Misses != 1 {
		t.Fatalf("response cache stats: %+v", st.Caches["response"])
	}
	if st.Replications != 5 {
		t.Fatalf("replications = %d, want 5", st.Replications)
	}
	for _, stage := range []string{"lint", "db", "predict", "encode"} {
		if st.Stages[stage].Count == 0 {
			t.Fatalf("stage %q has no latency observations: %+v", stage, st.Stages)
		}
	}
}

func TestDefaultPlacementsCoverWorld(t *testing.T) {
	cfg := cluster.Perseus()
	pls := defaultPlacements(&cfg, 8, 1)
	want := "8x1"
	found := false
	for _, p := range pls {
		if p == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("default placements %v missing the world's own %s", pls, want)
	}
}

func BenchmarkCachedRequest(b *testing.B) {
	s := New(Config{Workers: 2})
	defer s.Close()
	req := mustJSONB(b, testRequest())
	if res := s.HandleRequest(context.Background(), req); res.Status != 200 {
		b.Fatalf("prime failed: %d", res.Status)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.HandleRequest(context.Background(), req); res.Cache != "hit" {
			b.Fatalf("iteration %d missed the cache: %q", i, res.Cache)
		}
	}
}

func mustJSONB(b *testing.B, v any) []byte {
	b.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	return data
}
