package service

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverything(t *testing.T) {
	p := newPool(3)
	defer p.close()
	var done atomic.Int64
	p.run(100, func(i int) { done.Add(1) })
	if got := done.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestPoolOrderIndependence(t *testing.T) {
	// Results land by index, so scheduling cannot reorder them.
	p := newPool(4)
	defer p.close()
	out := make([]int, 64)
	p.run(64, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestPoolCloseIsIdempotentAndRunsLateWork(t *testing.T) {
	p := newPool(2)
	p.close()
	p.close() // second close must not panic
	var ran atomic.Bool
	p.submit(func() { ran.Store(true) }) // after close: runs inline
	if !ran.Load() {
		t.Fatal("post-close submit was dropped")
	}
}

func TestPoolDefaultsWorkers(t *testing.T) {
	p := newPool(0)
	defer p.close()
	if p.workers < 1 {
		t.Fatalf("workers = %d", p.workers)
	}
}
