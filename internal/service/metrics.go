package service

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// stage latency buckets in microseconds: 100µs … 100s.
var latencyBounds = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}

// queue-depth buckets (tasks waiting at submit time).
var depthBounds = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// serviceMetrics wraps an internal/metrics Registry for concurrent HTTP
// use. The registry itself is deliberately single-threaded (it belongs
// to the deterministic zero-alloc simulation layer); the service is the
// one consumer that genuinely races, so every touch goes through one
// mutex. Request handling spends its time in simulation, not in
// counting, so contention here is noise.
//
// Everything observable about the service at runtime — latencies, cache
// state, queue depth — is registered volatile: excluded from the
// deterministic Snapshot() contract, included in SnapshotAll() for the
// /metrics endpoint. Deterministic counters (requests, predictions,
// replications) use regular instruments.
type serviceMetrics struct {
	mu  sync.Mutex
	reg *metrics.Registry
}

func newServiceMetrics() *serviceMetrics {
	return &serviceMetrics{reg: metrics.NewRegistry()}
}

func (m *serviceMetrics) incRequest(endpoint string, code int) {
	m.mu.Lock()
	m.reg.Counter("service", "requests_total",
		metrics.L("endpoint", endpoint), metrics.L("code", fmt.Sprintf("%d", code))).Inc()
	m.mu.Unlock()
}

// cacheEvent counts hits and misses per cache ("response" or "db").
func (m *serviceMetrics) cacheEvent(cache string, hit bool) {
	event := "miss"
	if hit {
		event = "hit"
	}
	m.mu.Lock()
	m.reg.Counter("service", "cache_events_total",
		metrics.L("cache", cache), metrics.L("event", event)).Inc()
	m.mu.Unlock()
}

func (m *serviceMetrics) inc(name string) {
	m.mu.Lock()
	m.reg.Counter("service", name).Inc()
	m.mu.Unlock()
}

func (m *serviceMetrics) add(name string, n uint64) {
	m.mu.Lock()
	m.reg.Counter("service", name).Add(n)
	m.mu.Unlock()
}

// observeStage records one pipeline stage's wall latency in
// microseconds.
func (m *serviceMetrics) observeStage(stage string, micros int64) {
	m.mu.Lock()
	m.reg.VolatileHistogram("service", "stage_latency_us", latencyBounds,
		metrics.L("stage", stage)).Observe(micros)
	m.mu.Unlock()
}

// observeQueueDepth records the engine-pool queue depth seen by one
// submitted replication.
func (m *serviceMetrics) observeQueueDepth(depth int) {
	m.mu.Lock()
	m.reg.VolatileHistogram("service", "queue_depth", depthBounds).Observe(int64(depth))
	m.mu.Unlock()
}

// addInflight moves the in-flight request gauge by delta.
func (m *serviceMetrics) addInflight(delta int64) {
	m.mu.Lock()
	g := m.reg.VolatileGauge("service", "inflight_requests")
	g.Set(g.Value() + delta)
	m.mu.Unlock()
}

// snapshotAll captures every instrument, volatile ones included — the
// /metrics and /v1/stats view.
func (m *serviceMetrics) snapshotAll() metrics.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.SnapshotAll()
}

// counterValue reads one service counter out of a fresh snapshot
// (tests and /v1/stats).
func (m *serviceMetrics) counterValue(name string, labels ...metrics.Label) uint64 {
	v, _ := m.snapshotAll().Counter("service", name, labels...)
	return v
}
