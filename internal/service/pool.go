package service

import (
	"runtime"
	"sync"
)

// pool is the shared engine pool: a fixed set of workers that run
// Monte-Carlo replications (and detail evaluations) from all concurrent
// requests. Batching every request's replications onto one pool bounds
// total simulation parallelism at the configured worker count no matter
// how many clients are connected — and because every replication seeds
// its own RNG substream via sim.SubSeed, the interleaving the pool
// happens to choose can never change a prediction.
type pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	// sendMu lets close() wait out in-flight submits before closing the
	// channel: submitters hold the read side for the duration of the
	// send, close takes the write side. Workers never touch it, so a
	// submitter blocked on a full buffer cannot deadlock the drain.
	sendMu sync.RWMutex
	closed bool

	qmu     sync.Mutex
	queued  int // tasks submitted but not yet started
	workers int
}

func newPool(workers int) *pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pool{
		// A deep buffer so bursts of replications enqueue without
		// blocking the submitting request goroutine.
		tasks:   make(chan func(), 16*workers),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// submit enqueues task and returns the queue depth observed at submit
// time (for the queue-depth histogram). Safe for concurrent use.
// Tasks must not themselves submit to the pool: with every worker
// blocked on a child task the pool would deadlock. Requests only ever
// submit from handler goroutines, which are not pool workers.
func (p *pool) submit(task func()) int {
	p.sendMu.RLock()
	if p.closed {
		p.sendMu.RUnlock()
		// After shutdown: run inline so late work still completes.
		task()
		return 0
	}
	p.qmu.Lock()
	p.queued++
	depth := p.queued
	p.qmu.Unlock()

	p.tasks <- func() {
		p.qmu.Lock()
		p.queued--
		p.qmu.Unlock()
		task()
	}
	p.sendMu.RUnlock()
	return depth
}

// run executes n tasks on the pool and blocks until all complete.
func (p *pool) run(n int, task func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.submit(func() {
			defer wg.Done()
			task(i)
		})
	}
	wg.Wait()
}

// close stops the workers after draining queued tasks. Call only after
// the HTTP server has drained its handlers (graceful-shutdown order).
func (p *pool) close() {
	p.sendMu.Lock()
	if p.closed {
		p.sendMu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.sendMu.Unlock()
	p.wg.Wait()
}
