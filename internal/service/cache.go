package service

import (
	"container/list"
	"sync"
)

// lru is a size-bounded least-recently-used cache guarded by its own
// mutex. Both service caches (fitted performance databases and whole
// response bodies) are instances of it.
type lru[V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry[V]
	items map[string]*list.Element

	hits, misses uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached value and marks it most recently used.
func (c *lru[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// put inserts or refreshes key, evicting the least recently used entry
// beyond capacity.
func (c *lru[V]) put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry[V]{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// stats reports entry count and lifetime hit/miss totals.
func (c *lru[V]) stats() (entries int, hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses
}

// flightGroup coalesces concurrent calls with the same key onto a
// single execution (the singleflight pattern, stdlib-only). The leader
// runs fn; followers block on the leader's done channel and share its
// result. Followers may also abandon the wait (request timeout) without
// cancelling the leader — the leader always completes and populates the
// caches.
type flightGroup[V any] struct {
	mu       sync.Mutex
	inFlight map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newFlightGroup[V any]() *flightGroup[V] {
	return &flightGroup[V]{inFlight: make(map[string]*flightCall[V])}
}

// do returns fn's result for key, running fn at most once across
// concurrent callers. shared is true for followers that joined an
// in-flight leader. cancel, when non-nil, lets a follower stop waiting
// early; in that case do returns ok=false and the zero value.
func (g *flightGroup[V]) do(key string, cancel <-chan struct{}, fn func() (V, error)) (val V, err error, shared, ok bool) {
	g.mu.Lock()
	if call, exists := g.inFlight[key]; exists {
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.val, call.err, true, true
		case <-cancel:
			var zero V
			return zero, nil, true, false
		}
	}
	call := &flightCall[V]{done: make(chan struct{})}
	g.inFlight[key] = call
	g.mu.Unlock()

	call.val, call.err = fn()

	g.mu.Lock()
	delete(g.inFlight, key)
	g.mu.Unlock()
	close(call.done)
	return call.val, call.err, false, true
}
