package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mpibench"
	"repro/internal/mpilint"
	"repro/internal/pevpm"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Service is the prediction server: one engine pool, one database
// cache, one response cache, shared by every request.
type Service struct {
	cfg  Config
	pool *pool
	met  *serviceMetrics

	dbCache  *lru[pevpm.PerfDB]
	dbFlight *flightGroup[pevpm.PerfDB]

	respCache  *lru[cachedResult]
	respFlight *flightGroup[cachedResult]
}

// cachedResult is one fully-rendered reply: everything that may be
// replayed byte-for-byte for an identical request.
type cachedResult struct {
	Status int
	Body   []byte
}

// Result is what the HTTP layer needs to write one reply.
type Result struct {
	Status int
	Body   []byte
	// Hash is the canonical request hash ("" when the request never
	// canonicalised, i.e. malformed JSON).
	Hash string
	// Cache reports how the body was obtained: "hit" (response cache),
	// "miss" (computed now), "coalesced" (shared an in-flight
	// computation), or "" for requests that never reached the cache.
	Cache string
}

// New builds a Service. Close it to stop the engine pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:        cfg,
		pool:       newPool(cfg.Workers),
		met:        newServiceMetrics(),
		dbCache:    newLRU[pevpm.PerfDB](cfg.DBCacheSize),
		dbFlight:   newFlightGroup[pevpm.PerfDB](),
		respCache:  newLRU[cachedResult](cfg.RespCacheSize),
		respFlight: newFlightGroup[cachedResult](),
	}
}

// Close drains and stops the engine pool. Call after the HTTP server
// has shut down.
func (s *Service) Close() { s.pool.close() }

// Config returns the resolved service configuration.
func (s *Service) Config() Config { return s.cfg }

// errorBody renders an ErrorResponse with the canonical trailing
// newline every body carries.
func errorBody(hash, msg string, findings []mpilint.Finding) []byte {
	body, err := json.MarshalIndent(ErrorResponse{
		Schema:      Schema,
		RequestHash: hash,
		Error:       msg,
		Findings:    findings,
	}, "", "  ")
	if err != nil {
		return []byte(`{"schema":1,"error":"encoding failure"}` + "\n")
	}
	return append(body, '\n')
}

// HandleRequest runs one prediction request end to end: decode,
// resolve, response-cache lookup, single-flight computation, timeout.
// It never writes HTTP — the handler layer does — so tests and
// benchmarks drive it directly.
func (s *Service) HandleRequest(ctx context.Context, raw []byte) Result {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Result{Status: 400, Body: errorBody("", "request: "+err.Error(), nil)}
	}
	if err := s.resolve(&req); err != nil {
		return Result{Status: 400, Body: errorBody("", "request: "+err.Error(), nil)}
	}
	hash := fnvHex(canonical(&req))

	if res, ok := s.respCache.get(hash); ok {
		s.met.cacheEvent("response", true)
		return Result{Status: res.Status, Body: res.Body, Hash: hash, Cache: "hit"}
	}
	s.met.cacheEvent("response", false)

	// The leader computes to completion even if this request's context
	// expires first: the work is deterministic and cacheable, so
	// abandoning it would only waste the computation for the next
	// identical request.
	type flightOut struct {
		res    cachedResult
		shared bool
		ok     bool
	}
	out := make(chan flightOut, 1)
	go func() {
		res, _, shared, ok := s.respFlight.do(hash, ctx.Done(), func() (cachedResult, error) {
			return s.compute(&req, hash), nil
		})
		out <- flightOut{res, shared, ok}
	}()

	select {
	case o := <-out:
		if !o.ok {
			// Follower abandoned by its context while the leader runs on.
			return Result{Status: 504, Hash: hash,
				Body: errorBody(hash, "timeout: request abandoned while an identical computation completes", nil)}
		}
		how := "miss"
		if o.shared {
			how = "coalesced"
			s.met.inc("coalesced_total")
		}
		return Result{Status: o.res.Status, Body: o.res.Body, Hash: hash, Cache: how}
	case <-ctx.Done():
		return Result{Status: 504, Hash: hash,
			Body: errorBody(hash, "timeout: computation exceeded the request deadline", nil)}
	}
}

// compute runs the staged pipeline (lint → db → predict → encode) for a
// resolved request and caches the outcome. Every outcome it can produce
// is deterministic — lint failures, model deadlocks and successful
// predictions alike — which is why error replies cache and byte-diff
// exactly like successes.
func (s *Service) compute(req *Request, hash string) cachedResult {
	finish := func(res cachedResult) cachedResult {
		s.respCache.put(hash, res)
		return res
	}

	// Stage 1: lint. The model must parse and pass static analysis with
	// zero errors before any simulation time is spent on it.
	lintStart := time.Now()
	prog, err := pevpm.Parse(req.Model)
	if err != nil {
		s.met.observeStage("lint", time.Since(lintStart).Microseconds())
		finding := mpilint.Finding{
			Severity: mpilint.SeverityError,
			Rule:     "parse-error",
			Rank:     -1,
			Message:  err.Error(),
		}
		return finish(cachedResult{400, errorBody(hash, "model failed to parse", []mpilint.Finding{finding})})
	}
	findings, err := mpilint.Analyze(prog, mpilint.Options{Procs: req.Procs})
	s.met.observeStage("lint", time.Since(lintStart).Microseconds())
	if err != nil {
		return finish(cachedResult{400, errorBody(hash, "model: "+err.Error(), nil)})
	}
	lint := lintInfo(findings)
	if lint.Errors > 0 {
		return finish(cachedResult{400, errorBody(hash,
			fmt.Sprintf("model failed lint with %d error(s); fix the findings and resubmit", lint.Errors),
			findings)})
	}

	// Stage 2: database. Fit (or fetch) the performance database for
	// the request's cluster and benchmark spec.
	dbStart := time.Now()
	cfg, err := buildCluster(req.Cluster)
	if err != nil {
		return finish(cachedResult{400, errorBody(hash, err.Error(), nil)})
	}
	clusterHash := mpibench.ClusterHash(&cfg)
	placementStrs := req.Bench.Placements
	if len(placementStrs) == 0 {
		placementStrs = defaultPlacements(&cfg, req.Procs, req.PerNode)
	}
	placements := make([]cluster.Placement, len(placementStrs))
	for i, str := range placementStrs {
		placements[i], err = cluster.ParsePlacement(&cfg, str)
		if err != nil {
			return finish(cachedResult{400, errorBody(hash, "bench.placements: "+err.Error(), nil)})
		}
	}
	key := dbKey(clusterHash, req.Bench, placementStrs, req.Fitted)
	db, err := s.lookupDB(key, cfg, req.Bench, placements, req.Fitted)
	s.met.observeStage("db", time.Since(dbStart).Microseconds())
	if err != nil {
		return finish(cachedResult{400, errorBody(hash, "performance database: "+err.Error(), nil)})
	}

	// Stage 3: predict. One detailed evaluation for attribution (and
	// the optional trace), then the Monte-Carlo replications batched
	// onto the shared engine pool. Substream seeds make the fold
	// independent of pool scheduling.
	predStart := time.Now()
	pred, tl, evalErr := s.predict(req, prog, db, &cfg)
	s.met.observeStage("predict", time.Since(predStart).Microseconds())
	if evalErr != nil {
		return finish(cachedResult{422, errorBody(hash, "evaluation: "+evalErr.Error(), nil)})
	}
	s.met.inc("predictions_total")

	// Stage 4: encode the canonical response body.
	encStart := time.Now()
	res, err := s.encode(req, hash, clusterHash, placementStrs, lint, pred, tl)
	s.met.observeStage("encode", time.Since(encStart).Microseconds())
	if err != nil {
		return finish(cachedResult{400, errorBody(hash, "encode: "+err.Error(), nil)})
	}
	return finish(res)
}

// lookupDB serves the fitted performance database for key, building it
// at most once across concurrent requests. The histograms inside an
// EmpiricalDB are frozen at construction, so one database is safely
// shared read-only by every prediction that keys to it.
func (s *Service) lookupDB(key string, cfg cluster.Config, bench BenchSpec,
	placements []cluster.Placement, fitted bool) (pevpm.PerfDB, error) {
	if db, ok := s.dbCache.get(key); ok {
		s.met.cacheEvent("db", true)
		return db, nil
	}
	s.met.cacheEvent("db", false)
	db, err, _, _ := s.dbFlight.do(key, nil, func() (pevpm.PerfDB, error) {
		// Double-check under the flight: a just-finished leader may have
		// populated the cache between our miss and our flight slot.
		if db, ok := s.dbCache.get(key); ok {
			return db, nil
		}
		db, err := s.buildDB(cfg, bench, placements, fitted)
		if err != nil {
			return nil, err
		}
		s.dbCache.put(key, db)
		s.met.inc("db_builds_total")
		return db, nil
	})
	return db, err
}

// buildDB runs the MPIBench sweep and fits the database — the expensive
// path the cache exists to avoid.
func (s *Service) buildDB(cfg cluster.Config, bench BenchSpec,
	placements []cluster.Placement, fitted bool) (pevpm.PerfDB, error) {
	spec := mpibench.Spec{
		Op:          mpibench.Op(bench.Op),
		Sizes:       bench.Sizes,
		Repetitions: bench.Repetitions,
		WarmUp:      bench.WarmUp,
		SyncProbes:  bench.SyncProbes,
		Seed:        bench.Seed,
		Workers:     s.pool.workers,
	}.Defaults()
	set, err := mpibench.RunSweep(cfg, spec, placements)
	if err != nil {
		return nil, err
	}
	empirical, err := pevpm.NewEmpiricalDB(set, spec.Op, cfg)
	if err != nil {
		return nil, err
	}
	if !fitted {
		return empirical, nil
	}
	return pevpm.NewFittedDBFrom(empirical)
}

// predict runs the detail evaluation plus the Monte-Carlo replication
// set and folds them into a Prediction. All randomness descends from
// the request seed through named substreams; replication results are
// folded in replication order, so neither the pool's worker count nor
// concurrent traffic can change a single output bit.
func (s *Service) predict(req *Request, prog *pevpm.Program, base pevpm.PerfDB,
	cfg *cluster.Config) (*Prediction, *trace.Log, error) {
	var db pevpm.PerfDB
	switch req.Mode {
	case "dist":
		db = base
	case "avg-nxp":
		db = pevpm.Collapse(base, pevpm.ModeMean)
	case "avg-2x1":
		db = pevpm.Collapse(pevpm.FixContention(base, 2), pevpm.ModeMean)
	case "min-2x1":
		db = pevpm.Collapse(pevpm.FixContention(base, 2), pevpm.ModeMin)
	}
	nodes := (req.Procs + req.PerNode - 1) / req.PerNode
	pl, err := cluster.NewPlacement(cfg, nodes, req.PerNode)
	if err != nil {
		return nil, nil, err
	}

	// Detail evaluation: breakdowns, hot spots, optional trace.
	detailOpts := pevpm.Options{
		Procs:  req.Procs,
		DB:     db,
		Seed:   sim.SubSeed(req.Seed, "service:detail"),
		NodeOf: pl.NodeOf,
	}
	var tl *trace.Log
	if req.Trace {
		tl = trace.NewLog(2_000_000)
		detailOpts.Trace = tl
	}
	detail, err := pevpm.Evaluate(prog, detailOpts)
	if err != nil {
		return nil, nil, err
	}

	// Monte-Carlo replications on the shared pool.
	makespans := make([]float64, req.Runs)
	snaps := make([]metrics.Snapshot, req.Runs)
	errs := make([]error, req.Runs)
	var wg sync.WaitGroup
	for i := 0; i < req.Runs; i++ {
		i := i
		wg.Add(1)
		depth := s.pool.submit(func() {
			defer wg.Done()
			opts := pevpm.Options{
				Procs:  req.Procs,
				DB:     db,
				Seed:   sim.SubSeed(req.Seed, fmt.Sprintf("service:rep%d", i)),
				NodeOf: pl.NodeOf,
			}
			rep, err := pevpm.Evaluate(prog, opts)
			if err != nil {
				errs[i] = err
				return
			}
			makespans[i] = rep.Makespan
			snaps[i] = rep.Metrics
		})
		s.met.observeQueueDepth(depth)
	}
	wg.Wait()
	s.met.add("replications_total", uint64(req.Runs))

	// Fold in replication order — the determinism contract's merge rule.
	var sum stats.Summary
	agg := metrics.NewAggregate()
	for i := 0; i < req.Runs; i++ {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		sum.Add(makespans[i])
		agg.Merge(snaps[i])
	}

	meanCI := stats.StudentCI(sum, 0.95)
	qCI := stats.NewBootstrap(200).QuantileCI(
		makespans, req.Quantile, 0.95, sim.NewCellRNG(req.Seed, "service:bootstrap"))

	pred := &Prediction{
		Runs:       req.Runs,
		Mean:       sum.Mean,
		Std:        sum.Std(),
		Min:        sum.Min,
		Max:        sum.Max,
		MeanCI:     fromStats(meanCI),
		Quantile:   req.Quantile,
		QuantileCI: fromStats(qCI),
		Sweeps:     detail.Sweeps,
		Messages:   detail.MessagesSent,
	}
	var compute, send, wait float64
	for _, b := range detail.Breakdowns {
		compute += b.Compute
		send += b.SendBusy
		wait += b.RecvWait
	}
	if n := float64(len(detail.Breakdowns)); n > 0 {
		pred.Breakdown = Breakdown{Compute: compute / n, SendBusy: send / n, RecvWait: wait / n}
	}
	for i, h := range detail.HotSpots {
		if i >= 5 {
			break
		}
		pred.HotSpots = append(pred.HotSpots, HotSpot{Directive: h.Directive, Wait: h.Wait})
	}
	pred.metricsSnapshot = agg.Snapshot()
	return pred, tl, nil
}

// fromStats converts a stats.Interval into the wire type.
func fromStats(iv stats.Interval) Interval {
	return Interval{Point: iv.Point, Lo: iv.Lo, Hi: iv.Hi, Level: iv.Level, N: iv.N}
}

// encode renders the canonical response body: indented JSON plus a
// trailing newline, fields in struct order, no wall-clock or cache
// state anywhere — the bytes the golden replies pin.
func (s *Service) encode(req *Request, hash, clusterHash string, placements []string,
	lint LintInfo, pred *Prediction, tl *trace.Log) (cachedResult, error) {
	resp := Response{
		Schema:      Schema,
		RequestHash: hash,
		Cluster:     req.Cluster.Name,
		ClusterHash: clusterHash,
		Topology:    req.Cluster.Topology,
		Procs:       req.Procs,
		PerNode:     req.PerNode,
		Mode:        req.Mode,
		Seed:        req.Seed,
		DB: DBInfo{
			Key:          dbKey(clusterHash, req.Bench, placements, req.Fitted),
			BenchVersion: BenchVersion,
			Op:           req.Bench.Op,
			Placements:   placements,
			Sizes:        req.Bench.Sizes,
			Fitted:       req.Fitted,
		},
		Lint:       lint,
		Prediction: pred,
	}
	var mbuf bytes.Buffer
	if err := pred.metricsSnapshot.WriteJSON(&mbuf); err != nil {
		return cachedResult{}, err
	}
	resp.Metrics = json.RawMessage(bytes.TrimSpace(mbuf.Bytes()))
	if tl != nil {
		var tbuf bytes.Buffer
		if err := tl.WriteChromeTrace(&tbuf); err != nil {
			return cachedResult{}, err
		}
		resp.Trace = json.RawMessage(bytes.TrimSpace(tbuf.Bytes()))
	}
	body, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return cachedResult{}, err
	}
	return cachedResult{Status: 200, Body: append(body, '\n')}, nil
}
