package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// CacheStats is one cache's /v1/stats entry.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// StageStats summarises one pipeline stage's observed latency.
type StageStats struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
}

// Stats is the GET /v1/stats body: the operator's quick view. Unlike a
// prediction response it is NOT deterministic — it reflects live cache
// and latency state — which is why it lives on its own endpoint instead
// of inside prediction replies.
type Stats struct {
	Schema       int                   `json:"schema"`
	Requests     uint64                `json:"requests"`
	Predictions  uint64                `json:"predictions"`
	Replications uint64                `json:"replications"`
	DBBuilds     uint64                `json:"db_builds"`
	Coalesced    uint64                `json:"coalesced"`
	Caches       map[string]CacheStats `json:"caches"`
	Stages       map[string]StageStats `json:"stages"`
	Workers      int                   `json:"workers"`
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/predict  — run (or replay) a prediction
//	GET  /v1/stats    — live cache/latency counters (JSON)
//	GET  /metrics     — every instrument in Prometheus exposition format
//	GET  /healthz     — liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.reply(w, "predict", Result{Status: http.StatusMethodNotAllowed,
			Body: errorBody("", "method not allowed: POST a prediction request", nil)})
		return
	}
	s.met.addInflight(1)
	defer s.met.addInflight(-1)

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.reply(w, "predict", Result{Status: http.StatusRequestEntityTooLarge,
				Body: errorBody("", "request body exceeds the service limit", nil)})
			return
		}
		s.reply(w, "predict", Result{Status: http.StatusBadRequest,
			Body: errorBody("", "request: "+err.Error(), nil)})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	res := s.HandleRequest(ctx, body)
	s.reply(w, "predict", res)
}

// reply writes one Result, surfacing cache provenance in headers only —
// never in the body, which must stay a pure function of the request.
func (s *Service) reply(w http.ResponseWriter, endpoint string, res Result) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if res.Hash != "" {
		w.Header().Set("X-Request-Hash", res.Hash)
	}
	if res.Cache != "" {
		w.Header().Set("X-Cache", res.Cache)
	}
	w.WriteHeader(res.Status)
	w.Write(res.Body)
	s.met.incRequest(endpoint, res.Status)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.snapshotAll().WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.met.incRequest("metrics", http.StatusOK)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := s.Stats()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(stats)
	s.met.incRequest("stats", http.StatusOK)
}

// Stats assembles the live operational counters.
func (s *Service) Stats() Stats {
	snap := s.met.snapshotAll()
	out := Stats{
		Schema:  Schema,
		Caches:  make(map[string]CacheStats, 2),
		Stages:  make(map[string]StageStats, 4),
		Workers: s.pool.workers,
	}
	for _, c := range snap.Counters {
		switch c.Name {
		case "requests_total":
			out.Requests += c.Value
		case "predictions_total":
			out.Predictions = c.Value
		case "replications_total":
			out.Replications = c.Value
		case "db_builds_total":
			out.DBBuilds = c.Value
		case "coalesced_total":
			out.Coalesced = c.Value
		}
	}
	entries, hits, misses := s.respCache.stats()
	out.Caches["response"] = CacheStats{Entries: entries, Hits: hits, Misses: misses}
	entries, hits, misses = s.dbCache.stats()
	out.Caches["db"] = CacheStats{Entries: entries, Hits: hits, Misses: misses}
	for _, h := range snap.Histograms {
		if h.Name != "stage_latency_us" || h.Count == 0 {
			continue
		}
		stage := "unknown"
		for _, l := range h.Labels {
			if l.Key == "stage" {
				stage = l.Value
			}
		}
		out.Stages[stage] = StageStats{
			Count:  h.Count,
			MeanUS: float64(h.Sum) / float64(h.Count),
		}
	}
	return out
}
