package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU[int](2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived past capacity")
	}
	if v, ok := c.get("b"); !ok || v != 2 {
		t.Fatalf("b = %d, %v", v, ok)
	}
	// b is now most recently used; inserting d evicts c.
	c.put("d", 4)
	if _, ok := c.get("c"); ok {
		t.Fatal("c survived although b was fresher")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("recently-used b evicted")
	}
}

func TestLRURefreshUpdatesValue(t *testing.T) {
	c := newLRU[string](4)
	c.put("k", "old")
	c.put("k", "new")
	if v, _ := c.get("k"); v != "new" {
		t.Fatalf("v = %q", v)
	}
	if entries, hits, misses := c.stats(); entries != 1 || hits != 1 || misses != 0 {
		t.Fatalf("stats: %d entries, %d hits, %d misses", entries, hits, misses)
	}
}

func TestLRUConcurrentAccess(t *testing.T) {
	c := newLRU[int](8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.put(key, i)
				c.get(key)
			}
		}()
	}
	wg.Wait()
	if entries, _, _ := c.stats(); entries > 8 {
		t.Fatalf("capacity exceeded: %d entries", entries)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup[int]()
	var calls atomic.Int32
	gate := make(chan struct{})

	const n = 8
	results := make([]int, n)
	shared := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, sh, ok := g.do("key", nil, func() (int, error) {
				calls.Add(1)
				<-gate // hold every caller in flight
				return 42, nil
			})
			if err != nil || !ok {
				t.Errorf("do: %v %v", err, ok)
			}
			results[i], shared[i] = v, sh
		}()
	}
	// Let callers pile up, then release the leader.
	for calls.Load() == 0 {
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
}

func TestFlightGroupFollowerCancel(t *testing.T) {
	g := newFlightGroup[int]()
	gate := make(chan struct{})
	leaderIn := make(chan struct{})

	go g.do("key", nil, func() (int, error) {
		close(leaderIn)
		<-gate
		return 1, nil
	})
	<-leaderIn

	cancel := make(chan struct{})
	close(cancel) // follower's context is already done
	_, _, sharedFlag, ok := g.do("key", cancel, func() (int, error) {
		t.Fatal("follower must not run fn")
		return 0, nil
	})
	if ok || !sharedFlag {
		t.Fatalf("cancelled follower: shared=%v ok=%v, want shared=true ok=false", sharedFlag, ok)
	}
	close(gate)
}

func TestFlightGroupSequentialRunsBoth(t *testing.T) {
	g := newFlightGroup[int]()
	for want := 1; want <= 2; want++ {
		v, err, sh, ok := g.do("key", nil, func() (int, error) { return want, nil })
		if err != nil || !ok || sh || v != want {
			t.Fatalf("call %d: v=%d err=%v shared=%v ok=%v", want, v, err, sh, ok)
		}
	}
}
