package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPCacheMissThenHit(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 2})
	req := mustJSON(t, testRequest())

	r1, b1 := post(t, srv.URL, req)
	if r1.StatusCode != 200 {
		t.Fatalf("first: %d: %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}
	hash := r1.Header.Get("X-Request-Hash")
	if hash == "" {
		t.Fatal("no X-Request-Hash header")
	}

	r2, b2 := post(t, srv.URL, req)
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if r2.Header.Get("X-Request-Hash") != hash {
		t.Fatal("hash changed between identical requests")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("bodies differ between miss and hit")
	}
	if got := s.met.counterValue("predictions_total"); got != 1 {
		t.Fatalf("predictions_total = %d, want 1", got)
	}
}

func TestHTTPMalformedModelReturns400WithFindings(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	req := testRequest()
	req.Model = oobModel
	resp, body := post(t, srv.URL, mustJSON(t, req))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("400 body is not structured JSON: %v", err)
	}
	if len(er.Findings) == 0 {
		t.Fatalf("400 body carries no findings: %s", body)
	}
}

func TestHTTPOversizedBodyReturns413(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 512})
	big := testRequest()
	big.Model = ringModel + strings.Repeat("# padding padding padding\n", 100)
	resp, body := post(t, srv.URL, mustJSON(t, big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body: %s", resp.StatusCode, body)
	}
}

func TestHTTPConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 2})
	req := mustJSON(t, testRequest())

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader(req))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	if got := s.met.counterValue("predictions_total"); got != 1 {
		t.Fatalf("predictions_total = %d, want 1 — concurrent identical requests must coalesce", got)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	post(t, srv.URL, mustJSON(t, testRequest()))
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"service_requests_total",
		"service_cache_events_total",
		"service_stage_latency_us",
		"service_predictions_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %s:\n%s", want, text)
		}
	}
}

func TestHTTPStatsEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	req := mustJSON(t, testRequest())
	post(t, srv.URL, req)
	post(t, srv.URL, req)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Caches["response"].Hits != 1 {
		t.Fatalf("response cache hits = %d, want 1: %+v", st.Caches["response"].Hits, st)
	}
	if st.Predictions != 1 || st.Requests < 2 {
		t.Fatalf("stats implausible: %+v", st)
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}
