package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAnalyzer enforces the zero-alloc contract on functions
// annotated //detlint:hotpath (the pooled paths: event schedule/pop,
// netsim transfer stages, MPI packet arrival, histogram
// Sample/Quantile). It complements the AllocsPerRun tests: those prove
// today's binary is clean, this catches the allocation at the line
// that introduces it, in review rather than in a benchmark diff.
//
// Errors (always allocate or imply it):
//   - closures capturing local variables (an escaping environment)
//   - fmt.* calls (interface boxing plus reflection)
//   - non-constant string concatenation
//
// Warnings (allocate unless a pool or preallocation hides it):
//   - boxing a concrete value into an interface argument
//   - append to a slice declared locally without capacity
//
// HotPathAnalyzer is annotation-driven and therefore runs on every
// package, not just the deterministic set.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation idioms in //detlint:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !isHotPath(pass, fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

// isHotPath reports whether fn carries a //detlint:hotpath directive
// in its doc comment or on the line directly above its declaration.
func isHotPath(pass *Pass, fn *ast.FuncDecl) bool {
	declLine := pass.Position(fn.Pos()).Line
	from := declLine - 1
	if fn.Doc != nil {
		from = pass.Position(fn.Doc.Pos()).Line
	}
	return pass.directives.hotpathBetween(pass.Position(fn.Pos()).Filename, from, declLine)
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkClosure(pass, fn, n)
			// Do not descend: the literal runs outside the hot path
			// (or is itself flagged); its body is not hot-path code.
			return false
		case *ast.CallExpr:
			// Allocations that happen only while panicking (the
			// `panic(fmt.Sprintf(...))` guard idiom) are off the steady
			// state: skip the whole argument subtree.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if obj := pass.Info.Uses[id]; obj == nil || obj.Parent() == types.Universe {
					return false
				}
			}
			checkCallBoxing(pass, n)
			checkAppendCapacity(pass, fn, n)
		case *ast.BinaryExpr:
			checkStringConcat(pass, n)
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(), SeverityError, "string-concat",
					"string += allocates on every call; build into a preallocated []byte or precompute the string")
			}
		}
		return true
	})
}

// checkClosure flags function literals that capture variables from the
// enclosing function: the shared environment escapes to the heap. A
// literal that captures nothing compiles to a static function value
// and is allowed.
func checkClosure(pass *Pass, enclosing *ast.FuncDecl, lit *ast.FuncLit) {
	var captured []string
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		// Captured means: declared in the enclosing function but
		// outside the literal. Package-level variables are accessed
		// directly and force no environment.
		if obj.Pos() >= enclosing.Pos() && obj.Pos() < lit.Pos() {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) > 0 {
		pass.ReportFix(lit.Pos(), SeverityError, "capturing-closure",
			&Fix{Description: "bind the state once at construction time (method value prebound in a struct field) or pass it as an argument"},
			"closure captures %v: the environment escapes to the heap on every call", captured)
	}
}

// checkCallBoxing flags concrete values passed to interface
// parameters. Pointers, channels, maps and funcs are pointer-shaped
// and convert without allocating; everything else is boxed.
func checkCallBoxing(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	if fn, isFmt := calleeFunc(pass, call); isFmt {
		pass.Reportf(call.Pos(), SeverityError, "fmt-call",
			"fmt.%s allocates (boxing + reflection); format outside the hot path or use strconv.Append*", fn.Name())
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a spread slice is passed through, not boxed per element
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(paramType) {
			continue
		}
		argTV, ok := pass.Info.Types[arg]
		if !ok || argTV.Type == nil || argTV.IsNil() {
			continue
		}
		at := argTV.Type
		if types.IsInterface(at) || isPointerShaped(at) {
			continue
		}
		pass.ReportFix(arg.Pos(), SeverityWarning, "interface-boxing",
			&Fix{Description: "pass a pointer, a pointer-shaped type, or restructure the callee to take the concrete type"},
			"%s value boxed into %s parameter allocates", at, paramType)
	}
}

// calleeFunc resolves the called function and reports whether it lives
// in package fmt.
func calleeFunc(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	return fn, fn.Pkg().Path() == "fmt"
}

// isPointerShaped reports whether converting t to an interface stores
// the value directly in the interface word (no allocation).
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// checkAppendCapacity warns on append to a slice the function declared
// without capacity: steady-state growth reallocates. Appends to
// parameters, fields or make()-with-cap slices are assumed pooled or
// preallocated.
func checkAppendCapacity(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return
		}
	}
	if len(call.Args) == 0 {
		return
	}
	target, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[target].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	if obj.Pos() < fn.Pos() || obj.Pos() > fn.End() {
		return // not declared in this function
	}
	decl := findLocalDecl(fn, obj, pass)
	if decl == nil || declHasCapacity(pass, decl) {
		return
	}
	pass.ReportFix(call.Pos(), SeverityWarning, "append-no-cap",
		&Fix{Description: "declare the slice with make([]T, 0, n) sized to the expected element count"},
		"append grows %s, declared without capacity; preallocate or reuse a pooled buffer", target.Name)
}

// findLocalDecl locates the expression that initialises obj inside fn:
// the RHS of its := / var declaration, or nil for parameters.
func findLocalDecl(fn *ast.FuncDecl, obj types.Object, pass *Pass) ast.Expr {
	var init ast.Expr
	declared := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.Info.Defs[id] == obj {
					declared = true
					if i < len(n.Rhs) {
						init = n.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Info.Defs[name] == obj {
					declared = true
					if i < len(n.Values) {
						init = n.Values[i]
					}
				}
			}
		}
		return true
	})
	if !declared {
		return nil
	}
	if init == nil {
		// `var s []T` with no initialiser: zero capacity by definition;
		// return a marker distinct from nil.
		return &ast.Ident{Name: "_zero"}
	}
	return init
}

// declHasCapacity reports whether the initialiser guarantees capacity:
// make with a cap (or non-zero len) argument, or a non-empty composite
// literal, or a call (assumed to return a sized slice).
func declHasCapacity(pass *Pass, init ast.Expr) bool {
	switch e := init.(type) {
	case *ast.Ident:
		return e.Name != "_zero" // the zero-value marker from findLocalDecl
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
			if obj := pass.Info.Uses[id]; obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
					if len(e.Args) >= 3 {
						return true // make([]T, len, cap)
					}
					if len(e.Args) == 2 {
						// make([]T, n): capacity n; zero only if the
						// literal constant 0.
						tv := pass.Info.Types[e.Args[1]]
						return tv.Value == nil || tv.Value.String() != "0"
					}
					return false
				}
			}
		}
		return true // some other call producing the slice: assume sized
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	}
	return true
}

func isStringExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// checkStringConcat flags non-constant string + string.
func checkStringConcat(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.ADD || !isStringExpr(pass, bin) {
		return
	}
	if tv, ok := pass.Info.Types[bin]; ok && tv.Value != nil {
		return // folded at compile time
	}
	pass.Reportf(bin.Pos(), SeverityError, "string-concat",
		"string concatenation allocates; precompute the string or write into a reused []byte")
}
