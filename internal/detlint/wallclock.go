package detlint

import (
	"go/ast"
	"go/types"
)

// WallclockAnalyzer flags nondeterministic input sources in
// deterministic packages: wall-clock reads, global math/rand draws,
// environment lookups and multi-way selects. Any of these makes a
// simulation result depend on when, where or under what scheduler the
// run happened — exactly what the bit-identical contract forbids.
// Simulated time must come from the engine clock (sim.Time) and
// randomness from named engine streams or sim.SubSeed substreams.
var WallclockAnalyzer = &Analyzer{
	Name:              "wallclock",
	Doc:               "forbid wall-clock, environment and global-RNG reads in deterministic packages",
	DeterministicOnly: true,
	Run:               runWallclock,
}

// deniedSources maps package path -> identifier -> the reason it is
// nondeterministic. Covers functions and variables (crypto/rand.Reader).
var deniedSources = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Sleep":     "blocks on the wall clock",
		"After":     "schedules on the wall clock",
		"AfterFunc": "schedules on the wall clock",
		"Tick":      "schedules on the wall clock",
		"NewTicker": "schedules on the wall clock",
		"NewTimer":  "schedules on the wall clock",
	},
	"os": {
		"Getenv":    "reads the process environment",
		"LookupEnv": "reads the process environment",
		"Environ":   "reads the process environment",
		"Hostname":  "reads the host identity",
		"Getpid":    "reads the process identity",
	},
	"crypto/rand": {
		"Read":   "draws from the OS entropy pool",
		"Reader": "draws from the OS entropy pool",
		"Int":    "draws from the OS entropy pool",
		"Prime":  "draws from the OS entropy pool",
	},
}

func runWallclock(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				checkDeniedUse(pass, n)
			case *ast.SelectStmt:
				checkSelect(pass, n)
			}
			return true
		})
	}
}

// checkDeniedUse flags identifier uses that resolve to a denied
// package-level function or variable. Resolution is by types.Object,
// so a local method or field that happens to be called Now is never a
// false positive.
func checkDeniedUse(pass *Pass, id *ast.Ident) {
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	pkgPath := obj.Pkg().Path()
	// Every package-level draw from the global math/rand source is
	// nondeterministic (and rand.Seed is a global mutation racing other
	// cells); the rng analyzer separately flags the import itself.
	if pkgPath == "math/rand" || pkgPath == "math/rand/v2" {
		if isPackageLevel(obj) {
			pass.ReportFix(id.Pos(), SeverityError, "global-rand",
				&Fix{Description: "draw from a named engine stream (Engine.RNG) or a sim.SubSeed substream instead"},
				"%s.%s draws from the process-global RNG; use a sim.RNG substream", pkgPath, obj.Name())
		}
		return
	}
	denied := deniedSources[pkgPath]
	if denied == nil {
		return
	}
	reason, ok := denied[obj.Name()]
	if !ok || !isPackageLevel(obj) {
		return
	}
	fix := &Fix{Description: "derive the value from the engine clock (sim.Time) or the experiment spec instead"}
	pass.ReportFix(id.Pos(), SeverityError, "wallclock",
		fix, "%s.%s %s; deterministic packages must not observe it", pkgPath, obj.Name(), reason)
}

// isPackageLevel reports whether obj is a package-scoped func or var
// (method values and struct fields are fine: they resolve against a
// local receiver, not ambient process state).
func isPackageLevel(obj types.Object) bool {
	switch obj.(type) {
	case *types.Func, *types.Var:
		return obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

// checkSelect flags selects with two or more ready-checked
// communication cases: when several are ready the runtime picks
// pseudo-randomly, which is a scheduler-visible nondeterminism source.
// A single comm case (with or without default) is fine.
func checkSelect(pass *Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm >= 2 {
		pass.Reportf(sel.Pos(), SeverityError, "select",
			"select with %d communication cases resolves ready channels pseudo-randomly; deterministic code must use a single case or an explicit priority chain", comm)
	}
}
