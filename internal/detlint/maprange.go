package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRangeAnalyzer flags range statements over maps in deterministic
// packages. Go randomises map iteration order per run, so any map
// range whose body can influence output, hashing, metric folding or
// event scheduling breaks the bit-identical contract. A range is
// accepted without annotation only when the analyzer can prove order
// cannot matter:
//
//   - collect-then-sort: the body only appends to a local slice that a
//     later statement in the same block passes to sort/slices.
//   - per-key map writes: every statement stores into a map indexed by
//     the range key (a commutative keyed write, e.g. copying params
//     into an Env).
//   - integer accumulation: every statement is a call-free +=, |=, &=,
//     ^= or ++/-- on integers (commutative and associative; float
//     accumulation is NOT accepted — float addition is order-sensitive).
//
// Everything else needs a //detlint:ordered -- <justification> hatch.
var MapRangeAnalyzer = &Analyzer{
	Name:              "maprange",
	Doc:               "forbid unordered map iteration in deterministic packages unless provably order-insensitive",
	DeterministicOnly: true,
	Run:               runMapRange,
}

// listPos locates a statement inside its enclosing statement list so
// the collect-then-sort proof can look at later siblings.
type listPos struct {
	list []ast.Stmt
	idx  int
}

func runMapRange(pass *Pass) {
	for _, file := range pass.Files {
		parents := stmtLists(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pos := pass.Position(rng.Pos())
			if pass.directives.ordered(pos.Filename, pos.Line) {
				return true
			}
			if provedOrderInsensitive(pass, rng, parents) {
				return true
			}
			keyType := "K"
			if m, ok := tv.Type.Underlying().(*types.Map); ok {
				keyType = m.Key().String()
			}
			pass.ReportFix(rng.Pos(), SeverityError, "unordered-iteration",
				&Fix{
					Description: "iterate in sorted key order",
					Replacement: "keys := make([]" + keyType + ", 0, len(m))\nfor k := range m { keys = append(keys, k) }\nsort.Slice(keys, ...)\nfor _, k := range keys { ... }",
				},
				"range over map has nondeterministic iteration order; sort the keys first or justify with //detlint:ordered -- <why>")
			return true
		})
	}
}

// stmtLists indexes every statement by its containing statement list.
func stmtLists(file *ast.File) map[ast.Stmt]listPos {
	out := make(map[ast.Stmt]listPos)
	record := func(list []ast.Stmt) {
		for i, s := range list {
			out[s] = listPos{list, i}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			record(n.List)
		case *ast.CaseClause:
			record(n.Body)
		case *ast.CommClause:
			record(n.Body)
		}
		return true
	})
	return out
}

// provedOrderInsensitive applies the three mechanical proofs.
func provedOrderInsensitive(pass *Pass, rng *ast.RangeStmt, parents map[ast.Stmt]listPos) bool {
	if collectThenSort(pass, rng, parents) {
		return true
	}
	body := rng.Body.List
	if len(body) == 0 {
		return true // an empty body observes nothing
	}
	allKeyed, allAccum := true, true
	for _, s := range body {
		if !isPerKeyWrite(pass, s, rng) {
			allKeyed = false
		}
		if !isIntAccumulation(pass, s) {
			allAccum = false
		}
	}
	return allKeyed || allAccum
}

// collectThenSort proves the idiom
//
//	for k := range m { out = append(out, ...) }   // possibly under one if
//	sort.Strings(out)                             // later in the same block
//
// The slice's element order is unspecified until the sort runs, so the
// map order cannot escape. The optional if-wrapper must have a
// call-free condition (a call could carry order-dependent side
// effects).
func collectThenSort(pass *Pass, rng *ast.RangeStmt, parents map[ast.Stmt]listPos) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	stmt := rng.Body.List[0]
	if ifs, ok := stmt.(*ast.IfStmt); ok {
		if ifs.Else != nil || hasCall(ifs.Cond) || len(ifs.Body.List) != 1 {
			return false
		}
		if ifs.Init != nil {
			// A call-free init (`if _, ok := m[k]; !ok`) cannot carry
			// order-dependent side effects.
			init, ok := ifs.Init.(*ast.AssignStmt)
			if !ok {
				return false
			}
			for _, e := range init.Rhs {
				if hasCall(e) {
					return false
				}
			}
		}
		stmt = ifs.Body.List[0]
	}
	target, ok := appendTarget(pass, stmt)
	if !ok {
		return false
	}
	at, ok := parents[ast.Stmt(rng)]
	if !ok {
		return false
	}
	for _, later := range at.list[at.idx+1:] {
		if sortsSlice(pass, later, target) {
			return true
		}
	}
	return false
}

// sliceRef identifies the slice an append grows: a plain variable
// (base only) or a single-level selector like r.HotSpots (base object
// + field name).
type sliceRef struct {
	base  types.Object
	field string
}

// resolveSliceRef resolves an ident or ident.field expression.
func resolveSliceRef(pass *Pass, e ast.Expr) (sliceRef, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.Info.Uses[e]; obj != nil {
			return sliceRef{base: obj}, true
		}
	case *ast.SelectorExpr:
		base, ok := e.X.(*ast.Ident)
		if !ok {
			return sliceRef{}, false
		}
		if obj := pass.Info.Uses[base]; obj != nil {
			return sliceRef{base: obj, field: e.Sel.Name}, true
		}
	}
	return sliceRef{}, false
}

// appendTarget returns the slice reference in `x = append(x, ...)` or
// `x.f = append(x.f, ...)`, or false for any other statement shape.
func appendTarget(pass *Pass, s ast.Stmt) (sliceRef, bool) {
	assign, ok := s.(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return sliceRef{}, false
	}
	lhs, ok := resolveSliceRef(pass, assign.Lhs[0])
	if !ok {
		return sliceRef{}, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return sliceRef{}, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return sliceRef{}, false
	}
	if obj := pass.Info.Uses[fn]; obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return sliceRef{}, false
		}
	}
	first, ok := resolveSliceRef(pass, call.Args[0])
	if !ok || first != lhs {
		return sliceRef{}, false
	}
	return lhs, true
}

// sortsSlice reports whether stmt sorts the target: a
// sort.X(target, ...) / slices.Sort*(target, ...) call, or a
// sort/Sort-named method invoked on the target's base value (the
// `s.Counters = append(...)` ... `s.sort()` idiom).
func sortsSlice(pass *Pass, stmt ast.Stmt, target sliceRef) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil {
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
			for _, arg := range call.Args {
				if ref, ok := resolveSliceRef(pass, arg); ok && ref == target {
					return true
				}
			}
			return false
		}
	}
	// Method form: target.base.sort() with a field target — trust that a
	// method literally named sort/Sort on the holder orders its slices.
	if target.field == "" || (fn.Name() != "sort" && fn.Name() != "Sort") {
		return false
	}
	recv, ok := sel.X.(*ast.Ident)
	return ok && pass.Info.Uses[recv] == target.base
}

// isPerKeyWrite accepts `dst[k] = v` where the index mentions the
// range key and the right-hand side calls nothing: a commutative keyed
// store whose result is independent of visit order.
func isPerKeyWrite(pass *Pass, s ast.Stmt, rng *ast.RangeStmt) bool {
	assign, ok := s.(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	idx, ok := assign.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := pass.Info.Types[idx.X]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	keyObj := rangeKeyObject(pass, rng)
	if keyObj == nil || !mentionsObject(pass, idx.Index, keyObj) {
		return false
	}
	return !hasCall(assign.Rhs[0])
}

// isIntAccumulation accepts call-free commutative integer updates:
// x++, x--, x += e, x |= e, x &= e, x ^= e.
func isIntAccumulation(pass *Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.IncDecStmt:
		return !hasCall(s.X) && isIntegerExpr(pass, s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		default:
			return false
		}
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || hasCall(s.Rhs[0]) || hasCall(s.Lhs[0]) {
			return false
		}
		return isIntegerExpr(pass, s.Lhs[0])
	}
	return false
}

func isIntegerExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// rangeKeyObject resolves the range key variable (`for k := range m`
// or `for k, v := range m`).
func rangeKeyObject(pass *Pass, rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func hasCall(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
