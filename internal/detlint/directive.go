package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The //detlint: directive grammar (see docs/DETLINT.md):
//
//	//detlint:hotpath [-- reason]
//	//detlint:ordered -- <justification>
//	//detlint:allow <analyzer> -- <justification>
//
// hotpath opts the annotated function into the zero-alloc checks.
// ordered and allow are escape hatches and MUST carry a justification
// after " -- "; a hatch without a reason, with an unknown analyzer
// name, or that suppresses nothing is itself a finding. An escape
// hatch applies to findings on its own line (trailing comment) or on
// the line directly below (standalone comment line).

type directiveKind int

const (
	directiveHotpath directiveKind = iota
	directiveOrdered
	directiveAllow
)

type directive struct {
	kind     directiveKind
	analyzer string // for allow: which analyzer family it silences
	reason   string
	file     string
	line     int
	used     bool
}

type directiveSet struct {
	// byFile maps filename -> line -> directives declared there.
	byFile    map[string]map[int][]*directive
	all       []*directive
	malformed []Finding
}

// knownAnalyzers are the families //detlint:allow may name.
var knownAnalyzers = map[string]bool{
	"wallclock": true,
	"maprange":  true,
	"hotpath":   true,
	"rng":       true,
}

// collectDirectives parses every //detlint: comment in the package.
// Malformed directives become findings immediately; well-formed ones
// are indexed by position for the analyzers and the suppression check.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	ds := &directiveSet{byFile: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//detlint:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ds.add(pos, text)
			}
		}
	}
	return ds
}

func (ds *directiveSet) add(pos token.Position, text string) {
	bad := func(format string, args ...any) {
		ds.malformed = append(ds.malformed, Finding{
			Analyzer: "directive",
			Rule:     "malformed-directive",
			Severity: SeverityError,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	head, reason, hasReason := strings.Cut(text, " -- ")
	reason = strings.TrimSpace(reason)
	fields := strings.Fields(head)
	if len(fields) == 0 {
		bad("empty //detlint: directive")
		return
	}
	d := &directive{file: pos.Filename, line: pos.Line, reason: reason}
	switch fields[0] {
	case "hotpath":
		if len(fields) != 1 {
			bad("//detlint:hotpath takes no arguments (got %q)", head)
			return
		}
		d.kind = directiveHotpath
	case "ordered":
		if len(fields) != 1 {
			bad("//detlint:ordered takes no arguments before ' -- ' (got %q)", head)
			return
		}
		if !hasReason || reason == "" {
			bad("//detlint:ordered requires a justification: //detlint:ordered -- <why order cannot matter>")
			return
		}
		d.kind = directiveOrdered
	case "allow":
		if len(fields) != 2 {
			bad("//detlint:allow requires exactly one analyzer name: //detlint:allow <analyzer> -- <why>")
			return
		}
		if !knownAnalyzers[fields[1]] {
			bad("//detlint:allow names unknown analyzer %q (known: wallclock, maprange, hotpath, rng)", fields[1])
			return
		}
		if !hasReason || reason == "" {
			bad("//detlint:allow requires a justification: //detlint:allow %s -- <why>", fields[1])
			return
		}
		d.kind = directiveAllow
		d.analyzer = fields[1]
	default:
		bad("unknown //detlint: directive %q (known: hotpath, ordered, allow)", fields[0])
		return
	}
	if ds.byFile[pos.Filename] == nil {
		ds.byFile[pos.Filename] = make(map[int][]*directive)
	}
	ds.byFile[pos.Filename][pos.Line] = append(ds.byFile[pos.Filename][pos.Line], d)
	ds.all = append(ds.all, d)
}

// at returns directives of the given kind that cover file:line — i.e.
// declared on that line or on the line directly above it.
func (ds *directiveSet) at(kind directiveKind, file string, line int) []*directive {
	lines := ds.byFile[file]
	if lines == nil {
		return nil
	}
	var out []*directive
	for _, l := range [2]int{line, line - 1} {
		for _, d := range lines[l] {
			if d.kind == kind {
				out = append(out, d)
			}
		}
	}
	return out
}

// allowed reports whether an //detlint:allow hatch for the analyzer
// covers file:line, marking it used.
func (ds *directiveSet) allowed(analyzer, file string, line int) bool {
	ok := false
	for _, d := range ds.at(directiveAllow, file, line) {
		if d.analyzer == analyzer {
			d.used = true
			ok = true
		}
	}
	return ok
}

// ordered reports whether an //detlint:ordered hatch covers file:line,
// marking it used.
func (ds *directiveSet) ordered(file string, line int) bool {
	hatches := ds.at(directiveOrdered, file, line)
	for _, d := range hatches {
		d.used = true
	}
	return len(hatches) > 0
}

// hotpathBetween reports whether a //detlint:hotpath directive sits in
// the line range [from, to] of file (a function's doc comment through
// its declaration line), marking it used.
func (ds *directiveSet) hotpathBetween(file string, from, to int) bool {
	lines := ds.byFile[file]
	if lines == nil {
		return false
	}
	ok := false
	for l := from; l <= to; l++ {
		for _, d := range lines[l] {
			if d.kind == directiveHotpath {
				d.used = true
				ok = true
			}
		}
	}
	return ok
}

// unused reports every directive whose owning analyzer ran but that
// never matched anything: a suppression that suppresses nothing is
// stale and must be removed (or was placed on the wrong line).
func (ds *directiveSet) unused(ran map[string]bool) []Finding {
	var out []Finding
	for _, d := range ds.all {
		if d.used {
			continue
		}
		owner := ""
		switch d.kind {
		case directiveHotpath:
			owner = "hotpath"
		case directiveOrdered:
			owner = "maprange"
		case directiveAllow:
			owner = d.analyzer
		}
		if !ran[owner] {
			continue
		}
		out = append(out, Finding{
			Analyzer: "directive",
			Rule:     "unused-directive",
			Severity: SeverityError,
			File:     d.file,
			Line:     d.line,
			Col:      1,
			Message:  "//detlint directive matches nothing; remove it or move it onto the offending line",
		})
	}
	return out
}
