package detlint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors analysistest: fixture packages live under
// testdata/src/<name>/, and every line expected to produce a finding
// carries a trailing `// want "substring"` comment (several quoted
// substrings when several findings land on one line). The test fails
// both ways: a finding with no matching want, or a want no finding
// matched.

func fixturePackages(t *testing.T, name string) []*Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPackages(root, []string{"internal/detlint/testdata/src/" + name})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func runFixture(t *testing.T, name string, analyzers ...*Analyzer) []Finding {
	t.Helper()
	return RunPackages(fixturePackages(t, name), Config{
		Analyzers:          analyzers,
		ForceDeterministic: true,
	})
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses the `// want` comments of every fixture file,
// keyed by "file:line" using the same module-relative labels findings
// carry.
func collectWants(t *testing.T, name string) map[string][]string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	rel := "internal/detlint/testdata/src/" + name
	dir := filepath.Join(root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[string][]string)
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		label := rel + "/" + e.Name()
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", label, i+1)
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				s, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", key, q, err)
				}
				wants[key] = append(wants[key], s)
			}
			if len(wants[key]) == 0 {
				t.Fatalf("%s: want comment with no quoted substring", key)
			}
		}
	}
	return wants
}

// checkFixture matches findings against want comments, both ways.
func checkFixture(t *testing.T, name string, findings []Finding) {
	t.Helper()
	wants := collectWants(t, name)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		matched := -1
		for i, w := range wants[key] {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	for key, rest := range wants {
		for _, w := range rest {
			t.Errorf("%s: expected a finding containing %q, got none", key, w)
		}
	}
}

func TestWallclockFixture(t *testing.T) {
	checkFixture(t, "wallclock", runFixture(t, "wallclock", WallclockAnalyzer))
}

func TestMapRangeFixture(t *testing.T) {
	checkFixture(t, "maprange", runFixture(t, "maprange", MapRangeAnalyzer))
}

func TestHotPathFixture(t *testing.T) {
	checkFixture(t, "hotpath", runFixture(t, "hotpath", HotPathAnalyzer))
}

func TestRNGFixture(t *testing.T) {
	checkFixture(t, "rng", runFixture(t, "rng", RNGAnalyzer))
}

// TestDirectiveFixture pins the malformed/stale-directive findings,
// which land on the directive lines themselves and therefore cannot
// carry want comments.
func TestDirectiveFixture(t *testing.T) {
	findings := runFixture(t, "directive") // all analyzers: unused-hatch reporting needs its owner to run
	type exp struct {
		line int
		rule string
	}
	want := []exp{
		{8, "malformed-directive"},  // ordered without justification
		{17, "malformed-directive"}, // allow with unknown analyzer
		{20, "malformed-directive"}, // unknown directive kind
		{23, "malformed-directive"}, // allow without justification
		{28, "unused-directive"},    // well-formed hatch suppressing nothing
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(want), findingLines(findings))
	}
	for i, w := range want {
		f := findings[i]
		if f.Line != w.line || f.Rule != w.rule {
			t.Errorf("finding %d: got line %d rule %s, want line %d rule %s", i, f.Line, f.Rule, w.line, w.rule)
		}
		if f.Severity != SeverityError {
			t.Errorf("finding %d: directive findings must be errors, got %s", i, f.Severity)
		}
	}
}

// TestUnusedHatchNotReportedWhenOwnerSkipped: a maprange hatch must not
// be called stale when the maprange analyzer did not run.
func TestUnusedHatchNotReportedWhenOwnerSkipped(t *testing.T) {
	findings := runFixture(t, "directive", WallclockAnalyzer)
	for _, f := range findings {
		if f.Rule == "unused-directive" {
			t.Errorf("unused-directive reported although its owner analyzer was skipped: %s", f)
		}
	}
}

// TestDeterministicOnlySkipsOutsidePackages: without ForceDeterministic
// a fixture path is outside the deterministic set, so the
// deterministic-only analyzers must stay silent.
func TestDeterministicOnlySkipsOutsidePackages(t *testing.T) {
	findings := RunPackages(fixturePackages(t, "wallclock"), Config{
		Analyzers: []*Analyzer{WallclockAnalyzer},
	})
	if len(findings) != 0 {
		t.Errorf("wallclock ran on a non-deterministic package:\n%s", findingLines(findings))
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SeverityWarning, SeverityError} {
		b, err := sev.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+sev.String()+`"` {
			t.Errorf("severity %d marshals to %s", sev, b)
		}
		var back Severity
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Errorf("round trip: %v -> %v", sev, back)
		}
	}
	var bad Severity
	if err := bad.UnmarshalJSON([]byte(`"fatal"`)); err == nil {
		t.Error("unknown severity string must not unmarshal")
	}
}

func TestFindingsSorted(t *testing.T) {
	findings := runFixture(t, "wallclock", WallclockAnalyzer)
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("findings out of order: %s before %s", a, b)
		}
	}
}

func findingLines(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}
