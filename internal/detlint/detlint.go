// Package detlint statically enforces the determinism and zero-alloc
// contracts the simulator relies on: bit-identical sweeps, metrics and
// traces at any worker count, healthy or under fault injection.
//
// The suite is shaped like golang.org/x/tools/go/analysis — named
// analyzers over a typed Pass, findings with positions, severities and
// suggested fixes — but is built entirely on the standard library
// (go/ast, go/types with the source importer), because this repository
// deliberately has no external dependencies. Porting an analyzer to the
// real go/analysis framework is a mechanical change of the Run
// signature.
//
// Four analyzer families ship today (see docs/DETLINT.md for the full
// rule catalogue and escape-hatch grammar):
//
//   - wallclock: no nondeterministic input sources (time.Now, global
//     math/rand, os.Getenv, multi-way select, ...) reachable from
//     deterministic packages.
//   - maprange: no unordered map iteration that can feed output,
//     hashing, folding or event scheduling, unless provably
//     order-insensitive or justified with //detlint:ordered.
//   - hotpath: functions annotated //detlint:hotpath must stay
//     allocation-free: no capturing closures, interface boxing,
//     fmt calls, string concatenation or growth-by-append.
//   - rng: every RNG must be a named engine stream or a per-cell
//     substream derived via sim.SubSeed/sim.NewCellRNG, so sweep cells
//     can never couple.
package detlint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Severity ranks a finding. Errors are contract violations; warnings
// are allocation hazards that need either a fix or a justified
// annotation before the gate treats them as clean (-werror).
type Severity int

const (
	SeverityWarning Severity = iota
	SeverityError
)

func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// MarshalJSON encodes the severity as its stable string form so the
// -json schema does not leak iota values.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the string form written by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var v string
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v {
	case "error":
		*s = SeverityError
	case "warning":
		*s = SeverityWarning
	default:
		return fmt.Errorf("detlint: unknown severity %q", v)
	}
	return nil
}

// Fix is a mechanically applicable suggestion attached to a finding.
// Replacement, when non-empty, is the source text that should replace
// the flagged expression or statement.
type Fix struct {
	Description string `json:"description"`
	Replacement string `json:"replacement,omitempty"`
}

// Finding is one rule violation at one source position.
type Finding struct {
	Analyzer string   `json:"analyzer"`
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	Fix      *Fix     `json:"fix,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s/%s]",
		f.File, f.Line, f.Col, f.Severity, f.Message, f.Analyzer, f.Rule)
}

// Count returns the number of findings at the given severity.
func Count(fs []Finding, sev Severity) int {
	n := 0
	for _, f := range fs {
		if f.Severity == sev {
			n++
		}
	}
	return n
}

// Analyzer is one named family of checks, run once per package.
type Analyzer struct {
	Name string
	Doc  string
	// DeterministicOnly restricts the analyzer to packages in the
	// deterministic set (hotpath is annotation-driven and runs
	// everywhere).
	DeterministicOnly bool
	Run               func(*Pass)
}

// All lists the four analyzer families in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{WallclockAnalyzer, MapRangeAnalyzer, HotPathAnalyzer, RNGAnalyzer}
}

// DefaultDeterministic names the packages subject to the determinism
// contract (module-relative; each entry covers its subpackages). The
// first eight are the core simulation packages whose bit-identical
// output the golden files pin; the rest is everything else a result
// flows through on its way to bytes on disk, including the CLI mains
// (whose few deliberate wall-clock reads — optional -timing output,
// the benchmark ledger — carry //detlint:allow wallclock hatches).
var DefaultDeterministic = []string{
	"internal/sim",
	"internal/netsim",
	"internal/mpi",
	"internal/pevpm",
	"internal/faults",
	"internal/metrics",
	"internal/experiments",
	"internal/stats",

	"internal/cluster",
	"internal/mpibench",
	"internal/mpilint",
	"internal/trace",
	"internal/vclock",
	"internal/workloads",
	"cmd",
}

// Config controls a suite run.
type Config struct {
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
	// DeterministicPkgs lists module-relative package paths (each entry
	// covers its subpackages) subject to the deterministic-package
	// analyzers. Nil means DefaultDeterministic.
	DeterministicPkgs []string
	// ForceDeterministic treats every analyzed package as
	// deterministic, regardless of path. Used by the fixture harness
	// and by cmd/detlint -det-all.
	ForceDeterministic bool
}

func (c Config) analyzers() []*Analyzer {
	if c.Analyzers == nil {
		return All()
	}
	return c.Analyzers
}

// deterministic reports whether the module-relative package path rel is
// subject to the determinism analyzers.
func (c Config) deterministic(rel string) bool {
	if c.ForceDeterministic {
		return true
	}
	set := c.DeterministicPkgs
	if set == nil {
		set = DefaultDeterministic
	}
	for _, d := range set {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// Pass carries one typed package through the analyzers, mirroring
// analysis.Pass.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the package import path; Rel is the module-relative form
	// ("" for the module root package).
	Path string
	Rel  string
	// Deterministic reports whether the determinism analyzers apply.
	Deterministic bool

	analyzer   string
	directives *directiveSet
	findings   *[]Finding
}

// Reportf records a finding at pos unless a matching //detlint:allow
// directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, sev Severity, rule, format string, args ...any) {
	p.report(pos, sev, rule, nil, format, args...)
}

// ReportFix is Reportf with an attached suggested fix.
func (p *Pass) ReportFix(pos token.Pos, sev Severity, rule string, fix *Fix, format string, args ...any) {
	p.report(pos, sev, rule, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, sev Severity, rule string, fix *Fix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.directives.allowed(p.analyzer, position.Filename, position.Line) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		Rule:     rule,
		Severity: sev,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Position resolves a token.Pos against the pass fileset.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Fset.Position(pos) }

// RunPackages runs the configured analyzers over the loaded packages
// and returns all findings sorted by position. Malformed or unused
// //detlint directives are themselves findings (the escape hatches are
// part of the contract: every suppression must carry a justification
// and must suppress something).
func RunPackages(pkgs []*Package, cfg Config) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		ds := collectDirectives(pkg.Fset, pkg.Files)
		findings = append(findings, ds.malformed...)
		pass := &Pass{
			Fset:          pkg.Fset,
			Files:         pkg.Files,
			Pkg:           pkg.Types,
			Info:          pkg.Info,
			Path:          pkg.Path,
			Rel:           pkg.Rel,
			Deterministic: cfg.deterministic(pkg.Rel),
			directives:    ds,
			findings:      &findings,
		}
		ran := make(map[string]bool)
		for _, a := range cfg.analyzers() {
			if a.DeterministicOnly && !pass.Deterministic {
				continue
			}
			pass.analyzer = a.Name
			a.Run(pass)
			ran[a.Name] = true
		}
		findings = append(findings, ds.unused(ran)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}
