// Package wallclock is a detlint fixture: nondeterministic input
// sources that the wallclock analyzer must flag, next to look-alike
// shapes it must leave alone.
package wallclock

import (
	"os"
	"time"
)

func bad() time.Duration {
	start := time.Now()      // want "time.Now reads the wall clock"
	host, _ := os.Hostname() // want "os.Hostname reads the host identity"
	_ = host
	env := os.Getenv("HOME") // want "os.Getenv reads the process environment"
	_ = env
	return time.Since(start) // want "time.Since reads the wall clock"
}

func badSelect(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// clock is a false-positive guard: a local method named Now resolves to
// the receiver, not to package time, and must not be flagged.
type clock struct{ t int64 }

func (c clock) Now() int64 { return c.t }

func goodLocalNow() int64 {
	var c clock
	return c.Now()
}

// goodSelect is a false-positive guard: one communication case plus
// default never resolves pseudo-randomly.
func goodSelect(a chan int) int {
	select {
	case v := <-a:
		return v
	default:
		return -1
	}
}

// goodAllowed is a false-positive guard for the escape hatch: the
// justified allow on the line above suppresses the finding.
func goodAllowed() time.Time {
	//detlint:allow wallclock -- fixture: deliberate wall-clock read
	return time.Now()
}

// goodAllowedSameLine exercises the trailing-comment hatch position.
func goodAllowedSameLine() time.Time {
	t := time.Now() //detlint:allow wallclock -- fixture: same-line hatch
	return t
}
