// Package directive is a detlint fixture: malformed and stale
// //detlint directives, which are findings in their own right. The
// expectations live in the harness (TestDirectiveFixture), not in want
// comments, because these findings land on the directive lines
// themselves.
package directive

//detlint:ordered
func missingReason(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

//detlint:allow nosuch -- fixture: analyzer name does not exist
func unknownAnalyzer() {}

//detlint:frobnicate
func unknownKind() {}

//detlint:allow maprange
func missingAllowReason() {}

// stale carries a well-formed hatch that suppresses nothing.
//
//detlint:allow maprange -- fixture: suppresses nothing
func stale() {}
