// Package rng is a detlint fixture: ad-hoc RNG construction (flagged)
// next to the sanctioned sim.SubSeed/NewCellRNG substream derivations
// (not flagged).
package rng

import (
	"math/rand" // want "must not import math/rand"

	"repro/internal/sim"
)

func bad(seed uint64) float64 {
	r := sim.NewRNG(seed ^ 0x5eed) // want "ad-hoc seed"
	return r.Float64() + rand.Float64()
}

func badLiteral() *sim.RNG {
	return sim.NewRNG(12345) // want "ad-hoc seed"
}

// good derives a substream with an explicit SubSeed call.
func good(seed uint64) *sim.RNG {
	return sim.NewRNG(sim.SubSeed(seed, "fixture:cell"))
}

// goodCell uses the one-step helper.
func goodCell(seed uint64) *sim.RNG {
	return sim.NewCellRNG(seed, "fixture:cell")
}
