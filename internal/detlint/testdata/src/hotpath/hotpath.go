// Package hotpath is a detlint fixture: allocation idioms inside
// //detlint:hotpath functions (flagged) next to the allocation-free
// shapes and unannotated look-alikes (not flagged).
package hotpath

import "fmt"

//detlint:hotpath
func badClosure(xs []int) func() int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return func() int { return total } // want "closure captures"
}

//detlint:hotpath
func badFmt(n int) {
	fmt.Println(n) // want "fmt.Println allocates"
}

//detlint:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//detlint:hotpath
func badPlusEq(parts []string) string {
	s := ""
	for _, p := range parts {
		s += p // want "allocates on every call"
	}
	return s
}

type sink interface{ put(v any) }

//detlint:hotpath
func badBoxing(s sink, v int) {
	s.put(v) // want "value boxed into"
}

//detlint:hotpath
func badAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "append grows out"
	}
	return out
}

// notHot is a false-positive guard: same shapes, no annotation, so the
// analyzer must not look inside.
func notHot(a, b string) string {
	return a + b + fmt.Sprint(len(a))
}

//detlint:hotpath
func goodPanic(i, n int) int {
	if i >= n {
		panic(fmt.Sprintf("index %d out of range %d", i, n))
	}
	return i
}

//detlint:hotpath
func goodPrealloc(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

//detlint:hotpath
func goodStaticClosure() func() int {
	return func() int { return 42 }
}

//detlint:hotpath
func goodPointerShaped(s sink, v *int) {
	s.put(v)
}

//detlint:hotpath
func goodSpread(s sink, vs []any) {
	put2(s, vs...)
}

func put2(s sink, vs ...any) {
	for _, v := range vs {
		s.put(v)
	}
}

//detlint:hotpath
func goodConstConcat() string {
	const prefix = "bench:"
	return prefix + "p2p"
}

//detlint:hotpath
func goodAppendParam(out []int, x int) []int {
	return append(out, x)
}
