// Package maprange is a detlint fixture: map iterations whose order
// can escape (flagged) next to the three provably order-insensitive
// idioms and the //detlint:ordered escape hatch (not flagged).
package maprange

import "sort"

// bad leaks map order: the collected slice is returned unsorted.
func bad(m map[string]int) []string {
	var out []string
	for k := range m { // want "nondeterministic iteration order"
		out = append(out, k)
	}
	return out
}

// badFloat guards the accumulation proof's soundness: float addition is
// order-sensitive, so += on floats is NOT accepted.
func badFloat(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "nondeterministic iteration order"
		total += v
	}
	return total
}

// badCallAccum guards the accumulation proof against side effects: the
// right-hand side calls a function, which could observe visit order.
func badCallAccum(m map[string]int, f func(int) int) int {
	total := 0
	for _, v := range m { // want "nondeterministic iteration order"
		total += f(v)
	}
	return total
}

// goodCollectSort is the collect-then-sort idiom: slice order is
// unspecified until the sort runs.
func goodCollectSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// goodCollectSortGuarded is the same idiom under a call-free filter.
func goodCollectSortGuarded(m, other map[string]int) []string {
	var out []string
	for k := range m {
		if _, ok := other[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// goodPerKey writes through the range key: a commutative keyed store.
func goodPerKey(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// goodAccum is a call-free integer fold: commutative and associative.
func goodAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

type conn struct{ open bool }

func (c *conn) close() { c.open = false }

// goodHatch is not provable mechanically (the body calls a method), so
// it carries a justified ordered hatch.
func goodHatch(m map[string]*conn) {
	//detlint:ordered -- fixture: close is idempotent and connections are independent
	for _, c := range m {
		c.close()
	}
}
