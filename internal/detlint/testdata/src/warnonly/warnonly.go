// Package warnonly is a detlint fixture producing only
// warning-severity findings: cmd/detlint uses it to pin the exit-code
// contract (warnings pass by default, fail under -werror).
package warnonly

import "repro/internal/sim"

func stream() *sim.RNG {
	return sim.NewRNG(424242) // want "ad-hoc seed"
}
