package detlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGAnalyzer enforces the splittable-substream discipline that keeps
// parallel sweeps bit-identical: every random stream in a
// deterministic package must be either a named engine stream
// (Engine.RNG) or a per-cell substream derived with sim.SubSeed /
// sim.NewCellRNG. Two violations are flagged:
//
//   - importing math/rand (v1 or v2) at all: the repository's RNG is
//     sim.RNG, and the global source couples every user of it;
//   - calling sim.NewRNG with anything other than a sim.SubSeed(...)
//     derivation: ad-hoc seeds (literals, xors of the root seed)
//     silently couple cells, which is exactly what broke reproducible
//     sweeps before PR 2.
//
// internal/sim itself is exempt: it implements the scheme.
var RNGAnalyzer = &Analyzer{
	Name:              "rng",
	Doc:               "require sim.SubSeed/NewCellRNG substreams for every RNG in deterministic packages",
	DeterministicOnly: true,
	Run:               runRNG,
}

func runRNG(pass *Pass) {
	if strings.HasSuffix(pass.Path, "internal/sim") {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.ReportFix(imp.Pos(), SeverityError, "math-rand-import",
					&Fix{Description: "use sim.RNG streams: Engine.RNG(name) inside a simulation, sim.NewCellRNG(seed, key) per sweep cell"},
					"deterministic packages must not import %s; use sim.RNG substreams", p)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkNewRNG(pass, call)
			return true
		})
	}
}

// checkNewRNG flags sim.NewRNG(arg) unless arg is itself a
// sim.SubSeed(...) call.
func checkNewRNG(pass *Pass, call *ast.CallExpr) {
	if !isSimFunc(pass, call.Fun, "NewRNG") {
		return
	}
	if len(call.Args) == 1 {
		if inner, ok := call.Args[0].(*ast.CallExpr); ok && isSimFunc(pass, inner.Fun, "SubSeed") {
			return
		}
	}
	pass.ReportFix(call.Pos(), SeverityWarning, "raw-seed",
		&Fix{
			Description: "derive the stream from the root seed and a stable cell key",
			Replacement: `sim.NewCellRNG(seed, "component:cell-key")`,
		},
		"sim.NewRNG with an ad-hoc seed couples this stream to every other user of the seed; derive it via sim.SubSeed/sim.NewCellRNG")
}

// isSimFunc reports whether e resolves to repro/internal/sim.<name>.
func isSimFunc(pass *Pass, e ast.Expr, name string) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Name() != name {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/sim")
}
