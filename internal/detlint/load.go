package detlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and typechecked Go package. File
// positions are module-relative so findings and golden JSON output are
// stable regardless of where the checkout lives.
type Package struct {
	Path  string // import path ("repro/internal/sim")
	Rel   string // module-relative dir ("internal/sim", "" for the root)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadPackages parses and typechecks the non-test Go files of every
// package matched by the patterns, rooted at the module directory
// (which must contain go.mod). Patterns follow the go tool's shape:
// "./..." walks everything, "./internal/..." walks a subtree, and a
// plain relative directory names one package. "..." expansion skips
// testdata and hidden directories, but a pattern may name a testdata
// directory explicitly (the fixture harness and CLI tests rely on
// that). Type errors in the target package fail the load: detlint
// reasons about types, so an untypeable package cannot be linted.
func LoadPackages(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, rel := range dirs {
		pkg, err := loadOne(root, modPath, rel, fset, imp)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("detlint: no Go packages matched %v", patterns)
	}
	return pkgs, nil
}

func loadOne(root, modPath, rel string, fset *token.FileSet, imp types.Importer) (*Package, error) {
	dir := filepath.Join(root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("detlint: %v", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		label := name
		if rel != "" {
			label = path.Join(rel, name)
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("detlint: %v", err)
		}
		f, err := parser.ParseFile(fset, label, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("detlint: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	importPath := modPath
	if rel != "" {
		importPath = modPath + "/" + rel
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("detlint: typecheck %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Rel: rel, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// expandPatterns resolves package patterns to sorted module-relative
// directories containing at least one non-test Go file.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(rel string) {
		rel = filepath.ToSlash(rel)
		if rel == "." {
			rel = ""
		}
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(strings.TrimPrefix(pat, "./"))
		if pat == "..." || pat == "" {
			pat = "..."
		}
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			start := filepath.Join(root, filepath.FromSlash(base))
			err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					rel, err := filepath.Rel(root, p)
					if err != nil {
						return err
					}
					add(rel)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("detlint: %v", err)
			}
			continue
		}
		dir := filepath.Join(root, filepath.FromSlash(pat))
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("detlint: no such package directory: %s", pat)
		}
		add(pat)
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("detlint: %s is not a module root: %v", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("detlint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("detlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
