package pevpm

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

// constDB is a deterministic database for exact timing arithmetic:
// one-way time = base + perByte·size + perMsg·contention.
func constDB(base, perByte, perMsg float64, eager int) *AnalyticDB {
	return &AnalyticDB{
		OneWayFor: func(size, contention int) stats.Dist {
			return stats.Constant(base + perByte*float64(size) + perMsg*float64(contention))
		},
		SendCost: func(size int) float64 { return 10e-6 },
		RecvCost: func(size int) float64 { return 10e-6 },
		Eager:    eager,
	}
}

func mustEval(t *testing.T, prog *Program, opts Options) *Report {
	t.Helper()
	rep, err := Evaluate(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSerialOnly(t *testing.T) {
	prog := NewProgram()
	prog.Body = Block{&Serial{Time: Num(2.5)}}
	rep := mustEval(t, prog, Options{Procs: 4, DB: constDB(1e-4, 0, 0, 1<<20)})
	if rep.Makespan != 2.5 {
		t.Errorf("makespan = %v", rep.Makespan)
	}
	for i, bt := range rep.Breakdowns {
		if bt.Compute != 2.5 {
			t.Errorf("proc %d compute = %v", i, bt.Compute)
		}
	}
}

func TestLoopMultiplies(t *testing.T) {
	prog := NewProgram()
	prog.Params["iters"] = 10
	prog.Body = Block{&Loop{Count: Var("iters"), Body: Block{&Serial{Time: Num(0.1)}}}}
	rep := mustEval(t, prog, Options{Procs: 1, DB: constDB(1e-4, 0, 0, 1<<20)})
	if math.Abs(rep.Makespan-1.0) > 1e-12 {
		t.Errorf("makespan = %v", rep.Makespan)
	}
}

func TestRunonSelectsBranch(t *testing.T) {
	prog := NewProgram()
	prog.Body = Block{&Runon{
		Conds:  []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1")},
		Bodies: []Block{{&Serial{Time: Num(1)}}, {&Serial{Time: Num(2)}}},
	}}
	rep := mustEval(t, prog, Options{Procs: 3, DB: constDB(1e-4, 0, 0, 1<<20)})
	if rep.ProcTimes[0] != 1 || rep.ProcTimes[1] != 2 || rep.ProcTimes[2] != 0 {
		t.Errorf("proc times = %v", rep.ProcTimes)
	}
}

func sendRecvProgram(size int) *Program {
	prog := NewProgram()
	prog.Body = Block{&Runon{
		Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1")},
		Bodies: []Block{
			{&Msg{Kind: MsgSend, Size: Num(float64(size)), From: Num(0), To: Num(1)}},
			{&Msg{Kind: MsgRecv, Size: Num(float64(size)), From: Num(0), To: Num(1)}},
		},
	}}
	return prog
}

func TestEagerSendRecvTiming(t *testing.T) {
	// One-way time = 100µs + contention(1)·5µs = 105µs. Receiver posted
	// at t=0, message departs at sendBusy(10µs): completion = 10+105 = 115µs.
	db := constDB(100e-6, 0, 5e-6, 1<<20)
	rep := mustEval(t, sendRecvProgram(1024), Options{Procs: 2, DB: db})
	if math.Abs(rep.ProcTimes[0]-10e-6) > 1e-12 {
		t.Errorf("eager sender time = %v, want 10µs", rep.ProcTimes[0])
	}
	if math.Abs(rep.ProcTimes[1]-115e-6) > 1e-12 {
		t.Errorf("receiver time = %v, want 115µs", rep.ProcTimes[1])
	}
	if rep.MessagesSent != 1 {
		t.Errorf("messages = %d", rep.MessagesSent)
	}
	if w := rep.Breakdowns[1].RecvWait; math.Abs(w-115e-6) > 1e-12 {
		t.Errorf("recv wait = %v", w)
	}
}

func TestRendezvousSenderBlocks(t *testing.T) {
	// Above the eager limit the sender must block until arrival.
	db := constDB(1e-3, 0, 0, 1024)
	rep := mustEval(t, sendRecvProgram(65536), Options{Procs: 2, DB: db})
	// Sender: 10µs busy + blocked until depart+1ms.
	want := 10e-6 + 1e-3
	if math.Abs(rep.ProcTimes[0]-want) > 1e-12 {
		t.Errorf("rendezvous sender time = %v, want %v", rep.ProcTimes[0], want)
	}
}

func TestLateReceiverPaysOnlyPickup(t *testing.T) {
	// The receiver computes for 1s first; the message arrived long ago,
	// so the receive completes at 1s + recvBusy.
	prog := NewProgram()
	prog.Body = Block{&Runon{
		Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1")},
		Bodies: []Block{
			{&Msg{Kind: MsgSend, Size: Num(64), From: Num(0), To: Num(1)}},
			{
				&Serial{Time: Num(1)},
				&Msg{Kind: MsgRecv, Size: Num(64), From: Num(0), To: Num(1)},
			},
		},
	}}
	db := constDB(100e-6, 0, 0, 1<<20)
	rep := mustEval(t, prog, Options{Procs: 2, DB: db})
	want := 1.0 + 10e-6 // compute + pickup
	if math.Abs(rep.ProcTimes[1]-want) > 1e-9 {
		t.Errorf("late receiver time = %v, want %v", rep.ProcTimes[1], want)
	}
}

func TestPipelineOfMessages(t *testing.T) {
	// 0 -> 1 -> 2 relay: completion times must chain.
	prog := NewProgram()
	prog.Body = Block{&Runon{
		Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1"), MustExpr("procnum == 2")},
		Bodies: []Block{
			{&Msg{Kind: MsgSend, Size: Num(0), From: Num(0), To: Num(1)}},
			{
				&Msg{Kind: MsgRecv, Size: Num(0), From: Num(0), To: Num(1)},
				&Msg{Kind: MsgSend, Size: Num(0), From: Num(1), To: Num(2)},
			},
			{&Msg{Kind: MsgRecv, Size: Num(0), From: Num(1), To: Num(2)}},
		},
	}}
	db := constDB(100e-6, 0, 0, 1<<20)
	rep := mustEval(t, prog, Options{Procs: 3, DB: db})
	// proc1: recv at 10µs(depart)+100µs = 110µs, then send busy 10µs = 120µs.
	// proc2: message departs at 120µs, arrives 220µs.
	if math.Abs(rep.ProcTimes[2]-220e-6) > 1e-12 {
		t.Errorf("relay end = %v, want 220µs", rep.ProcTimes[2])
	}
}

func TestDeadlockDetected(t *testing.T) {
	prog := NewProgram()
	prog.Body = Block{
		// Everyone receives from the left neighbour; nobody sends.
		&Msg{Kind: MsgRecv, Size: Num(4),
			From: MustExpr("(procnum+numprocs-1) % numprocs"), To: Var("procnum")},
	}
	_, err := Evaluate(prog, Options{Procs: 3, DB: constDB(1e-4, 0, 0, 1<<20)})
	if !errors.Is(err, ErrModelDeadlock) {
		t.Fatalf("err = %v, want model deadlock", err)
	}
}

func TestContentionRaisesSampledTimes(t *testing.T) {
	// All procs send to proc 0 simultaneously; contention = numprocs-1
	// messages on the scoreboard, so per-message time grows with procs.
	build := func() *Program {
		prog := NewProgram()
		prog.Body = Block{&Runon{
			Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum != 0")},
			Bodies: []Block{
				{&Loop{Count: MustExpr("numprocs-1"), Body: Block{
					&Msg{Kind: MsgRecv, Size: Num(1024), From: MustExpr("-1+1"), To: Num(0)},
				}}},
				{&Msg{Kind: MsgSend, Size: Num(1024), From: Var("procnum"), To: Num(0)}},
			},
		}}
		return prog
	}
	_ = build
	// The model above would need wildcard receives; instead use pairwise
	// exchanges at two scales and compare makespans.
	pairwise := func(procs int) float64 {
		prog := NewProgram()
		prog.Body = Block{&Runon{
			Conds: []Expr{MustExpr("procnum < numprocs/2"), MustExpr("procnum >= numprocs/2")},
			Bodies: []Block{
				{&Msg{Kind: MsgSend, Size: Num(1024), From: Var("procnum"),
					To: MustExpr("procnum + numprocs/2")}},
				{&Msg{Kind: MsgRecv, Size: Num(1024),
					From: MustExpr("procnum - numprocs/2"), To: Var("procnum")}},
			},
		}}
		db := constDB(100e-6, 0, 10e-6, 1<<20) // +10µs per scoreboard message
		rep := mustEval(t, prog, Options{Procs: procs, DB: db})
		return rep.Makespan
	}
	small, big := pairwise(2), pairwise(64)
	// 2 procs: contention 1 → 110µs + sendBusy. 64 procs: contention 32 → 420µs.
	if big <= small+200e-6 {
		t.Errorf("contention did not raise times: %v vs %v", small, big)
	}
}

func TestHotSpotsIdentifyWait(t *testing.T) {
	prog := NewProgram()
	recv := &Msg{Kind: MsgRecv, Size: Num(8), From: Num(0), To: Num(1)}
	prog.Body = Block{&Runon{
		Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1")},
		Bodies: []Block{
			{&Serial{Time: Num(2)}, &Msg{Kind: MsgSend, Size: Num(8), From: Num(0), To: Num(1)}},
			{recv},
		},
	}}
	rep := mustEval(t, prog, Options{Procs: 2, DB: constDB(1e-4, 0, 0, 1<<20)})
	if len(rep.HotSpots) == 0 {
		t.Fatal("no hot spots reported")
	}
	if rep.HotSpots[0].Wait < 2.0 {
		t.Errorf("top hot spot wait = %v, want >= 2s of blocked time", rep.HotSpots[0].Wait)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	prog.Params["iterations"] = 5
	db := LogGPStyleDB(100e-6, 10e6, 16384)
	opts := Options{Procs: 8, DB: db, Seed: 11}
	a := mustEval(t, prog, opts)
	b := mustEval(t, prog, opts)
	if a.Makespan != b.Makespan {
		t.Error("same seed, different makespans")
	}
	opts.Seed = 12
	c := mustEval(t, prog, opts)
	if a.Makespan == c.Makespan {
		t.Error("different seeds gave identical makespans (distribution not sampled?)")
	}
}

func TestEvaluateN(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	prog.Params["iterations"] = 3
	db := LogGPStyleDB(100e-6, 10e6, 16384)
	sum, err := EvaluateN(prog, Options{Procs: 4, DB: db, Seed: 3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sum.N != 20 || sum.Mean <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Std() == 0 {
		t.Error("Monte-Carlo runs show zero variance")
	}
}

func TestFigure5JacobiStructureSane(t *testing.T) {
	// The full Jacobi model must evaluate without deadlock for odd and
	// even process counts, and compute time must dominate for small P.
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	prog.Params["iterations"] = 10
	db := LogGPStyleDB(100e-6, 10e6, 16384)
	for _, procs := range []int{2, 3, 5, 8} {
		rep, err := Evaluate(prog, Options{Procs: procs, DB: db, Seed: 1})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		// 10 iterations of 3.24/numprocs seconds of compute.
		wantCompute := 10 * 3.24 / float64(procs)
		if math.Abs(rep.Breakdowns[0].Compute-wantCompute)/wantCompute > 1e-9 {
			t.Errorf("procs=%d compute = %v, want %v", procs, rep.Breakdowns[0].Compute, wantCompute)
		}
		if rep.Makespan < wantCompute {
			t.Errorf("procs=%d makespan %v below compute %v", procs, rep.Makespan, wantCompute)
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	prog := NewProgram()
	prog.Body = Block{&Serial{Time: Num(1)}}
	if _, err := Evaluate(prog, Options{Procs: 0, DB: constDB(1, 0, 0, 1)}); err == nil {
		t.Error("zero procs should fail")
	}
	if _, err := Evaluate(prog, Options{Procs: 1}); err == nil {
		t.Error("nil DB should fail")
	}
	bad := NewProgram()
	bad.Body = Block{&Msg{Kind: MsgSend, Size: Num(4), From: Num(5), To: Num(0)}}
	if _, err := Evaluate(bad, Options{Procs: 2, DB: constDB(1, 0, 0, 1)}); err == nil {
		t.Error("out-of-range endpoint should fail")
	}
	wrongProc := NewProgram()
	wrongProc.Body = Block{&Msg{Kind: MsgSend, Size: Num(4), From: Num(1), To: Num(0)}}
	if _, err := Evaluate(wrongProc, Options{Procs: 2, DB: constDB(1, 0, 0, 1)}); err == nil {
		t.Error("send executed by non-sender should fail")
	}
}
