package pevpm

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/sim"
	"repro/internal/stats"
)

// smoothSet builds a benchmark set whose histograms follow a shifted
// lognormal, so fits should succeed.
func smoothSet(t *testing.T) *mpibench.Set {
	t.Helper()
	r := sim.NewRNG(9)
	set := &mpibench.Set{Cluster: "fake"}
	for _, procs := range []int{2, 8} {
		res := &mpibench.Result{
			Cluster: "fake", Op: mpibench.OpIsend,
			Placement: map[int]string{2: "2x1", 8: "8x1"}[procs],
			Procs:     procs, BinWidth: 1e-6,
		}
		for _, size := range []int{100, 1000} {
			base := float64(procs) * float64(size) * 1e-6
			d := stats.ShiftedLogNormal{Shift: base, Mu: math.Log(base / 4), Sigma: 0.4}
			h := stats.NewHistogram(base / 100)
			for i := 0; i < 20000; i++ {
				h.Add(d.Sample(r))
			}
			res.Points = append(res.Points, mpibench.Point{Size: size, Hist: h})
		}
		set.Add(res)
	}
	return set
}

func TestFittedDBMatchesEmpiricalMoments(t *testing.T) {
	base, err := NewEmpiricalDB(smoothSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewFittedDBFrom(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ size, k int }{{100, 2}, {1000, 8}, {550, 5}} {
		em, fm := base.Mean(tc.size, tc.k), db.Mean(tc.size, tc.k)
		if math.Abs(em-fm)/em > 0.05 {
			t.Errorf("size %d k %d: fitted mean %v vs empirical %v", tc.size, tc.k, fm, em)
		}
		if db.Min(tc.size, tc.k) > db.Mean(tc.size, tc.k) {
			t.Errorf("size %d k %d: fitted min above mean", tc.size, tc.k)
		}
	}
	// Sampling reproduces the mean.
	r := sim.NewRNG(3)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += db.Sample(r, 550, 5)
	}
	if got := sum / float64(n); math.Abs(got-db.Mean(550, 5))/db.Mean(550, 5) > 0.05 {
		t.Errorf("fitted sample mean %v vs analytic %v", got, db.Mean(550, 5))
	}
}

func TestFittedDBReport(t *testing.T) {
	base, err := NewEmpiricalDB(smoothSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewFittedDBFrom(base)
	if err != nil {
		t.Fatal(err)
	}
	report := db.Report()
	if len(report) != 4 {
		t.Fatalf("report has %d points, want 4", len(report))
	}
	for _, p := range report {
		if p.Family == "" {
			t.Errorf("point %+v has no family", p)
		}
		if p.Family != "empirical-fallback" && p.KS > maxAcceptableKS {
			t.Errorf("point %+v accepted with KS %.3f", p, p.KS)
		}
	}
}

func TestFittedDBFallsBackOnMultimodal(t *testing.T) {
	// A distribution with a detached RTO spike cannot be fit by the
	// unimodal families; the fitted DB must keep the histogram.
	r := sim.NewRNG(11)
	set := &mpibench.Set{Cluster: "fake"}
	res := &mpibench.Result{Cluster: "fake", Op: mpibench.OpIsend, Placement: "2x1", Procs: 2}
	h := stats.NewHistogram(1e-4)
	for i := 0; i < 20000; i++ {
		v := 1e-3 + 2e-4*r.Float64()
		if r.Float64() < 0.10 {
			v = 0.2 + 0.01*r.Float64() // 10% of mass at the 200 ms RTO
		}
		h.Add(v)
	}
	res.Points = append(res.Points, mpibench.Point{Size: 1024, Hist: h})
	set.Add(res)

	base, err := NewEmpiricalDB(set, mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewFittedDBFrom(base)
	if err != nil {
		t.Fatal(err)
	}
	// The mean must still reflect the spike (≈ 0.9·1.1ms + 0.1·205ms).
	want := base.Mean(1024, 2)
	if got := db.Mean(1024, 2); math.Abs(got-want)/want > 0.02 {
		t.Errorf("fallback mean %v vs empirical %v", got, want)
	}
	// Samples must include the spike region.
	spikes := 0
	for i := 0; i < 5000; i++ {
		if db.Sample(r, 1024, 2) > 0.1 {
			spikes++
		}
	}
	if frac := float64(spikes) / 5000; math.Abs(frac-0.10) > 0.03 {
		t.Errorf("spike mass %v after fallback, want ~0.10", frac)
	}
}

func TestFittedDBNilBase(t *testing.T) {
	if _, err := NewFittedDBFrom(nil); err == nil {
		t.Error("nil base should fail")
	}
}

func TestFittedDBDelegatesConstants(t *testing.T) {
	base, err := NewEmpiricalDB(smoothSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewFittedDBFrom(base)
	if err != nil {
		t.Fatal(err)
	}
	if db.SendBusy(100) != base.SendBusy(100) ||
		db.RecvBusy(100) != base.RecvBusy(100) ||
		db.EagerLimit() != base.EagerLimit() {
		t.Error("fitted DB does not delegate machine constants")
	}
}
