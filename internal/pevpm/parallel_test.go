package pevpm

import (
	"sync"
	"testing"
)

func pingPongProg(iters int) *Program {
	prog := NewProgram()
	prog.Params["iters"] = float64(iters)
	prog.Body = Block{&Loop{Count: Var("iters"), Body: Block{
		&Runon{
			Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1")},
			Bodies: []Block{
				{&Msg{Kind: MsgSend, Size: Num(1024), From: Num(0), To: Num(1)}},
				{&Msg{Kind: MsgRecv, Size: Num(1024), From: Num(0), To: Num(1)}},
			},
		},
		&Serial{Time: Num(100e-6)},
	}}}
	return prog
}

// TestEvaluateNWorkersEquality checks the Monte-Carlo replications give
// the exact same summary — bit-identical mean, spread and extremes — no
// matter how many workers execute them, since each replication derives
// its own seed and the makespans fold into the summary in replication
// order.
func TestEvaluateNWorkersEquality(t *testing.T) {
	db := LogGPStyleDB(200e-6, 5e6, 16384)
	prog := pingPongProg(40)
	opts := Options{Procs: 2, DB: db, Seed: 123}

	want, err := EvaluateN(prog, opts, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := EvaluateNWorkers(prog, opts, 12, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: summary %+v, serial %+v", workers, got, want)
		}
	}
}

// TestEvaluateSharedDBConcurrency drives many Evaluate calls through
// one shared (frozen) empirical database at once — the access pattern
// parallel figure sweeps produce — and checks each call still matches
// its serial twin. Run with -race to prove the DB is read-only.
func TestEvaluateSharedDBConcurrency(t *testing.T) {
	db := LogGPStyleDB(200e-6, 5e6, 16384)
	prog := pingPongProg(20)

	const calls = 16
	want := make([]float64, calls)
	for i := range want {
		rep, err := Evaluate(prog, Options{Procs: 2, DB: db, Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.Makespan
	}

	got := make([]float64, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := Evaluate(prog, Options{Procs: 2, DB: db, Seed: uint64(i + 1)})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			got[i] = rep.Makespan
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("call %d: concurrent makespan %g, serial %g", i, got[i], want[i])
		}
	}
}
