package pevpm

import (
	"fmt"
	"sort"
	"strings"
)

// Parse reads a PEVPM model in the paper's directive syntax (Figure 5).
// Directives may appear bare or as C/C++ comments; continuation lines
// start with '&'. Example:
//
//	// PEVPM Param xsize = 256
//	// PEVPM Loop iterations = 1000
//	// PEVPM {
//	// PEVPM Runon c1 = procnum%2 == 0
//	// PEVPM &     c2 = procnum%2 != 0
//	// PEVPM {
//	// PEVPM Message type = MPI_Send
//	// PEVPM &       size = xsize*sizeof(float)
//	// PEVPM &       from = procnum
//	// PEVPM &       to   = procnum-1
//	// PEVPM }
//	// PEVPM {
//	// PEVPM Serial on perseus time = 3.24/numprocs
//	// PEVPM }
//	// PEVPM }
//
// Param is this implementation's directive for binding model constants
// (the values that, in the paper's annotated-C form, come from the
// surrounding program text).
func Parse(src string) (*Program, error) { return ParseFile("", src) }

// ParseFile is Parse with a file name recorded in node positions and
// error messages, so diagnostics cite file:line:col.
func ParseFile(file, src string) (*Program, error) {
	dirs, err := lexDirectives(file, src)
	if err != nil {
		return nil, err
	}
	prog := NewProgram()
	prog.File = file
	p := &dirParser{dirs: dirs, prog: prog}
	body, err := p.parseBlockBody(false)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.dirs) {
		d := p.dirs[p.pos]
		return nil, fmt.Errorf("pevpm: %s: unexpected %q", d.pos, d.head)
	}
	prog.Body = body
	return prog, prog.Validate()
}

// directive is one logical directive after continuation merging.
type directive struct {
	pos    Pos      // head token position, for error messages and nodes
	head   string   // "Loop", "Runon", "Message", "Serial", "Param", "{", "}"
	rest   string   // the head line's remainder
	fields []string // continuation lines ("key = value")
}

// headCol locates the 1-based column of the directive head inside the
// raw source line (after the PEVPM marker).
func headCol(raw, head string) int {
	mark := strings.Index(raw, "PEVPM")
	if mark < 0 {
		return 0
	}
	off := strings.Index(raw[mark+len("PEVPM"):], head)
	if off < 0 {
		return mark + 1
	}
	return mark + len("PEVPM") + off + 1
}

func lexDirectives(file, src string) ([]directive, error) {
	var dirs []directive
	for i, raw := range strings.Split(src, "\n") {
		at := Pos{File: file, Line: i + 1}
		line := strings.TrimSpace(raw)
		line = strings.TrimPrefix(line, "//")
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "PEVPM") {
			continue // interleaved program text in annotated sources
		}
		line = strings.TrimSpace(strings.TrimPrefix(line, "PEVPM"))
		if line == "" {
			return nil, fmt.Errorf("pevpm: %s: empty directive", at)
		}
		if strings.HasPrefix(line, "&") {
			if len(dirs) == 0 {
				return nil, fmt.Errorf("pevpm: %s: continuation with no directive", at)
			}
			dirs[len(dirs)-1].fields = append(dirs[len(dirs)-1].fields,
				strings.TrimSpace(strings.TrimPrefix(line, "&")))
			continue
		}
		head, rest := line, ""
		if idx := strings.IndexAny(line, " \t"); idx >= 0 {
			head, rest = line[:idx], strings.TrimSpace(line[idx+1:])
		}
		at.Col = headCol(raw, head)
		dirs = append(dirs, directive{pos: at, head: head, rest: rest})
	}
	return dirs, nil
}

// splitField splits "key = value" at the first standalone '=' (not part
// of ==, !=, <=, >=).
func splitField(s string) (key, value string, err error) {
	for i := 0; i < len(s); i++ {
		if s[i] != '=' {
			continue
		}
		if i+1 < len(s) && s[i+1] == '=' {
			i++ // skip ==
			continue
		}
		if i > 0 && (s[i-1] == '!' || s[i-1] == '<' || s[i-1] == '>' || s[i-1] == '=') {
			continue
		}
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), nil
	}
	return "", "", fmt.Errorf("pevpm: field %q has no '='", s)
}

type dirParser struct {
	dirs []directive
	pos  int
	prog *Program
}

// errf prefixes a parse diagnostic with the directive's position.
func errf(d directive, format string, args ...any) error {
	return fmt.Errorf("pevpm: %s: %s", d.pos, fmt.Sprintf(format, args...))
}

func (p *dirParser) peek() (directive, bool) {
	if p.pos >= len(p.dirs) {
		return directive{}, false
	}
	return p.dirs[p.pos], true
}

// parseBlockBody parses directives until a closing '}' (when inner) or
// end of input (top level).
func (p *dirParser) parseBlockBody(inner bool) (Block, error) {
	var block Block
	for {
		d, ok := p.peek()
		if !ok {
			if inner {
				return nil, fmt.Errorf("pevpm: unexpected end of model: missing '}'")
			}
			return block, nil
		}
		if d.head == "}" {
			if !inner {
				return nil, errf(d, "unmatched '}'")
			}
			p.pos++
			return block, nil
		}
		node, err := p.parseDirective()
		if err != nil {
			return nil, err
		}
		if node != nil {
			block = append(block, node)
		}
	}
}

// parseBracedBlock expects '{' and parses through the matching '}'.
func (p *dirParser) parseBracedBlock(owner string, at Pos) (Block, error) {
	d, ok := p.peek()
	if !ok || d.head != "{" {
		return nil, fmt.Errorf("pevpm: %s: %s must be followed by a '{' block", at, owner)
	}
	p.pos++
	return p.parseBlockBody(true)
}

func (p *dirParser) parseDirective() (Node, error) {
	d := p.dirs[p.pos]
	p.pos++
	switch d.head {
	case "Param":
		key, value, err := splitField(d.rest)
		if err != nil {
			return nil, errf(d, "%v", err)
		}
		expr, err := ParseExpr(value)
		if err != nil {
			return nil, errf(d, "%v", err)
		}
		// Params may reference previously defined params.
		env := Env{}
		for k, v := range p.prog.Params {
			env[k] = v
		}
		v, err := expr.Eval(env)
		if err != nil {
			return nil, errf(d, "%v", err)
		}
		p.prog.Params[key] = v
		return nil, nil

	case "Loop":
		_, value, err := splitField(d.rest) // key name ("iterations") is documentation
		if err != nil {
			return nil, errf(d, "%v", err)
		}
		count, err := ParseExpr(value)
		if err != nil {
			return nil, errf(d, "%v", err)
		}
		body, err := p.parseBracedBlock("Loop", d.pos)
		if err != nil {
			return nil, err
		}
		return &Loop{Count: count, Body: body, At: d.pos}, nil

	case "Runon":
		fields := append([]string{d.rest}, d.fields...)
		node := &Runon{At: d.pos}
		for _, f := range fields {
			_, value, err := splitField(f)
			if err != nil {
				return nil, errf(d, "%v", err)
			}
			cond, err := ParseExpr(value)
			if err != nil {
				return nil, errf(d, "%v", err)
			}
			node.Conds = append(node.Conds, cond)
		}
		for range node.Conds {
			body, err := p.parseBracedBlock("Runon", d.pos)
			if err != nil {
				return nil, err
			}
			node.Bodies = append(node.Bodies, body)
		}
		return node, nil

	case "Message":
		fields := append([]string{d.rest}, d.fields...)
		msg := &Msg{At: d.pos}
		seen := map[string]bool{}
		for _, f := range fields {
			key, value, err := splitField(f)
			if err != nil {
				return nil, errf(d, "%v", err)
			}
			if seen[key] {
				return nil, errf(d, "duplicate Message field %q", key)
			}
			seen[key] = true
			switch key {
			case "type":
				kind, err := ParseMsgKind(value)
				if err != nil {
					return nil, errf(d, "%v", err)
				}
				msg.Kind = kind
			case "size":
				if msg.Size, err = ParseExpr(value); err != nil {
					return nil, errf(d, "%v", err)
				}
			case "from":
				if msg.From, err = ParseExpr(value); err != nil {
					return nil, errf(d, "%v", err)
				}
			case "to":
				if msg.To, err = ParseExpr(value); err != nil {
					return nil, errf(d, "%v", err)
				}
			default:
				return nil, errf(d, "unknown Message field %q", key)
			}
		}
		if !seen["type"] || msg.Size == nil || msg.From == nil || msg.To == nil {
			return nil, errf(d, "Message needs type, size, from and to")
		}
		return msg, nil

	case "Collective":
		fields := append([]string{d.rest}, d.fields...)
		coll := &Coll{At: d.pos}
		for _, f := range fields {
			key, value, err := splitField(f)
			if err != nil {
				return nil, errf(d, "%v", err)
			}
			switch key {
			case "type":
				coll.Op = value
			case "size":
				if coll.Size, err = ParseExpr(value); err != nil {
					return nil, errf(d, "%v", err)
				}
			case "root":
				if coll.Root, err = ParseExpr(value); err != nil {
					return nil, errf(d, "%v", err)
				}
			default:
				return nil, errf(d, "unknown Collective field %q", key)
			}
		}
		if coll.Op == "" || coll.Size == nil {
			return nil, errf(d, "Collective needs type and size")
		}
		return coll, nil

	case "Serial":
		rest := d.rest
		machine := ""
		if strings.HasPrefix(rest, "on ") {
			rest = strings.TrimSpace(rest[3:])
			idx := strings.IndexAny(rest, " \t")
			if idx < 0 {
				return nil, errf(d, "Serial on <machine> needs a time field")
			}
			machine, rest = rest[:idx], strings.TrimSpace(rest[idx:])
		}
		key, value, err := splitField(rest)
		if err != nil || key != "time" {
			return nil, errf(d, "Serial needs 'time = <expr>'")
		}
		expr, err := ParseExpr(value)
		if err != nil {
			return nil, errf(d, "%v", err)
		}
		return &Serial{Machine: machine, Time: expr, At: d.pos}, nil

	case "{":
		return nil, errf(d, "block without an owning directive")
	default:
		return nil, errf(d, "unknown directive %q", d.head)
	}
}

// Format renders a program back into directive syntax; Parse(Format(p))
// reproduces the program.
func Format(p *Program) string {
	var b strings.Builder
	keys := make([]string, 0, len(p.Params))
	for k := range p.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "PEVPM Param %s = %g\n", k, p.Params[k])
	}
	formatBlock(&b, p.Body, 0)
	return b.String()
}

func formatBlock(b *strings.Builder, block Block, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, n := range block {
		switch node := n.(type) {
		case *Loop:
			fmt.Fprintf(b, "PEVPM %sLoop iterations = %s\n", indent, node.Count.String())
			fmt.Fprintf(b, "PEVPM %s{\n", indent)
			formatBlock(b, node.Body, depth+1)
			fmt.Fprintf(b, "PEVPM %s}\n", indent)
		case *Runon:
			for i, c := range node.Conds {
				if i == 0 {
					fmt.Fprintf(b, "PEVPM %sRunon c1 = %s\n", indent, c.String())
				} else {
					fmt.Fprintf(b, "PEVPM %s&     c%d = %s\n", indent, i+1, c.String())
				}
			}
			for _, body := range node.Bodies {
				fmt.Fprintf(b, "PEVPM %s{\n", indent)
				formatBlock(b, body, depth+1)
				fmt.Fprintf(b, "PEVPM %s}\n", indent)
			}
		case *Msg:
			fmt.Fprintf(b, "PEVPM %sMessage type = %s\n", indent, node.Kind)
			fmt.Fprintf(b, "PEVPM %s&       size = %s\n", indent, node.Size.String())
			fmt.Fprintf(b, "PEVPM %s&       from = %s\n", indent, node.From.String())
			fmt.Fprintf(b, "PEVPM %s&       to = %s\n", indent, node.To.String())
		case *Coll:
			fmt.Fprintf(b, "PEVPM %sCollective type = %s\n", indent, node.Op)
			fmt.Fprintf(b, "PEVPM %s&          size = %s\n", indent, node.Size.String())
			if node.Root != nil {
				fmt.Fprintf(b, "PEVPM %s&          root = %s\n", indent, node.Root.String())
			}
		case *Serial:
			if node.Machine != "" {
				fmt.Fprintf(b, "PEVPM %sSerial on %s time = %s\n", indent, node.Machine, node.Time.String())
			} else {
				fmt.Fprintf(b, "PEVPM %sSerial time = %s\n", indent, node.Time.String())
			}
		}
	}
}
