package pevpm

import (
	"testing"

	"repro/internal/trace"
)

func TestPredictedTimeline(t *testing.T) {
	prog := NewProgram()
	prog.Body = Block{
		&Serial{Time: Num(0.01)},
		&Runon{
			Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1")},
			Bodies: []Block{
				{&Msg{Kind: MsgSend, Size: Num(1024), From: Num(0), To: Num(1)}},
				{&Msg{Kind: MsgRecv, Size: Num(1024), From: Num(0), To: Num(1)}},
			},
		},
	}
	tl := trace.NewLog(0)
	rep, err := Evaluate(prog, Options{
		Procs: 2, DB: constDB(500e-6, 0, 0, 1<<20), Trace: tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	var computes, sends, posts, ends int
	for _, ev := range tl.Events() {
		switch ev.Kind {
		case trace.ComputeStart:
			computes++
		case trace.SendStart:
			sends++
			if ev.Peer != 1 || ev.Size != 1024 {
				t.Errorf("send event %+v", ev)
			}
		case trace.RecvPost:
			posts++
		case trace.RecvEnd:
			ends++
			// The receive completes at the process's final time.
			if got := ev.Time.Seconds(); got != rep.ProcTimes[1] {
				t.Errorf("recv end at %v, proc finished at %v", got, rep.ProcTimes[1])
			}
		}
	}
	if computes != 2 || sends != 1 || posts != 1 || ends != 1 {
		t.Errorf("events: computes=%d sends=%d posts=%d ends=%d", computes, sends, posts, ends)
	}
	// The summaries view works on predicted timelines too.
	sums := tl.Summaries()
	if len(sums) != 2 || sums[1].Recvs != 1 {
		t.Errorf("summaries: %+v", sums)
	}
}

func TestPredictedTimelineOffByDefault(t *testing.T) {
	prog := NewProgram()
	prog.Body = Block{&Serial{Time: Num(0.01)}}
	if _, err := Evaluate(prog, Options{Procs: 1, DB: constDB(1e-4, 0, 0, 1)}); err != nil {
		t.Fatal(err)
	}
}
