package pevpm

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/mpibench"
	"repro/internal/stats"
)

// collSet builds a fake benchmark set: MPI_Bcast completion time =
// procs·100µs ± small spread, at two job sizes.
func collSet(t *testing.T) *mpibench.Set {
	t.Helper()
	set := &mpibench.Set{Cluster: "fake"}
	for _, procs := range []int{4, 16} {
		res := &mpibench.Result{
			Cluster: "fake", Op: mpibench.OpBcast,
			Placement: map[int]string{4: "4x1", 16: "16x1"}[procs],
			Procs:     procs, BinWidth: 1e-6,
		}
		for _, size := range []int{1024, 8192} {
			h := stats.NewHistogram(1e-6)
			center := float64(procs) * 100e-6
			for i := -20; i <= 20; i++ {
				h.Add(center + float64(i)*1e-6)
			}
			res.Points = append(res.Points, mpibench.Point{Size: size, Hist: h})
		}
		set.Add(res)
	}
	return set
}

func collProgram(iters int) *Program {
	prog := NewProgram()
	prog.Body = Block{&Loop{Count: Num(float64(iters)), Body: Block{
		&Coll{Op: "MPI_Bcast", Size: Num(1024)},
		&Serial{Time: Num(1e-3)},
	}}}
	return prog
}

func collDB(t *testing.T) *CollectiveDB {
	t.Helper()
	db, err := NewCollectiveDB(constDB(100e-6, 0, 0, 1<<20), collSet(t))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCollectiveDirectiveTiming(t *testing.T) {
	db := collDB(t)
	rep, err := Evaluate(collProgram(10), Options{Procs: 4, DB: db, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: ~400µs bcast + 1ms compute.
	want := 10 * (400e-6 + 1e-3)
	if math.Abs(rep.Makespan-want)/want > 0.05 {
		t.Errorf("makespan %v, want ~%v", rep.Makespan, want)
	}
	// All processes leave each collective together (synchronisation):
	// finish times are within the collective's spread of each other.
	for i := 1; i < len(rep.ProcTimes); i++ {
		if math.Abs(rep.ProcTimes[i]-rep.ProcTimes[0]) > 100e-6 {
			t.Errorf("proc %d finished at %v vs proc0 %v — collective did not synchronise",
				i, rep.ProcTimes[i], rep.ProcTimes[0])
		}
	}
	// The collective shows up in the hot spots.
	found := false
	for _, h := range rep.HotSpots {
		if strings.Contains(h.Directive, "MPI_Bcast") {
			found = true
		}
	}
	if !found {
		t.Error("collective missing from hot spots")
	}
}

func TestCollectiveInterpolatesProcs(t *testing.T) {
	db := collDB(t)
	r8 := mustEval(t, collProgram(5), Options{Procs: 8, DB: db, Seed: 2})
	r4 := mustEval(t, collProgram(5), Options{Procs: 4, DB: db, Seed: 2})
	// 8 procs interpolates linearly between the measured 4-proc (400µs)
	// and 16-proc (1600µs) grids: 400 + (8−4)/(16−4)·1200 = 800µs.
	d8 := r8.Makespan/5 - 1e-3
	d4 := r4.Makespan/5 - 1e-3
	if math.Abs(d4-400e-6) > 50e-6 {
		t.Errorf("4-proc bcast cost %v, want ~400µs", d4)
	}
	if math.Abs(d8-800e-6) > 100e-6 {
		t.Errorf("8-proc bcast cost %v, want ~800µs (interpolated)", d8)
	}
}

func TestCollectiveRequiresDatabase(t *testing.T) {
	_, err := Evaluate(collProgram(1), Options{Procs: 4, DB: constDB(1e-4, 0, 0, 1)})
	if err == nil || !strings.Contains(err.Error(), "collective") {
		t.Errorf("err = %v, want collective-capability error", err)
	}
	db := collDB(t)
	prog := NewProgram()
	prog.Body = Block{&Coll{Op: "MPI_Alltoall", Size: Num(1)}}
	if _, err := Evaluate(prog, Options{Procs: 4, DB: db, Seed: 1}); err == nil {
		t.Error("unbenchmarked collective should fail")
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	db := collDB(t)
	// Proc 0 never joins the collective: the rest are stuck forever.
	prog := NewProgram()
	prog.Body = Block{&Runon{
		Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum != 0")},
		Bodies: []Block{
			{&Serial{Time: Num(1)}},
			{&Coll{Op: "MPI_Bcast", Size: Num(1024)}},
		},
	}}
	_, err := Evaluate(prog, Options{Procs: 4, DB: db, Seed: 1})
	if !errors.Is(err, ErrModelDeadlock) {
		t.Fatalf("err = %v, want deadlock from collective mismatch", err)
	}
}

func TestCollectiveDivergentCollectives(t *testing.T) {
	db, err := NewCollectiveDB(constDB(100e-6, 0, 0, 1<<20), func() *mpibench.Set {
		set := collSet(t)
		// Add a second op so both branches are benchmarked.
		res := &mpibench.Result{Cluster: "fake", Op: mpibench.OpBarrier, Placement: "4x1", Procs: 4}
		h := stats.NewHistogram(1e-6)
		for i := 0; i < 50; i++ {
			h.Add(50e-6)
		}
		res.Points = []mpibench.Point{{Size: 0, Hist: h}}
		set.Add(res)
		return set
	}())
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram()
	prog.Body = Block{&Runon{
		Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum != 0")},
		Bodies: []Block{
			{&Coll{Op: "MPI_Barrier", Size: Num(0)}},
			{&Coll{Op: "MPI_Bcast", Size: Num(1024)}},
		},
	}}
	_, err = Evaluate(prog, Options{Procs: 4, DB: db, Seed: 1})
	if !errors.Is(err, ErrModelDeadlock) {
		t.Fatalf("err = %v, want mismatch error", err)
	}
}

func TestCollectiveDirectiveParses(t *testing.T) {
	prog, err := Parse(`
PEVPM Loop n = 3
PEVPM {
PEVPM   Collective type = MPI_Bcast
PEVPM   &          size = 1024
PEVPM   &          root = 0
PEVPM   Serial time = 0.001
PEVPM }
`)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Body[0].(*Loop)
	coll, ok := loop.Body[0].(*Coll)
	if !ok || coll.Op != "MPI_Bcast" || coll.Root == nil {
		t.Fatalf("parsed %+v", loop.Body[0])
	}
	// Round trip.
	back, err := Parse(Format(prog))
	if err != nil {
		t.Fatal(err)
	}
	if Format(back) != Format(prog) {
		t.Error("Collective directive does not round-trip")
	}
}

func TestCollectiveParseErrors(t *testing.T) {
	cases := []string{
		"PEVPM Collective size = 4",         // missing type
		"PEVPM Collective type = MPI_Bcast", // missing size
		"PEVPM Collective type = MPI_Bcast\nPEVPM & bogus = 1\nPEVPM & size = 1",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}
