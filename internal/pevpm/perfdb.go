package pevpm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/stats"
)

// PerfDB supplies the virtual parallel machine with communication and
// host-overhead costs. The paper's key design point is that OneWay times
// are *distributions* indexed by message size and by the current
// contention level (the number of messages on the scoreboard), measured
// by MPIBench; simplistic prediction modes replace the distribution with
// its average or minimum, which Figure 6 shows to be misleading.
type PerfDB interface {
	// Sample draws a one-way completion time (send start to receive
	// completion) for a message of the given size under the given
	// contention (total messages on the scoreboard).
	Sample(r stats.Rand, size, contention int) float64
	// Mean and Min are the corresponding moments, used by the collapsed
	// prediction modes and for reporting.
	Mean(size, contention int) float64
	Min(size, contention int) float64
	// SampleIntra, MeanIntra and MinIntra are the intra-node (same SMP
	// node) counterparts: those messages never touch the NIC or switch
	// fabric, so they follow a different, much faster distribution —
	// measured by benchmarking a 1×2 placement.
	SampleIntra(r stats.Rand, size, contention int) float64
	MeanIntra(size, contention int) float64
	MinIntra(size, contention int) float64
	// SendBusy is the time the sending process is occupied initiating a
	// send; RecvBusy the time a receiver needs to pick up an
	// already-arrived message.
	SendBusy(size int) float64
	RecvBusy(size int) float64
	// EagerLimit is the size above which a send blocks until delivery
	// (the rendezvous protocol).
	EagerLimit() int
}

// EmpiricalDB interpolates MPIBench measurements: bilinear blending of
// quantile functions across the measured message sizes and process
// counts (contention levels). A single uniform draw is pushed through
// all four bracketing quantile functions, which keeps the blended
// distribution's shape between its neighbours.
type EmpiricalDB struct {
	op    mpibench.Op
	cfg   cluster.Config
	grid  []dbEntry // inter-node configurations, ascending by procs
	intra []dbEntry // intra-node configurations (single-node placements)
}

type dbEntry struct {
	procs int
	sizes []int
	hists []*stats.Histogram
}

// NewEmpiricalDB builds a database from a benchmark result set for one
// operation. Every placement present for the op contributes one
// contention level (its total process count).
func NewEmpiricalDB(set *mpibench.Set, op mpibench.Op, cfg cluster.Config) (*EmpiricalDB, error) {
	db := &EmpiricalDB{op: op, cfg: cfg}
	for _, placement := range set.Placements(op) {
		res, _ := set.Find(op, placement)
		entry := dbEntry{procs: res.Procs}
		for _, pt := range res.Points {
			if pt.Hist == nil || pt.Hist.Count() == 0 {
				return nil, fmt.Errorf("pevpm: empty histogram for %s %s size %d", op, placement, pt.Size)
			}
			entry.sizes = append(entry.sizes, pt.Size)
			entry.hists = append(entry.hists, pt.Hist)
		}
		if len(entry.sizes) == 0 {
			return nil, fmt.Errorf("pevpm: no sizes for %s %s", op, placement)
		}
		if !sort.IntsAreSorted(entry.sizes) {
			sort.Sort(&entryBysize{&entry})
		}
		// Single-node placements benchmark the intra-node (loopback)
		// path: their pairs share a node.
		if pl, err := cluster.ParsePlacement(&cfg, placement); err == nil && pl.NodeCount == 1 {
			db.intra = append(db.intra, entry)
		} else {
			db.grid = append(db.grid, entry)
		}
	}
	if len(db.grid) == 0 {
		return nil, fmt.Errorf("pevpm: result set has no inter-node data for %s", op)
	}
	sort.Slice(db.grid, func(i, j int) bool { return db.grid[i].procs < db.grid[j].procs })
	sort.Slice(db.intra, func(i, j int) bool { return db.intra[i].procs < db.intra[j].procs })
	// Freeze every histogram so sampling is read-only from here on:
	// concurrent Monte-Carlo evaluations share the database.
	freezeEntries(db.grid)
	freezeEntries(db.intra)
	return db, nil
}

func freezeEntries(entries []dbEntry) {
	for _, e := range entries {
		for _, h := range e.hists {
			h.Freeze()
		}
	}
}

type entryBysize struct{ e *dbEntry }

func (s *entryBysize) Len() int           { return len(s.e.sizes) }
func (s *entryBysize) Less(i, j int) bool { return s.e.sizes[i] < s.e.sizes[j] }
func (s *entryBysize) Swap(i, j int) {
	s.e.sizes[i], s.e.sizes[j] = s.e.sizes[j], s.e.sizes[i]
	s.e.hists[i], s.e.hists[j] = s.e.hists[j], s.e.hists[i]
}

// bracket finds indices lo <= hi and a weight w in [0,1] such that value
// sits between xs[lo] and xs[hi] (clamped at the ends).
func bracket(xs []int, value int) (lo, hi int, w float64) {
	if value <= xs[0] {
		return 0, 0, 0
	}
	n := len(xs)
	if value >= xs[n-1] {
		return n - 1, n - 1, 0
	}
	hi = sort.SearchInts(xs, value)
	if xs[hi] == value {
		return hi, hi, 0
	}
	lo = hi - 1
	w = float64(value-xs[lo]) / float64(xs[hi]-xs[lo])
	return lo, hi, w
}

func procsList(grid []dbEntry) []int {
	out := make([]int, len(grid))
	for i, e := range grid {
		out[i] = e.procs
	}
	return out
}

// bracketDB is bracket over a grid's procs column. It avoids
// materialising a []int per lookup — at() runs once per Monte-Carlo
// draw, so that throwaway slice dominated the evaluator's allocations.
func bracketDB(grid []dbEntry, value int) (lo, hi int, w float64) {
	if value <= grid[0].procs {
		return 0, 0, 0
	}
	n := len(grid)
	if value >= grid[n-1].procs {
		return n - 1, n - 1, 0
	}
	hi = 1
	for grid[hi].procs < value {
		hi++
	}
	if grid[hi].procs == value {
		return hi, hi, 0
	}
	lo = hi - 1
	w = float64(value-grid[lo].procs) / float64(grid[hi].procs-grid[lo].procs)
	return lo, hi, w
}

// at evaluates f over the four bracketing (procs, size) grid points and
// blends bilinearly.
func at(grid []dbEntry, size, contention int, f func(h *stats.Histogram) float64) float64 {
	pLo, pHi, pw := bracketDB(grid, contention)
	blendEntry := func(e dbEntry) float64 {
		sLo, sHi, sw := bracket(e.sizes, size)
		lo := f(e.hists[sLo])
		if sLo == sHi {
			return lo
		}
		return lo*(1-sw) + f(e.hists[sHi])*sw
	}
	lo := blendEntry(grid[pLo])
	if pLo == pHi {
		return lo
	}
	return lo*(1-pw) + blendEntry(grid[pHi])*pw
}

// Sample draws by blending quantile functions with one shared uniform.
func (db *EmpiricalDB) Sample(r stats.Rand, size, contention int) float64 {
	u := r.Float64()
	return at(db.grid, size, contention, func(h *stats.Histogram) float64 { return h.Quantile(u) })
}

// Mean blends the measured means.
func (db *EmpiricalDB) Mean(size, contention int) float64 {
	return at(db.grid, size, contention, (*stats.Histogram).Mean)
}

// Min blends the measured minima.
func (db *EmpiricalDB) Min(size, contention int) float64 {
	return at(db.grid, size, contention, (*stats.Histogram).Min)
}

// intraGrid returns the grid used for intra-node lookups: the measured
// single-node configurations, or the inter-node grid as a conservative
// fallback when none were benchmarked.
func (db *EmpiricalDB) intraGrid() []dbEntry {
	if len(db.intra) > 0 {
		return db.intra
	}
	return db.grid
}

// SampleIntra draws an intra-node time.
func (db *EmpiricalDB) SampleIntra(r stats.Rand, size, contention int) float64 {
	u := r.Float64()
	return at(db.intraGrid(), size, contention, func(h *stats.Histogram) float64 { return h.Quantile(u) })
}

// MeanIntra blends the intra-node means.
func (db *EmpiricalDB) MeanIntra(size, contention int) float64 {
	return at(db.intraGrid(), size, contention, (*stats.Histogram).Mean)
}

// MinIntra blends the intra-node minima.
func (db *EmpiricalDB) MinIntra(size, contention int) float64 {
	return at(db.intraGrid(), size, contention, (*stats.Histogram).Min)
}

// HasIntraData reports whether single-node benchmarks were available.
func (db *EmpiricalDB) HasIntraData() bool { return len(db.intra) > 0 }

// SendBusy charges the host-side send initiation cost. These constants
// come from the machine description; in the paper's terms they are part
// of the low-level operation submodels.
func (db *EmpiricalDB) SendBusy(size int) float64 {
	return db.cfg.SendOverhead + float64(size)*db.cfg.PerByteCPU
}

// RecvBusy charges the host-side pickup cost of a buffered message.
func (db *EmpiricalDB) RecvBusy(size int) float64 {
	return db.cfg.RecvOverhead + float64(size)*db.cfg.PerByteCPU
}

// EagerLimit mirrors the modelled MPI implementation's protocol switch.
func (db *EmpiricalDB) EagerLimit() int { return db.cfg.EagerLimit }

// Contentions lists the contention levels (process counts) the database
// was measured at.
func (db *EmpiricalDB) Contentions() []int { return procsList(db.grid) }

// Mode selects how a collapsed database summarises a distribution.
type Mode int

// Collapse modes.
const (
	ModeMean Mode = iota // use the distribution's average
	ModeMin              // use the distribution's minimum
)

// collapsedDB replaces every sampled distribution with a single point —
// the paper's "simplistic" prediction modes (dotted lines of Figure 6).
type collapsedDB struct {
	PerfDB
	mode Mode
}

// Collapse wraps a database so sampling returns the mean (ModeMean) or
// minimum (ModeMin) instead of a random draw.
func Collapse(db PerfDB, mode Mode) PerfDB { return &collapsedDB{PerfDB: db, mode: mode} }

func (c *collapsedDB) Sample(_ stats.Rand, size, contention int) float64 {
	if c.mode == ModeMin {
		return c.PerfDB.Min(size, contention)
	}
	return c.PerfDB.Mean(size, contention)
}

func (c *collapsedDB) SampleIntra(_ stats.Rand, size, contention int) float64 {
	if c.mode == ModeMin {
		return c.PerfDB.MinIntra(size, contention)
	}
	return c.PerfDB.MeanIntra(size, contention)
}

// fixedContentionDB pins the contention level, modelling predictions made
// from a single benchmark configuration (e.g. 2×1 ping-pong data).
type fixedContentionDB struct {
	PerfDB
	contention int
}

// FixContention wraps a database so every lookup uses the given
// contention level regardless of the scoreboard.
func FixContention(db PerfDB, contention int) PerfDB {
	return &fixedContentionDB{PerfDB: db, contention: contention}
}

func (f *fixedContentionDB) Sample(r stats.Rand, size, _ int) float64 {
	return f.PerfDB.Sample(r, size, f.contention)
}
func (f *fixedContentionDB) Mean(size, _ int) float64 { return f.PerfDB.Mean(size, f.contention) }
func (f *fixedContentionDB) Min(size, _ int) float64  { return f.PerfDB.Min(size, f.contention) }

// A modeller working only from ping-pong numbers has no intra-node data
// either: the fixed-contention wrapper therefore prices every message,
// intra-node included, from the pinned inter-node configuration.
func (f *fixedContentionDB) SampleIntra(r stats.Rand, size, _ int) float64 {
	return f.PerfDB.Sample(r, size, f.contention)
}
func (f *fixedContentionDB) MeanIntra(size, _ int) float64 { return f.PerfDB.Mean(size, f.contention) }
func (f *fixedContentionDB) MinIntra(size, _ int) float64  { return f.PerfDB.Min(size, f.contention) }

// AnalyticDB is a distribution-free database built from closed-form
// samplers — useful for tests and for modelling hypothetical machines
// (the paper: distributions "can either be theoretical, or empirically
// determined").
type AnalyticDB struct {
	// OneWayFor returns the distribution for a size and contention.
	OneWayFor func(size, contention int) stats.Dist
	// IntraFor returns the intra-node distribution; when nil, intra
	// messages use OneWayFor at contention 2 (an uncontended pair).
	IntraFor func(size, contention int) stats.Dist
	SendCost func(size int) float64
	RecvCost func(size int) float64
	Eager    int
}

func (a *AnalyticDB) intraFor(size, contention int) stats.Dist {
	if a.IntraFor != nil {
		return a.IntraFor(size, contention)
	}
	return a.OneWayFor(size, 2)
}

// Sample draws from the analytic distribution.
func (a *AnalyticDB) Sample(r stats.Rand, size, contention int) float64 {
	return a.OneWayFor(size, contention).Sample(r)
}

// Mean of the analytic distribution.
func (a *AnalyticDB) Mean(size, contention int) float64 {
	return a.OneWayFor(size, contention).Mean()
}

// Min of the analytic distribution.
func (a *AnalyticDB) Min(size, contention int) float64 {
	return a.OneWayFor(size, contention).MinBound()
}

// SampleIntra draws from the intra-node distribution.
func (a *AnalyticDB) SampleIntra(r stats.Rand, size, contention int) float64 {
	return a.intraFor(size, contention).Sample(r)
}

// MeanIntra of the intra-node distribution.
func (a *AnalyticDB) MeanIntra(size, contention int) float64 {
	return a.intraFor(size, contention).Mean()
}

// MinIntra of the intra-node distribution.
func (a *AnalyticDB) MinIntra(size, contention int) float64 {
	return a.intraFor(size, contention).MinBound()
}

// SendBusy returns the host send cost.
func (a *AnalyticDB) SendBusy(size int) float64 { return a.SendCost(size) }

// RecvBusy returns the host receive cost.
func (a *AnalyticDB) RecvBusy(size int) float64 { return a.RecvCost(size) }

// EagerLimit returns the protocol switch size.
func (a *AnalyticDB) EagerLimit() int { return a.Eager }

// LogGPStyleDB builds a simple latency/bandwidth analytic database
// (T = l + b/W with a lognormal contention-scaled spread) for quick
// studies without benchmark data.
func LogGPStyleDB(latency, bandwidth float64, eager int) *AnalyticDB {
	return &AnalyticDB{
		OneWayFor: func(size, contention int) stats.Dist {
			base := latency + float64(size)/bandwidth
			k := float64(contention)
			if k < 2 {
				k = 2
			}
			spread := 0.05 + 0.04*math.Log2(k/2)
			return stats.ShiftedLogNormal{
				Shift: base,
				Mu:    math.Log(base * spread),
				Sigma: 0.6,
			}
		},
		SendCost: func(size int) float64 { return latency / 4 },
		RecvCost: func(size int) float64 { return latency / 4 },
		Eager:    eager,
	}
}
