package pevpm

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// TestReportMetricsCountDraws checks that an evaluation's snapshot
// records one inter-node draw per message and mirrors the sweep and
// message totals.
func TestReportMetricsCountDraws(t *testing.T) {
	db := constDB(100e-6, 0, 5e-6, 1<<20)
	rep := mustEval(t, sendRecvProgram(1024), Options{Procs: 2, DB: db})

	get := func(name string, labels ...metrics.Label) uint64 {
		v, _ := rep.Metrics.Counter("pevpm", name, labels...)
		return v
	}
	if get("draws_total", metrics.L("dist", "inter")) != 1 {
		t.Errorf("inter draws = %d, want 1", get("draws_total", metrics.L("dist", "inter")))
	}
	if get("draws_total", metrics.L("dist", "intra")) != 0 {
		t.Errorf("intra draws = %d, want 0 (NodeOf unset)", get("draws_total", metrics.L("dist", "intra")))
	}
	if get("messages_sent_total") != rep.MessagesSent {
		t.Errorf("messages_sent_total = %d, want %d", get("messages_sent_total"), rep.MessagesSent)
	}
	if get("sweeps_total") != uint64(rep.Sweeps) {
		t.Errorf("sweeps_total = %d, want %d", get("sweeps_total"), rep.Sweeps)
	}
	if get("replications_total") != 1 {
		t.Errorf("replications_total = %d, want 1", get("replications_total"))
	}
}

// TestIntraDrawClassification routes the message onto one node and
// checks it samples the intra-node distribution.
func TestIntraDrawClassification(t *testing.T) {
	db := constDB(100e-6, 0, 5e-6, 1<<20)
	rep := mustEval(t, sendRecvProgram(64), Options{
		Procs: 2, DB: db,
		NodeOf: func(proc int) int { return 0 }, // both procs on node 0
	})
	if v, _ := rep.Metrics.Counter("pevpm", "draws_total", metrics.L("dist", "intra")); v != 1 {
		t.Errorf("intra draws = %d, want 1", v)
	}
	if v, _ := rep.Metrics.Counter("pevpm", "draws_total", metrics.L("dist", "inter")); v != 0 {
		t.Errorf("inter draws = %d, want 0", v)
	}
}

// TestEvaluateNWorkersMetricsDeterministic folds replication metrics at
// 1 worker and at 4 workers and requires identical snapshots — the
// same contract the makespan summary already satisfies.
func TestEvaluateNWorkersMetricsDeterministic(t *testing.T) {
	db := constDB(100e-6, 1e-9, 5e-6, 512)
	prog := sendRecvProgram(4096) // rendezvous path: sender parks too
	const n = 8

	fold := func(workers int) metrics.Snapshot {
		agg := metrics.NewAggregate()
		opts := Options{Procs: 2, DB: db, Seed: 42, Metrics: agg}
		if _, err := EvaluateNWorkers(prog, opts, n, workers); err != nil {
			t.Fatal(err)
		}
		return agg.Snapshot()
	}
	serial, parallel := fold(1), fold(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("aggregated metrics differ between 1 and 4 workers:\n%+v\nvs\n%+v", serial, parallel)
	}
	if v, _ := serial.Counter("pevpm", "replications_total"); v != n {
		t.Errorf("replications_total = %d, want %d", v, n)
	}
}
