package pevpm

import (
	"strings"
	"testing"
)

// figure5 is the paper's annotated Jacobi Iteration skeleton (Figure 5)
// in standalone directive form, with Param directives binding the values
// that the C program text supplied.
const figure5 = `
# Jacobi Iteration, Figure 5 of the paper.
PEVPM Param xsize = 256
PEVPM Param iterations = 1000

PEVPM Loop iterations = iterations
PEVPM {
PEVPM   Runon c1 = procnum%2 == 0
PEVPM   &     c2 = procnum%2 != 0
PEVPM   {
PEVPM     Runon c1 = procnum != 0
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum-1
PEVPM     }
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum+1
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum+1
PEVPM       &       to = procnum
PEVPM     }
PEVPM     Runon c1 = procnum != 0
PEVPM     {
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum-1
PEVPM       &       to = procnum
PEVPM     }
PEVPM   }
PEVPM   {
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum+1
PEVPM       &       to = procnum
PEVPM     }
PEVPM     Message type = MPI_Recv
PEVPM     &       size = xsize*sizeof(float)
PEVPM     &       from = procnum-1
PEVPM     &       to = procnum
PEVPM     Message type = MPI_Send
PEVPM     &       size = xsize*sizeof(float)
PEVPM     &       from = procnum
PEVPM     &       to = procnum-1
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum+1
PEVPM     }
PEVPM   }
PEVPM   Serial on perseus time = 3.24/numprocs
PEVPM }
`

func TestParseFigure5(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Params["xsize"] != 256 || prog.Params["iterations"] != 1000 {
		t.Errorf("params = %v", prog.Params)
	}
	if len(prog.Body) != 1 {
		t.Fatalf("top level has %d nodes", len(prog.Body))
	}
	loop, ok := prog.Body[0].(*Loop)
	if !ok {
		t.Fatalf("top node is %T", prog.Body[0])
	}
	if len(loop.Body) != 2 {
		t.Fatalf("loop body has %d nodes, want Runon + Serial", len(loop.Body))
	}
	runon, ok := loop.Body[0].(*Runon)
	if !ok {
		t.Fatalf("first loop node is %T", loop.Body[0])
	}
	if len(runon.Conds) != 2 || len(runon.Bodies) != 2 {
		t.Fatalf("Runon has %d conds, %d bodies", len(runon.Conds), len(runon.Bodies))
	}
	serial, ok := loop.Body[1].(*Serial)
	if !ok {
		t.Fatalf("second loop node is %T", loop.Body[1])
	}
	if serial.Machine != "perseus" {
		t.Errorf("Serial machine = %q", serial.Machine)
	}
	// Even branch: Runon(send up), Runon(send down + recv), Runon(recv).
	if len(runon.Bodies[0]) != 3 {
		t.Errorf("even branch has %d nodes", len(runon.Bodies[0]))
	}
	// Odd branch: Runon(recv), recv, send, Runon(send).
	if len(runon.Bodies[1]) != 4 {
		t.Errorf("odd branch has %d nodes", len(runon.Bodies[1]))
	}
}

func TestParseAnnotatedCSource(t *testing.T) {
	// Directives embedded as comments in C code, non-PEVPM lines ignored.
	src := `
int main(void) {
// PEVPM Param n = 4
  for (i = 0; i < n; i++) {
// PEVPM Serial time = 0.5
    compute();
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Params["n"] != 4 || len(prog.Body) != 1 {
		t.Errorf("annotated parse: params=%v body=%d", prog.Params, len(prog.Body))
	}
}

func TestParamReferencesEarlierParam(t *testing.T) {
	prog, err := Parse(`
PEVPM Param xsize = 128
PEVPM Param bytes = xsize*sizeof(float)
PEVPM Serial time = 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Params["bytes"] != 512 {
		t.Errorf("bytes = %v", prog.Params["bytes"])
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parsing formatted model: %v\n%s", err, text)
	}
	if Format(back) != text {
		t.Error("Format is not a fixed point")
	}
	if back.Params["xsize"] != 256 {
		t.Error("round trip lost params")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing brace":        "PEVPM Loop n = 3\nPEVPM Serial time = 1",
		"unclosed block":       "PEVPM Loop n = 3\nPEVPM {\nPEVPM Serial time = 1",
		"unmatched close":      "PEVPM }",
		"orphan continuation":  "PEVPM & size = 4",
		"unknown directive":    "PEVPM Frobnicate x = 1",
		"bad message type":     "PEVPM Message type = MPI_Bogus\nPEVPM & size = 1\nPEVPM & from = 0\nPEVPM & to = 1",
		"incomplete message":   "PEVPM Message type = MPI_Send\nPEVPM & size = 4",
		"duplicate field":      "PEVPM Message type = MPI_Send\nPEVPM & type = MPI_Send\nPEVPM & size=1\nPEVPM & from=0\nPEVPM & to=1",
		"unknown msg field":    "PEVPM Message type = MPI_Send\nPEVPM & bogus = 1\nPEVPM & size=1\nPEVPM & from=0\nPEVPM & to=1",
		"serial without time":  "PEVPM Serial on host speed = 2",
		"field without equals": "PEVPM Param xsize",
		"bad expression":       "PEVPM Param x = ((",
		"bare block":           "PEVPM {\nPEVPM }",
		"runon without blocks": "PEVPM Runon c1 = procnum == 0\nPEVPM Serial time = 1",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestFormatContainsDirectives(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	// sizeof(...) folds to a constant at parse time, so it is absent.
	for _, want := range []string{"Loop", "Runon", "MPI_Send", "MPI_Recv", "Serial on perseus", "xsize"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted model missing %q", want)
		}
	}
}
