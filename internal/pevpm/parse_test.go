package pevpm

import (
	"strings"
	"testing"
)

// figure5 is the paper's annotated Jacobi Iteration skeleton (Figure 5)
// in standalone directive form, with Param directives binding the values
// that the C program text supplied.
const figure5 = `
# Jacobi Iteration, Figure 5 of the paper.
PEVPM Param xsize = 256
PEVPM Param iterations = 1000

PEVPM Loop iterations = iterations
PEVPM {
PEVPM   Runon c1 = procnum%2 == 0
PEVPM   &     c2 = procnum%2 != 0
PEVPM   {
PEVPM     Runon c1 = procnum != 0
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum-1
PEVPM     }
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum+1
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum+1
PEVPM       &       to = procnum
PEVPM     }
PEVPM     Runon c1 = procnum != 0
PEVPM     {
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum-1
PEVPM       &       to = procnum
PEVPM     }
PEVPM   }
PEVPM   {
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Recv
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum+1
PEVPM       &       to = procnum
PEVPM     }
PEVPM     Message type = MPI_Recv
PEVPM     &       size = xsize*sizeof(float)
PEVPM     &       from = procnum-1
PEVPM     &       to = procnum
PEVPM     Message type = MPI_Send
PEVPM     &       size = xsize*sizeof(float)
PEVPM     &       from = procnum
PEVPM     &       to = procnum-1
PEVPM     Runon c1 = procnum != numprocs-1
PEVPM     {
PEVPM       Message type = MPI_Send
PEVPM       &       size = xsize*sizeof(float)
PEVPM       &       from = procnum
PEVPM       &       to = procnum+1
PEVPM     }
PEVPM   }
PEVPM   Serial on perseus time = 3.24/numprocs
PEVPM }
`

func TestParseFigure5(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Params["xsize"] != 256 || prog.Params["iterations"] != 1000 {
		t.Errorf("params = %v", prog.Params)
	}
	if len(prog.Body) != 1 {
		t.Fatalf("top level has %d nodes", len(prog.Body))
	}
	loop, ok := prog.Body[0].(*Loop)
	if !ok {
		t.Fatalf("top node is %T", prog.Body[0])
	}
	if len(loop.Body) != 2 {
		t.Fatalf("loop body has %d nodes, want Runon + Serial", len(loop.Body))
	}
	runon, ok := loop.Body[0].(*Runon)
	if !ok {
		t.Fatalf("first loop node is %T", loop.Body[0])
	}
	if len(runon.Conds) != 2 || len(runon.Bodies) != 2 {
		t.Fatalf("Runon has %d conds, %d bodies", len(runon.Conds), len(runon.Bodies))
	}
	serial, ok := loop.Body[1].(*Serial)
	if !ok {
		t.Fatalf("second loop node is %T", loop.Body[1])
	}
	if serial.Machine != "perseus" {
		t.Errorf("Serial machine = %q", serial.Machine)
	}
	// Even branch: Runon(send up), Runon(send down + recv), Runon(recv).
	if len(runon.Bodies[0]) != 3 {
		t.Errorf("even branch has %d nodes", len(runon.Bodies[0]))
	}
	// Odd branch: Runon(recv), recv, send, Runon(send).
	if len(runon.Bodies[1]) != 4 {
		t.Errorf("odd branch has %d nodes", len(runon.Bodies[1]))
	}
}

func TestParseAnnotatedCSource(t *testing.T) {
	// Directives embedded as comments in C code, non-PEVPM lines ignored.
	src := `
int main(void) {
// PEVPM Param n = 4
  for (i = 0; i < n; i++) {
// PEVPM Serial time = 0.5
    compute();
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Params["n"] != 4 || len(prog.Body) != 1 {
		t.Errorf("annotated parse: params=%v body=%d", prog.Params, len(prog.Body))
	}
}

func TestParamReferencesEarlierParam(t *testing.T) {
	prog, err := Parse(`
PEVPM Param xsize = 128
PEVPM Param bytes = xsize*sizeof(float)
PEVPM Serial time = 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Params["bytes"] != 512 {
		t.Errorf("bytes = %v", prog.Params["bytes"])
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parsing formatted model: %v\n%s", err, text)
	}
	if Format(back) != text {
		t.Error("Format is not a fixed point")
	}
	if back.Params["xsize"] != 256 {
		t.Error("round trip lost params")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing brace":        "PEVPM Loop n = 3\nPEVPM Serial time = 1",
		"unclosed block":       "PEVPM Loop n = 3\nPEVPM {\nPEVPM Serial time = 1",
		"unmatched close":      "PEVPM }",
		"orphan continuation":  "PEVPM & size = 4",
		"unknown directive":    "PEVPM Frobnicate x = 1",
		"bad message type":     "PEVPM Message type = MPI_Bogus\nPEVPM & size = 1\nPEVPM & from = 0\nPEVPM & to = 1",
		"incomplete message":   "PEVPM Message type = MPI_Send\nPEVPM & size = 4",
		"duplicate field":      "PEVPM Message type = MPI_Send\nPEVPM & type = MPI_Send\nPEVPM & size=1\nPEVPM & from=0\nPEVPM & to=1",
		"unknown msg field":    "PEVPM Message type = MPI_Send\nPEVPM & bogus = 1\nPEVPM & size=1\nPEVPM & from=0\nPEVPM & to=1",
		"serial without time":  "PEVPM Serial on host speed = 2",
		"field without equals": "PEVPM Param xsize",
		"bad expression":       "PEVPM Param x = ((",
		"bare block":           "PEVPM {\nPEVPM }",
		"runon without blocks": "PEVPM Runon c1 = procnum == 0\nPEVPM Serial time = 1",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParsePositions(t *testing.T) {
	prog, err := ParseFile("fig5.pvm", figure5)
	if err != nil {
		t.Fatal(err)
	}
	if prog.File != "fig5.pvm" {
		t.Errorf("Program.File = %q", prog.File)
	}
	loop := prog.Body[0].(*Loop)
	// figure5 is a raw string starting with a newline: the Loop directive
	// is on source line 6, head token at column 7 ("PEVPM Loop ...").
	if got := loop.Pos(); got.File != "fig5.pvm" || got.Line != 6 || got.Col != 7 {
		t.Errorf("Loop position = %v", got)
	}
	if s := loop.Pos().String(); s != "fig5.pvm:6:7" {
		t.Errorf("Loop position string = %q", s)
	}
	// Every directive node must carry a valid position.
	Walk(prog.Body, func(n Node) bool {
		if !n.Pos().IsValid() {
			t.Errorf("node %s has no position", Describe(n))
		}
		return true
	})
}

func TestParseErrorsCiteFileLine(t *testing.T) {
	src := "PEVPM Param ok = 1\nPEVPM Frobnicate x = 1\n"
	_, err := ParseFile("bad.pvm", src)
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "bad.pvm:2") {
		t.Errorf("error %q does not cite bad.pvm:2", err)
	}
	// Without a file name the position is still line:col.
	_, err = Parse(src)
	if err == nil || !strings.Contains(err.Error(), "pevpm: 2:") {
		t.Errorf("bare Parse error %q does not cite line 2", err)
	}
}

func TestWalkVisitsAllBranches(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	Walk(prog.Body, func(n Node) bool {
		switch n.(type) {
		case *Loop:
			counts["loop"]++
		case *Runon:
			counts["runon"]++
		case *Msg:
			counts["msg"]++
		case *Serial:
			counts["serial"]++
		}
		return true
	})
	// 1 loop, 1 outer + 5 inner Runons, 8 messages, 1 serial.
	if counts["loop"] != 1 || counts["runon"] != 6 || counts["msg"] != 8 || counts["serial"] != 1 {
		t.Errorf("walk counts = %v", counts)
	}
}

func TestExprVars(t *testing.T) {
	e := MustExpr("xsize*sizeof(float) + procnum % stride - xsize")
	got := Vars(e)
	want := []string{"xsize", "procnum", "stride"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Vars[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFormatContainsDirectives(t *testing.T) {
	prog, err := Parse(figure5)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(prog)
	// sizeof(...) folds to a constant at parse time, so it is absent.
	for _, want := range []string{"Loop", "Runon", "MPI_Send", "MPI_Recv", "Serial on perseus", "xsize"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted model missing %q", want)
		}
	}
}
