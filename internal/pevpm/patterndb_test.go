package pevpm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/sim"
	"repro/internal/stats"
)

func patternDBFixture(t *testing.T) (*PatternDB, PatternKey, *mpibench.PatternResult) {
	t.Helper()
	topo, nodes, err := cluster.ParseTopology("fattree:64x16x4")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := cluster.NewPlacement(&cfg, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mpibench.RunPattern(cfg, mpibench.PatternSpec{
		Pattern: mpibench.PatternDense, P: 16, G: 3, K: 2,
		Direction: mpibench.Unidirectional, Window: 2,
		Placement: pl, Sizes: []int{1024, 16384},
		Rounds: 12, WarmUp: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	set := &mpibench.PatternSet{Cluster: cfg.Name}
	set.Add(res)
	db, err := NewPatternDB(set)
	if err != nil {
		t.Fatal(err)
	}
	return db, KeyOf(res), res
}

func TestPatternDBLookupAndSample(t *testing.T) {
	db, key, res := patternDBFixture(t)
	if keys := db.Keys(); len(keys) != 1 || keys[0] != key {
		t.Fatalf("Keys = %v", keys)
	}
	mean, err := db.MeanRound(key, 16384)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := res.PointFor(16384)
	if mean != pt.MaxHist.Mean() {
		t.Errorf("MeanRound = %v, measured %v", mean, pt.MaxHist.Mean())
	}
	// An intermediate size blends between its measured brackets.
	mid, err := db.MeanRound(key, 8192)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := db.MeanRound(key, 1024)
	if mid <= lo || mid >= mean {
		t.Errorf("blended mean %v outside (%v, %v)", mid, lo, mean)
	}
	rng := sim.NewCellRNG(1, "patterndb:test")
	for i := 0; i < 10; i++ {
		v, err := db.SampleRound(rng, key, 16384)
		if err != nil || v <= 0 {
			t.Fatalf("SampleRound = %v, %v", v, err)
		}
	}
	// Unknown keys are clean errors.
	if _, err := db.SampleRound(rng, PatternKey{Pattern: "rail"}, 1024); err == nil {
		t.Error("unknown key should fail")
	}
}

func TestPatternDBPredictMakespan(t *testing.T) {
	db, key, res := patternDBFixture(t)
	const rounds = 40
	rng := sim.NewCellRNG(1, "patterndb:predict")
	iv, err := db.PredictMakespan(rng, key, 16384, rounds, 30, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo <= 0 || iv.Hi <= iv.Lo || iv.Point < iv.Lo || iv.Point > iv.Hi {
		t.Fatalf("degenerate interval %+v", iv)
	}
	// The prediction must be consistent with rounds × the measured mean.
	pt, _ := res.PointFor(16384)
	naive := float64(rounds) * pt.MaxHist.Mean()
	if iv.Point < 0.5*naive || iv.Point > 2*naive {
		t.Errorf("predicted %v, naive mean-based %v", iv.Point, naive)
	}
	// Determinism: the same substream reproduces the same interval.
	rng2 := sim.NewCellRNG(1, "patterndb:predict")
	iv2, err := db.PredictMakespan(rng2, key, 16384, rounds, 30, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv != iv2 {
		t.Errorf("prediction not reproducible: %+v vs %+v", iv, iv2)
	}
	if !stats.Overlap(iv, iv2) {
		t.Error("identical intervals must overlap")
	}
	if _, err := db.PredictMakespan(rng, key, 16384, 0, 30, 0.95); err == nil {
		t.Error("rounds=0 should fail")
	}
}
