package pevpm

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/experiments/sweep"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures one evaluation of a model.
type Options struct {
	Procs int    // numprocs of the virtual machine
	DB    PerfDB // communication cost database
	Seed  uint64 // Monte-Carlo seed

	// NodeOf maps a process to its cluster node, letting the machine
	// price messages between processes on one SMP node from the
	// intra-node distributions. When nil every message is inter-node.
	NodeOf func(proc int) int

	// Trace, when non-nil, receives the *predicted* timeline in the
	// same format internal/mpi emits for real executions — diffing the
	// two Gantts localises mispredictions, and the trace alone is the
	// paper's "location and extent of performance loss" view.
	Trace *trace.Log

	// Metrics, when non-nil, receives every replication's instrument
	// snapshot, folded in replication order on the calling goroutine by
	// EvaluateN/EvaluateNWorkers. (Evaluate itself does not touch it;
	// single evaluations expose their snapshot via Report.Metrics.)
	Metrics *metrics.Aggregate
}

// Breakdown attributes one model process's virtual time to its sources —
// the paper's "location and extent of performance loss due to any
// source".
type Breakdown struct {
	Compute  float64 // Serial directives
	SendBusy float64 // host time initiating sends (plus rendezvous blocking)
	RecvWait float64 // blocked in receives (idle + pickup)
}

// HotSpot aggregates waiting time against one directive across all
// processes, identifying where the model loses performance.
type HotSpot struct {
	Directive string
	Wait      float64
}

// Report is the outcome of one evaluation.
type Report struct {
	Procs        int
	ProcTimes    []float64 // per-process completion time (virtual seconds)
	Makespan     float64   // max over processes
	Sweeps       int       // sweep/match rounds executed
	MessagesSent uint64
	Breakdowns   []Breakdown
	HotSpots     []HotSpot // sorted by descending wait

	// Metrics is the evaluation's instrument snapshot: Monte-Carlo draws
	// per distribution, sweep rounds, messages. Each evaluation owns its
	// machine and registry, so concurrent replications never share one.
	Metrics metrics.Snapshot
}

// ErrModelDeadlock is wrapped by Evaluate when the modelled program can
// make no progress — mismatched Message directives, exactly the class of
// bug the paper says PEVPM "automatically discovers".
var ErrModelDeadlock = errors.New("pevpm: model deadlock")

// Evaluate runs the virtual parallel machine over the program once. The
// evaluation alternates sweep phases (advance every process to its next
// decision point, accumulating sends on the contention scoreboard) and
// match phases (sample arrival times from the database under the
// scoreboard's contention level, then match receives), per §5 of the
// paper.
func Evaluate(prog *Program, opts Options) (*Report, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if opts.Procs <= 0 {
		return nil, fmt.Errorf("pevpm: Procs = %d", opts.Procs)
	}
	if opts.DB == nil {
		return nil, errors.New("pevpm: no performance database")
	}
	reg := metrics.NewRegistry()
	m := &machine{
		prog: prog,
		opts: opts,
		//detlint:allow rng -- stream derivation predates sim.SubSeed; rederiving it would shift every committed golden figure (see mpibench run.go for the same compat note)
		rng:        sim.NewRNG(opts.Seed ^ 0x5eed5eed),
		hot:        make(map[Node]float64),
		reg:        reg,
		mDrawInt:   reg.Counter("pevpm", "draws_total", metrics.L("dist", "inter")),
		mDrawIntra: reg.Counter("pevpm", "draws_total", metrics.L("dist", "intra")),
		mDrawColl:  reg.Counter("pevpm", "draws_total", metrics.L("dist", "collective")),
	}
	return m.run()
}

// flight is one message on the contention scoreboard.
type flight struct {
	seq        uint64
	from, to   int
	size       int
	intra      bool // endpoints share a node: loopback, not the network
	depart     float64
	arrival    float64
	determined bool
	sender     *mproc // parked rendezvous sender, if any
	node       *Msg
}

// procState enumerates where a model process is between phases.
type procState int

const (
	stateRunnable procState = iota
	stateParkedRecv
	stateParkedSend
	stateParkedColl
	stateDone
)

// mproc is one process of the virtual parallel machine. Its program runs
// in a goroutine, strictly interleaved with the evaluator.
type mproc struct {
	id    int
	now   float64
	state procState

	// Receive the process is parked on.
	waitFrom   int
	waitPosted float64
	waitNode   *Msg

	// Collective the process is parked on.
	collNode *Coll
	collSeq  int // how many collectives this process has entered
	collSize int

	bd  Breakdown
	err error

	resume chan struct{}
	yield  chan any
}

type machine struct {
	prog *Program
	opts Options
	rng  *sim.RNG

	procs   []*mproc
	flights []*flight
	// flightFree recycles matched flight records: a long model run moves
	// many messages but only a bounded number are ever in the air at once.
	flightFree []*flight
	seq        uint64
	sent       uint64
	sweeps     int
	hot        map[Node]float64

	// Per-evaluation instruments. The machine owns its registry (there
	// is no sim engine here), so concurrent Monte-Carlo replications
	// cannot race on shared counters.
	reg        *metrics.Registry
	mDrawInt   *metrics.Counter
	mDrawIntra *metrics.Counter
	mDrawColl  *metrics.Counter
}

// newFlight takes a flight record from the machine's pool, or makes one.
func (m *machine) newFlight() *flight {
	if n := len(m.flightFree) - 1; n >= 0 {
		f := m.flightFree[n]
		m.flightFree[n] = nil
		m.flightFree = m.flightFree[:n]
		return f
	}
	return &flight{}
}

// freeFlight recycles a matched flight, dropping its node and sender
// references.
func (m *machine) freeFlight(f *flight) {
	*f = flight{}
	m.flightFree = append(m.flightFree, f)
}

func (m *machine) run() (*Report, error) {
	m.procs = make([]*mproc, m.opts.Procs)
	for i := range m.procs {
		p := &mproc{id: i, resume: make(chan struct{}), yield: make(chan any)}
		m.procs[i] = p
		go m.procBody(p)
	}
	defer m.releaseAll()

	for {
		m.sweeps++
		progress := false
		for _, p := range m.procs {
			if p.state == stateRunnable {
				progress = true
				m.step(p)
				if p.err != nil {
					return nil, p.err
				}
			}
		}
		allDone := true
		for _, p := range m.procs {
			if p.state != stateDone {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		matched := m.match()
		collMatched, err := m.matchCollective()
		if err != nil {
			return nil, err
		}
		matched = matched || collMatched
		if !matched && !progress {
			return nil, m.deadlockError()
		}
		if !matched && !m.anyRunnable() {
			return nil, m.deadlockError()
		}
	}
	return m.report(), nil
}

// rec emits a predicted-timeline event when tracing is on. PEVPM's
// virtual time is float seconds; the trace uses the kernel's Time.
func (m *machine) rec(proc int, at float64, kind trace.Kind, peer, tag, size int) {
	if m.opts.Trace == nil {
		return
	}
	m.opts.Trace.Record(trace.Event{
		Time: sim.TimeFromSeconds(at), Rank: proc, Kind: kind,
		Peer: peer, Tag: tag, Size: size,
	})
}

func (m *machine) anyRunnable() bool {
	for _, p := range m.procs {
		if p.state == stateRunnable {
			return true
		}
	}
	return false
}

// step transfers control into a process until it parks or finishes.
func (m *machine) step(p *mproc) {
	p.resume <- struct{}{}
	if bad := <-p.yield; bad != nil {
		panic(bad)
	}
}

// park gives control back to the evaluator.
func (p *mproc) park() {
	p.yield <- nil
	<-p.resume
}

// releaseAll unwinds remaining goroutines after an error or completion.
func (m *machine) releaseAll() {
	for _, p := range m.procs {
		if p.state != stateDone {
			p.state = stateDone
			close(p.resume)
		}
	}
}

type procAbort struct{}

// procBody runs the model program for one process.
func (m *machine) procBody(p *mproc) {
	if _, ok := <-p.resume; !ok {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procAbort); ok {
				return
			}
			p.state = stateDone
			p.yield <- r
			return
		}
		p.state = stateDone
		p.yield <- nil
	}()
	env := Env{"procnum": float64(p.id), "numprocs": float64(m.opts.Procs)}
	for k, v := range m.prog.Params {
		env[k] = v
	}
	if err := m.execBlock(p, env, m.prog.Body); err != nil {
		p.err = err
	}
}

// pause parks the process inside directive execution; it aborts the
// goroutine if the machine is shutting down.
func (p *mproc) pause() {
	p.yield <- nil
	if _, ok := <-p.resume; !ok {
		panic(procAbort{})
	}
}

func (m *machine) execBlock(p *mproc, env Env, b Block) error {
	for _, n := range b {
		if err := m.execNode(p, env, n); err != nil {
			return err
		}
	}
	return nil
}

func (m *machine) execNode(p *mproc, env Env, n Node) error {
	switch node := n.(type) {
	case *Serial:
		t, err := node.Time.Eval(env)
		if err != nil {
			return err
		}
		if t < 0 {
			return fmt.Errorf("pevpm: negative Serial time %v", t)
		}
		m.rec(p.id, p.now, trace.ComputeStart, -1, 0, 0)
		p.now += t
		p.bd.Compute += t
		m.rec(p.id, p.now, trace.ComputeEnd, -1, 0, 0)
		return nil

	case *Loop:
		cf, err := node.Count.Eval(env)
		if err != nil {
			return err
		}
		count := int(cf)
		if count < 0 {
			return fmt.Errorf("pevpm: negative Loop count %v", cf)
		}
		for i := 0; i < count; i++ {
			if err := m.execBlock(p, env, node.Body); err != nil {
				return err
			}
		}
		return nil

	case *Runon:
		for i, cond := range node.Conds {
			v, err := cond.Eval(env)
			if err != nil {
				return err
			}
			if v != 0 {
				return m.execBlock(p, env, node.Bodies[i])
			}
		}
		return nil

	case *Msg:
		return m.execMsg(p, env, node)

	case *Coll:
		return m.execColl(p, env, node)
	}
	return fmt.Errorf("pevpm: unknown directive %T", n)
}

// execColl parks the process on a collective operation; the match phase
// releases all processes together once everyone has arrived.
func (m *machine) execColl(p *mproc, env Env, node *Coll) error {
	if _, ok := m.opts.DB.(CollectiveSampler); !ok {
		return fmt.Errorf("pevpm: model uses Collective %s but the database has no collective measurements", node.Op)
	}
	if cs := m.opts.DB.(CollectiveSampler); !cs.HasCollective(node.Op) {
		return fmt.Errorf("pevpm: collective %s not present in the database", node.Op)
	}
	sizeF, err := node.Size.Eval(env)
	if err != nil {
		return err
	}
	if sizeF < 0 {
		return fmt.Errorf("pevpm: negative collective size %v", sizeF)
	}
	if node.Root != nil {
		if _, err := node.Root.Eval(env); err != nil {
			return err
		}
	}
	m.rec(p.id, p.now, trace.CollectiveStart, -1, 0, int(sizeF))
	p.collNode = node
	p.collSize = int(sizeF)
	p.collSeq++
	p.waitPosted = p.now
	p.state = stateParkedColl
	p.pause()
	m.rec(p.id, p.now, trace.CollectiveEnd, -1, 0, int(sizeF))
	return nil
}

// matchCollective releases the job from a collective once every process
// has arrived: each process's completion is the synchronised entry (the
// slowest arrival) plus a draw from the operation's measured per-rank
// distribution. A process that finished or parked elsewhere while the
// rest sit in a collective is a collective mismatch — a modelled program
// bug, reported like a deadlock.
func (m *machine) matchCollective() (bool, error) {
	arrived := 0
	var node *Coll
	seq := -1
	var entryMax float64
	for _, p := range m.procs {
		if p.state != stateParkedColl {
			continue
		}
		arrived++
		if node == nil {
			node, seq = p.collNode, p.collSeq
		} else if p.collNode != node || p.collSeq != seq {
			return false, fmt.Errorf("%w: processes in different collectives (%s vs %s)",
				ErrModelDeadlock, node.describe(), p.collNode.describe())
		}
		if p.now > entryMax {
			entryMax = p.now
		}
	}
	if arrived == 0 {
		return false, nil
	}
	if arrived < len(m.procs) {
		// Someone is not coming: either still making progress elsewhere
		// (fine — wait) or finished/stuck (mismatch). Only fail when no
		// other progress is possible; run() handles that via the normal
		// deadlock path, which now includes collective parks.
		return false, nil
	}
	// One draw per collective instance: the database's distribution is
	// the per-instance slowest rank, and the whole job leaves together.
	// (Independent per-process draws would inflate the instance maximum
	// — rank completions within one collective are strongly correlated.)
	cs := m.opts.DB.(CollectiveSampler)
	size := m.procs[0].collSize
	m.mDrawColl.Inc()
	completion := entryMax + cs.SampleCollective(m.rng, node.Op, size, m.opts.Procs)
	for _, p := range m.procs {
		wait := completion - p.waitPosted
		p.bd.RecvWait += wait
		m.hot[node] += wait
		p.now = completion
		p.state = stateRunnable
		p.collNode = nil
	}
	return true, nil
}

func (m *machine) execMsg(p *mproc, env Env, node *Msg) error {
	sizeF, err := node.Size.Eval(env)
	if err != nil {
		return err
	}
	fromF, err := node.From.Eval(env)
	if err != nil {
		return err
	}
	toF, err := node.To.Eval(env)
	if err != nil {
		return err
	}
	size, from, to := int(sizeF), int(fromF), int(toF)
	if size < 0 {
		return fmt.Errorf("pevpm: negative message size %d", size)
	}
	if from < 0 || from >= m.opts.Procs || to < 0 || to >= m.opts.Procs {
		return fmt.Errorf("pevpm: message endpoints %d->%d outside 0..%d",
			from, to, m.opts.Procs-1)
	}

	switch node.Kind {
	case MsgSend, MsgIsend:
		if from != p.id {
			return fmt.Errorf("pevpm: process %d executing a send whose from=%d", p.id, from)
		}
		m.rec(p.id, p.now, trace.SendStart, to, 0, size)
		busy := m.opts.DB.SendBusy(size)
		p.now += busy
		p.bd.SendBusy += busy
		m.seq++
		m.sent++
		f := m.newFlight()
		f.seq, f.from, f.to, f.size = m.seq, from, to, size
		f.intra = m.opts.NodeOf != nil && m.opts.NodeOf(from) == m.opts.NodeOf(to)
		f.depart, f.node = p.now, node
		m.flights = append(m.flights, f)
		if node.Kind == MsgSend && size > m.opts.DB.EagerLimit() {
			// Rendezvous: the send blocks until the payload is
			// delivered; the match phase resolves the arrival.
			f.sender = p
			p.state = stateParkedSend
			p.pause()
		}
		return nil

	case MsgRecv:
		if to != p.id {
			return fmt.Errorf("pevpm: process %d executing a receive whose to=%d", p.id, to)
		}
		m.rec(p.id, p.now, trace.RecvPost, from, 0, size)
		p.waitFrom = from
		p.waitPosted = p.now
		p.waitNode = node
		p.state = stateParkedRecv
		p.pause()
		m.rec(p.id, p.now, trace.RecvEnd, from, 0, size)
		return nil
	}
	return fmt.Errorf("pevpm: unknown message kind %v", node.Kind)
}

// match is the PEVPM match phase: determine arrival times for every
// in-transit message under the current contention level, wake rendezvous
// senders, and match determined messages to parked receives.
func (m *machine) match() bool {
	progress := false
	// Contention is counted separately for the network and for the
	// intra-node loopback path: a message between two CPUs of one node
	// does not occupy the NIC or switch fabric.
	interContention, intraContention := 0, 0
	for _, f := range m.flights {
		if f.intra {
			intraContention++
		} else {
			interContention++
		}
	}

	sort.Slice(m.flights, func(i, j int) bool {
		if m.flights[i].depart != m.flights[j].depart {
			return m.flights[i].depart < m.flights[j].depart
		}
		return m.flights[i].seq < m.flights[j].seq
	})
	for _, f := range m.flights {
		if f.determined {
			continue
		}
		if f.intra {
			m.mDrawIntra.Inc()
			f.arrival = f.depart + m.opts.DB.SampleIntra(m.rng, f.size, intraContention)
		} else {
			m.mDrawInt.Inc()
			f.arrival = f.depart + m.opts.DB.Sample(m.rng, f.size, interContention)
		}
		f.determined = true
		if f.sender != nil {
			// Rendezvous completion: the sender was blocked from depart
			// until delivery.
			blocked := f.arrival - f.sender.now
			if blocked > 0 {
				f.sender.bd.SendBusy += blocked
				f.sender.now = f.arrival
			}
			f.sender.state = stateRunnable
			f.sender = nil
			progress = true
		}
	}

	// Match parked receives against determined flights, oldest flight
	// first per (from, to) pair — MPI's non-overtaking rule.
	for _, p := range m.procs {
		if p.state != stateParkedRecv {
			continue
		}
		var best *flight
		bestIdx := -1
		for i, f := range m.flights {
			if !f.determined || f.to != p.id || f.from != p.waitFrom {
				continue
			}
			if best == nil || f.seq < best.seq {
				best, bestIdx = f, i
			}
		}
		if best == nil {
			continue
		}
		// If the message arrived before the receive was posted it was
		// buffered: the receiver only pays the pickup cost. Otherwise
		// the receive completes at the measured arrival time.
		completion := best.arrival
		if late := p.waitPosted + m.opts.DB.RecvBusy(best.size); late > completion {
			completion = late
		}
		wait := completion - p.waitPosted
		p.bd.RecvWait += wait
		m.hot[p.waitNode] += wait
		p.now = completion
		p.state = stateRunnable
		m.flights = append(m.flights[:bestIdx], m.flights[bestIdx+1:]...)
		m.freeFlight(best)
		progress = true
	}
	return progress
}

func (m *machine) deadlockError() error {
	var stuck []string
	for _, p := range m.procs {
		switch p.state {
		case stateParkedRecv:
			stuck = append(stuck, fmt.Sprintf("proc %d in %s (posted at %.6fs)",
				p.id, p.waitNode.describe(), p.waitPosted))
		case stateParkedSend:
			stuck = append(stuck, fmt.Sprintf("proc %d in rendezvous send", p.id))
		case stateParkedColl:
			stuck = append(stuck, fmt.Sprintf("proc %d in %s (others never arrived)",
				p.id, p.collNode.describe()))
		}
	}
	return fmt.Errorf("%w: %s", ErrModelDeadlock, strings.Join(stuck, "; "))
}

func (m *machine) report() *Report {
	r := &Report{
		Procs:        m.opts.Procs,
		ProcTimes:    make([]float64, len(m.procs)),
		Sweeps:       m.sweeps,
		MessagesSent: m.sent,
		Breakdowns:   make([]Breakdown, len(m.procs)),
	}
	for i, p := range m.procs {
		r.ProcTimes[i] = p.now
		r.Breakdowns[i] = p.bd
		if p.now > r.Makespan {
			r.Makespan = p.now
		}
	}
	for node, wait := range m.hot {
		r.HotSpots = append(r.HotSpots, HotSpot{Directive: node.describe(), Wait: wait})
	}
	sort.Slice(r.HotSpots, func(i, j int) bool {
		if r.HotSpots[i].Wait != r.HotSpots[j].Wait {
			return r.HotSpots[i].Wait > r.HotSpots[j].Wait
		}
		return r.HotSpots[i].Directive < r.HotSpots[j].Directive
	})
	m.reg.Counter("pevpm", "replications_total").Inc()
	m.reg.Counter("pevpm", "sweeps_total").Add(uint64(m.sweeps))
	m.reg.Counter("pevpm", "messages_sent_total").Add(m.sent)
	r.Metrics = m.reg.Snapshot()
	return r
}

// EvaluateN runs independent Monte-Carlo evaluations with derived seeds
// and returns the summary of their makespans — the paper runs many
// iterations "so that the statistical error in the mean is negligibly
// small".
func EvaluateN(prog *Program, opts Options, n int) (stats.Summary, error) {
	return EvaluateNWorkers(prog, opts, n, 1)
}

// EvaluateNWorkers is EvaluateN across a worker pool: each replication
// is an independent cell with its own derived seed and virtual machine.
// The makespans are folded into the summary in replication order on the
// calling goroutine, so the result is bit-identical to EvaluateN for
// every worker count. The program is only read; an *EmpiricalDB (whose
// histograms are frozen at construction) is safe to share, as is any
// other database whose Sample is read-only.
func EvaluateNWorkers(prog *Program, opts Options, n, workers int) (stats.Summary, error) {
	var sum stats.Summary
	if opts.Trace != nil && workers != 1 {
		workers = 1 // a shared trace log serialises the replications
	}
	type repResult struct {
		makespan float64
		metrics  metrics.Snapshot
	}
	reps, err := sweep.Map(workers, n, func(i int) (repResult, error) {
		o := opts
		o.Seed = opts.Seed + uint64(i)*7919
		rep, err := Evaluate(prog, o)
		if err != nil {
			return repResult{}, err
		}
		return repResult{makespan: rep.Makespan, metrics: rep.Metrics}, nil
	})
	if err != nil {
		return sum, err
	}
	// Fold in replication order on this goroutine: same discipline as the
	// makespan summary, so metrics are worker-count independent too.
	for _, r := range reps {
		sum.Add(r.makespan)
		if opts.Metrics != nil {
			opts.Metrics.Merge(r.metrics)
		}
	}
	return sum, nil
}
