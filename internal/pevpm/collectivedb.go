package pevpm

import (
	"fmt"
	"sort"

	"repro/internal/mpibench"
	"repro/internal/stats"
)

// CollectiveSampler is the optional PerfDB capability behind the
// Collective directive: it prices a whole-job collective operation from
// MPIBench's measured per-rank completion distributions.
type CollectiveSampler interface {
	// SampleCollective draws one process's completion time (relative to
	// the synchronised entry of the whole job) for the operation at the
	// given payload size and job size.
	SampleCollective(r stats.Rand, op string, size, procs int) float64
	// HasCollective reports whether the operation was benchmarked.
	HasCollective(op string) bool
}

// CollectiveDB decorates a point-to-point database with collective
// distributions measured by MPIBench (one Result per operation and
// placement in the set).
type CollectiveDB struct {
	PerfDB
	grids map[string][]dbEntry
}

// NewCollectiveDB builds the decorator from every collective result in
// the set. The base database continues to price Message directives.
func NewCollectiveDB(base PerfDB, set *mpibench.Set) (*CollectiveDB, error) {
	db := &CollectiveDB{PerfDB: base, grids: make(map[string][]dbEntry)}
	for _, res := range set.Results {
		if res.Op.PointToPoint() {
			continue
		}
		entry := dbEntry{procs: res.Procs}
		for _, pt := range res.Points {
			// Prefer the per-instance slowest-rank distribution: in an
			// iterative program the whole job waits for the collective
			// to finish everywhere, so its gating cost is the instance
			// maximum, not a random rank's time.
			h := pt.MaxHist
			if h == nil || h.Count() == 0 {
				h = pt.Hist
			}
			if h == nil || h.Count() == 0 {
				return nil, fmt.Errorf("pevpm: empty histogram for %s %s size %d",
					res.Op, res.Placement, pt.Size)
			}
			entry.sizes = append(entry.sizes, pt.Size)
			entry.hists = append(entry.hists, h)
		}
		if len(entry.sizes) == 0 {
			continue
		}
		if !sort.IntsAreSorted(entry.sizes) {
			sort.Sort(&entryBysize{&entry})
		}
		op := string(res.Op)
		db.grids[op] = append(db.grids[op], entry)
	}
	if len(db.grids) == 0 {
		return nil, fmt.Errorf("pevpm: result set contains no collective measurements")
	}
	//detlint:ordered -- each iteration sorts and freezes only its own key's grid; no cross-key state
	for op := range db.grids {
		grid := db.grids[op]
		sort.Slice(grid, func(i, j int) bool { return grid[i].procs < grid[j].procs })
		db.grids[op] = grid
		freezeEntries(grid)
	}
	return db, nil
}

// HasCollective reports whether the operation was benchmarked.
func (db *CollectiveDB) HasCollective(op string) bool {
	return len(db.grids[op]) > 0
}

// CollectiveOps lists the benchmarked operations, sorted.
func (db *CollectiveDB) CollectiveOps() []string {
	var out []string
	for op := range db.grids {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// SampleCollective draws from the bilinear blend over (size, procs),
// exactly like point-to-point sampling.
func (db *CollectiveDB) SampleCollective(r stats.Rand, op string, size, procs int) float64 {
	grid := db.grids[op]
	if len(grid) == 0 {
		panic(fmt.Sprintf("pevpm: collective %q not benchmarked", op))
	}
	u := r.Float64()
	return at(grid, size, procs, func(h *stats.Histogram) float64 { return h.Quantile(u) })
}

// MeanCollective blends the measured means (used by collapsed modes and
// reporting).
func (db *CollectiveDB) MeanCollective(op string, size, procs int) float64 {
	grid := db.grids[op]
	if len(grid) == 0 {
		panic(fmt.Sprintf("pevpm: collective %q not benchmarked", op))
	}
	return at(grid, size, procs, (*stats.Histogram).Mean)
}
