package pevpm

import (
	"testing"
)

// TestMonteCarloErrorShrinksWithIterations encodes §6's statistical
// argument: "since the PEVPM execution samples from PDFs of
// communication times, many iterations are needed to give an accurate
// average time per iteration ... the number of iterations can be chosen
// so that the statistical error in the mean is negligibly small."
// The relative spread of the per-iteration makespan must fall roughly
// like 1/sqrt(iterations).
func TestMonteCarloErrorShrinksWithIterations(t *testing.T) {
	db := LogGPStyleDB(200e-6, 5e6, 16384)
	relStd := func(iters int) float64 {
		prog := NewProgram()
		prog.Params["iters"] = float64(iters)
		prog.Body = Block{&Loop{Count: Var("iters"), Body: Block{
			&Runon{
				Conds: []Expr{MustExpr("procnum == 0"), MustExpr("procnum == 1")},
				Bodies: []Block{
					{&Msg{Kind: MsgSend, Size: Num(1024), From: Num(0), To: Num(1)}},
					{&Msg{Kind: MsgRecv, Size: Num(1024), From: Num(0), To: Num(1)}},
				},
			},
			&Serial{Time: Num(100e-6)},
		}}}
		sum, err := EvaluateN(prog, Options{Procs: 2, DB: db, Seed: 77}, 30)
		if err != nil {
			t.Fatal(err)
		}
		return sum.Std() / sum.Mean
	}
	small := relStd(20)
	large := relStd(320) // 16× the iterations → expect ~4× less spread
	t.Logf("relative std: 20 iters %.4f, 320 iters %.4f (ratio %.1f)", small, large, small/large)
	if large >= small {
		t.Fatalf("spread did not shrink: %.4f -> %.4f", small, large)
	}
	if small/large < 2 {
		t.Errorf("spread ratio %.1f; expected roughly sqrt(16)=4", small/large)
	}
}
