// Package pevpm implements the paper's Performance Evaluating Virtual
// Parallel Machine: a model of a message-passing program built from the
// paper's performance directives (Loop, Runon, Message, Serial), executed
// by a virtual parallel machine that advances every model process in
// sweep phases, keeps in-flight messages on a contention scoreboard, and
// determines their arrival times in match phases by Monte-Carlo sampling
// from probability distributions of communication times — by preference
// the distributions MPIBench measured.
package pevpm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Env supplies values for the free variables of an expression. The
// evaluator always binds procnum and numprocs; programs can add their own
// parameters (the paper keeps these symbolic so a model can be
// re-evaluated under different conditions without rebuilding it).
type Env map[string]float64

// Expr is a symbolic arithmetic/boolean expression over an Env.
// Booleans are represented as 0 and 1.
type Expr interface {
	Eval(env Env) (float64, error)
	String() string
}

type numLit float64

func (n numLit) Eval(Env) (float64, error) { return float64(n), nil }
func (n numLit) String() string            { return strconv.FormatFloat(float64(n), 'g', -1, 64) }

type varRef string

func (v varRef) Eval(env Env) (float64, error) {
	if val, ok := env[string(v)]; ok {
		return val, nil
	}
	return 0, fmt.Errorf("pevpm: undefined variable %q", string(v))
}
func (v varRef) String() string { return string(v) }

type binary struct {
	op   string
	l, r Expr
}

func (b binary) Eval(env Env) (float64, error) {
	l, err := b.l.Eval(env)
	if err != nil {
		return 0, err
	}
	// Short-circuit boolean operators.
	switch b.op {
	case "&&":
		if l == 0 {
			return 0, nil
		}
		r, err := b.r.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	case "||":
		if l != 0 {
			return 1, nil
		}
		r, err := b.r.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	}
	r, err := b.r.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("pevpm: division by zero in %s", b.String())
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("pevpm: modulo by zero in %s", b.String())
		}
		return math.Mod(l, r), nil
	case "==":
		return boolVal(l == r), nil
	case "!=":
		return boolVal(l != r), nil
	case "<":
		return boolVal(l < r), nil
	case "<=":
		return boolVal(l <= r), nil
	case ">":
		return boolVal(l > r), nil
	case ">=":
		return boolVal(l >= r), nil
	}
	return 0, fmt.Errorf("pevpm: unknown operator %q", b.op)
}

func (b binary) String() string {
	return "(" + b.l.String() + " " + b.op + " " + b.r.String() + ")"
}

type unary struct {
	op string
	x  Expr
}

func (u unary) Eval(env Env) (float64, error) {
	v, err := u.x.Eval(env)
	if err != nil {
		return 0, err
	}
	switch u.op {
	case "-":
		return -v, nil
	case "!":
		return boolVal(v == 0), nil
	}
	return 0, fmt.Errorf("pevpm: unknown unary operator %q", u.op)
}

func (u unary) String() string { return u.op + u.x.String() }

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sizeofTable implements the sizeof(...) builtin the paper's Figure 5
// annotations use (size = xsize*sizeof(float)).
var sizeofTable = map[string]float64{
	"char": 1, "short": 2, "int": 4, "long": 8,
	"float": 4, "double": 8,
}

// ParseExpr parses an arithmetic/boolean expression in the syntax the
// paper's directives use: numbers, identifiers, sizeof(type), the
// operators + - * / %, comparisons, ! && ||, and parentheses.
func ParseExpr(src string) (Expr, error) {
	p := &exprParser{src: src}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("pevpm: unexpected %q after expression in %q", p.lit, src)
	}
	return e, nil
}

// MustExpr is ParseExpr for literals in tests and builders; it panics on
// a syntax error.
func MustExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Vars returns the free variables of e in first-use order, without
// duplicates. Static analysis uses it to find references to parameters
// the model never binds.
func Vars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	walkVars(e, func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	})
	return out
}

func walkVars(e Expr, emit func(string)) {
	switch x := e.(type) {
	case varRef:
		emit(string(x))
	case binary:
		walkVars(x.l, emit)
		walkVars(x.r, emit)
	case unary:
		walkVars(x.x, emit)
	}
}

// Num returns a numeric literal expression.
func Num(v float64) Expr { return numLit(v) }

// Var returns a variable reference expression.
func Var(name string) Expr { return varRef(name) }

type token int

const (
	tokEOF token = iota
	tokNum
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokBad
)

type exprParser struct {
	src string
	pos int
	tok token
	lit string
}

func (p *exprParser) next() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
	if p.pos >= len(p.src) {
		p.tok, p.lit = tokEOF, ""
		return
	}
	c := p.src[p.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				p.pos++
				continue
			}
			// Exponent sign.
			if (c == '+' || c == '-') && p.pos > start &&
				(p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') {
				p.pos++
				continue
			}
			break
		}
		p.tok, p.lit = tokNum, p.src[start:p.pos]
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
			p.pos++
		}
		p.tok, p.lit = tokIdent, p.src[start:p.pos]
	case c == '(':
		p.pos++
		p.tok, p.lit = tokLParen, "("
	case c == ')':
		p.pos++
		p.tok, p.lit = tokRParen, ")"
	default:
		// Multi-character operators first.
		for _, op := range []string{"==", "!=", "<=", ">=", "&&", "||"} {
			if strings.HasPrefix(p.src[p.pos:], op) {
				p.pos += 2
				p.tok, p.lit = tokOp, op
				return
			}
		}
		if strings.ContainsRune("+-*/%<>!", rune(c)) {
			p.pos++
			p.tok, p.lit = tokOp, string(c)
			return
		}
		p.tok, p.lit = tokBad, string(c)
		p.pos = len(p.src) // force error upstream
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isIdentPart(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func (p *exprParser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && p.lit == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{"||", l, r}
	}
	return l, nil
}

func (p *exprParser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && p.lit == "&&" {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = binary{"&&", l, r}
	}
	return l, nil
}

func (p *exprParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp {
		switch p.lit {
		case "==", "!=", "<", "<=", ">", ">=":
			op := p.lit
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = binary{op, l, r}
			continue
		}
		break
	}
	return l, nil
}

func (p *exprParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && (p.lit == "+" || p.lit == "-") {
		op := p.lit
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = binary{op, l, r}
	}
	return l, nil
}

func (p *exprParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && (p.lit == "*" || p.lit == "/" || p.lit == "%") {
		op := p.lit
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binary{op, l, r}
	}
	return l, nil
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.tok == tokOp && (p.lit == "-" || p.lit == "!") {
		op := p.lit
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{op, x}, nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (Expr, error) {
	switch p.tok {
	case tokNum:
		v, err := strconv.ParseFloat(p.lit, 64)
		if err != nil {
			return nil, fmt.Errorf("pevpm: bad number %q: %v", p.lit, err)
		}
		p.next()
		return numLit(v), nil
	case tokIdent:
		name := p.lit
		p.next()
		if name == "sizeof" {
			if p.tok != tokLParen {
				return nil, fmt.Errorf("pevpm: sizeof needs a parenthesised type")
			}
			p.next()
			if p.tok != tokIdent {
				return nil, fmt.Errorf("pevpm: sizeof of non-type %q", p.lit)
			}
			size, ok := sizeofTable[p.lit]
			if !ok {
				return nil, fmt.Errorf("pevpm: unknown type %q in sizeof", p.lit)
			}
			p.next()
			if p.tok != tokRParen {
				return nil, fmt.Errorf("pevpm: missing ) after sizeof")
			}
			p.next()
			return numLit(size), nil
		}
		return varRef(name), nil
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("pevpm: missing closing parenthesis")
		}
		p.next()
		return e, nil
	}
	return nil, fmt.Errorf("pevpm: unexpected token %q", p.lit)
}
