package pevpm

import (
	"fmt"

	"repro/internal/stats"
)

// FittedDB is the paper's §2 alternative to raw histograms: "It is also
// possible to use parametrised functions to model the PDFs, based on
// fits to the histograms using standard functions." Each grid point's
// histogram is replaced by its best-fitting parametric distribution
// (shifted lognormal / shifted exponential / Weibull, chosen by KS
// distance); sampling blends the analytic quantile behaviour through
// the same bilinear interpolation as EmpiricalDB by sampling the
// nearest-by-weight grid point.
//
// A fitted database is far smaller than the histograms it came from and
// smooths bin-granularity noise, at the cost of losing multi-modal
// structure (e.g. detached retransmission-timeout spikes). The
// FitReport says how well each point fit, so callers can keep the
// empirical histogram where the fit is poor.
type FittedDB struct {
	base *EmpiricalDB

	grid  []fittedEntry
	intra []fittedEntry

	report []FitPoint
}

type fittedEntry struct {
	procs int
	sizes []int
	dists []stats.Dist
}

// FitPoint records the quality of one grid point's fit.
type FitPoint struct {
	Placement string
	Size      int
	Family    string
	KS        float64
}

// maxAcceptableKS is the goodness-of-fit bound beyond which FittedDB
// keeps the empirical histogram instead of the parametric fit (a KS
// distance of 0.3 means 30% of probability mass is misplaced — typical
// of a unimodal family forced onto a distribution with an RTO spike).
const maxAcceptableKS = 0.30

// NewFittedDBFrom fits every grid point of an existing empirical
// database. Points whose best fit exceeds the KS bound fall back to
// sampling the underlying histogram.
func NewFittedDBFrom(base *EmpiricalDB) (*FittedDB, error) {
	if base == nil {
		return nil, fmt.Errorf("pevpm: nil base database")
	}
	db := &FittedDB{base: base}
	var err error
	if db.grid, err = db.fitGrid(base.grid, "inter"); err != nil {
		return nil, err
	}
	if db.intra, err = db.fitGrid(base.intra, "intra"); err != nil {
		return nil, err
	}
	return db, nil
}

// histDist adapts a histogram to the Dist interface so unfittable points
// can stay empirical inside a fitted grid.
type histDist struct{ h *stats.Histogram }

func (d histDist) Sample(r stats.Rand) float64 { return d.h.Sample(r) }
func (d histDist) Mean() float64               { return d.h.Mean() }
func (d histDist) MinBound() float64           { return d.h.Min() }
func (d histDist) CDF(x float64) float64       { return d.h.CDF(x) }

func (db *FittedDB) fitGrid(grid []dbEntry, kind string) ([]fittedEntry, error) {
	var out []fittedEntry
	for _, e := range grid {
		fe := fittedEntry{procs: e.procs, sizes: e.sizes}
		for i, h := range e.hists {
			fits := stats.FitBest(h)
			point := FitPoint{
				Placement: fmt.Sprintf("%s-%dprocs", kind, e.procs),
				Size:      e.sizes[i],
			}
			if len(fits) > 0 && fits[0].KS <= maxAcceptableKS {
				fe.dists = append(fe.dists, fits[0].Dist)
				point.Family, point.KS = fits[0].Name, fits[0].KS
			} else {
				fe.dists = append(fe.dists, histDist{h})
				point.Family = "empirical-fallback"
				if len(fits) > 0 {
					point.KS = fits[0].KS
				}
			}
			db.report = append(db.report, point)
		}
		out = append(out, fe)
	}
	return out, nil
}

// Report lists every grid point's chosen family and fit quality.
func (db *FittedDB) Report() []FitPoint {
	out := make([]FitPoint, len(db.report))
	copy(out, db.report)
	return out
}

// bracketFitted mirrors bracketDB for fitted grids: bracket over the
// procs column without a throwaway slice per lookup.
func bracketFitted(grid []fittedEntry, value int) (lo, hi int, w float64) {
	if value <= grid[0].procs {
		return 0, 0, 0
	}
	n := len(grid)
	if value >= grid[n-1].procs {
		return n - 1, n - 1, 0
	}
	hi = 1
	for grid[hi].procs < value {
		hi++
	}
	if grid[hi].procs == value {
		return hi, hi, 0
	}
	lo = hi - 1
	w = float64(value-grid[lo].procs) / float64(grid[hi].procs-grid[lo].procs)
	return lo, hi, w
}

// atFitted picks the four bracketing grid points and blends f over them.
func atFitted(grid []fittedEntry, size, contention int, f func(d stats.Dist) float64) float64 {
	pLo, pHi, pw := bracketFitted(grid, contention)
	blendEntry := func(e fittedEntry) float64 {
		sLo, sHi, sw := bracket(e.sizes, size)
		lo := f(e.dists[sLo])
		if sLo == sHi {
			return lo
		}
		return lo*(1-sw) + f(e.dists[sHi])*sw
	}
	lo := blendEntry(grid[pLo])
	if pLo == pHi {
		return lo
	}
	return lo*(1-pw) + blendEntry(grid[pHi])*pw
}

func (db *FittedDB) intraFitted() []fittedEntry {
	if len(db.intra) > 0 {
		return db.intra
	}
	return db.grid
}

// Sample draws from the blended fitted distributions. Each of the
// bracketing distributions is sampled with an independent draw and the
// results blended; for the smooth unimodal families this preserves the
// location-scale behaviour the bilinear blend intends.
func (db *FittedDB) Sample(r stats.Rand, size, contention int) float64 {
	return atFitted(db.grid, size, contention, func(d stats.Dist) float64 { return d.Sample(r) })
}

// Mean blends the analytic means.
func (db *FittedDB) Mean(size, contention int) float64 {
	return atFitted(db.grid, size, contention, stats.Dist.Mean)
}

// Min blends the analytic support bounds.
func (db *FittedDB) Min(size, contention int) float64 {
	return atFitted(db.grid, size, contention, stats.Dist.MinBound)
}

// SampleIntra draws from the fitted intra-node distributions.
func (db *FittedDB) SampleIntra(r stats.Rand, size, contention int) float64 {
	return atFitted(db.intraFitted(), size, contention, func(d stats.Dist) float64 { return d.Sample(r) })
}

// MeanIntra blends the fitted intra-node means.
func (db *FittedDB) MeanIntra(size, contention int) float64 {
	return atFitted(db.intraFitted(), size, contention, stats.Dist.Mean)
}

// MinIntra blends the fitted intra-node bounds.
func (db *FittedDB) MinIntra(size, contention int) float64 {
	return atFitted(db.intraFitted(), size, contention, stats.Dist.MinBound)
}

// SendBusy delegates to the machine constants of the base database.
func (db *FittedDB) SendBusy(size int) float64 { return db.base.SendBusy(size) }

// RecvBusy delegates to the machine constants of the base database.
func (db *FittedDB) RecvBusy(size int) float64 { return db.base.RecvBusy(size) }

// EagerLimit delegates to the base database.
func (db *FittedDB) EagerLimit() int { return db.base.EagerLimit() }
