package pevpm

import (
	"math"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	env := Env{"procnum": 5, "numprocs": 8, "xsize": 256}
	cases := map[string]float64{
		"1 + 2*3":             7,
		"(1+2)*3":             9,
		"10/4":                2.5,
		"procnum%2":           1,
		"xsize*sizeof(float)": 1024,
		"3.24/numprocs":       0.405,
		"-procnum + 1":        -4,
		"2e3 + 1":             2001,
		"procnum - numprocs":  -3,
		"1.5e-6 * 2":          3e-6,
		"sizeof(double)*2":    16,
		"procnum*procnum":     25,
	}
	for src, want := range cases {
		if got := evalOK(t, src, env); math.Abs(got-want) > 1e-12 {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestExprComparisons(t *testing.T) {
	env := Env{"procnum": 5, "numprocs": 8}
	cases := map[string]float64{
		"procnum%2 == 0":                0,
		"procnum%2 != 0":                1,
		"procnum != 0":                  1,
		"procnum != numprocs-1":         1,
		"procnum == numprocs-3":         1,
		"procnum < 5":                   0,
		"procnum <= 5":                  1,
		"procnum > 4 && procnum < 6":    1,
		"procnum == 0 || procnum == 5":  1,
		"!(procnum == 5)":               0,
		"procnum >= 6 || numprocs >= 8": 1,
		"procnum == 5 && numprocs == 9": 0,
	}
	for src, want := range cases {
		if got := evalOK(t, src, env); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestExprShortCircuit(t *testing.T) {
	// Right side divides by zero, but short-circuit must avoid it.
	env := Env{"a": 0.0}
	if got := evalOK(t, "a != 0 && 1/a > 0", env); got != 0 {
		t.Errorf("short-circuit && = %v", got)
	}
	if got := evalOK(t, "a == 0 || 1/a > 0", env); got != 1 {
		t.Errorf("short-circuit || = %v", got)
	}
}

func TestExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "1 @ 2", "sizeof", "sizeof(bogus)", "sizeof 4",
		"1 2", "foo(", "&& 1",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
	e := MustExpr("undefined_var + 1")
	if _, err := e.Eval(Env{}); err == nil {
		t.Error("undefined variable should fail at eval")
	}
	if _, err := MustExpr("1/zero").Eval(Env{"zero": 0}); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := MustExpr("1%zero").Eval(Env{"zero": 0}); err == nil {
		t.Error("modulo by zero should fail")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	f := func(a, b int8, pick uint8) bool {
		env := Env{"x": float64(a), "y": float64(b)}
		var src string
		switch pick % 5 {
		case 0:
			src = "x + y*2"
		case 1:
			src = "(x - y) % 7"
		case 2:
			src = "x == y || x > 0"
		case 3:
			src = "-x + y"
		default:
			src = "x*y - x/2"
		}
		orig, err := ParseExpr(src)
		if err != nil {
			return false
		}
		back, err := ParseExpr(orig.String())
		if err != nil {
			return false
		}
		v1, err1 := orig.Eval(env)
		v2, err2 := back.Eval(env)
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		return v1 == v2 || (math.IsNaN(v1) && math.IsNaN(v2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMustExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExpr should panic on bad input")
		}
	}()
	MustExpr("((")
}

func TestNumVarHelpers(t *testing.T) {
	e := binary{"+", Num(2), Var("p")}
	v, err := e.Eval(Env{"p": 3})
	if err != nil || v != 5 {
		t.Errorf("builder expr = %v, %v", v, err)
	}
}
