package pevpm

import (
	"fmt"
	"sort"

	"repro/internal/mpibench"
	"repro/internal/stats"
)

// PatternKey identifies one measured group-to-group pattern cell: the
// pattern name, its (p, g, k) shape, the window depth and direction.
// It is the lookup key of a PatternDB, mirroring how EmpiricalDB keys
// on (op, placement).
type PatternKey struct {
	Pattern   string
	P, G, K   int
	Window    int
	Direction mpibench.Direction
}

// KeyOf extracts the PatternKey a result was measured under.
func KeyOf(r *mpibench.PatternResult) PatternKey {
	return PatternKey{
		Pattern: r.Pattern, P: r.P, G: r.G, K: r.K,
		Window: r.Window, Direction: r.Direction,
	}
}

func (k PatternKey) String() string {
	return fmt.Sprintf("%s:p%dg%dk%d:w%d:%s", k.Pattern, k.P, k.G, k.K, k.Window, k.Direction)
}

// PatternDB is the per-pattern performance database: for every
// measured pattern cell, the distribution of the *round completion
// time* (the per-round slowest participant) per message size. Where
// EmpiricalDB prices individual messages under scoreboard contention,
// PatternDB prices whole structured exchanges — the group-to-group
// contention on inter-leaf and inter-group links is baked into the
// measured distribution, which is what makes Dense makespans across
// fabric boundaries predictable at all.
type PatternDB struct {
	Cluster string

	// entries stay sorted by key string; no map anywhere, so iteration
	// and lookup order are deterministic (the detlint contract).
	entries []patternEntry
}

type patternEntry struct {
	key   PatternKey
	sizes []int
	round []*stats.Histogram // per size, frozen round-completion dists
}

// NewPatternDB builds a database from a pattern benchmark set. Every
// result contributes one keyed entry; histograms are frozen so
// concurrent Monte-Carlo evaluations can share the database.
func NewPatternDB(set *mpibench.PatternSet) (*PatternDB, error) {
	db := &PatternDB{Cluster: set.Cluster}
	for _, r := range set.Results {
		e := patternEntry{key: KeyOf(r)}
		for _, pt := range r.Points {
			if pt.MaxHist == nil || pt.MaxHist.Count() == 0 {
				return nil, fmt.Errorf("pevpm: empty round distribution for %s size %d", r.Key(), pt.Size)
			}
			e.sizes = append(e.sizes, pt.Size)
			e.round = append(e.round, pt.MaxHist)
		}
		if len(e.sizes) == 0 {
			return nil, fmt.Errorf("pevpm: pattern result %s has no sizes", r.Key())
		}
		if !sort.IntsAreSorted(e.sizes) {
			sort.Sort(&patternBySize{&e})
		}
		for _, h := range e.round {
			h.Freeze()
		}
		db.entries = append(db.entries, e)
	}
	if len(db.entries) == 0 {
		return nil, fmt.Errorf("pevpm: pattern set is empty")
	}
	sort.Slice(db.entries, func(i, j int) bool {
		return db.entries[i].key.String() < db.entries[j].key.String()
	})
	return db, nil
}

type patternBySize struct{ e *patternEntry }

func (s *patternBySize) Len() int           { return len(s.e.sizes) }
func (s *patternBySize) Less(i, j int) bool { return s.e.sizes[i] < s.e.sizes[j] }
func (s *patternBySize) Swap(i, j int) {
	s.e.sizes[i], s.e.sizes[j] = s.e.sizes[j], s.e.sizes[i]
	s.e.round[i], s.e.round[j] = s.e.round[j], s.e.round[i]
}

// Keys lists the measured pattern cells in deterministic order.
func (db *PatternDB) Keys() []PatternKey {
	out := make([]PatternKey, len(db.entries))
	for i, e := range db.entries {
		out[i] = e.key
	}
	return out
}

func (db *PatternDB) entry(key PatternKey) (*patternEntry, error) {
	for i := range db.entries {
		if db.entries[i].key == key {
			return &db.entries[i], nil
		}
	}
	return nil, fmt.Errorf("pevpm: pattern %s not in database", key)
}

// SampleRound draws one round-completion time for a pattern at a
// message size, blending the bracketing measured sizes' quantile
// functions with a single shared uniform (the EmpiricalDB scheme).
func (db *PatternDB) SampleRound(r stats.Rand, key PatternKey, size int) (float64, error) {
	e, err := db.entry(key)
	if err != nil {
		return 0, err
	}
	u := r.Float64()
	return blendSize(e, size, func(h *stats.Histogram) float64 { return h.Quantile(u) }), nil
}

// MeanRound blends the measured mean round-completion times.
func (db *PatternDB) MeanRound(key PatternKey, size int) (float64, error) {
	e, err := db.entry(key)
	if err != nil {
		return 0, err
	}
	return blendSize(e, size, (*stats.Histogram).Mean), nil
}

func blendSize(e *patternEntry, size int, f func(h *stats.Histogram) float64) float64 {
	lo, hi, w := bracket(e.sizes, size)
	v := f(e.round[lo])
	if lo == hi {
		return v
	}
	return v*(1-w) + f(e.round[hi])*w
}

// PredictMakespan predicts the makespan of rounds consecutive windowed
// rounds of a pattern at one message size: reps independent Monte-Carlo
// replications each sum rounds draws from the measured round
// distribution, and the Student-t interval over the replication sums is
// the prediction. The caller supplies the RNG (a sim.SubSeed substream)
// so predictions are bit-identical at any worker count.
func (db *PatternDB) PredictMakespan(r stats.Rand, key PatternKey, size, rounds, reps int, level float64) (stats.Interval, error) {
	if rounds <= 0 || reps < 2 {
		return stats.Interval{}, fmt.Errorf("pevpm: predict wants rounds > 0 and reps >= 2, got %d/%d", rounds, reps)
	}
	e, err := db.entry(key)
	if err != nil {
		return stats.Interval{}, err
	}
	var sum stats.Summary
	for rep := 0; rep < reps; rep++ {
		total := 0.0
		for i := 0; i < rounds; i++ {
			u := r.Float64()
			total += blendSize(e, size, func(h *stats.Histogram) float64 { return h.Quantile(u) })
		}
		sum.Add(total)
	}
	return stats.StudentCI(sum, level), nil
}
