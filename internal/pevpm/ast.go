package pevpm

import (
	"fmt"
	"strings"
)

// Pos is a source position of a directive: the file the model was read
// from (empty when parsed from a bare string) and the 1-based line and
// column of the directive's head token.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries any location at all.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return ""
	}
	s := fmt.Sprintf("%d", p.Line)
	if p.Col > 0 {
		s = fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	if p.File != "" {
		return p.File + ":" + s
	}
	return s
}

// Node is one model construct: the paper's performance directives.
type Node interface {
	describe() string
	// Pos returns where the directive appeared in the source, or the
	// zero Pos for programmatically built nodes.
	Pos() Pos
}

// Block is a sequence of directives executed in order.
type Block []Node

// Loop repeats its body Count times (PEVPM "Loop iterations = ...").
type Loop struct {
	Count Expr
	Body  Block
	At    Pos
}

func (l *Loop) describe() string { return "Loop " + l.Count.String() }
func (l *Loop) Pos() Pos         { return l.At }

// Runon guards blocks by process conditions (PEVPM "Runon c1 = ... & c2
// = ..."). Conditions are evaluated in order; the body of the first true
// condition runs — if/else-if semantics, matching the paper's use of c1
// for the even branch and c2 for the odd branch of the Jacobi code.
type Runon struct {
	Conds  []Expr
	Bodies []Block
	At     Pos
}

func (r *Runon) Pos() Pos { return r.At }

func (r *Runon) describe() string {
	parts := make([]string, len(r.Conds))
	for i, c := range r.Conds {
		parts[i] = c.String()
	}
	return "Runon " + strings.Join(parts, " & ")
}

// MsgKind is the operation of a Message directive.
type MsgKind int

// The message kinds the paper's directive language uses.
const (
	MsgSend  MsgKind = iota // MPI_Send: blocking standard send
	MsgRecv                 // MPI_Recv: blocking receive
	MsgIsend                // MPI_Isend: nonblocking send (fire and forget)
)

// ParseMsgKind maps the directive spelling to a MsgKind.
func ParseMsgKind(s string) (MsgKind, error) {
	switch s {
	case "MPI_Send":
		return MsgSend, nil
	case "MPI_Recv":
		return MsgRecv, nil
	case "MPI_Isend":
		return MsgIsend, nil
	}
	return 0, fmt.Errorf("pevpm: unknown message type %q", s)
}

func (k MsgKind) String() string {
	switch k {
	case MsgSend:
		return "MPI_Send"
	case MsgRecv:
		return "MPI_Recv"
	case MsgIsend:
		return "MPI_Isend"
	}
	return fmt.Sprintf("MsgKind(%d)", int(k))
}

// Msg is a Message directive: a transfer of Size bytes From one process
// To another. On a send directive the executing process must be From; on
// a receive it must be To.
type Msg struct {
	Kind MsgKind
	Size Expr
	From Expr
	To   Expr
	At   Pos
}

func (m *Msg) Pos() Pos { return m.At }

func (m *Msg) describe() string {
	return fmt.Sprintf("Message %s size=%s from=%s to=%s",
		m.Kind, m.Size.String(), m.From.String(), m.To.String())
}

// Coll is a Collective directive — an extension beyond the paper's
// directive set (which composes everything from point-to-point
// messages): the whole job synchronises on one collective operation
// whose per-process completion time is sampled from MPIBench's measured
// collective distributions. Root is optional (defaults to 0) and kept
// for documentation; the sampled distributions already mix over ranks.
type Coll struct {
	Op   string // benchmark operation name, e.g. "MPI_Bcast"
	Size Expr
	Root Expr // may be nil
	At   Pos
}

func (c *Coll) Pos() Pos { return c.At }

func (c *Coll) describe() string {
	return fmt.Sprintf("Collective %s size=%s", c.Op, c.Size.String())
}

// Serial is a Serial directive: the executing process computes for Time
// seconds (PEVPM "Serial on perseus time = 3.24/numprocs").
type Serial struct {
	Machine string
	Time    Expr
	At      Pos
}

func (s *Serial) Pos() Pos { return s.At }

func (s *Serial) describe() string {
	if s.Machine == "" {
		return "Serial time=" + s.Time.String()
	}
	return "Serial on " + s.Machine + " time=" + s.Time.String()
}

// Program is a complete PEVPM model: global parameters plus the
// directive tree every process executes (parameterised by procnum).
type Program struct {
	// Params are model constants (grid sizes, iteration counts). The
	// evaluator adds procnum and numprocs per process.
	Params map[string]float64
	Body   Block
	// File is the source file the model was parsed from, recorded in
	// node positions; empty for bare-string or programmatic models.
	File string
}

// NewProgram returns an empty program ready for the builder API.
func NewProgram() *Program {
	return &Program{Params: make(map[string]float64)}
}

// Describe renders one directive in the form error messages and lint
// findings use.
func Describe(n Node) string { return n.describe() }

// Walk calls fn for every node of the block in depth-first pre-order,
// descending into Loop bodies and every Runon branch. If fn returns
// false the node's children are skipped.
func Walk(b Block, fn func(Node) bool) {
	for _, n := range b {
		if n == nil || !fn(n) {
			continue
		}
		switch node := n.(type) {
		case *Loop:
			Walk(node.Body, fn)
		case *Runon:
			for _, body := range node.Bodies {
				Walk(body, fn)
			}
		}
	}
}

// Validate walks the tree and reports structural problems.
func (p *Program) Validate() error {
	if p == nil {
		return fmt.Errorf("pevpm: nil program")
	}
	return validateBlock(p.Body)
}

func validateBlock(b Block) error {
	for _, n := range b {
		switch node := n.(type) {
		case *Loop:
			if node.Count == nil {
				return fmt.Errorf("pevpm: Loop without a count")
			}
			if err := validateBlock(node.Body); err != nil {
				return err
			}
		case *Runon:
			if len(node.Conds) == 0 || len(node.Conds) != len(node.Bodies) {
				return fmt.Errorf("pevpm: Runon with %d conditions and %d bodies",
					len(node.Conds), len(node.Bodies))
			}
			for _, body := range node.Bodies {
				if err := validateBlock(body); err != nil {
					return err
				}
			}
		case *Msg:
			if node.Size == nil || node.From == nil || node.To == nil {
				return fmt.Errorf("pevpm: Message %s missing size/from/to", node.Kind)
			}
		case *Coll:
			if node.Op == "" || node.Size == nil {
				return fmt.Errorf("pevpm: Collective missing type or size")
			}
		case *Serial:
			if node.Time == nil {
				return fmt.Errorf("pevpm: Serial without a time")
			}
		case nil:
			return fmt.Errorf("pevpm: nil directive in block")
		default:
			return fmt.Errorf("pevpm: unknown directive %T", n)
		}
	}
	return nil
}
