package pevpm

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/mpibench"
	"repro/internal/sim"
	"repro/internal/stats"
)

// fakeSet builds a benchmark set with hand-made histograms so
// interpolation can be checked exactly: mean time = procs·size µs.
func fakeSet(t *testing.T) *mpibench.Set {
	t.Helper()
	set := &mpibench.Set{Cluster: "fake"}
	for _, procs := range []int{2, 8} {
		res := &mpibench.Result{
			Cluster: "fake", Op: mpibench.OpIsend,
			Placement: map[int]string{2: "2x1", 8: "8x1"}[procs],
			Procs:     procs, BinWidth: 1e-6,
		}
		for _, size := range []int{100, 1000} {
			h := stats.NewHistogram(1e-7)
			center := float64(procs) * float64(size) * 1e-6
			for i := -50; i <= 50; i++ {
				h.Add(center + float64(i)*1e-9)
			}
			res.Points = append(res.Points, mpibench.Point{Size: size, Hist: h})
		}
		set.Add(res)
	}
	return set
}

func TestEmpiricalDBExactPoints(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Mean(100, 2); math.Abs(got-200e-6) > 1e-9 {
		t.Errorf("Mean(100, 2) = %v, want 200µs", got)
	}
	if got := db.Mean(1000, 8); math.Abs(got-8000e-6) > 1e-9 {
		t.Errorf("Mean(1000, 8) = %v, want 8000µs", got)
	}
}

func TestEmpiricalDBInterpolatesSize(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	// Halfway between size 100 (200µs) and size 1000 (2000µs) at procs 2.
	got := db.Mean(550, 2)
	if math.Abs(got-1100e-6) > 1e-8 {
		t.Errorf("Mean(550, 2) = %v, want 1100µs", got)
	}
}

func TestEmpiricalDBInterpolatesContention(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	// Contention 5 sits halfway between procs 2 (200µs) and 8 (800µs).
	got := db.Mean(100, 5)
	if math.Abs(got-500e-6) > 1e-8 {
		t.Errorf("Mean(100, 5) = %v, want 500µs", got)
	}
}

func TestEmpiricalDBClampsOutside(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Mean(100, 1); got != db.Mean(100, 2) {
		t.Error("below-range contention should clamp to the smallest config")
	}
	if got := db.Mean(100, 100); got != db.Mean(100, 8) {
		t.Error("above-range contention should clamp to the largest config")
	}
	if got := db.Mean(10, 2); got != db.Mean(100, 2) {
		t.Error("below-range size should clamp")
	}
	if got := db.Mean(5000, 2); got != db.Mean(1000, 2) {
		t.Error("above-range size should clamp")
	}
}

func TestEmpiricalDBSampleWithinSupport(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(1)
	lo := db.Min(550, 5)
	for i := 0; i < 1000; i++ {
		v := db.Sample(r, 550, 5)
		if v < lo-1e-6 || v > db.Mean(550, 5)*2 {
			t.Fatalf("sample %v far outside blended support", v)
		}
	}
	// The sample mean should approximate the blended mean.
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		sum += db.Sample(r, 550, 5)
	}
	if mean := sum / float64(n); math.Abs(mean-db.Mean(550, 5))/db.Mean(550, 5) > 0.05 {
		t.Errorf("sample mean %v vs blended mean %v", mean, db.Mean(550, 5))
	}
}

func TestEmpiricalDBErrors(t *testing.T) {
	if _, err := NewEmpiricalDB(&mpibench.Set{}, mpibench.OpIsend, cluster.Perseus()); err == nil {
		t.Error("empty set should fail")
	}
	set := &mpibench.Set{}
	set.Add(&mpibench.Result{Op: mpibench.OpIsend, Placement: "2x1", Procs: 2,
		Points: []mpibench.Point{{Size: 8, Hist: stats.NewHistogram(1e-6)}}})
	if _, err := NewEmpiricalDB(set, mpibench.OpIsend, cluster.Perseus()); err == nil {
		t.Error("empty histogram should fail")
	}
}

func TestCollapseModes(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(2)
	mean := Collapse(db, ModeMean)
	min := Collapse(db, ModeMin)
	for i := 0; i < 10; i++ {
		if mean.Sample(r, 100, 2) != db.Mean(100, 2) {
			t.Fatal("ModeMean sample != mean")
		}
		if min.Sample(r, 100, 2) != db.Min(100, 2) {
			t.Fatal("ModeMin sample != min")
		}
	}
	if min.Sample(r, 100, 2) >= mean.Sample(r, 100, 2) {
		t.Error("min mode should be below mean mode")
	}
}

func TestFixContention(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	fixed := FixContention(db, 2)
	r := sim.NewRNG(3)
	// Whatever scoreboard contention is passed, the 2×1 data is used.
	if got := fixed.Mean(100, 64); got != db.Mean(100, 2) {
		t.Errorf("fixed Mean = %v", got)
	}
	if got := fixed.Min(100, 64); got != db.Min(100, 2) {
		t.Errorf("fixed Min = %v", got)
	}
	s := fixed.Sample(r, 100, 64)
	if s < db.Min(100, 2)-1e-9 || s > db.Mean(100, 2)*1.5 {
		t.Errorf("fixed Sample = %v outside 2x1 support", s)
	}
	// Composition: the paper's "avg 2x1 ping-pong" predictor.
	pingpong := Collapse(FixContention(db, 2), ModeMean)
	if pingpong.Sample(r, 100, 64) != db.Mean(100, 2) {
		t.Error("Collapse(FixContention) composition broken")
	}
}

func TestLogGPStyleDB(t *testing.T) {
	db := LogGPStyleDB(100e-6, 10e6, 16384)
	r := sim.NewRNG(4)
	base := 100e-6 + 1000.0/10e6
	if db.Min(1000, 2) != base {
		t.Errorf("Min = %v, want %v", db.Min(1000, 2), base)
	}
	for i := 0; i < 100; i++ {
		if db.Sample(r, 1000, 2) <= base {
			t.Fatal("sample at or below the latency+bandwidth bound")
		}
	}
	if db.Mean(1000, 64) <= db.Mean(1000, 2) {
		t.Error("contention should raise the analytic mean")
	}
	if db.EagerLimit() != 16384 {
		t.Error("eager limit lost")
	}
	if db.SendBusy(1) <= 0 || db.RecvBusy(1) <= 0 {
		t.Error("busy costs must be positive")
	}
}

// Property: interpolated means are monotone between grid points when the
// underlying grid is monotone.
func TestEmpiricalDBMonotoneInterpolation(t *testing.T) {
	db, err := NewEmpiricalDB(fakeSet(t), mpibench.OpIsend, cluster.Perseus())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for size := 100; size <= 1000; size += 50 {
		m := db.Mean(size, 4)
		if m < prev {
			t.Fatalf("mean not monotone at size %d: %v < %v", size, m, prev)
		}
		prev = m
	}
	prev = 0
	for k := 2; k <= 8; k++ {
		m := db.Mean(500, k)
		if m < prev {
			t.Fatalf("mean not monotone at contention %d", k)
		}
		prev = m
	}
}
