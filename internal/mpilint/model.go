package mpilint

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/pevpm"
)

// Options configures one static analysis of a PEVPM model.
type Options struct {
	// Procs is the world size the model is analyzed at. Rank-dependent
	// expressions are enumerated for every procnum in 0..Procs-1.
	Procs int

	// EagerLimit is the eager/rendezvous protocol switch in bytes:
	// blocking sends strictly above it block until the receiver matches
	// (MPICH 1.2.0 over TCP switches at 16 KB, the paper's setup).
	// Zero selects the default.
	EagerLimit int

	// MaxUnroll caps how many iterations of each Loop the deadlock
	// search unrolls. Two iterations expose cross-iteration ordering
	// hazards; message-count matching always uses the full counts.
	// Zero selects the default.
	MaxUnroll int
}

// DefaultEagerLimit is MPICH 1.2.0's eager/rendezvous switch.
const DefaultEagerLimit = 16 * 1024

const defaultMaxUnroll = 2

// maxOpsPerRank bounds the unrolled operation sequence so a pathological
// model cannot make the deadlock search explode.
const maxOpsPerRank = 1 << 16

// Analyze statically checks a parsed PEVPM model for communication
// bugs: it enumerates every rank's path through the Runon branches,
// evaluates each Message's from/to/size per rank, balances send and
// receive counts per rank pair, and searches the blocking-operation
// graph for deadlock cycles. Findings are sorted by position and
// severity.
func Analyze(prog *pevpm.Program, opts Options) ([]Finding, error) {
	if prog == nil {
		return nil, fmt.Errorf("mpilint: nil program")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if opts.Procs <= 0 {
		return nil, fmt.Errorf("mpilint: Procs = %d", opts.Procs)
	}
	if opts.EagerLimit == 0 {
		opts.EagerLimit = DefaultEagerLimit
	}
	if opts.MaxUnroll <= 0 {
		opts.MaxUnroll = defaultMaxUnroll
	}
	a := &analyzer{
		prog:        prog,
		opts:        opts,
		dedup:       make(map[dedupKey]*pending),
		runonSeen:   make(map[*pevpm.Runon]bool),
		branchTaken: make(map[*pevpm.Runon]map[int]bool),
		pairs:       make(map[pair]*pairCount),
	}
	a.run()
	sortFindings(a.findings)
	return a.findings, nil
}

type pair struct{ from, to int }

// pairCount balances messages on one directed rank pair. Counts are
// float64 because they are weighted by (possibly large) loop counts.
type pairCount struct {
	sends, recvs       float64
	sendNode, recvNode *pevpm.Msg
}

// op is one communication operation in a rank's unrolled sequence, the
// unit of the deadlock search.
type op struct {
	send     bool
	blocking bool // rendezvous send: parks until the receive matches
	peer     int
	node     *pevpm.Msg
}

type dedupKey struct {
	rule string
	node pevpm.Node
}

// pending aggregates one (rule, directive) diagnosis over all ranks
// that trigger it, so a bad directive yields one finding, not Procs.
type pending struct {
	sev   Severity
	rule  string
	node  pevpm.Node
	msg   string
	ranks []int
}

type analyzer struct {
	prog *pevpm.Program
	opts Options

	findings []Finding
	dedup    map[dedupKey]*pending
	dedupSeq []dedupKey // insertion order, for deterministic finalization

	runonSeen   map[*pevpm.Runon]bool
	branchTaken map[*pevpm.Runon]map[int]bool
	pairs       map[pair]*pairCount

	// mismatched marks pairs already reported by count matching, so the
	// deadlock search does not re-report the same root cause.
	mismatched map[pair]bool
}

func (a *analyzer) run() {
	if !a.checkParams() {
		// Unbound parameters poison every evaluation below; stop at the
		// model's equivalent of a compile error.
		a.finalizeDedup()
		return
	}
	seqs := make([][]op, a.opts.Procs)
	colls := make([][]string, a.opts.Procs)
	for r := 0; r < a.opts.Procs; r++ {
		env := a.rankEnv(r)
		a.walkCount(r, env, a.prog.Body, 1)
		seqs[r], colls[r] = a.walkSeq(r, env)
	}
	a.checkUnreachable()
	a.checkPairs()
	a.checkCollectives(colls)
	a.simulate(seqs)
	a.finalizeDedup()
	for i := range a.findings {
		a.findings[i].Procs = a.opts.Procs
	}
}

func (a *analyzer) rankEnv(rank int) pevpm.Env {
	env := pevpm.Env{
		"procnum":  float64(rank),
		"numprocs": float64(a.opts.Procs),
	}
	for k, v := range a.prog.Params {
		env[k] = v
	}
	return env
}

// report records a per-directive diagnosis, deduplicated per (rule,
// node) across ranks; the first triggering rank's message is kept.
func (a *analyzer) report(sev Severity, rule string, rank int, node pevpm.Node, format string, args ...any) {
	key := dedupKey{rule, node}
	if p, ok := a.dedup[key]; ok {
		p.ranks = append(p.ranks, rank)
		return
	}
	a.dedup[key] = &pending{
		sev: sev, rule: rule, node: node,
		msg: fmt.Sprintf(format, args...), ranks: []int{rank},
	}
	a.dedupSeq = append(a.dedupSeq, key)
}

// reportGlobal records a job-wide finding (rank -1) directly.
func (a *analyzer) reportGlobal(sev Severity, rule string, node pevpm.Node, format string, args ...any) {
	pos := ""
	if node != nil {
		pos = node.Pos().String()
	}
	a.findings = append(a.findings, Finding{
		Severity: sev, Rule: rule, Pos: pos, Rank: -1,
		Message: fmt.Sprintf(format, args...),
	})
}

func (a *analyzer) finalizeDedup() {
	for _, key := range a.dedupSeq {
		p := a.dedup[key]
		sort.Ints(p.ranks)
		msg := p.msg
		if len(p.ranks) > 1 {
			msg += " (" + ranksLabel(p.ranks) + ")"
		}
		a.findings = append(a.findings, Finding{
			Severity: p.sev, Rule: p.rule, Pos: p.node.Pos().String(),
			Rank: p.ranks[0], Message: msg,
		})
	}
}

// checkParams verifies every expression's free variables are bound by a
// Param or the builtin procnum/numprocs. It returns false when unbound
// parameters were found.
func (a *analyzer) checkParams() bool {
	bound := map[string]bool{"procnum": true, "numprocs": true}
	for k := range a.prog.Params {
		bound[k] = true
	}
	seen := map[string]bool{}
	ok := true
	pevpm.Walk(a.prog.Body, func(n pevpm.Node) bool {
		for _, e := range nodeExprs(n) {
			for _, v := range pevpm.Vars(e) {
				if bound[v] || seen[v] {
					continue
				}
				seen[v] = true
				ok = false
				a.reportGlobal(SeverityError, RuleUnboundParam, n,
					"%q is not a Param and not procnum/numprocs", v)
			}
		}
		return true
	})
	return ok
}

// nodeExprs lists every expression a directive evaluates.
func nodeExprs(n pevpm.Node) []pevpm.Expr {
	switch node := n.(type) {
	case *pevpm.Loop:
		return []pevpm.Expr{node.Count}
	case *pevpm.Runon:
		return node.Conds
	case *pevpm.Msg:
		return []pevpm.Expr{node.Size, node.From, node.To}
	case *pevpm.Coll:
		if node.Root != nil {
			return []pevpm.Expr{node.Size, node.Root}
		}
		return []pevpm.Expr{node.Size}
	case *pevpm.Serial:
		return []pevpm.Expr{node.Time}
	}
	return nil
}

// walkCount is the counting walk: it follows rank's path through the
// model evaluating every directive once per syntactic occurrence, with
// weight the product of enclosing Loop counts — full loop counts, so the
// send/receive balance is exact even though the deadlock walk truncates.
func (a *analyzer) walkCount(rank int, env pevpm.Env, b pevpm.Block, weight float64) {
	for _, n := range b {
		switch node := n.(type) {
		case *pevpm.Serial:
			t, err := node.Time.Eval(env)
			if err != nil {
				a.report(SeverityError, RuleEvalError, rank, node, "%v", err)
			} else if t < 0 {
				a.report(SeverityError, RuleBadTime, rank, node,
					"Serial time %g is negative", t)
			}

		case *pevpm.Loop:
			count, ok := a.loopCount(rank, env, node)
			if !ok || count == 0 {
				continue
			}
			a.walkCount(rank, env, node.Body, weight*count)

		case *pevpm.Runon:
			a.runonSeen[node] = true
			for i, cond := range node.Conds {
				v, err := cond.Eval(env)
				if err != nil {
					a.report(SeverityError, RuleEvalError, rank, node, "%v", err)
					break
				}
				if v != 0 {
					taken := a.branchTaken[node]
					if taken == nil {
						taken = make(map[int]bool)
						a.branchTaken[node] = taken
					}
					taken[i] = true
					a.walkCount(rank, env, node.Bodies[i], weight)
					break
				}
			}

		case *pevpm.Msg:
			a.checkMsg(rank, env, node, weight)

		case *pevpm.Coll:
			size, err := node.Size.Eval(env)
			if err != nil {
				a.report(SeverityError, RuleEvalError, rank, node, "%v", err)
			} else if size < 0 {
				a.report(SeverityError, RuleBadSize, rank, node,
					"Collective size %g is negative", size)
			}
		}
	}
}

// loopCount evaluates and validates a Loop's iteration count.
func (a *analyzer) loopCount(rank int, env pevpm.Env, node *pevpm.Loop) (float64, bool) {
	cf, err := node.Count.Eval(env)
	if err != nil {
		a.report(SeverityError, RuleEvalError, rank, node, "%v", err)
		return 0, false
	}
	if cf < 0 {
		a.report(SeverityError, RuleBadLoop, rank, node,
			"Loop count %g is negative", cf)
		return 0, false
	}
	if cf != math.Floor(cf) {
		a.report(SeverityWarning, RuleBadLoop, rank, node,
			"Loop count %g is not an integer; it truncates to %g", cf, math.Floor(cf))
	}
	return math.Floor(cf), true
}

// checkMsg validates one Message directive as executed by rank and, when
// structurally sound, adds it to the pair balance.
func (a *analyzer) checkMsg(rank int, env pevpm.Env, node *pevpm.Msg, weight float64) {
	sizeF, err := node.Size.Eval(env)
	if err != nil {
		a.report(SeverityError, RuleEvalError, rank, node, "%v", err)
		return
	}
	fromF, err := node.From.Eval(env)
	if err != nil {
		a.report(SeverityError, RuleEvalError, rank, node, "%v", err)
		return
	}
	toF, err := node.To.Eval(env)
	if err != nil {
		a.report(SeverityError, RuleEvalError, rank, node, "%v", err)
		return
	}
	size, from, to := int(sizeF), int(fromF), int(toF)

	switch {
	case size < 0:
		a.report(SeverityError, RuleBadSize, rank, node,
			"message size %d is negative", size)
		return
	case size == 0:
		a.report(SeverityWarning, RuleBadSize, rank, node,
			"message size is zero")
	}

	if from < 0 || from >= a.opts.Procs {
		a.report(SeverityError, RuleRankBounds, rank, node,
			"from = %d is outside [0,%d)", from, a.opts.Procs)
		return
	}
	if to < 0 || to >= a.opts.Procs {
		a.report(SeverityError, RuleRankBounds, rank, node,
			"to = %d is outside [0,%d)", to, a.opts.Procs)
		return
	}

	isSend := node.Kind == pevpm.MsgSend || node.Kind == pevpm.MsgIsend
	if isSend && from != rank {
		a.report(SeverityError, RuleWrongRole, rank, node,
			"send executed by rank %d but from = %d", rank, from)
		return
	}
	if !isSend && to != rank {
		a.report(SeverityError, RuleWrongRole, rank, node,
			"receive executed by rank %d but to = %d", rank, to)
		return
	}
	if from == to {
		a.report(SeverityWarning, RuleSelfSend, rank, node,
			"rank %d sends to itself", from)
	}

	pc := a.pairs[pair{from, to}]
	if pc == nil {
		pc = &pairCount{}
		a.pairs[pair{from, to}] = pc
	}
	if isSend {
		pc.sends += weight
		if pc.sendNode == nil {
			pc.sendNode = node
		}
	} else {
		pc.recvs += weight
		if pc.recvNode == nil {
			pc.recvNode = node
		}
	}
}

// walkSeq is the ordering walk: it unrolls rank's path into the ordered
// operation sequence the deadlock search runs, with Loops truncated to
// MaxUnroll iterations, plus the ordered list of collectives entered.
func (a *analyzer) walkSeq(rank int, env pevpm.Env) ([]op, []string) {
	var seq []op
	var colls []string
	var walk func(b pevpm.Block)
	walk = func(b pevpm.Block) {
		for _, n := range b {
			if len(seq) >= maxOpsPerRank {
				return
			}
			switch node := n.(type) {
			case *pevpm.Loop:
				cf, err := node.Count.Eval(env)
				if err != nil || cf <= 0 {
					continue
				}
				iters := int(math.Min(cf, float64(a.opts.MaxUnroll)))
				for i := 0; i < iters; i++ {
					walk(node.Body)
				}
			case *pevpm.Runon:
				for i, cond := range node.Conds {
					v, err := cond.Eval(env)
					if err != nil {
						break
					}
					if v != 0 {
						walk(node.Bodies[i])
						break
					}
				}
			case *pevpm.Msg:
				if o, ok := a.seqOp(rank, env, node); ok {
					seq = append(seq, o)
				}
			case *pevpm.Coll:
				colls = append(colls, node.Op)
			}
		}
	}
	walk(a.prog.Body)
	return seq, colls
}

// seqOp turns a Message directive into a sequence operation; broken
// directives (already reported by the counting walk) are skipped.
func (a *analyzer) seqOp(rank int, env pevpm.Env, node *pevpm.Msg) (op, bool) {
	sizeF, err1 := node.Size.Eval(env)
	fromF, err2 := node.From.Eval(env)
	toF, err3 := node.To.Eval(env)
	if err1 != nil || err2 != nil || err3 != nil {
		return op{}, false
	}
	size, from, to := int(sizeF), int(fromF), int(toF)
	if size < 0 || from < 0 || from >= a.opts.Procs || to < 0 || to >= a.opts.Procs {
		return op{}, false
	}
	switch node.Kind {
	case pevpm.MsgSend, pevpm.MsgIsend:
		if from != rank {
			return op{}, false
		}
		return op{
			send:     true,
			blocking: node.Kind == pevpm.MsgSend && size > a.opts.EagerLimit,
			peer:     to,
			node:     node,
		}, true
	case pevpm.MsgRecv:
		if to != rank {
			return op{}, false
		}
		return op{peer: from, node: node}, true
	}
	return op{}, false
}

// checkUnreachable reports Runon branches no rank ever selects. A branch
// can be dead because its condition is false for every rank, or because
// an earlier condition shadows it (Runon has if/else-if semantics).
func (a *analyzer) checkUnreachable() {
	pevpm.Walk(a.prog.Body, func(n pevpm.Node) bool {
		node, ok := n.(*pevpm.Runon)
		if !ok || !a.runonSeen[node] {
			return true
		}
		taken := a.branchTaken[node]
		for i, cond := range node.Conds {
			if !taken[i] {
				a.reportGlobal(SeverityWarning, RuleUnreachable, node,
					"Runon branch %d (condition %s) is never taken by any of %d ranks",
					i+1, cond.String(), a.opts.Procs)
			}
		}
		return true
	})
}

// checkPairs balances send against receive counts on every rank pair.
func (a *analyzer) checkPairs() {
	a.mismatched = make(map[pair]bool)
	keys := make([]pair, 0, len(a.pairs))
	for k := range a.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		pc := a.pairs[k]
		switch {
		case pc.sends > pc.recvs:
			a.mismatched[k] = true
			node := pc.sendNode
			a.findings = append(a.findings, Finding{
				Severity: SeverityError, Rule: RuleUnmatchedSend,
				Pos: node.Pos().String(), Rank: k.from,
				Message: fmt.Sprintf("%.0f message(s) from rank %d to rank %d have no matching receive (%.0f sent, %.0f received)",
					pc.sends-pc.recvs, k.from, k.to, pc.sends, pc.recvs),
			})
		case pc.recvs > pc.sends:
			a.mismatched[k] = true
			node := pc.recvNode
			a.findings = append(a.findings, Finding{
				Severity: SeverityError, Rule: RuleUnmatchedRecv,
				Pos: node.Pos().String(), Rank: k.to,
				Message: fmt.Sprintf("%.0f receive(s) on rank %d from rank %d are never satisfied (%.0f sent, %.0f received)",
					pc.recvs-pc.sends, k.to, k.from, pc.sends, pc.recvs),
			})
		}
	}
}

// checkCollectives verifies every rank enters the same collective
// sequence; a rank skipping (or adding) a collective hangs the job.
func (a *analyzer) checkCollectives(colls [][]string) {
	ref := colls[0]
	for r := 1; r < len(colls); r++ {
		if equalStrings(colls[r], ref) {
			continue
		}
		a.reportGlobal(SeverityError, RuleCollMismatch, nil,
			"rank %d executes collectives %v but rank 0 executes %v", r, colls[r], ref)
		return
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// simulate runs the per-iteration communication schedule abstractly:
// every rank advances through its unrolled operation sequence; eager
// sends complete immediately, rendezvous sends park until received, and
// receives park until a message from their peer is queued. When no rank
// can advance, the ranks still holding operations are stuck, and a cycle
// in their wait-for graph is a guaranteed deadlock.
func (a *analyzer) simulate(seqs [][]op) {
	P := len(seqs)
	// fifos holds in-flight messages per directed pair, in send order
	// (MPI's non-overtaking rule); true marks a rendezvous message whose
	// sender is parked until it is received.
	fifos := make(map[pair][]bool)
	pcs := make([]int, P)
	posted := make([]bool, P)  // current send already enqueued
	cleared := make([]bool, P) // current rendezvous send was received
	for {
		progress := false
		for r := 0; r < P; r++ {
			for pcs[r] < len(seqs[r]) {
				o := seqs[r][pcs[r]]
				if o.send {
					k := pair{r, o.peer}
					if !posted[r] {
						fifos[k] = append(fifos[k], o.blocking)
						posted[r] = true
						// Posting is progress: a rank scanned earlier in
						// this round may be parked waiting for exactly
						// this message.
						progress = true
					}
					if o.blocking && !cleared[r] {
						break // parked in rendezvous send
					}
				} else {
					k := pair{o.peer, r}
					q := fifos[k]
					if len(q) == 0 {
						break // parked in receive
					}
					if q[0] {
						cleared[o.peer] = true
						progress = true
					}
					fifos[k] = q[1:]
				}
				pcs[r]++
				posted[r] = false
				cleared[r] = false
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	stuck := make(map[int]op)
	for r := 0; r < P; r++ {
		if pcs[r] < len(seqs[r]) {
			stuck[r] = seqs[r][pcs[r]]
		}
	}
	if len(stuck) == 0 {
		return
	}
	a.reportStuck(stuck)
}

// reportStuck classifies the ranks the abstract schedule left blocked:
// cycles in the wait-for graph become deadlock findings; acyclic stalls
// are only reported when count matching did not already explain them.
func (a *analyzer) reportStuck(stuck map[int]op) {
	const (
		unvisited = 0
		onPath    = 1
		done      = 2
	)
	color := make(map[int]int)
	ranks := make([]int, 0, len(stuck))
	for r := range stuck {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	inCycle := make(map[int]bool)
	for _, start := range ranks {
		if color[start] != unvisited {
			continue
		}
		var path []int
		index := make(map[int]int)
		cur := start
		for {
			if _, isStuck := stuck[cur]; !isStuck {
				break
			}
			if color[cur] == done {
				break
			}
			if at, seen := index[cur]; seen {
				cycle := path[at:]
				a.reportCycle(cycle, stuck)
				for _, r := range cycle {
					inCycle[r] = true
				}
				break
			}
			index[cur] = len(path)
			path = append(path, cur)
			color[cur] = onPath
			cur = stuck[cur].peer
		}
		for _, r := range path {
			color[r] = done
		}
	}
	for _, r := range ranks {
		if inCycle[r] {
			continue
		}
		o := stuck[r]
		k := pair{o.peer, r}
		if o.send {
			k = pair{r, o.peer}
		}
		if a.mismatched[k] {
			continue // root cause already reported by count matching
		}
		a.findings = append(a.findings, Finding{
			Severity: SeverityError, Rule: RuleDeadlockCycle,
			Pos: o.node.Pos().String(), Rank: r,
			Message: fmt.Sprintf("rank %d is permanently blocked in %s waiting on rank %d",
				r, pevpm.Describe(o.node), o.peer),
		})
	}
}

func (a *analyzer) reportCycle(cycle []int, stuck map[int]op) {
	// Rotate so the smallest rank leads, for deterministic messages.
	min := 0
	for i, r := range cycle {
		if r < cycle[min] {
			min = i
		}
	}
	rot := append(append([]int{}, cycle[min:]...), cycle[:min]...)
	msg := "circular wait: "
	for i, r := range rot {
		if i > 0 {
			msg += " -> "
		}
		o := stuck[r]
		kind := "recv from"
		if o.send {
			kind = "send to"
		}
		msg += fmt.Sprintf("rank %d (%s %d at %s)", r, kind, o.peer, o.node.Pos())
	}
	a.findings = append(a.findings, Finding{
		Severity: SeverityError, Rule: RuleDeadlockCycle,
		Pos: stuck[rot[0]].node.Pos().String(), Rank: rot[0],
		Message: msg,
	})
}
