package mpilint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/pevpm"
)

// analyzeFixture parses testdata/<name> and analyzes it at the given
// world size.
func analyzeFixture(t *testing.T, name string, procs int) []Finding {
	t.Helper()
	path := filepath.Join("testdata", name)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pevpm.ParseFile(name, string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	fs, err := Analyze(prog, Options{Procs: procs})
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	return fs
}

// ruleSet returns the distinct rules present, sorted.
func ruleSet(fs []Finding) []string {
	seen := map[string]bool{}
	for _, f := range fs {
		seen[f.Rule] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAnalyzeFixtures is the rule-class matrix required by the issue:
// every rule has at least one failing fixture, and the clean fixtures
// prove the analyzer is quiet on correct models. wantRules is the exact
// set of distinct rules the analysis must produce — no more, no less.
func TestAnalyzeFixtures(t *testing.T) {
	cases := []struct {
		file      string
		procs     int
		wantRules []string
	}{
		// Clean models: silence is the assertion.
		{"clean_ring.pvm", 4, nil},
		{"clean_ring.pvm", 8, nil},
		{"clean_headon_eager.pvm", 2, nil},

		// Deadlocks.
		{"deadlock_ring.pvm", 4, []string{RuleDeadlockCycle}},
		{"deadlock_headon.pvm", 2, []string{RuleDeadlockCycle}},
		{"deadlock_recv_first.pvm", 2, []string{RuleDeadlockCycle}},

		// Count mismatches.
		{"unmatched_send.pvm", 2, []string{RuleUnmatchedSend}},
		{"unmatched_recv.pvm", 2, []string{RuleUnmatchedRecv}},

		// Per-directive structural errors.
		{"rank_oob.pvm", 4, []string{RuleRankBounds}},
		{"wrong_role.pvm", 2, []string{RuleWrongRole}},
		{"self_send.pvm", 2, []string{RuleSelfSend}},
		{"bad_size.pvm", 2, []string{RuleBadSize}},
		{"bad_loop.pvm", 2, []string{RuleBadLoop}},
		{"bad_time.pvm", 2, []string{RuleBadTime}},
		{"eval_error.pvm", 2, []string{RuleEvalError}},

		// Whole-model checks.
		{"unbound_param.pvm", 4, []string{RuleUnboundParam}},
		{"unreachable.pvm", 4, []string{RuleUnreachable}},
		{"coll_mismatch.pvm", 4, []string{RuleCollMismatch}},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			fs := analyzeFixture(t, tc.file, tc.procs)
			got := ruleSet(fs)
			want := append([]string{}, tc.wantRules...)
			sort.Strings(want)
			if !equalSets(got, want) {
				t.Errorf("procs=%d: rules = %v, want %v\nfindings:\n%s",
					tc.procs, got, want, dump(fs))
			}
		})
	}
}

func dump(fs []Finding) string {
	s := ""
	for _, f := range fs {
		s += "  " + f.String() + "\n"
	}
	return s
}

// TestAnalyzeJacobiClean: the shipped Jacobi model (the paper's Figure
// 5 program) must lint completely clean at the paper's 8-process
// configuration — the CLI smoke test in ci.sh depends on this.
func TestAnalyzeJacobiClean(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "jacobi", "jacobi.pvm"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pevpm.ParseFile("jacobi.pvm", string(src))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Analyze(prog, Options{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("jacobi.pvm at 8 procs produced findings:\n%s", dump(fs))
	}
}

// TestDeadlockCycleNamesRanks: the circular-wait message must name every
// rank in the cycle and the operations they are parked in.
func TestDeadlockCycleNamesRanks(t *testing.T) {
	fs := analyzeFixture(t, "deadlock_headon.pvm", 2)
	if len(fs) != 1 {
		t.Fatalf("findings = \n%s", dump(fs))
	}
	f := fs[0]
	if f.Severity != SeverityError {
		t.Errorf("severity = %s", f.Severity)
	}
	for _, want := range []string{"circular wait", "rank 0", "rank 1", "send to"} {
		if !strings.Contains(f.Message, want) {
			t.Errorf("message %q missing %q", f.Message, want)
		}
	}
	if f.Pos == "" {
		t.Error("cycle finding has no position")
	}
}

// TestFindingsCarryPositions: every per-directive finding must cite
// file:line so editors can jump to it.
func TestFindingsCarryPositions(t *testing.T) {
	fs := analyzeFixture(t, "rank_oob.pvm", 4)
	if len(fs) != 1 {
		t.Fatalf("findings = \n%s", dump(fs))
	}
	if want := "rank_oob.pvm:3"; !strings.Contains(fs[0].Pos, want) {
		t.Errorf("pos = %q, want prefix %q", fs[0].Pos, want)
	}
}

// TestDedupAggregatesRanks: a directive broken for many ranks yields one
// finding listing the ranks, not one finding per rank.
func TestDedupAggregatesRanks(t *testing.T) {
	fs := analyzeFixture(t, "rank_oob.pvm", 4)
	if len(fs) != 1 {
		t.Fatalf("expected 1 deduplicated finding, got:\n%s", dump(fs))
	}
	if !strings.Contains(fs[0].Message, "ranks 0,1,2,3") {
		t.Errorf("message %q does not aggregate ranks", fs[0].Message)
	}
}

// TestEagerLimitOption: the head-on exchange deadlocks exactly when the
// configured eager limit drops below the message size.
func TestEagerLimitOption(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "clean_headon_eager.pvm"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := pevpm.ParseFile("clean_headon_eager.pvm", string(src))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Analyze(prog, Options{Procs: 2, EagerLimit: 512})
	if err != nil {
		t.Fatal(err)
	}
	got := ruleSet(fs)
	if !equalSets(got, []string{RuleDeadlockCycle}) {
		t.Errorf("with EagerLimit=512 rules = %v, want [%s]\n%s",
			got, RuleDeadlockCycle, dump(fs))
	}
}

// TestSortFindingsNumericPositions: findings on line 9 must precede
// line 51 — positions compare numerically, not lexically.
func TestSortFindingsNumericPositions(t *testing.T) {
	fs := []Finding{
		{Pos: "m.pvm:51:11", Rule: "a"},
		{Pos: "m.pvm:9:11", Rule: "b"},
		{Pos: "", Rule: "c"},
		{Pos: "m.pvm:9:2", Rule: "d"},
	}
	sortFindings(fs)
	var order []string
	for _, f := range fs {
		order = append(order, f.Rule)
	}
	if got := strings.Join(order, ""); got != "cdba" {
		t.Errorf("order = %q, want cdba (%v)", got, fs)
	}
}

// TestAnalyzeRejectsBadOptions covers the error paths.
func TestAnalyzeRejectsBadOptions(t *testing.T) {
	if _, err := Analyze(nil, Options{Procs: 2}); err == nil {
		t.Error("nil program accepted")
	}
	prog := pevpm.NewProgram()
	if _, err := Analyze(prog, Options{Procs: 0}); err == nil {
		t.Error("Procs=0 accepted")
	}
}
