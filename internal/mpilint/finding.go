// Package mpilint statically analyzes communication correctness of
// PEVPM models and, via the runtime hooks in internal/mpi, of simulated
// MPI programs. The paper's premise is that per-message communication
// structure determines cluster performance; mpilint checks that the
// structure a model describes is actually executable — every send has a
// receive, no rank addresses a peer outside the job, and the
// send/receive ordering cannot cycle into a deadlock — before the
// simulator or the virtual parallel machine spends time executing it.
package mpilint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mpi"
)

// Severity classifies a finding. Errors make the model unexecutable (the
// VPM or simulator would fail or hang); warnings are suspicious but
// runnable; info findings are advisory.
type Severity string

// Severity levels, ordered error > warning > info.
const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
	SeverityInfo    Severity = "info"
)

// rank reports severity order for sorting (most severe first).
func (s Severity) rank() int {
	switch s {
	case SeverityError:
		return 0
	case SeverityWarning:
		return 1
	}
	return 2
}

// The static rules. Each is documented with a bad/good example pair in
// docs/MPILINT.md.
const (
	RuleUnboundParam  = "unbound-param"       // expression references a parameter the model never binds
	RuleRankBounds    = "rank-bounds"         // from/to evaluates outside [0, numprocs)
	RuleWrongRole     = "wrong-role"          // send whose from (recv whose to) is not the executing rank
	RuleSelfSend      = "self-send"           // from == to
	RuleBadSize       = "bad-size"            // negative (error) or zero (warning) message size
	RuleBadLoop       = "bad-loop-count"      // negative or fractional Loop count
	RuleBadTime       = "bad-time"            // negative Serial time
	RuleEvalError     = "eval-error"          // expression fails to evaluate (division by zero, ...)
	RuleUnmatchedSend = "unmatched-send"      // more sends a->b than receives
	RuleUnmatchedRecv = "unmatched-recv"      // more receives a->b than sends
	RuleDeadlockCycle = "deadlock-cycle"      // circular wait among blocking operations
	RuleUnreachable   = "unreachable-branch"  // Runon branch no rank ever selects
	RuleCollMismatch  = "collective-mismatch" // ranks execute different collective sequences
)

// Runtime rules re-exported from internal/mpi for a single catalogue.
const (
	RulePeerRange     = mpi.RulePeerRange
	RuleLeakedRequest = mpi.RuleLeakedRequest
	RuleUnconsumed    = mpi.RuleUnconsumed
	RuleWildcardRace  = mpi.RuleWildcardRace
	RuleDeadlock      = mpi.RuleDeadlock
)

// Finding is one diagnostic, structured so the CLI can render it as
// text or JSON.
type Finding struct {
	Severity Severity `json:"severity"`
	Rule     string   `json:"rule"`
	Pos      string   `json:"pos,omitempty"`   // file:line:col of the offending directive
	Rank     int      `json:"rank"`            // rank the finding applies to; -1 = job-wide
	Procs    int      `json:"procs,omitempty"` // world size the analysis ran at
	Message  string   `json:"message"`
}

func (f Finding) String() string {
	s := string(f.Severity) + "[" + f.Rule + "]: " + f.Message
	if f.Pos != "" {
		s = f.Pos + ": " + s
	}
	return s
}

// FromMPI converts runtime findings collected by an mpi.Linter into the
// static analyzer's finding type, so one reporting path serves both
// layers.
func FromMPI(in []mpi.Finding) []Finding {
	out := make([]Finding, 0, len(in))
	for _, f := range in {
		out = append(out, Finding{
			Severity: Severity(f.Severity),
			Rule:     f.Rule,
			Rank:     f.Rank,
			Message:  f.Message,
		})
	}
	return out
}

// Count returns how many findings carry the severity.
func Count(fs []Finding, sev Severity) int {
	n := 0
	for _, f := range fs {
		if f.Severity == sev {
			n++
		}
	}
	return n
}

// sortFindings orders findings for stable output: by position (file,
// then numeric line and column), then severity, rule and message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if c := comparePos(fs[i].Pos, fs[j].Pos); c != 0 {
			return c < 0
		}
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity.rank() < fs[j].Severity.rank()
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		return fs[i].Message < fs[j].Message
	})
}

// comparePos orders "file:line:col" strings with numeric line/column
// comparison, so line 9 sorts before line 51. Empty positions sort
// first (job-wide findings lead the report).
func comparePos(a, b string) int {
	af, al, ac := splitPos(a)
	bf, bl, bc := splitPos(b)
	switch {
	case af != bf:
		if af < bf {
			return -1
		}
		return 1
	case al != bl:
		return al - bl
	default:
		return ac - bc
	}
}

// splitPos breaks a position string ("file:line:col", "file:line",
// "line:col" or "") into file, line and column: it strips numeric
// components off the tail, rightmost last.
func splitPos(p string) (file string, line, col int) {
	var nums []int
	for len(nums) < 2 {
		cut := strings.LastIndexByte(p, ':')
		head, tail := "", p
		if cut >= 0 {
			head, tail = p[:cut], p[cut+1:]
		}
		n, err := strconv.Atoi(tail)
		if err != nil {
			break
		}
		nums = append(nums, n)
		p = head
		if cut < 0 {
			break
		}
	}
	switch len(nums) {
	case 1:
		line = nums[0]
	case 2:
		line, col = nums[1], nums[0]
	}
	return p, line, col
}

// ranksLabel compresses a rank list for messages: "rank 3" or
// "ranks 1,3,5" (capped with an ellipsis).
func ranksLabel(ranks []int) string {
	if len(ranks) == 1 {
		return fmt.Sprintf("rank %d", ranks[0])
	}
	const cap = 6
	s := "ranks "
	for i, r := range ranks {
		if i == cap {
			return s + fmt.Sprintf(",… (%d total)", len(ranks))
		}
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", r)
	}
	return s
}
