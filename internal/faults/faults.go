// Package faults perturbs the simulated cluster through deterministic,
// time-windowed fault schedules: link degradation, elevated drop
// probability, node slowdown (OS-noise bursts), NIC outage windows and
// backplane capacity reduction. The paper's central observation is that
// MPI performance on commodity clusters is dominated by *variability* —
// contention, buffer overflow and retransmission-timeout outliers in the
// distribution tails — and a simulator that only ever exercises the
// healthy configuration cannot study it. A Schedule turns the healthy
// Perseus model into a degraded one without touching any model code.
//
// Determinism: a Schedule is plain data, generated up front from
// sim.SubSeed substreams (see internal/cluster's scenario presets) and
// read-only while a simulation runs. The same (seed, scenario) pair
// always yields the same windows, so perturbed experiment sweeps stay
// bit-reproducible at any worker count.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind classifies a fault rule.
type Kind int

// Fault kinds. Severity's meaning depends on the kind; see Rule.
const (
	// LinkDegrade multiplies the target node's NIC bandwidth by
	// Severity (0 < Severity < 1): a renegotiated half-duplex link, a
	// failing transceiver, a rate-limited port.
	LinkDegrade Kind = iota
	// DropBoost adds Severity (0 < Severity <= 1) to the drop
	// probability of messages delivered to the target node, on top of
	// the congestion-driven drop model.
	DropBoost
	// NodeSlow multiplies the target node's host CPU costs (MPI call
	// overheads and compute segments) by Severity (> 1): OS noise,
	// daemon interference, thermal throttling.
	NodeSlow
	// NICOutage takes the target node's NIC down entirely: every
	// transfer attempt touching the node during the window is lost and
	// retries on the TCP timeout path.
	NICOutage
	// BackplaneDegrade multiplies the capacity of the target stacking
	// segment by Severity (0 < Severity < 1): a failed matrix card lane
	// or a misbehaving stack link.
	BackplaneDegrade
)

var kindNames = map[Kind]string{
	LinkDegrade:      "link-degrade",
	DropBoost:        "drop-boost",
	NodeSlow:         "node-slow",
	NICOutage:        "nic-outage",
	BackplaneDegrade: "backplane-degrade",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllTargets selects every node (or every backplane segment) instead of
// a single one.
const AllTargets = -1

// Rule is one time-windowed perturbation: during [Start, End) the fault
// applies to Target (a node index, or a backplane-segment index for
// BackplaneDegrade; AllTargets hits everything).
type Rule struct {
	Kind     Kind
	Start    sim.Time // window start (inclusive)
	End      sim.Time // window end (exclusive)
	Target   int
	Severity float64
}

// active reports whether the rule applies at time t.
func (r Rule) active(t sim.Time) bool { return t >= r.Start && t < r.End }

// matches reports whether the rule applies to the given target index.
func (r Rule) matches(target int) bool {
	return r.Target == AllTargets || r.Target == target
}

// String renders the rule compactly (used for trace annotations).
func (r Rule) String() string {
	tgt := "all"
	if r.Target != AllTargets {
		tgt = fmt.Sprintf("%d", r.Target)
	}
	return fmt.Sprintf("%s target=%s sev=%.2f [%v,%v)", r.Kind, tgt, r.Severity, r.Start, r.End)
}

// Validate reports the first inconsistency in the rule.
func (r Rule) Validate() error {
	if r.End <= r.Start {
		return fmt.Errorf("faults: %s window [%v,%v) is empty", r.Kind, r.Start, r.End)
	}
	if r.Target < AllTargets {
		return fmt.Errorf("faults: %s target %d invalid", r.Kind, r.Target)
	}
	switch r.Kind {
	case LinkDegrade, BackplaneDegrade:
		if r.Severity <= 0 || r.Severity >= 1 {
			return fmt.Errorf("faults: %s severity %v outside (0,1)", r.Kind, r.Severity)
		}
	case DropBoost:
		if r.Severity <= 0 || r.Severity > 1 {
			return fmt.Errorf("faults: %s severity %v outside (0,1]", r.Kind, r.Severity)
		}
	case NodeSlow:
		if r.Severity <= 1 {
			return fmt.Errorf("faults: %s severity %v must exceed 1", r.Kind, r.Severity)
		}
	case NICOutage:
		// Severity is ignored; any value is fine.
	default:
		return fmt.Errorf("faults: unknown kind %v", r.Kind)
	}
	return nil
}

// Schedule is a named set of fault rules. The zero value (and nil) is
// the healthy cluster: every query returns the neutral answer and the
// network model draws no extra randomness, so an empty schedule is
// bit-identical to no schedule at all.
type Schedule struct {
	Name  string
	Rules []Rule
}

// Empty reports whether the schedule perturbs anything.
func (s *Schedule) Empty() bool { return s == nil || len(s.Rules) == 0 }

// Validate checks every rule.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, r := range s.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// ValidateFor checks the schedule against a concrete cluster shape:
// beyond the per-rule checks, every node-targeted rule must bind at
// least one of the cluster's nodes and every BackplaneDegrade rule at
// least one inter-switch segment. A rule whose target does not exist
// would otherwise be a silently-unmatched window — a perturbation that
// perturbs nothing and quietly turns a degraded experiment into a
// healthy one.
func (s *Schedule) ValidateFor(nodes, segments int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s == nil {
		return nil
	}
	for i, r := range s.Rules {
		have, what := nodes, "node"
		if r.Kind == BackplaneDegrade {
			have, what = segments, "backplane segment"
		}
		if r.Target == AllTargets {
			if have == 0 {
				return fmt.Errorf("rule %d: %s targets every %s but the cluster has none", i, r.Kind, what)
			}
			continue
		}
		if r.Target >= have {
			return fmt.Errorf("rule %d: %s binds no %s (target %d, cluster has %d)",
				i, r.Kind, what, r.Target, have)
		}
	}
	return nil
}

// LinkFactor returns the bandwidth multiplier of a node's NIC at time t:
// 1 when healthy, the product of active LinkDegrade severities
// otherwise, floored at 1% of nominal so service times stay finite.
func (s *Schedule) LinkFactor(node int, t sim.Time) float64 {
	if s.Empty() {
		return 1
	}
	f := 1.0
	for _, r := range s.Rules {
		if r.Kind == LinkDegrade && r.matches(node) && r.active(t) {
			f *= r.Severity
		}
	}
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// DropBoost returns the extra drop probability for messages delivered to
// a node at time t (sum of active boosts, capped at 1).
func (s *Schedule) DropBoost(node int, t sim.Time) float64 {
	if s.Empty() {
		return 0
	}
	p := 0.0
	for _, r := range s.Rules {
		if r.Kind == DropBoost && r.matches(node) && r.active(t) {
			p += r.Severity
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

// SlowFactor returns the host CPU cost multiplier for a node at time t
// (1 when healthy, the product of active NodeSlow severities otherwise).
func (s *Schedule) SlowFactor(node int, t sim.Time) float64 {
	if s.Empty() {
		return 1
	}
	f := 1.0
	for _, r := range s.Rules {
		if r.Kind == NodeSlow && r.matches(node) && r.active(t) {
			f *= r.Severity
		}
	}
	return f
}

// NICDown reports whether a node's NIC is inside an outage window at t.
func (s *Schedule) NICDown(node int, t sim.Time) bool {
	if s.Empty() {
		return false
	}
	for _, r := range s.Rules {
		if r.Kind == NICOutage && r.matches(node) && r.active(t) {
			return true
		}
	}
	return false
}

// StackFactor returns the capacity multiplier of a backplane segment at
// time t, floored at 1% like LinkFactor.
func (s *Schedule) StackFactor(segment int, t sim.Time) float64 {
	if s.Empty() {
		return 1
	}
	f := 1.0
	for _, r := range s.Rules {
		if r.Kind == BackplaneDegrade && r.matches(segment) && r.active(t) {
			f *= r.Severity
		}
	}
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// Record writes the schedule's windows into a trace log as paired
// FaultBegin/FaultEnd events (Tag carries the rule index so exporters
// can re-pair them; Peer carries the target). The Chrome exporter
// renders these on a dedicated "faults" track.
func (s *Schedule) Record(l *trace.Log) {
	if s.Empty() || l == nil {
		return
	}
	for i, r := range s.Rules {
		note := fmt.Sprintf("%s x%.2f", r.Kind, r.Severity)
		if r.Kind == NICOutage {
			note = r.Kind.String()
		}
		l.Record(trace.Event{
			Time: r.Start, Rank: -1, Kind: trace.FaultBegin,
			Peer: r.Target, Tag: i, Note: note,
		})
		l.Record(trace.Event{
			Time: r.End, Rank: -1, Kind: trace.FaultEnd,
			Peer: r.Target, Tag: i, Note: note,
		})
	}
}

// Windows draws n non-overlapping-ish fault windows inside [0, span)
// seconds from an RNG substream: starts are uniform over the span, and
// lengths are uniform in [minLen, maxLen]. Windows are returned sorted
// by start time. The draws consume exactly 2n uniforms, so a scenario's
// window set depends only on the RNG state it is handed.
func Windows(rng *sim.RNG, n int, span, minLen, maxLen float64) [][2]sim.Time {
	out := make([][2]sim.Time, 0, n)
	for i := 0; i < n; i++ {
		start := rng.Float64() * span
		length := minLen + (maxLen-minLen)*rng.Float64()
		end := start + length
		if end > span {
			end = span
		}
		s, e := sim.TimeFromSeconds(start), sim.TimeFromSeconds(end)
		if e <= s {
			e = s + sim.Time(sim.Millisecond)
		}
		out = append(out, [2]sim.Time{s, e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
