package faults

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestRuleValidate(t *testing.T) {
	sec := func(s float64) sim.Time { return sim.TimeFromSeconds(s) }
	cases := []struct {
		name string
		r    Rule
		ok   bool
	}{
		{"link ok", Rule{Kind: LinkDegrade, Start: 0, End: sec(1), Target: 0, Severity: 0.5}, true},
		{"link sev 1", Rule{Kind: LinkDegrade, Start: 0, End: sec(1), Target: 0, Severity: 1}, false},
		{"link sev 0", Rule{Kind: LinkDegrade, Start: 0, End: sec(1), Target: 0, Severity: 0}, false},
		{"drop ok", Rule{Kind: DropBoost, Start: 0, End: sec(1), Target: AllTargets, Severity: 1}, true},
		{"drop over", Rule{Kind: DropBoost, Start: 0, End: sec(1), Target: 0, Severity: 1.5}, false},
		{"slow ok", Rule{Kind: NodeSlow, Start: 0, End: sec(1), Target: 2, Severity: 3}, true},
		{"slow under", Rule{Kind: NodeSlow, Start: 0, End: sec(1), Target: 2, Severity: 0.5}, false},
		{"outage ok", Rule{Kind: NICOutage, Start: 0, End: sec(1), Target: 1}, true},
		{"empty window", Rule{Kind: NICOutage, Start: sec(1), End: sec(1), Target: 1}, false},
		{"bad target", Rule{Kind: NICOutage, Start: 0, End: sec(1), Target: -2}, false},
		{"backplane ok", Rule{Kind: BackplaneDegrade, Start: 0, End: sec(1), Target: 0, Severity: 0.25}, true},
	}
	for _, c := range cases {
		err := (&Schedule{Rules: []Rule{c.r}}).Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestScheduleQueries(t *testing.T) {
	sec := func(s float64) sim.Time { return sim.TimeFromSeconds(s) }
	s := &Schedule{Name: "mixed", Rules: []Rule{
		{Kind: LinkDegrade, Start: sec(1), End: sec(2), Target: 3, Severity: 0.5},
		{Kind: LinkDegrade, Start: sec(1.5), End: sec(2.5), Target: AllTargets, Severity: 0.4},
		{Kind: DropBoost, Start: sec(0), End: sec(1), Target: 0, Severity: 0.7},
		{Kind: DropBoost, Start: sec(0), End: sec(1), Target: AllTargets, Severity: 0.6},
		{Kind: NodeSlow, Start: sec(2), End: sec(3), Target: 1, Severity: 4},
		{Kind: NICOutage, Start: sec(5), End: sec(6), Target: 2},
		{Kind: BackplaneDegrade, Start: sec(0), End: sec(10), Target: 1, Severity: 0.25},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// LinkFactor: outside windows 1; inside one window 0.5; where the two
	// overlap the severities multiply.
	if f := s.LinkFactor(3, sec(0.5)); f != 1 {
		t.Errorf("LinkFactor before window = %v", f)
	}
	if f := s.LinkFactor(3, sec(1.2)); f != 0.5 {
		t.Errorf("LinkFactor in window = %v, want 0.5", f)
	}
	if f := s.LinkFactor(3, sec(1.7)); f < 0.199 || f > 0.201 {
		t.Errorf("overlapping LinkFactor = %v, want 0.2", f)
	}
	if f := s.LinkFactor(0, sec(1.7)); f != 0.4 {
		t.Errorf("all-targets LinkFactor = %v, want 0.4", f)
	}
	// Window end is exclusive.
	if f := s.LinkFactor(3, sec(2)); f != 0.4 {
		t.Errorf("LinkFactor at end = %v, want 0.4 (end exclusive)", f)
	}

	// DropBoost sums and caps at 1.
	if p := s.DropBoost(0, sec(0.5)); p != 1 {
		t.Errorf("DropBoost sum = %v, want capped 1", p)
	}
	if p := s.DropBoost(4, sec(0.5)); p != 0.6 {
		t.Errorf("DropBoost all-targets = %v, want 0.6", p)
	}
	if p := s.DropBoost(0, sec(1.5)); p != 0 {
		t.Errorf("DropBoost outside window = %v", p)
	}

	if f := s.SlowFactor(1, sec(2.5)); f != 4 {
		t.Errorf("SlowFactor = %v, want 4", f)
	}
	if f := s.SlowFactor(0, sec(2.5)); f != 1 {
		t.Errorf("SlowFactor other node = %v, want 1", f)
	}

	if !s.NICDown(2, sec(5.5)) || s.NICDown(2, sec(4)) || s.NICDown(0, sec(5.5)) {
		t.Error("NICDown window wrong")
	}

	if f := s.StackFactor(1, sec(3)); f != 0.25 {
		t.Errorf("StackFactor = %v, want 0.25", f)
	}
	if f := s.StackFactor(0, sec(3)); f != 1 {
		t.Errorf("StackFactor other segment = %v, want 1", f)
	}
}

func TestEmptyScheduleNeutral(t *testing.T) {
	var nilSched *Schedule
	for _, s := range []*Schedule{nil, {}, nilSched} {
		if !s.Empty() {
			t.Fatal("empty schedule not Empty")
		}
		if s.LinkFactor(0, 0) != 1 || s.DropBoost(0, 0) != 0 ||
			s.SlowFactor(0, 0) != 1 || s.NICDown(0, 0) || s.StackFactor(0, 0) != 1 {
			t.Fatal("empty schedule is not neutral")
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSeverityFloor(t *testing.T) {
	sec := func(s float64) sim.Time { return sim.TimeFromSeconds(s) }
	s := &Schedule{Rules: []Rule{
		{Kind: LinkDegrade, Start: 0, End: sec(1), Target: 0, Severity: 0.01},
		{Kind: LinkDegrade, Start: 0, End: sec(1), Target: 0, Severity: 0.01},
	}}
	if f := s.LinkFactor(0, sec(0.5)); f != 0.01 {
		t.Errorf("LinkFactor = %v, want floor 0.01", f)
	}
}

func TestRecordEmitsPairedWindows(t *testing.T) {
	sec := func(s float64) sim.Time { return sim.TimeFromSeconds(s) }
	s := &Schedule{Name: "x", Rules: []Rule{
		{Kind: NICOutage, Start: sec(1), End: sec(2), Target: 3},
		{Kind: NodeSlow, Start: sec(0), End: sec(4), Target: 0, Severity: 2},
	}}
	l := trace.NewLog(0)
	s.Record(l)
	if l.Len() != 4 {
		t.Fatalf("recorded %d events, want 4", l.Len())
	}
	begins, ends := 0, 0
	for _, ev := range l.Events() {
		switch ev.Kind {
		case trace.FaultBegin:
			begins++
		case trace.FaultEnd:
			ends++
		}
		if ev.Rank != -1 {
			t.Errorf("fault event on rank %d, want -1", ev.Rank)
		}
	}
	if begins != 2 || ends != 2 {
		t.Errorf("begin/end = %d/%d, want 2/2", begins, ends)
	}
	// Empty schedules record nothing.
	l2 := trace.NewLog(0)
	(&Schedule{}).Record(l2)
	if l2.Len() != 0 {
		t.Error("empty schedule recorded events")
	}
}

func TestWindowsDeterministicAndBounded(t *testing.T) {
	const span = 2.0
	a := Windows(sim.NewCellRNG(42, "faults/test"), 5, span, 0.05, 0.3)
	b := Windows(sim.NewCellRNG(42, "faults/test"), 5, span, 0.05, 0.3)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("window counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different windows: %v vs %v", a[i], b[i])
		}
		if a[i][0] < 0 || a[i][1] > sim.TimeFromSeconds(span) || a[i][1] <= a[i][0] {
			t.Errorf("window %d out of bounds: %v", i, a[i])
		}
		if i > 0 && a[i][0] < a[i-1][0] {
			t.Errorf("windows not sorted: %v after %v", a[i], a[i-1])
		}
	}
	c := Windows(sim.NewCellRNG(43, "faults/test"), 5, span, 0.05, 0.3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical windows")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Kind: LinkDegrade, Start: 0, End: sim.TimeFromSeconds(1), Target: AllTargets, Severity: 0.5}
	if s := r.String(); !strings.Contains(s, "link-degrade") || !strings.Contains(s, "all") {
		t.Errorf("Rule.String() = %q", s)
	}
	if KindName := Kind(99).String(); !strings.Contains(KindName, "99") {
		t.Errorf("unknown kind string = %q", KindName)
	}
}

func TestValidateForBindingChecks(t *testing.T) {
	sec := func(s float64) sim.Time { return sim.TimeFromSeconds(s) }
	mk := func(k Kind, target int) *Schedule {
		sev := 0.5
		if k == NodeSlow {
			sev = 2
		}
		return &Schedule{Name: "t", Rules: []Rule{{
			Kind: k, Start: sec(0), End: sec(1), Target: target, Severity: sev,
		}}}
	}

	// In-range targets pass.
	if err := mk(BackplaneDegrade, 3).ValidateFor(8, 4); err != nil {
		t.Fatal(err)
	}
	if err := mk(LinkDegrade, 7).ValidateFor(8, 4); err != nil {
		t.Fatal(err)
	}

	// A backplane rule whose segment does not exist binds nothing: the
	// window would silently perturb nothing. Must be rejected.
	if err := mk(BackplaneDegrade, 4).ValidateFor(8, 4); err == nil {
		t.Fatal("segment 4 of 4 should fail")
	} else if !strings.Contains(err.Error(), "binds no backplane segment") {
		t.Errorf("error should say the rule binds no segment: %v", err)
	}
	// Same for node rules beyond the node count.
	if err := mk(NodeSlow, 8).ValidateFor(8, 4); err == nil {
		t.Fatal("node 8 of 8 should fail")
	}
	// AllTargets needs at least one target of the right kind to exist.
	if err := mk(BackplaneDegrade, AllTargets).ValidateFor(8, 0); err == nil {
		t.Fatal("all-segments rule on a segmentless machine should fail")
	}
	if err := mk(DropBoost, AllTargets).ValidateFor(8, 0); err != nil {
		t.Fatalf("all-nodes rule should not care about segments: %v", err)
	}

	// Nil schedules and per-rule failures still flow through.
	var nilSched *Schedule
	if err := nilSched.ValidateFor(8, 4); err != nil {
		t.Fatal(err)
	}
	bad := mk(LinkDegrade, 0)
	bad.Rules[0].Severity = 2
	if err := bad.ValidateFor(8, 4); err == nil {
		t.Fatal("per-rule validation should still run")
	}
}
