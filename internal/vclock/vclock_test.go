package vclock

import (
	"errors"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestLocalClockOffsetAndSkew(t *testing.T) {
	c := NewLocalClock(5.0, 100e-6, 0, nil)
	at0 := c.Read(0)
	if at0 != 5.0 {
		t.Errorf("Read(0) = %v, want 5", at0)
	}
	at100 := c.Read(sim.TimeFromSeconds(100))
	// After 100 s the clock has gained 100·100µs = 10 ms.
	if math.Abs(at100-(105.0+0.01)) > 1e-9 {
		t.Errorf("Read(100s) = %v", at100)
	}
}

func TestLocalClockMonotone(t *testing.T) {
	e := sim.NewEngine(1)
	c := NewLocalClock(0, -200e-6, 2e-6, e.RNG("jit"))
	prev := math.Inf(-1)
	for i := 0; i < 10000; i++ {
		v := c.Read(sim.Time(i) * sim.Time(sim.Microsecond))
		if v < prev {
			t.Fatalf("clock went backwards at step %d: %v < %v", i, v, prev)
		}
		prev = v
	}
}

func TestNewClockSetSpread(t *testing.T) {
	e := sim.NewEngine(2)
	clocks := NewClockSet(e, 64, 2.0, 50e-6, 1e-6)
	if len(clocks) != 64 {
		t.Fatalf("len = %d", len(clocks))
	}
	distinct := map[float64]bool{}
	for _, c := range clocks {
		off, skew := c.TrueParams()
		if math.Abs(off) > 2.0 || math.Abs(skew) > 50e-6 {
			t.Errorf("clock params out of range: off=%v skew=%v", off, skew)
		}
		distinct[off] = true
	}
	if len(distinct) < 60 {
		t.Error("clock offsets suspiciously non-distinct")
	}
}

// synthesise generates probes between a drifting local clock and a
// reference clock across a network with base one-way delay plus noise.
func synthesise(t *testing.T, local *LocalClock, n int, spanSeconds, delay, noise float64, seed uint64) []Probe {
	t.Helper()
	rng := sim.NewRNG(seed)
	probes := make([]Probe, n)
	for i := range probes {
		trueSend := sim.TimeFromSeconds(float64(i) / float64(n) * spanSeconds)
		d1 := delay + noise*rng.Float64()
		d2 := delay + noise*rng.Float64()
		trueRemote := trueSend.Add(sim.DurationFromSeconds(d1))
		trueRecv := trueRemote.Add(sim.DurationFromSeconds(d2))
		probes[i] = Probe{
			LocalSend: local.Read(trueSend),
			Remote:    trueRemote.Seconds(), // reference = true time
			LocalRecv: local.Read(trueRecv),
		}
	}
	return probes
}

func TestEstimateRecoversOffsetAndSkew(t *testing.T) {
	local := NewLocalClock(-3.7, 42e-6, 0, nil)
	probes := synthesise(t, local, 200, 10, 90e-6, 40e-6, 1)
	corr, err := Estimate(probes)
	if err != nil {
		t.Fatal(err)
	}
	// Check correction quality where it matters: mapping local readings
	// back to reference time at several epochs.
	for _, trueT := range []float64{0, 2.5, 5, 9.9} {
		localReading := trueT*(1+42e-6) - 3.7
		global := corr.Global(localReading)
		if errAbs := math.Abs(global - trueT); errAbs > 20e-6 {
			t.Errorf("at t=%v: corrected error %.1f µs", trueT, errAbs*1e6)
		}
	}
	if corr.Residual > 20e-6 {
		t.Errorf("residual %.1f µs too large", corr.Residual*1e6)
	}
}

func TestEstimateFiltersHighRTTProbes(t *testing.T) {
	local := NewLocalClock(1.0, 0, 0, nil)
	probes := synthesise(t, local, 100, 5, 90e-6, 5e-6, 2)
	// Poison some probes with huge asymmetric queueing delay.
	rng := sim.NewRNG(3)
	for i := 0; i < 30; i++ {
		k := rng.Intn(len(probes))
		probes[k].LocalRecv += 0.01 // 10 ms of queueing on the return path
	}
	corr, err := Estimate(probes)
	if err != nil {
		t.Fatal(err)
	}
	if corr.Probes > 100-20 {
		t.Errorf("filtering kept %d probes, should have dropped the poisoned ones", corr.Probes)
	}
	if errAbs := math.Abs(corr.Global(1.0) - 0.0); errAbs > 20e-6 {
		t.Errorf("offset error %.1f µs despite filtering", errAbs*1e6)
	}
}

func TestEstimateSubLatencyAccuracy(t *testing.T) {
	// The headline requirement: sync error must be far below the ~200 µs
	// communication times being measured, even with realistic jitter.
	e := sim.NewEngine(4)
	local := NewLocalClock(0.83, -31e-6, 1e-6, e.RNG("jit"))
	probes := synthesise(t, local, 400, 20, 95e-6, 30e-6, 5)
	corr, err := Estimate(probes)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, trueT := range []float64{0, 5, 10, 15, 20} {
		localReading := trueT*(1-31e-6) + 0.83
		if errAbs := math.Abs(corr.Global(localReading) - trueT); errAbs > worst {
			worst = errAbs
		}
	}
	if worst > 25e-6 {
		t.Errorf("worst sync error %.1f µs, want well under one message latency", worst*1e6)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(nil); !errors.Is(err, ErrTooFewProbes) {
		t.Errorf("nil probes: %v", err)
	}
	if _, err := Estimate([]Probe{{0, 1, 2}}); !errors.Is(err, ErrTooFewProbes) {
		t.Errorf("one probe: %v", err)
	}
	bad := []Probe{{10, 5, 9}, {20, 15, 19}} // negative RTTs
	if _, err := Estimate(bad); err == nil {
		t.Error("all-negative RTTs should fail")
	}
}

func TestEstimateDegenerateSameInstant(t *testing.T) {
	// All probes at one instant: offset is still recoverable, skew is 0.
	probes := []Probe{
		{LocalSend: 1.0, Remote: 3.0001, LocalRecv: 1.0002},
		{LocalSend: 1.0, Remote: 3.0001, LocalRecv: 1.0002},
	}
	corr, err := Estimate(probes)
	if err != nil {
		t.Fatal(err)
	}
	if corr.Skew != 0 {
		t.Errorf("skew = %v, want 0 for degenerate probes", corr.Skew)
	}
	if math.Abs(corr.Global(1.0)-3.0) > 1e-3 {
		t.Errorf("offset not recovered: %v", corr.Global(1.0))
	}
}

func TestIdentityCorrection(t *testing.T) {
	id := Identity()
	for _, v := range []float64{0, 1.5, 1e6} {
		if id.Global(v) != v {
			t.Errorf("Identity.Global(%v) = %v", v, id.Global(v))
		}
	}
}
