// Package vclock models the clock problem MPIBench had to solve, and its
// solution. Each node of a real cluster has its own oscillator: readings
// differ by an arbitrary offset and drift apart at tens of microseconds
// per second. Measuring the one-way time of an individual MPI operation —
// the paper's key benchmarking contribution — therefore needs a globally
// synchronised clock: every node's readings must be mapped onto a common
// timebase with sub-communication-latency accuracy.
//
// The package provides drifting LocalClocks (the problem) and the
// ping-pong offset/skew estimator MPIBench uses (the solution): exchange
// timestamped probes with a reference node, keep the probes with the
// smallest round-trip times (least queueing, most symmetric), and fit
// offset-versus-time by linear regression so drift is corrected too.
package vclock

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// LocalClock converts true simulation time into the readings a node's
// own clock would produce: skewed in rate, shifted by an offset, and
// quantised/jittered at read time. Readings are forced monotone, as a
// sane OS clock would be.
type LocalClock struct {
	offset float64 // seconds added to true time at t=0
	skew   float64 // fractional rate error (+40e-6 = gains 40 µs/s)
	jitter float64 // uniform read noise magnitude (seconds)
	rng    interface{ Float64() float64 }
	last   float64
}

// NewLocalClock builds a clock with the given error parameters. rng may
// be nil when jitter is zero.
func NewLocalClock(offset, skew, jitter float64, rng interface{ Float64() float64 }) *LocalClock {
	if jitter > 0 && rng == nil {
		panic("vclock: jitter requires an rng")
	}
	return &LocalClock{offset: offset, skew: skew, jitter: jitter, rng: rng, last: math.Inf(-1)}
}

// Read returns the node's local reading (seconds) at true time t.
func (c *LocalClock) Read(t sim.Time) float64 {
	v := t.Seconds()*(1+c.skew) + c.offset
	if c.jitter > 0 {
		v += c.jitter * c.rng.Float64()
	}
	if v < c.last {
		v = c.last
	}
	c.last = v
	return v
}

// TrueParams exposes the clock's hidden parameters for test assertions.
func (c *LocalClock) TrueParams() (offset, skew float64) { return c.offset, c.skew }

// NewClockSet builds one local clock per node with realistic spreads:
// offsets uniform in ±maxOffset, skews uniform in ±maxSkew, and the
// given read jitter, all drawn from the engine's "vclock" stream.
func NewClockSet(e *sim.Engine, nodes int, maxOffset, maxSkew, jitter float64) []*LocalClock {
	rng := e.RNG("vclock")
	clocks := make([]*LocalClock, nodes)
	for i := range clocks {
		off := (2*rng.Float64() - 1) * maxOffset
		skew := (2*rng.Float64() - 1) * maxSkew
		clocks[i] = NewLocalClock(off, skew, jitter, rng)
	}
	return clocks
}

// Probe is one ping-pong clock exchange: the local node records its send
// and receive times and the reference node's timestamp in between.
type Probe struct {
	LocalSend float64 // local clock at probe departure
	Remote    float64 // reference clock when it handled the probe
	LocalRecv float64 // local clock at reply arrival
}

// RTT returns the probe's round-trip time on the local clock.
func (p Probe) RTT() float64 { return p.LocalRecv - p.LocalSend }

// Correction maps a node's local readings onto the reference timebase:
// global = local + Offset + Skew·(local − RefLocal).
type Correction struct {
	Offset   float64 // reference minus local at RefLocal
	Skew     float64 // drift rate of the correction (fraction)
	RefLocal float64 // local reading the fit is centred on
	Residual float64 // RMS of fit residuals — the sync error estimate
	Probes   int     // probes that survived RTT filtering
}

// Global converts a local reading to reference (global) time.
func (c Correction) Global(local float64) float64 {
	return local + c.Offset + c.Skew*(local-c.RefLocal)
}

// Identity is the correction for the reference node itself.
func Identity() Correction { return Correction{} }

// ErrTooFewProbes is returned when fewer than two usable probes remain
// after filtering.
var ErrTooFewProbes = errors.New("vclock: too few probes to estimate a correction")

// rttFilterFactor keeps probes whose RTT is within this factor of the
// minimum observed RTT. Tight RTTs mean symmetric, queue-free paths —
// exactly the probes whose midpoint estimates are trustworthy.
const rttFilterFactor = 1.10

// quartileFloor returns the fallback keep-count: a quarter of the
// probes, at least 2.
func quartileFloor(n int) int {
	w := n / 4
	if w < 2 {
		w = 2
	}
	return w
}

// Estimate fits a Correction from ping-pong probes against the reference
// node. At least two well-separated low-RTT probes are required; more
// probes and wider separation improve the skew estimate.
func Estimate(probes []Probe) (Correction, error) {
	if len(probes) < 2 {
		return Correction{}, fmt.Errorf("%w: got %d", ErrTooFewProbes, len(probes))
	}
	minRTT := math.Inf(1)
	for _, p := range probes {
		if r := p.RTT(); r >= 0 && r < minRTT {
			minRTT = r
		}
	}
	if math.IsInf(minRTT, 1) {
		return Correction{}, errors.New("vclock: all probes have negative RTT")
	}
	var kept []Probe
	for _, p := range probes {
		if r := p.RTT(); r >= 0 && r <= minRTT*rttFilterFactor {
			kept = append(kept, p)
		}
	}
	// Under heavy jitter the relative filter can reject almost
	// everything; fall back to the lowest-RTT quartile, which still
	// prefers symmetric queue-free exchanges.
	if want := quartileFloor(len(probes)); len(kept) < want {
		valid := make([]Probe, 0, len(probes))
		for _, p := range probes {
			if p.RTT() >= 0 {
				valid = append(valid, p)
			}
		}
		sort.Slice(valid, func(i, j int) bool { return valid[i].RTT() < valid[j].RTT() })
		if want > len(valid) {
			want = len(valid)
		}
		kept = valid[:want]
	}
	if len(kept) < 2 {
		return Correction{}, fmt.Errorf("%w: %d probes survived RTT filtering", ErrTooFewProbes, len(kept))
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].LocalSend < kept[j].LocalSend })

	// Offset sample per probe: reference time minus the local midpoint.
	// Fit offset(local) = a + b·(local − ref) by least squares.
	ref := (kept[0].LocalSend + kept[len(kept)-1].LocalRecv) / 2
	var sx, sy, sxx, sxy float64
	for _, p := range kept {
		mid := (p.LocalSend + p.LocalRecv) / 2
		x := mid - ref
		y := p.Remote - mid
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(kept))
	denom := n*sxx - sx*sx
	var a, b float64
	if denom == 0 {
		// All probes at one instant: offset only, no skew information.
		a, b = sy/n, 0
	} else {
		b = (n*sxy - sx*sy) / denom
		a = (sy - b*sx) / n
	}
	var ss float64
	for _, p := range kept {
		mid := (p.LocalSend + p.LocalRecv) / 2
		resid := (p.Remote - mid) - (a + b*(mid-ref))
		ss += resid * resid
	}
	return Correction{
		Offset:   a,
		Skew:     b,
		RefLocal: ref,
		Residual: math.Sqrt(ss / n),
		Probes:   len(kept),
	}, nil
}
