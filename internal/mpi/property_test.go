package mpi

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestRandomPermutationTrafficProperty: for random permutations and
// message sizes, a program where every rank sends to its image and
// receives from its preimage must terminate with every message
// delivered exactly once, in order.
func TestRandomPermutationTrafficProperty(t *testing.T) {
	cfg := cluster.Perseus()
	f := func(seed uint64, sizesRaw [4]uint16, ranksRaw uint8) bool {
		ranks := 2 + int(ranksRaw%14)
		r := sim.NewRNG(seed)
		perm := r.Perm(ranks)
		var sizes []int
		for _, s := range sizesRaw {
			sizes = append(sizes, int(s)%40000)
		}

		e := sim.NewEngine(seed)
		net := netsim.New(e, cfg)
		pl, err := cluster.NewPlacement(&cfg, ranks, 1)
		if err != nil {
			return false
		}
		w := NewWorld(e, net, pl)
		w.SetComputeModel(cluster.ComputeModel{})

		received := make([][]Status, ranks)
		inv := make([]int, ranks)
		for i, p := range perm {
			inv[p] = i
		}
		w.Launch(func(c *Comm) {
			me := c.Rank()
			var reqs []*Request
			for k, size := range sizes {
				reqs = append(reqs, c.IsendData(perm[me], k, size, k))
				reqs = append(reqs, c.Irecv(inv[me], k))
			}
			c.Waitall(reqs...)
			for _, rq := range reqs {
				if !rq.isSend {
					received[me] = append(received[me], rq.st)
				}
			}
		})
		if _, err := w.Wait(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for me := 0; me < ranks; me++ {
			if len(received[me]) != len(sizes) {
				return false
			}
			for _, st := range received[me] {
				if st.Source != inv[me] || st.Size != sizes[st.Tag] || st.Data != st.Tag {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMessageConservationProperty: random many-to-one traffic — the
// total number of deliveries equals the total number of sends, no
// matter the interleaving of sizes and sources.
func TestMessageConservationProperty(t *testing.T) {
	cfg := cluster.Perseus()
	f := func(seed uint64, burst uint8) bool {
		n := 1 + int(burst%20)
		const ranks = 6
		e := sim.NewEngine(seed)
		net := netsim.New(e, cfg)
		pl, err := cluster.NewPlacement(&cfg, ranks, 1)
		if err != nil {
			return false
		}
		w := NewWorld(e, net, pl)
		w.SetComputeModel(cluster.ComputeModel{})
		got := 0
		w.Launch(func(c *Comm) {
			if c.Rank() == 0 {
				for i := 0; i < (ranks-1)*n; i++ {
					st := c.Recv(AnySource, AnyTag)
					if st.Size < 0 {
						t.Errorf("negative size %d", st.Size)
					}
					got++
				}
				return
			}
			r := sim.NewRNG(seed ^ uint64(c.Rank()))
			for i := 0; i < n; i++ {
				c.Send(0, i, r.Intn(30000))
			}
		})
		if _, err := w.Wait(); err != nil {
			return false
		}
		return got == (ranks-1)*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestVirtualTimeMonotoneProperty: a rank's observed clock never goes
// backwards across arbitrary operation sequences.
func TestVirtualTimeMonotoneProperty(t *testing.T) {
	cfg := cluster.Perseus()
	f := func(seed uint64) bool {
		e := sim.NewEngine(seed)
		net := netsim.New(e, cfg)
		pl, err := cluster.NewPlacement(&cfg, 4, 1)
		if err != nil {
			return false
		}
		w := NewWorld(e, net, pl)
		ok := true
		w.Launch(func(c *Comm) {
			r := sim.NewRNG(seed + uint64(c.Rank()))
			prev := c.Now()
			check := func() {
				if now := c.Now(); now < prev {
					ok = false
				} else {
					prev = now
				}
			}
			next := (c.Rank() + 1) % 4
			prevRank := (c.Rank() + 3) % 4
			for i := 0; i < 5; i++ {
				c.Compute(float64(r.Intn(1000)) * 1e-6)
				check()
				c.Sendrecv(next, 0, r.Intn(20000), prevRank, 0)
				check()
				c.Barrier()
				check()
			}
		})
		if _, err := w.Wait(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
