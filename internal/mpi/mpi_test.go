package mpi

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// quietWorld builds a world with deterministic (noise-free) timing.
func quietWorld(t *testing.T, nodes, perNode int, seed uint64) *World {
	t.Helper()
	cfg := cluster.Perseus()
	cfg.JitterSigma = 0
	cfg.SpikeProb = 0
	return worldWith(t, cfg, nodes, perNode, seed)
}

func worldWith(t *testing.T, cfg cluster.Config, nodes, perNode int, seed uint64) *World {
	t.Helper()
	e := sim.NewEngine(seed)
	net := netsim.New(e, cfg)
	pl, err := cluster.NewPlacement(&cfg, nodes, perNode)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(e, net, pl)
	w.SetComputeModel(cluster.ComputeModel{})
	return w
}

func TestSendRecvCarriesData(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	var got Status
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.SendData(1, 7, 100, "payload")
		case 1:
			got = c.Recv(0, 7)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if got.Source != 0 || got.Tag != 7 || got.Size != 100 || got.Data != "payload" {
		t.Errorf("status = %+v", got)
	}
}

func TestEagerSendIsBuffered(t *testing.T) {
	// An eager (small) send must complete locally even though the
	// receiver posts its receive much later.
	w := quietWorld(t, 2, 1, 1)
	var sendDone, recvDone sim.Time
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, 1024)
			sendDone = c.Now()
		case 1:
			c.Compute(1.0) // busy for a full second first
			c.Recv(0, 0)
			recvDone = c.Now()
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if sendDone.Seconds() > 0.01 {
		t.Errorf("eager send blocked until %v", sendDone)
	}
	if recvDone.Seconds() < 1.0 {
		t.Errorf("receive completed at %v, before the receiver was ready", recvDone)
	}
}

func TestRendezvousSendBlocksForReceiver(t *testing.T) {
	// A rendezvous (large) send cannot complete until the receiver posts
	// a matching receive.
	w := quietWorld(t, 2, 1, 1)
	var sendDone sim.Time
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, 65536)
			sendDone = c.Now()
		case 1:
			c.Compute(1.0)
			c.Recv(0, 0)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if sendDone.Seconds() < 1.0 {
		t.Errorf("rendezvous send completed at %v, before the receive was posted", sendDone)
	}
}

func TestEagerBelowLimitRendezvousAtLimit(t *testing.T) {
	cfg := cluster.Perseus()
	for _, tc := range []struct {
		size       int
		rendezvous bool
	}{
		{cfg.EagerLimit - 1, false},
		{cfg.EagerLimit, false}, // the paper's knee sits at 16 KB: the last eager size
		{cfg.EagerLimit + 1, true},
	} {
		w := quietWorld(t, 2, 1, 1)
		var sendDone sim.Time
		w.Launch(func(c *Comm) {
			switch c.Rank() {
			case 0:
				c.Send(1, 0, tc.size)
				sendDone = c.Now()
			case 1:
				c.Compute(0.5)
				c.Recv(0, 0)
			}
		})
		if _, err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		blocked := sendDone.Seconds() >= 0.5
		if blocked != tc.rendezvous {
			t.Errorf("size %d: blocked=%v, want rendezvous=%v", tc.size, blocked, tc.rendezvous)
		}
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	var order []any
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				c.SendData(1, 3, 64, i)
			}
		case 1:
			for i := 0; i < 5; i++ {
				order = append(order, c.Recv(0, 3).Data)
			}
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("messages overtook: %v", order)
		}
	}
}

func TestMixedSizesStayOrdered(t *testing.T) {
	// A big (rendezvous) message followed by a tiny (eager) one on the
	// same tag must still be received in send order.
	w := quietWorld(t, 2, 1, 1)
	var order []any
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			r1 := c.IsendData(1, 0, 100000, "big")
			r2 := c.IsendData(1, 0, 16, "small")
			c.Waitall(r1, r2)
		case 1:
			order = append(order, c.Recv(0, 0).Data)
			order = append(order, c.Recv(0, 0).Data)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Errorf("order = %v", order)
	}
}

func TestWildcards(t *testing.T) {
	w := quietWorld(t, 3, 1, 1)
	var fromAny, anyTag Status
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			fromAny = c.Recv(AnySource, 5)
			anyTag = c.Recv(2, AnyTag)
		case 1:
			c.SendData(0, 5, 10, "from1")
		case 2:
			c.Compute(0.1)
			c.SendData(0, 9, 10, "from2")
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if fromAny.Source != 1 || fromAny.Data != "from1" {
		t.Errorf("AnySource recv got %+v", fromAny)
	}
	if anyTag.Tag != 9 || anyTag.Data != "from2" {
		t.Errorf("AnyTag recv got %+v", anyTag)
	}
}

func TestTagSelectivity(t *testing.T) {
	// A receive for tag 2 must skip an earlier tag-1 message.
	w := quietWorld(t, 2, 1, 1)
	var first, second Status
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.SendData(1, 1, 10, "one")
			c.SendData(1, 2, 10, "two")
		case 1:
			first = c.Recv(0, 2)
			second = c.Recv(0, 1)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if first.Data != "two" || second.Data != "one" {
		t.Errorf("tag matching broken: %v, %v", first.Data, second.Data)
	}
}

func TestProbe(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	var probed Status
	var probedThenRecvd Status
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Compute(0.2)
			c.SendData(1, 4, 321, "x")
		case 1:
			probed = c.Probe(0, 4)
			probedThenRecvd = c.Recv(0, 4)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if probed.Size != 321 || probed.Source != 0 {
		t.Errorf("probe = %+v", probed)
	}
	if probedThenRecvd.Data != "x" {
		t.Errorf("recv after probe = %+v", probedThenRecvd)
	}
}

func TestSendrecvExchangeNoDeadlock(t *testing.T) {
	// Pairwise blocking exchange of rendezvous-size messages would
	// deadlock with plain Send/Recv; Sendrecv must not.
	w := quietWorld(t, 2, 1, 1)
	w.Launch(func(c *Comm) {
		other := 1 - c.Rank()
		st := c.Sendrecv(other, 0, 50000, other, 0)
		if st.Size != 50000 {
			t.Errorf("rank %d got size %d", c.Rank(), st.Size)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	w.Launch(func(c *Comm) {
		c.Recv(1-c.Rank(), 0) // both receive, nobody sends
	})
	_, err := w.Wait()
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	w.Shutdown()
}

func TestWaitany(t *testing.T) {
	w := quietWorld(t, 3, 1, 1)
	var firstIdx int
	var firstStatus Status
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			rs := []*Request{c.Irecv(1, 0), c.Irecv(2, 0)}
			firstIdx, firstStatus = c.Waitany(rs)
			c.Waitall(rs...)
		case 1:
			c.Compute(0.5)
			c.SendData(0, 0, 10, "slow")
		case 2:
			c.SendData(0, 0, 10, "fast")
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if firstIdx != 1 || firstStatus.Data != "fast" {
		t.Errorf("Waitany returned idx %d data %v, want the fast sender", firstIdx, firstStatus.Data)
	}
}

func TestPingPongTimingSane(t *testing.T) {
	// A 2×1 ping-pong of 1 KB messages: the per-hop time must be in the
	// couple-hundred-microsecond range the paper shows for Perseus.
	w := quietWorld(t, 2, 1, 1)
	const reps = 100
	var elapsed sim.Duration
	w.Launch(func(c *Comm) {
		start := c.Now()
		for i := 0; i < reps; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, 1024)
				c.Recv(1, 0)
			} else {
				c.Recv(0, 0)
				c.Send(0, 0, 1024)
			}
		}
		if c.Rank() == 0 {
			elapsed = c.Now().Sub(start)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	oneWay := elapsed.Seconds() / (2 * reps)
	if oneWay < 150e-6 || oneWay > 450e-6 {
		t.Errorf("1KB one-way time = %.1f µs, want 150-450 µs on simulated Perseus", oneWay*1e6)
	}
}

func TestValidationPanics(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	w.Launch(func(c *Comm) {
		if c.Rank() != 0 {
			c.Recv(0, 0)
			return
		}
		for name, f := range map[string]func(){
			"bad dst":      func() { c.Send(5, 0, 10) },
			"negative tag": func() { c.Send(1, -1, 10) },
			"bad size":     func() { c.Send(1, 0, -10) },
			"bad src":      func() { c.Recv(7, 0) },
			"foreign wait": func() { new(Comm).Wait(c.Irecv(1, 9)) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: expected panic", name)
					}
				}()
				f()
			}()
		}
		c.Send(1, 0, 10)
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestLaunchTwicePanics(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	w.Launch(func(c *Comm) {})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on second Launch")
		}
	}()
	w.Launch(func(c *Comm) {})
}

func TestDeterministicExecution(t *testing.T) {
	run := func(seed uint64) sim.Time {
		w := worldWith(t, cluster.Perseus(), 8, 2, seed)
		w.Launch(func(c *Comm) {
			for i := 0; i < 10; i++ {
				other := (c.Rank() + c.Size()/2) % c.Size()
				c.Sendrecv(other, 0, 2048, other, 0)
			}
		})
		end, err := w.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	if a, b := run(42), run(42); a != b {
		t.Errorf("same seed, different end times: %v vs %v", a, b)
	}
	if a, c := run(42), run(43); a == c {
		t.Error("different seeds gave identical end times (suspicious)")
	}
}

func TestFinishTimes(t *testing.T) {
	w := quietWorld(t, 4, 1, 1)
	w.Launch(func(c *Comm) {
		c.Compute(float64(c.Rank()) * 0.1)
	})
	end, err := w.Wait()
	if err != nil {
		t.Fatal(err)
	}
	ft := w.FinishTimes()
	if len(ft) != 4 {
		t.Fatalf("FinishTimes len = %d", len(ft))
	}
	for i := 1; i < 4; i++ {
		if ft[i] <= ft[i-1] {
			t.Errorf("rank %d finished at %v, not after rank %d (%v)", i, ft[i], i-1, ft[i-1])
		}
	}
	if end != ft[3] {
		t.Errorf("Wait returned %v, last finish %v", end, ft[3])
	}
}
