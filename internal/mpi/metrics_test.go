package mpi

import (
	"testing"

	"repro/internal/metrics"
)

// TestProtocolSplitMetrics checks the eager/rendezvous classification
// and the byte ledger against the configured eager limit.
func TestProtocolSplitMetrics(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	limit := w.net.Config().EagerLimit
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, 100)     // eager
			c.Send(1, 2, limit)   // eager (at the limit)
			c.Send(1, 3, limit+1) // rendezvous
			c.Send(1, 4, 4*limit) // rendezvous
		case 1:
			for tag := 1; tag <= 4; tag++ {
				c.Recv(0, tag)
			}
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	s := w.e.Metrics().Snapshot()
	if v, _ := s.Counter("mpi", "sends_eager_total"); v != 2 {
		t.Errorf("sends_eager_total = %d, want 2", v)
	}
	if v, _ := s.Counter("mpi", "sends_rendezvous_total"); v != 2 {
		t.Errorf("sends_rendezvous_total = %d, want 2", v)
	}
	want := uint64(100 + limit + limit + 1 + 4*limit)
	if v, _ := s.Counter("mpi", "send_bytes_total"); v != want {
		t.Errorf("send_bytes_total = %d, want %d", v, want)
	}
}

// TestUnexpectedQueueHighWater sends several eager messages before the
// receiver posts anything, so they all queue as unexpected.
func TestUnexpectedQueueHighWater(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			for tag := 1; tag <= 5; tag++ {
				c.Send(1, tag, 64)
			}
		case 1:
			c.Probe(0, 5) // all five arrived (in-order delivery per pair)
			for tag := 5; tag >= 1; tag-- {
				c.Recv(0, tag)
			}
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	s := w.e.Metrics().Snapshot()
	if v, _ := s.Gauge("mpi", "unexpected_queue_max"); v != 5 {
		t.Errorf("unexpected_queue_max = %d, want 5", v)
	}
}

// TestCollectiveMetrics checks per-operation call and byte counters,
// including Allreduce's composition: it counts under its own label AND
// its constituent Reduce and Bcast tick too.
func TestCollectiveMetrics(t *testing.T) {
	const ranks = 4
	w := quietWorld(t, ranks, 1, 1)
	w.Launch(func(c *Comm) {
		c.Barrier()
		c.Bcast(0, 1000)
		c.Allreduce(500)
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	s := w.e.Metrics().Snapshot()
	calls := func(op string) uint64 {
		v, _ := s.Counter("mpi", "collective_calls_total", metrics.L("op", op))
		return v
	}
	bytes := func(op string) uint64 {
		v, _ := s.Counter("mpi", "collective_bytes_total", metrics.L("op", op))
		return v
	}
	if calls("Barrier") != ranks {
		t.Errorf("Barrier calls = %d, want %d (one per rank)", calls("Barrier"), ranks)
	}
	if calls("Bcast") != 2*ranks { // explicit Bcast + Allreduce's internal one
		t.Errorf("Bcast calls = %d, want %d", calls("Bcast"), 2*ranks)
	}
	if calls("Allreduce") != ranks || calls("Reduce") != ranks {
		t.Errorf("Allreduce/Reduce calls = %d/%d, want %d each",
			calls("Allreduce"), calls("Reduce"), ranks)
	}
	if bytes("Bcast") != uint64(ranks*(1000+500)) {
		t.Errorf("Bcast bytes = %d, want %d", bytes("Bcast"), ranks*(1000+500))
	}
	if bytes("Allreduce") != uint64(ranks*500) {
		t.Errorf("Allreduce bytes = %d, want %d", bytes("Allreduce"), ranks*500)
	}
}
