package mpi

import (
	"testing"

	"repro/internal/sim"
)

func TestSsendWaitsForReceiver(t *testing.T) {
	// Even a tiny synchronous send must block until the receive posts.
	w := quietWorld(t, 2, 1, 1)
	var sendDone sim.Time
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Ssend(1, 0, 16)
			sendDone = c.Now()
		case 1:
			c.Compute(0.7)
			c.Recv(0, 0)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if sendDone.Seconds() < 0.7 {
		t.Errorf("Ssend(16B) completed at %v, before the receive was posted", sendDone)
	}
}

func TestTestPollsWithoutBlocking(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	var polls int
	var got Status
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Compute(0.1)
			c.Send(1, 3, 64)
		case 1:
			r := c.Irecv(0, 3)
			for {
				st, done := c.Test(r)
				if done {
					got = st
					break
				}
				polls++
				c.Compute(0.01) // overlap computation with communication
			}
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if polls == 0 {
		t.Error("Test never returned false while the message was in flight")
	}
	if got.Source != 0 || got.Size != 64 {
		t.Errorf("Test status = %+v", got)
	}
}

func TestIprobe(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	var before, after bool
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Compute(0.2)
			c.SendData(1, 9, 128, "x")
		case 1:
			_, before = c.Iprobe(0, 9) // too early: nothing there
			c.Compute(0.5)
			_, after = c.Iprobe(0, 9) // message has long arrived
			c.Recv(0, 9)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if before {
		t.Error("Iprobe saw a message before it was sent")
	}
	if !after {
		t.Error("Iprobe missed the delivered message")
	}
}

func TestScanIsPrefixPipeline(t *testing.T) {
	// Scan completion times must increase along the pipeline.
	const ranks = 6
	w := quietWorld(t, ranks, 1, 1)
	done := make([]sim.Time, ranks)
	w.Launch(func(c *Comm) {
		c.Scan(1024)
		done[c.Rank()] = c.Now()
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < ranks-1; r++ {
		if done[r] <= done[r-1] {
			t.Errorf("rank %d finished Scan at %v, not after rank %d (%v)",
				r, done[r], r-1, done[r-1])
		}
	}
}

func TestReduceScatterCompletes(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w := quietWorld(t, max(p, 1), 1, 1)
		w.Launch(func(c *Comm) {
			c.ReduceScatter(512)
			c.Barrier()
		})
		if _, err := w.Wait(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSsendValidation(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	w.Launch(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		for name, f := range map[string]func(){
			"bad dst": func() { c.Ssend(9, 0, 1) },
			"bad tag": func() { c.Issend(1, -2, 1) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: expected panic", name)
					}
				}()
				f()
			}()
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}
