package mpi

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
	"repro/internal/trace"
)

// packetKind discriminates the traffic the MPICH/TCP transport produces.
type packetKind int

const (
	pktEager packetKind = iota // envelope + full payload (size < EagerLimit)
	pktRTS                     // rendezvous request-to-send (envelope only)
	pktCTS                     // rendezvous clear-to-send (receiver ready)
	pktData                    // rendezvous payload
)

func (k packetKind) String() string {
	switch k {
	case pktEager:
		return "eager"
	case pktRTS:
		return "rts"
	case pktCTS:
		return "cts"
	case pktData:
		return "data"
	}
	return fmt.Sprintf("packetKind(%d)", int(k))
}

// packet is one transport-level unit travelling between two ranks.
type packet struct {
	kind packetKind
	seq  uint64
	env  *envelope // eager/RTS/data: the message this packet belongs to
	id   uint64    // CTS: the send request being cleared
}

// envelope is a message in flight: the matching key plus payload
// metadata. For rendezvous messages the envelope arrives first as an RTS
// and the payload follows after the CTS handshake.
type envelope struct {
	src, dst int
	ctx      int // matching context: user point-to-point or collective
	tag      int
	size     int
	data     any

	rendezvous  bool
	sendID      uint64   // rendezvous: the sender-side request to clear
	matched     *Request // receive request this envelope was matched to
	dataArrived bool     // payload fully at the destination host
}

// connection resequences packets for one directed rank pair. The
// simulated network can complete a retransmitted message after younger
// messages (exactly like packet loss under TCP); the connection holds the
// younger arrivals back so ranks observe in-order delivery with
// head-of-line blocking, as TCP guarantees.
type connection struct {
	nextSeq uint64
	held    []*packet // out-of-order arrivals, kept sorted by seq
}

// sendPacket injects a packet of the given payload size from src to dst,
// stamping it with the connection's next sequence number.
func (w *World) sendPacket(src, dst int, kind packetKind, bytes int, env *envelope, id uint64) {
	key := connKey{src, dst}
	conn := w.conns[key]
	if conn == nil {
		conn = &connection{}
		w.conns[key] = conn
	}
	pkt := &packet{kind: kind, env: env, id: id}
	pkt.seq = w.seqCounter(key)
	w.net.Transfer(w.place.NodeOf(src), w.place.NodeOf(dst), bytes, func(st netsim.TransferStats) {
		// Surface retransmission timeouts: they are invisible to the MPI
		// program (TCP retries under the covers) but they are exactly the
		// outliers the paper's distribution tails are made of.
		if st.Retries > 0 {
			w.timeouts.Messages++
			w.timeouts.Retries += st.Retries
			if d := st.Delivered.Sub(st.Sent); d > w.timeouts.Worst {
				w.timeouts.Worst = d
			}
			w.rec(src, trace.NetRetry, dst, st.Retries, bytes, "")
		}
		w.arrive(key, pkt)
	})
}

// seqCounters are stored per connection on the sender side; keep them in
// the connection struct's shadow map to avoid a second map lookup.
type seqState struct{ next uint64 }

func (w *World) seqCounter(key connKey) uint64 {
	s := w.seqs[key]
	if s == nil {
		s = &seqState{}
		w.seqs[key] = s
	}
	n := s.next
	s.next++
	return n
}

// arrive delivers a packet to the connection, releasing any consecutive
// run of packets that is now in order.
func (w *World) arrive(key connKey, pkt *packet) {
	conn := w.conns[key]
	if pkt.seq != conn.nextSeq {
		conn.held = append(conn.held, pkt)
		sort.Slice(conn.held, func(i, j int) bool { return conn.held[i].seq < conn.held[j].seq })
		return
	}
	w.handlePacket(key, pkt)
	conn.nextSeq++
	for len(conn.held) > 0 && conn.held[0].seq == conn.nextSeq {
		next := conn.held[0]
		conn.held = conn.held[1:]
		w.handlePacket(key, next)
		conn.nextSeq++
	}
}

// handlePacket runs in event context with packets arriving in order.
func (w *World) handlePacket(key connKey, pkt *packet) {
	switch pkt.kind {
	case pktEager:
		pkt.env.dataArrived = true
		w.ranks[key.dst].arriveEnvelope(w, pkt.env)
	case pktRTS:
		w.ranks[key.dst].arriveEnvelope(w, pkt.env)
	case pktCTS:
		// Back at the sender: stream the payload. The NIC does this
		// asynchronously; the sending rank's CPU is not involved again.
		req := w.sendReqs[pkt.id]
		if req == nil {
			panic(fmt.Sprintf("mpi: CTS for unknown send request %d", pkt.id))
		}
		env := req.env
		w.sendPacket(env.src, env.dst, pktData, env.size, env, 0)
	case pktData:
		env := pkt.env
		env.dataArrived = true
		// Complete the sender side.
		req := w.sendReqs[env.sendID]
		if req == nil {
			panic(fmt.Sprintf("mpi: data for unknown send request %d", env.sendID))
		}
		delete(w.sendReqs, env.sendID)
		w.completeRequest(req, Status{Source: env.src, Tag: env.tag, Size: env.size})
		// Complete the receiver side (the envelope was matched before
		// the CTS went out).
		if env.matched == nil {
			panic("mpi: rendezvous data arrived for unmatched envelope")
		}
		w.completeRecv(env.matched, env)
	default:
		panic(fmt.Sprintf("mpi: unknown packet kind %v", pkt.kind))
	}
}
