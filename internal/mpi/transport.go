package mpi

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/trace"
)

// packetKind discriminates the traffic the MPICH/TCP transport produces.
type packetKind int

const (
	pktEager packetKind = iota // envelope + full payload (size < EagerLimit)
	pktRTS                     // rendezvous request-to-send (envelope only)
	pktCTS                     // rendezvous clear-to-send (receiver ready)
	pktData                    // rendezvous payload
)

func (k packetKind) String() string {
	switch k {
	case pktEager:
		return "eager"
	case pktRTS:
		return "rts"
	case pktCTS:
		return "cts"
	case pktData:
		return "data"
	}
	return fmt.Sprintf("packetKind(%d)", int(k))
}

// packet is one transport-level unit travelling between two ranks.
// Packets are pooled on the World and recycled after handlePacket, and
// they double as the network completion receiver (netsim.Receiver) so a
// send costs no per-packet closure.
type packet struct {
	w     *World
	key   connKey
	bytes int // wire payload size, for retry trace records
	kind  packetKind
	seq   uint64
	env   *envelope // eager/RTS/data: the message this packet belongs to
	id    uint64    // CTS: the send request being cleared
}

// Deliver runs in event context when the network finishes the transfer.
func (p *packet) Deliver(st netsim.TransferStats) {
	w := p.w
	// Surface retransmission timeouts: they are invisible to the MPI
	// program (TCP retries under the covers) but they are exactly the
	// outliers the paper's distribution tails are made of.
	if st.Retries > 0 {
		w.timeouts.Messages++
		w.timeouts.Retries += st.Retries
		if d := st.Delivered.Sub(st.Sent); d > w.timeouts.Worst {
			w.timeouts.Worst = d
		}
		w.rec(p.key.src, trace.NetRetry, p.key.dst, st.Retries, p.bytes, "")
	}
	w.arrive(p.key, p)
}

// envelope is a message in flight: the matching key plus payload
// metadata. For rendezvous messages the envelope arrives first as an RTS
// and the payload follows after the CTS handshake.
type envelope struct {
	src, dst int
	ctx      int // matching context: user point-to-point or collective
	tag      int
	size     int
	data     any

	rendezvous  bool
	sendID      uint64   // rendezvous: the sender-side request to clear
	matched     *Request // receive request this envelope was matched to
	dataArrived bool     // payload fully at the destination host
}

// connection resequences packets for one directed rank pair. The
// simulated network can complete a retransmitted message after younger
// messages (exactly like packet loss under TCP); the connection holds the
// younger arrivals back so ranks observe in-order delivery with
// head-of-line blocking, as TCP guarantees.
type connection struct {
	nextSeq  uint64    // next sequence number to deliver (receive side)
	nextSend uint64    // next sequence number to stamp (send side)
	held     []*packet // out-of-order arrivals, kept sorted by seq
}

// sendPacket injects a packet of the given payload size from src to dst,
// stamping it with the connection's next sequence number.
func (w *World) sendPacket(src, dst int, kind packetKind, bytes int, env *envelope, id uint64) {
	key := connKey{src, dst}
	conn := w.conns[key]
	if conn == nil {
		conn = &connection{}
		w.conns[key] = conn
	}
	pkt := w.acquirePacket()
	pkt.key, pkt.bytes = key, bytes
	pkt.kind, pkt.env, pkt.id = kind, env, id
	pkt.seq = conn.nextSend
	conn.nextSend++
	w.net.TransferTo(w.place.NodeOf(src), w.place.NodeOf(dst), bytes, pkt)
}

// acquirePacket takes a packet from the World's pool, or makes one.
func (w *World) acquirePacket() *packet {
	if n := len(w.pktFree) - 1; n >= 0 {
		pkt := w.pktFree[n]
		w.pktFree[n] = nil
		w.pktFree = w.pktFree[:n]
		return pkt
	}
	return &packet{w: w}
}

// releasePacket recycles a handled packet, dropping the envelope
// reference so the pool does not pin completed messages.
func (w *World) releasePacket(pkt *packet) {
	pkt.env = nil
	w.pktFree = append(w.pktFree, pkt)
}

// arrive delivers a packet to the connection, releasing any consecutive
// run of packets that is now in order.
//
//detlint:hotpath
func (w *World) arrive(key connKey, pkt *packet) {
	conn := w.conns[key]
	if pkt.seq != conn.nextSeq {
		// Insert in seq order (binary search: held is already sorted).
		lo, hi := 0, len(conn.held)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if conn.held[mid].seq < pkt.seq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		conn.held = append(conn.held, nil)
		copy(conn.held[lo+1:], conn.held[lo:])
		conn.held[lo] = pkt
		return
	}
	w.handlePacket(key, pkt)
	w.releasePacket(pkt)
	conn.nextSeq++
	for len(conn.held) > 0 && conn.held[0].seq == conn.nextSeq {
		next := conn.held[0]
		n := len(conn.held) - 1
		copy(conn.held, conn.held[1:])
		conn.held[n] = nil
		conn.held = conn.held[:n]
		w.handlePacket(key, next)
		w.releasePacket(next)
		conn.nextSeq++
	}
}

// handlePacket runs in event context with packets arriving in order.
func (w *World) handlePacket(key connKey, pkt *packet) {
	switch pkt.kind {
	case pktEager:
		pkt.env.dataArrived = true
		w.ranks[key.dst].arriveEnvelope(w, pkt.env)
	case pktRTS:
		w.ranks[key.dst].arriveEnvelope(w, pkt.env)
	case pktCTS:
		// Back at the sender: stream the payload. The NIC does this
		// asynchronously; the sending rank's CPU is not involved again.
		req := w.sendReqs[pkt.id]
		if req == nil {
			panic(fmt.Sprintf("mpi: CTS for unknown send request %d", pkt.id))
		}
		env := req.env
		w.sendPacket(env.src, env.dst, pktData, env.size, env, 0)
	case pktData:
		env := pkt.env
		env.dataArrived = true
		// Complete the sender side.
		req := w.sendReqs[env.sendID]
		if req == nil {
			panic(fmt.Sprintf("mpi: data for unknown send request %d", env.sendID))
		}
		delete(w.sendReqs, env.sendID)
		w.completeRequest(req, Status{Source: env.src, Tag: env.tag, Size: env.size})
		// Complete the receiver side (the envelope was matched before
		// the CTS went out).
		if env.matched == nil {
			panic("mpi: rendezvous data arrived for unmatched envelope")
		}
		w.completeRecv(env.matched, env)
	default:
		panic(fmt.Sprintf("mpi: unknown packet kind %v", pkt.kind))
	}
}
