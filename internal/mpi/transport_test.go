package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestConnectionResequencing drives the transport's per-pair reorder
// buffer directly: packets handed to arrive() out of sequence order must
// be processed in sequence order (TCP in-order delivery with
// head-of-line blocking).
func TestConnectionResequencing(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	key := connKey{0, 1}
	w.conns[key] = &connection{}

	var order []uint64
	mkPkt := func(seq uint64) *packet {
		env := &envelope{src: 0, dst: 1, ctx: ctxUser, tag: int(seq), size: 1}
		return &packet{kind: pktEager, seq: seq, env: env}
	}
	// Intercept handling by observing the unexpected queue after each
	// arrival; simpler: deliver and inspect rank 1's unexpected queue
	// (envelopes arrive in handled order).
	deliver := func(seq uint64) {
		w.arrive(key, mkPkt(seq))
		// Record newly handled envelopes.
		for len(order) < len(w.ranks[1].unexpected) {
			env := w.ranks[1].unexpected[len(order)]
			order = append(order, uint64(env.tag))
		}
	}
	deliver(2) // held: not in order
	if len(order) != 0 {
		t.Fatalf("out-of-order packet processed early: %v", order)
	}
	deliver(0) // releases 0 only
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("after seq 0: %v", order)
	}
	deliver(1) // releases 1 and the held 2
	if len(order) != 3 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("resequencing broken: %v", order)
	}
}

// TestRetransmissionPreservesOrder: saturate the network so retries
// occur, and verify per-pair delivery order survives end to end.
func TestRetransmissionPreservesOrder(t *testing.T) {
	w := worldWith(t, saturatingConfig(), 48, 1, 9)
	var got [][]any
	w.Launch(func(c *Comm) {
		const msgs = 6
		half := c.Size() / 2
		if c.Rank() < half {
			partner := c.Rank() + half
			for i := 0; i < msgs; i++ {
				c.Wait(c.IsendData(partner, 0, 30000, i))
			}
		} else {
			var seq []any
			for i := 0; i < msgs; i++ {
				seq = append(seq, c.Recv(c.Rank()-half, 0).Data)
			}
			got = append(got, seq)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if w.net.Stats().Retries == 0 {
		t.Skip("no retries triggered; ordering not exercised under loss")
	}
	for _, seq := range got {
		for i, v := range seq {
			if v != i {
				t.Fatalf("receiver saw %v, want in-order 0..%d", seq, len(seq)-1)
			}
		}
	}
}

// saturatingConfig makes drops very likely for bulk cross-switch bursts.
func saturatingConfig() cluster.Config {
	cfg := cluster.Perseus()
	cfg.StackBufferBytes = 65536
	cfg.RTO = 0.01 // keep the test fast
	return cfg
}

func TestWorldShutdownAfterHorizon(t *testing.T) {
	w := quietWorld(t, 4, 1, 1)
	w.Launch(func(c *Comm) {
		c.Compute(100) // far beyond the horizon
	})
	if _, err := w.Engine().Run(sim.TimeFromSeconds(1)); err != nil {
		t.Fatal(err)
	}
	w.Shutdown() // must release rank goroutines without deadlocking
}
