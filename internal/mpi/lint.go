package mpi

import (
	"fmt"
	"sort"
)

// Severity levels of runtime lint findings.
const (
	SeverityError   = "error"
	SeverityWarning = "warning"
	SeverityInfo    = "info"
)

// Rules the runtime linter can report. They complement the static rules
// in internal/mpilint: these fire on behaviour only visible during an
// execution (leaked request handles, timing-dependent wildcard matches,
// an actual deadlock).
const (
	RulePeerRange     = "peer-range"         // send/recv peer outside [0, Size)
	RuleLeakedRequest = "leaked-request"     // nonblocking request never Wait/Test-ed
	RuleUnconsumed    = "unconsumed-message" // message never received by finalize
	RuleWildcardRace  = "wildcard-race"      // AnySource receive with several candidates
	RuleDeadlock      = "deadlock"           // rank blocked forever

	// RulePatternMatrix flags a group-to-group pattern matrix pair that
	// could never execute: a rank outside the placement, a self-pair, or
	// a non-positive message count. Reported by mpibench's pattern
	// validation before any engine spins up, so a bad matrix is a clean
	// error instead of a mid-run peer-range panic.
	RulePatternMatrix = "pattern-matrix"
)

// Finding is one structured runtime diagnostic. internal/mpilint
// converts these into its richer Finding type for reporting.
type Finding struct {
	Severity string
	Rule     string
	Rank     int
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("rank %d: %s[%s]: %s", f.Rank, f.Severity, f.Rule, f.Message)
}

// Linter is the World's lint mode: it shadows every user-level request
// and message so that, at finalize (or at a deadlock), communication
// left dangling can be reported instead of silently dropped. All access
// happens in engine context — rank goroutines run strictly interleaved —
// so no locking is needed.
type Linter struct {
	findings []Finding

	// outstanding holds user-context requests created but not yet
	// finalised by Wait/Waitall/Waitany/Test.
	outstanding map[*Request]struct{}

	// wildcardWarned limits wildcard-race findings to one per rank so a
	// receive loop does not repeat the same diagnosis thousands of times.
	wildcardWarned map[int]bool
}

// EnableLint switches the job into lint mode and returns the linter that
// accumulates findings. Call it before Launch.
func (w *World) EnableLint() *Linter {
	if w.lint == nil {
		w.lint = &Linter{
			outstanding:    make(map[*Request]struct{}),
			wildcardWarned: make(map[int]bool),
		}
	}
	return w.lint
}

// Lint returns the job's linter, or nil when lint mode is off.
func (w *World) Lint() *Linter { return w.lint }

// Findings returns the accumulated findings sorted by rank, rule and
// message for deterministic output.
func (l *Linter) Findings() []Finding {
	out := make([]Finding, len(l.findings))
	copy(out, l.findings)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// Count returns how many findings have the given severity.
func (l *Linter) Count(severity string) int {
	n := 0
	for _, f := range l.findings {
		if f.Severity == severity {
			n++
		}
	}
	return n
}

func (l *Linter) record(severity, rule string, rank int, format string, args ...any) {
	l.findings = append(l.findings, Finding{
		Severity: severity, Rule: rule, Rank: rank,
		Message: fmt.Sprintf(format, args...),
	})
}

// trackRequest shadows a newly created user-context request.
func (l *Linter) trackRequest(r *Request) {
	if r.ctx == ctxUser {
		l.outstanding[r] = struct{}{}
	}
}

// requestWaited clears a request once the program finalises it.
func (l *Linter) requestWaited(r *Request) {
	delete(l.outstanding, r)
}

// checkWildcard inspects a freshly posted AnySource receive: if messages
// from several distinct sources are already queued, which one the receive
// returns depends on arrival order — a nondeterminism worth flagging.
func (l *Linter) checkWildcard(rs *rankState, r *Request) {
	if r.ctx != ctxUser || r.src != AnySource {
		return
	}
	rank := r.c.rank
	if l.wildcardWarned[rank] {
		return
	}
	sources := map[int]bool{}
	for _, env := range rs.unexpected {
		if matches(r, env) {
			sources[env.src] = true
		}
	}
	if len(sources) < 2 {
		return
	}
	l.wildcardWarned[rank] = true
	var list []int
	for s := range sources {
		list = append(list, s)
	}
	sort.Ints(list)
	l.record(SeverityWarning, RuleWildcardRace, rank,
		"Recv(ANY_SOURCE, tag %d) has queued candidates from ranks %v; the match is arrival-order dependent",
		r.tag, list)
}

// diagnoseDeadlock turns an engine deadlock into per-rank findings
// naming each stuck rank, the operation it is blocked in, and its
// dangling requests and messages.
func (l *Linter) diagnoseDeadlock(w *World) {
	for rank, rs := range w.ranks {
		proc := rs.comm.proc
		if proc == nil || proc.Done() {
			continue
		}
		msg := "blocked"
		if reason := proc.BlockedOn(); reason != "" {
			msg = "blocked in " + reason
		}
		if pend := l.pendingOps(rank); len(pend) > 0 {
			msg += fmt.Sprintf("; outstanding: %v", pend)
		}
		if n := len(userEnvelopes(rs)); n > 0 {
			msg += fmt.Sprintf("; %d unreceived message(s) queued", n)
		}
		l.record(SeverityError, RuleDeadlock, rank, "%s", msg)
	}
}

// pendingOps describes a rank's outstanding requests, sorted for
// deterministic reports.
func (l *Linter) pendingOps(rank int) []string {
	var out []string
	for r := range l.outstanding {
		if r.c.rank == rank {
			out = append(out, r.BlockReason())
		}
	}
	sort.Strings(out)
	return out
}

// userEnvelopes lists a rank's queued user-context messages.
func userEnvelopes(rs *rankState) []*envelope {
	var out []*envelope
	for _, env := range rs.unexpected {
		if env.ctx == ctxUser {
			out = append(out, env)
		}
	}
	return out
}

// finalize runs after every rank returned: requests never finalised and
// messages never received are resource leaks MPI_Finalize would have
// hidden.
func (l *Linter) finalize(w *World) {
	// Collect and sort before recording: iterating the map directly made
	// the raw findings order (everything before the Findings() sort,
	// i.e. Count and any future streaming consumer) depend on map order.
	leaked := make([]*Request, 0, len(l.outstanding))
	for r := range l.outstanding {
		leaked = append(leaked, r)
	}
	sort.Slice(leaked, func(i, j int) bool {
		if leaked[i].c.rank != leaked[j].c.rank {
			return leaked[i].c.rank < leaked[j].c.rank
		}
		return leaked[i].BlockReason() < leaked[j].BlockReason()
	})
	for _, r := range leaked {
		rank := r.c.rank
		switch {
		case !r.done && !r.isSend:
			l.record(SeverityWarning, RuleLeakedRequest, rank,
				"%s posted but never matched or waited", r.BlockReason())
		default:
			l.record(SeverityWarning, RuleLeakedRequest, rank,
				"%s never completed with Wait/Test", r.BlockReason())
		}
	}
	for rank, rs := range w.ranks {
		for _, env := range userEnvelopes(rs) {
			l.record(SeverityWarning, RuleUnconsumed, rank,
				"message from rank %d tag %d size %d was never received", env.src, env.tag, env.size)
		}
	}
}
