package mpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Additional MPI operations beyond the core set: synchronous sends,
// nonblocking tests and probes, and the remaining MPI-1 collectives
// (Scan, Reduce_scatter). MPICH 1.2.0 provided all of these.

// testPollCost is the CPU time one MPI_Test/MPI_Iprobe poll of the
// progress engine consumes (a couple of cache-missing queue checks).
const testPollCost = 0.5e-6

// Issend starts a synchronous-mode send: the request completes only
// when the receiver has matched the message, regardless of size. MPICH
// implements it with the rendezvous protocol even for small payloads.
func (c *Comm) Issend(dst, tag, size int) *Request {
	c.checkPeer("Issend to", dst)
	if tag < 0 {
		panic(fmt.Sprintf("mpi: rank %d: send tag %d must be non-negative", c.rank, tag))
	}
	if size < 0 {
		panic(fmt.Sprintf("mpi: rank %d: negative message size %d", c.rank, size))
	}
	cfg := c.w.net.Config()
	c.w.rec(c.rank, trace.SendStart, dst, tag, size, "")
	c.hostCost(cfg.SendOverhead, size)
	env := &envelope{src: c.rank, dst: dst, ctx: ctxUser, tag: tag, size: size}
	r := &Request{c: c, isSend: true, ctx: ctxUser, src: c.rank, tag: tag, env: env}
	if c.w.lint != nil {
		c.w.lint.trackRequest(r)
	}
	env.rendezvous = true
	c.w.nextSendID++
	env.sendID = c.w.nextSendID
	c.w.sendReqs[env.sendID] = r
	c.w.sendPacket(c.rank, dst, pktRTS, cfg.CtrlBytes, env, 0)
	return r
}

// Ssend is the blocking synchronous send: returns only once the
// receiver has started receiving the message.
func (c *Comm) Ssend(dst, tag, size int) {
	c.Wait(c.Issend(dst, tag, size))
}

// Test reports, without blocking, whether the request has completed; on
// completion it finalises the request exactly like Wait (charging the
// receive pickup cost) and returns its status.
func (c *Comm) Test(r *Request) (Status, bool) {
	if r.c != c {
		panic("mpi: Test on a request from another rank")
	}
	if !r.done {
		// MPI_Test polls the progress engine, which costs real CPU
		// time; charging it also guarantees a bare Test spin loop
		// advances virtual time instead of livelocking the simulation.
		c.proc.Sleep(sim.DurationFromSeconds(testPollCost))
		if !r.done {
			return Status{}, false
		}
	}
	c.chargeCompletion(r)
	return r.st, true
}

// Iprobe reports whether a message matching (src, tag) is available
// without consuming or waiting for it.
func (c *Comm) Iprobe(src, tag int) (Status, bool) {
	if src != AnySource {
		c.checkPeer("Iprobe", src)
	}
	c.proc.Sleep(sim.DurationFromSeconds(testPollCost))
	if env := c.w.ranks[c.rank].findUnexpected(ctxUser, src, tag); env != nil {
		return Status{Source: env.src, Tag: env.tag, Size: env.size, Data: env.data}, true
	}
	return Status{}, false
}

// Internal tags for the extra collectives.
const (
	tagScan = iota + 100 // distinct from the core collective tags
)

// Scan computes an inclusive prefix reduction: rank i receives the
// combination of contributions 0..i. The classic linear pipeline: each
// rank receives from rank-1, combines, and forwards to rank+1.
func (c *Comm) Scan(size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Scan")
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Scan")
	p := c.Size()
	if p == 1 {
		return
	}
	if c.rank > 0 {
		c.collRecv(c.rank-1, tagScan)
	}
	if c.rank < p-1 {
		c.collSend(c.rank+1, tagScan, size)
	}
}

// ReduceScatter combines a size·P vector across all ranks and leaves
// the i-th size-byte block on rank i (MPICH 1.2: reduce to rank 0, then
// scatter the blocks).
func (c *Comm) ReduceScatter(size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "ReduceScatter")
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "ReduceScatter")
	p := c.Size()
	if p == 1 {
		return
	}
	c.Reduce(0, size*p)
	c.Scatter(0, size)
}
