package mpi

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Status describes a completed receive (or, for sends, the message that
// was sent).
type Status struct {
	Source int
	Tag    int
	Size   int
	Data   any
}

// Request is a handle to an outstanding nonblocking operation.
type Request struct {
	c      *Comm
	isSend bool

	// Receive matching key.
	ctx, src, tag int

	env         *envelope
	done        bool
	st          Status
	completedAt sim.Time
	cpuCharged  bool
}

// Done reports whether the operation has completed (test without blocking).
func (r *Request) Done() bool { return r.done }

// CompletedAt returns the virtual time the operation completed; only
// meaningful once Done reports true.
func (r *Request) CompletedAt() sim.Time { return r.completedAt }

// Comm is one rank's handle to the job — the equivalent of
// MPI_COMM_WORLD seen from that rank. All methods must be called from
// the rank's own program.
type Comm struct {
	w    *World
	rank int
	proc *sim.Proc
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the job.
func (c *Comm) Size() int { return c.w.Size() }

// Now returns the current virtual time.
func (c *Comm) Now() sim.Time { return c.proc.Now() }

// World returns the job this communicator belongs to.
func (c *Comm) World() *World { return c.w }

// hostCost occupies the rank's CPU for an MPI-call overhead: a base cost
// plus a per-byte copy cost, with multiplicative jitter and occasional
// OS scheduling spikes.
func (c *Comm) hostCost(base float64, bytes int) {
	cfg := c.w.net.Config()
	d := base + float64(bytes)*cfg.PerByteCPU
	if cfg.JitterSigma > 0 {
		f := 1 + cfg.JitterSigma*c.w.hosts.NormFloat64()
		if f < 0.5 {
			f = 0.5
		}
		d *= f
	}
	if cfg.SpikeProb > 0 && c.w.hosts.Bool(cfg.SpikeProb) {
		d += cfg.SpikeMin + (cfg.SpikeMax-cfg.SpikeMin)*c.w.hosts.Float64()
	}
	// NodeSlow faults stretch host costs by the factor active when the
	// call starts (a window closing mid-call keeps the stretched cost).
	d *= c.w.slowFactor(c.rank)
	c.proc.Sleep(sim.DurationFromSeconds(d))
}

// Compute occupies the rank's CPU for a serial code segment of the given
// nominal duration, with the cluster's compute jitter applied. It is the
// execution-side counterpart of PEVPM's Serial directive.
func (c *Comm) Compute(seconds float64) {
	c.w.rec(c.rank, trace.ComputeStart, -1, 0, 0, "")
	d := c.w.compute.Duration(seconds, c.w.cpu) * c.w.slowFactor(c.rank)
	c.proc.Sleep(sim.DurationFromSeconds(d))
	c.w.rec(c.rank, trace.ComputeEnd, -1, 0, 0, "")
}

// checkPeer validates a peer rank. In lint mode the violation is first
// recorded as a structured finding so it survives the panic that aborts
// the simulation and can be reported as a diagnostic.
func (c *Comm) checkPeer(op string, peer int) {
	if peer < 0 || peer >= c.Size() {
		msg := fmt.Sprintf("%s peer %d out of range [0,%d)", op, peer, c.Size())
		if c.w.lint != nil {
			c.w.lint.record(SeverityError, RulePeerRange, c.rank, "%s", msg)
		}
		panic(fmt.Sprintf("mpi: rank %d: %s", c.rank, msg))
	}
}

// Isend starts a nonblocking standard send of size bytes to dst. For
// messages at or under the eager limit the request completes as soon as the
// payload is handed to the transport (MPICH buffers it); at or above the
// limit the rendezvous protocol runs and the request completes when the
// payload has reached the destination host.
func (c *Comm) Isend(dst, tag, size int) *Request {
	return c.isend(ctxUser, dst, tag, size, nil)
}

// IsendData is Isend carrying an opaque payload for the receiver.
func (c *Comm) IsendData(dst, tag, size int, data any) *Request {
	return c.isend(ctxUser, dst, tag, size, data)
}

func (c *Comm) isend(ctx, dst, tag, size int, data any) *Request {
	c.checkPeer("Isend to", dst)
	if ctx == ctxUser {
		c.w.rec(c.rank, trace.SendStart, dst, tag, size, "")
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: rank %d: send tag %d must be non-negative", c.rank, tag))
	}
	if size < 0 {
		panic(fmt.Sprintf("mpi: rank %d: negative message size %d", c.rank, size))
	}
	cfg := c.w.net.Config()
	c.hostCost(cfg.SendOverhead, size)

	env := &envelope{src: c.rank, dst: dst, ctx: ctx, tag: tag, size: size, data: data}
	r := &Request{c: c, isSend: true, ctx: ctx, src: c.rank, tag: tag, env: env}
	if c.w.lint != nil {
		c.w.lint.trackRequest(r)
	}
	c.w.mSendBytes.Add(uint64(size))
	if size <= cfg.EagerLimit {
		// Eager: payload travels with the envelope; locally complete.
		c.w.mEager.Inc()
		c.w.sendPacket(c.rank, dst, pktEager, size, env, 0)
		c.w.completeRequest(r, Status{Source: c.rank, Tag: tag, Size: size})
		return r
	}
	// Rendezvous: announce with an RTS and wait for clearance.
	c.w.mRendezvous.Inc()
	env.rendezvous = true
	c.w.nextSendID++
	env.sendID = c.w.nextSendID
	c.w.sendReqs[env.sendID] = r
	c.w.sendPacket(c.rank, dst, pktRTS, cfg.CtrlBytes, env, 0)
	return r
}

// Irecv posts a nonblocking receive matching (src, tag); src may be
// AnySource and tag may be AnyTag.
func (c *Comm) Irecv(src, tag int) *Request {
	return c.irecv(ctxUser, src, tag)
}

func (c *Comm) irecv(ctx, src, tag int) *Request {
	if src != AnySource {
		c.checkPeer("Irecv from", src)
	}
	if ctx == ctxUser {
		c.w.rec(c.rank, trace.RecvPost, src, tag, 0, "")
	}
	if tag < AnyTag {
		panic(fmt.Sprintf("mpi: rank %d: recv tag %d invalid", c.rank, tag))
	}
	r := &Request{c: c, ctx: ctx, src: src, tag: tag}
	if c.w.lint != nil {
		c.w.lint.trackRequest(r)
	}
	c.w.ranks[c.rank].postRecv(c.w, r)
	return r
}

// Wait blocks until the request completes and returns its status. For
// receives, the host-side completion cost (interrupt handling plus the
// copy out of socket buffers) is charged here.
func (c *Comm) Wait(r *Request) Status {
	if r.c != c {
		panic("mpi: Wait on a request from another rank")
	}
	for !r.done {
		c.proc.BlockOn(r)
	}
	c.chargeCompletion(r)
	return r.st
}

// Waitall blocks until every request completes.
func (c *Comm) Waitall(rs ...*Request) {
	for _, r := range rs {
		if r.c != c {
			panic("mpi: Waitall on a request from another rank")
		}
	}
	for {
		allDone := true
		var pending *Request
		for _, r := range rs {
			if !r.done {
				allDone = false
				pending = r
				break
			}
		}
		if allDone {
			break
		}
		c.proc.BlockOn(pending)
	}
	for _, r := range rs {
		c.chargeCompletion(r)
	}
}

// Waitany blocks until at least one request completes, and returns the
// index of the earliest-completing one along with its status.
func (c *Comm) Waitany(rs []*Request) (int, Status) {
	if len(rs) == 0 {
		panic("mpi: Waitany on empty request list")
	}
	for {
		best := -1
		for i, r := range rs {
			if r.c != c {
				panic("mpi: Waitany on a request from another rank")
			}
			if r.done && !r.cpuCharged {
				if best < 0 || r.completedAt < rs[best].completedAt {
					best = i
				}
			}
		}
		if best >= 0 {
			c.chargeCompletion(rs[best])
			return best, rs[best].st
		}
		c.proc.Block(fmt.Sprintf("Waitany(%d requests)", len(rs)))
	}
}

// chargeCompletion pays the receive-side CPU cost exactly once.
func (c *Comm) chargeCompletion(r *Request) {
	if r.cpuCharged {
		return
	}
	r.cpuCharged = true
	if c.w.lint != nil {
		c.w.lint.requestWaited(r)
	}
	if !r.isSend {
		c.hostCost(c.w.net.Config().RecvOverhead, r.st.Size)
		if r.ctx == ctxUser {
			c.w.rec(c.rank, trace.RecvEnd, r.st.Source, r.st.Tag, r.st.Size, "")
		}
		return
	}
	if r.ctx == ctxUser {
		c.w.rec(c.rank, trace.SendEnd, r.env.dst, r.tag, r.env.size, "")
	}
}

// BlockReason describes the pending operation for deadlock reports. Wait
// and Waitall park on the request itself (sim.BlockReasoner) so the hot
// path stores one interface word instead of formatting this string on
// every block iteration.
func (r *Request) BlockReason() string {
	if r.isSend {
		return fmt.Sprintf("Wait(send to %d tag %d size %d)", r.env.dst, r.tag, r.env.size)
	}
	return fmt.Sprintf("Wait(recv src %d tag %d)", r.src, r.tag)
}

// Send is a blocking standard send: for eager messages it returns once
// the payload is buffered locally; for rendezvous messages it blocks
// until the payload reaches the destination.
func (c *Comm) Send(dst, tag, size int) {
	c.Wait(c.Isend(dst, tag, size))
}

// SendData is Send carrying an opaque payload.
func (c *Comm) SendData(dst, tag, size int, data any) {
	c.Wait(c.IsendData(dst, tag, size, data))
}

// Recv blocks until a matching message arrives and returns its status.
func (c *Comm) Recv(src, tag int) Status {
	return c.Wait(c.Irecv(src, tag))
}

// Sendrecv posts both operations concurrently and waits for both, the
// deadlock-free exchange idiom.
func (c *Comm) Sendrecv(dst, sendTag, size, src, recvTag int) Status {
	rr := c.Irecv(src, recvTag)
	sr := c.Isend(dst, sendTag, size)
	c.Waitall(sr, rr)
	return rr.st
}

// Probe blocks until a message matching (src, tag) is available without
// consuming it, returning the envelope's status. For rendezvous messages
// the payload may not have arrived yet, but its size is known.
func (c *Comm) Probe(src, tag int) Status {
	if src != AnySource {
		c.checkPeer("Probe", src)
	}
	for {
		if env := c.w.ranks[c.rank].findUnexpected(ctxUser, src, tag); env != nil {
			return Status{Source: env.src, Tag: env.tag, Size: env.size, Data: env.data}
		}
		c.proc.Block(fmt.Sprintf("Probe(src %d tag %d)", src, tag))
	}
}
