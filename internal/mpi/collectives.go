package mpi

import (
	"fmt"

	"repro/internal/trace"
)

// Collective algorithms as MPICH 1.2.0 implemented them: dissemination
// barrier, binomial-tree broadcast/reduce/gather/scatter, reduce+bcast
// allreduce, ring allgather and pairwise-exchange alltoall. Collective
// traffic uses its own matching context so user wildcards cannot steal
// internal messages; correctness across back-to-back collectives follows
// from per-pair in-order delivery.

// Internal tags, one per collective operation.
const (
	tagBarrier = iota + 1
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
)

// collSend/collRecv are blocking helpers in the collective context.
func (c *Comm) collSend(dst, tag, size int) { c.Wait(c.isend(ctxCollective, dst, tag, size, nil)) }
func (c *Comm) collRecv(src, tag int)       { c.Wait(c.irecv(ctxCollective, src, tag)) }

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ceil(log2 P) rounds of pairwise zero-byte exchanges).
func (c *Comm) Barrier() {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, 0, "Barrier")
	c.w.collMetric(tagBarrier, 0)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, 0, "Barrier")
	p := c.Size()
	if p == 1 {
		return
	}
	for k := 1; k < p; k <<= 1 {
		dst := (c.rank + k) % p
		src := (c.rank - k%p + p) % p
		sr := c.isend(ctxCollective, dst, tagBarrier, 0, nil)
		rr := c.irecv(ctxCollective, src, tagBarrier)
		c.Waitall(sr, rr)
	}
}

// Bcast distributes size bytes from root to every rank down a binomial
// tree. Every rank must call it with the same root and size.
func (c *Comm) Bcast(root, size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Bcast")
	c.w.collMetric(tagBcast, size)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Bcast")
	c.checkPeer("Bcast root", root)
	p := c.Size()
	if p == 1 {
		return
	}
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (rel - mask + root) % p
			c.collRecv(src, tagBcast)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (rel + mask + root) % p
			c.collSend(dst, tagBcast, size)
		}
		mask >>= 1
	}
}

// Reduce combines size bytes from every rank onto root up a binomial
// tree (the combining computation itself is charged via the per-byte
// host cost of each receive).
func (c *Comm) Reduce(root, size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Reduce")
	c.w.collMetric(tagReduce, size)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Reduce")
	c.checkPeer("Reduce root", root)
	p := c.Size()
	if p == 1 {
		return
	}
	rel := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < p {
				c.collRecv((srcRel+root)%p, tagReduce)
			}
		} else {
			dst := ((rel &^ mask) + root) % p
			c.collSend(dst, tagReduce, size)
			break
		}
		mask <<= 1
	}
}

// Allreduce combines size bytes across all ranks, leaving the result
// everywhere (MPICH 1.2 style: reduce to rank 0, then broadcast).
func (c *Comm) Allreduce(size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Allreduce")
	c.w.collMetric(0, size)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Allreduce")
	c.Reduce(0, size)
	c.Bcast(0, size)
}

// Gather collects size bytes from every rank onto root along a binomial
// tree; interior nodes forward their whole accumulated subtree.
func (c *Comm) Gather(root, size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Gather")
	c.w.collMetric(tagGather, size)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Gather")
	c.checkPeer("Gather root", root)
	p := c.Size()
	if p == 1 {
		return
	}
	rel := (c.rank - root + p) % p
	held := size // bytes accumulated at this rank so far
	mask := 1
	for mask < p {
		if rel&mask == 0 {
			srcRel := rel | mask
			if srcRel < p {
				blocks := mask
				if p-srcRel < blocks {
					blocks = p - srcRel
				}
				c.collRecv((srcRel+root)%p, tagGather)
				held += blocks * size
			}
		} else {
			dst := ((rel &^ mask) + root) % p
			c.collSend(dst, tagGather, held)
			break
		}
		mask <<= 1
	}
}

// Scatter distributes size bytes to every rank from root, the mirror of
// Gather: each interior node receives its whole subtree's data and
// forwards the halves downward.
func (c *Comm) Scatter(root, size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Scatter")
	c.w.collMetric(tagScatter, size)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Scatter")
	c.checkPeer("Scatter root", root)
	p := c.Size()
	if p == 1 {
		return
	}
	rel := (c.rank - root + p) % p
	mask := 1
	if rel != 0 {
		for mask < p {
			if rel&mask != 0 {
				src := (rel - mask + root) % p
				c.collRecv(src, tagScatter)
				break
			}
			mask <<= 1
		}
	} else {
		for mask < p {
			mask <<= 1
		}
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			child := rel + mask
			blocks := mask
			if p-child < blocks {
				blocks = p - child
			}
			c.collSend((child+root)%p, tagScatter, blocks*size)
		}
		mask >>= 1
	}
}

// Allgather makes size bytes from every rank available at every rank
// using the ring algorithm: P−1 steps, each passing one block along.
func (c *Comm) Allgather(size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Allgather")
	c.w.collMetric(tagAllgather, size)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Allgather")
	p := c.Size()
	if p == 1 {
		return
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sr := c.isend(ctxCollective, right, tagAllgather, size, nil)
		rr := c.irecv(ctxCollective, left, tagAllgather)
		c.Waitall(sr, rr)
	}
}

// Alltoall exchanges a distinct size-byte block between every pair of
// ranks using pairwise exchange: P−1 rounds of simultaneous send/recv
// with rotating partners.
func (c *Comm) Alltoall(size int) {
	c.w.rec(c.rank, trace.CollectiveStart, -1, 0, size, "Alltoall")
	c.w.collMetric(tagAlltoall, size)
	defer c.w.rec(c.rank, trace.CollectiveEnd, -1, 0, size, "Alltoall")
	p := c.Size()
	if p == 1 {
		return
	}
	for step := 1; step < p; step++ {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		sr := c.isend(ctxCollective, dst, tagAlltoall, size, nil)
		rr := c.irecv(ctxCollective, src, tagAlltoall)
		c.Waitall(sr, rr)
	}
}

// CollectiveName maps an internal collective tag to a printable name
// (used by traces and tests).
func CollectiveName(tag int) string {
	switch tag {
	case tagBarrier:
		return "Barrier"
	case tagBcast:
		return "Bcast"
	case tagReduce:
		return "Reduce"
	case tagGather:
		return "Gather"
	case tagScatter:
		return "Scatter"
	case tagAllgather:
		return "Allgather"
	case tagAlltoall:
		return "Alltoall"
	}
	return fmt.Sprintf("collective(%d)", tag)
}
