package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// findRule returns the findings matching a rule.
func findRule(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestLintCleanProgramHasNoFindings(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, 256)
			c.Recv(1, 1)
		case 1:
			c.Recv(0, 0)
			c.Send(0, 1, 256)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if fs := l.Findings(); len(fs) != 0 {
		t.Errorf("clean program produced findings: %v", fs)
	}
}

func TestLintLeakedRequest(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Isend(1, 0, 64) // never waited: leaked
		case 1:
			c.Recv(0, 0)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	leaks := findRule(l.Findings(), RuleLeakedRequest)
	if len(leaks) != 1 || leaks[0].Rank != 0 {
		t.Fatalf("leaked-request findings = %v", leaks)
	}
}

func TestLintUnconsumedMessage(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		if c.Rank() == 0 {
			c.Wait(c.Isend(1, 3, 64)) // eager: completes without a receive
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	got := findRule(l.Findings(), RuleUnconsumed)
	if len(got) != 1 || got[0].Rank != 1 || !strings.Contains(got[0].Message, "tag 3") {
		t.Fatalf("unconsumed-message findings = %v", got)
	}
}

func TestLintWildcardRace(t *testing.T) {
	w := quietWorld(t, 3, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			// Let both senders' messages queue before receiving.
			c.Compute(1.0)
			c.Recv(AnySource, 0)
			c.Recv(AnySource, 0)
		default:
			c.Send(0, 0, 32)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	races := findRule(l.Findings(), RuleWildcardRace)
	if len(races) != 1 || races[0].Rank != 0 {
		t.Fatalf("wildcard-race findings = %v", races)
	}
}

func TestLintNoWildcardRaceSingleSource(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Compute(1.0)
			c.Recv(AnySource, 0)
		case 1:
			c.Send(0, 0, 32)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if races := findRule(l.Findings(), RuleWildcardRace); len(races) != 0 {
		t.Fatalf("single-source wildcard flagged: %v", races)
	}
}

func TestLintDeadlockDiagnosis(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		// Classic head-to-head receive deadlock.
		c.Recv(1-c.Rank(), 0)
	})
	_, err := w.Wait()
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	defer w.Shutdown()
	dl := findRule(l.Findings(), RuleDeadlock)
	if len(dl) != 2 {
		t.Fatalf("deadlock findings = %v", dl)
	}
	for _, f := range dl {
		if !strings.Contains(f.Message, "recv") {
			t.Errorf("finding does not name the pending op: %v", f)
		}
	}
}

func TestLintPeerRangeFinding(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, 0, 16) // out of range: panics, but records a finding first
		}
	})
	func() {
		defer func() { recover() }()
		w.Wait()
	}()
	defer w.Shutdown()
	got := findRule(l.Findings(), RulePeerRange)
	if len(got) != 1 || got[0].Rank != 0 || got[0].Severity != SeverityError {
		t.Fatalf("peer-range findings = %v", got)
	}
	if !strings.Contains(got[0].Message, "peer 5 out of range") {
		t.Errorf("message = %q", got[0].Message)
	}
}

func TestLintCollectivesProduceNoFindings(t *testing.T) {
	// Internal collective traffic must stay invisible to the linter.
	w := quietWorld(t, 4, 1, 1)
	l := w.EnableLint()
	w.Launch(func(c *Comm) {
		c.Barrier()
		c.Bcast(0, 1024)
		c.Allreduce(64)
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if fs := l.Findings(); len(fs) != 0 {
		t.Errorf("collectives produced findings: %v", fs)
	}
}
