package mpi

import (
	"testing"

	"repro/internal/sim"
)

// runCollective launches fn on an n×1 job and waits for completion.
func runCollective(t *testing.T, ranks int, fn func(c *Comm)) *World {
	t.Helper()
	w := quietWorld(t, ranks, 1, 1)
	w.Launch(fn)
	if _, err := w.Wait(); err != nil {
		t.Fatalf("%d ranks: %v", ranks, err)
	}
	return w
}

// Every collective must terminate for awkward (non-power-of-two) sizes.
func TestCollectivesCompleteAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16} {
		runCollective(t, p, func(c *Comm) {
			c.Barrier()
			c.Bcast(0, 1000)
			c.Reduce(0, 1000)
			c.Allreduce(1000)
			c.Gather(0, 100)
			c.Scatter(0, 100)
			c.Allgather(100)
			c.Alltoall(100)
		})
	}
}

func TestCollectivesNonZeroRoot(t *testing.T) {
	for _, p := range []int{3, 6, 8} {
		root := p - 1
		runCollective(t, p, func(c *Comm) {
			c.Bcast(root, 500)
			c.Reduce(root, 500)
			c.Gather(root, 50)
			c.Scatter(root, 50)
		})
	}
}

func TestBarrierSynchronises(t *testing.T) {
	// Rank 2 enters the barrier last; nobody may leave before it enters.
	const ranks = 4
	var enteredLast sim.Time
	exits := make([]sim.Time, ranks)
	runCollective(t, ranks, func(c *Comm) {
		if c.Rank() == 2 {
			c.Compute(1.0)
			enteredLast = c.Now()
		}
		c.Barrier()
		exits[c.Rank()] = c.Now()
	})
	for r, exit := range exits {
		if exit < enteredLast {
			t.Errorf("rank %d left the barrier at %v, before the last entry at %v",
				r, exit, enteredLast)
		}
	}
}

func TestBcastWaitsForRoot(t *testing.T) {
	const ranks = 5
	var rootSent sim.Time
	done := make([]sim.Time, ranks)
	runCollective(t, ranks, func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(0.5)
			rootSent = c.Now()
		}
		c.Bcast(0, 10000)
		done[c.Rank()] = c.Now()
	})
	for r := 1; r < ranks; r++ {
		if done[r] < rootSent {
			t.Errorf("rank %d finished Bcast at %v before root started at %v", r, done[r], rootSent)
		}
	}
}

func TestBcastLogarithmicDepth(t *testing.T) {
	// Binomial broadcast should complete in O(log P) message times, far
	// faster than a linear root-sends-to-everyone loop.
	timeFor := func(p int) sim.Duration {
		w := quietWorld(t, p, 1, 1)
		var dur sim.Duration
		w.Launch(func(c *Comm) {
			start := c.Now()
			c.Bcast(0, 1024)
			if c.Rank() == 0 {
				// Root's time understates the collective; use a barrier
				// to measure full completion.
			}
			c.Barrier()
			if c.Rank() == 0 {
				dur = c.Now().Sub(start)
			}
		})
		if _, err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		return dur
	}
	t16, t64 := timeFor(16), timeFor(64)
	// log2(64)/log2(16) = 1.5; allow up to 2.5× for barrier overhead and
	// contention, but a linear algorithm would be 4×.
	if ratio := float64(t64) / float64(t16); ratio > 3.0 {
		t.Errorf("Bcast scaling 16→64 ranks = %.2fx, looks linear not logarithmic", ratio)
	}
}

func TestReduceFunnelsToRoot(t *testing.T) {
	// Root cannot finish Reduce before the slowest contributor starts it.
	const ranks = 6
	var slowestStart, rootDone sim.Time
	runCollective(t, ranks, func(c *Comm) {
		if c.Rank() == 5 {
			c.Compute(0.7)
			slowestStart = c.Now()
		}
		c.Reduce(0, 4096)
		if c.Rank() == 0 {
			rootDone = c.Now()
		}
	})
	if rootDone < slowestStart {
		t.Errorf("root finished Reduce at %v before the slowest rank started at %v",
			rootDone, slowestStart)
	}
}

func TestUserWildcardCannotStealCollective(t *testing.T) {
	// Rank 0 posts an any-source any-tag receive, then everyone runs a
	// barrier, then rank 1 sends the real user message. The wildcard
	// must match the user message, not barrier-internal traffic.
	var got Status
	runCollective(t, 4, func(c *Comm) {
		var r *Request
		if c.Rank() == 0 {
			r = c.Irecv(AnySource, AnyTag)
		}
		c.Barrier()
		if c.Rank() == 1 {
			c.SendData(0, 42, 8, "user")
		}
		if c.Rank() == 0 {
			got = c.Wait(r)
		}
	})
	if got.Source != 1 || got.Tag != 42 || got.Data != "user" {
		t.Errorf("wildcard matched %+v, want the user message", got)
	}
}

func TestAlltoallHeavierThanAllgather(t *testing.T) {
	// Alltoall moves P× the data of Allgather's per-rank block; it must
	// take longer on the same job.
	timeOf := func(fn func(c *Comm)) sim.Duration {
		w := quietWorld(t, 8, 1, 1)
		var dur sim.Duration
		w.Launch(func(c *Comm) {
			start := c.Now()
			fn(c)
			c.Barrier()
			if c.Rank() == 0 {
				dur = c.Now().Sub(start)
			}
		})
		if _, err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		return dur
	}
	ag := timeOf(func(c *Comm) { c.Allgather(1024) })
	at := timeOf(func(c *Comm) { c.Alltoall(8192) })
	if at <= ag {
		t.Errorf("Alltoall(8K) %v not slower than Allgather(1K) %v", at, ag)
	}
}

func TestCollectiveName(t *testing.T) {
	names := map[int]string{
		tagBarrier: "Barrier", tagBcast: "Bcast", tagReduce: "Reduce",
		tagGather: "Gather", tagScatter: "Scatter",
		tagAllgather: "Allgather", tagAlltoall: "Alltoall",
	}
	for tag, want := range names {
		if got := CollectiveName(tag); got != want {
			t.Errorf("CollectiveName(%d) = %q", tag, got)
		}
	}
	if got := CollectiveName(99); got != "collective(99)" {
		t.Errorf("unknown tag: %q", got)
	}
}
