// Package mpi is a message-passing library with MPI semantics whose
// processes are goroutine ranks of a discrete-event simulation and whose
// bytes travel through the internal/netsim network model. It implements
// the behaviour of MPICH 1.2.0 over TCP — the software the paper
// benchmarked — including the eager/rendezvous protocol switch at 16 KB,
// in-order (TCP-like) delivery per rank pair with head-of-line blocking
// across retransmissions, per-call host CPU overheads, tag/source
// matching with wildcards, and the classic binomial-tree and
// dissemination collective algorithms.
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// World is one simulated MPI job: a set of ranks placed on cluster nodes,
// sharing a network.
type World struct {
	e       *sim.Engine
	net     *netsim.Network
	place   cluster.Placement
	compute cluster.ComputeModel

	ranks    []*rankState
	hosts    *sim.RNG // host overhead jitter stream
	cpu      *sim.RNG // compute jitter stream
	launched bool

	// tracer, when non-nil, receives a timeline of user-level events
	// (sends, receives, compute intervals, collective brackets).
	tracer *trace.Log

	// lint, when non-nil, shadows user-level requests and messages and
	// reports communication left dangling (see EnableLint).
	lint *Linter

	// sched is the active fault schedule; NodeSlow rules stretch host CPU
	// costs here while the network kinds act inside netsim.
	sched *faults.Schedule

	// tracedSched/tracedLog remember which (schedule, log) pairing already
	// had its fault windows recorded, so SetTrace/SetFaults can be called
	// in either order without duplicating the Chrome fault track.
	tracedSched *faults.Schedule
	tracedLog   *trace.Log

	// timeouts aggregates TCP retransmission timeouts the job's transfers
	// suffered, surfacing the tail events the paper attributes to RTO.
	timeouts TimeoutStats

	nextSendID uint64
	sendReqs   map[uint64]*Request

	// connections resequence packets per directed rank pair, mirroring
	// TCP's in-order delivery (a retransmitted message blocks everything
	// behind it on the same connection).
	conns map[connKey]*connection

	// pktFree recycles transport packets so a steady message stream
	// allocates no per-packet state.
	pktFree []*packet

	finish []sim.Time

	// Deterministic instruments, registered on the engine's registry at
	// NewWorld. Collective counters are pre-resolved per internal tag
	// (slot 0 holds Allreduce, which has no tag of its own: MPICH 1.2
	// composes it from Reduce+Bcast, whose counters also tick).
	mEager      *metrics.Counter // sends at or under the eager limit
	mRendezvous *metrics.Counter // sends that ran the RTS/CTS protocol
	mSendBytes  *metrics.Counter // payload bytes handed to isend
	mUnexpMax   *metrics.Gauge   // unexpected-queue high-water mark
	mCollCalls  [tagAlltoall + 1]*metrics.Counter
	mCollBytes  [tagAlltoall + 1]*metrics.Counter
}

type connKey struct{ src, dst int }

// NewWorld creates a job of placement.NumProcs() ranks on the network.
func NewWorld(e *sim.Engine, net *netsim.Network, place cluster.Placement) *World {
	cfg := net.Config()
	if _, err := cluster.NewPlacement(&cfg, place.NodeCount, place.PerNode); err != nil {
		panic(err)
	}
	w := &World{
		e:        e,
		net:      net,
		place:    place,
		compute:  cluster.DefaultComputeModel(),
		hosts:    e.RNG("mpi.host"),
		cpu:      e.RNG("mpi.cpu"),
		sendReqs: make(map[uint64]*Request),
		conns:    make(map[connKey]*connection),
		finish:   make([]sim.Time, place.NumProcs()),
	}
	w.ranks = make([]*rankState, place.NumProcs())
	for i := range w.ranks {
		w.ranks[i] = &rankState{}
	}

	reg := e.Metrics()
	w.mEager = reg.Counter("mpi", "sends_eager_total")
	w.mRendezvous = reg.Counter("mpi", "sends_rendezvous_total")
	w.mSendBytes = reg.Counter("mpi", "send_bytes_total")
	w.mUnexpMax = reg.Gauge("mpi", "unexpected_queue_max")
	for tag := tagBarrier; tag <= tagAlltoall; tag++ {
		op := metrics.L("op", CollectiveName(tag))
		w.mCollCalls[tag] = reg.Counter("mpi", "collective_calls_total", op)
		w.mCollBytes[tag] = reg.Counter("mpi", "collective_bytes_total", op)
	}
	allreduce := metrics.L("op", "Allreduce")
	w.mCollCalls[0] = reg.Counter("mpi", "collective_calls_total", allreduce)
	w.mCollBytes[0] = reg.Counter("mpi", "collective_bytes_total", allreduce)
	return w
}

// collMetric counts one rank's entry into a collective. tag indexes the
// pre-resolved counters; 0 is Allreduce (see the field comment).
func (w *World) collMetric(tag, size int) {
	w.mCollCalls[tag].Inc()
	w.mCollBytes[tag].Add(uint64(size))
}

// SetComputeModel overrides the serial-segment cost model.
func (w *World) SetComputeModel(m cluster.ComputeModel) { w.compute = m }

// SetFaults installs a fault schedule for the whole stack: NodeSlow
// rules apply to this job's host CPU costs and compute segments, and the
// schedule is forwarded to the network for the link/drop/outage/
// backplane kinds. Pass nil to restore the healthy cluster.
func (w *World) SetFaults(s *faults.Schedule) {
	w.sched = s
	w.net.SetFaults(s)
	w.recordFaultWindows()
}

// Faults returns the active fault schedule (nil when healthy).
func (w *World) Faults() *faults.Schedule { return w.sched }

// TimeoutStats summarises the TCP retransmission timeouts a job's
// transfers suffered — the mechanism behind the extreme outliers in the
// paper's distribution tails.
type TimeoutStats struct {
	Messages int          // transfers that needed at least one retransmission
	Retries  int          // total retransmissions across those transfers
	Worst    sim.Duration // longest sent-to-delivered span among them
}

// Timeouts returns the retransmission summary accumulated so far.
func (w *World) Timeouts() TimeoutStats { return w.timeouts }

// slowFactor is the active NodeSlow multiplier for a rank's node.
func (w *World) slowFactor(rank int) float64 {
	if w.sched.Empty() {
		return 1
	}
	return w.sched.SlowFactor(w.place.NodeOf(rank), w.e.Now())
}

// SetTrace attaches a timeline recorder; pass nil to disable. Only
// user-level activity is recorded (collectives appear as brackets, not
// as their internal messages). If a fault schedule is (or later
// becomes) active, its windows are recorded too, so Chrome exports
// draw them on their own track.
func (w *World) SetTrace(l *trace.Log) {
	w.tracer = l
	w.recordFaultWindows()
}

// recordFaultWindows emits the schedule's fault windows onto the trace
// once per (schedule, log) pairing.
func (w *World) recordFaultWindows() {
	if w.tracer == nil || w.sched.Empty() {
		return
	}
	if w.tracedSched == w.sched && w.tracedLog == w.tracer {
		return
	}
	w.tracedSched, w.tracedLog = w.sched, w.tracer
	w.sched.Record(w.tracer)
}

// rec appends a trace event if tracing is enabled.
func (w *World) rec(rank int, kind trace.Kind, peer, tag, size int, note string) {
	if w.tracer == nil {
		return
	}
	w.tracer.Record(trace.Event{
		Time: w.e.Now(), Rank: rank, Kind: kind,
		Peer: peer, Tag: tag, Size: size, Note: note,
	})
}

// Engine returns the simulation engine the job runs on.
func (w *World) Engine() *sim.Engine { return w.e }

// Network returns the underlying network model.
func (w *World) Network() *netsim.Network { return w.net }

// Placement returns the job's rank-to-node mapping.
func (w *World) Placement() cluster.Placement { return w.place }

// Size returns the number of ranks.
func (w *World) Size() int { return w.place.NumProcs() }

// Launch starts program on every rank. Each rank runs in its own
// simulated process; the job begins at the current virtual time.
// Launch may be called once per World.
func (w *World) Launch(program func(c *Comm)) {
	if w.launched {
		panic("mpi: World.Launch called twice")
	}
	w.launched = true
	for rank := 0; rank < w.Size(); rank++ {
		rank := rank
		c := &Comm{w: w, rank: rank}
		w.ranks[rank].comm = c
		w.e.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
			c.proc = p
			program(c)
			w.finish[rank] = p.Now()
		})
	}
}

// ErrRanksDidNotFinish reports ranks that never returned from the program
// even though the simulation ran out of events (should be preceded by a
// deadlock error from the engine).
var ErrRanksDidNotFinish = errors.New("mpi: some ranks did not finish")

// Wait runs the simulation until every rank's program returns, and
// returns the virtual time at which the last rank finished. A deadlock
// (e.g. mismatched sends/receives) surfaces as an error naming the stuck
// ranks and the operations they are blocked in.
func (w *World) Wait() (sim.Time, error) {
	if !w.launched {
		return 0, errors.New("mpi: Wait before Launch")
	}
	end, err := w.e.Run(sim.Forever)
	if err != nil {
		if w.lint != nil && errors.Is(err, sim.ErrDeadlock) {
			w.lint.diagnoseDeadlock(w)
		}
		return end, err
	}
	var last sim.Time
	for rank, t := range w.finish {
		if !w.ranks[rank].comm.proc.Done() {
			return end, fmt.Errorf("%w: rank %d", ErrRanksDidNotFinish, rank)
		}
		if t > last {
			last = t
		}
	}
	if w.lint != nil {
		w.lint.finalize(w)
	}
	return last, nil
}

// FinishTimes returns the virtual time each rank's program returned at;
// valid after Wait succeeds.
func (w *World) FinishTimes() []sim.Time {
	out := make([]sim.Time, len(w.finish))
	copy(out, w.finish)
	return out
}

// Shutdown releases rank goroutines after an aborted run (deadlock or
// horizon cut). The World must not be used afterwards.
func (w *World) Shutdown() { w.e.Shutdown() }
