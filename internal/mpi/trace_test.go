package mpi

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestTraceRecordsUserActivity(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	log := trace.NewLog(0)
	w.SetTrace(log)
	w.Launch(func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(0.01)
			c.SendData(1, 5, 256, nil)
		} else {
			c.Recv(0, 5)
		}
		c.Barrier()
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	var sends, recvPosts, recvEnds, computes, collStarts, collEnds int
	for _, ev := range log.Events() {
		switch ev.Kind {
		case trace.SendStart:
			sends++
			if ev.Peer != 1 || ev.Tag != 5 || ev.Size != 256 {
				t.Errorf("send event fields: %+v", ev)
			}
		case trace.RecvPost:
			recvPosts++
		case trace.RecvEnd:
			recvEnds++
			if ev.Peer != 0 || ev.Size != 256 {
				t.Errorf("recv event fields: %+v", ev)
			}
		case trace.ComputeStart:
			computes++
		case trace.CollectiveStart:
			collStarts++
			if ev.Note != "Barrier" {
				t.Errorf("collective note %q", ev.Note)
			}
		case trace.CollectiveEnd:
			collEnds++
		}
	}
	if sends != 1 || recvPosts != 1 || recvEnds != 1 || computes != 1 {
		t.Errorf("user events: sends=%d posts=%d ends=%d computes=%d",
			sends, recvPosts, recvEnds, computes)
	}
	if collStarts != 2 || collEnds != 2 {
		t.Errorf("collective brackets: %d/%d, want 2/2", collStarts, collEnds)
	}
	// Collective-internal messages must NOT leak into the trace: total
	// send events stay at the single user send.
	sums := log.Summaries()
	if sums[0].Sends != 1 || sums[0].BytesSent != 256 {
		t.Errorf("rank0 summary leaked internal traffic: %+v", sums[0])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	w.Launch(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, 10)
		} else {
			c.Recv(0, 0)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	// No panic, nothing recorded anywhere — just completes.
}

func TestTraceWaitTimesMatchSimulation(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	log := trace.NewLog(0)
	w.SetTrace(log)
	w.Launch(func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(0.5)
			c.Send(1, 0, 64)
		} else {
			c.Recv(0, 0)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	sums := log.Summaries()
	// Rank 1 posted at ~0 and completed just after 0.5s.
	if sums[1].RecvWait < sim.DurationFromSeconds(0.5) {
		t.Errorf("rank1 recv wait %v, want >= 500ms", sums[1].RecvWait)
	}
	if sums[0].Compute < sim.DurationFromSeconds(0.49) {
		t.Errorf("rank0 compute %v, want ~500ms", sums[0].Compute)
	}
}
