package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// fatTreeWorld builds a serial world on a hierarchical fat-tree: the
// MPI stack and the topology-aware network model working together.
func fatTreeWorld(t *testing.T, spec string, seed uint64) (*World, *netsim.Network) {
	t.Helper()
	topo, nodes, err := cluster.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cluster.Perseus().WithTopology(topo, nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.JitterSigma = 0
	cfg.SpikeProb = 0
	e := sim.NewEngine(seed)
	net := netsim.New(e, cfg)
	pl, err := cluster.NewPlacement(&cfg, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(e, net, pl)
	w.SetComputeModel(cluster.ComputeModel{})
	return w, net
}

func TestFatTreeCrossLeafPingPong(t *testing.T) {
	// Ranks 0 and 31 sit on the first and last leaf of a 4-leaf fat
	// tree (placement fills leaves first), so their ping-pong must
	// climb through a spine: the network has to count it cross-switch.
	w, net := fatTreeWorld(t, "fattree:32x8x2", 1)
	const last = 31
	var rtt sim.Duration
	w.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			start := c.Now()
			c.Send(last, 1, 4096)
			c.Recv(last, 2)
			rtt = c.Now().Sub(start)
		case last:
			c.Recv(0, 1)
			c.Send(0, 2, 4096)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.CrossSwitch == 0 {
		t.Error("cross-leaf ping-pong crossed no switch boundary")
	}
	if rtt <= 0 {
		t.Errorf("round trip took %v", rtt)
	}

	// Same exchange within one leaf must be strictly faster: only the
	// leaf's own fabric, no spine hops.
	w2, net2 := fatTreeWorld(t, "fattree:32x8x2", 1)
	var localRTT sim.Duration
	w2.Launch(func(c *Comm) {
		switch c.Rank() {
		case 0:
			start := c.Now()
			c.Send(1, 1, 4096)
			c.Recv(1, 2)
			localRTT = c.Now().Sub(start)
		case 1:
			c.Recv(0, 1)
			c.Send(0, 2, 4096)
		}
	})
	if _, err := w2.Wait(); err != nil {
		t.Fatal(err)
	}
	if net2.Stats().CrossSwitch != 0 {
		t.Error("same-leaf exchange counted as cross-switch")
	}
	if localRTT >= rtt {
		t.Errorf("same-leaf round trip %v not faster than cross-leaf %v", localRTT, rtt)
	}
}

func TestFatTreeBarrierAllRanks(t *testing.T) {
	// A full-machine barrier exercises the collective tree over every
	// leaf of the topology.
	w, _ := fatTreeWorld(t, "fattree:32x8x2", 2)
	var reached [32]bool
	w.Launch(func(c *Comm) {
		c.Barrier()
		reached[c.Rank()] = true
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	for r, ok := range reached {
		if !ok {
			t.Errorf("rank %d never passed the barrier", r)
		}
	}
}
