package mpi

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestNodeSlowStretchesComputeAndOverheads(t *testing.T) {
	run := func(sched *faults.Schedule) sim.Time {
		w := quietWorld(t, 2, 1, 1)
		if sched != nil {
			w.SetFaults(sched)
		}
		w.Launch(func(c *Comm) {
			if c.Rank() == 0 {
				c.Compute(0.01)
				c.Send(1, 0, 1024)
			} else {
				c.Recv(0, 0)
			}
		})
		end, err := w.Wait()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	healthy := run(nil)
	slowed := run(&faults.Schedule{Name: "noisy", Rules: []faults.Rule{{
		Kind: faults.NodeSlow, Start: 0, End: sim.TimeFromSeconds(60),
		Target: 0, Severity: 3,
	}}})
	// Rank 0's 10ms compute segment dominates the run; tripling its node's
	// CPU costs must roughly triple the finish time.
	if got, want := slowed.Seconds(), healthy.Seconds()*2; got < want {
		t.Errorf("slowed run %.4fs, want > %.4fs (healthy %.4fs ×2)", got, want, healthy.Seconds())
	}
}

func TestTimeoutSurfacingUnderOutage(t *testing.T) {
	w := quietWorld(t, 2, 1, 1)
	l := trace.NewLog(0)
	w.SetTrace(l)
	// Rank 1's NIC is down for the first 0.3s: rank 0's eager send gets
	// dropped and retried until the window closes. (The scattered default
	// placement puts rank 1 on a far node, so resolve it via NodeOf.)
	w.SetFaults(&faults.Schedule{Name: "flaky", Rules: []faults.Rule{{
		Kind: faults.NICOutage, Start: 0, End: sim.TimeFromSeconds(0.3),
		Target: w.Placement().NodeOf(1),
	}}})
	w.Launch(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, 512)
		} else {
			c.Recv(0, 0)
		}
	})
	if _, err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	ts := w.Timeouts()
	if ts.Messages == 0 || ts.Retries == 0 {
		t.Fatalf("Timeouts = %+v, want retransmissions surfaced", ts)
	}
	if ts.Worst < sim.DurationFromSeconds(0.2) {
		t.Errorf("Worst = %v, want at least one RTO (0.2s)", ts.Worst)
	}
	retriesTraced := 0
	for _, ev := range l.Events() {
		if ev.Kind == trace.NetRetry {
			retriesTraced++
			if ev.Rank != 0 || ev.Peer != 1 {
				t.Errorf("NetRetry on rank %d peer %d, want 0->1", ev.Rank, ev.Peer)
			}
			if ev.Tag <= 0 {
				t.Errorf("NetRetry carries retry count %d, want > 0", ev.Tag)
			}
		}
	}
	if retriesTraced == 0 {
		t.Error("no NetRetry events in the trace")
	}
	if fd := w.Network().Stats().FaultDrops; fd == 0 {
		t.Error("outage produced no fault-attributed drops")
	}
}

// TestWorldEmptyScheduleBitIdentical: installing an empty schedule at the
// World level must not move a single timestamp even with all noise
// models on.
func TestWorldEmptyScheduleBitIdentical(t *testing.T) {
	run := func(install bool) []sim.Time {
		w := worldWith(t, cluster.Perseus(), 4, 2, 17)
		if install {
			w.SetFaults(&faults.Schedule{Name: "empty"})
		}
		w.Launch(func(c *Comm) {
			next := (c.Rank() + 1) % c.Size()
			prev := (c.Rank() + c.Size() - 1) % c.Size()
			for i := 0; i < 5; i++ {
				c.Compute(0.0002)
				c.Sendrecv(next, 1, 2048, prev, 1)
			}
			c.Barrier()
		})
		if _, err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		return w.FinishTimes()
	}
	a, b := run(false), run(true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d finished at %v vs %v — empty schedule changed the run", i, a[i], b[i])
		}
	}
}
