package mpi

// Matching contexts. User point-to-point traffic and internal collective
// traffic live in separate namespaces so a wildcard receive can never
// capture a collective's internal message.
const (
	ctxUser = iota
	ctxCollective
)

// AnySource and AnyTag are the receive wildcards (MPI_ANY_SOURCE,
// MPI_ANY_TAG). They are only legal in the user context.
const (
	AnySource = -1
	AnyTag    = -1
)

// rankState holds one rank's matching queues. All access happens in
// engine context, so no locking is needed.
type rankState struct {
	comm *Comm

	// unexpected holds envelopes that arrived before a matching receive
	// was posted, in arrival order (MPI's non-overtaking rule).
	unexpected []*envelope
	// posted holds receive requests not yet matched, in post order.
	posted []*Request
}

// matches reports whether a posted receive accepts an envelope.
func matches(r *Request, env *envelope) bool {
	if r.ctx != env.ctx {
		return false
	}
	if r.src != AnySource && r.src != env.src {
		return false
	}
	if r.tag != AnyTag && r.tag != env.tag {
		return false
	}
	return true
}

// arriveEnvelope processes a newly delivered envelope (eager payload or
// rendezvous RTS): match it against the oldest posted receive, or queue
// it as unexpected.
func (rs *rankState) arriveEnvelope(w *World, env *envelope) {
	for i, r := range rs.posted {
		if matches(r, env) {
			rs.posted = append(rs.posted[:i], rs.posted[i+1:]...)
			w.matchEnvelope(r, env)
			return
		}
	}
	rs.unexpected = append(rs.unexpected, env)
	w.mUnexpMax.SetMax(int64(len(rs.unexpected)))
	// Wake the rank in case it is blocked in Probe waiting for exactly
	// this envelope; a spurious wakeup is harmless (waits re-check).
	if rs.comm != nil && rs.comm.proc != nil {
		rs.comm.proc.Unblock()
	}
}

// postRecv registers a receive request: match the oldest compatible
// unexpected envelope, or queue the request.
func (rs *rankState) postRecv(w *World, r *Request) {
	if w.lint != nil {
		w.lint.checkWildcard(rs, r)
	}
	for i, env := range rs.unexpected {
		if matches(r, env) {
			rs.unexpected = append(rs.unexpected[:i], rs.unexpected[i+1:]...)
			w.matchEnvelope(r, env)
			return
		}
	}
	rs.posted = append(rs.posted, r)
}

// findUnexpected returns the oldest unexpected envelope a (src, tag, ctx)
// probe would match, without consuming it.
func (rs *rankState) findUnexpected(ctx, src, tag int) *envelope {
	probe := &Request{ctx: ctx, src: src, tag: tag}
	for _, env := range rs.unexpected {
		if matches(probe, env) {
			return env
		}
	}
	return nil
}

// matchEnvelope binds an envelope to a receive request. Eager envelopes
// complete immediately (the payload travelled with them); rendezvous
// envelopes trigger the clear-to-send so the payload can flow.
func (w *World) matchEnvelope(r *Request, env *envelope) {
	env.matched = r
	r.env = env
	if env.dataArrived {
		w.completeRecv(r, env)
		return
	}
	// Rendezvous: grant the sender clearance. MPICH sends the CTS from
	// within its progress engine; the receiving rank's CPU cost is
	// charged when the receive completes.
	w.sendPacket(env.dst, env.src, pktCTS, w.net.Config().CtrlBytes, nil, env.sendID)
}

// completeRecv finishes a receive request whose payload has arrived.
func (w *World) completeRecv(r *Request, env *envelope) {
	w.completeRequest(r, Status{Source: env.src, Tag: env.tag, Size: env.size, Data: env.data})
}

// completeRequest marks a request done and wakes its rank if it is
// blocked in Wait/Waitall/Waitany.
func (w *World) completeRequest(r *Request, st Status) {
	if r.done {
		panic("mpi: request completed twice")
	}
	r.done = true
	r.st = st
	r.completedAt = w.e.Now()
	if c := r.c; c != nil && c.proc != nil {
		c.proc.Unblock()
	}
}
