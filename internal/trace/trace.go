// Package trace records per-rank timelines of simulated MPI executions:
// when each rank computed, sent, received and waited. MPIBench measures
// one operation in isolation; a trace shows a whole program's
// time-structure, which is what PEVPM predicts — comparing the two is
// how mispredictions get localised.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	SendStart Kind = iota // rank began a send operation
	SendEnd               // send locally complete (eager) or delivered (rendezvous)
	RecvPost              // receive posted
	RecvEnd               // receive completed (payload picked up)
	ComputeStart
	ComputeEnd
	CollectiveStart
	CollectiveEnd
	FaultBegin // a fault-schedule window opens (Tag = rule index, Peer = target)
	FaultEnd   // the window closes
	NetRetry   // a transfer completed only after TCP retransmissions (Tag = retry count)
)

var kindNames = map[Kind]string{
	SendStart: "send-start", SendEnd: "send-end",
	RecvPost: "recv-post", RecvEnd: "recv-end",
	ComputeStart: "compute-start", ComputeEnd: "compute-end",
	CollectiveStart: "coll-start", CollectiveEnd: "coll-end",
	FaultBegin: "fault-begin", FaultEnd: "fault-end",
	NetRetry: "net-retry",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one timeline entry.
type Event struct {
	Time sim.Time
	Rank int
	Kind Kind
	Peer int // other rank for point-to-point; -1 otherwise
	Tag  int
	Size int
	Note string // collective name, etc.
}

// Log collects events from one run. It is not safe for concurrent use;
// the simulation kernel is single-threaded, so that is not a
// restriction in practice.
type Log struct {
	events  []Event
	limit   int
	dropped int
}

// NewLog returns a log that keeps at most limit events (0 = unlimited).
// The limit guards long benchmark runs against unbounded memory.
func NewLog(limit int) *Log { return &Log{limit: limit} }

// Record appends an event. Once the log reaches its limit further events
// are counted as dropped rather than silently discarded: a truncated log
// has dangling RecvPost/CollectiveStart brackets, and exporters use
// Dropped to annotate their output instead of misreporting.
func (l *Log) Record(ev Event) {
	if l.limit > 0 && len(l.events) >= l.limit {
		l.dropped++
		return
	}
	l.events = append(l.events, ev)
}

// Len reports the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Dropped reports how many events were discarded after the log filled.
// A non-zero count means summaries and exports describe a truncated
// timeline.
func (l *Log) Dropped() int { return l.dropped }

// Truncated reports whether any events were dropped.
func (l *Log) Truncated() bool { return l.dropped > 0 }

// Events returns the recorded events in time order (stable for equal
// timestamps).
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// matchRecv picks the open RecvPost a RecvEnd pairs with. The end event
// carries the actual (source, tag) of the delivered message; the posted
// receive may name them exactly or use wildcards (negative peer/tag).
// Preference order: exact (peer, tag) match, then a wildcard-compatible
// post, then plain FIFO — each FIFO among equals, so overlapping
// nonblocking receives of distinct peers or tags are attributed to the
// receive that actually completed rather than whichever was posted
// first. Returns -1 when no post is open.
func matchRecv(open []Event, end Event) int {
	if len(open) == 0 {
		return -1
	}
	wildcard := -1
	for i, post := range open {
		if post.Peer == end.Peer && post.Tag == end.Tag {
			return i
		}
		if wildcard < 0 &&
			(post.Peer < 0 || post.Peer == end.Peer) &&
			(post.Tag < 0 || post.Tag == end.Tag) {
			wildcard = i
		}
	}
	if wildcard >= 0 {
		return wildcard
	}
	return 0 // mismatched brackets: fall back to FIFO rather than dropping
}

// RankSummary aggregates one rank's activity.
type RankSummary struct {
	Rank         int
	Sends, Recvs int
	BytesSent    int
	Compute      sim.Duration
	RecvWait     sim.Duration // time between recv-post and recv-end
	Finish       sim.Time
}

// Summaries aggregates the log per rank.
func (l *Log) Summaries() []RankSummary {
	byRank := map[int]*RankSummary{}
	get := func(r int) *RankSummary {
		s, ok := byRank[r]
		if !ok {
			s = &RankSummary{Rank: r}
			byRank[r] = s
		}
		return s
	}
	// Track open intervals per rank.
	computeOpen := map[int]sim.Time{}
	recvOpen := map[int][]Event{} // posted-but-unfinished receives
	for _, ev := range l.Events() {
		if ev.Kind == FaultBegin || ev.Kind == FaultEnd {
			continue // schedule annotations, not rank activity
		}
		s := get(ev.Rank)
		if ev.Time > s.Finish {
			s.Finish = ev.Time
		}
		switch ev.Kind {
		case SendStart:
			s.Sends++
			s.BytesSent += ev.Size
		case RecvPost:
			recvOpen[ev.Rank] = append(recvOpen[ev.Rank], ev)
		case RecvEnd:
			s.Recvs++
			if i := matchRecv(recvOpen[ev.Rank], ev); i >= 0 {
				stack := recvOpen[ev.Rank]
				s.RecvWait += ev.Time.Sub(stack[i].Time)
				recvOpen[ev.Rank] = append(stack[:i:i], stack[i+1:]...)
			}
		case ComputeStart:
			computeOpen[ev.Rank] = ev.Time
		case ComputeEnd:
			if t0, ok := computeOpen[ev.Rank]; ok {
				s.Compute += ev.Time.Sub(t0)
				delete(computeOpen, ev.Rank)
			}
		}
	}
	out := make([]RankSummary, 0, len(byRank))
	for _, s := range byRank {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out
}

// WriteText dumps the raw timeline, one line per event.
func (l *Log) WriteText(w io.Writer) error {
	for _, ev := range l.Events() {
		var detail string
		switch ev.Kind {
		case SendStart, SendEnd:
			detail = fmt.Sprintf("to=%d tag=%d size=%d", ev.Peer, ev.Tag, ev.Size)
		case RecvPost, RecvEnd:
			detail = fmt.Sprintf("from=%d tag=%d size=%d", ev.Peer, ev.Tag, ev.Size)
		case CollectiveStart, CollectiveEnd:
			detail = ev.Note
		case FaultBegin, FaultEnd:
			detail = fmt.Sprintf("rule=%d target=%d %s", ev.Tag, ev.Peer, ev.Note)
		case NetRetry:
			detail = fmt.Sprintf("to=%d retries=%d size=%d", ev.Peer, ev.Tag, ev.Size)
		}
		if _, err := fmt.Fprintf(w, "%14v rank%-4d %-13s %s\n", ev.Time, ev.Rank, ev.Kind, detail); err != nil {
			return err
		}
	}
	if l.dropped > 0 {
		if _, err := fmt.Fprintf(w, "!! trace truncated: %d further event(s) dropped at the %d-event limit\n",
			l.dropped, l.limit); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders an ASCII utilisation chart: one row per rank, the run
// divided into cols buckets, each cell showing the rank's dominant
// activity in that bucket (C compute, s send, r receive-wait, idle '.').
func (l *Log) Gantt(cols int) string {
	all := l.Events()
	// Fault-window annotations are not rank activity and may extend past
	// the run; charting them would stretch the time axis.
	events := all[:0:0]
	for _, ev := range all {
		if ev.Kind != FaultBegin && ev.Kind != FaultEnd {
			events = append(events, ev)
		}
	}
	if len(events) == 0 || cols <= 0 {
		return ""
	}
	end := events[len(events)-1].Time
	if end == 0 {
		return ""
	}
	ranks := map[int]bool{}
	for _, ev := range events {
		ranks[ev.Rank] = true
	}
	var rankIDs []int
	for r := range ranks {
		rankIDs = append(rankIDs, r)
	}
	sort.Ints(rankIDs)

	bucketOf := func(t sim.Time) int {
		b := int(int64(t) * int64(cols) / int64(end))
		if b >= cols {
			b = cols - 1
		}
		return b
	}
	// Fill per-rank rows: mark intervals.
	rows := map[int][]byte{}
	for _, r := range rankIDs {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		rows[r] = row
	}
	mark := func(rank int, from, to sim.Time, ch byte) {
		row := rows[rank]
		for b := bucketOf(from); b <= bucketOf(to); b++ {
			// Compute beats wait beats idle when buckets straddle.
			if row[b] == '.' || ch == 'C' {
				row[b] = ch
			}
		}
	}
	computeOpen := map[int]sim.Time{}
	recvOpen := map[int][]Event{}
	for _, ev := range events {
		switch ev.Kind {
		case ComputeStart:
			computeOpen[ev.Rank] = ev.Time
		case ComputeEnd:
			if t0, ok := computeOpen[ev.Rank]; ok {
				mark(ev.Rank, t0, ev.Time, 'C')
				delete(computeOpen, ev.Rank)
			}
		case RecvPost:
			recvOpen[ev.Rank] = append(recvOpen[ev.Rank], ev)
		case RecvEnd:
			if i := matchRecv(recvOpen[ev.Rank], ev); i >= 0 {
				stack := recvOpen[ev.Rank]
				mark(ev.Rank, stack[i].Time, ev.Time, 'r')
				recvOpen[ev.Rank] = append(stack[:i:i], stack[i+1:]...)
			}
		case SendStart:
			mark(ev.Rank, ev.Time, ev.Time, 's')
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "0%s%v\n", strings.Repeat(" ", cols-len(end.String())), end)
	for _, r := range rankIDs {
		fmt.Fprintf(&b, "rank%-4d %s\n", r, rows[r])
	}
	return b.String()
}
