package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour), loadable in chrome://tracing and Perfetto. Virtual
// ranks map to "threads"; durations use the complete-event phase "X".
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the log in Chrome trace-event JSON. Compute
// intervals, receive waits and collective brackets become duration
// events; sends become instant events.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	var out []chromeEvent
	computeOpen := map[int]float64{}
	recvOpen := map[int][]Event{}
	collOpen := map[int][]Event{}
	for _, ev := range l.Events() {
		ts := ev.Time.Seconds() * 1e6
		switch ev.Kind {
		case ComputeStart:
			computeOpen[ev.Rank] = ts
		case ComputeEnd:
			if t0, ok := computeOpen[ev.Rank]; ok {
				out = append(out, chromeEvent{
					Name: "compute", Phase: "X", TS: t0, Dur: ts - t0,
					PID: 0, TID: ev.Rank,
				})
				delete(computeOpen, ev.Rank)
			}
		case RecvPost:
			recvOpen[ev.Rank] = append(recvOpen[ev.Rank], ev)
		case RecvEnd:
			if stack := recvOpen[ev.Rank]; len(stack) > 0 {
				t0 := stack[0].Time.Seconds() * 1e6
				out = append(out, chromeEvent{
					Name: "recv", Phase: "X", TS: t0, Dur: ts - t0,
					PID: 0, TID: ev.Rank,
					Args: map[string]any{"from": ev.Peer, "tag": ev.Tag, "bytes": ev.Size},
				})
				recvOpen[ev.Rank] = stack[1:]
			}
		case SendStart:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("send->%d", ev.Peer), Phase: "i", TS: ts,
				PID: 0, TID: ev.Rank,
				Args: map[string]any{"to": ev.Peer, "tag": ev.Tag, "bytes": ev.Size},
			})
		case CollectiveStart:
			collOpen[ev.Rank] = append(collOpen[ev.Rank], ev)
		case CollectiveEnd:
			if stack := collOpen[ev.Rank]; len(stack) > 0 {
				open := stack[len(stack)-1] // collectives nest (Allreduce wraps Reduce)
				collOpen[ev.Rank] = stack[:len(stack)-1]
				if open.Note != ev.Note {
					continue // mismatched bracket: skip rather than lie
				}
				t0 := open.Time.Seconds() * 1e6
				out = append(out, chromeEvent{
					Name: ev.Note, Phase: "X", TS: t0, Dur: ts - t0,
					PID: 0, TID: ev.Rank,
					Args: map[string]any{"bytes": ev.Size},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
