package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace "process" ids. Rank activity lives in pid 0; fault
// windows get their own pid so chrome://tracing and Perfetto render
// them as a dedicated track above the rank timelines.
const (
	chromePIDRanks  = 0
	chromePIDFaults = 1
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavour), loadable in chrome://tracing and Perfetto. Virtual
// ranks map to "threads"; durations use the complete-event phase "X".
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the log in Chrome trace-event JSON. Compute
// intervals, receive waits and collective brackets become duration
// events; sends and retransmission notices become instant events; fault
// windows render as duration events on a dedicated "faults" track. A
// truncated log (Dropped > 0) is annotated with a trace-truncated
// instant event rather than silently exported as if complete.
func (l *Log) WriteChromeTrace(w io.Writer) error {
	var out []chromeEvent
	computeOpen := map[int]float64{}
	recvOpen := map[int][]Event{}
	collOpen := map[int][]Event{}
	faultOpen := map[int]Event{} // keyed by rule index (Tag)
	haveFaults := false
	for _, ev := range l.Events() {
		ts := ev.Time.Seconds() * 1e6
		switch ev.Kind {
		case ComputeStart:
			computeOpen[ev.Rank] = ts
		case ComputeEnd:
			if t0, ok := computeOpen[ev.Rank]; ok {
				out = append(out, chromeEvent{
					Name: "compute", Phase: "X", TS: t0, Dur: ts - t0,
					PID: chromePIDRanks, TID: ev.Rank,
				})
				delete(computeOpen, ev.Rank)
			}
		case RecvPost:
			recvOpen[ev.Rank] = append(recvOpen[ev.Rank], ev)
		case RecvEnd:
			// Pair with the open post for this (peer, tag) — FIFO only
			// among equal keys or for wildcard posts — so overlapping
			// nonblocking receives keep their own durations.
			if i := matchRecv(recvOpen[ev.Rank], ev); i >= 0 {
				stack := recvOpen[ev.Rank]
				t0 := stack[i].Time.Seconds() * 1e6
				out = append(out, chromeEvent{
					Name: "recv", Phase: "X", TS: t0, Dur: ts - t0,
					PID: chromePIDRanks, TID: ev.Rank,
					Args: map[string]any{"from": ev.Peer, "tag": ev.Tag, "bytes": ev.Size},
				})
				recvOpen[ev.Rank] = append(stack[:i:i], stack[i+1:]...)
			}
		case SendStart:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("send->%d", ev.Peer), Phase: "i", TS: ts,
				PID: chromePIDRanks, TID: ev.Rank,
				Args: map[string]any{"to": ev.Peer, "tag": ev.Tag, "bytes": ev.Size},
			})
		case NetRetry:
			out = append(out, chromeEvent{
				Name: "retx", Phase: "i", TS: ts,
				PID: chromePIDRanks, TID: ev.Rank,
				Args: map[string]any{"to": ev.Peer, "retries": ev.Tag, "bytes": ev.Size},
			})
		case CollectiveStart:
			collOpen[ev.Rank] = append(collOpen[ev.Rank], ev)
		case CollectiveEnd:
			if stack := collOpen[ev.Rank]; len(stack) > 0 {
				open := stack[len(stack)-1] // collectives nest (Allreduce wraps Reduce)
				collOpen[ev.Rank] = stack[:len(stack)-1]
				if open.Note != ev.Note {
					continue // mismatched bracket: skip rather than lie
				}
				t0 := open.Time.Seconds() * 1e6
				out = append(out, chromeEvent{
					Name: ev.Note, Phase: "X", TS: t0, Dur: ts - t0,
					PID: chromePIDRanks, TID: ev.Rank,
					Args: map[string]any{"bytes": ev.Size},
				})
			}
		case FaultBegin:
			faultOpen[ev.Tag] = ev
			haveFaults = true
		case FaultEnd:
			if open, ok := faultOpen[ev.Tag]; ok {
				t0 := open.Time.Seconds() * 1e6
				out = append(out, chromeEvent{
					Name: open.Note, Phase: "X", TS: t0, Dur: ts - t0,
					PID: chromePIDFaults, TID: ev.Tag,
					Args: map[string]any{"target": ev.Peer, "rule": ev.Tag},
				})
				delete(faultOpen, ev.Tag)
			}
		}
	}
	if haveFaults {
		out = append(out, chromeEvent{
			Name: "process_name", Phase: "M", PID: chromePIDFaults,
			Args: map[string]any{"name": "faults"},
		})
	}
	if l.dropped > 0 {
		out = append(out, chromeEvent{
			Name: "trace-truncated", Phase: "i", TS: 0,
			PID: chromePIDRanks, TID: 0,
			Args: map[string]any{"dropped": l.dropped, "limit": l.limit},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
