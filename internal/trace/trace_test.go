package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func ev(t float64, rank int, kind Kind) Event {
	return Event{Time: sim.TimeFromSeconds(t), Rank: rank, Kind: kind, Peer: -1}
}

func TestLogOrderingAndLimit(t *testing.T) {
	l := NewLog(3)
	l.Record(ev(3, 0, SendStart))
	l.Record(ev(1, 0, SendStart))
	l.Record(ev(2, 0, SendStart))
	l.Record(ev(4, 0, SendStart)) // beyond the limit: dropped
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	events := l.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("events not time-sorted")
		}
	}
	if events[2].Time != sim.TimeFromSeconds(3) {
		t.Error("limit dropped the wrong event")
	}
}

func TestSummaries(t *testing.T) {
	l := NewLog(0)
	// rank 0: compute 1s, send 100B; rank 1: recv waits 0.5s.
	l.Record(Event{Time: 0, Rank: 0, Kind: ComputeStart})
	l.Record(Event{Time: sim.TimeFromSeconds(1), Rank: 0, Kind: ComputeEnd})
	l.Record(Event{Time: sim.TimeFromSeconds(1), Rank: 0, Kind: SendStart, Peer: 1, Size: 100})
	l.Record(Event{Time: sim.TimeFromSeconds(0.6), Rank: 1, Kind: RecvPost, Peer: 0})
	l.Record(Event{Time: sim.TimeFromSeconds(1.1), Rank: 1, Kind: RecvEnd, Peer: 0, Size: 100})
	sums := l.Summaries()
	if len(sums) != 2 {
		t.Fatalf("%d summaries", len(sums))
	}
	r0, r1 := sums[0], sums[1]
	if r0.Rank != 0 || r1.Rank != 1 {
		t.Fatal("summaries not sorted by rank")
	}
	if r0.Compute != sim.Second || r0.Sends != 1 || r0.BytesSent != 100 {
		t.Errorf("rank0 summary: %+v", r0)
	}
	if r1.Recvs != 1 || r1.RecvWait != 500*sim.Millisecond {
		t.Errorf("rank1 summary: %+v", r1)
	}
}

func TestGantt(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: 0, Rank: 0, Kind: ComputeStart})
	l.Record(Event{Time: sim.TimeFromSeconds(1), Rank: 0, Kind: ComputeEnd})
	l.Record(Event{Time: 0, Rank: 1, Kind: RecvPost, Peer: 0})
	l.Record(Event{Time: sim.TimeFromSeconds(1), Rank: 1, Kind: RecvEnd, Peer: 0})
	g := l.Gantt(20)
	if !strings.Contains(g, "rank0") || !strings.Contains(g, "rank1") {
		t.Fatalf("gantt missing ranks:\n%s", g)
	}
	if !strings.Contains(g, "C") {
		t.Errorf("gantt missing compute cells:\n%s", g)
	}
	if !strings.Contains(g, "r") {
		t.Errorf("gantt missing recv-wait cells:\n%s", g)
	}
	if NewLog(0).Gantt(10) != "" {
		t.Error("empty log should render empty gantt")
	}
}

func TestWriteText(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: sim.TimeFromSeconds(0.5), Rank: 2, Kind: SendStart, Peer: 3, Tag: 7, Size: 64})
	l.Record(Event{Time: sim.TimeFromSeconds(0.6), Rank: 3, Kind: CollectiveStart, Peer: -1, Note: "Bcast"})
	var b strings.Builder
	if err := l.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rank2", "send-start", "to=3 tag=7 size=64", "Bcast"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	if SendStart.String() != "send-start" || RecvEnd.String() != "recv-end" {
		t.Error("kind names broken")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting broken")
	}
}
