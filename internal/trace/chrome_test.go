package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestChromeTraceExport(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: 0, Rank: 0, Kind: ComputeStart, Peer: -1})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: ComputeEnd, Peer: -1})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: SendStart, Peer: 1, Tag: 2, Size: 64})
	l.Record(Event{Time: 0, Rank: 1, Kind: RecvPost, Peer: 0, Tag: 2})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0015), Rank: 1, Kind: RecvEnd, Peer: 0, Tag: 2, Size: 64})
	l.Record(Event{Time: sim.TimeFromSeconds(0.002), Rank: 0, Kind: CollectiveStart, Peer: -1, Note: "Barrier"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.003), Rank: 0, Kind: CollectiveEnd, Peer: -1, Note: "Barrier"})

	var b strings.Builder
	if err := l.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
		if ev["ph"] == "X" && ev["dur"].(float64) <= 0 {
			t.Errorf("duration event with non-positive dur: %v", ev)
		}
	}
	for _, want := range []string{"compute", "recv", "send->1", "Barrier"} {
		if !names[want] {
			t.Errorf("chrome trace missing %q events (have %v)", want, names)
		}
	}
	// The recv duration spans post to end: 1500 µs.
	for _, ev := range events {
		if ev["name"] == "recv" {
			if dur := ev["dur"].(float64); dur < 1499 || dur > 1501 {
				t.Errorf("recv dur = %v µs, want 1500", dur)
			}
		}
	}
}

// decodeChrome parses the exporter's JSON array.
func decodeChrome(t *testing.T, l *Log) []map[string]any {
	t.Helper()
	var b strings.Builder
	if err := l.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	return events
}

// Two Irecvs posted back-to-back for different peers, completing in the
// opposite order: FIFO pairing would attribute the long wait to the
// short receive and vice versa. Matching by (peer, tag) must keep each
// duration with the receive that produced it.
func TestChromeTraceInterleavedIrecvs(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: 0, Rank: 0, Kind: RecvPost, Peer: 1, Tag: 5})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0001), Rank: 0, Kind: RecvPost, Peer: 2, Tag: 6})
	// The second-posted receive completes first.
	l.Record(Event{Time: sim.TimeFromSeconds(0.0005), Rank: 0, Kind: RecvEnd, Peer: 2, Tag: 6, Size: 32})
	l.Record(Event{Time: sim.TimeFromSeconds(0.002), Rank: 0, Kind: RecvEnd, Peer: 1, Tag: 5, Size: 64})

	durs := map[int]float64{} // keyed by "from"
	for _, ev := range decodeChrome(t, l) {
		if ev["name"] == "recv" {
			from := int(ev["args"].(map[string]any)["from"].(float64))
			durs[from] = ev["dur"].(float64)
		}
	}
	if len(durs) != 2 {
		t.Fatalf("want 2 recv events, got %v", durs)
	}
	// peer 2's receive spans 100µs..500µs = 400µs; peer 1's 0..2000µs.
	if d := durs[2]; d < 399 || d > 401 {
		t.Errorf("recv from 2: dur = %vµs, want 400 (FIFO misattribution?)", d)
	}
	if d := durs[1]; d < 1999 || d > 2001 {
		t.Errorf("recv from 1: dur = %vµs, want 2000 (FIFO misattribution?)", d)
	}
}

// A wildcard post must still pair (FIFO fallback) with whatever message
// completed it.
func TestChromeTraceWildcardRecv(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: 0, Rank: 0, Kind: RecvPost, Peer: -1, Tag: -1})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: RecvEnd, Peer: 3, Tag: 9, Size: 8})
	found := false
	for _, ev := range decodeChrome(t, l) {
		if ev["name"] == "recv" {
			found = true
			if d := ev["dur"].(float64); d < 999 || d > 1001 {
				t.Errorf("wildcard recv dur = %vµs, want 1000", d)
			}
		}
	}
	if !found {
		t.Error("wildcard receive not exported")
	}
}

// Fault windows must land on their own track (pid 1) with a process
// name, paired by rule index.
func TestChromeTraceFaultTrack(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: -1, Kind: FaultBegin, Peer: 4, Tag: 0, Note: "nic-outage"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.003), Rank: -1, Kind: FaultEnd, Peer: 4, Tag: 0, Note: "nic-outage"})
	l.Record(Event{Time: 0, Rank: 0, Kind: ComputeStart})
	l.Record(Event{Time: sim.TimeFromSeconds(0.004), Rank: 0, Kind: ComputeEnd})

	var window map[string]any
	named := false
	for _, ev := range decodeChrome(t, l) {
		if ev["name"] == "nic-outage" {
			window = ev
		}
		if ev["name"] == "process_name" && int(ev["pid"].(float64)) == chromePIDFaults {
			named = true
		}
	}
	if window == nil {
		t.Fatal("fault window missing from export")
	}
	if pid := int(window["pid"].(float64)); pid != chromePIDFaults {
		t.Errorf("fault window on pid %d, want dedicated track %d", pid, chromePIDFaults)
	}
	if d := window["dur"].(float64); d < 1999 || d > 2001 {
		t.Errorf("fault window dur = %vµs, want 2000", d)
	}
	if !named {
		t.Error("faults track has no process_name metadata")
	}
}

// A truncated log must say so in the export instead of pretending the
// timeline is complete.
func TestChromeTraceTruncationAnnotated(t *testing.T) {
	l := NewLog(2)
	l.Record(Event{Time: 0, Rank: 0, Kind: ComputeStart})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: ComputeEnd})
	l.Record(Event{Time: sim.TimeFromSeconds(0.002), Rank: 0, Kind: SendStart, Peer: 1})
	if l.Dropped() != 1 || !l.Truncated() {
		t.Fatalf("Dropped = %d, want 1", l.Dropped())
	}
	found := false
	for _, ev := range decodeChrome(t, l) {
		if ev["name"] == "trace-truncated" {
			found = true
			if n := int(ev["args"].(map[string]any)["dropped"].(float64)); n != 1 {
				t.Errorf("annotation reports %d dropped, want 1", n)
			}
		}
	}
	if !found {
		t.Error("truncated log exported without annotation")
	}
}

func TestWriteTextTruncationAnnotated(t *testing.T) {
	l := NewLog(1)
	l.Record(Event{Time: 0, Rank: 0, Kind: SendStart, Peer: 1})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: SendStart, Peer: 1})
	var b strings.Builder
	if err := l.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "trace truncated: 1") {
		t.Errorf("text export missing truncation note:\n%s", b.String())
	}
}

// Summaries must use the same per-request matching: the interleaved
// pattern above, FIFO-paired, would report 2.4ms of recv wait instead of
// the true 2.3ms.
func TestSummariesInterleavedRecvWait(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: 0, Rank: 0, Kind: RecvPost, Peer: 1, Tag: 5})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0001), Rank: 0, Kind: RecvPost, Peer: 2, Tag: 6})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0005), Rank: 0, Kind: RecvEnd, Peer: 2, Tag: 6})
	l.Record(Event{Time: sim.TimeFromSeconds(0.002), Rank: 0, Kind: RecvEnd, Peer: 1, Tag: 5})
	sums := l.Summaries()
	if len(sums) != 1 {
		t.Fatalf("%d summaries", len(sums))
	}
	want := 400*sim.Microsecond + 2000*sim.Microsecond
	if sums[0].RecvWait != want {
		t.Errorf("RecvWait = %v, want %v", sums[0].RecvWait, want)
	}
}

func TestChromeTraceNestedCollectives(t *testing.T) {
	l := NewLog(0)
	// Allreduce wraps Reduce: brackets nest and must pair innermost-first.
	l.Record(Event{Time: 0, Rank: 0, Kind: CollectiveStart, Note: "Allreduce"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0001), Rank: 0, Kind: CollectiveStart, Note: "Reduce"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0005), Rank: 0, Kind: CollectiveEnd, Note: "Reduce"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: CollectiveEnd, Note: "Allreduce"})
	var b strings.Builder
	if err := l.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Reduce") || !strings.Contains(out, "Allreduce") {
		t.Errorf("nested collectives lost: %s", out)
	}
}
