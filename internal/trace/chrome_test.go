package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestChromeTraceExport(t *testing.T) {
	l := NewLog(0)
	l.Record(Event{Time: 0, Rank: 0, Kind: ComputeStart, Peer: -1})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: ComputeEnd, Peer: -1})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: SendStart, Peer: 1, Tag: 2, Size: 64})
	l.Record(Event{Time: 0, Rank: 1, Kind: RecvPost, Peer: 0, Tag: 2})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0015), Rank: 1, Kind: RecvEnd, Peer: 0, Tag: 2, Size: 64})
	l.Record(Event{Time: sim.TimeFromSeconds(0.002), Rank: 0, Kind: CollectiveStart, Peer: -1, Note: "Barrier"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.003), Rank: 0, Kind: CollectiveEnd, Peer: -1, Note: "Barrier"})

	var b strings.Builder
	if err := l.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
		if ev["ph"] == "X" && ev["dur"].(float64) <= 0 {
			t.Errorf("duration event with non-positive dur: %v", ev)
		}
	}
	for _, want := range []string{"compute", "recv", "send->1", "Barrier"} {
		if !names[want] {
			t.Errorf("chrome trace missing %q events (have %v)", want, names)
		}
	}
	// The recv duration spans post to end: 1500 µs.
	for _, ev := range events {
		if ev["name"] == "recv" {
			if dur := ev["dur"].(float64); dur < 1499 || dur > 1501 {
				t.Errorf("recv dur = %v µs, want 1500", dur)
			}
		}
	}
}

func TestChromeTraceNestedCollectives(t *testing.T) {
	l := NewLog(0)
	// Allreduce wraps Reduce: brackets nest and must pair innermost-first.
	l.Record(Event{Time: 0, Rank: 0, Kind: CollectiveStart, Note: "Allreduce"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0001), Rank: 0, Kind: CollectiveStart, Note: "Reduce"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.0005), Rank: 0, Kind: CollectiveEnd, Note: "Reduce"})
	l.Record(Event{Time: sim.TimeFromSeconds(0.001), Rank: 0, Kind: CollectiveEnd, Note: "Allreduce"})
	var b strings.Builder
	if err := l.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Reduce") || !strings.Contains(out, "Allreduce") {
		t.Errorf("nested collectives lost: %s", out)
	}
}
