package netsim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// sendPathAllocs measures the average heap allocations of one complete
// transfer (schedule through delivery) on a warm network.
func sendPathAllocs(t *testing.T, src, dst int) float64 {
	t.Helper()
	e := sim.NewEngine(1)
	n := New(e, cluster.Perseus())
	// Warm the event pool, the xfer pool and every serializer on the path.
	for i := 0; i < 256; i++ {
		n.Transfer(src, dst, 1024, nil)
	}
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(500, func() {
		n.Transfer(src, dst, 1024, nil)
		if _, err := e.Run(sim.Forever); err != nil {
			t.Fatal(err)
		}
	})
}

// TestTransferAllocsReduced pins the send-path allocation win: the
// pre-pool implementation spent 43 allocs per transfer on closures and
// event boxes; the acceptance bar is at least a 50% cut (<= 21). The
// pooled state machine actually runs allocation-free once warm, so the
// assertion uses a small safety margin rather than the bar.
func TestTransferAllocsReduced(t *testing.T) {
	if got := sendPathAllocs(t, 0, 1); got > 4 {
		t.Errorf("same-switch transfer allocates %v objects/op, want <= 4 (pre-pool: 43)", got)
	}
	if got := sendPathAllocs(t, 0, 60); got > 4 {
		t.Errorf("cross-switch transfer allocates %v objects/op, want <= 4 (pre-pool: 43)", got)
	}
	if got := sendPathAllocs(t, 3, 3); got > 4 {
		t.Errorf("intra-node transfer allocates %v objects/op, want <= 4 (pre-pool: 43)", got)
	}
}

func benchTransfers(b *testing.B, src, dst int) {
	e := sim.NewEngine(1)
	n := New(e, cluster.Perseus())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Transfer(src, dst, 1024, nil)
		if i%256 == 255 {
			if _, err := e.Run(sim.Forever); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := e.Run(sim.Forever); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTransferSameSwitch(b *testing.B)  { benchTransfers(b, 0, 1) }
func BenchmarkTransferCrossSwitch(b *testing.B) { benchTransfers(b, 0, 60) }
func BenchmarkTransferIntraNode(b *testing.B)   { benchTransfers(b, 3, 3) }
