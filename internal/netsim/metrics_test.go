package netsim

import (
	"strconv"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestMetricsMirrorCounters checks that the registry instruments agree
// with the legacy Counters struct and with each other on a mixed
// workload: intra-node, same-switch and cross-switch traffic.
func TestMetricsMirrorCounters(t *testing.T) {
	cfg := quietPerseus()
	e := sim.NewEngine(1)
	n := New(e, cfg)
	n.Transfer(0, 0, 100, nil)  // intra-node
	n.Transfer(0, 1, 100, nil)  // same switch
	n.Transfer(0, 30, 100, nil) // cross switch
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}

	s := e.Metrics().Snapshot()
	get := func(name string, labels ...metrics.Label) uint64 {
		t.Helper()
		v, ok := s.Counter("net", name, labels...)
		if !ok {
			t.Fatalf("counter net/%s missing", name)
		}
		return v
	}
	st := n.Stats()
	if get("transfers_total") != st.Transfers ||
		get("intra_node_total") != st.IntraNode ||
		get("cross_switch_total") != st.CrossSwitch ||
		get("wire_bytes_total") != st.WireBytes ||
		get("retries_total") != st.Retries {
		t.Errorf("registry disagrees with Counters: %+v vs snapshot", st)
	}
	// Node 0 transmitted the two wire transfers (the intra-node copy
	// never touches the NIC).
	wantBytes := uint64(2 * cfg.WireBytes(100))
	if got := get("nic_tx_bytes_total", metrics.L("node", "0")); got != wantBytes {
		t.Errorf("nic_tx_bytes_total{node=0} = %d, want %d", got, wantBytes)
	}
	if got := get("nic_tx_frames_total", metrics.L("node", "0")); got != uint64(2*cfg.Frames(100)) {
		t.Errorf("nic_tx_frames_total{node=0} = %d, want %d", got, 2*cfg.Frames(100))
	}
	// Same-switch: ingress fabric only (1 hop). Cross-switch on Perseus
	// (nodes 0 and 30 are on switches 0 and 1): ingress + 1 segment +
	// egress = 3 hops.
	if got := get("store_forward_hops_total"); got != 4 {
		t.Errorf("store_forward_hops_total = %d, want 4", got)
	}
}

// TestDropAccountingReconciles saturates the backplane and checks the
// drop ledger: every retry is exactly one congestion or fault drop, and
// the RTO histogram has one observation per retry.
//
// The traffic pattern matters: one ingress fabric alone cannot overload
// a stacking segment (the 2.1 Gbit/s fabric paces below the stack
// rate), so senders on switches 0 AND 1 all target switch 2 — their
// flows converge on segment 1 at twice what it can carry.
func TestDropAccountingReconciles(t *testing.T) {
	cfg := quietPerseus()
	e := sim.NewEngine(2)
	n := New(e, cfg)
	for i := 0; i < 20; i++ {
		for k := 0; k < 10; k++ {
			n.Transfer(i, 48+(i%24), 65536, nil)    // switch 0 -> switch 2
			n.Transfer(24+i, 48+(i%24), 65536, nil) // switch 1 -> switch 2
		}
	}
	if _, err := e.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	s := e.Metrics().Snapshot()
	retries, _ := s.Counter("net", "retries_total")
	cong, _ := s.Counter("net", "drops_congestion_total")
	fault, _ := s.Counter("net", "drops_fault_total")
	if retries == 0 {
		t.Fatal("saturation produced no retries; test premise broken")
	}
	if cong+fault != retries {
		t.Errorf("drop ledger does not reconcile: congestion %d + fault %d != retries %d",
			cong, fault, retries)
	}
	if fault != 0 {
		t.Errorf("healthy run recorded %d fault drops", fault)
	}
	h, ok := s.Histogram("net", "rto_backoff_depth")
	if !ok {
		t.Fatal("rto_backoff_depth histogram missing")
	}
	if h.Count != retries {
		t.Errorf("rto histogram has %d observations, want %d (one per retry)", h.Count, retries)
	}
	// The saturated stacking segment must have recorded a peak backlog
	// at least at the drop threshold.
	found := false
	for seg := 0; seg < len(n.segments); seg++ {
		if v, ok := s.Gauge("net", "segment_backlog_ns_max", metrics.L("segment", strconv.Itoa(seg))); ok && v > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no segment recorded a positive peak backlog under saturation")
	}
}
